// Workloadstudy: generate a small synthetic month of U1 activity and run
// the paper's §5–§7 analyses over it — the whole measurement pipeline in one
// program. For the full-scale run use cmd/u1bench.
package main

import (
	"fmt"
	"log"
	"time"

	"u1/internal/analysis"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	const users, days = 500, 7

	cluster := server.NewCluster(server.Config{Seed: 3, AuthFailureRate: 0.0276})
	col := trace.NewCollector(trace.Config{
		Start: workload.PaperStart, Days: days,
		Shards: cluster.Store.NumShards(), Seed: 3,
	})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())

	start := time.Now()
	totals := workload.New(workload.Config{
		Users: users, Days: days, Seed: 3,
		Attacks: []workload.Attack{}, // a clean week; see examples/ddosdrill
	}, cluster).Run()
	fmt.Printf("simulated %d users for %d days in %v: %d sessions, %d uploads, %d downloads\n\n",
		users, days, time.Since(start).Round(time.Millisecond),
		totals.Sessions, totals.Uploads, totals.Downloads)

	t := analysis.FromCollector(col, workload.PaperStart, days)
	clean := t.Sanitize()

	fmt.Println(analysis.AnalyzeSummary(clean).Render())
	fmt.Println(analysis.AnalyzeTraffic(t).Render())
	fmt.Println(analysis.AnalyzeDedup(clean).Render())
	fmt.Println(analysis.AnalyzeUserTraffic(clean).Render())
	fmt.Println(analysis.AnalyzeBurstiness(clean).Render())
	fmt.Println(analysis.AnalyzeRPCPerf(t).Render())
	fmt.Println(analysis.AnalyzeFindings(clean).Render())
}
