// Dedupstudy: the economics of file-based cross-user deduplication (§5.3).
// A population uploads overlapping content; the example reports the dedup
// ratio, the logical-vs-stored gap, and what fraction of the storage bill
// the paper's 17% saving corresponds to.
package main

import (
	"fmt"
	"log"
	"time"

	"u1/internal/client"
	"u1/internal/protocol"
	"u1/internal/server"
)

func main() {
	log.SetFlags(0)
	cluster := server.NewCluster(server.Config{Seed: 5}) // metered mode: sizes only
	now := time.Now()
	clock := func() time.Time { return now }

	// 40 users; each stores 20 files. A third of the content comes from a
	// small popular universe (the same songs), the rest is unique.
	const users, filesPer = 40, 20
	for u := protocol.UserID(1); u <= users; u++ {
		token, err := cluster.Auth.Issue(u)
		if err != nil {
			log.Fatal(err)
		}
		cli := client.New(client.NewDirectTransport(cluster.LeastLoaded, clock))
		if err := cli.Connect(token); err != nil {
			log.Fatal(err)
		}
		root, _ := cli.RootVolume()
		for i := 0; i < filesPer; i++ {
			var h protocol.Hash
			size := uint64(3 << 20) // a 3 MB song
			if i%5 == 0 {
				h = protocol.HashBytes([]byte(fmt.Sprintf("hit-song-%d", i)))
			} else {
				h = protocol.HashBytes([]byte(fmt.Sprintf("u%d-file-%d", u, i)))
				size = uint64(5 << 20) // a 5 MB personal video clip
			}
			name := fmt.Sprintf("f%d.mp3", i)
			if _, _, err := cli.UploadSized(root, 0, name, h, size, size); err != nil {
				log.Fatal(err)
			}
		}
		cli.Disconnect() //nolint:errcheck
	}

	cs := cluster.Store.Contents()
	bs := cluster.Blob.Stats()
	fmt.Printf("logical bytes (what users think they store): %d MB\n", cs.LogicalBytes>>20)
	fmt.Printf("unique bytes  (what the provider stores):    %d MB\n", cs.UniqueBytes>>20)
	fmt.Printf("dedup ratio dr = %.3f (paper measured 0.171 over the month)\n", cs.DedupRatio())
	fmt.Printf("blob store holds %d objects, %d MB\n", bs.Objects, bs.BytesHeld>>20)
	fmt.Println()
	fmt.Println("at U1's ~$20,000/month S3 bill, the paper notes this simple optimization")
	fmt.Printf("was worth about $%.0f/month.\n", 20000*cs.DedupRatio())
}
