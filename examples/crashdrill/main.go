// Crashdrill: the durable metadata tier's recovery gate. The drill boots a
// cluster with the per-shard WAL on, drives real traffic through the full
// pipeline, then kills every metadata shard in turn the way a process crash
// would — in-memory state gone, journal handle closed without a final sync —
// and recovers each from its snapshot + journal. The acceptance invariant is
// zero accepted-write loss: under per-op fsync, every mutation the API
// acknowledged must be reproduced bit-for-bit by replay, verified by
// comparing deterministic shard fingerprints before the crash and after
// recovery. A second leg crashes a shard under the async policy, corrupts
// the journal tail (the torn write a real power cut leaves), and checks the
// store recovers the intact prefix and keeps serving.
//
// CI runs this as the recovery job; any violated invariant exits non-zero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"u1/internal/client"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/protocol"
	"u1/internal/server"
	"u1/internal/wal"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crashdrill: ")

	users := flag.Int("users", 120, "user population size")
	days := flag.Int("days", 2, "trace window in days")
	seed := flag.Int64("seed", 7, "random seed")
	dir := flag.String("dir", "", "durability root (empty = fresh temp dir)")
	flag.Parse()

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "crashdrill-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	// --- Leg 1: crash every shard under per-op fsync; nothing may be lost ---

	cluster, err := server.OpenCluster(server.Config{
		Seed: *seed, AuthFailureRate: 0.0276,
		Durability:  filepath.Join(root, "durable"),
		FsyncPolicy: wal.FsyncPerOp,
	})
	if err != nil {
		log.Fatalf("opening durable cluster: %v", err)
	}
	totals := workload.New(workload.Config{
		Users: *users, Days: *days, Seed: *seed,
		Attacks: []workload.Attack{},
	}, cluster).Run()
	c := cluster.Metrics.Snapshot().Counters
	fmt.Printf("drove %d sessions (%d uploads, %d deletes) through the durable tier: %d journaled ops, %d WAL appends\n",
		totals.Sessions, totals.Uploads, totals.Deletes,
		c[metrics.WALPrefix+"journaled"], c[metrics.WALPrefix+"appends"])

	store := cluster.Store
	shards := store.NumShards()
	before := make([]string, shards)
	for i := 0; i < shards; i++ {
		before[i] = store.ShardFingerprint(i)
	}
	for i := 0; i < shards; i++ {
		store.CrashShard(i)
		if err := store.RecoverShard(i); err != nil {
			log.Fatalf("shard %d: recovery failed: %v", i, err)
		}
		if got := store.ShardFingerprint(i); got != before[i] {
			log.Fatalf("shard %d: accepted writes lost — fingerprint %s after recovery, want %s", i, got, before[i])
		}
	}
	rc := cluster.Metrics.Snapshot().Counters
	fmt.Printf("crashed and recovered all %d shards: %d records replayed, fingerprints identical — zero accepted-write loss\n",
		shards, rc[metrics.WALPrefix+"replayed"])

	// The recovered tier must still serve: push one more upload through the
	// full client → gateway → pipeline path.
	token, err := cluster.Auth.Issue(1)
	if err != nil {
		log.Fatalf("post-recovery issue: %v", err)
	}
	now := workload.PaperStart.Add(time.Duration(*days) * 24 * time.Hour)
	cli := client.New(client.NewDirectTransport(cluster.LeastLoaded, func() time.Time { return now }))
	if err := cli.Connect(token); err != nil {
		log.Fatalf("post-recovery connect: %v", err)
	}
	vol, ok := cli.RootVolume()
	if !ok {
		log.Fatal("post-recovery root volume missing")
	}
	h := protocol.HashBytes([]byte("crashdrill post-recovery content"))
	if _, _, err := cli.UploadSized(vol, 0, "post-recovery.txt", h, 64<<10, 40<<10); err != nil {
		log.Fatalf("post-recovery upload: %v", err)
	}
	fmt.Println("recovered tier accepted a fresh upload through the full pipeline")
	if err := cluster.Close(); err != nil {
		log.Fatalf("closing durable cluster: %v", err)
	}

	// --- Leg 2: torn journal tail under the async policy ---
	//
	// Async acked writes ahead of the disk, so a crash may tear the last
	// frame; recovery must drop the torn suffix, keep the intact prefix, and
	// leave the store serving.
	tornDir := filepath.Join(root, "torn")
	tstore, err := metadata.Open(metadata.Config{
		Shards: 1, Durability: tornDir, FsyncPolicy: wal.FsyncAsync,
	})
	if err != nil {
		log.Fatalf("opening torn-leg store: %v", err)
	}
	troot, err := tstore.CreateUser(1)
	if err != nil {
		log.Fatal(err)
	}
	const tornFiles = 12
	for i := 0; i < tornFiles; i++ {
		if _, err := tstore.MakeFile(1, troot.ID, 0, fmt.Sprintf("f%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	tstore.CrashShard(0)
	if err := wal.CorruptTail(tstore.ShardWALDir(0)); err != nil {
		log.Fatalf("corrupting journal tail: %v", err)
	}
	if err := tstore.RecoverShard(0); err != nil {
		log.Fatalf("torn-tail recovery failed: %v", err)
	}
	nodes, _, err := tstore.GetFromScratch(1, troot.ID)
	if err != nil {
		log.Fatalf("torn-tail listing: %v", err)
	}
	// Root + the intact prefix: exactly one journaled file is torn off.
	if want := 1 + tornFiles - 1; len(nodes) != want {
		log.Fatalf("torn-tail recovery kept %d nodes, want %d (intact prefix only)", len(nodes), want)
	}
	if _, err := tstore.MakeFile(1, troot.ID, 0, "after-torn"); err != nil {
		log.Fatalf("torn-tail store stopped serving: %v", err)
	}
	fmt.Printf("torn-tail leg: dropped the torn frame, recovered %d of %d files, store still serving\n",
		tornFiles-1, tornFiles)
	if err := tstore.Close(); err != nil {
		log.Fatalf("closing torn-leg store: %v", err)
	}

	fmt.Println("crashdrill PASS")
}
