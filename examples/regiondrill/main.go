// Regiondrill: the cross-region replication gate. The drill is the
// regional-outage entry of the scenario catalog (internal/scenario): a
// cluster whose metadata shards split into two regions with a nonzero
// replication delay carries real traffic through the full pipeline (the
// workload's epoch barriers pump the replication mailboxes), then loses a
// region the way a datacenter outage would. The acceptance invariants are:
// writes owned by the dead region are refused at the API edge while reads
// keep being served from the surviving region's replicas; failover replays
// the entire backlog — including records still sitting in publication
// outboxes, never shipped — so the surviving replicas reproduce the dead
// owners' shard fingerprints bit-for-bit (zero acknowledged-write loss);
// and recovery rebuilds the dead region from its peer and serves fresh
// writes through the full client path again.
//
// CI runs this as the region job; any violated invariant exits non-zero.
package main

import (
	"flag"
	"fmt"
	"log"

	"u1/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiondrill: ")

	users := flag.Int("users", 0, "user population size (0 = catalog default, 120)")
	days := flag.Int("days", 0, "trace window in days (0 = catalog default, 2)")
	seed := flag.Int64("seed", 0, "random seed (0 = catalog default, 7)")
	flag.Parse()

	spec, err := scenario.Lookup("regional-outage")
	if err != nil {
		log.Fatal(err)
	}
	out, err := scenario.RunSpec(spec,
		scenario.Params{Users: *users, Days: *days, Seed: *seed}, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	res := out.Result

	fmt.Printf("drove %d sessions (%d uploads, %d deletes) across 2 regions: %d records published, %d applied at peers\n",
		res.Totals.Sessions, res.Totals.Uploads, res.Totals.Deletes,
		res.Counter("repl.published"), res.Counter("repl.applied"))
	fmt.Printf("replication totals: %d published, %d applied, %d LWW-skipped, reads local/remote/stale %d/%d/%d\n",
		res.Counter("repl.published"), res.Counter("repl.applied"),
		res.Counter("repl.lww_skipped"), res.Counter("repl.reads.local"),
		res.Counter("repl.reads.remote"), res.Counter("repl.reads.stale"))

	if out.Violation != "" {
		log.Fatalf("INVARIANT VIOLATED: %s", out.Violation)
	}
	fmt.Println("regiondrill PASS")
}
