// Regiondrill: the cross-region replication gate. The drill boots a cluster
// whose metadata shards are split into two regions with a nonzero
// replication delay, drives real traffic through the full pipeline (the
// workload's epoch barriers pump the replication mailboxes), then kills a
// region the way a datacenter outage would. The acceptance invariants are:
// writes owned by the dead region are refused at the API edge while reads
// keep being served from the surviving region's replicas; failover replays
// the entire backlog — including records still sitting in publication
// outboxes, never shipped — so the surviving replicas reproduce the dead
// owners' shard fingerprints bit-for-bit (zero acknowledged-write loss);
// and recovery rebuilds the dead region from its peer and serves fresh
// writes through the full client path again.
//
// CI runs this as the region job; any violated invariant exits non-zero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"u1/internal/client"
	"u1/internal/protocol"
	"u1/internal/server"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiondrill: ")

	users := flag.Int("users", 120, "user population size")
	days := flag.Int("days", 2, "trace window in days")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	cluster, err := server.OpenCluster(server.Config{
		Seed: *seed, AuthFailureRate: 0.0276,
		Regions:          2,
		ReplicationDelay: 2,
		EventualReads:    true,
	})
	if err != nil {
		log.Fatalf("opening regional cluster: %v", err)
	}
	st := cluster.Store
	if st.Regions() != 2 {
		log.Fatalf("store has %d regions, want 2", st.Regions())
	}

	totals := workload.New(workload.Config{
		Users: *users, Days: *days, Seed: *seed,
		Attacks: []workload.Attack{},
	}, cluster).Run()
	c := cluster.Metrics.Snapshot().Counters
	fmt.Printf("drove %d sessions (%d uploads, %d deletes) across 2 regions: %d records published, %d applied at peers\n",
		totals.Sessions, totals.Uploads, totals.Deletes,
		c["repl.published"], c["repl.applied"])
	if c["repl.published"] == 0 {
		log.Fatal("workload published no replication records — the mailbox pump is dead")
	}

	// Pick one user owned by each region for the outage legs.
	var ownedBy [2]protocol.UserID
	for u := protocol.UserID(1); u <= protocol.UserID(*users); u++ {
		if ownedBy[st.RegionOfUser(u)] == 0 {
			ownedBy[st.RegionOfUser(u)] = u
		}
	}
	if ownedBy[0] == 0 || ownedBy[1] == 0 {
		log.Fatalf("user population does not cover both regions: %v", ownedBy)
	}
	victim, survivor := ownedBy[1], ownedBy[0]

	// An acknowledged write through the full client path right before the
	// outage: with delay 2 and no further epoch barriers it stays in the
	// publication outbox, unshipped — exactly the record failover must not
	// lose.
	now := workload.PaperStart.Add(time.Duration(*days) * 24 * time.Hour)
	vol := uploadAs(cluster, victim, now, "pre-outage.txt")

	// A cross-region grant so the survivor may read the victim's volume from
	// its local replica during the outage. Drain so the grant itself — and
	// everything before it — is replicated before the region dies.
	share, err := st.CreateShare(victim, vol, survivor, "drill", true)
	if err != nil {
		log.Fatalf("pre-outage share: %v", err)
	}
	if _, err := st.AcceptShare(survivor, share.ID); err != nil {
		log.Fatalf("accepting share: %v", err)
	}
	st.DrainReplication()

	// Capture the dead region's owner fingerprints at the moment of death.
	shards := st.NumShards()
	before := make([]string, shards)
	var region1Shards []int
	for i := 0; i < shards; i++ {
		before[i] = st.ShardFingerprint(i)
		if st.RegionOf(i) == 1 {
			region1Shards = append(region1Shards, i)
		}
	}

	// One more acknowledged write AFTER the drain: it exists only in the
	// owner shard and its outbox when the region dies.
	if _, err := st.MakeFile(victim, vol, 0, "acked-last-instant.txt"); err != nil {
		log.Fatalf("last-instant write: %v", err)
	}
	for _, i := range region1Shards {
		before[i] = st.ShardFingerprint(i)
	}

	// --- Outage: region 1 dies ---

	st.RegionDown(1)

	if _, err := st.MakeFile(victim, vol, 0, "rejected.txt"); !errors.Is(err, protocol.ErrUnavailable) {
		log.Fatalf("write into dead region returned %v, want ErrUnavailable", err)
	}
	if _, _, err := uploadErrAs(cluster, victim, now.Add(time.Minute), "rejected-api.txt"); err == nil {
		log.Fatal("API edge accepted a write into the dead region")
	} else if !errors.Is(err, protocol.ErrUnavailable) {
		log.Fatalf("API-path write into dead region failed for the wrong reason: %v", err)
	}
	rc := cluster.Metrics.Snapshot().Counters
	if rc["api.region.refused"] == 0 {
		log.Fatal("API edge refused no writes — the region interceptor is dead")
	}
	if _, err := st.GetVolume(survivor, vol); err != nil {
		log.Fatalf("read of dead region's volume from surviving replica: %v", err)
	}
	fmt.Printf("region 1 down: writes refused at the edge (%d at the interceptor), reads served from region 0 replicas\n",
		rc["api.region.refused"])

	// --- Failover: region 0 replays the entire backlog, outboxes included ---

	st.FailoverRegion(0)
	for _, i := range region1Shards {
		if got := st.ReplicaFingerprint(0, i); got != before[i] {
			log.Fatalf("shard %d: acknowledged writes lost in failover — replica fingerprint %s, want %s", i, got, before[i])
		}
	}
	fmt.Printf("failover replayed the backlog: %d dead-region shards reproduced bit-for-bit at region 0 — zero acknowledged-write loss\n",
		len(region1Shards))

	// --- Recovery: region 1 rebuilds from its peer and serves again ---

	st.RegionRecover(1, 0)
	for _, i := range region1Shards {
		if got := st.ShardFingerprint(i); got != before[i] {
			log.Fatalf("shard %d: recovery diverged — fingerprint %s, want %s", i, got, before[i])
		}
	}
	uploadAs(cluster, victim, now.Add(2*time.Minute), "post-recovery.txt")
	fmt.Println("recovered region reproduced owner fingerprints and accepted a fresh upload through the full pipeline")

	fc := cluster.Metrics.Snapshot().Counters
	fmt.Printf("replication totals: %d published, %d applied, %d LWW-skipped, reads local/remote/stale %d/%d/%d\n",
		fc["repl.published"], fc["repl.applied"], fc["repl.lww_skipped"],
		fc["repl.reads.local"], fc["repl.reads.remote"], fc["repl.reads.stale"])
	fmt.Println("regiondrill PASS")
}

// uploadAs pushes one upload for user through the full client → gateway →
// pipeline path and returns the user's root volume. Any failure is fatal.
func uploadAs(cluster *server.Cluster, user protocol.UserID, now time.Time, name string) protocol.VolumeID {
	vol, _, err := uploadErrAs(cluster, user, now, name)
	if err != nil {
		log.Fatalf("upload %s as user %d: %v", name, user, err)
	}
	return vol
}

func uploadErrAs(cluster *server.Cluster, user protocol.UserID, now time.Time, name string) (protocol.VolumeID, protocol.NodeInfo, error) {
	token, err := cluster.Auth.Issue(user)
	if err != nil {
		return 0, protocol.NodeInfo{}, fmt.Errorf("issuing token: %w", err)
	}
	cli := client.New(client.NewDirectTransport(cluster.LeastLoaded, func() time.Time { return now }))
	if err := cli.Connect(token); err != nil {
		return 0, protocol.NodeInfo{}, fmt.Errorf("connect: %w", err)
	}
	vol, ok := cli.RootVolume()
	if !ok {
		return 0, protocol.NodeInfo{}, fmt.Errorf("user %d has no root volume", user)
	}
	h := protocol.HashBytes([]byte("regiondrill " + name))
	info, _, err := cli.UploadSized(vol, 0, name, h, 64<<10, 40<<10)
	return vol, info, err
}
