// Sharedfolder: the §3.2 synchronization workflow between two users — an
// owner shares a folder, the guest accepts, and mutations propagate by push
// notification across API servers through the broker, exactly the example
// the paper walks through (an Unlink noticed by the second client).
package main

import (
	"fmt"
	"log"
	"time"

	"u1/internal/client"
	"u1/internal/protocol"
	"u1/internal/server"
)

func main() {
	log.SetFlags(0)
	cluster := server.NewCluster(server.Config{InlineData: true, Seed: 7})
	tc, err := cluster.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()

	owner := connect(cluster, tc, 100, "owner")
	guest := connect(cluster, tc, 200, "guest")
	defer owner.Close()
	defer guest.Close()
	guest.AutoFetch = true

	// Owner builds a project folder and shares it.
	udf, err := owner.CreateUDF("~/Project")
	if err != nil {
		log.Fatal(err)
	}
	spec, _, err := owner.Upload(udf.ID, 0, "spec.doc", []byte("spec v1: measure everything"))
	if err != nil {
		log.Fatal(err)
	}
	share, err := owner.CreateShare(udf.ID, 200, "project", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner shared volume %d (share %d)\n", udf.ID, share.ID)

	// The guest receives the offer by push, accepts, syncs, reads.
	p := waitPush(guest, protocol.PushShareOffered)
	fmt.Printf("guest got push: %v for volume %d\n", p.Event, p.Share.Volume)
	if _, err := guest.AcceptShare(p.Share.ID); err != nil {
		log.Fatal(err)
	}
	changed, err := guest.Sync(udf.ID)
	if err != nil {
		log.Fatal(err)
	}
	data, err := guest.Download(udf.ID, changed[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest synced %d files; read %q\n", len(changed), data)

	// The guest edits the shared file; the owner sees the change by push.
	if _, _, err := guest.Upload(udf.ID, 0, "spec.doc", []byte("spec v2: guest was here")); err != nil {
		log.Fatal(err)
	}
	waitPush(owner, protocol.PushVolumeChanged)
	if _, err := owner.Sync(udf.ID); err != nil {
		log.Fatal(err)
	}
	back, err := owner.Download(udf.ID, spec.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner sees the guest's edit: %q\n", back)

	// The paper's walkthrough ends with an Unlink propagating: delete on
	// one side, push on the other, and the blob garbage-collected from S3.
	if err := owner.Unlink(udf.ID, spec.ID); err != nil {
		log.Fatal(err)
	}
	waitPush(guest, protocol.PushVolumeChanged)
	guest.Sync(udf.ID) //nolint:errcheck
	m, _ := guest.Mirror(udf.ID)
	fmt.Printf("after owner's unlink, guest mirror holds %d nodes; blob store: %+v\n",
		len(m.Nodes), cluster.Blob.Stats())
}

func connect(cluster *server.Cluster, tc *server.TCPCluster, id protocol.UserID, name string) *client.Client {
	token, err := cluster.Auth.Issue(id)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := client.DialTCP(tc.GateAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	cli := client.New(tr)
	if err := cli.Connect(token); err != nil {
		log.Fatalf("%s connect: %v", name, err)
	}
	return cli
}

func waitPush(cli *client.Client, want protocol.PushEvent) *protocol.Push {
	deadline := time.After(5 * time.Second)
	for {
		select {
		case p := <-cli.Pushes():
			cli.HandlePush(p) //nolint:errcheck
			if p.Event == want {
				return p
			}
		case <-deadline:
			log.Fatalf("no %v push within 5s", want)
		}
	}
}
