// Ddosdrill: inject the paper's §5.4 attack pattern — one leaked credential,
// thousands of leeching sessions — with the admission controller standing in
// for the provider-side load shedding U1 operators applied by hand. The
// drill is the flash-crowd entry of the scenario catalog (internal/scenario);
// this wrapper runs it at drill scale and renders the outcome: the
// controller refuses the leeching data traffic with StatusOverloaded
// (clients back off, retry, give up), session management stays served, and
// after the operator response (token revocation + content deletion) the
// storm decays within the hour as the paper observed.
//
// Any violated scenario invariant exits non-zero.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"u1/internal/faults"
	"u1/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddosdrill: ")

	spec, err := scenario.Lookup("flash-crowd")
	if err != nil {
		log.Fatal(err)
	}
	// Zero params: the entry's own defaults are the historical drill scale
	// (400 users, 3 days, seed 11).
	out, err := scenario.RunSpec(spec, scenario.Params{}, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	res := out.Result

	fmt.Printf("simulated %d users for %d days; %d attack sessions ran\n",
		out.Params.Users, out.Params.Days, res.Totals.AttackSessions)
	fmt.Printf("admission control: shed %d requests; clients retried %d (%d recovered)\n",
		res.Counter("faults.shed"), res.Counter("faults.retried"),
		res.Counter("faults.retry_succeeded"))
	for _, class := range []faults.Class{faults.ClassData, faults.ClassMetadata, faults.ClassSession} {
		ops, errs := res.ClassErrors(class)
		fmt.Printf("  %-8s class: %6d ops, %6d refused/failed (%.1f%%)\n",
			class, ops, errs, 100*res.ClassErrorRate(class))
	}

	stats := out.Stats()
	if data, err := json.MarshalIndent(stats, "", "  "); err == nil {
		fmt.Printf("\nscenario report:\n%s\n", data)
	}

	fmt.Println("\nthe admit interceptor sheds the leeching downloads with StatusOverloaded")
	fmt.Println("(the automated version of §5.4's provider-side load shedding), so the")
	fmt.Println("storm burns its retry budget instead of the back-end; at the window end")
	fmt.Println("the generator revokes the fraudulent account and deletes the content,")
	fmt.Println("and activity decays within the hour as the paper observed.")

	if out.Violation != "" {
		log.Printf("INVARIANT VIOLATED: %s", out.Violation)
		os.Exit(1)
	}
	fmt.Println("\nddosdrill PASS")
}
