// Ddosdrill: inject the paper's §5.4 attack pattern — one leaked credential,
// thousands of leeching sessions — and show the detector flagging the window,
// the operator response (token revocation + content deletion) and the decay
// of attack traffic afterwards.
package main

import (
	"fmt"
	"log"
	"time"

	"u1/internal/analysis"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	const users, days = 400, 3

	cluster := server.NewCluster(server.Config{Seed: 11, AuthFailureRate: 0.0276})
	col := trace.NewCollector(trace.Config{
		Start: workload.PaperStart, Days: days,
		Shards: cluster.Store.NumShards(), Seed: 11,
	})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())

	totals := workload.New(workload.Config{
		Users: users, Days: days, Seed: 11,
		Attacks: []workload.Attack{
			// A big one, like January 16: API activity two orders of
			// magnitude above baseline for two hours.
			{Day: 1, Hour: 13, Duration: 2 * time.Hour, APIFactor: 150, AuthFactor: 12},
		},
	}, cluster).Run()
	fmt.Printf("simulated %d users for %d days; %d attack sessions ran\n\n",
		users, days, totals.AttackSessions)

	t := analysis.FromCollector(col, workload.PaperStart, days)
	d := analysis.AnalyzeDDoS(t)
	fmt.Println(d.Render())

	fmt.Println("operator response: the generator revokes the fraudulent account and")
	fmt.Println("deletes the shared content at the window end, so activity decays within")
	fmt.Println("the hour — the manual countermeasure §5.4 describes (and criticizes).")
	fmt.Printf("\nauth service counters: %+v\n", cluster.Auth.Stats())
}
