// Ddosdrill: inject the paper's §5.4 attack pattern — one leaked credential,
// thousands of leeching sessions — with the admission controller standing in
// for the provider-side load shedding U1 operators applied by hand. The
// drill shows the detector flagging the window, the controller refusing the
// leeching data traffic with StatusOverloaded (clients back off, retry, give
// up), the error-rate-by-op-class report the shedding leaves behind, and the
// decay after the operator response (token revocation + content deletion).
package main

import (
	"fmt"
	"log"
	"time"

	"u1/internal/analysis"
	"u1/internal/client"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	const users, days = 400, 3

	cluster := server.NewCluster(server.Config{
		Seed: 11, AuthFailureRate: 0.0276,
		// Shed data ops once a process admits >10 of them in a minute
		// (metadata at 2x, session management at 4x): calm traffic never
		// gets near it, a leech hammering one file from the same process
		// crosses it within seconds. This replaces the hand-rolled overload
		// response — the pipeline's admit interceptor does the refusing.
		AdmitWatermark: 10,
	})
	col := trace.NewCollector(trace.Config{
		Start: workload.PaperStart, Days: days,
		Shards: cluster.Store.NumShards(), Seed: 11,
	})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())

	totals := workload.New(workload.Config{
		Users: users, Days: days, Seed: 11,
		// Shed clients behave like real ones: bounded retry with backoff in
		// virtual time before giving up.
		Retry: client.Retry{Max: 2, Backoff: 2 * time.Second},
		Attacks: []workload.Attack{
			// A big one, like January 16: API activity two orders of
			// magnitude above baseline for two hours.
			{Day: 1, Hour: 13, Duration: 2 * time.Hour, APIFactor: 150, AuthFactor: 12},
		},
	}, cluster).Run()
	fmt.Printf("simulated %d users for %d days; %d attack sessions ran\n\n",
		users, days, totals.AttackSessions)

	t := analysis.FromCollector(col, workload.PaperStart, days)
	d := analysis.AnalyzeDDoS(t)
	fmt.Println(d.Render())

	fmt.Println(analysis.AnalyzeErrors(t).Render())

	c := cluster.Metrics.Snapshot().Counters
	fmt.Printf("admission control: shed %d requests; clients retried %d (%d recovered)\n",
		c[metrics.FaultsPrefix+"shed"], c[metrics.FaultsPrefix+"retried"],
		c[metrics.FaultsPrefix+"retry_succeeded"])

	fmt.Println("\nthe admit interceptor sheds the leeching downloads with StatusOverloaded")
	fmt.Println("(the automated version of §5.4's provider-side load shedding), so the")
	fmt.Println("storm burns its retry budget instead of the back-end; at the window end")
	fmt.Println("the generator revokes the fraudulent account and deletes the content,")
	fmt.Println("and activity decays within the hour as the paper observed.")
	fmt.Printf("\nauth service counters: %+v\n", cluster.Auth.Stats())
}
