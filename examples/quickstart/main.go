// Quickstart: boot the full U1 back-end in-process, connect a desktop
// client over real TCP through the gateway, and run the basic workflow —
// mkdir, upload (with the SHA-1 dedup offer), download, sync.
package main

import (
	"bytes"
	"fmt"
	"log"

	"u1/internal/client"
	"u1/internal/server"
)

func main() {
	log.SetFlags(0)

	// A cluster with the paper's deployment shape: 6 API machines, 10
	// metadata shards, S3-like blob store, auth, notifications, gateway.
	cluster := server.NewCluster(server.Config{InlineData: true, Seed: 42})
	tc, err := cluster.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()
	fmt.Println("back-end up at", tc.GateAddr)

	// Register a user and connect a desktop client.
	token, err := cluster.Auth.Issue(1)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := client.DialTCP(tc.GateAddr.String())
	if err != nil {
		log.Fatal(err)
	}
	cli := client.New(tr)
	if err := cli.Connect(token); err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	root, _ := cli.RootVolume()
	fmt.Printf("connected as user %v, root volume %d\n", cli.User(), root)

	// Create a folder and upload a file into it.
	docs, err := cli.Mkdir(root, 0, "docs")
	if err != nil {
		log.Fatal(err)
	}
	content := bytes.Repeat([]byte("personal cloud measurement "), 512)
	node, reused, err := cli.Upload(root, docs.ID, "paper-notes.txt", content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d bytes as node %d (dedup hit: %v)\n", len(content), node.ID, reused)

	// Uploading identical content again never transfers bytes: the server
	// recognizes the SHA-1 (file-based cross-user deduplication, §3.3).
	_, reused, err = cli.Upload(root, docs.ID, "copy-of-notes.txt", content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical upload deduplicated: %v\n", reused)

	// Download and verify.
	got, err := cli.Download(root, node.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded %d bytes, intact: %v\n", len(got), bytes.Equal(got, content))

	// Synchronize the mirror and show the state.
	if _, err := cli.Sync(root); err != nil {
		log.Fatal(err)
	}
	m, _ := cli.Mirror(root)
	fmt.Printf("mirror at generation %d with %d nodes\n", m.Gen, len(m.Nodes))
	fmt.Printf("client stats: %+v\n", cli.Stats())
	fmt.Printf("blob store: %+v\n", cluster.Blob.Stats())
}
