package plot

import (
	"strings"
	"testing"

	"u1/internal/stats"
)

func TestLineRendering(t *testing.T) {
	ys := make([]float64, 200)
	for i := range ys {
		ys[i] = float64(i % 24)
	}
	out := Line("hourly", ys, 60, 8)
	if !strings.Contains(out, "hourly") || !strings.Contains(out, "*") {
		t.Errorf("line chart:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // title + 8 rows + axis
		t.Errorf("got %d lines", len(lines))
	}
	if Line("empty", nil, 60, 8) != "empty: (no data)\n" {
		t.Error("empty series")
	}
	// Flat series must not divide by zero.
	if out := Line("flat", []float64{5, 5, 5}, 20, 4); !strings.Contains(out, "*") {
		t.Errorf("flat:\n%s", out)
	}
}

func TestMultiLineLegend(t *testing.T) {
	out := MultiLine("two", map[string][]float64{
		"beta":  {1, 2, 3},
		"alpha": {3, 2, 1},
	}, 40, 6)
	// Deterministic legend order: alpha before beta.
	ia, ib := strings.Index(out, "alpha"), strings.Index(out, "beta")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("legend order:\n%s", out)
	}
	if MultiLine("none", nil, 40, 6) != "none: (no data)\n" {
		t.Error("empty multiline")
	}
}

func TestCDFSummary(t *testing.T) {
	c := stats.NewCDF([]float64{1, 10, 100, 1000})
	out := CDF("sizes", map[string]*stats.CDF{"all": c, "empty": stats.NewCDF(nil)}, 60)
	if !strings.Contains(out, "n=4") || !strings.Contains(out, "(no data)") {
		t.Errorf("cdf summary:\n%s", out)
	}
	if !strings.Contains(out, "p50=") {
		t.Error("quantiles missing")
	}
}

func TestBars(t *testing.T) {
	out := Bars("ops", []string{"upload", "download"}, []float64{10, 20}, 30)
	if !strings.Contains(out, "upload") || !strings.Contains(out, "#") {
		t.Errorf("bars:\n%s", out)
	}
	if !strings.Contains(Bars("bad", []string{"a"}, nil, 30), "(no data)") {
		t.Error("mismatched bars should degrade")
	}
}

func TestSIUnits(t *testing.T) {
	cases := map[float64]string{
		1.5e12: "1.50T",
		2e9:    "2.00G",
		3.5e6:  "3.50M",
		4.2e3:  "4.20k",
		7:      "7",
		0:      "0",
		0.004:  "4m",
		2e-6:   "2u",
		3e-10:  "0.3n",
	}
	for in, want := range cases {
		if got := SI(in); got != want {
			t.Errorf("SI(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBucketMeans(t *testing.T) {
	ys := []float64{1, 1, 3, 3}
	got := bucketMeans(ys, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("bucketMeans = %v", got)
	}
	// Short series pass through.
	if got := bucketMeans([]float64{7}, 10); len(got) != 1 || got[0] != 7 {
		t.Errorf("short = %v", got)
	}
}
