// Package plot renders the study's figures as terminal text: line charts for
// time series, CDF curves, horizontal bar charts and scatter tables. The Go
// ecosystem has no canonical plotting stack, so figures are reproduced as
// ASCII plus gnuplot-ready .dat blocks (see stats.Dat).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"u1/internal/stats"
)

// Line renders a single series as an ASCII line chart of the given width and
// height, with min/max annotations.
func Line(title string, ys []float64, width, height int) string {
	if len(ys) == 0 || width < 8 || height < 2 {
		return title + ": (no data)\n"
	}
	// Downsample/bucket the series to the target width by averaging.
	cols := bucketMeans(ys, width)
	lo, hi := stats.MinMax(cols)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(cols)))
	}
	for x, v := range cols {
		y := int(float64(height-1) * (v - lo) / (hi - lo))
		row := height - 1 - y
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [max %.4g]\n", title, hi)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  +%s  [min %.4g]\n", strings.Repeat("-", len(cols)), lo)
	return b.String()
}

// MultiLine renders several series on one chart with one rune per series.
func MultiLine(title string, series map[string][]float64, width, height int) string {
	if len(series) == 0 || width < 8 || height < 2 {
		return title + ": (no data)\n"
	}
	marks := []byte("*o+x#@")
	var names []string
	for name := range series {
		names = append(names, name)
	}
	// Deterministic legend order.
	sort.Strings(names)
	var lo, hi = math.Inf(1), math.Inf(-1)
	cols := make(map[string][]float64, len(series))
	for _, name := range names {
		c := bucketMeans(series[name], width)
		cols[name] = c
		l, h := stats.MinMax(c)
		lo, hi = math.Min(lo, l), math.Max(hi, h)
	}
	if hi == lo {
		hi = lo + 1
	}
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", n))
	}
	for si, name := range names {
		mark := marks[si%len(marks)]
		for x, v := range cols[name] {
			y := int(float64(height-1) * (v - lo) / (hi - lo))
			grid[height-1-y][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [max %.4g]\n", title, hi)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  +%s  [min %.4g]\n", strings.Repeat("-", n), lo)
	for si, name := range names {
		fmt.Fprintf(&b, "   %c = %s\n", marks[si%len(marks)], name)
	}
	return b.String()
}

// CDF renders one or more CDF curves sampled at log-spaced x values, as the
// paper's log-x CDF figures.
func CDF(title string, curves map[string]*stats.CDF, width int) string {
	var names []string
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, name := range names {
		c := curves[name]
		if c.N() == 0 {
			fmt.Fprintf(&b, "  %-14s (no data)\n", name)
			continue
		}
		qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.97, 0.999}
		var cells []string
		for _, q := range qs {
			cells = append(cells, fmt.Sprintf("p%02.0f=%s", q*100, SI(c.Quantile(q))))
		}
		fmt.Fprintf(&b, "  %-14s n=%-8d %s\n", name, c.N(), strings.Join(cells, " "))
	}
	return b.String()
}

// Bars renders a horizontal bar chart of labeled values.
func Bars(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	if len(labels) != len(values) || len(labels) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	_, max := stats.MinMax(values)
	if max <= 0 {
		max = 1
	}
	if width < 10 {
		width = 10
	}
	for i, label := range labels {
		n := int(float64(width) * values[i] / max)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-16s %-*s %s\n", label, width, strings.Repeat("#", n), SI(values[i]))
	}
	return b.String()
}

// SI formats a value with an SI suffix (the analysis deals in bytes and
// counts spanning 12 orders of magnitude).
func SI(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e12:
		return fmt.Sprintf("%.2fT", v/1e12)
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case av >= 1 || av == 0:
		return fmt.Sprintf("%.3g", v)
	case av >= 1e-3:
		return fmt.Sprintf("%.3gm", v*1e3)
	case av >= 1e-6:
		return fmt.Sprintf("%.3gu", v*1e6)
	default:
		return fmt.Sprintf("%.3gn", v*1e9)
	}
}

// bucketMeans shrinks a series to at most width points by averaging
// consecutive buckets.
func bucketMeans(ys []float64, width int) []float64 {
	if len(ys) <= width {
		return append([]float64(nil), ys...)
	}
	out := make([]float64, width)
	per := float64(len(ys)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi > len(ys) {
			hi = len(ys)
		}
		if hi <= lo {
			hi = lo + 1
		}
		out[i] = stats.Mean(ys[lo:hi])
	}
	return out
}
