package analysis

import (
	"fmt"
	"strings"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/trace"
)

// Summary reproduces Table 3: the trace-wide totals. The paper reports 30
// days, 1,294,794 users, 137.63M unique files, 42.5M sessions, 194.3M
// transfer operations, 105 TB uploaded and 120 TB downloaded.
type Summary struct {
	Days          int
	Records       int
	UniqueUsers   int
	UniqueFiles   int
	Sessions      uint64
	Transfers     uint64
	UploadBytes   uint64
	DownloadBytes uint64
	UploadOps     uint64
	DownloadOps   uint64
	// UpdateOps / UpdateBytes quantify §5.1's file-update share (paper:
	// 10.05% of uploads, 18.47% of upload traffic).
	UpdateOps   uint64
	UpdateBytes uint64
	// DedupRatio is §5.3's dr over the trace (paper: 0.171).
	DedupRatio float64
}

// AnalyzeSummary computes Table 3 from the trace.
func AnalyzeSummary(t *Trace) Summary {
	s := Summary{Days: t.Days, Records: len(t.Records)}
	users := make(map[uint64]struct{})
	files := make(map[uint64]struct{})
	// Dedup accounting: per unique content, its size and the set of nodes
	// referencing it (re-uploads of the same file must not inflate dr).
	contentSize := make(map[uint64]uint64)
	contentNodes := make(map[uint64]map[uint64]struct{})

	for i := range t.Records {
		r := &t.Records[i]
		if r.User != 0 {
			users[r.User] = struct{}{}
		}
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			if r.Status == uint8(protocol.StatusOK) {
				s.Sessions++
			}
		case isUpload(r):
			s.UploadOps++
			s.Transfers++
			s.UploadBytes += r.Size
			files[r.Node] = struct{}{}
			if r.IsUpdate() {
				s.UpdateOps++
				s.UpdateBytes += r.Size
			}
			if r.HashLo != 0 {
				contentSize[r.HashLo] = r.Size
				nodes, ok := contentNodes[r.HashLo]
				if !ok {
					nodes = make(map[uint64]struct{})
					contentNodes[r.HashLo] = nodes
				}
				nodes[r.Node] = struct{}{}
			}
		case isDownload(r):
			s.DownloadOps++
			s.Transfers++
			s.DownloadBytes += r.Size
			files[r.Node] = struct{}{}
		}
	}
	s.UniqueUsers = len(users)
	s.UniqueFiles = len(files)

	var unique, logical uint64
	for h, size := range contentSize {
		unique += size
		logical += size * uint64(len(contentNodes[h]))
	}
	if logical > 0 {
		s.DedupRatio = 1 - float64(unique)/float64(logical)
	}
	return s
}

// UpdateOpFraction returns the share of uploads that are updates.
func (s Summary) UpdateOpFraction() float64 {
	if s.UploadOps == 0 {
		return 0
	}
	return float64(s.UpdateOps) / float64(s.UploadOps)
}

// UpdateByteFraction returns the share of upload traffic caused by updates.
func (s Summary) UpdateByteFraction() float64 {
	if s.UploadBytes == 0 {
		return 0
	}
	return float64(s.UpdateBytes) / float64(s.UploadBytes)
}

// Render produces the Table 3 block.
func (s Summary) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: Summary of the trace\n")
	fmt.Fprintf(&b, "  Trace duration          %d days\n", s.Days)
	fmt.Fprintf(&b, "  Records                 %s\n", plot.SI(float64(s.Records)))
	fmt.Fprintf(&b, "  Unique user IDs         %s\n", plot.SI(float64(s.UniqueUsers)))
	fmt.Fprintf(&b, "  Unique files            %s\n", plot.SI(float64(s.UniqueFiles)))
	fmt.Fprintf(&b, "  User sessions           %s\n", plot.SI(float64(s.Sessions)))
	fmt.Fprintf(&b, "  Transfer operations     %s\n", plot.SI(float64(s.Transfers)))
	fmt.Fprintf(&b, "  Total upload traffic    %sB\n", plot.SI(float64(s.UploadBytes)))
	fmt.Fprintf(&b, "  Total download traffic  %sB\n", plot.SI(float64(s.DownloadBytes)))
	fmt.Fprintf(&b, "  Updates: %.2f%% of uploads, %.2f%% of upload bytes (paper: 10.05%%, 18.47%%)\n",
		100*s.UpdateOpFraction(), 100*s.UpdateByteFraction())
	fmt.Fprintf(&b, "  Dedup ratio             %.3f (paper: 0.171)\n", s.DedupRatio)
	return b.String()
}
