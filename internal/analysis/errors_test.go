package analysis

import (
	"strings"
	"testing"

	"u1/internal/protocol"
	"u1/internal/trace"
)

// rec builds one synthetic trace record.
func rec(kind trace.Kind, op protocol.Op, status protocol.Status) trace.Record {
	return trace.Record{Kind: kind, Op: uint8(op), Status: uint8(status)}
}

func TestAnalyzeErrorsClassesAndRates(t *testing.T) {
	tr := &Trace{Records: []trace.Record{
		// 4 data ops, 2 failed (one injected outage, one shed).
		rec(trace.KindStorage, protocol.OpGetContent, protocol.StatusOK),
		rec(trace.KindStorage, protocol.OpPutContent, protocol.StatusOK),
		rec(trace.KindStorage, protocol.OpGetContent, protocol.StatusUnavailable),
		rec(trace.KindStorage, protocol.OpPutContent, protocol.StatusOverloaded),
		// 2 metadata ops, 1 failed.
		rec(trace.KindStorage, protocol.OpUnlink, protocol.StatusNotFound),
		rec(trace.KindStorage, protocol.OpMakeDir, protocol.StatusOK),
		// 2 session ops, 1 failed auth.
		rec(trace.KindSession, protocol.OpAuthenticate, protocol.StatusOK),
		rec(trace.KindSession, protocol.OpAuthenticate, protocol.StatusAuthFailed),
		// RPC records are out of scope for the API-level report.
		rec(trace.KindRPC, protocol.OpGetContent, protocol.StatusUnavailable),
	}}
	e := AnalyzeErrors(tr)
	if len(e.Classes) != 3 {
		t.Fatalf("classes = %d", len(e.Classes))
	}
	byName := map[string]ErrorClass{}
	for _, c := range e.Classes {
		byName[c.Class] = c
	}
	if c := byName["data"]; c.Ops != 4 || c.Errors != 2 || c.Rate() != 0.5 {
		t.Errorf("data class = %+v", c)
	}
	if c := byName["data"]; c.ByStatus[protocol.StatusOverloaded] != 1 || c.ByStatus[protocol.StatusUnavailable] != 1 {
		t.Errorf("data by-status = %v", c.ByStatus)
	}
	if c := byName["metadata"]; c.Ops != 2 || c.Errors != 1 {
		t.Errorf("metadata class = %+v", c)
	}
	if c := byName["session"]; c.Ops != 2 || c.ByStatus[protocol.StatusAuthFailed] != 1 {
		t.Errorf("session class = %+v", c)
	}
	if e.Total.Ops != 8 || e.Total.Errors != 4 {
		t.Errorf("total = %+v", e.Total)
	}
	out := e.Render()
	for _, want := range []string{"data", "metadata", "session", "total", "overloaded:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeErrorsOnGeneratedTrace ties the report to the shared trace: the
// SSO failure injection (2.76%) must surface as session-class errors, and a
// failure-free data path keeps its error rate near zero.
func TestAnalyzeErrorsOnGeneratedTrace(t *testing.T) {
	e := AnalyzeErrors(testTrace(t))
	byName := map[string]ErrorClass{}
	for _, c := range e.Classes {
		byName[c.Class] = c
	}
	if c := byName["session"]; c.Errors == 0 {
		t.Error("SSO failure injection left no session-class errors")
	}
	if c := byName["data"]; c.Rate() > 0.05 {
		t.Errorf("data-class error rate %.3f without a fault plan", c.Rate())
	}
	if e.Total.Ops == 0 {
		t.Error("no ops counted")
	}
}
