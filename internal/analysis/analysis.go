// Package analysis reimplements every measurement of the paper's evaluation
// (§5 storage workload, §6 user behavior, §7 back-end performance) over a
// collected trace. Each figure/table has one Analyze function returning a
// result struct that renders as terminal text and exports gnuplot-ready data
// series; EXPERIMENTS.md records each result against the paper's numbers.
package analysis

import (
	"sort"
	"time"

	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/trace"
)

// Trace is the analyzable view of a collected dataset: time-sorted
// storage/session records plus the streaming RPC aggregate.
type Trace struct {
	Records    []trace.Record
	RPC        *trace.RPCAggregate
	Servers    []string
	Extensions []string
	Start      time.Time
	Days       int
}

// FromCollector builds the analyzable view from a live collector.
func FromCollector(col *trace.Collector, start time.Time, days int) *Trace {
	recs := append([]trace.Record(nil), col.Records()...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return &Trace{
		Records:    recs,
		RPC:        col.RPC(),
		Servers:    col.Servers(),
		Extensions: col.Extensions(),
		Start:      start,
		Days:       days,
	}
}

// FromDataset builds the view from logfiles read back from disk. The RPC
// aggregate is rebuilt from retained RPC records when present.
func FromDataset(ds *trace.Dataset, start time.Time, days, shards int) *Trace {
	t := &Trace{
		Records:    ds.Records,
		Servers:    ds.Servers,
		Extensions: ds.Extensions,
		Start:      start,
		Days:       days,
	}
	col := trace.NewCollector(trace.Config{Start: start, Days: days, Shards: shards})
	obs := col.RPCObserver()
	for _, r := range ds.RPCRecords {
		obs(rpcSpanFromRecord(r))
	}
	t.RPC = col.RPC()
	return t
}

// rpcSpanFromRecord reverses the record mapping for aggregate rebuilding.
func rpcSpanFromRecord(r trace.Record) (sp rpc.Span) {
	sp.RPC = protocol.RPC(r.RPC)
	sp.Class = sp.RPC.Class()
	sp.Shard = int(r.Shard)
	sp.Proc = int(r.Proc)
	sp.User = protocol.UserID(r.User)
	sp.Start = r.When()
	sp.Service = r.Duration()
	if r.Status != uint8(protocol.StatusOK) {
		sp.Err = protocol.Status(r.Status).Err()
	}
	return sp
}

// Sanitize reproduces the paper's artifact removal (§4.1): "a small number
// of apparently malfunctioning clients seems to continuously upload files
// hundreds of times — these artifacts have been removed for this analysis."
// A client is abusive when it repeats more than maxNodeRepeat transfer
// operations on a single node; that flags both malfunctioning clients and
// the DDoS accounts (whose thousands of leeching sessions hammer one file).
// The returned trace drops every record of flagged users; the RPC aggregate
// is shared unchanged (it cannot be re-filtered after streaming reduction).
//
// Use the sanitized view for the user-behavior analyses (Figs. 3, 7–9, 16)
// and the raw view for the service-wide ones (Figs. 2, 5, 14).
func (t *Trace) Sanitize() *Trace {
	type un struct{ u, n uint64 }
	counts := make(map[un]int)
	var transfers int
	for i := range t.Records {
		r := &t.Records[i]
		if !isUpload(r) && !isDownload(r) {
			continue
		}
		transfers++
		counts[un{r.User, r.Node}]++
	}
	// The threshold scales with the trace: an artifact hammers one node for
	// a macroscopic share of all transfers (the big DDoS repeats one file
	// for tens of percent), while even the heaviest legitimate user spreads
	// work across a working set.
	maxNodeRepeat := transfers / 50
	if maxNodeRepeat < 500 {
		maxNodeRepeat = 500
	}
	abusive := make(map[uint64]bool)
	for k, c := range counts {
		if c > maxNodeRepeat {
			abusive[k.u] = true
		}
	}
	if len(abusive) == 0 {
		return t
	}
	clean := make([]trace.Record, 0, len(t.Records))
	for i := range t.Records {
		if !abusive[t.Records[i].User] {
			clean = append(clean, t.Records[i])
		}
	}
	return &Trace{
		Records:    clean,
		RPC:        t.RPC,
		Servers:    t.Servers,
		Extensions: t.Extensions,
		Start:      t.Start,
		Days:       t.Days,
	}
}

// Hours returns the trace window length in hours.
func (t *Trace) Hours() int { return t.Days * 24 }

// End returns the instant after the trace window.
func (t *Trace) End() time.Time { return t.Start.Add(time.Duration(t.Days) * 24 * time.Hour) }

// Ext resolves an extension table index.
func (t *Trace) Ext(i uint8) string {
	if int(i) < len(t.Extensions) {
		return t.Extensions[i]
	}
	return ""
}

// isUpload/isDownload classify storage records as the paper's write/read ops.
func isUpload(r *trace.Record) bool {
	return r.Kind == trace.KindStorage && protocol.Op(r.Op) == protocol.OpPutContent &&
		r.Status == uint8(protocol.StatusOK)
}

func isDownload(r *trace.Record) bool {
	return r.Kind == trace.KindStorage && protocol.Op(r.Op) == protocol.OpGetContent &&
		r.Status == uint8(protocol.StatusOK)
}

func isUnlink(r *trace.Record) bool {
	return r.Kind == trace.KindStorage && protocol.Op(r.Op) == protocol.OpUnlink &&
		r.Status == uint8(protocol.StatusOK)
}
