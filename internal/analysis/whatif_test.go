package analysis

import (
	"strings"
	"testing"
	"time"

	"u1/internal/stats"
)

func TestWhatIf(t *testing.T) {
	tr := testTrace(t)
	w := AnalyzeWhatIf(tr.Sanitize())
	if w.UploadBytes == 0 || w.UpdateBytes == 0 {
		t.Fatalf("whatif = %+v", w)
	}
	if w.DeltaUpdateSavings == 0 || w.DeltaUpdateSavings >= w.UpdateBytes {
		t.Errorf("delta savings = %d of %d", w.DeltaUpdateSavings, w.UpdateBytes)
	}
	if w.DedupSavings == 0 || w.DedupMonthlyUSD <= 0 {
		t.Errorf("dedup savings = %d ($%.0f)", w.DedupSavings, w.DedupMonthlyUSD)
	}
	if w.TotalSessions == 0 || w.ColdSessions == 0 {
		t.Fatalf("sessions: %d cold of %d", w.ColdSessions, w.TotalSessions)
	}
	// Most sessions are cold (paper: 94.4%).
	if frac := float64(w.ColdSessions) / float64(w.TotalSessions); frac < 0.7 {
		t.Errorf("cold session share = %v, want dominant", frac)
	}
	if w.CacheHitRate <= 0 || w.CacheHitRate > 1 {
		t.Errorf("cache hit rate = %v", w.CacheHitRate)
	}
	out := w.Render()
	if !strings.Contains(out, "delta updates") || !strings.Contains(out, "dedup") {
		t.Error("render")
	}
}

func TestHourlyStats(t *testing.T) {
	ts := stats.NewTimeSeries(time.Unix(0, 0), time.Hour, 4)
	ts.Vals = []float64{0, 2, 4, 6}
	b := HourlyStats(ts)
	if b.N != 3 || b.Median != 4 {
		t.Errorf("box = %+v", b)
	}
}
