package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// OnlineActive reproduces Fig. 6: online vs active users per hour. A user is
// online in an hour if a session of theirs overlaps it; active if they issued
// at least one data-management operation in it (§6.1).
type OnlineActive struct {
	Online, Active *stats.TimeSeries
	// ActiveShare min/max over hours with online users (paper: 3.49%–16.25%).
	MinActiveShare, MaxActiveShare float64
}

// AnalyzeOnlineActive computes Fig. 6 with 1-hour bins.
func AnalyzeOnlineActive(t *Trace) OnlineActive {
	hours := t.Hours()
	online := make([]map[uint64]struct{}, hours)
	active := make([]map[uint64]struct{}, hours)
	for i := range online {
		online[i] = make(map[uint64]struct{})
		active[i] = make(map[uint64]struct{})
	}
	mark := func(sets []map[uint64]struct{}, hour int, user uint64) {
		if hour >= 0 && hour < hours {
			sets[hour][user] = struct{}{}
		}
	}
	// Session intervals: pair Authenticate/CloseSession per session id.
	opened := make(map[uint64]struct {
		user uint64
		at   int64
	})
	hourOf := func(ts int64) int { return int(time.Unix(0, ts).Sub(t.Start) / time.Hour) }

	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			if r.Status == uint8(protocol.StatusOK) {
				opened[r.Session] = struct {
					user uint64
					at   int64
				}{r.User, r.Time}
			}
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpCloseSession:
			if o, ok := opened[r.Session]; ok {
				for h := hourOf(o.at); h <= hourOf(r.Time); h++ {
					mark(online, h, o.user)
				}
				delete(opened, r.Session)
			}
		case r.Kind == trace.KindStorage && protocol.Op(r.Op).IsDataManagement() &&
			r.Status == uint8(protocol.StatusOK):
			mark(active, hourOf(r.Time), r.User)
		}
	}
	// Sessions still open at the window end count as online through it.
	for _, o := range opened {
		for h := hourOf(o.at); h < hours; h++ {
			mark(online, h, o.user)
		}
	}

	res := OnlineActive{
		Online: stats.NewTimeSeries(t.Start, time.Hour, hours),
		Active: stats.NewTimeSeries(t.Start, time.Hour, hours),
	}
	res.MinActiveShare = 1
	for h := 0; h < hours; h++ {
		res.Online.Vals[h] = float64(len(online[h]))
		res.Active.Vals[h] = float64(len(active[h]))
		// The share is only meaningful with a reasonable online population;
		// tiny-sample hours (a simulation-scale artifact) are skipped.
		if len(online[h]) >= 20 {
			share := float64(len(active[h])) / float64(len(online[h]))
			if share < res.MinActiveShare {
				res.MinActiveShare = share
			}
			if share > res.MaxActiveShare {
				res.MaxActiveShare = share
			}
		}
	}
	if res.MinActiveShare > res.MaxActiveShare {
		res.MinActiveShare = 0
	}
	return res
}

// Render produces the Fig. 6 block.
func (oa OnlineActive) Render() string {
	var b strings.Builder
	b.WriteString(plot.MultiLine("Fig 6: online vs active users per hour", map[string][]float64{
		"online": oa.Online.Vals,
		"active": oa.Active.Vals,
	}, 96, 10))
	fmt.Fprintf(&b, "  active share of online: %.1f%%–%.1f%% (paper: 3.49%%–16.25%%)\n",
		100*oa.MinActiveShare, 100*oa.MaxActiveShare)
	return b.String()
}

// OpFrequency reproduces Fig. 7a: request counts per operation type.
type OpFrequency struct {
	Ops    []protocol.Op
	Counts []uint64
}

// AnalyzeOpFrequency counts API operations (successful or not, as the trace
// records requests).
func AnalyzeOpFrequency(t *Trace) OpFrequency {
	counts := make(map[protocol.Op]uint64)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind == trace.KindStorage || r.Kind == trace.KindSession {
			counts[protocol.Op(r.Op)]++
		}
	}
	res := OpFrequency{}
	for _, op := range protocol.Ops() {
		if counts[op] > 0 {
			res.Ops = append(res.Ops, op)
			res.Counts = append(res.Counts, counts[op])
		}
	}
	return res
}

// Render produces the Fig. 7a block.
func (of OpFrequency) Render() string {
	labels := make([]string, len(of.Ops))
	values := make([]float64, len(of.Ops))
	for i, op := range of.Ops {
		labels[i] = op.String()
		values[i] = float64(of.Counts[i])
	}
	return plot.Bars("Fig 7a: number of user operations per type", labels, values, 48)
}

// UserTraffic reproduces Fig. 7b/7c and the §6.1 user classification: the
// distribution of per-user traffic, its inequality, and the class mix.
type UserTraffic struct {
	// Up/Down CDFs of bytes across users that moved any data.
	Up, Down *stats.CDF
	// Shares of the population that downloaded/uploaded anything (paper:
	// 14% and 25%).
	DownloadedShare, UploadedShare float64
	// Lorenz/Gini over active users (paper: ≈0.894 up, ≈0.897 down;
	// top 1% of active users → 65.6% of traffic).
	GiniUp, GiniDown float64
	LorenzUp         []stats.LorenzPoint
	LorenzDown       []stats.LorenzPoint
	Top1Share        float64
	// Class mix per §6.1 (occasional/upload-only/download-only/heavy;
	// paper: 85.82/7.22/2.34/4.62).
	ClassShares map[string]float64
	Users       int
}

// AnalyzeUserTraffic computes Fig. 7b/7c.
func AnalyzeUserTraffic(t *Trace) UserTraffic {
	type ud struct{ up, down float64 }
	perUser := make(map[uint64]*ud)
	seen := func(u uint64) *ud {
		d, ok := perUser[u]
		if !ok {
			d = &ud{}
			perUser[u] = d
		}
		return d
	}
	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			seen(r.User) // online-only users still count in the population
		case isUpload(r):
			seen(r.User).up += float64(r.Size)
		case isDownload(r):
			seen(r.User).down += float64(r.Size)
		}
	}
	var ups, downs, totals []float64
	var withUp, withDown int
	classes := map[string]int{}
	for _, u := range sortedKeys(perUser) {
		d := perUser[u]
		if d.up > 0 {
			ups = append(ups, d.up)
			withUp++
		}
		if d.down > 0 {
			downs = append(downs, d.down)
			withDown++
		}
		if d.up > 0 || d.down > 0 {
			totals = append(totals, d.up+d.down)
		}
		classes[classifyUser(d.up, d.down)]++
	}
	n := len(perUser)
	res := UserTraffic{
		Up:   stats.NewCDF(ups),
		Down: stats.NewCDF(downs),
		// Inequality over users that moved data in that direction, as the
		// paper's "active users".
		GiniUp:   stats.Gini(ups),
		GiniDown: stats.Gini(downs),
		Users:    n,
	}
	if n > 0 {
		res.DownloadedShare = float64(withDown) / float64(n)
		res.UploadedShare = float64(withUp) / float64(n)
	}
	res.LorenzUp = stats.Lorenz(ups)
	res.LorenzDown = stats.Lorenz(downs)
	res.Top1Share = stats.TopShare(totals, 0.01)
	res.ClassShares = make(map[string]float64, 4)
	for name, c := range classes {
		res.ClassShares[name] = float64(c) / float64(max(1, n))
	}
	return res
}

// classifyUser applies the Drago et al. rule of §6.1: occasional below 10 KB
// total; three orders of magnitude imbalance makes upload-/download-only;
// heavy otherwise.
func classifyUser(up, down float64) string {
	if up+down < 10*1024 {
		return "occasional"
	}
	switch {
	case down == 0 || (up > 0 && up/down >= 1000):
		return "upload-only"
	case up == 0 || (down > 0 && down/up >= 1000):
		return "download-only"
	default:
		return "heavy"
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render produces the Fig. 7b/7c block.
func (ut UserTraffic) Render() string {
	var b strings.Builder
	b.WriteString("Fig 7b: per-user transferred data\n")
	fmt.Fprintf(&b, "  users: %d; downloaded anything: %.1f%% (paper: 14%%); uploaded: %.1f%% (paper: 25%%)\n",
		ut.Users, 100*ut.DownloadedShare, 100*ut.UploadedShare)
	b.WriteString(plot.CDF("  bytes per user", map[string]*stats.CDF{
		"upload": ut.Up, "download": ut.Down,
	}, 80))
	b.WriteString("Fig 7c: traffic inequality across active users\n")
	fmt.Fprintf(&b, "  Gini upload = %.4f (paper: 0.8943); Gini download = %.4f (paper: 0.8966)\n",
		ut.GiniUp, ut.GiniDown)
	fmt.Fprintf(&b, "  top 1%% of transferring users carry %.1f%% of traffic (paper: 65.6%%)\n",
		100*ut.Top1Share)
	b.WriteString("§6.1 user classes: ")
	names := make([]string, 0, len(ut.ClassShares))
	for name := range ut.ClassShares {
		names = append(names, name)
	}
	sort.Strings(names)
	var cells []string
	for _, name := range names {
		cells = append(cells, fmt.Sprintf("%s %.2f%%", name, 100*ut.ClassShares[name]))
	}
	b.WriteString(strings.Join(cells, ", "))
	b.WriteString("\n  (paper: occasional 85.82%, upload-only 7.22%, download-only 2.34%, heavy 4.62%)\n")
	return b.String()
}
