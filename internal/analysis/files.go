package analysis

import (
	"fmt"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// Dependencies reproduces Fig. 3a/3b: the inter-arrival time distributions
// of file operation pairs — Write/Read/Delete after Write, and after Read —
// plus the downloads-per-file distribution of the Fig. 3b inset.
type Dependencies struct {
	WAW, RAW, DAW *stats.CDF // seconds between ops on the same node
	WAR, RAR, DAR *stats.CDF
	// Fractions within each family (paper: WAW 44%, RAW 30%, DAW 26%;
	// RAR 66%, DAR 24%, WAR 10%).
	AfterWriteN, AfterReadN   int
	WAWFrac, RAWFrac, DAWFrac float64
	WARFrac, RARFrac, DARFrac float64
	DownloadsPerFile          *stats.CDF
	// WAWUnderHour is the share of WAW gaps below one hour (paper: 80%).
	WAWUnderHour float64
	// DyingFiles counts files unused >1 day before their deletion, and its
	// share of all files seen (paper: 12.5M files, 9.1%).
	DyingFiles     int
	DyingFileShare float64
}

type nodeEventKind uint8

const (
	evWrite nodeEventKind = iota
	evRead
	evDelete
)

// AnalyzeDependencies computes Fig. 3a/3b from per-node op sequences.
func AnalyzeDependencies(t *Trace) Dependencies {
	type last struct {
		kind nodeEventKind
		at   int64
	}
	lastOp := make(map[uint64]last)
	var waw, raw, daw, war, rar, dar []float64
	downloads := make(map[uint64]float64)
	filesSeen := make(map[uint64]struct{})
	var dying int

	for i := range t.Records {
		r := &t.Records[i]
		var kind nodeEventKind
		switch {
		case isUpload(r):
			kind = evWrite
			filesSeen[r.Node] = struct{}{}
		case isDownload(r):
			kind = evRead
			downloads[r.Node]++
		case isUnlink(r) && !r.IsDir():
			kind = evDelete
		default:
			continue
		}
		if prev, ok := lastOp[r.Node]; ok {
			gap := float64(r.Time-prev.at) / float64(time.Second)
			if gap < 0 {
				gap = 0
			}
			switch {
			case prev.kind == evWrite && kind == evWrite:
				waw = append(waw, gap)
			case prev.kind == evWrite && kind == evRead:
				raw = append(raw, gap)
			case prev.kind == evWrite && kind == evDelete:
				daw = append(daw, gap)
				if gap > 24*3600 {
					dying++
				}
			case prev.kind == evRead && kind == evWrite:
				war = append(war, gap)
			case prev.kind == evRead && kind == evRead:
				rar = append(rar, gap)
			case prev.kind == evRead && kind == evDelete:
				dar = append(dar, gap)
				if gap > 24*3600 {
					dying++
				}
			}
		}
		if kind == evDelete {
			delete(lastOp, r.Node)
		} else {
			lastOp[r.Node] = last{kind: kind, at: r.Time}
		}
	}

	res := Dependencies{
		WAW: stats.NewCDF(waw), RAW: stats.NewCDF(raw), DAW: stats.NewCDF(daw),
		WAR: stats.NewCDF(war), RAR: stats.NewCDF(rar), DAR: stats.NewCDF(dar),
	}
	res.AfterWriteN = len(waw) + len(raw) + len(daw)
	if res.AfterWriteN > 0 {
		res.WAWFrac = float64(len(waw)) / float64(res.AfterWriteN)
		res.RAWFrac = float64(len(raw)) / float64(res.AfterWriteN)
		res.DAWFrac = float64(len(daw)) / float64(res.AfterWriteN)
	}
	res.AfterReadN = len(war) + len(rar) + len(dar)
	if res.AfterReadN > 0 {
		res.WARFrac = float64(len(war)) / float64(res.AfterReadN)
		res.RARFrac = float64(len(rar)) / float64(res.AfterReadN)
		res.DARFrac = float64(len(dar)) / float64(res.AfterReadN)
	}
	res.WAWUnderHour = res.WAW.At(3600)
	counts := make([]float64, 0, len(downloads))
	for _, f := range sortedKeys(downloads) {
		counts = append(counts, downloads[f])
	}
	res.DownloadsPerFile = stats.NewCDF(counts)
	res.DyingFiles = dying
	if len(filesSeen) > 0 {
		res.DyingFileShare = float64(dying) / float64(len(filesSeen))
	}
	return res
}

// Render produces the Fig. 3a/3b block.
func (d Dependencies) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3a: X-after-Write dependencies\n")
	fmt.Fprintf(&b, "  WAW %.0f%%  RAW %.0f%%  DAW %.0f%%  (paper: 44/30/26)\n",
		100*d.WAWFrac, 100*d.RAWFrac, 100*d.DAWFrac)
	fmt.Fprintf(&b, "  WAW < 1h: %.0f%% (paper: 80%%)\n", 100*d.WAWUnderHour)
	b.WriteString(plot.CDF("  inter-op times (s)", map[string]*stats.CDF{
		"WAW": d.WAW, "RAW": d.RAW, "DAW": d.DAW,
	}, 80))
	b.WriteString("Fig 3b: X-after-Read dependencies\n")
	fmt.Fprintf(&b, "  RAR %.0f%%  DAR %.0f%%  WAR %.0f%%  (paper: 66/24/10)\n",
		100*d.RARFrac, 100*d.DARFrac, 100*d.WARFrac)
	b.WriteString(plot.CDF("  inter-op times (s)", map[string]*stats.CDF{
		"RAR": d.RAR, "DAR": d.DAR, "WAR": d.WAR,
	}, 80))
	if d.DownloadsPerFile.N() > 0 {
		fmt.Fprintf(&b, "  downloads/file: p50=%.0f p90=%.0f p99=%.0f max=%.0f (long tail)\n",
			d.DownloadsPerFile.Quantile(0.5), d.DownloadsPerFile.Quantile(0.9),
			d.DownloadsPerFile.Quantile(0.99), d.DownloadsPerFile.Max())
	}
	fmt.Fprintf(&b, "  dying files (idle >1d before delete): %d (%.1f%% of files; paper: 9.1%%)\n",
		d.DyingFiles, 100*d.DyingFileShare)
	return b.String()
}

// Lifetime reproduces Fig. 3c: the node lifetime distributions.
type Lifetime struct {
	Files, Dirs *stats.CDF // lifetime in seconds, deleted nodes only
	// Fractions of created nodes deleted within the window / within 8h
	// (paper: 28.9% files, 31.5% dirs die in the month; 17.1%/12.9% <8h).
	FileDeadFrac, DirDeadFrac     float64
	FileDead8hFrac, DirDead8hFrac float64
	FilesCreated, DirsCreated     int
}

// AnalyzeLifetime computes Fig. 3c from create/unlink pairs.
func AnalyzeLifetime(t *Trace) Lifetime {
	fileBorn := make(map[uint64]int64)
	dirBorn := make(map[uint64]int64)
	var fileLives, dirLives []float64
	var filesCreated, dirsCreated int

	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != trace.KindStorage {
			continue
		}
		switch protocol.Op(r.Op) {
		case protocol.OpMakeFile:
			if r.Status == uint8(protocol.StatusOK) {
				if _, seen := fileBorn[r.Node]; !seen {
					fileBorn[r.Node] = r.Time
					filesCreated++
				}
			}
		case protocol.OpMakeDir:
			if r.Status == uint8(protocol.StatusOK) {
				if _, seen := dirBorn[r.Node]; !seen {
					dirBorn[r.Node] = r.Time
					dirsCreated++
				}
			}
		case protocol.OpUnlink:
			if r.Status != uint8(protocol.StatusOK) {
				continue
			}
			if born, ok := fileBorn[r.Node]; ok && !r.IsDir() {
				fileLives = append(fileLives, float64(r.Time-born)/float64(time.Second))
				delete(fileBorn, r.Node)
			}
			if born, ok := dirBorn[r.Node]; ok && r.IsDir() {
				dirLives = append(dirLives, float64(r.Time-born)/float64(time.Second))
				delete(dirBorn, r.Node)
			}
		}
	}
	res := Lifetime{
		Files:        stats.NewCDF(fileLives),
		Dirs:         stats.NewCDF(dirLives),
		FilesCreated: filesCreated,
		DirsCreated:  dirsCreated,
	}
	if filesCreated > 0 {
		res.FileDeadFrac = float64(len(fileLives)) / float64(filesCreated)
		res.FileDead8hFrac = res.Files.At(8*3600) * res.FileDeadFrac
	}
	if dirsCreated > 0 {
		res.DirDeadFrac = float64(len(dirLives)) / float64(dirsCreated)
		res.DirDead8hFrac = res.Dirs.At(8*3600) * res.DirDeadFrac
	}
	return res
}

// Render produces the Fig. 3c block.
func (l Lifetime) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3c: node lifetime\n")
	fmt.Fprintf(&b, "  files: %d created, %.1f%% deleted in window (paper: 28.9%%), %.1f%% within 8h (paper: 17.1%%)\n",
		l.FilesCreated, 100*l.FileDeadFrac, 100*l.FileDead8hFrac)
	fmt.Fprintf(&b, "  dirs:  %d created, %.1f%% deleted in window (paper: 31.5%%), %.1f%% within 8h (paper: 12.9%%)\n",
		l.DirsCreated, 100*l.DirDeadFrac, 100*l.DirDead8hFrac)
	b.WriteString(plot.CDF("  lifetimes of deleted nodes (s)", map[string]*stats.CDF{
		"files": l.Files, "dirs": l.Dirs,
	}, 80))
	return b.String()
}

// Dedup reproduces Fig. 4a: duplicates per content hash and the dedup ratio.
type Dedup struct {
	Ratio float64
	// RefsPerHash is the distribution of file references per unique content.
	RefsPerHash *stats.CDF
	// SingletonShare is the fraction of contents with exactly one reference
	// (paper: ≈80%).
	SingletonShare float64
	UniqueContents int
}

// AnalyzeDedup computes Fig. 4a over upload records. References count
// distinct file nodes per content, so save-cycle re-uploads of one file do
// not inflate the ratio.
func AnalyzeDedup(t *Trace) Dedup {
	size := make(map[uint64]uint64)
	nodes := make(map[uint64]map[uint64]struct{})
	for i := range t.Records {
		r := &t.Records[i]
		if isUpload(r) && r.HashLo != 0 {
			size[r.HashLo] = r.Size
			set, ok := nodes[r.HashLo]
			if !ok {
				set = make(map[uint64]struct{})
				nodes[r.HashLo] = set
			}
			set[r.Node] = struct{}{}
		}
	}
	refs := make(map[uint64]float64, len(nodes))
	for h, set := range nodes {
		refs[h] = float64(len(set))
	}
	var unique, logical float64
	var singles int
	counts := make([]float64, 0, len(refs))
	for _, h := range sortedKeys(refs) {
		n := refs[h]
		counts = append(counts, n)
		unique += float64(size[h])
		logical += float64(size[h]) * n
		if n == 1 {
			singles++
		}
	}
	res := Dedup{RefsPerHash: stats.NewCDF(counts), UniqueContents: len(refs)}
	if logical > 0 {
		res.Ratio = 1 - unique/logical
	}
	if len(refs) > 0 {
		res.SingletonShare = float64(singles) / float64(len(refs))
	}
	return res
}

// Render produces the Fig. 4a block.
func (d Dedup) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4a: file-based deduplication\n")
	fmt.Fprintf(&b, "  dedup ratio dr = %.3f (paper: 0.171)\n", d.Ratio)
	fmt.Fprintf(&b, "  unique contents = %d; singletons = %.0f%% (paper: ≈80%%)\n",
		d.UniqueContents, 100*d.SingletonShare)
	if d.RefsPerHash.N() > 0 {
		fmt.Fprintf(&b, "  refs/hash: p50=%.0f p90=%.0f p99=%.0f max=%.0f (long tail)\n",
			d.RefsPerHash.Quantile(0.5), d.RefsPerHash.Quantile(0.9),
			d.RefsPerHash.Quantile(0.99), d.RefsPerHash.Max())
	}
	return b.String()
}

// Sizes reproduces Fig. 4b: file-size CDFs per popular extension and overall.
type Sizes struct {
	All   *stats.CDF
	ByExt map[string]*stats.CDF
	// Sub1MBShare is P(size < 1 MB) overall (paper: 90%).
	Sub1MBShare float64
}

// fig4bExtensions are the extensions the paper plots.
var fig4bExtensions = []string{"jpg", "mp3", "pdf", "doc", "java", "zip"}

// AnalyzeSizes computes Fig. 4b over uploaded files (first version of each
// node, as the paper's "transferred files").
func AnalyzeSizes(t *Trace) Sizes {
	var all []float64
	byExt := make(map[string][]float64)
	want := make(map[string]bool, len(fig4bExtensions))
	for _, e := range fig4bExtensions {
		want[e] = true
	}
	for i := range t.Records {
		r := &t.Records[i]
		if !isUpload(r) {
			continue
		}
		s := float64(r.Size)
		all = append(all, s)
		if ext := t.Ext(r.Ext); want[ext] {
			byExt[ext] = append(byExt[ext], s)
		}
	}
	res := Sizes{All: stats.NewCDF(all), ByExt: make(map[string]*stats.CDF, len(byExt))}
	for ext, xs := range byExt {
		res.ByExt[ext] = stats.NewCDF(xs)
	}
	res.Sub1MBShare = res.All.At(1 << 20)
	return res
}

// Render produces the Fig. 4b block.
func (s Sizes) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4b: file size distributions\n")
	fmt.Fprintf(&b, "  all files: n=%d, P(<1MB) = %.1f%% (paper: 90%%)\n", s.All.N(), 100*s.Sub1MBShare)
	curves := map[string]*stats.CDF{"all": s.All}
	for ext, c := range s.ByExt {
		curves[ext] = c
	}
	b.WriteString(plot.CDF("  sizes (bytes)", curves, 80))
	return b.String()
}

// Types reproduces Fig. 4c: number share vs storage share per file category.
type Types struct {
	Categories []string
	FileShare  []float64
	ByteShare  []float64
}

// categoryOf maps an extension to its Fig. 4c category, mirroring the
// workload profile's catalog (the analysis must not import the generator, so
// the mapping lives here too; both encode the paper's Table of §5.3).
func categoryOf(ext string) string {
	switch ext {
	case "java", "c", "h", "py", "js", "php", "cpp", "html", "css", "rb", "go":
		return "Code"
	case "jpg", "png", "gif", "bmp", "svg", "tiff", "jpeg":
		return "Pictures"
	case "pdf", "txt", "doc", "docx", "xls", "ppt", "odt", "tex", "md":
		return "Documents"
	case "mp3", "wav", "ogg", "flac", "avi", "mp4", "mkv", "wma", "mov":
		return "Audio/Video"
	case "o", "so", "jar", "exe", "dll", "pyc", "msf", "bin":
		return "Binary"
	case "zip", "gz", "tar", "rar", "7z", "bz2":
		return "Compressed"
	default:
		return "Other"
	}
}

// AnalyzeTypes computes Fig. 4c over distinct uploaded files (each node
// counted once, with its last observed size).
func AnalyzeTypes(t *Trace) Types {
	type fileInfo struct {
		ext  string
		size uint64
	}
	files := make(map[uint64]fileInfo)
	for i := range t.Records {
		r := &t.Records[i]
		if isUpload(r) {
			files[r.Node] = fileInfo{ext: t.Ext(r.Ext), size: r.Size}
		}
	}
	counts := make(map[string]float64)
	bytes := make(map[string]float64)
	var totalFiles, totalBytes float64
	for _, f := range files {
		cat := categoryOf(f.ext)
		counts[cat]++
		bytes[cat] += float64(f.size)
		totalFiles++
		totalBytes += float64(f.size)
	}
	cats := []string{"Code", "Pictures", "Documents", "Audio/Video", "Binary", "Compressed", "Other"}
	res := Types{Categories: cats}
	for _, cat := range cats {
		var fs, bs float64
		if totalFiles > 0 {
			fs = counts[cat] / totalFiles
		}
		if totalBytes > 0 {
			bs = bytes[cat] / totalBytes
		}
		res.FileShare = append(res.FileShare, fs)
		res.ByteShare = append(res.ByteShare, bs)
	}
	return res
}

// Render produces the Fig. 4c block.
func (ty Types) Render() string {
	var b strings.Builder
	b.WriteString("Fig 4c: popularity vs storage consumption of file categories\n")
	b.WriteString("  category       files   storage\n")
	for i, cat := range ty.Categories {
		fmt.Fprintf(&b, "  %-13s %6.1f%% %8.1f%%\n", cat, 100*ty.FileShare[i], 100*ty.ByteShare[i])
	}
	b.WriteString("  (paper: Code most numerous; Audio/Video most storage; Docs 10.1%/6.9%)\n")
	return b.String()
}
