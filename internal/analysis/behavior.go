package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// Transitions reproduces Fig. 8: the user-centric operation transition graph.
// Consecutive operations of the same user form bigrams; edge weights are
// global transition probabilities.
type Transitions struct {
	// Prob[a][b] = P(next=b | cur=a), over ops with at least minCount
	// outgoing transitions.
	Prob map[protocol.Op]map[protocol.Op]float64
	// Top lists the highest-probability edges globally (the paper annotates
	// the top ten).
	Top []TransitionEdge
	// TransferSelfLoop is P(next is a transfer | cur is a transfer), the
	// paper's headline observation about repeated transfers.
	TransferSelfLoop float64
}

// TransitionEdge is one labeled edge of the graph.
type TransitionEdge struct {
	From, To protocol.Op
	P        float64 // global probability of this edge among all transitions
}

// AnalyzeTransitions computes Fig. 8.
func AnalyzeTransitions(t *Trace) Transitions {
	lastOp := make(map[uint64]protocol.Op)
	counts := make(map[protocol.Op]map[protocol.Op]uint64)
	var total uint64
	var transferPairs, transferFollows uint64

	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != trace.KindStorage && r.Kind != trace.KindSession {
			continue
		}
		op := protocol.Op(r.Op)
		if prev, ok := lastOp[r.User]; ok {
			row, ok := counts[prev]
			if !ok {
				row = make(map[protocol.Op]uint64)
				counts[prev] = row
			}
			row[op]++
			total++
			if prev.IsData() {
				transferPairs++
				if op.IsData() {
					transferFollows++
				}
			}
		}
		if op == protocol.OpCloseSession {
			delete(lastOp, r.User)
		} else {
			lastOp[r.User] = op
		}
	}

	res := Transitions{Prob: make(map[protocol.Op]map[protocol.Op]float64)}
	for from, row := range counts {
		var rowTotal uint64
		for _, c := range row {
			rowTotal += c
		}
		if rowTotal == 0 {
			continue
		}
		probs := make(map[protocol.Op]float64, len(row))
		for to, c := range row {
			probs[to] = float64(c) / float64(rowTotal)
			if total > 0 {
				res.Top = append(res.Top, TransitionEdge{From: from, To: to, P: float64(c) / float64(total)})
			}
		}
		res.Prob[from] = probs
	}
	sort.Slice(res.Top, func(i, j int) bool { return res.Top[i].P > res.Top[j].P })
	if len(res.Top) > 10 {
		res.Top = res.Top[:10]
	}
	if transferPairs > 0 {
		res.TransferSelfLoop = float64(transferFollows) / float64(transferPairs)
	}
	return res
}

// Render produces the Fig. 8 block.
func (tr Transitions) Render() string {
	var b strings.Builder
	b.WriteString("Fig 8: client transition graph (top global edges)\n")
	for _, e := range tr.Top {
		fmt.Fprintf(&b, "  %-14s → %-14s %.3f\n", e.From, e.To, e.P)
	}
	fmt.Fprintf(&b, "  P(transfer follows transfer) = %.2f (paper: transfers repeat with high probability)\n",
		tr.TransferSelfLoop)
	return b.String()
}

// Burstiness reproduces Fig. 9: per-user inter-operation times for Upload and
// Unlink, their power-law tail fits and the non-Poisson verdict.
type Burstiness struct {
	UploadGaps, UnlinkGaps *stats.CDF
	UploadFit, UnlinkFit   stats.PowerLawFit
	// CoVUpload is the coefficient of variation of upload inter-op times;
	// an exponential (Poisson) process has CoV = 1, bursty processes ≫ 1.
	CoVUpload float64
}

// AnalyzeBurstiness computes Fig. 9.
func AnalyzeBurstiness(t *Trace) Burstiness {
	lastUpload := make(map[uint64]int64)
	lastUnlink := make(map[uint64]int64)
	var upGaps, unGaps []float64
	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case isUpload(r):
			if prev, ok := lastUpload[r.User]; ok {
				if gap := float64(r.Time-prev) / float64(time.Second); gap > 0 {
					upGaps = append(upGaps, gap)
				}
			}
			lastUpload[r.User] = r.Time
		case isUnlink(r):
			if prev, ok := lastUnlink[r.User]; ok {
				if gap := float64(r.Time-prev) / float64(time.Second); gap > 0 {
					unGaps = append(unGaps, gap)
				}
			}
			lastUnlink[r.User] = r.Time
		}
	}
	res := Burstiness{
		UploadGaps: stats.NewCDF(upGaps),
		UnlinkGaps: stats.NewCDF(unGaps),
		UploadFit:  stats.FitPowerLawAuto(upGaps, 50),
		UnlinkFit:  stats.FitPowerLawAuto(unGaps, 50),
	}
	if m := stats.Mean(upGaps); m > 0 {
		res.CoVUpload = stats.StdDev(upGaps) / m
	}
	return res
}

// Render produces the Fig. 9 block.
func (bu Burstiness) Render() string {
	var b strings.Builder
	b.WriteString("Fig 9: burstiness of user inter-operation times\n")
	fmt.Fprintf(&b, "  upload: n=%d, power-law α=%.2f θ=%.1fs (paper: α=1.54, θ=41.4); bursty=%v\n",
		bu.UploadGaps.N(), bu.UploadFit.Alpha, bu.UploadFit.Theta, bu.UploadFit.Bursty())
	fmt.Fprintf(&b, "  unlink: n=%d, power-law α=%.2f θ=%.1fs (paper: α=1.44, θ=19.5); bursty=%v\n",
		bu.UnlinkGaps.N(), bu.UnlinkFit.Alpha, bu.UnlinkFit.Theta, bu.UnlinkFit.Bursty())
	fmt.Fprintf(&b, "  upload inter-op CoV = %.1f (Poisson would be 1) ⇒ %s\n",
		bu.CoVUpload, poissonVerdict(bu.CoVUpload))
	return b.String()
}

func poissonVerdict(cov float64) string {
	if cov > 2 {
		return "non-Poisson, bursty"
	}
	return "near-Poisson"
}

// Volumes reproduces Fig. 10 (files vs directories per volume) and Fig. 11
// (UDF and shared volumes across users).
type Volumes struct {
	FilesPerVolume, DirsPerVolume *stats.CDF
	// Pearson correlation between per-volume file and dir counts (paper:
	// 0.998).
	Pearson float64
	// VolumesOver1000Files share (paper: ≈5%).
	Over1000Share float64
	// WithFilesShare/WithDirsShare (paper: >60% and ≈32%).
	WithFilesShare, WithDirsShare float64
	// UDFsPerUser and SharesPerUser CDFs; shares of users with ≥1 (paper:
	// 58% and 1.8%).
	UDFsPerUser, SharesPerUser *stats.CDF
	UDFShare, SharedShare      float64
	Users                      int
}

// AnalyzeVolumes computes Fig. 10/11 from the trace's create/delete events.
func AnalyzeVolumes(t *Trace) Volumes {
	type vcount struct{ files, dirs float64 }
	perVolume := make(map[uint64]*vcount)
	udfs := make(map[uint64]float64)   // user → UDF count
	shares := make(map[uint64]float64) // user → shares touched
	users := make(map[uint64]struct{})

	vc := func(vol uint64) *vcount {
		c, ok := perVolume[vol]
		if !ok {
			c = &vcount{}
			perVolume[vol] = c
		}
		return c
	}
	for i := range t.Records {
		r := &t.Records[i]
		if r.User != 0 {
			users[r.User] = struct{}{}
		}
		if r.Kind != trace.KindStorage || r.Status != uint8(protocol.StatusOK) {
			continue
		}
		switch protocol.Op(r.Op) {
		case protocol.OpMakeFile:
			vc(r.Volume).files++
		case protocol.OpMakeDir:
			vc(r.Volume).dirs++
		case protocol.OpUnlink:
			if r.IsDir() {
				vc(r.Volume).dirs--
			} else {
				vc(r.Volume).files--
			}
		case protocol.OpCreateUDF:
			udfs[r.User]++
		case protocol.OpCreateShare:
			shares[r.User]++
		case protocol.OpAcceptShare:
			shares[r.User]++
		case protocol.OpDeleteVolume:
			delete(perVolume, r.Volume)
			if udfs[r.User] > 0 {
				udfs[r.User]--
			}
		}
	}

	var files, dirs []float64
	var over1000, withFiles, withDirs int
	for _, vol := range sortedKeys(perVolume) {
		c := perVolume[vol]
		f, d := c.files, c.dirs
		if f < 0 {
			f = 0
		}
		if d < 0 {
			d = 0
		}
		files = append(files, f)
		dirs = append(dirs, d)
		if f > 1000 {
			over1000++
		}
		if f >= 1 {
			withFiles++
		}
		if d >= 1 {
			withDirs++
		}
	}
	res := Volumes{
		FilesPerVolume: stats.NewCDF(files),
		DirsPerVolume:  stats.NewCDF(dirs),
		Pearson:        stats.Pearson(files, dirs),
		Users:          len(users),
	}
	if n := len(perVolume); n > 0 {
		res.Over1000Share = float64(over1000) / float64(n)
		res.WithFilesShare = float64(withFiles) / float64(n)
		res.WithDirsShare = float64(withDirs) / float64(n)
	}
	var udfCounts, shareCounts []float64
	var withUDF, withShare int
	for _, u := range sortedKeys(users) {
		if n := udfs[u]; n > 0 {
			withUDF++
			udfCounts = append(udfCounts, n)
		}
		if n := shares[u]; n > 0 {
			withShare++
			shareCounts = append(shareCounts, n)
		}
	}
	res.UDFsPerUser = stats.NewCDF(udfCounts)
	res.SharesPerUser = stats.NewCDF(shareCounts)
	if len(users) > 0 {
		res.UDFShare = float64(withUDF) / float64(len(users))
		res.SharedShare = float64(withShare) / float64(len(users))
	}
	return res
}

// Render produces the Fig. 10/11 block.
func (v Volumes) Render() string {
	var b strings.Builder
	b.WriteString("Fig 10: files and directories per volume\n")
	fmt.Fprintf(&b, "  Pearson(files, dirs) = %.3f (paper: 0.998)\n", v.Pearson)
	fmt.Fprintf(&b, "  volumes with ≥1 file: %.0f%% (paper: >60%%); with ≥1 dir: %.0f%% (paper: 32%%)\n",
		100*v.WithFilesShare, 100*v.WithDirsShare)
	fmt.Fprintf(&b, "  volumes with >1000 files: %.1f%% (paper: 5%%)\n", 100*v.Over1000Share)
	b.WriteString("Fig 11: user-defined and shared volumes\n")
	fmt.Fprintf(&b, "  users with ≥1 UDF: %.0f%% (paper: 58%%); users with shares: %.1f%% (paper: 1.8%%)\n",
		100*v.UDFShare, 100*v.SharedShare)
	return b.String()
}
