package analysis

import (
	"fmt"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// DDoS reproduces Fig. 5: hourly request rates by request class, and a
// simple anomaly detector that flags the attack windows. The paper found
// three attacks whose session/auth activity ran 5–15× and whose API activity
// ran 4.6×, 245× and 6.7× above normal.
type DDoS struct {
	SessionReqs *stats.TimeSeries // session management requests per hour
	AuthReqs    *stats.TimeSeries // authentication requests per hour
	StorageReqs *stats.TimeSeries // storage (API data) requests per hour
	RPCReqs     *stats.TimeSeries // DAL RPC calls per hour
	Attacks     []AttackWindow
}

// AttackWindow is one detected anomaly.
type AttackWindow struct {
	Day        int
	Hour       int
	Multiplier float64 // auth activity vs series median
	Kind       string  // which series triggered
	// APIMultiplier is the peak storage-request rate over its median during
	// the window (the paper's 4.6x / 245x / 6.7x).
	APIMultiplier float64
}

// AnalyzeDDoS computes Fig. 5 and runs the detector.
func AnalyzeDDoS(t *Trace) DDoS {
	hours := t.Hours()
	res := DDoS{
		SessionReqs: stats.NewTimeSeries(t.Start, time.Hour, hours),
		AuthReqs:    stats.NewTimeSeries(t.Start, time.Hour, hours),
		StorageReqs: stats.NewTimeSeries(t.Start, time.Hour, hours),
		RPCReqs:     stats.NewTimeSeries(t.Start, time.Hour, hours),
	}
	for i := range t.Records {
		r := &t.Records[i]
		at := r.When()
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			res.AuthReqs.Add(at, 1)
			res.SessionReqs.Add(at, 1)
		case r.Kind == trace.KindSession:
			res.SessionReqs.Add(at, 1)
		case r.Kind == trace.KindStorage:
			res.StorageReqs.Add(at, 1)
		}
	}
	if t.RPC != nil {
		for s := range t.RPC.ShardMinute {
			for m, n := range t.RPC.ShardMinute[s] {
				if n > 0 {
					res.RPCReqs.Vals[m/60] += float64(n)
				}
			}
		}
	}
	// The attacks' defining signature is the session/auth storm (§5.4: a
	// single credential distributed to thousands of clients). Detection
	// therefore keys on the auth series; each window is annotated with the
	// API (storage) activity multiplier it carried.
	res.Attacks = detectAttacks(res.AuthReqs, "auth", 3, nil)
	storageMed := stats.Median(res.StorageReqs.NonZero())
	for i := range res.Attacks {
		a := &res.Attacks[i]
		if storageMed <= 0 {
			continue
		}
		var peak float64
		for h := a.Day*24 + a.Hour; h < len(res.StorageReqs.Vals) && h <= a.Day*24+a.Hour+3; h++ {
			if v := res.StorageReqs.Vals[h] / storageMed; v > peak {
				peak = v
			}
		}
		a.APIMultiplier = peak
	}
	return res
}

// detectAttacks flags hours whose rate exceeds threshold× the median of the
// surrounding week, merging consecutive hours into one window. This is the
// automated countermeasure the paper calls for (§5.4: U1's response was
// manual).
func detectAttacks(ts *stats.TimeSeries, kind string, threshold float64, into []AttackWindow) []AttackWindow {
	med := stats.Median(ts.NonZero())
	if med <= 0 {
		return into
	}
	lastHour := -10
	for h, v := range ts.Vals {
		if v > threshold*med {
			if h == lastHour+1 {
				// extend the previous window; keep its peak multiplier
				w := &into[len(into)-1]
				if v/med > w.Multiplier {
					w.Multiplier = v / med
				}
			} else {
				into = append(into, AttackWindow{
					Day:        h / 24,
					Hour:       h % 24,
					Multiplier: v / med,
					Kind:       kind,
				})
			}
			lastHour = h
		}
	}
	return into
}

// Render produces the Fig. 5 block.
func (d DDoS) Render() string {
	var b strings.Builder
	b.WriteString(plot.MultiLine("Fig 5: requests per hour by class", map[string][]float64{
		"session": d.SessionReqs.Vals,
		"auth":    d.AuthReqs.Vals,
		"storage": d.StorageReqs.Vals,
	}, 96, 10))
	if len(d.Attacks) == 0 {
		b.WriteString("  no attacks detected\n")
		return b.String()
	}
	b.WriteString("  detected attack windows:\n")
	for _, a := range d.Attacks {
		fmt.Fprintf(&b, "    day %2d %02d:00  auth %.1fx, API activity %.1fx above median\n",
			a.Day, a.Hour, a.Multiplier, a.APIMultiplier)
	}
	b.WriteString("  (paper: 3 attacks — Jan 15 4.6x, Jan 16 245x, Feb 6 6.7x API activity;\n")
	b.WriteString("   auth 5–15x; manual countermeasures, decay within an hour)\n")
	return b.String()
}
