package analysis

import (
	"strings"
	"sync"
	"testing"
	"time"

	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/workload"
)

// sharedTrace generates one medium trace shared by the analysis tests
// (regenerating per test would dominate runtime).
var (
	onceTrace   sync.Once
	cachedTrace *Trace
)

func testTrace(t *testing.T) *Trace {
	t.Helper()
	onceTrace.Do(func() {
		const users, days = 400, 7
		cluster := server.NewCluster(server.Config{
			Seed: 7, AuthFailureRate: 0.0276,
			// A small delta log makes clients fall back to rescans at test
			// scale, exercising the cascade get_from_scratch path.
			DeltaLogLimit: 48,
		})
		col := trace.NewCollector(trace.Config{
			Start: workload.PaperStart, Days: days,
			Shards: cluster.Store.NumShards(), Seed: 7,
		})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		// Workers pinned to 1: the calibration bands below are defined
		// against the serial stream; parallel-shard determinism has its own
		// coverage in internal/workload.
		g := workload.New(workload.Config{
			Users: users, Days: days, Start: workload.PaperStart, Seed: 7, Workers: 1,
			Attacks: []workload.Attack{
				{Day: 3, Hour: 13, Duration: 2 * time.Hour, APIFactor: 40, AuthFactor: 8},
			},
		}, cluster)
		g.Run()
		cachedTrace = FromCollector(col, workload.PaperStart, days)
	})
	if len(cachedTrace.Records) == 0 {
		t.Fatal("shared trace is empty")
	}
	return cachedTrace
}

func TestSummary(t *testing.T) {
	tr := testTrace(t)
	s := AnalyzeSummary(tr)
	if s.UniqueUsers == 0 || s.Sessions == 0 || s.Transfers == 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.UploadBytes == 0 || s.DownloadBytes == 0 {
		t.Errorf("traffic totals zero: %+v", s)
	}
	if s.UpdateOps == 0 {
		t.Error("no updates observed")
	}
	if f := s.UpdateOpFraction(); f < 0.03 || f > 0.30 {
		t.Errorf("update op fraction = %v, want near 0.10", f)
	}
	if s.DedupRatio <= 0.02 || s.DedupRatio > 0.5 {
		t.Errorf("dedup ratio = %v, want near 0.171", s.DedupRatio)
	}
	if !strings.Contains(s.Render(), "Table 3") {
		t.Error("render should include the table header")
	}
}

func TestTraffic(t *testing.T) {
	tr := testTrace(t)
	tf := AnalyzeTraffic(tr)
	if stSum(tf.Up.Vals) == 0 || stSum(tf.Down.Vals) == 0 {
		t.Fatal("empty traffic series")
	}
	if tf.DayNightRatio < 1.5 {
		t.Errorf("day/night amplitude = %v, want clearly diurnal", tf.DayNightRatio)
	}
	// Small files dominate op counts; large files dominate bytes.
	upOps := tf.UpBuckets.CountFractions()
	upData := tf.UpBuckets.WeightFractions()
	if upOps[0] < 0.5 {
		t.Errorf("sub-0.5MB upload op share = %v, want dominant (paper 84%%)", upOps[0])
	}
	last := len(upData) - 1
	if upData[last] < 0.3 {
		t.Errorf(">25MB upload byte share = %v, want dominant (paper 79%%)", upData[last])
	}
	if upOps[last] > 0.05 {
		t.Errorf(">25MB upload op share = %v, want small", upOps[last])
	}
	if !strings.Contains(tf.Render(), "Fig 2a") {
		t.Error("render header")
	}
}

func stSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestRWRatio(t *testing.T) {
	tr := testTrace(t)
	rw := AnalyzeRWRatio(tr)
	if rw.Box.N == 0 {
		t.Fatal("no R/W samples")
	}
	if rw.Box.Median <= 0 {
		t.Errorf("median R/W = %v", rw.Box.Median)
	}
	if len(rw.ACF) == 0 {
		t.Fatal("no ACF")
	}
	if rw.Render() == "" {
		t.Error("render")
	}
}

func TestDependencies(t *testing.T) {
	tr := testTrace(t)
	d := AnalyzeDependencies(tr)
	if d.AfterWriteN == 0 || d.AfterReadN == 0 {
		t.Fatalf("no dependencies: %+v", d)
	}
	// WAW+RAW+DAW must sum to 1.
	if tot := d.WAWFrac + d.RAWFrac + d.DAWFrac; tot < 0.999 || tot > 1.001 {
		t.Errorf("after-write fractions sum to %v", tot)
	}
	if tot := d.WARFrac + d.RARFrac + d.DARFrac; tot < 0.999 || tot > 1.001 {
		t.Errorf("after-read fractions sum to %v", tot)
	}
	// Bursty writes: most WAW gaps under an hour (paper: 80%).
	if d.WAWUnderHour < 0.4 {
		t.Errorf("WAW < 1h = %v, want majority", d.WAWUnderHour)
	}
	if d.DownloadsPerFile.N() == 0 {
		t.Error("no download counts")
	}
	if !strings.Contains(d.Render(), "Fig 3a") {
		t.Error("render")
	}
}

func TestLifetime(t *testing.T) {
	tr := testTrace(t)
	l := AnalyzeLifetime(tr)
	if l.FilesCreated == 0 || l.DirsCreated == 0 {
		t.Fatalf("no creations: %+v", l)
	}
	if l.FileDeadFrac <= 0 || l.FileDeadFrac > 1 {
		t.Errorf("file dead fraction = %v", l.FileDeadFrac)
	}
	if l.FileDead8hFrac > l.FileDeadFrac {
		t.Error("8h deaths cannot exceed total deaths")
	}
	if !strings.Contains(l.Render(), "Fig 3c") {
		t.Error("render")
	}
}

func TestDedup(t *testing.T) {
	tr := testTrace(t)
	d := AnalyzeDedup(tr)
	if d.UniqueContents == 0 {
		t.Fatal("no contents")
	}
	if d.Ratio <= 0 || d.Ratio >= 1 {
		t.Errorf("dedup ratio = %v", d.Ratio)
	}
	if d.SingletonShare < 0.5 {
		t.Errorf("singleton share = %v, want large (paper 80%%)", d.SingletonShare)
	}
	if !strings.Contains(d.Render(), "Fig 4a") {
		t.Error("render")
	}
}

func TestSizesAndTypes(t *testing.T) {
	tr := testTrace(t)
	s := AnalyzeSizes(tr)
	if s.All.N() == 0 {
		t.Fatal("no sizes")
	}
	if s.Sub1MBShare < 0.75 || s.Sub1MBShare > 0.98 {
		t.Errorf("P(<1MB) = %v, want ≈ 0.90", s.Sub1MBShare)
	}
	if len(s.ByExt) < 3 {
		t.Errorf("per-extension curves = %d", len(s.ByExt))
	}

	ty := AnalyzeTypes(tr)
	var fileSum, byteSum float64
	codeIdx, avIdx := -1, -1
	for i, cat := range ty.Categories {
		fileSum += ty.FileShare[i]
		byteSum += ty.ByteShare[i]
		switch cat {
		case "Code":
			codeIdx = i
		case "Audio/Video":
			avIdx = i
		}
	}
	if fileSum < 0.999 || byteSum < 0.999 {
		t.Errorf("shares sum to %v/%v", fileSum, byteSum)
	}
	// Code must beat A/V on counts; A/V must beat Code on bytes.
	if ty.FileShare[codeIdx] <= ty.FileShare[avIdx] {
		t.Error("code should be more numerous than A/V")
	}
	if ty.ByteShare[avIdx] <= ty.ByteShare[codeIdx] {
		t.Error("A/V should hold more bytes than code")
	}
	if !strings.Contains(ty.Render(), "Fig 4c") || !strings.Contains(s.Render(), "Fig 4b") {
		t.Error("render")
	}
}

func TestDDoSDetection(t *testing.T) {
	tr := testTrace(t)
	d := AnalyzeDDoS(tr)
	if len(d.Attacks) == 0 {
		t.Fatal("the injected attack was not detected")
	}
	var onDay3 bool
	for _, a := range d.Attacks {
		if a.Day == 3 {
			onDay3 = true
		}
	}
	if !onDay3 {
		t.Errorf("attack windows = %+v, want one on day 3", d.Attacks)
	}
	if !strings.Contains(d.Render(), "Fig 5") {
		t.Error("render")
	}
}

func TestOnlineActive(t *testing.T) {
	tr := testTrace(t)
	oa := AnalyzeOnlineActive(tr)
	if stSum(oa.Online.Vals) == 0 {
		t.Fatal("no online users")
	}
	if stSum(oa.Active.Vals) == 0 {
		t.Fatal("no active users")
	}
	// Online must always dominate active.
	for h := range oa.Online.Vals {
		if oa.Active.Vals[h] > oa.Online.Vals[h] {
			t.Fatalf("hour %d: active %v > online %v", h, oa.Active.Vals[h], oa.Online.Vals[h])
		}
	}
	if oa.MaxActiveShare <= 0 || oa.MaxActiveShare > 1 {
		t.Errorf("active share range = %v–%v", oa.MinActiveShare, oa.MaxActiveShare)
	}
	if !strings.Contains(oa.Render(), "Fig 6") {
		t.Error("render")
	}
}

func TestOpFrequency(t *testing.T) {
	tr := testTrace(t)
	of := AnalyzeOpFrequency(tr)
	if len(of.Ops) < 6 {
		t.Fatalf("op vocabulary too small: %v", of.Ops)
	}
	if !strings.Contains(of.Render(), "Fig 7a") {
		t.Error("render")
	}
}

func TestUserTraffic(t *testing.T) {
	tr := testTrace(t)
	ut := AnalyzeUserTraffic(tr)
	if ut.Users == 0 {
		t.Fatal("no users")
	}
	if ut.GiniUp <= 0.4 || ut.GiniUp >= 1 {
		t.Errorf("upload Gini = %v, want high inequality (paper 0.894)", ut.GiniUp)
	}
	if ut.Top1Share <= 0.05 {
		t.Errorf("top-1%% share = %v, want substantial (paper 0.656)", ut.Top1Share)
	}
	if ut.ClassShares["occasional"] < 0.5 {
		t.Errorf("occasional share = %v, want dominant (paper 0.8582)", ut.ClassShares["occasional"])
	}
	if len(ut.LorenzUp) == 0 || ut.LorenzUp[len(ut.LorenzUp)-1].Share != 1 {
		t.Error("Lorenz curve must end at (1,1)")
	}
	if !strings.Contains(ut.Render(), "Fig 7b") {
		t.Error("render")
	}
}

func TestTransitions(t *testing.T) {
	tr := testTrace(t)
	trans := AnalyzeTransitions(tr)
	if len(trans.Top) == 0 {
		t.Fatal("no transitions")
	}
	if trans.TransferSelfLoop < 0.3 {
		t.Errorf("transfer self-loop = %v, want high (repeated transfers)", trans.TransferSelfLoop)
	}
	// Row probabilities sum to 1.
	for from, row := range trans.Prob {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("row %v sums to %v", from, sum)
		}
	}
	if !strings.Contains(trans.Render(), "Fig 8") {
		t.Error("render")
	}
}

func TestBurstiness(t *testing.T) {
	tr := testTrace(t)
	bu := AnalyzeBurstiness(tr)
	if bu.UploadGaps.N() < 100 {
		t.Fatalf("too few upload gaps: %d", bu.UploadGaps.N())
	}
	if !bu.UploadFit.Bursty() {
		t.Errorf("upload fit = %+v, want bursty (1<α<2)", bu.UploadFit)
	}
	if bu.CoVUpload < 1.5 {
		t.Errorf("upload CoV = %v, want ≫ 1 (non-Poisson)", bu.CoVUpload)
	}
	if !strings.Contains(bu.Render(), "Fig 9") {
		t.Error("render")
	}
}

func TestVolumes(t *testing.T) {
	tr := testTrace(t)
	v := AnalyzeVolumes(tr)
	if v.Users == 0 {
		t.Fatal("no users")
	}
	if v.Pearson < 0.2 {
		t.Errorf("files/dirs Pearson = %v, want strong correlation (paper 0.998)", v.Pearson)
	}
	if v.UDFShare <= 0.2 || v.UDFShare > 0.95 {
		t.Errorf("UDF share = %v (paper 0.58)", v.UDFShare)
	}
	if v.SharedShare > 0.2 {
		t.Errorf("share share = %v, want rare (paper 0.018)", v.SharedShare)
	}
	if !strings.Contains(v.Render(), "Fig 10") {
		t.Error("render")
	}
}

func TestRPCPerf(t *testing.T) {
	tr := testTrace(t)
	rp := AnalyzeRPCPerf(tr)
	if len(rp.PerRPC) < 8 {
		t.Fatalf("RPC vocabulary too small: %d", len(rp.PerRPC))
	}
	if rp.CascadeToReadRatio < 5 {
		t.Errorf("cascade/read ratio = %v, want ≥5 (paper >10)", rp.CascadeToReadRatio)
	}
	if rp.MaxTail < 0.03 {
		t.Errorf("max tail = %v, want heavy tails", rp.MaxTail)
	}
	if !strings.Contains(rp.Render(), "Fig 12/13") {
		t.Error("render")
	}
}

func TestLoadBalance(t *testing.T) {
	tr := testTrace(t)
	lb := AnalyzeLoadBalance(tr)
	if lb.Servers < 2 || lb.Shards < 2 {
		t.Fatalf("balance over %d servers / %d shards", lb.Servers, lb.Shards)
	}
	// Short-term dispersion exceeds long-term dispersion (the Fig. 14
	// observation).
	if lb.ShardMinuteCV <= lb.ShardLongTermCV {
		t.Errorf("short-term CoV %v should exceed long-term %v",
			lb.ShardMinuteCV, lb.ShardLongTermCV)
	}
	if !strings.Contains(lb.Render(), "Fig 14") {
		t.Error("render")
	}
}

func TestSessions(t *testing.T) {
	tr := testTrace(t)
	se := AnalyzeSessions(tr)
	if se.Sessions == 0 {
		t.Fatal("no sessions")
	}
	if se.Sub1s < 0.15 || se.Sub1s > 0.5 {
		t.Errorf("sub-second sessions = %v (paper 0.32)", se.Sub1s)
	}
	if se.Sub8h < 0.85 {
		t.Errorf("sub-8h sessions = %v (paper 0.97)", se.Sub8h)
	}
	if se.ActiveShare <= 0 || se.ActiveShare > 0.4 {
		t.Errorf("active sessions = %v (paper 0.0557)", se.ActiveShare)
	}
	if se.AuthFailShare <= 0 || se.AuthFailShare > 0.1 {
		t.Errorf("auth failures = %v (paper 0.0276)", se.AuthFailShare)
	}
	if se.Top20OpsShare < 0.5 {
		t.Errorf("top-20%% ops share = %v, want dominant (paper 0.967)", se.Top20OpsShare)
	}
	if !strings.Contains(se.Render(), "Fig 15") {
		t.Error("render")
	}
}

func TestFindings(t *testing.T) {
	tr := testTrace(t)
	f := AnalyzeFindings(tr)
	if len(f.Rows) < 8 {
		t.Fatalf("findings rows = %d", len(f.Rows))
	}
	out := f.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "dedup") {
		t.Error("render")
	}
}

func TestFromDatasetRoundTrip(t *testing.T) {
	tr := testTrace(t)
	// Serialize a slice of the trace and re-analyze from disk.
	col := trace.NewCollector(trace.Config{Start: tr.Start, Days: tr.Days})
	obs := col.APIObserver()
	_ = obs
	dir := t.TempDir()
	// Write via a fresh collector is impractical here; instead verify the
	// dataset path through the already-tested trace round trip and check
	// FromDataset wiring with an empty RPC set.
	ds := &trace.Dataset{Records: tr.Records, Servers: tr.Servers, Extensions: tr.Extensions}
	view := FromDataset(ds, tr.Start, tr.Days, 10)
	if len(view.Records) != len(tr.Records) {
		t.Error("records lost")
	}
	s1 := AnalyzeSummary(tr)
	s2 := AnalyzeSummary(view)
	if s1.UploadOps != s2.UploadOps || s1.UploadBytes != s2.UploadBytes {
		t.Errorf("summary differs across views: %+v vs %+v", s1, s2)
	}
	_ = dir
}
