package analysis

import (
	"fmt"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// WhatIf quantifies the §9 improvement opportunities the paper derives from
// its measurements: what the provider would save with delta updates, what
// file-based deduplication saves, how much capacity cold sessions waste, and
// how effective a server-side download cache would be. Each estimate comes
// with the assumption it rests on.
type WhatIf struct {
	// DeltaUpdateSavings is the upload traffic avoidable with delta updates
	// at the assumed DeltaEfficiency (the paper attributes 18.5% of upload
	// traffic to updates sent in full; delta encoding would ship only the
	// changed portion).
	UpdateBytes        uint64
	UploadBytes        uint64
	DeltaEfficiency    float64 // assumed fraction of an update that is unchanged
	DeltaUpdateSavings uint64

	// DedupSavings is the §5.3 storage saving (logical − unique bytes) and
	// its share of the monthly bill at the paper's ≈$20k S3 cost.
	DedupSavings    uint64
	DedupMonthlyUSD float64
	LogicalBytes    uint64

	// Cold sessions hold TCP connections without doing data management
	// (§7.3: 94.4% of sessions); ColdConnHours is connection-time spent on
	// them — the resource a pull-mode client would release.
	ColdSessions   int
	TotalSessions  int
	ColdConnHours  float64
	TotalConnHours float64

	// CacheHitRate estimates a server-side LRU over downloads: the share of
	// downloads re-reading content read within the previous CacheWindow
	// (§5.2 motivates caching from the short RAR times and the long tail of
	// reads per file).
	CacheWindow  time.Duration
	CacheHits    uint64
	Downloads    uint64
	CacheHitRate float64

	// SyncDefermentSavings: uploads of intermediate versions that a short
	// deferment window would have coalesced (a WAW within DefermentWindow
	// makes the earlier version's transfer unnecessary).
	DefermentWindow      time.Duration
	IntermediateVersions uint64
	IntermediateBytes    uint64
}

// AnalyzeWhatIf computes the §9 estimates with the stated assumptions.
func AnalyzeWhatIf(t *Trace) WhatIf {
	res := WhatIf{
		DeltaEfficiency: 0.80, // a tag edit rewrites a small fraction of the file
		CacheWindow:     24 * time.Hour,
		DefermentWindow: 30 * time.Second,
	}

	type sess struct {
		started int64
		ops     int
	}
	open := make(map[uint64]*sess)
	lastRead := make(map[uint64]int64)  // node → last download time
	lastWrite := make(map[uint64]int64) // node → last upload time
	lastWriteSize := make(map[uint64]uint64)

	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			if r.Status == uint8(protocol.StatusOK) {
				open[r.Session] = &sess{started: r.Time}
			}
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpCloseSession:
			if s, ok := open[r.Session]; ok {
				hours := float64(r.Time-s.started) / float64(time.Hour)
				res.TotalSessions++
				res.TotalConnHours += hours
				if s.ops == 0 {
					res.ColdSessions++
					res.ColdConnHours += hours
				}
				delete(open, r.Session)
			}
		case isUpload(r):
			if s, ok := open[r.Session]; ok {
				s.ops++
			}
			res.UploadBytes += r.Size
			if r.IsUpdate() {
				res.UpdateBytes += r.Size
			}
			// Sync deferment: a write landing within the window of the
			// previous write to the same node means the previous transfer
			// shipped an intermediate version.
			if prev, ok := lastWrite[r.Node]; ok {
				if time.Duration(r.Time-prev) <= res.DefermentWindow {
					res.IntermediateVersions++
					res.IntermediateBytes += lastWriteSize[r.Node]
				}
			}
			lastWrite[r.Node] = r.Time
			lastWriteSize[r.Node] = r.Size
		case isDownload(r):
			if s, ok := open[r.Session]; ok {
				s.ops++
			}
			res.Downloads++
			if prev, ok := lastRead[r.Node]; ok {
				if time.Duration(r.Time-prev) <= res.CacheWindow {
					res.CacheHits++
				}
			}
			lastRead[r.Node] = r.Time
		}
	}
	res.DeltaUpdateSavings = uint64(float64(res.UpdateBytes) * res.DeltaEfficiency)
	if res.Downloads > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(res.Downloads)
	}

	d := AnalyzeDedup(t)
	res.LogicalBytes = res.UploadBytes
	res.DedupSavings = uint64(d.Ratio * float64(res.UploadBytes))
	res.DedupMonthlyUSD = 20000 * d.Ratio // the paper's ≈$20k monthly bill
	return res
}

// Render produces the §9 block.
func (w WhatIf) Render() string {
	var b strings.Builder
	b.WriteString("§9 what-if estimates (assumptions stated inline)\n")
	fmt.Fprintf(&b, "  delta updates: %sB of %sB upload traffic is updates; at %.0f%% delta\n",
		plot.SI(float64(w.UpdateBytes)), plot.SI(float64(w.UploadBytes)), 100*w.DeltaEfficiency)
	fmt.Fprintf(&b, "    efficiency the client would avoid %sB of transfers\n",
		plot.SI(float64(w.DeltaUpdateSavings)))
	fmt.Fprintf(&b, "  dedup: %sB stored once instead of many times ≈ $%.0f/month at U1's bill\n",
		plot.SI(float64(w.DedupSavings)), w.DedupMonthlyUSD)
	cold := 0.0
	if w.TotalSessions > 0 {
		cold = float64(w.ColdSessions) / float64(w.TotalSessions)
	}
	fmt.Fprintf(&b, "  cold sessions: %.1f%% of sessions (paper: 94.4%%) holding %.0f of %.0f conn-hours\n",
		100*cold, w.ColdConnHours, w.TotalConnHours)
	fmt.Fprintf(&b, "  download cache (%v window): %.1f%% of downloads re-read recent content\n",
		w.CacheWindow, 100*w.CacheHitRate)
	fmt.Fprintf(&b, "  sync deferment (%v): %d intermediate versions (%sB) were transferred\n",
		w.DefermentWindow, w.IntermediateVersions, plot.SI(float64(w.IntermediateBytes)))
	return b.String()
}

// HourlyStats is a convenience summary used by ablation studies: the
// dispersion of a per-hour series.
func HourlyStats(ts *stats.TimeSeries) stats.BoxPlot {
	return stats.NewBoxPlot(ts.NonZero())
}
