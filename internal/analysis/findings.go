package analysis

import (
	"fmt"
	"strings"
)

// Findings reproduces Table 1: the paper's headline observations, each
// recomputed from the trace next to the value the paper reports.
type Findings struct {
	Rows []FindingRow
}

// FindingRow is one Table 1 line.
type FindingRow struct {
	Finding  string
	Paper    string
	Measured string
	// Class mirrors the paper's marking: C confirms prior work, P partially
	// aligned, N new observation.
	Class byte
}

// AnalyzeFindings composes Table 1 from the other analyses.
func AnalyzeFindings(t *Trace) Findings {
	sum := AnalyzeSummary(t)
	sizes := AnalyzeSizes(t)
	dedup := AnalyzeDedup(t)
	ddos := AnalyzeDDoS(t)
	ut := AnalyzeUserTraffic(t)
	burst := AnalyzeBurstiness(t)
	rpcPerf := AnalyzeRPCPerf(t)
	lb := AnalyzeLoadBalance(t)
	trans := AnalyzeTransitions(t)

	rows := []FindingRow{
		{
			Finding:  "files smaller than 1 MB",
			Paper:    "90%",
			Measured: fmt.Sprintf("%.0f%%", 100*sizes.Sub1MBShare),
			Class:    'P',
		},
		{
			Finding:  "upload traffic caused by file updates",
			Paper:    "18.5%",
			Measured: fmt.Sprintf("%.1f%%", 100*sum.UpdateByteFraction()),
			Class:    'C',
		},
		{
			Finding:  "deduplication ratio in one month",
			Paper:    "17%",
			Measured: fmt.Sprintf("%.1f%%", 100*dedup.Ratio),
			Class:    'C',
		},
		{
			Finding:  "DDoS attacks detected",
			Paper:    "3 (frequent)",
			Measured: fmt.Sprintf("%d windows", len(ddos.Attacks)),
			Class:    'N',
		},
		{
			Finding:  "traffic from the top 1% of users",
			Paper:    "65%",
			Measured: fmt.Sprintf("%.0f%%", 100*ut.Top1Share),
			Class:    'P',
		},
		{
			Finding:  "operations executed in long sequences",
			Paper:    "transfer follows transfer",
			Measured: fmt.Sprintf("P=%.2f", trans.TransferSelfLoop),
			Class:    'C',
		},
		{
			Finding:  "bursty non-Poisson user operations",
			Paper:    "power-law 1<α<2",
			Measured: fmt.Sprintf("upload α=%.2f", burst.UploadFit.Alpha),
			Class:    'N',
		},
		{
			Finding:  "RPC service time long tails",
			Paper:    "7–22% far from median",
			Measured: fmt.Sprintf("%.0f–%.0f%%", 100*rpcPerf.MinTail, 100*rpcPerf.MaxTail),
			Class:    'N',
		},
		{
			Finding:  "short-window load far from the mean",
			Paper:    "high variance",
			Measured: fmt.Sprintf("shard CoV=%.2f", lb.ShardMinuteCV),
			Class:    'N',
		},
	}
	return Findings{Rows: rows}
}

// Render produces the Table 1 block.
func (f Findings) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: key findings (paper vs this reproduction)\n")
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "  [%c] %-42s paper: %-22s measured: %s\n",
			row.Class, row.Finding, row.Paper, row.Measured)
	}
	return b.String()
}
