package analysis

import (
	"cmp"
	"sort"
)

// sortedKeys returns m's keys in ascending order. The report builders
// accumulate floats per key; visiting entries in map range order would
// perturb the sums at the ulp level from run to run, so every such loop
// iterates a sorted key list instead.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
