package analysis

import (
	"fmt"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/stats"
)

// Traffic reproduces Fig. 2a (hourly transferred traffic) and Fig. 2b
// (traffic and operations by file-size category).
type Traffic struct {
	// Up and Down are GBytes/hour over the whole window.
	Up, Down *stats.TimeSeries
	// DayNightRatio is the peak-hour / trough-hour ratio of upload
	// operations over the averaged day (paper: ~10x on uploaded volume; at
	// simulation scale operation counts give the stable estimate, since one
	// huge file can dominate an hour's bytes).
	DayNightRatio float64
	// Size categories of Fig. 2b, bounds in MB: {0.5, 1, 5, 25}.
	UpBuckets, DownBuckets *stats.Buckets
}

// AnalyzeTraffic computes Fig. 2a/2b.
func AnalyzeTraffic(t *Trace) Traffic {
	const gb = 1e9
	res := Traffic{
		Up:          stats.NewTimeSeries(t.Start, time.Hour, t.Hours()),
		Down:        stats.NewTimeSeries(t.Start, time.Hour, t.Hours()),
		UpBuckets:   stats.NewBuckets(0.5, 1, 5, 25),
		DownBuckets: stats.NewBuckets(0.5, 1, 5, 25),
	}
	const mb = 1 << 20
	upOps := stats.NewTimeSeries(t.Start, time.Hour, t.Hours())
	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case isUpload(r):
			res.Up.Add(r.When(), float64(r.Size)/gb)
			res.UpBuckets.Add(float64(r.Size)/mb, float64(r.Size))
			upOps.Add(r.When(), 1)
		case isDownload(r):
			res.Down.Add(r.When(), float64(r.Size)/gb)
			res.DownBuckets.Add(float64(r.Size)/mb, float64(r.Size))
		}
	}
	hod := upOps.HourOfDay()
	var peak, trough float64 = 0, -1
	for _, v := range hod {
		if v > peak {
			peak = v
		}
		if v > 0 && (trough < 0 || v < trough) {
			trough = v
		}
	}
	if trough > 0 {
		res.DayNightRatio = peak / trough
	}
	return res
}

// Render produces the Fig. 2a chart and Fig. 2b table.
func (tr Traffic) Render() string {
	var b strings.Builder
	b.WriteString(plot.MultiLine("Fig 2a: transferred traffic (GB/hour)", map[string][]float64{
		"upload":   tr.Up.Vals,
		"download": tr.Down.Vals,
	}, 96, 12))
	fmt.Fprintf(&b, "  upload day/night amplitude ≈ %.1fx (paper: ~10x)\n\n", tr.DayNightRatio)

	b.WriteString("Fig 2b: traffic vs file size category\n")
	b.WriteString("  category        up-ops   up-data  down-ops down-data\n")
	upOps, upData := tr.UpBuckets.CountFractions(), tr.UpBuckets.WeightFractions()
	dnOps, dnData := tr.DownBuckets.CountFractions(), tr.DownBuckets.WeightFractions()
	for i := range upOps {
		fmt.Fprintf(&b, "  %-14s %7.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			tr.UpBuckets.Label(i, "MB"), 100*upOps[i], 100*upData[i], 100*dnOps[i], 100*dnData[i])
	}
	fmt.Fprintf(&b, "  (paper: >25MB files carry 79.3%%/88.2%% of up/down traffic;\n")
	fmt.Fprintf(&b, "   <0.5MB files are 84.3%%/89.0%% of up/down operations)\n")
	return b.String()
}

// RWRatio reproduces Fig. 2c: the hourly read/write byte ratio, its
// variability, and its autocorrelation structure.
type RWRatio struct {
	Hourly *stats.TimeSeries
	Box    stats.BoxPlot
	ACF    []float64
	Conf   float64 // ±2/√N confidence band
	// Exceedances counts lags outside the band; "most lags outside"
	// indicates the long-term correlation the paper reports.
	Exceedances int
	// MorningTrend is the linear slope of the averaged R/W ratio from 6am
	// to 3pm (paper: linear decay, i.e. negative slope).
	MorningTrend float64
}

// AnalyzeRWRatio computes Fig. 2c with 1-hour bins.
func AnalyzeRWRatio(t *Trace) RWRatio {
	up := stats.NewTimeSeries(t.Start, time.Hour, t.Hours())
	down := stats.NewTimeSeries(t.Start, time.Hour, t.Hours())
	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case isUpload(r):
			up.Add(r.When(), float64(r.Size))
		case isDownload(r):
			down.Add(r.When(), float64(r.Size))
		}
	}
	// Exclude hours with negligible upload volume before forming ratios: at
	// simulation scale a near-empty night hour would otherwise produce
	// enormous R/W outliers that the 1.29M-user original never shows.
	floor := 0.02 * stats.Mean(up.NonZero())
	ratio := stats.NewTimeSeries(up.Start, up.Bin, len(up.Vals))
	for i := range up.Vals {
		if up.Vals[i] > floor && down.Vals[i] > 0 {
			ratio.Vals[i] = down.Vals[i] / up.Vals[i]
		}
	}
	vals := ratio.NonZero()
	res := RWRatio{
		Hourly: ratio,
		Box:    stats.NewBoxPlot(vals),
		Conf:   stats.ACFConfidence(len(ratio.Vals)),
	}
	res.ACF = stats.ACF(ratio.Vals, min(700, len(ratio.Vals)-1))
	res.Exceedances = stats.ACFExceedances(res.ACF, res.Conf)

	// Morning trend: least-squares slope of hour-of-day means, 6..15.
	hod := ratio.HourOfDay()
	var xs, ys []float64
	for h := 6; h <= 15; h++ {
		if hod[h] > 0 {
			xs = append(xs, float64(h))
			ys = append(ys, hod[h])
		}
	}
	if len(xs) >= 2 {
		res.MorningTrend = slope(xs, ys)
	}
	return res
}

// slope returns the least-squares slope of y over x.
func slope(xs, ys []float64) float64 {
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Render produces the Fig. 2c block.
func (rw RWRatio) Render() string {
	var b strings.Builder
	b.WriteString("Fig 2c: R/W ratio (1-hour bins)\n")
	fmt.Fprintf(&b, "  %s\n", rw.Box)
	fmt.Fprintf(&b, "  (paper: median 1.14, mean 1.17, up to 8x within-day swing)\n")
	fmt.Fprintf(&b, "  ACF: %d/%d lags outside ±%.4f ⇒ %s (paper: correlated)\n",
		rw.Exceedances, len(rw.ACF), rw.Conf, correlatedLabel(rw.Exceedances, len(rw.ACF)))
	fmt.Fprintf(&b, "  R/W 6am→3pm least-squares slope = %.4f/h (paper: linear decay)\n", rw.MorningTrend)
	b.WriteString(plot.Line("  hourly R/W ratio", rw.Hourly.Vals, 96, 8))
	return b.String()
}

func correlatedLabel(exceed, total int) string {
	if total == 0 {
		return "insufficient data"
	}
	if float64(exceed) > 0.3*float64(total) {
		return "long-term correlation"
	}
	return "weak correlation"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
