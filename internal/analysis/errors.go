package analysis

import (
	"fmt"
	"sort"
	"strings"

	"u1/internal/faults"
	"u1/internal/protocol"
	"u1/internal/trace"
)

// ErrorRates is the error-rate-by-operation-class report. The provider-side
// failure literature (PAPERS.md: Characterizing User and Provider Reported
// Cloud Failures) finds that provider-visible failures cluster by operation
// class, which is exactly the granularity the dispatch pipeline's fault
// injection and admission control act on; this analysis closes the loop by
// measuring the per-class rates out of the collected trace.
type ErrorRates struct {
	// Classes holds one row per shedding class (data, metadata, session),
	// in that order; classes with no traffic are included with zero counts.
	Classes []ErrorClass
	// Total aggregates every class.
	Total ErrorClass
}

// ErrorClass is one class's error accounting.
type ErrorClass struct {
	Class  string
	Ops    uint64
	Errors uint64
	// ByStatus counts the non-OK outcomes by wire status.
	ByStatus map[protocol.Status]uint64
}

// Rate returns the class error rate (0 with no traffic).
func (c ErrorClass) Rate() float64 {
	if c.Ops == 0 {
		return 0
	}
	return float64(c.Errors) / float64(c.Ops)
}

// AnalyzeErrors folds the trace's storage and session records into per-class
// error rates.
func AnalyzeErrors(t *Trace) ErrorRates {
	byClass := map[faults.Class]*ErrorClass{}
	for _, cl := range []faults.Class{faults.ClassData, faults.ClassMetadata, faults.ClassSession} {
		byClass[cl] = &ErrorClass{Class: cl.String(), ByStatus: make(map[protocol.Status]uint64)}
	}
	total := ErrorClass{Class: "total", ByStatus: make(map[protocol.Status]uint64)}
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != trace.KindStorage && r.Kind != trace.KindSession {
			continue
		}
		c := byClass[faults.ClassOf(protocol.Op(r.Op))]
		c.Ops++
		total.Ops++
		if st := protocol.Status(r.Status); st != protocol.StatusOK {
			c.Errors++
			c.ByStatus[st]++
			total.Errors++
			total.ByStatus[st]++
		}
	}
	res := ErrorRates{Total: total}
	for _, cl := range []faults.Class{faults.ClassData, faults.ClassMetadata, faults.ClassSession} {
		res.Classes = append(res.Classes, *byClass[cl])
	}
	return res
}

// Render produces the per-class error-rate block.
func (e ErrorRates) Render() string {
	var b strings.Builder
	b.WriteString("error rate by operation class:\n")
	fmt.Fprintf(&b, "  %-9s %10s %8s %8s  %s\n", "class", "ops", "errors", "rate", "by status")
	rows := append(append([]ErrorClass(nil), e.Classes...), e.Total)
	for _, c := range rows {
		statuses := make([]protocol.Status, 0, len(c.ByStatus))
		for st := range c.ByStatus {
			statuses = append(statuses, st)
		}
		sort.Slice(statuses, func(i, j int) bool { return statuses[i] < statuses[j] })
		parts := make([]string, 0, len(statuses))
		for _, st := range statuses {
			parts = append(parts, fmt.Sprintf("%v:%d", st, c.ByStatus[st]))
		}
		fmt.Fprintf(&b, "  %-9s %10d %8d %7.2f%%  %s\n",
			c.Class, c.Ops, c.Errors, 100*c.Rate(), strings.Join(parts, " "))
	}
	return b.String()
}
