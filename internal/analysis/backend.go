package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"u1/internal/plot"
	"u1/internal/protocol"
	"u1/internal/stats"
	"u1/internal/trace"
)

// RPCPerf reproduces Fig. 12 (per-RPC service-time distributions) and Fig. 13
// (median service time vs frequency, by RPC class).
type RPCPerf struct {
	// PerRPC holds, for each RPC with traffic, its service-time summary.
	PerRPC []RPCRow
	// TailFractions: share of calls > 4× the median per RPC (paper: 7–22%
	// of service times "very far from the median").
	MinTail, MaxTail float64
	// CascadeToReadRatio compares median cascade vs read service time
	// (paper: more than an order of magnitude).
	CascadeToReadRatio float64
}

// RPCRow is one point of Fig. 13.
type RPCRow struct {
	RPC    protocol.RPC
	Class  protocol.RPCClass
	Group  string // Fig. 12 panel: fs / upload / other
	Count  uint64
	Errs   uint64
	Median float64 // seconds
	P95    float64
	P99    float64
	Tail   float64 // share of calls above 4× median
}

// AnalyzeRPCPerf computes Fig. 12/13 from the streaming RPC aggregate.
func AnalyzeRPCPerf(t *Trace) RPCPerf {
	res := RPCPerf{MinTail: 1}
	if t.RPC == nil {
		return res
	}
	var classMedians [3][]float64
	for _, r := range protocol.RPCs() {
		count := t.RPC.Counts[r]
		if count == 0 {
			continue
		}
		sample := t.RPC.Samples[r].Sample()
		med := stats.Median(sample)
		var far int
		for _, x := range sample {
			if x > 4*med {
				far++
			}
		}
		row := RPCRow{
			RPC:    r,
			Class:  r.Class(),
			Group:  r.FigureGroup(),
			Count:  count,
			Errs:   t.RPC.Errs[r],
			Median: med,
			P95:    stats.Quantile(sample, 0.95),
			P99:    stats.Quantile(sample, 0.99),
		}
		if len(sample) > 0 {
			row.Tail = float64(far) / float64(len(sample))
		}
		res.PerRPC = append(res.PerRPC, row)
		classMedians[row.Class] = append(classMedians[row.Class], med)
		if row.Tail < res.MinTail {
			res.MinTail = row.Tail
		}
		if row.Tail > res.MaxTail {
			res.MaxTail = row.Tail
		}
	}
	sort.Slice(res.PerRPC, func(i, j int) bool { return res.PerRPC[i].Count > res.PerRPC[j].Count })
	readMed := stats.Median(classMedians[protocol.ClassRead])
	cascadeMed := stats.Median(classMedians[protocol.ClassCascade])
	if readMed > 0 {
		res.CascadeToReadRatio = cascadeMed / readMed
	}
	if len(res.PerRPC) == 0 {
		res.MinTail = 0
	}
	return res
}

// Render produces the Fig. 12/13 block.
func (rp RPCPerf) Render() string {
	var b strings.Builder
	b.WriteString("Fig 12/13: RPC service times against the metadata store\n")
	b.WriteString("  rpc                              class                 count   median      p95      p99  tail>4xmed\n")
	for _, row := range rp.PerRPC {
		fmt.Fprintf(&b, "  %-32s %-19s %8d %8s %8s %8s   %5.1f%%\n",
			row.RPC, row.Class, row.Count,
			plot.SI(row.Median)+"s", plot.SI(row.P95)+"s", plot.SI(row.P99)+"s", 100*row.Tail)
	}
	fmt.Fprintf(&b, "  tail mass range: %.1f%%–%.1f%% (paper: 7%%–22%% far from median)\n",
		100*rp.MinTail, 100*rp.MaxTail)
	fmt.Fprintf(&b, "  cascade/read median ratio = %.1fx (paper: >10x)\n", rp.CascadeToReadRatio)
	return b.String()
}

// LoadBalance reproduces Fig. 14: request dispersion across API servers
// (1-hour bins) and across metadata shards (1-minute bins). High short-term
// dispersion with good long-term balance is the paper's finding.
type LoadBalance struct {
	// APIServerHourCV is the mean coefficient of variation of per-hour
	// request counts across API machines.
	APIServerHourCV float64
	// ShardMinuteCV is the mean CoV of per-minute request counts across
	// shards.
	ShardMinuteCV float64
	// ShardLongTermCV is the CoV of total per-shard load over the whole
	// trace (paper: 4.9%).
	ShardLongTermCV float64
	// Servers/Shards involved.
	Servers, Shards int
}

// AnalyzeLoadBalance computes Fig. 14.
func AnalyzeLoadBalance(t *Trace) LoadBalance {
	res := LoadBalance{}
	// API machines: hourly counts per server index.
	hours := t.Hours()
	perServer := make(map[uint8][]float64)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != trace.KindStorage && r.Kind != trace.KindSession {
			continue
		}
		row, ok := perServer[r.Server]
		if !ok {
			row = make([]float64, hours)
			perServer[r.Server] = row
		}
		h := int(time.Unix(0, r.Time).Sub(t.Start) / time.Hour)
		if h >= 0 && h < hours {
			row[h]++
		}
	}
	res.Servers = len(perServer)
	if res.Servers >= 2 {
		servers := sortedKeys(perServer)
		var covs []float64
		for h := 0; h < hours; h++ {
			var col []float64
			for _, sv := range servers {
				col = append(col, perServer[sv][h])
			}
			if stats.Sum(col) > 0 {
				covs = append(covs, stats.CoefVar(col))
			}
		}
		res.APIServerHourCV = stats.Mean(covs)
	}

	if t.RPC != nil && t.RPC.Shards >= 2 {
		res.Shards = t.RPC.Shards
		// Attack windows are masked: a simulated attack is far larger
		// relative to baseline than the real ones were at 1.29M-user scale,
		// and it lands on a single shard, which would swamp the long-term
		// dispersion the figure measures.
		masked := make(map[int]bool)
		for _, a := range AnalyzeDDoS(t).Attacks {
			for h := a.Day*24 + a.Hour - 1; h <= a.Day*24+a.Hour+3; h++ {
				for m := h * 60; m < (h+1)*60; m++ {
					masked[m] = true
				}
			}
		}
		var covs []float64
		totals := make([]float64, t.RPC.Shards)
		for m := 0; m < t.RPC.Minutes; m++ {
			if masked[m] {
				continue
			}
			var col []float64
			var any bool
			for s := 0; s < t.RPC.Shards; s++ {
				v := float64(t.RPC.ShardMinute[s][m])
				col = append(col, v)
				totals[s] += v
				if v > 0 {
					any = true
				}
			}
			if any {
				covs = append(covs, stats.CoefVar(col))
			}
		}
		res.ShardMinuteCV = stats.Mean(covs)
		res.ShardLongTermCV = stats.CoefVar(totals)
	}
	return res
}

// Render produces the Fig. 14 block.
func (lb LoadBalance) Render() string {
	var b strings.Builder
	b.WriteString("Fig 14: load balancing across API servers and shards\n")
	fmt.Fprintf(&b, "  API servers (%d machines): mean per-hour CoV = %.2f (short-term imbalance)\n",
		lb.Servers, lb.APIServerHourCV)
	fmt.Fprintf(&b, "  shards (%d): mean per-minute CoV = %.2f; whole-trace CoV = %.1f%% (paper: 4.9%%)\n",
		lb.Shards, lb.ShardMinuteCV, 100*lb.ShardLongTermCV)
	b.WriteString("  (paper: short-window load values far from the mean; long-term balance adequate)\n")
	return b.String()
}

// Sessions reproduces Fig. 15 (authentication/session activity) and Fig. 16
// (session lengths and per-session operation counts).
type Sessions struct {
	AuthPerHour *stats.TimeSeries
	// AuthFailShare is the share of failed authentications (paper: 2.76%).
	AuthFailShare float64
	// Diurnal amplitude of auth activity (paper: 50–60% higher at midday).
	AuthDayNight float64
	// MondayBoost compares Monday's peak auth rate to the weekend's (paper:
	// ≈15% higher on Mondays).
	MondayBoost float64
	// Lengths of all/active sessions (Fig. 16 left).
	AllLengths, ActiveLengths *stats.CDF
	Sub1s, Sub8h              float64 // paper: 32% < 1s, 97% < 8h
	// ActiveShare is the fraction of sessions with ≥1 data-management op
	// (paper: 5.57%).
	ActiveShare float64
	// OpsPerActive distribution (Fig. 16 right); Top20OpsShare is the share
	// of storage ops carried by the most active 20% of active sessions
	// (paper: 96.7%).
	OpsPerActive  *stats.CDF
	P80Ops        float64 // paper: 92
	Top20OpsShare float64
	Sessions      int
}

// AnalyzeSessions computes Fig. 15/16.
func AnalyzeSessions(t *Trace) Sessions {
	hours := t.Hours()
	res := Sessions{AuthPerHour: stats.NewTimeSeries(t.Start, time.Hour, hours)}
	var authTotal, authFailed uint64

	type sessInfo struct {
		user    uint64
		started int64
		ops     float64
	}
	open := make(map[uint64]*sessInfo)
	var all, active, opsPerActive []float64

	finish := func(si *sessInfo, endNs int64) {
		length := float64(endNs-si.started) / float64(time.Second)
		all = append(all, length)
		if si.ops > 0 {
			active = append(active, length)
			opsPerActive = append(opsPerActive, si.ops)
		}
	}

	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpAuthenticate:
			authTotal++
			res.AuthPerHour.Add(r.When(), 1)
			if r.Status != uint8(protocol.StatusOK) {
				authFailed++
				continue
			}
			open[r.Session] = &sessInfo{user: r.User, started: r.Time}
		case r.Kind == trace.KindSession && protocol.Op(r.Op) == protocol.OpCloseSession:
			if si, ok := open[r.Session]; ok {
				finish(si, r.Time)
				delete(open, r.Session)
			}
		case r.Kind == trace.KindStorage && protocol.Op(r.Op).IsDataManagement() &&
			r.Status == uint8(protocol.StatusOK):
			if si, ok := open[r.Session]; ok {
				si.ops++
			}
		}
	}
	// Sessions still open at the cut count as lasting through the window.
	endNs := t.End().UnixNano()
	for _, si := range open {
		finish(si, endNs)
	}

	res.Sessions = len(all)
	res.AllLengths = stats.NewCDF(all)
	res.ActiveLengths = stats.NewCDF(active)
	res.Sub1s = res.AllLengths.At(1)
	res.Sub8h = res.AllLengths.At(8 * 3600)
	if len(all) > 0 {
		res.ActiveShare = float64(len(active)) / float64(len(all))
	}
	res.OpsPerActive = stats.NewCDF(opsPerActive)
	res.P80Ops = res.OpsPerActive.Quantile(0.8)
	// Share of ops carried by the top 20% most active sessions.
	if len(opsPerActive) > 0 {
		sorted := append([]float64(nil), opsPerActive...)
		sort.Float64s(sorted)
		cut := int(0.8 * float64(len(sorted)))
		res.Top20OpsShare = stats.Sum(sorted[cut:]) / stats.Sum(sorted)
	}
	if authTotal > 0 {
		res.AuthFailShare = float64(authFailed) / float64(authTotal)
	}

	// Diurnal shape of auth.
	hod := res.AuthPerHour.HourOfDay()
	var peak, trough float64 = 0, -1
	for _, v := range hod {
		if v > peak {
			peak = v
		}
		if v > 0 && (trough < 0 || v < trough) {
			trough = v
		}
	}
	if trough > 0 {
		res.AuthDayNight = peak / trough
	}
	// Monday boost vs weekend, on daily totals.
	var mondays, weekends []float64
	for d := 0; d < t.Days; d++ {
		day := t.Start.Add(time.Duration(d) * 24 * time.Hour)
		var total float64
		for h := 0; h < 24; h++ {
			total += res.AuthPerHour.Vals[d*24+h]
		}
		switch day.Weekday() {
		case time.Monday:
			mondays = append(mondays, total)
		case time.Saturday, time.Sunday:
			weekends = append(weekends, total)
		}
	}
	if w := stats.Mean(weekends); w > 0 {
		res.MondayBoost = stats.Mean(mondays)/w - 1
	}
	return res
}

// Render produces the Fig. 15/16 block.
func (se Sessions) Render() string {
	var b strings.Builder
	b.WriteString(plot.Line("Fig 15: authentication requests per hour", se.AuthPerHour.Vals, 96, 8))
	fmt.Fprintf(&b, "  auth failures: %.2f%% (paper: 2.76%%); day/night ≈ %.1fx (paper: 1.5–1.6x);"+
		" Monday vs weekend: %+.0f%% (paper: +15%%)\n",
		100*se.AuthFailShare, se.AuthDayNight, 100*se.MondayBoost)
	b.WriteString("Fig 16: session lengths and per-session activity\n")
	fmt.Fprintf(&b, "  sessions: %d; <1s: %.0f%% (paper: 32%%); <8h: %.0f%% (paper: 97%%)\n",
		se.Sessions, 100*se.Sub1s, 100*se.Sub8h)
	fmt.Fprintf(&b, "  active sessions: %.2f%% (paper: 5.57%%)\n", 100*se.ActiveShare)
	fmt.Fprintf(&b, "  ops per active session: p80 = %.0f (paper: 92); top 20%% carry %.1f%% of ops (paper: 96.7%%)\n",
		se.P80Ops, 100*se.Top20OpsShare)
	b.WriteString(plot.CDF("  session length (s)", map[string]*stats.CDF{
		"all":    se.AllLengths,
		"active": se.ActiveLengths,
	}, 80))
	return b.String()
}
