// Package hotpath measures the three structures every request crosses — the
// RPC tier's service-time sampling, the notification broker's fan-out, and
// the gateway's least-loaded placement — first from a single goroutine, then
// with GOMAXPROCS goroutines contending on the same instance. The ratio of
// the two throughputs is the scaling record the BENCH_*.json reports carry:
// after the de-serialization of these paths (per-worker lockless RNGs,
// read-locked fan-out, heap-backed placement) the parallel rate must exceed
// the serial one; a ratio stuck at or below 1 means a global lock crept back
// onto the request path.
package hotpath

import (
	"runtime"
	"sync"
	"time"

	"u1/internal/gateway"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/server"
)

// Report keys for the measured paths (BenchReport.HotPaths).
const (
	RPCCall       = "rpc.call"
	NotifyPublish = "notify.publish"
	GatewayPlace  = "gateway.acquire_release"
)

var t0 = time.Unix(1390000000, 0)

// Measure drives each hot path for ops operations (0 picks a default sized
// for a sub-second run per path) and returns per-path throughput stats. The
// fixtures are self-contained so the measurement never pollutes a live
// cluster's metrics registry.
func Measure(ops int) map[string]metrics.HotPathStats {
	if ops <= 0 {
		ops = 1 << 18
	}
	workers := runtime.GOMAXPROCS(0)
	out := make(map[string]metrics.HotPathStats, 3)

	// RPC tier: worker selection + per-class latency sampling + histogram
	// recording, with no metadata store access in the way (ObserveAuth is
	// the one RPC that touches nothing but the sampler).
	store := metadata.New(metadata.Config{Shards: 10})
	if _, err := store.CreateUser(1); err != nil {
		panic(err)
	}
	srv := rpc.NewServer(store, rpc.Config{Seed: 11})
	out[RPCCall] = run(ops, workers, func() { srv.ObserveAuth(1, t0, nil, nil) })

	// Notify tier: fan-out across the paper's six API machines. Tiny queues
	// keep the drop branch hot, so the measurement is pure fan-out cost
	// rather than consumer speed.
	broker := notify.NewBroker()
	for _, name := range server.DefaultMachines {
		broker.Register(name, 1)
	}
	out[NotifyPublish] = run(ops, workers, func() {
		broker.Publish(notify.Event{Kind: protocol.PushVolumeChanged, User: 1, Origin: server.DefaultMachines[0]})
	})

	// Gateway: one placement decision plus its release, holding the heap at
	// steady state.
	bal := gateway.NewBalancer(server.DefaultMachines...)
	out[GatewayPlace] = run(ops, workers, func() {
		if name, err := bal.Acquire(); err == nil {
			bal.Release(name)
		}
	})
	return out
}

// run times ops executions of op single-threaded, then the same total split
// across workers goroutines, and folds both into HotPathStats.
func run(ops, workers int, op func()) metrics.HotPathStats {
	start := time.Now()
	for i := 0; i < ops; i++ {
		op()
	}
	serial := time.Since(start)

	var wg sync.WaitGroup
	per := ops / workers
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op()
			}
		}()
	}
	wg.Wait()
	parallel := time.Since(start)

	st := metrics.HotPathStats{Workers: workers}
	if serial > 0 {
		st.SerialOpsPerSec = float64(ops) / serial.Seconds()
	}
	if parallel > 0 {
		st.ParallelOpsPerSec = float64(per*workers) / parallel.Seconds()
	}
	if st.SerialOpsPerSec > 0 {
		st.Speedup = st.ParallelOpsPerSec / st.SerialOpsPerSec
	}
	return st
}
