// Package hotpath measures the structures every request crosses — the RPC
// tier's service-time sampling, the notification broker's fan-out, and the
// gateway's placement (both the single-shard least-loaded heap and the
// sharded power-of-two-choices balancer) — first from a single goroutine,
// then with GOMAXPROCS goroutines contending on the same instance. The ratio
// of the two throughputs is the scaling record the BENCH_*.json reports
// carry: after the de-serialization of these paths (per-worker lockless
// RNGs, read-locked fan-out, heap-backed placement, per-shard heaps) the
// parallel rate must exceed the serial one; a ratio stuck at or below 1
// means a global lock crept back onto the request path.
//
// MeasureGenerator applies the same serial-vs-parallel comparison to the
// end-to-end trace generator: one sharded event loop per core against the
// bit-for-bit serial Workers=1 stream.
package hotpath

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"u1/internal/gateway"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/server"
	"u1/internal/wal"
	"u1/internal/workload"
)

// Report keys for the measured paths (BenchReport.HotPaths).
const (
	RPCCall       = "rpc.call"
	NotifyPublish = "notify.publish"
	GatewayPlace  = "gateway.acquire_release"
	// GatewayPlaceSharded measures the power-of-two-choices balancer: the
	// same acquire/release cycle against independently locked shard heaps.
	GatewayPlaceSharded = "gateway.acquire_release.sharded"
)

// ShardedBalancerShards sizes the sharded-balancer fixture: enough shards
// that two random choices rarely collide, over a fleet large enough to
// populate them. Exported so the bench_test contention benchmark measures
// the exact configuration the BENCH_*.json hot-path section records.
const ShardedBalancerShards = 4

// ShardedBalancerFleet is the sharded fixture's backend fleet: one paper
// machine per process bank, wide enough to populate every shard.
func ShardedBalancerFleet() []string {
	fleet := make([]string, 0, 4*len(server.DefaultMachines))
	for i := 0; i < 4; i++ {
		for _, name := range server.DefaultMachines {
			fleet = append(fleet, fmt.Sprintf("%s-%d", name, i))
		}
	}
	return fleet
}

var t0 = time.Unix(1390000000, 0)

// Measure drives each hot path for ops operations (0 picks a default sized
// for a sub-second run per path) and returns per-path throughput stats. The
// fixtures are self-contained so the measurement never pollutes a live
// cluster's metrics registry.
func Measure(ops int) map[string]metrics.HotPathStats {
	if ops <= 0 {
		ops = 1 << 18
	}
	workers := runtime.GOMAXPROCS(0)
	out := make(map[string]metrics.HotPathStats, 4)

	// RPC tier: worker selection + per-class latency sampling + histogram
	// recording, with no metadata store access in the way (ObserveAuth is
	// the one RPC that touches nothing but the sampler).
	store := metadata.New(metadata.Config{Shards: 10})
	if _, err := store.CreateUser(1); err != nil {
		panic(err)
	}
	srv := rpc.NewServer(store, rpc.Config{Seed: 11})
	out[RPCCall] = run(ops, workers, func() { srv.ObserveAuth(1, t0, nil, nil) })

	// Notify tier: fan-out across the paper's six API machines. Tiny queues
	// keep the drop branch hot, so the measurement is pure fan-out cost
	// rather than consumer speed.
	broker := notify.NewBroker()
	for _, name := range server.DefaultMachines {
		broker.Register(name, 1)
	}
	out[NotifyPublish] = run(ops, workers, func() {
		broker.Publish(notify.Event{Kind: protocol.PushVolumeChanged, User: 1, Origin: server.DefaultMachines[0]})
	})

	// Gateway, single shard: one placement decision plus its release,
	// holding the heap at steady state — the exact least-loaded rule.
	bal := gateway.NewBalancer(server.DefaultMachines...)
	out[GatewayPlace] = run(ops, workers, func() {
		if lease, err := bal.Acquire(); err == nil {
			bal.Release(lease)
		}
	})

	// Gateway, sharded: the same cycle against per-shard heaps with
	// power-of-two-choices between them.
	sharded := gateway.NewShardedBalancer(ShardedBalancerShards, ShardedBalancerFleet()...)
	out[GatewayPlaceSharded] = run(ops, workers, func() {
		if lease, err := sharded.Acquire(); err == nil {
			sharded.Release(lease)
		}
	})
	return out
}

// run times ops executions of op single-threaded, then the same total split
// across workers goroutines, and folds both into HotPathStats.
func run(ops, workers int, op func()) metrics.HotPathStats {
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	start := time.Now()
	for i := 0; i < ops; i++ {
		op()
	}
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	serial := time.Since(start)

	var wg sync.WaitGroup
	per := ops / workers
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op()
			}
		}()
	}
	wg.Wait()
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	parallel := time.Since(start)

	st := metrics.HotPathStats{Workers: workers}
	if serial > 0 {
		st.SerialOpsPerSec = float64(ops) / serial.Seconds()
	}
	if parallel > 0 {
		st.ParallelOpsPerSec = float64(per*workers) / parallel.Seconds()
	}
	if st.SerialOpsPerSec > 0 {
		st.Speedup = st.ParallelOpsPerSec / st.SerialOpsPerSec
	}
	return st
}

// MeasurePlacement quantifies power-of-two-choices placement quality as the
// balancer's shard count grows: for each count it places sessions leases
// across the standard fleet (never releasing, so load accumulates as in a
// connection storm) and reports the most-loaded backend against the even
// split. One shard is the exact least-loaded rule — max/mean pinned at ~1 —
// and each doubling trades a little balance for less lock contention; the
// two-choices bound keeps the ratio near 1 instead of the O(log n / log log
// n) drift of single random choice. sessions ≤ 0 picks a default; shard
// counts < 1 are skipped.
func MeasurePlacement(sessions int, shardCounts []int) []metrics.PlacementStats {
	if sessions <= 0 {
		sessions = 1 << 16
	}
	fleet := ShardedBalancerFleet()
	out := make([]metrics.PlacementStats, 0, len(shardCounts))
	for _, shards := range shardCounts {
		if shards < 1 {
			continue
		}
		bal := gateway.NewShardedBalancer(shards, fleet...)
		loads := make(map[string]uint64, len(fleet))
		for i := 0; i < sessions; i++ {
			lease, err := bal.Acquire()
			if err != nil {
				break
			}
			loads[lease.Backend]++
		}
		st := metrics.PlacementStats{
			Shards:   shards,
			Backends: len(fleet),
			Sessions: sessions,
			MeanLoad: float64(sessions) / float64(len(fleet)),
		}
		for _, n := range loads {
			if n > st.MaxLoad {
				st.MaxLoad = n
			}
		}
		if st.MeanLoad > 0 {
			st.MaxOverMean = float64(st.MaxLoad) / st.MeanLoad
		}
		out = append(out, st)
	}
	return out
}

// MeasureGenerator times end-to-end trace generation — population build,
// per-shard event loops, the full back-end under every event — once with
// Workers=1 (the serial stream) and once with one shard per core, each
// against its own fresh cluster. users/days ≤ 0 pick a smoke-sized default.
func MeasureGenerator(users, days int) metrics.GeneratorStats {
	if users <= 0 {
		users = 150
	}
	if days <= 0 {
		days = 3
	}
	workers := runtime.GOMAXPROCS(0)
	st := metrics.GeneratorStats{Users: users, Days: days, Workers: workers}

	st.SerialEventsPerSec = generationRate(users, days, 1)
	if workers == 1 {
		// One core: the parallel configuration is the serial one.
		st.ParallelEventsPerSec = st.SerialEventsPerSec
	} else {
		st.ParallelEventsPerSec = generationRate(users, days, workers)
	}
	if st.SerialEventsPerSec > 0 {
		st.Speedup = st.ParallelEventsPerSec / st.SerialEventsPerSec
	}
	return st
}

// MeasureDurability prices the metadata WAL under each fsync policy: appends
// per second against a throwaway journal in dir (a temp directory the caller
// owns), the measured sync-per-append ratio of the policy's cadence, and the
// deterministic per-mutation cost the durability interceptor charges. ops ≤ 0
// picks a default small enough that even per-op fsync finishes in seconds.
func MeasureDurability(dir string, ops int) (metrics.DurabilityStats, error) {
	if ops <= 0 {
		ops = 512
	}
	payload := make([]byte, 256)
	st := metrics.DurabilityStats{Policies: make(map[string]metrics.WALPolicyStats, 3)}
	for _, policy := range wal.Policies() {
		log, err := wal.Open(filepath.Join(dir, policy.String()), wal.Options{Policy: policy})
		if err != nil {
			return st, err
		}
		//u1:allow wallclock hotpath benchmarks measure real execution speed by design
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := log.Append(payload); err != nil {
				log.Close() //nolint:errcheck
				return st, err
			}
		}
		//u1:allow wallclock hotpath benchmarks measure real execution speed by design
		elapsed := time.Since(start)
		appends, syncs := log.Stats()
		if err := log.Close(); err != nil {
			return st, err
		}
		ps := metrics.WALPolicyStats{SyncCostMs: float64(policy.SyncCost()) / float64(time.Millisecond)}
		if elapsed > 0 {
			ps.AppendsPerSec = float64(appends) / elapsed.Seconds()
		}
		if appends > 0 {
			ps.SyncsPerAppend = float64(syncs) / float64(appends)
		}
		st.Policies[policy.String()] = ps
	}
	return st, nil
}

// generationRate runs one generation and returns events per wall second.
func generationRate(users, days, shards int) float64 {
	cluster := server.NewCluster(server.Config{Seed: 10})
	g := workload.New(workload.Config{
		Users: users, Days: days, Seed: 10, Workers: shards,
		Attacks: []workload.Attack{},
	}, cluster)
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	start := time.Now()
	g.Run()
	//u1:allow wallclock hotpath benchmarks measure real execution speed by design
	wall := time.Since(start)
	if wall <= 0 {
		return 0
	}
	return float64(g.Engine().Executed()) / wall.Seconds()
}
