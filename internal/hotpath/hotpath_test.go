package hotpath

import (
	"runtime"
	"testing"
)

func TestMeasureShape(t *testing.T) {
	got := Measure(2048)
	for _, key := range []string{RPCCall, NotifyPublish, GatewayPlace} {
		st, ok := got[key]
		if !ok {
			t.Fatalf("path %s missing from measurement", key)
		}
		if st.SerialOpsPerSec <= 0 || st.ParallelOpsPerSec <= 0 {
			t.Errorf("path %s: degenerate throughput %+v", key, st)
		}
		if st.Workers != runtime.GOMAXPROCS(0) {
			t.Errorf("path %s: workers = %d", key, st.Workers)
		}
	}
}
