package hotpath

import (
	"runtime"
	"testing"
)

func TestMeasureShape(t *testing.T) {
	got := Measure(2048)
	for _, key := range []string{RPCCall, NotifyPublish, GatewayPlace, GatewayPlaceSharded} {
		st, ok := got[key]
		if !ok {
			t.Fatalf("path %s missing from measurement", key)
		}
		if st.SerialOpsPerSec <= 0 || st.ParallelOpsPerSec <= 0 {
			t.Errorf("path %s: degenerate throughput %+v", key, st)
		}
		if st.Workers != runtime.GOMAXPROCS(0) {
			t.Errorf("path %s: workers = %d", key, st.Workers)
		}
	}
}

func TestMeasureGeneratorShape(t *testing.T) {
	st := MeasureGenerator(60, 1)
	if st.Users != 60 || st.Days != 1 {
		t.Errorf("scale = %d users x %d days", st.Users, st.Days)
	}
	if st.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("workers = %d", st.Workers)
	}
	if st.SerialEventsPerSec <= 0 || st.ParallelEventsPerSec <= 0 {
		t.Errorf("degenerate generation rates: %+v", st)
	}
	if st.Speedup <= 0 {
		t.Errorf("speedup = %v", st.Speedup)
	}
}
