// Package wal implements the write-ahead log under the durable metadata
// tier: a segmented append-only journal of CRC-framed records. Each metadata
// shard owns one Log; mutations append a logical record before they are
// acknowledged, and recovery replays the journal (on top of the latest
// snapshot) to rebuild the shard state a crash destroyed.
//
// The journal is a directory of segment files named by the LSN of their
// first record (0000000000000001.wal, ...). Records are framed as
//
//	[4-byte length][4-byte CRC32C][8-byte LSN][payload]
//
// where the CRC covers the LSN and payload. Replay walks the segments in LSN
// order and stops at the first frame that is truncated or fails its CRC: a
// torn tail — the half-written record of the crash itself — is dropped
// without losing any record before it. A record that was never fully
// appended was by construction never acknowledged to a client, so dropping
// it is exactly the no-double-apply half of the recovery invariant.
//
// Sync policy is configurable (per-op, group-commit, async) and carries a
// deterministic service-time cost model so the request path can charge
// fsync overhead to protocol.Cost without the simulated latency depending on
// host disk speed.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// headerSize is the fixed frame prefix: length, CRC, LSN.
const headerSize = 4 + 4 + 8

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segSuffix names journal segment files.
const segSuffix = ".wal"

// DefaultSegmentBytes rolls segments at 1 MiB: small enough that snapshot
// truncation frees space promptly, large enough that rolls stay rare.
const DefaultSegmentBytes = 1 << 20

// Options parameterizes a Log.
type Options struct {
	// Policy is the fsync policy (default FsyncGroupCommit).
	Policy Policy
	// SegmentBytes rolls to a new segment file once the active one exceeds
	// this size (0 → DefaultSegmentBytes).
	SegmentBytes int64
	// GroupEvery is the group-commit batch size: under FsyncGroupCommit the
	// log syncs once per this many appends (0 → DefaultGroupEvery).
	GroupEvery int
}

// Log is one append-only journal. Safe for concurrent use; in the metadata
// tier appends additionally serialize under the owning shard's write lock,
// so journal order always matches apply order.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	size    int64
	nextLSN uint64
	pending int // appends since the last sync (group commit)

	appends uint64
	syncs   uint64
}

// Open opens (or creates) the journal directory and positions the log to
// append after the last intact record. It does not replay — Replay is a
// separate read-only pass so recovery can interleave snapshot loading.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.GroupEvery <= 0 {
		opts.GroupEvery = DefaultGroupEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts, nextLSN: 1}

	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		// Scan the last segment to find the end of its intact prefix; a torn
		// tail left by a crash is cut here so new appends never interleave
		// with garbage.
		last := segs[len(segs)-1]
		path := filepath.Join(dir, segName(last))
		intact, lastLSN, err := intactPrefix(path)
		if err != nil {
			return nil, err
		}
		if err := os.Truncate(path, intact); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening %s: %w", path, err)
		}
		l.f, l.size = f, intact
		if lastLSN >= l.nextLSN {
			l.nextLSN = lastLSN + 1
		} else if lastLSN == 0 && intact == 0 {
			// Empty tail segment: the next LSN is the segment's base.
			l.nextLSN = last
		}
	}
	return l, nil
}

// Append frames payload as the next record and writes it to the active
// segment, syncing according to the policy. It returns the record's LSN.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.rollLocked(); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], lsn)
	copy(buf[16:], payload)
	crc := crc32.Checksum(buf[8:], castagnoli)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", lsn, err)
	}
	l.size += int64(len(buf))
	l.nextLSN = lsn + 1
	l.appends++
	l.pending++
	switch l.opts.Policy {
	case FsyncPerOp:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncGroupCommit:
		if l.pending >= l.opts.GroupEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	case FsyncAsync:
		// The OS flushes on its own schedule; Close still syncs.
	}
	return lsn, nil
}

// rollLocked opens the active segment, rolling to a fresh file when the
// current one passed the size threshold. Called with l.mu held.
func (l *Log) rollLocked() error {
	if l.f != nil && l.size < l.opts.SegmentBytes {
		return nil
	}
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing full segment: %w", err)
		}
	}
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	l.f, l.size = f, 0
	return nil
}

// Sync forces pending appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.f == nil || l.pending == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.pending = 0
	l.syncs++
	return nil
}

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats returns cumulative appends and syncs, for the wal.* counters.
func (l *Log) Stats() (appends, syncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs
}

// Close syncs and closes the active segment. The log must not be used after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Crash drops the file handle without syncing — the SIGKILL stand-in the
// crash drill uses. Bytes already written survive in the page cache exactly
// as they would across a real process death; only the handle is lost.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close() //nolint:errcheck
		l.f = nil
	}
}

// TruncateThrough removes every segment whose records are all covered by a
// snapshot at lsn: a segment may go once the next segment starts at or below
// lsn+1. The active tail segment is always kept.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= lsn+1 {
			if err := os.Remove(filepath.Join(l.dir, segName(segs[i]))); err != nil {
				return fmt.Errorf("wal: truncating segment %d: %w", segs[i], err)
			}
		}
	}
	return nil
}

// Replay streams every intact record in dir to fn in LSN order and returns
// the last LSN delivered. A truncated or corrupt frame ends the replay
// there: the torn tail (and anything after it) is dropped, records before it
// are preserved. dropped reports how many bytes were discarded.
func Replay(dir string, fn func(lsn uint64, payload []byte) error) (last uint64, dropped int64, err error) {
	segs, err := segments(dir)
	if err != nil {
		return 0, 0, err
	}
	for i, base := range segs {
		path := filepath.Join(dir, segName(base))
		data, err := os.ReadFile(path)
		if err != nil {
			return last, dropped, fmt.Errorf("wal: reading segment %s: %w", path, err)
		}
		off := 0
		for off < len(data) {
			lsn, payload, n, ok := readFrame(data[off:])
			if !ok {
				break
			}
			if err := fn(lsn, payload); err != nil {
				return last, dropped, err
			}
			last = lsn
			off += n
		}
		if off < len(data) {
			// Torn or corrupt frame: everything from here on — including any
			// later segments, which would leave an LSN gap — is dropped.
			dropped += int64(len(data) - off)
			for _, later := range segs[i+1:] {
				if fi, err := os.Stat(filepath.Join(dir, segName(later))); err == nil {
					dropped += fi.Size()
				}
			}
			return last, dropped, nil
		}
	}
	return last, dropped, nil
}

// readFrame decodes one frame from buf, reporting (lsn, payload, frame size,
// intact).
func readFrame(buf []byte) (lsn uint64, payload []byte, n int, ok bool) {
	if len(buf) < headerSize {
		return 0, nil, 0, false
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	total := headerSize + int(length)
	if total < headerSize || len(buf) < total {
		return 0, nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if crc32.Checksum(buf[8:total], castagnoli) != crc {
		return 0, nil, 0, false
	}
	lsn = binary.LittleEndian.Uint64(buf[8:16])
	return lsn, buf[16:total], total, true
}

// intactPrefix scans a segment and returns the byte length of its intact
// record prefix plus the last intact LSN.
func intactPrefix(path string) (int64, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	off, last := 0, uint64(0)
	for off < len(data) {
		lsn, _, n, ok := readFrame(data[off:])
		if !ok {
			break
		}
		last = lsn
		off += n
	}
	return int64(off), last, nil
}

// segments lists the segment base LSNs in dir in ascending order.
func segments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue
		}
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func segName(base uint64) string {
	return fmt.Sprintf("%016x%s", base, segSuffix)
}

// CorruptTail flips one bit in the last byte of the newest non-empty segment
// — the bit-rot half of the torn-tail test surface, also used by the crash
// drill to prove a damaged final record is dropped, not replayed.
func CorruptTail(dir string) error {
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	for i := len(segs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, segName(segs[i]))
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		if fi.Size() == 0 {
			continue
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, fi.Size()-1); err != nil && err != io.EOF {
			return err
		}
		b[0] ^= 0x40
		_, err = f.WriteAt(b, fi.Size()-1)
		return err
	}
	return fmt.Errorf("wal: no non-empty segment in %s", dir)
}
