package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, dir string) (lsns []uint64, payloads []string, dropped int64) {
	t.Helper()
	last, dropped, err := Replay(dir, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(lsns) > 0 && last != lsns[len(lsns)-1] {
		t.Fatalf("Replay last = %d, want %d", last, lsns[len(lsns)-1])
	}
	return lsns, payloads, dropped
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncPerOp})
	appendN(t, l, 25, "rec")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lsns, payloads, dropped := replayAll(t, dir)
	if len(lsns) != 25 || dropped != 0 {
		t.Fatalf("replayed %d records (dropped %d bytes), want 25/0", len(lsns), dropped)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, lsn, i+1)
		}
		if want := fmt.Sprintf("rec-%d", i); payloads[i] != want {
			t.Fatalf("record %d payload = %q, want %q", i, payloads[i], want)
		}
	}
}

func TestReopenContinuesLSNSequence(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 7, "a")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	if got := l.NextLSN(); got != 8 {
		t.Fatalf("NextLSN after reopen = %d, want 8", got)
	}
	appendN(t, l, 3, "b")
	l.Close() //nolint:errcheck
	lsns, _, _ := replayAll(t, dir)
	if len(lsns) != 10 || lsns[9] != 10 {
		t.Fatalf("replayed %v, want LSNs 1..10", lsns)
	}
}

func TestSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every few records roll a file.
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	appendN(t, l, 40, "roll")
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 40 appends at 64-byte roll", len(segs))
	}
	// A snapshot at LSN 20 releases every segment fully below it.
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	kept, _ := segments(dir)
	if len(kept) >= len(segs) {
		t.Fatalf("TruncateThrough removed nothing: %d -> %d segments", len(segs), len(kept))
	}
	l.Close() //nolint:errcheck
	lsns, _, _ := replayAll(t, dir)
	if len(lsns) == 0 || lsns[len(lsns)-1] != 40 {
		t.Fatalf("replay after truncation lost the tail: %v", lsns)
	}
	for _, lsn := range lsns {
		if lsn > 20 {
			return // records past the snapshot point survive
		}
	}
	t.Fatal("no post-snapshot records survived truncation")
}

// TestTornTailTruncatedRecord is the crash-shaped regression: a final record
// cut mid-frame is dropped on replay and every record before it survives.
func TestTornTailTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncPerOp})
	appendN(t, l, 10, "keep")
	l.Close() //nolint:errcheck

	segs, _ := segments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last frame: drop 5 bytes off the file end.
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	lsns, _, dropped := replayAll(t, dir)
	if len(lsns) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(lsns))
	}
	if dropped == 0 {
		t.Fatal("torn bytes not reported as dropped")
	}
	// Reopen appends after the intact prefix; the torn frame never resurfaces.
	l = mustOpen(t, dir, Options{})
	if got := l.NextLSN(); got != 10 {
		t.Fatalf("NextLSN after torn-tail reopen = %d, want 10", got)
	}
	appendN(t, l, 1, "fresh")
	l.Close() //nolint:errcheck
	lsns, payloads, dropped := replayAll(t, dir)
	if len(lsns) != 10 || dropped != 0 {
		t.Fatalf("post-repair replay: %d records, %d dropped bytes", len(lsns), dropped)
	}
	if payloads[9] != "fresh-0" {
		t.Fatalf("recovered tail record = %q", payloads[9])
	}
}

// TestTornTailBitFlip is the bit-rot regression: a flipped bit in the final
// record fails its CRC and the record is dropped, not delivered corrupted.
func TestTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncPerOp})
	appendN(t, l, 6, "bits")
	l.Close() //nolint:errcheck

	if err := CorruptTail(dir); err != nil {
		t.Fatal(err)
	}
	lsns, payloads, dropped := replayAll(t, dir)
	if len(lsns) != 5 {
		t.Fatalf("replayed %d records after bit flip, want 5", len(lsns))
	}
	if dropped == 0 {
		t.Fatal("corrupt record not counted as dropped")
	}
	for i, p := range payloads {
		if want := fmt.Sprintf("bits-%d", i); p != want {
			t.Fatalf("surviving record %d = %q, want %q", i, p, want)
		}
	}
}

// TestTornTailDropsLaterSegments pins the gap rule: when a mid-journal
// segment is corrupt, the segments after it are unreachable (their LSNs
// would leave a hole) and replay must stop rather than resurrect them.
func TestTornTailDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64})
	appendN(t, l, 30, "seg")
	l.Close() //nolint:errcheck
	segs, _ := segments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first frame.
	path := filepath.Join(dir, segName(segs[1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lsns, _, dropped := replayAll(t, dir)
	if len(lsns) == 0 {
		t.Fatal("first segment should replay intact")
	}
	if last := lsns[len(lsns)-1]; last >= segs[1] {
		t.Fatalf("replay crossed the corrupt segment: last LSN %d", last)
	}
	if dropped == 0 {
		t.Fatal("later segments not counted as dropped")
	}
}

func TestGroupCommitSyncCadence(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncGroupCommit, GroupEvery: 4})
	appendN(t, l, 9, "gc")
	appends, syncs := l.Stats()
	if appends != 9 {
		t.Fatalf("appends = %d, want 9", appends)
	}
	if syncs != 2 { // after the 4th and 8th append; the 9th is pending
		t.Fatalf("group-commit syncs = %d, want 2", syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, syncs = l.Stats(); syncs != 3 {
		t.Fatalf("Close did not flush the pending batch: syncs = %d", syncs)
	}
}

func TestPolicyParseAndCost(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("flush-sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
	if FsyncPerOp.SyncCost() <= FsyncGroupCommit.SyncCost() {
		t.Error("per-op sync must cost more than group commit")
	}
	if FsyncAsync.SyncCost() != 0 {
		t.Error("async sync must cost nothing")
	}
	if FsyncGroupCommit.SyncCost() <= 0 {
		t.Error("group commit must carry a non-zero amortized cost")
	}
	if FsyncPerOp.SyncCost() != 5*time.Millisecond {
		t.Errorf("per-op cost drifted: %v", FsyncPerOp.SyncCost())
	}
}

func TestCrashKeepsWrittenRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: FsyncAsync})
	appendN(t, l, 12, "c")
	l.Crash() // no sync, no clean close
	lsns, _, dropped := replayAll(t, dir)
	if len(lsns) != 12 || dropped != 0 {
		t.Fatalf("post-crash replay: %d records, %d dropped", len(lsns), dropped)
	}
}

// FuzzReplayTornTail drives the frame scanner with arbitrary mutations of a
// valid journal tail: whatever the damage, replay must never error, never
// deliver a corrupted payload for the intact prefix, and never deliver more
// records than were written.
func FuzzReplayTornTail(f *testing.F) {
	f.Add(uint8(3), int64(-1), uint8(0))
	f.Add(uint8(10), int64(5), uint8(0xFF))
	f.Add(uint8(1), int64(0), uint8(1))
	f.Fuzz(func(t *testing.T, n uint8, cut int64, flip uint8) {
		records := int(n%16) + 1
		dir := t.TempDir()
		l, err := Open(dir, Options{Policy: FsyncPerOp})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("p-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		l.Close() //nolint:errcheck

		segs, _ := segments(dir)
		path := filepath.Join(dir, segName(segs[len(segs)-1]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate the tail: truncate by cut bytes and/or XOR the last byte.
		if cut > 0 && cut < int64(len(data)) {
			data = data[:int64(len(data))-cut]
		}
		if flip != 0 && len(data) > 0 {
			data[len(data)-1] ^= flip
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		var got int
		_, _, err = Replay(dir, func(lsn uint64, payload []byte) error {
			if want := fmt.Sprintf("p-%d", lsn-1); string(payload) != want {
				t.Fatalf("record %d replayed corrupted: %q", lsn, payload)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on damaged tail: %v", err)
		}
		if got > records {
			t.Fatalf("replayed %d records, only %d written", got, records)
		}
	})
}
