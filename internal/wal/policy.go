package wal

import (
	"fmt"
	"time"
)

// Policy selects when appended records are fsynced to stable storage — the
// classic durability/latency trade, priced into the request path by a
// deterministic cost model so simulated latencies stay host-independent.
type Policy uint8

// Fsync policies.
const (
	// FsyncPerOp syncs after every append: no acknowledged write can be
	// lost, at one disk flush per mutation.
	FsyncPerOp Policy = iota
	// FsyncGroupCommit syncs once per GroupEvery appends, amortizing the
	// flush across the batch as databases do under concurrent commits.
	FsyncGroupCommit
	// FsyncAsync never syncs on the request path; the OS flushes in the
	// background and Close syncs once. A machine crash (not a process crash)
	// can lose the unflushed tail.
	FsyncAsync
)

// DefaultGroupEvery is the group-commit batch size used when Options does
// not specify one.
const DefaultGroupEvery = 8

// fsyncCost is the modeled service time of one fdatasync on the commodity
// disks behind the paper's metadata cluster (~5 ms, the rotational-latency
// floor of a 2014-era 7.2k RPM drive with write caching disabled).
const fsyncCost = 5 * time.Millisecond

// String implements fmt.Stringer with the flag-value spellings ParsePolicy
// accepts.
func (p Policy) String() string {
	switch p {
	case FsyncPerOp:
		return "per-op"
	case FsyncGroupCommit:
		return "group"
	case FsyncAsync:
		return "async"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps a flag value to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "per-op", "perop", "per_op":
		return FsyncPerOp, nil
	case "group", "group-commit", "group_commit":
		return FsyncGroupCommit, nil
	case "async":
		return FsyncAsync, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want per-op, group, or async)", s)
	}
}

// Policies lists every policy, for pricing sweeps.
func Policies() []Policy {
	return []Policy{FsyncPerOp, FsyncGroupCommit, FsyncAsync}
}

// SyncCost is the deterministic per-mutation service time the durability
// interceptor charges to protocol.Cost: the full flush under per-op sync,
// the flush amortized over the batch under group commit, and nothing under
// async. A pure function of the policy — never of host disk speed — so a
// fixed (Seed, Workers, FaultPlan) run stays bit-for-bit reproducible with
// durability on.
func (p Policy) SyncCost() time.Duration {
	switch p {
	case FsyncPerOp:
		return fsyncCost
	case FsyncGroupCommit:
		return fsyncCost / DefaultGroupEvery
	default:
		return 0
	}
}
