package stats

import "math"

// ACF computes the sample autocorrelation function of xs for lags 1..maxLag.
// The returned slice has maxLag entries; entry k-1 holds the autocorrelation
// at lag k. The estimator is the standard biased one,
//
//	r(k) = Σ_{t=1}^{N-k} (x_t − x̄)(x_{t+k} − x̄) / Σ_{t=1}^{N} (x_t − x̄)²,
//
// which is what the paper applies to the hourly R/W-ratio series (Fig. 2c).
// maxLag is clamped to len(xs)-1; a series with zero variance yields all
// zeros.
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 1 {
		return nil
	}
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	out := make([]float64, maxLag)
	if denom == 0 {
		return out
	}
	for k := 1; k <= maxLag; k++ {
		var num float64
		for t := 0; t+k < n; t++ {
			num += (xs[t] - m) * (xs[t+k] - m)
		}
		out[k-1] = num / denom
	}
	return out
}

// ACFConfidence returns the symmetric 95% confidence bound ±2/√N under the
// null hypothesis of an uncorrelated series. Lags whose |ACF| exceeds this
// bound indicate long-term correlation, the paper's evidence that R/W ratios
// "are not independent".
func ACFConfidence(n int) float64 {
	if n <= 0 {
		return 0
	}
	return 2 / math.Sqrt(float64(n))
}

// ACFExceedances counts how many of the given lags fall outside the ±bound
// confidence band. The paper's criterion for "correlated" is most lags
// landing outside the band.
func ACFExceedances(acf []float64, bound float64) int {
	var n int
	for _, r := range acf {
		if math.Abs(r) > bound {
			n++
		}
	}
	return n
}
