package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from a sample.
// It backs every "CDF" figure in the paper (Figs. 3, 4, 7b, 11, 12, 16).
// The zero value is unusable; build one with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. It copies and sorts the sample.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of elements <= x, so search for the first element > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// CCDF returns P(X > x), the complementary CDF at x. Power-law figures
// (Fig. 9b) plot this on log-log axes.
func (c *CDF) CCDF(x float64) float64 { return 1 - c.At(x) }

// Quantile returns the q-quantile of the underlying sample.
func (c *CDF) Quantile(q float64) float64 { return quantileSorted(c.sorted, q) }

// Min returns the smallest sample value (0 when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample value (0 when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Point is one (x, y) pair of a sampled curve.
type Point struct {
	X, Y float64
}

// Points samples the CDF at n evenly spaced quantiles (plus the extremes) so
// it can be plotted or written to a .dat file. For n < 2 it returns the two
// extreme points.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 {
		return nil
	}
	if n < 2 {
		n = 2
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, Point{X: quantileSorted(c.sorted, q), Y: q})
	}
	return pts
}

// LogPoints samples the CDF at n points spaced logarithmically in x between
// the smallest positive sample value and the maximum. Figures with x on a log
// axis (file sizes, inter-operation times, service times) use this sampling.
func (c *CDF) LogPoints(n int) []Point {
	if len(c.sorted) == 0 {
		return nil
	}
	lo := math.NaN()
	for _, v := range c.sorted {
		if v > 0 {
			lo = v
			break
		}
	}
	hi := c.Max()
	if math.IsNaN(lo) || hi <= lo {
		return c.Points(n)
	}
	if n < 2 {
		n = 2
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		x := math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n-1))
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Dat renders points as a two-column gnuplot-compatible data block with a
// header comment naming the series.
func Dat(name string, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", name)
	for _, p := range pts {
		fmt.Fprintf(&b, "%g\t%g\n", p.X, p.Y)
	}
	return b.String()
}
