package stats

import (
	"testing"
	"time"
)

var t0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC) // trace start in the paper

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 48)
	ts.Add(t0, 1)
	ts.Add(t0.Add(59*time.Minute), 2)
	ts.Add(t0.Add(time.Hour), 5)
	ts.Add(t0.Add(48*time.Hour), 100) // out of range: ignored
	ts.Add(t0.Add(-time.Minute), 100) // before start: ignored
	if ts.Vals[0] != 3 || ts.Vals[1] != 5 {
		t.Errorf("bins = %v %v", ts.Vals[0], ts.Vals[1])
	}
	if got := ts.BinStart(1); !got.Equal(t0.Add(time.Hour)) {
		t.Errorf("BinStart(1) = %v", got)
	}
	if i, ok := ts.Index(t0.Add(90 * time.Minute)); !ok || i != 1 {
		t.Errorf("Index = %d,%v", i, ok)
	}
	if _, ok := ts.Index(t0.Add(1000 * time.Hour)); ok {
		t.Error("out-of-grid index should be !ok")
	}
}

func TestTimeSeriesHourOfDay(t *testing.T) {
	ts := NewTimeSeries(t0, time.Hour, 72) // 3 days
	for d := 0; d < 3; d++ {
		ts.Add(t0.Add(time.Duration(d)*24*time.Hour).Add(13*time.Hour), 10) // 1pm
	}
	hod := ts.HourOfDay()
	if hod[13] != 10 {
		t.Errorf("hod[13] = %v, want 10", hod[13])
	}
	if hod[3] != 0 {
		t.Errorf("hod[3] = %v, want 0", hod[3])
	}
}

func TestRatioSeries(t *testing.T) {
	a := NewTimeSeries(t0, time.Hour, 3)
	b := NewTimeSeries(t0, time.Hour, 3)
	a.Vals = []float64{10, 20, 5}
	b.Vals = []float64{5, 0, 10}
	r := Ratio(a, b)
	if r.Vals[0] != 2 || r.Vals[1] != 0 || r.Vals[2] != 0.5 {
		t.Errorf("ratio = %v", r.Vals)
	}
	nz := r.NonZero()
	if len(nz) != 2 {
		t.Errorf("NonZero = %v", nz)
	}
}

func TestRatioPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Ratio(NewTimeSeries(t0, time.Hour, 3), NewTimeSeries(t0, time.Minute, 3))
}
