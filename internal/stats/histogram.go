package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Out-of-range observations are tallied in Under/Over rather than dropped,
// so totals remain auditable.
type Histogram struct {
	Lo, Hi      float64
	Counts      []uint64
	Under, Over uint64
}

// NewHistogram creates a histogram with n bins covering [lo, hi).
// It panics if n < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against float rounding at the edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() uint64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Buckets partitions observations using explicit boundaries, as in the
// paper's file-size categories of Fig. 2b ({0.5, 1, 5, 25} MB produces the
// five classes x<0.5, 0.5≤x<1, 1≤x<5, 5≤x<25, 25≤x). Each bucket tracks both
// a count and a weight sum so "fraction of operations" and "fraction of
// transferred data" come from the same pass.
type Buckets struct {
	Bounds  []float64 // ascending upper bounds; one extra implicit +inf bucket
	Counts  []uint64
	Weights []float64
}

// NewBuckets creates buckets from ascending boundaries. len(Counts) is
// len(bounds)+1. It panics on unsorted bounds.
func NewBuckets(bounds ...float64) *Buckets {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: bucket bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Buckets{
		Bounds:  b,
		Counts:  make([]uint64, len(b)+1),
		Weights: make([]float64, len(b)+1),
	}
}

// Add records an observation x with weight w (e.g. x = file size, w = bytes
// transferred).
func (b *Buckets) Add(x, w float64) {
	i := sort.SearchFloat64s(b.Bounds, x)
	// SearchFloat64s returns the first bound >= x; x equal to a bound belongs
	// to the bucket above it (categories are half-open [lo, hi)).
	if i < len(b.Bounds) && b.Bounds[i] == x {
		i++
	}
	b.Counts[i]++
	b.Weights[i] += w
}

// CountFractions returns each bucket's share of total observations.
func (b *Buckets) CountFractions() []float64 {
	var total uint64
	for _, c := range b.Counts {
		total += c
	}
	out := make([]float64, len(b.Counts))
	if total == 0 {
		return out
	}
	for i, c := range b.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// WeightFractions returns each bucket's share of total weight.
func (b *Buckets) WeightFractions() []float64 {
	total := Sum(b.Weights)
	out := make([]float64, len(b.Weights))
	if total == 0 {
		return out
	}
	for i, w := range b.Weights {
		out[i] = w / total
	}
	return out
}

// Label returns a human-readable range label for bucket i, using unit as the
// suffix (e.g. "x<0.5MB", "0.5MB<x<1MB", "25MB<x").
func (b *Buckets) Label(i int, unit string) string {
	switch {
	case len(b.Bounds) == 0:
		return "all"
	case i == 0:
		return fmt.Sprintf("x<%g%s", b.Bounds[0], unit)
	case i == len(b.Bounds):
		return fmt.Sprintf("%g%s<x", b.Bounds[len(b.Bounds)-1], unit)
	default:
		return fmt.Sprintf("%g%s<x<%g%s", b.Bounds[i-1], unit, b.Bounds[i], unit)
	}
}

// TimeSeries accumulates per-bin values over a fixed time grid. All the
// paper's time-series figures (2a, 5, 6, 14, 15) are per-hour or per-minute
// bins over the 30-day trace.
type TimeSeries struct {
	Start time.Time
	Bin   time.Duration
	Vals  []float64
}

// NewTimeSeries creates a series of n bins of width bin starting at start.
func NewTimeSeries(start time.Time, bin time.Duration, n int) *TimeSeries {
	return &TimeSeries{Start: start, Bin: bin, Vals: make([]float64, n)}
}

// Add accumulates v into the bin containing t. Observations outside the grid
// are ignored (the trace occasionally carries records that spill past the
// cut, mirroring the paper's parse-failure tolerance).
func (ts *TimeSeries) Add(t time.Time, v float64) {
	if i, ok := ts.Index(t); ok {
		ts.Vals[i] += v
	}
}

// Index returns the bin index of t and whether it is inside the grid.
// Times before Start are out of grid (integer division would otherwise
// truncate small negative offsets into bin 0).
func (ts *TimeSeries) Index(t time.Time) (int, bool) {
	if t.Before(ts.Start) {
		return -1, false
	}
	i := int(t.Sub(ts.Start) / ts.Bin)
	return i, i < len(ts.Vals)
}

// BinStart returns the start time of bin i.
func (ts *TimeSeries) BinStart(i int) time.Time {
	return ts.Start.Add(time.Duration(i) * ts.Bin)
}

// HourOfDay averages the series by hour-of-day, returning 24 means. Used to
// expose diurnal patterns (e.g. the 6am–3pm R/W-ratio decay in §5.1).
func (ts *TimeSeries) HourOfDay() [24]float64 {
	var sums, counts [24]float64
	for i, v := range ts.Vals {
		h := ts.BinStart(i).Hour()
		sums[h] += v
		counts[h]++
	}
	var out [24]float64
	for h := range out {
		if counts[h] > 0 {
			out[h] = sums[h] / counts[h]
		}
	}
	return out
}

// Ratio returns a new series of a.Vals[i]/b.Vals[i], skipping (leaving zero)
// bins where b is zero. The two series must share their grid; it panics
// otherwise, as that is a programming error.
func Ratio(a, b *TimeSeries) *TimeSeries {
	if !a.Start.Equal(b.Start) || a.Bin != b.Bin || len(a.Vals) != len(b.Vals) {
		panic("stats: ratio of incompatible time series")
	}
	out := NewTimeSeries(a.Start, a.Bin, len(a.Vals))
	for i := range a.Vals {
		if b.Vals[i] != 0 {
			out.Vals[i] = a.Vals[i] / b.Vals[i]
		}
	}
	return out
}

// NonZero returns the values of bins with non-zero content. Ratio-style
// analyses exclude empty bins rather than treating them as zeros.
func (ts *TimeSeries) NonZero() []float64 {
	out := make([]float64, 0, len(ts.Vals))
	for _, v := range ts.Vals {
		if v != 0 && !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}
