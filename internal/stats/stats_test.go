package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMeanVarStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "Mean")
	almost(t, Variance(xs), 4, 1e-12, "Variance")
	almost(t, StdDev(xs), 2, 1e-12, "StdDev")
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	almost(t, Sum(xs), 9, 0, "Sum")
	min, max := MinMax(xs)
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v want -1,7", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) should be 0,0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, Quantile(xs, 0), 1, 0, "q0")
	almost(t, Quantile(xs, 1), 5, 0, "q1")
	almost(t, Quantile(xs, 0.5), 3, 0, "q0.5")
	almost(t, Quantile(xs, 0.25), 2, 0, "q0.25")
	almost(t, Quantile(xs, 0.1), 1.4, 1e-12, "q0.1 interpolated")
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) should be 0")
	}
	// clamping
	almost(t, Quantile(xs, -1), 1, 0, "q<0 clamps")
	almost(t, Quantile(xs, 2), 5, 0, "q>1 clamps")
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got := Quantiles(xs, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		almost(t, got[i], want[i], 0, "Quantiles")
	}
}

func TestBoxPlot(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 100})
	if b.N != 5 || b.Min != 1 || b.Max != 100 || b.Median != 3 {
		t.Errorf("unexpected box plot: %v", b)
	}
	if b.IQR() != b.Q3-b.Q1 {
		t.Error("IQR mismatch")
	}
	if NewBoxPlot(nil).N != 0 {
		t.Error("empty box plot should be zero")
	}
	if b.String() == "" {
		t.Error("String should render")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	almost(t, Pearson(xs, ys), 1, 1e-12, "Pearson positive")
	neg := []float64{8, 6, 4, 2}
	almost(t, Pearson(xs, neg), -1, 1e-12, "Pearson negative")
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("length mismatch should give 0")
	}
	if Pearson([]float64{1, 1}, []float64{1, 2}) != 0 {
		t.Error("zero variance should give 0")
	}
}

func TestPearsonBounds(t *testing.T) {
	// Property: |ρ| ≤ 1 for random vectors.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		rho := Pearson(xs, ys)
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	almost(t, c.At(0), 0, 0, "At(0)")
	almost(t, c.At(1), 0.25, 0, "At(1)")
	almost(t, c.At(2), 0.75, 0, "At(2)")
	almost(t, c.At(3), 1, 0, "At(3)")
	almost(t, c.At(99), 1, 0, "At(99)")
	almost(t, c.CCDF(2), 0.25, 0, "CCDF(2)")
	if c.Min() != 1 || c.Max() != 3 {
		t.Error("Min/Max wrong")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Min() != 0 || c.Max() != 0 || c.Points(5) != nil {
		t.Error("empty CDF should degrade gracefully")
	}
}

func TestCDFMonotone(t *testing.T) {
	// Property: CDF is monotone non-decreasing and within [0,1].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.ExpFloat64() * 100
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := 0.0; x < 500; x += 7.3 {
			y := c.At(x)
			if y < prev || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPointsSampling(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	pts := NewCDF(xs).Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Y != 0 || pts[10].Y != 1 {
		t.Error("endpoints should be 0 and 1")
	}
	lg := NewCDF(xs).LogPoints(10)
	if len(lg) != 10 {
		t.Fatalf("got %d log points", len(lg))
	}
	for i := 1; i < len(lg); i++ {
		if lg[i].X <= lg[i-1].X {
			t.Error("log points should be ascending in x")
		}
	}
}

func TestDatRendering(t *testing.T) {
	s := Dat("demo", []Point{{1, 0.5}, {2, 1}})
	want := "# demo\n1\t0.5\n2\t1\n"
	if s != want {
		t.Errorf("Dat = %q, want %q", s, want)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9999, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.9999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	almost(t, h.BinCenter(0), 1, 1e-12, "BinCenter")
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc()
		}()
	}
}

func TestBucketsPaperCategories(t *testing.T) {
	// The Fig. 2b file-size categories in MB.
	b := NewBuckets(0.5, 1, 5, 25)
	b.Add(0.1, 0.1) // x<0.5
	b.Add(0.5, 0.5) // 0.5<=x<1
	b.Add(0.7, 0.7) // 0.5<=x<1
	b.Add(30, 30)   // 25<=x
	b.Add(4.9, 4.9) // 1<=x<5
	b.Add(25.0, 25) // 25<=x (boundary goes up)
	cf := b.CountFractions()
	if cf[0] != 1.0/6 || cf[1] != 2.0/6 || cf[2] != 1.0/6 || cf[4] != 2.0/6 {
		t.Errorf("count fractions = %v", cf)
	}
	wf := b.WeightFractions()
	almost(t, Sum(wf), 1, 1e-12, "weight fractions sum")
	if b.Label(0, "MB") != "x<0.5MB" || b.Label(4, "MB") != "25MB<x" || b.Label(1, "MB") != "0.5MB<x<1MB" {
		t.Errorf("labels wrong: %q %q %q", b.Label(0, "MB"), b.Label(4, "MB"), b.Label(1, "MB"))
	}
}

func TestBucketsPanicOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted bounds")
		}
	}()
	NewBuckets(5, 1)
}

func TestLorenzAndGiniEquality(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	almost(t, Gini(xs), 0, 1e-12, "Gini equal incomes")
	pts := Lorenz(xs)
	if len(pts) != 5 {
		t.Fatalf("got %d lorenz points", len(pts))
	}
	for _, p := range pts {
		almost(t, p.Share, p.Population, 1e-12, "Lorenz diagonal")
	}
}

func TestGiniExtremeInequality(t *testing.T) {
	xs := make([]float64, 1000)
	xs[0] = 1 // one user owns everything
	g := Gini(xs)
	if g < 0.99 {
		t.Errorf("Gini = %v, want ≈ 1", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// For {1,2,3,4}: G = 2*(1*1+2*2+3*3+4*4)/(4*10) - 5/4 = 60/40-1.25 = 0.25
	almost(t, Gini([]float64{4, 2, 3, 1}), 0.25, 1e-12, "Gini {1,2,3,4}")
}

func TestGiniProperties(t *testing.T) {
	// Property: 0 ≤ G < 1, and scaling all incomes leaves G unchanged.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.ExpFloat64()
		}
		g := Gini(xs)
		if g < -1e-9 || g >= 1 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(Gini(scaled)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopShare(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 1
	}
	xs[0] = 99 // top user has 99 of 198
	almost(t, TopShare(xs, 0.01), 0.5, 1e-9, "TopShare 1%")
	almost(t, TopShare(xs, 1), 1, 1e-12, "TopShare all")
	if TopShare(nil, 0.5) != 0 || TopShare(xs, 0) != 0 {
		t.Error("degenerate TopShare should be 0")
	}
}

func TestACFWhiteNoiseAndSine(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	noise := make([]float64, 2000)
	for i := range noise {
		noise[i] = r.NormFloat64()
	}
	acf := ACF(noise, 50)
	bound := ACFConfidence(len(noise))
	// Expect roughly 5% exceedances for white noise; allow generous slack.
	if ex := ACFExceedances(acf, bound); ex > 10 {
		t.Errorf("white noise exceedances = %d, want few", ex)
	}

	// A periodic series shows strong correlation at its period.
	period := 24
	sine := make([]float64, 2000)
	for i := range sine {
		sine[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	sacf := ACF(sine, 48)
	if sacf[period-1] < 0.9 {
		t.Errorf("ACF at period = %v, want ≈ 1", sacf[period-1])
	}
	if sacf[period/2-1] > -0.9 {
		t.Errorf("ACF at half period = %v, want ≈ -1", sacf[period/2-1])
	}
}

func TestACFDegenerate(t *testing.T) {
	if ACF([]float64{1}, 5) != nil {
		t.Error("single sample has no ACF")
	}
	flat := ACF([]float64{3, 3, 3, 3}, 2)
	for _, v := range flat {
		if v != 0 {
			t.Error("zero-variance series should give 0 ACF")
		}
	}
	if ACFConfidence(0) != 0 {
		t.Error("ACFConfidence(0) should be 0")
	}
}

func TestACFLagOneCorrelated(t *testing.T) {
	// AR(1) process with φ=0.9 must show high lag-1 autocorrelation.
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 5000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9*xs[i-1] + r.NormFloat64()
	}
	acf := ACF(xs, 1)
	if acf[0] < 0.8 {
		t.Errorf("AR(1) lag-1 ACF = %v, want > 0.8", acf[0])
	}
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	// Sample from a pure Pareto(α=1.54, θ=41.37) via inverse transform and
	// check the MLE recovers α.
	r := rand.New(rand.NewSource(1))
	alpha, theta := 1.54, 41.37
	xs := make([]float64, 20000)
	for i := range xs {
		u := r.Float64()
		xs[i] = theta * math.Pow(1-u, -1/(alpha-1))
	}
	fit := FitPowerLaw(xs, theta)
	almost(t, fit.Alpha, alpha, 0.05, "recovered alpha")
	if fit.NTail != len(xs) {
		t.Errorf("NTail = %d", fit.NTail)
	}
	if !fit.Bursty() {
		t.Error("1<α<2 fit should be flagged bursty")
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	alpha, theta := 1.44, 19.51
	xs := make([]float64, 30000)
	for i := range xs {
		// Body below theta plus a Pareto tail: auto-fit must find the tail.
		if r.Float64() < 0.3 {
			xs[i] = r.Float64() * theta
		} else {
			xs[i] = theta * math.Pow(1-r.Float64(), -1/(alpha-1))
		}
	}
	fit := FitPowerLawAuto(xs, 50)
	if fit.NTail < 100 {
		t.Fatalf("auto fit found no tail: %+v", fit)
	}
	almost(t, fit.Alpha, alpha, 0.15, "auto-fit alpha")
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if f := FitPowerLaw([]float64{1, 2, 3}, 0); f.Alpha != 0 {
		t.Error("theta<=0 should yield zero fit")
	}
	if f := FitPowerLaw([]float64{1}, 0.5); f.Alpha != 0 {
		t.Error("tiny tail should yield zero fit")
	}
	if f := FitPowerLawAuto([]float64{1, 2}, 10); f.Alpha != 0 {
		t.Error("tiny sample should yield zero auto fit")
	}
}

func TestModelCCDF(t *testing.T) {
	f := PowerLawFit{Alpha: 2, Theta: 10}
	almost(t, f.ModelCCDF(10), 1, 1e-12, "CCDF at theta")
	almost(t, f.ModelCCDF(20), 0.5, 1e-12, "CCDF at 2θ with α=2")
	almost(t, f.ModelCCDF(1), 1, 0, "below theta clamps to 1")
}

func TestCCDFPoints(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	pts := CCDFPoints(xs, 8)
	if len(pts) != 8 {
		t.Fatalf("got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y > pts[i-1].Y+1e-12 {
			t.Error("CCDF must be non-increasing")
		}
	}
}
