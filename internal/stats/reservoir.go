package stats

import "math/rand"

// Reservoir keeps a uniform random sample of bounded size over an unbounded
// observation stream (Vitter's algorithm R). The trace collector uses one per
// RPC type so a month of spans yields faithful service-time distributions
// (Fig. 12) in constant memory.
type Reservoir struct {
	cap   int
	seen  uint64
	items []float64
	rng   *rand.Rand
}

// NewReservoir creates a reservoir holding at most cap samples, seeded for
// reproducibility.
func NewReservoir(cap int, seed int64) *Reservoir {
	if cap < 1 {
		cap = 1
	}
	return &Reservoir{cap: cap, items: make([]float64, 0, cap), rng: rand.New(rand.NewSource(seed))}
}

// Add observes one value.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, x)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.items[j] = x
	}
}

// Seen returns the number of observations offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Sample returns a copy of the retained sample.
func (r *Reservoir) Sample() []float64 {
	return append([]float64(nil), r.items...)
}
