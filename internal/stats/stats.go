// Package stats implements the descriptive statistics used by the UbuntuOne
// measurement study: empirical CDFs, quantiles, histograms, autocorrelation,
// Lorenz curves and Gini coefficients, Pearson correlation, box-plot summaries
// and maximum-likelihood power-law fits.
//
// The Go ecosystem has no canonical statistics stack, so everything the
// analysis layer needs is implemented here from first principles on top of
// the standard library. All functions are deterministic and allocation-aware;
// the heavier ones (quantiles, Gini) sort copies of their input and leave the
// caller's slice untouched unless documented otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// or 0 when xs has fewer than two elements. The two-pass algorithm keeps the
// result numerically stable for the long-tailed samples this package handles.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefVar returns the coefficient of variation (σ/µ), or 0 when the mean is 0.
// The load-balancing analysis (Fig. 14) uses it to compare dispersion across
// time bins with very different absolute request counts.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the smallest and largest values in xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks (the R-7 estimator, the default in most
// statistics environments). It sorts a copy of xs. It returns 0 for an empty
// slice and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantiles returns the values of xs at each of the requested quantiles,
// sorting xs only once. The returned slice is parallel to qs.
func Quantiles(xs []float64, qs ...float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// BoxPlot holds the five-number summary plus mean that the paper's box plots
// (e.g. the R/W-ratio inset of Fig. 2c) display.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// NewBoxPlot computes the five-number summary of xs.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return BoxPlot{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
		N:      len(sorted),
	}
}

// IQR returns the inter-quartile range of the summary.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the summary on one line, in the spirit of the paper's
// box-plot annotations.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. The paper reports ρ = 0.998 between files and directories per
// volume (Fig. 10). It returns 0 when the slices differ in length, are
// shorter than 2, or either has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
