package stats

import "sort"

// LorenzPoint is one point of a Lorenz curve: the bottom X share of the
// population cumulatively holds the Y share of the total.
type LorenzPoint struct {
	Population float64 // cumulative population share in [0, 1]
	Share      float64 // cumulative value share in [0, 1]
}

// Lorenz computes the Lorenz curve of the non-negative values xs, as used by
// Fig. 7c to show traffic inequality across active users. The curve starts at
// (0,0) and ends at (1,1) and has len(xs)+1 points. Negative values are
// treated as zero. A sample with zero total yields the diagonal.
func Lorenz(xs []float64) []LorenzPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	sorted := make([]float64, 0, n)
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	total := Sum(sorted)
	pts := make([]LorenzPoint, n+1)
	var cum float64
	for i, x := range sorted {
		cum += x
		share := float64(i+1) / float64(n)
		if total > 0 {
			pts[i+1] = LorenzPoint{Population: share, Share: cum / total}
		} else {
			pts[i+1] = LorenzPoint{Population: share, Share: share}
		}
	}
	return pts
}

// Gini returns the Gini coefficient of the non-negative values xs: 0 means
// complete equality, values close to 1 complete inequality. The paper reports
// ≈0.894 (upload) and ≈0.897 (download) across active U1 users. Computed from
// the sorted sample with the standard closed form
//
//	G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n .
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, 0, n)
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	var weighted float64
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	nf := float64(n)
	return 2*weighted/(nf*total) - (nf+1)/nf
}

// TopShare returns the fraction of the total held by the top `frac` of the
// population (e.g. TopShare(xs, 0.01) answers "what share of traffic do the
// top 1% of users generate?" — 65.6% in the paper).
func TopShare(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	return Sum(sorted[:k]) / total
}
