package stats

import (
	"math"
	"testing"
)

func TestReservoirUnderCapacity(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 5 || len(r.Sample()) != 5 {
		t.Errorf("seen=%d sample=%d", r.Seen(), len(r.Sample()))
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(100, 2)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 100000 {
		t.Errorf("seen = %d", r.Seen())
	}
	if len(r.Sample()) != 100 {
		t.Errorf("sample size = %d", len(r.Sample()))
	}
}

func TestReservoirUnbiased(t *testing.T) {
	// The retained sample's mean must track the stream mean: feed 0..N-1
	// and expect mean ≈ (N-1)/2 within a loose tolerance.
	const n = 50000
	r := NewReservoir(2000, 3)
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	m := Mean(r.Sample())
	want := float64(n-1) / 2
	if math.Abs(m-want) > want*0.05 {
		t.Errorf("sample mean = %v, want ≈ %v", m, want)
	}
}

func TestReservoirSampleIsCopy(t *testing.T) {
	r := NewReservoir(4, 4)
	r.Add(1)
	s := r.Sample()
	s[0] = 99
	if r.Sample()[0] == 99 {
		t.Error("Sample must return a copy")
	}
}

func TestReservoirMinCapacity(t *testing.T) {
	r := NewReservoir(0, 5)
	r.Add(1)
	r.Add(2)
	if len(r.Sample()) != 1 {
		t.Errorf("zero-cap reservoir should clamp to 1, got %d", len(r.Sample()))
	}
}
