package stats

import (
	"math"
	"sort"
)

// PowerLawFit is the result of fitting P(X ≥ x) ≈ (x/θ)^{-(α-1)} to the tail
// of a sample, i.e. a Pareto density p(x) ∝ x^{-α} for x > θ. The paper fits
// user inter-operation times this way (Fig. 9b: Upload α=1.54, θ=41.37;
// Unlink α=1.44, θ=19.51) and concludes that 1 < α < 2 signals bursty,
// non-Poisson behavior with diverging variance.
type PowerLawFit struct {
	Alpha float64 // scaling exponent of the density, p(x) ∝ x^-α
	Theta float64 // lower cutoff (xmin) where power-law behavior starts
	NTail int     // sample points above Theta used in the fit
	KS    float64 // Kolmogorov–Smirnov distance between tail and model
}

// FitPowerLaw estimates α for a fixed cutoff θ using the continuous
// maximum-likelihood (Hill) estimator of Clauset, Shalizi & Newman:
//
//	α̂ = 1 + n / Σ ln(x_i/θ) over the n samples with x_i ≥ θ.
//
// Samples at or below 0 or below θ are ignored. It returns a zero fit when
// fewer than two samples exceed θ.
func FitPowerLaw(xs []float64, theta float64) PowerLawFit {
	if theta <= 0 {
		return PowerLawFit{}
	}
	var n int
	var logSum float64
	tail := make([]float64, 0, len(xs)/4)
	for _, x := range xs {
		if x >= theta && x > 0 {
			n++
			logSum += math.Log(x / theta)
			tail = append(tail, x)
		}
	}
	if n < 2 || logSum <= 0 {
		return PowerLawFit{Theta: theta, NTail: n}
	}
	alpha := 1 + float64(n)/logSum
	fit := PowerLawFit{Alpha: alpha, Theta: theta, NTail: n}
	fit.KS = ksDistance(tail, alpha, theta)
	return fit
}

// FitPowerLawAuto scans candidate cutoffs (quantiles of the positive sample)
// and returns the fit minimizing the Kolmogorov–Smirnov distance, the
// standard model-selection rule for power laws. nCandidates controls the scan
// resolution; 50 is plenty for the trace sizes used here.
func FitPowerLawAuto(xs []float64, nCandidates int) PowerLawFit {
	pos := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) < 10 {
		return PowerLawFit{}
	}
	sort.Float64s(pos)
	if nCandidates < 2 {
		nCandidates = 2
	}
	best := PowerLawFit{KS: math.Inf(1)}
	// Candidate cutoffs between the 1st and 90th percentile: fitting a tail
	// needs enough points above θ to be meaningful.
	for i := 0; i < nCandidates; i++ {
		q := 0.01 + 0.89*float64(i)/float64(nCandidates-1)
		theta := quantileSorted(pos, q)
		if theta <= 0 {
			continue
		}
		fit := FitPowerLaw(pos, theta)
		if fit.NTail >= 10 && fit.KS < best.KS {
			best = fit
		}
	}
	if math.IsInf(best.KS, 1) {
		return PowerLawFit{}
	}
	return best
}

// ksDistance returns the KS statistic between the empirical CCDF of the tail
// sample (all ≥ theta) and the fitted Pareto CCDF (x/θ)^{-(α-1)}.
func ksDistance(tail []float64, alpha, theta float64) float64 {
	sort.Float64s(tail)
	n := float64(len(tail))
	var maxDist float64
	for i, x := range tail {
		model := math.Pow(x/theta, -(alpha - 1))
		empAbove := 1 - float64(i)/n   // empirical CCDF just below x
		empBelow := 1 - float64(i+1)/n // empirical CCDF just above x
		if d := math.Abs(model - empAbove); d > maxDist {
			maxDist = d
		}
		if d := math.Abs(model - empBelow); d > maxDist {
			maxDist = d
		}
	}
	return maxDist
}

// CCDFPoints returns the empirical complementary CDF of xs sampled at
// logarithmically spaced x values, suitable for the log-log plots of Fig. 9b.
func CCDFPoints(xs []float64, n int) []Point {
	c := NewCDF(xs)
	pts := c.LogPoints(n)
	for i := range pts {
		pts[i].Y = 1 - pts[i].Y
	}
	return pts
}

// ModelCCDF evaluates the fitted Pareto CCDF at x.
func (f PowerLawFit) ModelCCDF(x float64) float64 {
	if x < f.Theta || f.Theta <= 0 || f.Alpha <= 1 {
		return 1
	}
	return math.Pow(x/f.Theta, -(f.Alpha - 1))
}

// Bursty reports whether the fit indicates bursty non-Poisson behavior in the
// paper's sense: a tail exponent 1 < α < 2 over a non-trivial tail.
func (f PowerLawFit) Bursty() bool {
	return f.NTail >= 10 && f.Alpha > 1 && f.Alpha < 2
}
