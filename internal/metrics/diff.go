package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReadBenchReport loads a BENCH_*.json report written by WriteBenchReport.
func ReadBenchReport(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("metrics: reading bench report: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("metrics: decoding bench report %s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return rep, fmt.Errorf("metrics: bench report %s has schema %q, want %q", path, rep.Schema, BenchSchema)
	}
	return rep, nil
}

// BenchDelta is one metric compared across two reports. Ratio is next/prev;
// for throughput metrics lower is worse, for latency metrics higher is worse.
type BenchDelta struct {
	Metric     string
	Prev, Next float64
	Ratio      float64
	// Regressed marks the delta as beyond the comparison tolerance in the
	// bad direction for its metric kind.
	Regressed bool
}

// BenchDiff is the comparison of a fresh report against the committed
// previous one: the per-PR perf trajectory check CI performs automatically.
type BenchDiff struct {
	Deltas []BenchDelta
}

// Regressions returns only the deltas beyond tolerance.
func (d BenchDiff) Regressions() []BenchDelta {
	var out []BenchDelta
	for _, x := range d.Deltas {
		if x.Regressed {
			out = append(out, x)
		}
	}
	return out
}

// minCompareCount guards per-op comparisons against statistical noise: ops
// observed fewer times than this in either report are skipped.
const minCompareCount = 100

// CompareBenchReports diffs next against prev: harness throughput, per-op
// throughput and p99 latency, and the contended hot-path rates. tolerance is
// the fractional worsening allowed before a delta is flagged (throughput may
// drop to prev*(1-tolerance); p99 may grow to prev*(1+tolerance)) — CI
// runners are noisy, so tolerances below ~0.25 flag phantom regressions.
func CompareBenchReports(prev, next BenchReport, tolerance float64) BenchDiff {
	if tolerance <= 0 {
		tolerance = 0.25
	}
	var d BenchDiff
	throughput := func(metric string, p, n float64) {
		if p <= 0 || n < 0 {
			return
		}
		d.Deltas = append(d.Deltas, BenchDelta{
			Metric: metric, Prev: p, Next: n, Ratio: n / p,
			Regressed: n < p*(1-tolerance),
		})
	}
	latency := func(metric string, p, n float64) {
		if p <= 0 || n < 0 {
			return
		}
		d.Deltas = append(d.Deltas, BenchDelta{
			Metric: metric, Prev: p, Next: n, Ratio: n / p,
			Regressed: n > p*(1+tolerance),
		})
	}

	throughput("ops_per_sec", prev.OpsPerSec, next.OpsPerSec)
	for _, op := range prev.SortedOpNames() {
		po := prev.Ops[op]
		no, ok := next.Ops[op]
		if !ok || po.Count < minCompareCount || no.Count < minCompareCount {
			continue
		}
		throughput("op."+op+".ops_per_sec", po.OpsPerSec, no.OpsPerSec)
		latency("op."+op+".p99_ms", po.P99Ms, no.P99Ms)
	}

	paths := make([]string, 0, len(prev.HotPaths))
	for name := range prev.HotPaths {
		paths = append(paths, name)
	}
	sort.Strings(paths)
	for _, name := range paths {
		pp := prev.HotPaths[name]
		np, ok := next.HotPaths[name]
		if !ok {
			continue
		}
		throughput("hot_path."+name+".parallel_ops_per_sec", pp.ParallelOpsPerSec, np.ParallelOpsPerSec)
	}

	// Generator scaling appears in reports from schema generation 4 on;
	// older baselines simply skip the comparison.
	if prev.Generator != nil && next.Generator != nil {
		throughput("generator.serial_events_per_sec",
			prev.Generator.SerialEventsPerSec, next.Generator.SerialEventsPerSec)
		throughput("generator.parallel_events_per_sec",
			prev.Generator.ParallelEventsPerSec, next.Generator.ParallelEventsPerSec)
	}

	// Durability pricing (schema generation 6 on) compares only when both
	// reports carry it: append throughput is a real throughput check; the
	// modeled sync cost is compared as a latency so an accidental cost-model
	// change (the 5 ms fsync floor, the group-commit amortization) is flagged.
	if prev.Durability != nil && next.Durability != nil {
		policies := make([]string, 0, len(prev.Durability.Policies))
		for name := range prev.Durability.Policies {
			policies = append(policies, name)
		}
		sort.Strings(policies)
		for _, name := range policies {
			pp := prev.Durability.Policies[name]
			np, ok := next.Durability.Policies[name]
			if !ok {
				continue
			}
			throughput("durability."+name+".appends_per_sec", pp.AppendsPerSec, np.AppendsPerSec)
			latency("durability."+name+".sync_cost_ms", pp.SyncCostMs, np.SyncCostMs)
		}
	}

	// Fault-machinery counts (schema generation 5 on) compare only when both
	// reports carry them, and informationally: injected/shed volumes follow
	// the run's fault configuration, so a delta is a visibility aid, never a
	// perf regression.
	if prev.Faults != nil && next.Faults != nil {
		count := func(metric string, p, n uint64) {
			delta := BenchDelta{Metric: metric, Prev: float64(p), Next: float64(n)}
			if p > 0 {
				delta.Ratio = float64(n) / float64(p)
			}
			d.Deltas = append(d.Deltas, delta)
		}
		count("faults.injected", prev.Faults.Injected, next.Faults.Injected)
		count("faults.shed", prev.Faults.Shed, next.Faults.Shed)
		count("faults.sso_shed", prev.Faults.SSOShed, next.Faults.SSOShed)
		count("faults.retried", prev.Faults.Retried, next.Faults.Retried)
		count("faults.retry_succeeded", prev.Faults.RetrySucceeded, next.Faults.RetrySucceeded)
	}

	// Chaos scenarios (schema generation 8 on) compare informationally when
	// both reports ran the same catalog entries: the counters follow each
	// scenario's configuration, so deltas are visibility aids, never perf
	// regressions — but a scenario whose totals drift between PRs is worth a
	// look.
	if len(prev.Scenarios) > 0 && len(next.Scenarios) > 0 {
		count := func(metric string, p, n uint64) {
			delta := BenchDelta{Metric: metric, Prev: float64(p), Next: float64(n)}
			if p > 0 {
				delta.Ratio = float64(n) / float64(p)
			}
			d.Deltas = append(d.Deltas, delta)
		}
		names := make([]string, 0, len(prev.Scenarios))
		for name := range prev.Scenarios {
			if _, ok := next.Scenarios[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			ps, ns := prev.Scenarios[name], next.Scenarios[name]
			count("scenario."+name+".total_ops", ps.TotalOps, ns.TotalOps)
			count("scenario."+name+".total_errors", ps.TotalErrors, ns.TotalErrors)
			count("scenario."+name+".injected", ps.Injected, ns.Injected)
			count("scenario."+name+".shed", ps.Shed, ns.Shed)
			count("scenario."+name+".sso_shed", ps.SSOShed, ns.SSOShed)
		}
	}

	// Cross-region replication (schema generation 7 on) compares
	// informationally, like faults: publication volume and conflict skips
	// follow the run's region configuration, but replication lag is compared
	// as a latency so a delivery-scheduling change that ages records longer
	// than the configured delay gets flagged.
	if prev.Replication != nil && next.Replication != nil {
		count := func(metric string, p, n uint64) {
			delta := BenchDelta{Metric: metric, Prev: float64(p), Next: float64(n)}
			if p > 0 {
				delta.Ratio = float64(n) / float64(p)
			}
			d.Deltas = append(d.Deltas, delta)
		}
		count("replication.published", prev.Replication.Published, next.Replication.Published)
		count("replication.applied", prev.Replication.Applied, next.Replication.Applied)
		count("replication.lww_skipped", prev.Replication.LWWSkipped, next.Replication.LWWSkipped)
		count("replication.reads_local", prev.Replication.ReadsLocal, next.Replication.ReadsLocal)
		count("replication.reads_stale", prev.Replication.ReadsStale, next.Replication.ReadsStale)
		latency("replication.lag_mean_epochs", prev.Replication.LagMeanEp, next.Replication.LagMeanEp)
		latency("replication.lag_max_epochs", prev.Replication.LagMaxEp, next.Replication.LagMaxEp)
	}

	// Scale campaign (schema generation 9 on) compares only when both
	// reports carry it. Throughput and footprint are informational — the
	// campaign's population, compaction mode, and host differ across
	// reports, so a delta guides a look rather than failing the build — but
	// placement max/mean at matching shard counts is compared as a latency:
	// it is host- and scale-independent, so a drift means the two-choices
	// placement itself got worse.
	if prev.Scale != nil && next.Scale != nil {
		info := func(metric string, p, n float64) {
			delta := BenchDelta{Metric: metric, Prev: p, Next: n}
			if p > 0 {
				delta.Ratio = n / p
			}
			d.Deltas = append(d.Deltas, delta)
		}
		info("scale.events_per_sec", prev.Scale.EventsPerSec, next.Scale.EventsPerSec)
		info("scale.bytes_per_user", prev.Scale.BytesPerUser, next.Scale.BytesPerUser)
		prevPl := make(map[int]PlacementStats, len(prev.Scale.Placement))
		for _, p := range prev.Scale.Placement {
			prevPl[p.Shards] = p
		}
		for _, n := range next.Scale.Placement {
			if p, ok := prevPl[n.Shards]; ok {
				latency(fmt.Sprintf("scale.placement.shards_%d.max_over_mean", n.Shards),
					p.MaxOverMean, n.MaxOverMean)
			}
		}
	}
	return d
}

// WriteBenchDiff renders the comparison as a GitHub-flavored markdown
// summary (the CI job summary format): a regression warning block when
// anything exceeded tolerance, then the full comparison table.
func WriteBenchDiff(w io.Writer, d BenchDiff, prevName, nextName string) error {
	regs := d.Regressions()
	if len(regs) == 0 {
		fmt.Fprintf(w, "### Bench diff: %s vs %s — no regressions beyond tolerance\n\n", nextName, prevName)
	} else {
		fmt.Fprintf(w, "### ⚠️ Bench diff: %s vs %s — %d regression(s) beyond tolerance\n\n", nextName, prevName, len(regs))
		for _, r := range regs {
			fmt.Fprintf(w, "- **%s**: %.4g → %.4g (×%.2f)\n", r.Metric, r.Prev, r.Next, r.Ratio)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "| metric | prev | new | ratio | |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, x := range d.Deltas {
		flag := ""
		if x.Regressed {
			flag = "⚠️"
		}
		if _, err := fmt.Fprintf(w, "| %s | %.4g | %.4g | %.2f | %s |\n", x.Metric, x.Prev, x.Next, x.Ratio, flag); err != nil {
			return err
		}
	}
	return nil
}
