package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The registry naming scheme the instrumented tiers follow. The bench-report
// builder keys off these prefixes, so they are part of the metrics API.
const (
	// APIOpPrefix + <OpName> + {".seconds"|".count"|".errors"} — per API
	// operation latency histogram and outcome counters (apiserver).
	APIOpPrefix = "api.op."
	// RPCPrefix + <dal.name> + ".seconds" — per-RPC service-time histograms;
	// RPCClassPrefix + <class> + ".seconds" aggregates them by paper class.
	RPCPrefix      = "rpc."
	RPCClassPrefix = "rpc.class."
	// ShardPrefix + <i> + {".reads"|".writes"} — per-shard op counters;
	// + {".read_hold.seconds"|".write_hold.seconds"} — lock hold times.
	ShardPrefix = "meta.shard."
	// FaultsPrefix + {"injected"|"shed"|"sso_shed"|"retried"|
	// "retry_succeeded"} — the apiserver's fault-injection /
	// admission-control / SSO-bucket / client-retry counters, folded into
	// the report's faults section.
	FaultsPrefix = "faults."
	// WALPrefix + {"appends"|"snapshots"|"replayed"|"torn_bytes_dropped"|
	// "errors"|"journaled"} — the durable metadata tier's journal activity.
	WALPrefix = "wal."
	// ReplicationPrefix + {"published"|"applied"|"lww_skipped"|
	// "revoked_blocked"|"reads.local"|"reads.remote"|"reads.stale"} counters,
	// + "backlog.depth" gauge, + "lag.epochs" histogram — the cross-region
	// metadata replication tier.
	ReplicationPrefix = "repl."
)

// OpStats is one operation class in a benchmark report.
type OpStats struct {
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// ShardBalance summarizes load spread across metadata shards — the Fig. 14
// balance analysis over live counters instead of the offline trace.
type ShardBalance struct {
	Reads  []uint64 `json:"reads"`
	Writes []uint64 `json:"writes"`
	// CV is the coefficient of variation of total per-shard ops; the paper
	// measured 4.9% long-term imbalance across U1's 10 shards.
	CV float64 `json:"cv"`
}

// HotPathStats calibrates one per-request hot path under contention: ops/sec
// from a single goroutine vs ops/sec with Workers goroutines hammering the
// same structure. Speedup = parallel/serial; > 1 means the path scales with
// cores, ≤ 1 means it serializes on a shared lock.
type HotPathStats struct {
	SerialOpsPerSec   float64 `json:"serial_ops_per_sec"`
	ParallelOpsPerSec float64 `json:"parallel_ops_per_sec"`
	Workers           int     `json:"workers"`
	Speedup           float64 `json:"speedup"`
}

// GeneratorStats calibrates end-to-end trace generation on the sharded
// simulation substrate: events per wall second with one generator shard
// (the bit-for-bit serial stream) vs one shard per core. Speedup =
// parallel/serial; > 1 means the sharded event loops scale with cores.
type GeneratorStats struct {
	Users                int     `json:"users"`
	Days                 int     `json:"days"`
	Workers              int     `json:"workers"`
	SerialEventsPerSec   float64 `json:"serial_events_per_sec"`
	ParallelEventsPerSec float64 `json:"parallel_events_per_sec"`
	Speedup              float64 `json:"speedup"`
}

// WALPolicyStats prices one fsync policy of the durable metadata tier:
// measured journal append throughput, the sync-per-append ratio of the
// policy's cadence, and the deterministic per-mutation sync cost the
// durability interceptor charges to the request path.
type WALPolicyStats struct {
	AppendsPerSec  float64 `json:"appends_per_sec"`
	SyncsPerAppend float64 `json:"syncs_per_append"`
	SyncCostMs     float64 `json:"sync_cost_ms"`
}

// DurabilityStats is the report's durability section: the WAL priced under
// each fsync policy (per-op, group, async), keyed by policy name.
type DurabilityStats struct {
	Policies map[string]WALPolicyStats `json:"policies"`
}

// FaultStats is the report's fault-machinery section: how many requests the
// fault plan injected failures into, how many admission control shed (the
// per-op-class controller and the SSO-tier token bucket separately), and
// how much retried client traffic arrived (and recovered). Present only in
// runs where any of the counters fired.
type FaultStats struct {
	Injected       uint64 `json:"injected"`
	Shed           uint64 `json:"shed"`
	SSOShed        uint64 `json:"sso_shed,omitempty"`
	Retried        uint64 `json:"retried"`
	RetrySucceeded uint64 `json:"retry_succeeded"`
}

// ReplicationStats is the report's cross-region replication section:
// published vs applied record counts, conflict-rule skips, read routing
// (local replica vs remote owner, and how many local reads were provably
// stale), the backlog depth at snapshot time, and replication lag in epochs.
// Present only for runs with 2+ regions.
type ReplicationStats struct {
	Published    uint64  `json:"published"`
	Applied      uint64  `json:"applied"`
	LWWSkipped   uint64  `json:"lww_skipped,omitempty"`
	ReadsLocal   uint64  `json:"reads_local,omitempty"`
	ReadsRemote  uint64  `json:"reads_remote,omitempty"`
	ReadsStale   uint64  `json:"reads_stale,omitempty"`
	BacklogDepth int64   `json:"backlog_depth"`
	LagMeanEp    float64 `json:"lag_mean_epochs"`
	LagMaxEp     float64 `json:"lag_max_epochs"`
}

// PlacementStats records power-of-two-choices placement quality at one
// balancer shard count: after placing Sessions sessions across a fixed
// backend fleet, the most-loaded backend's session count against the even
// split. MaxOverMean = 1.0 is a perfect spread; the two-choices bound keeps
// it near 1 even as shard counts grow and each decision sees less state.
type PlacementStats struct {
	Shards      int     `json:"shards"`
	Backends    int     `json:"backends"`
	Sessions    int     `json:"sessions"`
	MaxLoad     uint64  `json:"max_load"`
	MeanLoad    float64 `json:"mean_load"`
	MaxOverMean float64 `json:"max_over_mean"`
}

// ScaleStats is the report's scale-campaign section: a generator-only run at
// populations far past the trace scale (the paper served 1.29M users),
// recording sustained event throughput, steady-state resident bytes per user
// (heap after a full GC, divided by the population), peak process RSS, and
// placement quality versus balancer shard count. Produced by cmd/u1scale;
// omitted by the plain bench producers.
type ScaleStats struct {
	Users   int   `json:"users"`
	Days    int   `json:"days"`
	Workers int   `json:"workers"`
	Seed    int64 `json:"seed"`
	// Compact records whether the run used the generator's low-memory
	// configuration (workload.Config.LowMem); DeltaLogLimit the per-volume
	// delta-log cap the cluster ran with (0 = the metadata default). Both
	// change the stream vs the golden configuration, so they are part of
	// the record.
	Compact       bool `json:"compact"`
	DeltaLogLimit int  `json:"delta_log_limit,omitempty"`

	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`

	HeapBytes    uint64  `json:"heap_bytes"`
	BytesPerUser float64 `json:"bytes_per_user"`
	PeakRSSBytes uint64  `json:"peak_rss_bytes,omitempty"`

	Placement []PlacementStats `json:"placement,omitempty"`
}

// ScenarioClassErrors is one op class's error accounting in a scenario
// report: how many operations the class saw and how many errored.
type ScenarioClassErrors struct {
	Ops    uint64  `json:"ops"`
	Errors uint64  `json:"errors"`
	Rate   float64 `json:"rate"`
}

// ScenarioStats is one named chaos scenario's report: the workload scale it
// ran at, the fault machinery's counters, error rates by shedding class, the
// per-op latency profile (serial runs only — sampled RPC durations are not
// reproducible under a parallel driver, so the runner omits them rather
// than publish numbers that vary run to run), replication counters when
// regions were on, the invariant verdict, and — for scenarios that run an
// unmitigated comparison leg — the baseline's stats nested inside.
type ScenarioStats struct {
	Description string `json:"description,omitempty"`
	Users       int    `json:"users"`
	Days        int    `json:"days"`
	Seed        int64  `json:"seed"`
	Workers     int    `json:"workers"`

	Sessions    uint64 `json:"sessions"`
	FailedAuths uint64 `json:"failed_auths"`
	TotalOps    uint64 `json:"total_ops"`
	TotalErrors uint64 `json:"total_errors"`

	Injected       uint64 `json:"injected"`
	Shed           uint64 `json:"shed"`
	SSOShed        uint64 `json:"sso_shed"`
	Retried        uint64 `json:"retried"`
	RetrySucceeded uint64 `json:"retry_succeeded"`
	// AuthOverloaded counts requests the SSO back-end's capacity model
	// failed (goodput collapse under storm load).
	AuthOverloaded uint64 `json:"auth_overloaded"`

	// ErrorRates keys faults.Class names (data/metadata/session).
	ErrorRates map[string]ScenarioClassErrors `json:"error_rates"`
	// Ops carries per-op latency percentiles; present only for Workers=1
	// runs (see the type comment). OpsPerSec is zero: scenario reports carry
	// no wall-clock, for determinism.
	Ops map[string]OpStats `json:"ops,omitempty"`
	// WALJournaled counts mutations charged a journal sync (durable runs).
	WALJournaled uint64 `json:"wal_journaled,omitempty"`
	// Replication carries the cross-region counters (multi-region runs).
	Replication *ReplicationStats `json:"replication,omitempty"`

	// Invariant is "pass" or the violated invariant's description.
	Invariant string `json:"invariant"`
	// Baseline is the unmitigated comparison leg, when the scenario has one.
	Baseline *ScenarioStats `json:"baseline,omitempty"`
}

// BenchReport is the machine-readable benchmark result (BENCH_*.json): the
// perf trajectory record CI archives on every run.
type BenchReport struct {
	Schema      string  `json:"schema"`
	Users       int     `json:"users"`
	Days        int     `json:"days"`
	WallSeconds float64 `json:"wall_seconds"`
	// OpsPerSec is harness throughput: total API operations driven through
	// the back-end per wall-clock second of generation.
	OpsPerSec float64 `json:"ops_per_sec"`
	TotalOps  uint64  `json:"total_ops"`
	// Ops holds per-API-operation latency/throughput; latencies are the
	// simulated service times of the calibrated model, so they track the
	// paper's Figs. 12–13 rather than host speed.
	Ops map[string]OpStats `json:"ops"`
	// RPCClasses aggregates DAL service times by paper class
	// (read/write/cascade).
	RPCClasses map[string]OpStats `json:"rpc_classes"`
	Shards     ShardBalance       `json:"shards"`
	// HotPaths records contended-throughput calibration of the per-request
	// hot paths (rpc sampling, notify fan-out, balancer placement), measured
	// by internal/hotpath and keyed by path name.
	HotPaths map[string]HotPathStats `json:"hot_paths,omitempty"`
	// Generator records serial-vs-parallel trace-generation throughput on
	// the sharded simulation substrate (internal/hotpath.MeasureGenerator).
	Generator *GeneratorStats `json:"generator,omitempty"`
	// Faults summarizes fault injection, load shedding and client retries;
	// omitted for failure-free runs.
	Faults *FaultStats `json:"faults,omitempty"`
	// Durability prices the metadata WAL's fsync policies (measured by
	// internal/hotpath.MeasureDurability); omitted by producers predating the
	// durable tier.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Replication summarizes the cross-region replication tier; omitted for
	// single-region runs.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Scenarios carries per-scenario chaos reports keyed by catalog name
	// (written by cmd/u1chaos); omitted by the plain bench producers.
	Scenarios map[string]ScenarioStats `json:"scenarios,omitempty"`
	// Scale carries the million-user scale campaign's record (written by
	// cmd/u1scale); omitted by the plain bench producers.
	Scale *ScaleStats `json:"scale,omitempty"`
	// Counters carries the full counter snapshot for trend diffing.
	Counters map[string]uint64 `json:"counters"`
}

// BenchSchema identifies the report format.
const BenchSchema = "u1-bench/1"

// BuildBenchReport derives a report from a registry snapshot. wallSeconds is
// the wall-clock duration of the measured run; users/days describe the
// workload scale.
func BuildBenchReport(snap Snapshot, wallSeconds float64, users, days int) BenchReport {
	rep := BenchReport{
		Schema:      BenchSchema,
		Users:       users,
		Days:        days,
		WallSeconds: wallSeconds,
		Ops:         make(map[string]OpStats),
		RPCClasses:  make(map[string]OpStats),
		Counters:    snap.Counters,
	}

	opStats := func(hist HistogramSnapshot, count, errs uint64) OpStats {
		st := OpStats{
			Count:  count,
			Errors: errs,
			MeanMs: hist.Mean * 1e3,
			P50Ms:  hist.P50 * 1e3,
			P95Ms:  hist.P95 * 1e3,
			P99Ms:  hist.P99 * 1e3,
		}
		if wallSeconds > 0 {
			st.OpsPerSec = float64(count) / wallSeconds
		}
		return st
	}

	for name, hist := range snap.Histograms {
		switch {
		case strings.HasPrefix(name, APIOpPrefix) && strings.HasSuffix(name, ".seconds"):
			op := strings.TrimSuffix(strings.TrimPrefix(name, APIOpPrefix), ".seconds")
			count := snap.Counters[APIOpPrefix+op+".count"]
			if count == 0 {
				count = hist.Count
			}
			rep.Ops[op] = opStats(hist, count, snap.Counters[APIOpPrefix+op+".errors"])
			rep.TotalOps += count
		case strings.HasPrefix(name, RPCClassPrefix) && strings.HasSuffix(name, ".seconds"):
			class := strings.TrimSuffix(strings.TrimPrefix(name, RPCClassPrefix), ".seconds")
			rep.RPCClasses[class] = opStats(hist, hist.Count, 0)
		}
	}
	if wallSeconds > 0 {
		rep.OpsPerSec = float64(rep.TotalOps) / wallSeconds
	}

	rep.Shards = shardBalance(snap.Counters)
	f := FaultStats{
		Injected:       snap.Counters[FaultsPrefix+"injected"],
		Shed:           snap.Counters[FaultsPrefix+"shed"],
		SSOShed:        snap.Counters[FaultsPrefix+"sso_shed"],
		Retried:        snap.Counters[FaultsPrefix+"retried"],
		RetrySucceeded: snap.Counters[FaultsPrefix+"retry_succeeded"],
	}
	if f != (FaultStats{}) {
		rep.Faults = &f
	}
	repl := ReplicationStats{
		Published:    snap.Counters[ReplicationPrefix+"published"],
		Applied:      snap.Counters[ReplicationPrefix+"applied"],
		LWWSkipped:   snap.Counters[ReplicationPrefix+"lww_skipped"],
		ReadsLocal:   snap.Counters[ReplicationPrefix+"reads.local"],
		ReadsRemote:  snap.Counters[ReplicationPrefix+"reads.remote"],
		ReadsStale:   snap.Counters[ReplicationPrefix+"reads.stale"],
		BacklogDepth: snap.Gauges[ReplicationPrefix+"backlog.depth"],
	}
	if lag, ok := snap.Histograms[ReplicationPrefix+"lag.epochs"]; ok && lag.Count > 0 {
		repl.LagMeanEp = lag.Mean
		repl.LagMaxEp = lag.Max
	}
	if repl != (ReplicationStats{}) {
		rep.Replication = &repl
	}
	return rep
}

// shardBalance folds meta.shard.<i>.reads/.writes counters into the balance
// summary.
func shardBalance(counters map[string]uint64) ShardBalance {
	type rw struct{ reads, writes uint64 }
	byIdx := make(map[int]rw)
	maxIdx := -1
	for name, v := range counters {
		if !strings.HasPrefix(name, ShardPrefix) {
			continue
		}
		rest := strings.TrimPrefix(name, ShardPrefix)
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			continue
		}
		idx, err := strconv.Atoi(rest[:dot])
		if err != nil {
			continue
		}
		e := byIdx[idx]
		switch rest[dot+1:] {
		case "reads":
			e.reads = v
		case "writes":
			e.writes = v
		default:
			continue
		}
		byIdx[idx] = e
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	var b ShardBalance
	if maxIdx < 0 {
		return b
	}
	b.Reads = make([]uint64, maxIdx+1)
	b.Writes = make([]uint64, maxIdx+1)
	totals := make([]float64, maxIdx+1)
	for idx, e := range byIdx {
		b.Reads[idx] = e.reads
		b.Writes[idx] = e.writes
		totals[idx] = float64(e.reads + e.writes)
	}
	b.CV = coefficientOfVariation(totals)
	return b
}

func coefficientOfVariation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// WriteBenchReport writes the report to path as indented JSON.
func WriteBenchReport(path string, rep BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encoding bench report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("metrics: writing bench report: %w", err)
	}
	return nil
}

// SortedOpNames returns the report's op names in stable order, for printing.
func (r BenchReport) SortedOpNames() []string {
	names := make([]string, 0, len(r.Ops))
	for k := range r.Ops {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
