package metrics

import (
	"path/filepath"
	"strings"
	"testing"
)

func diffFixture() (BenchReport, BenchReport) {
	prev := BenchReport{
		Schema:    BenchSchema,
		OpsPerSec: 10000,
		Ops: map[string]OpStats{
			"Upload":   {Count: 5000, OpsPerSec: 800, P99Ms: 40},
			"Download": {Count: 5000, OpsPerSec: 700, P99Ms: 30},
			"Rare":     {Count: 3, OpsPerSec: 1, P99Ms: 5}, // below minCompareCount
		},
		HotPaths: map[string]HotPathStats{
			"rpc.call": {ParallelOpsPerSec: 1e6},
		},
	}
	next := BenchReport{
		Schema:    BenchSchema,
		OpsPerSec: 9800, // within tolerance
		Ops: map[string]OpStats{
			"Upload":   {Count: 5100, OpsPerSec: 300, P99Ms: 41},  // throughput regression
			"Download": {Count: 5100, OpsPerSec: 720, P99Ms: 100}, // p99 regression
			"Rare":     {Count: 2, OpsPerSec: 0.1, P99Ms: 500},    // skipped: tiny count
		},
		HotPaths: map[string]HotPathStats{
			"rpc.call": {ParallelOpsPerSec: 1.1e6},
		},
		Generator: &GeneratorStats{SerialEventsPerSec: 9e4, ParallelEventsPerSec: 2.5e5},
	}
	return prev, next
}

func TestCompareBenchReports(t *testing.T) {
	prev, next := diffFixture()
	d := CompareBenchReports(prev, next, 0.25)

	regressed := make(map[string]bool)
	for _, r := range d.Regressions() {
		regressed[r.Metric] = true
	}
	if !regressed["op.Upload.ops_per_sec"] {
		t.Error("Upload throughput collapse not flagged")
	}
	if !regressed["op.Download.p99_ms"] {
		t.Error("Download p99 blow-up not flagged")
	}
	if regressed["ops_per_sec"] {
		t.Error("2% throughput dip flagged despite 25% tolerance")
	}
	if regressed["hot_path.rpc.call.parallel_ops_per_sec"] {
		t.Error("hot-path improvement flagged as regression")
	}
	for _, x := range d.Deltas {
		if strings.Contains(x.Metric, "Rare") {
			t.Error("low-count op must be skipped as noise")
		}
		if strings.HasPrefix(x.Metric, "generator.") {
			t.Error("generator section compared against a baseline that lacks one")
		}
	}
}

// TestCompareGeneratorSection covers the generator rates: present in both
// reports they diff like any throughput metric; a missing side is skipped.
func TestCompareGeneratorSection(t *testing.T) {
	prev, next := diffFixture()
	prev.Generator = &GeneratorStats{SerialEventsPerSec: 1e5, ParallelEventsPerSec: 4e5}
	d := CompareBenchReports(prev, next, 0.25)
	var serial, parallel *BenchDelta
	for i := range d.Deltas {
		switch d.Deltas[i].Metric {
		case "generator.serial_events_per_sec":
			serial = &d.Deltas[i]
		case "generator.parallel_events_per_sec":
			parallel = &d.Deltas[i]
		}
	}
	if serial == nil || parallel == nil {
		t.Fatal("generator deltas missing from comparison")
	}
	if serial.Regressed {
		t.Error("10% serial dip flagged despite 25% tolerance")
	}
	if !parallel.Regressed {
		t.Error("4e5 → 2.5e5 parallel generation collapse not flagged")
	}
}

// TestCompareFaultsSection covers the faults counts: compared only when both
// reports carry the section, and always informationally — a shed-count jump
// reflects the run's fault configuration, not a perf regression.
func TestCompareFaultsSection(t *testing.T) {
	prev, next := diffFixture()
	d := CompareBenchReports(prev, next, 0.25)
	for _, x := range d.Deltas {
		if strings.HasPrefix(x.Metric, "faults.") {
			t.Fatal("faults section compared when a side lacks one")
		}
	}
	prev.Faults = &FaultStats{Injected: 100, Shed: 10, Retried: 80, RetrySucceeded: 60, SSOShed: 7}
	next.Faults = &FaultStats{Injected: 500, Shed: 90, Retried: 400, RetrySucceeded: 310, SSOShed: 21}
	d = CompareBenchReports(prev, next, 0.25)
	found := map[string]BenchDelta{}
	for _, x := range d.Deltas {
		if strings.HasPrefix(x.Metric, "faults.") {
			found[x.Metric] = x
		}
	}
	if len(found) != 5 {
		t.Fatalf("faults deltas = %d, want 5 (%v)", len(found), found)
	}
	if x := found["faults.sso_shed"]; x.Prev != 7 || x.Next != 21 || x.Ratio != 3 {
		t.Errorf("faults.sso_shed delta = %+v", x)
	}
	if x := found["faults.injected"]; x.Prev != 100 || x.Next != 500 || x.Ratio != 5 {
		t.Errorf("faults.injected delta = %+v", x)
	}
	for name, x := range found {
		if x.Regressed {
			t.Errorf("%s flagged as a regression; fault counts are informational", name)
		}
	}
}

// TestCompareScenariosSection: chaos scenario counters compare informationally
// for the catalog entries both reports ran; entries only one side ran are
// skipped (the matrix changed, there is nothing to compare against).
func TestCompareScenariosSection(t *testing.T) {
	prev, next := diffFixture()
	d := CompareBenchReports(prev, next, 0.25)
	for _, x := range d.Deltas {
		if strings.HasPrefix(x.Metric, "scenario.") {
			t.Fatal("scenarios section compared when a side lacks one")
		}
	}
	prev.Scenarios = map[string]ScenarioStats{
		"sso-storm": {TotalOps: 1000, TotalErrors: 50, SSOShed: 40},
		"prev-only": {TotalOps: 10},
	}
	next.Scenarios = map[string]ScenarioStats{
		"sso-storm": {TotalOps: 2000, TotalErrors: 90, SSOShed: 120},
		"next-only": {TotalOps: 20},
	}
	d = CompareBenchReports(prev, next, 0.25)
	found := map[string]BenchDelta{}
	for _, x := range d.Deltas {
		if strings.HasPrefix(x.Metric, "scenario.") {
			found[x.Metric] = x
			if x.Regressed {
				t.Errorf("%s flagged as a regression; scenario counts are informational", x.Metric)
			}
			if !strings.HasPrefix(x.Metric, "scenario.sso-storm.") {
				t.Errorf("unshared scenario compared: %s", x.Metric)
			}
		}
	}
	if x := found["scenario.sso-storm.sso_shed"]; x.Prev != 40 || x.Next != 120 || x.Ratio != 3 {
		t.Errorf("scenario.sso-storm.sso_shed delta = %+v", x)
	}
	if x := found["scenario.sso-storm.total_ops"]; x.Prev != 1000 || x.Next != 2000 {
		t.Errorf("scenario.sso-storm.total_ops delta = %+v", x)
	}
}

func TestCompareBenchReportsCleanPass(t *testing.T) {
	prev, _ := diffFixture()
	d := CompareBenchReports(prev, prev, 0.25)
	if n := len(d.Regressions()); n != 0 {
		t.Errorf("self-comparison found %d regressions", n)
	}
	if len(d.Deltas) == 0 {
		t.Error("self-comparison produced no deltas")
	}
}

func TestWriteBenchDiffMarkdown(t *testing.T) {
	prev, next := diffFixture()
	d := CompareBenchReports(prev, next, 0.25)
	var sb strings.Builder
	if err := WriteBenchDiff(&sb, d, "BENCH_2.json", "BENCH_3.json"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "regression(s) beyond tolerance") {
		t.Errorf("summary missing warning header:\n%s", out)
	}
	if !strings.Contains(out, "op.Upload.ops_per_sec") {
		t.Errorf("summary missing regressed metric:\n%s", out)
	}
}

func TestReadBenchReportRoundTrip(t *testing.T) {
	prev, _ := diffFixture()
	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	if err := WriteBenchReport(path, prev); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.OpsPerSec != prev.OpsPerSec || len(got.Ops) != len(prev.Ops) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadBenchReportRejectsWrongSchema(t *testing.T) {
	rep := BenchReport{Schema: "other/1"}
	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	if err := WriteBenchReport(path, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReport(path); err == nil {
		t.Error("wrong schema accepted")
	}
}
