// Package metrics is the observability substrate of the reproduction: the
// instrumentation layer the paper's measurement methodology (§4–§6) implies
// but the seed lacked. It provides low-overhead, concurrency-safe primitives
// — atomic counters and gauges, lock-striped exponential-bucket histograms
// with quantile estimation — and a Registry that names them and exports
// consistent snapshots as JSON.
//
// Every tier of the Fig. 1 deployment records into one shared Registry:
// the gateway its placement decisions, the API servers per-operation latency
// and error counts, the RPC/DAL tier per-class service times, the metadata
// store per-shard lock hold times and cascade counters, the data store
// transfer volume, and the notification broker its fan-out. The benchmark
// harness (cmd/u1bench, bench_test.go) turns Registry snapshots into the
// BENCH_*.json perf trajectory that future optimisation PRs are judged
// against.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that can move both ways (live
// sessions, queue depths, objects held).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: exponential buckets with ratio 2^(1/8) (≈9.05%
// per bucket, so quantiles interpolated at the geometric bucket midpoint are
// accurate to ≈±4.5%), spanning bucketMin to bucketMin·2^(numBuckets/8).
// With bucketMin = 1e-9 the top bucket boundary is ≈2.4e9, covering both
// latencies in seconds (sub-nanosecond to decades) and transfer sizes in
// bytes up to ~2 GB; values outside land in the first/last bucket, still
// counted exactly in Count and Sum.
const (
	histStripes    = 8 // power of two
	bucketsPerOct  = 8
	numBuckets     = 488 // 61 octaves ≈ 18.4 decades above bucketMin
	bucketMin      = 1e-9
	bucketLogRatio = 0.08664339756999316 // ln(2)/8
)

// histStripe is one write target of the striped histogram. Concurrent
// writers spread across stripes so the hot sum word does not bounce between
// cores; cache-line padding keeps neighbouring stripes from false sharing.
// Counts live only in the buckets — Snapshot derives the total by summing
// them, so Observe pays no separate counter update.
type histStripe struct {
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	_       [7]uint64     // pad to a 64-byte cache line
	buckets [numBuckets]atomic.Uint64
}

// Histogram is a lock-striped, fixed-bucket latency/size histogram. Observe
// is wait-free apart from the CAS loop on the per-stripe sum; Snapshot folds
// the stripes into one consistent view.
type Histogram struct {
	stripes [histStripes]histStripe
	// minBits/maxBits hold float64 bits, seeded to ±Inf so plain CAS loops
	// keep the true extremes under any interleaving.
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= bucketMin {
		return 0
	}
	// Subtracting logs (rather than dividing first) keeps huge values from
	// overflowing to +Inf before the conversion.
	i := int((math.Log(v) - math.Log(bucketMin)) / bucketLogRatio)
	if i < 0 {
		return 0
	}
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketBounds returns the [lo, hi) boundaries of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	lo = bucketMin * math.Exp(float64(i)*bucketLogRatio)
	hi = lo * math.Exp(bucketLogRatio)
	return lo, hi
}

// stripeProbe spreads concurrent writers across stripes. Goroutine stacks
// live in distinct allocations, so the page number of a stack address is a
// cheap, stable per-goroutine probe — the LongAdder trick without runtime
// hooks. The probe value itself is never dereferenced.
func stripeProbe() uint64 {
	var probe byte
	return (uint64(uintptr(unsafe.Pointer(&probe))) >> 10) & (histStripes - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	st := &h.stripes[stripeProbe()]
	st.buckets[bucketOf(v)].Add(1)
	for {
		old := st.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if st.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	h.updateExtremes(v)
}

func (h *Histogram) updateExtremes(v float64) {
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a frozen view of a histogram with derived statistics.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`

	buckets []uint64
}

// Snapshot folds the stripes into one view and derives the quantiles. Under
// concurrent writes the snapshot is a consistent lower bound: every recorded
// observation appears in at most one snapshot-visible state, and bucket
// counts always sum to Count observations that fully landed.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.buckets = make([]uint64, numBuckets)
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b < numBuckets; b++ {
			s.buckets[b] += st.buckets[b].Load()
		}
		s.Sum += math.Float64frombits(st.sumBits.Load())
	}
	// Derive Count from the folded buckets so quantile ranks and bucket
	// totals agree even when writers race the fold.
	for _, n := range s.buckets {
		s.Count += n
	}
	if s.Count == 0 {
		return s
	}
	if min := math.Float64frombits(h.minBits.Load()); !math.IsInf(min, 1) {
		s.Min = min
	}
	if max := math.Float64frombits(h.maxBits.Load()); !math.IsInf(max, -1) {
		s.Max = max
	}
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 { return s.quantile(q) }

func (s HistogramSnapshot) quantile(q float64) float64 {
	if s.Count == 0 || s.buckets == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var acc float64
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		if acc+float64(n) > rank {
			lo, hi := bucketBounds(i)
			// Geometric midpoint: exact to within the ±4.5% half-width of
			// the log-spaced bucket, and clamped to the observed extremes so
			// tiny samples do not report beyond min/max.
			est := math.Sqrt(lo * hi)
			if est > s.Max {
				est = s.Max
			}
			if est < s.Min {
				est = s.Min
			}
			return est
		}
		acc += float64(n)
	}
	return s.Max
}

// Registry names and owns a process's metrics. Lookup is get-or-create and
// safe for concurrent use; hot paths should resolve their handles once at
// construction time and record through the returned pointers.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry hands out an unregistered but fully functional counter, so
// components can be instrumented unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use (nil-safe).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return NewHistogram()
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram()
	r.histograms[name] = h
	return h
}

// Snapshot captures every registered metric. The snapshot is internally
// consistent per metric; across metrics it is a point-in-time read without a
// global stop-the-world, which matches how the production trace was cut.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry state. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range histograms {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted names of all registered metrics, for diagnostics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
