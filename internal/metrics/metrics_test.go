package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Inc()
				g.Dec()
			}
			g.Add(3)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 3*goroutines {
		t.Errorf("gauge = %d, want %d", got, 3*goroutines)
	}
}

// TestHistogramConcurrent drives many goroutines into one histogram and
// verifies no observation is lost and aggregates are exact (run under -race
// in CI).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(1e-3 * (1 + r.Float64()))
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Min < 1e-3 || s.Max > 2e-3 {
		t.Errorf("extremes [%g, %g] outside observed range", s.Min, s.Max)
	}
	if s.Mean < 1.4e-3 || s.Mean > 1.6e-3 {
		t.Errorf("mean = %g, want ≈1.5e-3", s.Mean)
	}
	wantSum := s.Mean * float64(s.Count)
	if math.Abs(s.Sum-wantSum)/wantSum > 1e-9 {
		t.Errorf("sum = %g inconsistent with mean*count = %g", s.Sum, wantSum)
	}
}

// TestSnapshotConsistency cuts snapshots while writers are running: bucket
// totals must always equal the derived Count, counts must be monotone across
// snapshots, and quantiles must be ordered.
func TestSnapshotConsistency(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(r.ExpFloat64() * 1e-2)
				}
			}
		}(int64(g))
	}
	var prev uint64
	for i := 0; i < 50; i++ {
		s := h.Snapshot()
		var bucketTotal uint64
		for _, n := range s.buckets {
			bucketTotal += n
		}
		if bucketTotal != s.Count {
			t.Fatalf("snapshot %d: bucket total %d != count %d", i, bucketTotal, s.Count)
		}
		if s.Count < prev {
			t.Fatalf("snapshot %d: count went backwards (%d < %d)", i, s.Count, prev)
		}
		prev = s.Count
		if s.Count > 0 && !(s.P50 <= s.P95 && s.P95 <= s.P99) {
			t.Fatalf("snapshot %d: unordered quantiles p50=%g p95=%g p99=%g", i, s.P50, s.P95, s.P99)
		}
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count < prev {
		t.Errorf("final count %d below last live snapshot %d", final.Count, prev)
	}
}

// TestQuantileAccuracy checks the estimator against distributions with
// closed-form quantiles. Log-spaced buckets with a 2^(1/8) ratio bound the
// relative error near ±4.5%; assert within 10% to stay robust to sampling
// noise.
func TestQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 200000

	cases := []struct {
		name     string
		sample   func() float64
		quantile func(q float64) float64
	}{
		{
			name:     "uniform(1,2)",
			sample:   func() float64 { return 1 + r.Float64() },
			quantile: func(q float64) float64 { return 1 + q },
		},
		{
			name:     "exponential(rate=100)",
			sample:   func() float64 { return r.ExpFloat64() / 100 },
			quantile: func(q float64) float64 { return -math.Log(1-q) / 100 },
		},
		{
			name:   "lognormal(median=3ms,gsd=2)",
			sample: func() float64 { return math.Exp(math.Log(3e-3) + math.Log(2)*r.NormFloat64()) },
			quantile: func(q float64) float64 {
				// Φ⁻¹ via Moro's inversion is overkill; use known z-scores.
				z := map[float64]float64{0.5: 0, 0.95: 1.6449, 0.99: 2.3263}[q]
				return math.Exp(math.Log(3e-3) + math.Log(2)*z)
			},
		},
	}
	for _, tc := range cases {
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Observe(tc.sample())
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got, want := s.Quantile(q), tc.quantile(q)
			if relErr := math.Abs(got-want) / want; relErr > 0.10 {
				t.Errorf("%s: q%.0f = %g, want %g (rel err %.1f%%)", tc.name, q*100, got, want, 100*relErr)
			}
		}
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)     // below the first bucket boundary
	h.Observe(1e300) // beyond the last bucket
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	s := h.Snapshot()
	if s.Count != 2 {
		t.Errorf("count = %d, want 2 (NaN/Inf dropped)", s.Count)
	}
	if s.Min != 0 || s.Max != 1e300 {
		t.Errorf("extremes [%g, %g], want [0, 1e300]", s.Min, s.Max)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("api.op.Upload.count").Add(7)
	r.Counter("api.op.Upload.errors").Inc()
	r.Gauge("api.sessions.active").Set(3)
	h := r.Histogram("api.op.Upload.seconds")
	for i := 0; i < 100; i++ {
		h.Observe(0.010)
	}

	// Get-or-create must return the same instance.
	if r.Counter("api.op.Upload.count") != r.Counter("api.op.Upload.count") {
		t.Fatal("counter identity not stable")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["api.op.Upload.count"] != 7 {
		t.Errorf("counter = %d, want 7", snap.Counters["api.op.Upload.count"])
	}
	if snap.Gauges["api.sessions.active"] != 3 {
		t.Errorf("gauge = %d, want 3", snap.Gauges["api.sessions.active"])
	}
	hs := snap.Histograms["api.op.Upload.seconds"]
	if hs.Count != 100 {
		t.Errorf("histogram count = %d, want 100", hs.Count)
	}
	if hs.P50 < 0.009 || hs.P50 > 0.011 {
		t.Errorf("p50 = %g, want ≈0.010", hs.P50)
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("hist").Observe(1)
				r.Gauge("gauge").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("hist").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestBuildBenchReport(t *testing.T) {
	r := NewRegistry()
	up := r.Histogram(APIOpPrefix + "Upload.seconds")
	for i := 0; i < 1000; i++ {
		up.Observe(0.012)
	}
	r.Counter(APIOpPrefix + "Upload.count").Add(1000)
	r.Counter(APIOpPrefix + "Upload.errors").Add(25)
	r.Histogram(RPCClassPrefix + "read.seconds").Observe(0.003)
	r.Counter(ShardPrefix + "0.reads").Add(100)
	r.Counter(ShardPrefix + "0.writes").Add(100)
	r.Counter(ShardPrefix + "1.reads").Add(100)
	r.Counter(ShardPrefix + "1.writes").Add(100)

	rep := BuildBenchReport(r.Snapshot(), 2.0, 800, 10)
	st, ok := rep.Ops["Upload"]
	if !ok {
		t.Fatalf("Upload missing from report ops: %v", rep.SortedOpNames())
	}
	if st.Count != 1000 || st.Errors != 25 {
		t.Errorf("Upload count/errors = %d/%d, want 1000/25", st.Count, st.Errors)
	}
	if st.OpsPerSec != 500 {
		t.Errorf("ops/sec = %g, want 500", st.OpsPerSec)
	}
	if st.P50Ms < 11 || st.P50Ms > 13 {
		t.Errorf("p50 = %gms, want ≈12ms", st.P50Ms)
	}
	if _, ok := rep.RPCClasses["read"]; !ok {
		t.Error("rpc class read missing")
	}
	if len(rep.Shards.Reads) != 2 || rep.Shards.CV != 0 {
		t.Errorf("shard balance = %+v, want 2 perfectly balanced shards", rep.Shards)
	}

	// The report must round-trip as JSON (what CI archives).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema || back.TotalOps != 1000 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func BenchmarkCounterParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.004)
		}
	})
}
