package apiserver

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

// TestEveryOpHasRegisteredHandler pins the dispatch-table invariant: all of
// Table 2's operations — including the session lifecycle ops — resolve to a
// registered handler, so no op silently falls through to the bad-request
// default.
func TestEveryOpHasRegisteredHandler(t *testing.T) {
	f := newFixture(t)
	for _, op := range protocol.Ops() {
		if int(op) >= len(f.srv.handlers) || f.srv.handlers[op] == nil {
			t.Errorf("op %v has no registered handler", op)
		}
	}
	if len(f.srv.handlers) != len(protocol.Ops()) {
		t.Errorf("handler table has %d slots for %d ops", len(f.srv.handlers), len(protocol.Ops()))
	}
}

// TestUnknownOpTableDefault covers the table default: operations outside the
// registered vocabulary fail uniformly with StatusBadRequest, both just past
// the table edge and far outside it.
func TestUnknownOpTableDefault(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 31)
	for _, op := range []protocol.Op{protocol.Op(len(protocol.Ops())), protocol.Op(200), protocol.Op(255)} {
		resp, _ := f.srv.Handle(sess, &protocol.Request{ID: 7, Op: op}, t0)
		if resp.Status != protocol.StatusBadRequest {
			t.Errorf("op %d: status = %v, want bad request", op, resp.Status)
		}
		if resp.ID != 7 {
			t.Errorf("op %d: correlation id = %d, want 7", op, resp.ID)
		}
	}
}

// TestInterceptorOrderDeterministic asserts both that the configured chain
// matches the documented order and that construction is reproducible: two
// servers built from the same config report identical chains.
func TestInterceptorOrderDeterministic(t *testing.T) {
	want := []string{"proc-load", "metrics", "events", "status-map", "inject", "region", "durability", "notify", "session-guard", "admit", "cancel"}
	a, b := newFixture(t), newFixture(t)
	if got := a.srv.InterceptorOrder(); !reflect.DeepEqual(got, want) {
		t.Errorf("interceptor order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(a.srv.InterceptorOrder(), b.srv.InterceptorOrder()) {
		t.Error("two identically configured servers report different chains")
	}
}

// TestChainInvocationOrder drives a synthetic chain and checks the wrap
// semantics interceptors rely on: the first interceptor passed to chain is
// outermost — first on the way in, last on the way out.
func TestChainInvocationOrder(t *testing.T) {
	var trace []string
	mk := func(name string) Interceptor {
		return func(next Handler) Handler {
			return func(c *OpContext) (*protocol.Response, error) {
				trace = append(trace, "in:"+name)
				resp, err := next(c)
				trace = append(trace, "out:"+name)
				return resp, err
			}
		}
	}
	base := func(*OpContext) (*protocol.Response, error) {
		trace = append(trace, "handler")
		return &protocol.Response{Status: protocol.StatusOK}, nil
	}
	h := chain(base, mk("a"), mk("b"), mk("c"))
	if _, err := h(&OpContext{Req: &protocol.Request{}}); err != nil {
		t.Fatal(err)
	}
	want := []string{"in:a", "in:b", "in:c", "handler", "out:c", "out:b", "out:a"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("invocation order = %v, want %v", trace, want)
	}
}

// TestUniformErrorStatusMapping substitutes a failing stub for every
// registered op and checks that the status-map interceptor translates each
// sentinel error identically regardless of which operation raised it — the
// property the old per-arm StatusOf calls only upheld by convention.
func TestUniformErrorStatusMapping(t *testing.T) {
	sentinels := map[error]protocol.Status{
		protocol.ErrAuthFailed:  protocol.StatusAuthFailed,
		protocol.ErrNotFound:    protocol.StatusNotFound,
		protocol.ErrExists:      protocol.StatusExists,
		protocol.ErrPermission:  protocol.StatusPermission,
		protocol.ErrBadRequest:  protocol.StatusBadRequest,
		protocol.ErrUnavailable: protocol.StatusUnavailable,
		protocol.ErrConflict:    protocol.StatusConflict,
		protocol.ErrQuota:       protocol.StatusQuota,
		protocol.ErrCancelled:   protocol.StatusCancelled,
		protocol.ErrOverloaded:  protocol.StatusOverloaded,
	}
	f := newFixture(t)
	sess := f.session(t, 32)
	for err, want := range sentinels {
		err := err
		for _, op := range protocol.Ops() {
			f.srv.handlers[op] = func(*OpContext) (*protocol.Response, error) {
				return nil, err
			}
			resp, _ := f.srv.Handle(sess, &protocol.Request{ID: 42, Op: op}, t0)
			if resp.Status != want {
				t.Errorf("op %v, err %v: status = %v, want %v", op, err, resp.Status, want)
			}
			if resp.ID != 42 {
				t.Errorf("op %v: failure response lost correlation id", op)
			}
		}
	}
}

// TestHandleChargesCostUniformly checks the cost plumbing end to end: the
// duration Handle returns is the accumulated RPC cost, and the same total
// reaches the emitted trace event — no handler threads durations by hand
// anymore.
func TestHandleChargesCostUniformly(t *testing.T) {
	f := newFixture(t)
	var events []Event
	f.srv.AddObserver(func(e Event) { events = append(events, e) })
	sess := f.session(t, 33)

	resp, d := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
	if d <= 0 {
		t.Error("ListVolumes must charge its RPC service time")
	}
	last := events[len(events)-1]
	if last.Op != protocol.OpListVolumes || last.Duration != d {
		t.Errorf("event duration %v != handle duration %v", last.Duration, d)
	}
}

// TestAuthenticateViaHandleRejected pins the guard exception down to its
// one legitimate entry point: a raw Handle call cannot receive the created
// *Session, so admitting a sessionless Authenticate there would leak an
// uncloseable session and inflate the active-session gauge forever.
func TestAuthenticateViaHandleRejected(t *testing.T) {
	f := newFixture(t)
	token, _ := f.auth.Issue(30)
	resp, _ := f.srv.Handle(nil, &protocol.Request{Op: protocol.OpAuthenticate, Token: token}, t0)
	if resp.Status != protocol.StatusAuthFailed {
		t.Errorf("sessionless auth via Handle: status = %v, want auth failed", resp.Status)
	}
	if f.srv.SessionCount() != 0 {
		t.Errorf("sessionless auth via Handle leaked %d session(s)", f.srv.SessionCount())
	}
}

// TestAuthenticateOnLiveSessionRejected pins the protocol rule the table
// made reachable: re-authenticating an already authenticated connection is a
// bad request, not a second session.
func TestAuthenticateOnLiveSessionRejected(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 34)
	token, _ := f.auth.Issue(34)
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpAuthenticate, Token: token}, t0)
	if resp.Status != protocol.StatusBadRequest {
		t.Errorf("re-auth status = %v, want bad request", resp.Status)
	}
	if f.srv.SessionCount() != 1 {
		t.Errorf("re-auth changed session count to %d", f.srv.SessionCount())
	}
}

// TestCloseSessionThroughHandle exercises the close handler via plain
// dispatch (the table route), not just the CloseSession wrapper.
func TestCloseSessionThroughHandle(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 35)
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpCloseSession}, t0)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("close status = %v", resp.Status)
	}
	if f.srv.SessionCount() != 0 {
		t.Error("session survived CloseSession dispatch")
	}
}

// TestDynamicAPIObserverAttach hammers Handle from several goroutines while
// observers attach mid-traffic; run under -race this pins the copy-on-write
// observer list of the API event path.
func TestDynamicAPIObserverAttach(t *testing.T) {
	f := newFixture(t)
	const workers, per = 4, 150
	var wg sync.WaitGroup
	sessions := make([]*Session, workers)
	for w := range sessions {
		sessions[w] = f.session(t, protocol.UserID(40+w))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.srv.Handle(sess, &protocol.Request{Op: protocol.OpPing}, t0)
			}
		}(sessions[w])
	}
	var mu sync.Mutex
	var seen int
	for i := 0; i < 8; i++ {
		f.srv.AddObserver(func(Event) { mu.Lock(); seen++; mu.Unlock() })
	}
	wg.Wait()
	f.srv.Handle(sessions[0], &protocol.Request{Op: protocol.OpPing}, t0)
	mu.Lock()
	defer mu.Unlock()
	if seen == 0 {
		t.Error("observers attached mid-traffic saw no events")
	}
}

// TestSuppressedEventsStillRecordMetrics pins the flag split: PutPart/GetPart
// suppress their trace events but still count in the per-op metrics — the
// event and metrics interceptors honor different opt-outs, so merging the
// two flags would silently drop part ops from the bench report.
func TestSuppressedEventsStillRecordMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	f := &fixture{
		store:  metadata.New(metadata.Config{Shards: 4}),
		blob:   blob.New(blob.Config{}),
		auth:   auth.New(auth.Config{Seed: 1}),
		broker: notify.NewBroker(),
	}
	f.srv = New(Config{Name: "m", Procs: 2}, Deps{
		RPC:      rpc.NewServer(f.store, rpc.Config{Seed: 1, Metrics: reg}),
		Auth:     f.auth,
		Blob:     f.blob,
		Broker:   f.broker,
		Transfer: blob.DefaultTransferModel(),
		Metrics:  reg,
	})
	var events []Event
	f.srv.AddObserver(func(e Event) { events = append(events, e) })
	sess := f.session(t, 36)

	before := reg.Counter("api.op.GetPart.count").Value()
	f.srv.Handle(sess, &protocol.Request{Op: protocol.OpGetPart, Node: 1, Part: 0}, t0)
	for _, e := range events {
		if e.Op == protocol.OpGetPart {
			t.Error("GetPart must not emit an API event")
		}
	}
	if got := reg.Counter("api.op.GetPart.count").Value(); got != before+1 {
		t.Errorf("api.op.GetPart.count = %d, want %d: suppressed events must still record metrics", got, before+1)
	}
}

// TestCancelDropsAbandonedWork pins the cancel interceptor's contract: a
// request whose abort probe reports a dead client is dropped with
// StatusCancelled before the handler runs, charges no RPC cost, and keeps
// its correlation ID.
func TestCancelDropsAbandonedWork(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 60)
	var ran bool
	f.srv.handlers[protocol.OpListVolumes] = func(*OpContext) (*protocol.Response, error) {
		ran = true
		return &protocol.Response{Status: protocol.StatusOK}, nil
	}
	resp, d := f.srv.HandleWithCancel(sess, &protocol.Request{ID: 9, Op: protocol.OpListVolumes}, t0,
		time.Time{}, func() bool { return true })
	if resp.Status != protocol.StatusCancelled {
		t.Errorf("status = %v, want cancelled", resp.Status)
	}
	if resp.ID != 9 {
		t.Errorf("cancelled response lost correlation id: %d", resp.ID)
	}
	if ran {
		t.Error("handler ran for an abandoned request")
	}
	if d != 0 {
		t.Errorf("cancelled request charged cost %v", d)
	}
}

// TestCancelDeadlineExceeded covers the deadline leg: a request stamped
// later than its deadline never reaches the handler.
func TestCancelDeadlineExceeded(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 61)
	var ran bool
	f.srv.handlers[protocol.OpListVolumes] = func(*OpContext) (*protocol.Response, error) {
		ran = true
		return &protocol.Response{Status: protocol.StatusOK}, nil
	}
	resp, _ := f.srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0,
		t0.Add(-time.Second), nil)
	if resp.Status != protocol.StatusCancelled || ran {
		t.Errorf("deadline-expired request: status = %v, handler ran = %v", resp.Status, ran)
	}
	// A live deadline admits the request.
	resp, _ = f.srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0,
		t0.Add(time.Hour), func() bool { return false })
	if resp.Status != protocol.StatusOK || !ran {
		t.Errorf("within-deadline request: status = %v, handler ran = %v", resp.Status, ran)
	}
}

// TestCancelledRequestStillObservable ensures dropped work is not invisible:
// the cancel happens inside the metrics and events interceptors, so the
// trace event and the per-op error counter both record the StatusCancelled
// outcome.
func TestCancelledRequestStillObservable(t *testing.T) {
	reg := metrics.NewRegistry()
	store := metadata.New(metadata.Config{Shards: 4})
	authSvc := auth.New(auth.Config{Seed: 1})
	srv := New(Config{Name: "m", Procs: 2}, Deps{
		RPC:      rpc.NewServer(store, rpc.Config{Seed: 1, Metrics: reg}),
		Auth:     authSvc,
		Blob:     blob.New(blob.Config{}),
		Broker:   notify.NewBroker(),
		Transfer: blob.DefaultTransferModel(),
		Metrics:  reg,
	})
	token, err := authSvc.Issue(62)
	if err != nil {
		t.Fatal(err)
	}
	sess, resp, _ := srv.OpenSession(token, nil, t0)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("open session: %v", resp.Status)
	}
	var events []Event
	srv.AddObserver(func(e Event) { events = append(events, e) })
	srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0,
		time.Time{}, func() bool { return true })
	if len(events) == 0 {
		t.Fatal("cancelled request emitted no trace event")
	}
	last := events[len(events)-1]
	if last.Status != protocol.StatusCancelled {
		t.Errorf("event status = %v, want cancelled", last.Status)
	}
	snap := reg.Snapshot()
	if snap.Counters["api.op.ListVolumes.errors"] == 0 {
		t.Error("cancelled request not counted as a ListVolumes error")
	}
}

// TestCancelViaCancelingInterceptor drives cancellation the way an
// interceptor-shaped client would: a probe that flips to aborted only after
// the first request, proving the decision is re-evaluated per dispatch.
func TestCancelViaCancelingInterceptor(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 63)
	var calls int
	probe := func() bool {
		calls++
		return calls > 1 // first request admitted, second aborted
	}
	resp, _ := f.srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0, time.Time{}, probe)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("first request: status = %v", resp.Status)
	}
	resp, _ = f.srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0, time.Time{}, probe)
	if resp.Status != protocol.StatusCancelled {
		t.Fatalf("second request: status = %v, want cancelled", resp.Status)
	}
}
