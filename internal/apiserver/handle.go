package apiserver

import (
	"sync/atomic"
	"time"

	"u1/internal/blob"
	"u1/internal/protocol"
)

// Handle dispatches one authenticated request. It returns the response and
// the simulated service time of the operation (the sum of its RPC service
// times plus data-store transfer estimates for data operations). The caller
// supplies now — wall clock on the TCP path, virtual clock in the simulator.
func (s *Server) Handle(sess *Session, req *protocol.Request, now time.Time) (*protocol.Response, time.Duration) {
	if sess == nil {
		return fail(req.ID, errSessionRequired), 0
	}
	atomic.AddUint64(&s.procOps[sess.Proc], 1)

	var (
		resp *protocol.Response
		dur  time.Duration
		ev   = Event{
			Server:  s.cfg.Name,
			Proc:    sess.Proc,
			Session: sess.ID,
			User:    sess.User,
			Op:      req.Op,
			Volume:  req.Volume,
			Node:    req.Node,
			Start:   now,
		}
	)

	switch req.Op {
	case protocol.OpListVolumes:
		vols, d, err := s.deps.RPC.ListVolumes(sess.User, now)
		dur, resp = d, &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Volumes: vols}

	case protocol.OpListShares:
		shares, d, err := s.deps.RPC.ListShares(sess.User, now)
		dur, resp = d, &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Shares: shares}

	case protocol.OpMakeFile, protocol.OpMakeDir:
		var node protocol.NodeInfo
		var d time.Duration
		var err error
		if req.Op == protocol.OpMakeFile {
			node, d, err = s.deps.RPC.MakeFile(sess.User, req.Volume, req.Parent, req.Name, now)
		} else {
			node, d, err = s.deps.RPC.MakeDir(sess.User, req.Volume, req.Parent, req.Name, now)
		}
		dur = d
		ev.Node, ev.Ext = node.ID, extOf(req.Name)
		if err == nil {
			s.notifyVolume(sess, req.Volume, node.Generation)
		}
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Node: node, Generation: node.Generation}

	case protocol.OpUnlink:
		removed, gen, freed, d, err := s.deps.RPC.Unlink(sess.User, req.Volume, req.Node, now)
		dur = d
		if err == nil {
			// Delete orphaned blobs from the data store (§3.2: "the API
			// server finishes by deleting the file also from Amazon S3").
			for _, h := range freed {
				s.deps.Blob.DeleteObject(h.Hex())
			}
			s.notifyVolume(sess, req.Volume, gen)
			if len(removed) > 0 {
				ev.Size = removed[0].Size
				ev.Ext = extOf(removed[0].Name)
				ev.Hash = removed[0].Hash
				ev.IsDir = removed[0].Kind == protocol.KindDir
			}
		}
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Generation: gen}

	case protocol.OpMove:
		node, d, err := s.deps.RPC.Move(sess.User, req.Volume, req.Node, req.Parent, req.Name, now)
		dur = d
		if err == nil {
			s.notifyVolume(sess, req.Volume, node.Generation)
		}
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Node: node, Generation: node.Generation}

	case protocol.OpCreateUDF:
		vol, d, err := s.deps.RPC.CreateUDF(sess.User, req.Name, now)
		dur = d
		ev.Volume = vol.ID
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Volumes: []protocol.VolumeInfo{vol}}

	case protocol.OpDeleteVolume:
		removed, freed, d, err := s.deps.RPC.DeleteVolume(sess.User, req.Volume, now)
		dur = d
		if err == nil {
			for _, h := range freed {
				s.deps.Blob.DeleteObject(h.Hex())
			}
			ev.Size = uint64(len(removed))
		}
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err)}

	case protocol.OpGetDelta:
		resp, dur = s.handleGetDelta(sess, req, now)

	case protocol.OpCreateShare:
		share, d, err := s.deps.RPC.CreateShare(sess.User, req.Volume, req.ToUser, req.Name, req.ReadOnly, now)
		dur = d
		if err == nil {
			s.notifyShare(sess, protocol.PushShareOffered, share)
		}
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Shares: []protocol.ShareInfo{share}}

	case protocol.OpAcceptShare:
		share, d, err := s.deps.RPC.AcceptShare(sess.User, req.Share, now)
		dur = d
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOf(err), Shares: []protocol.ShareInfo{share}}

	case protocol.OpPutContent:
		resp, dur, ev = s.handlePutContent(sess, req, now, ev)

	case protocol.OpPutPart:
		resp, dur, ev = s.handlePutPart(sess, req, now, ev)

	case protocol.OpGetContent:
		resp, dur, ev = s.handleGetContent(sess, req, now, ev)

	case protocol.OpGetPart:
		resp, dur = s.handleGetPart(sess, req)

	case protocol.OpPing:
		resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOK}

	default:
		resp = fail(req.ID, protocol.ErrBadRequest)
	}

	ev.Duration = dur
	ev.Status = resp.Status
	s.record(req.Op, dur, resp.Status)
	// The trace records transfers at upload/download granularity, as the
	// paper's dataset does: a PutContent that opens an upload job reports
	// when its last part lands (handlePutPart emits that event), and part
	// streaming never reports as separate API events — the per-part load
	// still shows up as RPC spans.
	suppressed := req.Op == protocol.OpPutPart || req.Op == protocol.OpGetPart ||
		(req.Op == protocol.OpPutContent && resp.Status == protocol.StatusOK && !resp.Reused)
	if !suppressed {
		s.emit(ev)
	}
	return resp, dur
}

// handleGetDelta serves synchronization deltas, transparently falling back to
// the cascade get_from_scratch read when the client's generation fell behind
// the delta log (the RescanFromScratch flow of Fig. 8).
func (s *Server) handleGetDelta(sess *Session, req *protocol.Request, now time.Time) (*protocol.Response, time.Duration) {
	deltas, gen, d, err := s.deps.RPC.GetDelta(sess.User, req.Volume, req.FromGen, now)
	if err == nil {
		return &protocol.Response{ID: req.ID, Status: protocol.StatusOK, Deltas: deltas, Generation: gen}, d
	}
	if !isTruncatedDelta(err) {
		return fail(req.ID, err), d
	}
	nodes, gen, d2, err := s.deps.RPC.GetFromScratch(sess.User, req.Volume, now)
	d += d2
	if err != nil {
		return fail(req.ID, err), d
	}
	full := make([]protocol.DeltaEntry, len(nodes))
	for i, n := range nodes {
		full[i] = protocol.DeltaEntry{Node: n}
	}
	return &protocol.Response{ID: req.ID, Status: protocol.StatusOK, Deltas: full, Generation: gen, Rescan: true}, d
}

// handlePutContent starts an upload (Fig. 17). The client has already sent
// the SHA-1; the server first probes for reusable content (cross-user dedup,
// §3.3). On a hit the file is linked without any transfer. Otherwise an
// uploadjob is created; large contents additionally open a multipart upload
// at the data store.
func (s *Server) handlePutContent(sess *Session, req *protocol.Request, now time.Time, ev Event) (*protocol.Response, time.Duration, Event) {
	ev.Hash, ev.Size, ev.Ext = req.Hash, req.Size, extOf(req.Name)

	_, exists, dur, err := s.deps.RPC.GetReusableContent(sess.User, req.Hash, now)
	if err != nil {
		return fail(req.ID, err), dur, ev
	}
	if exists {
		node, _, wasUpdate, d, err := s.deps.RPC.MakeContent(sess.User, req.Volume, req.Node, req.Hash, req.Size, now)
		dur += d
		if err != nil {
			return fail(req.ID, err), dur, ev
		}
		ev.IsUpdate = wasUpdate
		ev.Wire = 0 // dedup hit: no bytes cross the wire
		s.notifyVolume(sess, req.Volume, node.Generation)
		return &protocol.Response{
			ID: req.ID, Status: protocol.StatusOK,
			Reused: true, Node: node, Generation: node.Generation,
		}, dur, ev
	}

	job, d, err := s.deps.RPC.MakeUploadJob(sess.User, req.Volume, req.Node, req.Hash, req.Size, now)
	dur += d
	if err != nil {
		return fail(req.ID, err), dur, ev
	}
	up := &pendingUpload{
		job:       job,
		session:   sess.ID,
		ext:       extOf(req.Name),
		plainSize: req.Size,
		wire:      req.CompressedSize,
	}
	if up.wire == 0 || up.wire > req.Size {
		up.wire = req.Size
	}
	if req.Size > blob.PartSize {
		up.multipart = true
		up.mpID = s.deps.Blob.CreateMultipartUpload(req.Hash.Hex(), now)
		d, err := s.deps.RPC.SetUploadJobMultipartID(sess.User, job.ID, up.mpID, now)
		dur += d
		if err != nil {
			return fail(req.ID, err), dur, ev
		}
	}
	s.uploadsMu.Lock()
	s.uploads[job.ID] = up
	s.uploadsMu.Unlock()
	return &protocol.Response{ID: req.ID, Status: protocol.StatusOK, Upload: job.ID}, dur, ev
}

// handlePutPart streams one part of an upload. The final part commits the
// content: the blob is completed at the data store, the metadata entry is
// written (dal.make_content), the uploadjob is garbage-collected
// (dal.delete_uploadjob) and watchers are notified.
func (s *Server) handlePutPart(sess *Session, req *protocol.Request, now time.Time, ev Event) (*protocol.Response, time.Duration, Event) {
	s.uploadsMu.Lock()
	up, ok := s.uploads[req.Upload]
	s.uploadsMu.Unlock()
	if !ok || up.session != sess.ID {
		return fail(req.ID, protocol.ErrNotFound), 0, ev
	}

	partBytes := uint64(len(req.Data))
	if partBytes == 0 {
		partBytes = req.Size // metered mode: size only
	}

	var dur time.Duration
	if up.multipart {
		partNum := int(req.Part) + 1
		var err error
		if s.cfg.InlineData && req.Data != nil {
			err = s.deps.Blob.UploadPart(up.mpID, partNum, req.Data)
		} else {
			err = s.deps.Blob.UploadPartSized(up.mpID, partNum, partBytes)
		}
		if err != nil {
			return fail(req.ID, protocol.ErrBadRequest), dur, ev
		}
	} else if s.cfg.InlineData && req.Data != nil {
		up.buf = append(up.buf, req.Data...)
	}
	up.received += partBytes

	_, d, err := s.deps.RPC.AddPartToUploadJob(sess.User, req.Upload, partBytes, now)
	dur += d
	if err != nil {
		return fail(req.ID, err), dur, ev
	}
	// The S3 leg of the transfer dominates the part's service time.
	dur += s.deps.Transfer.Time(partBytes)

	if !req.Final {
		return &protocol.Response{ID: req.ID, Status: protocol.StatusOK}, dur, ev
	}

	// Final part: commit.
	if up.multipart {
		if err := s.deps.Blob.CompleteMultipartUpload(up.mpID); err != nil {
			return fail(req.ID, protocol.ErrUnavailable), dur, ev
		}
	} else {
		key := up.job.Hash.Hex()
		if s.cfg.InlineData && up.buf != nil {
			s.deps.Blob.PutObject(key, up.buf)
		} else {
			s.deps.Blob.PutObjectSized(key, up.plainSize)
		}
	}
	node, _, wasUpdate, d2, err := s.deps.RPC.MakeContent(sess.User, up.job.Volume, up.job.Node, up.job.Hash, up.plainSize, now)
	dur += d2
	if err != nil {
		return fail(req.ID, err), dur, ev
	}
	d3, _ := s.deps.RPC.DeleteUploadJob(sess.User, req.Upload, now)
	dur += d3
	s.uploadsMu.Lock()
	delete(s.uploads, req.Upload)
	s.uploadsMu.Unlock()

	s.notifyVolume(sess, up.job.Volume, node.Generation)

	// Emit the completed-upload event carrying the whole transfer.
	s.emit(Event{
		Server:   s.cfg.Name,
		Proc:     sess.Proc,
		Session:  sess.ID,
		User:     sess.User,
		Op:       protocol.OpPutContent,
		Volume:   up.job.Volume,
		Node:     up.job.Node,
		Hash:     up.job.Hash,
		Size:     up.plainSize,
		Wire:     up.wire,
		Ext:      up.ext,
		Start:    now,
		Duration: dur,
		Status:   protocol.StatusOK,
		IsUpdate: wasUpdate,
	})
	// The PutPart event itself is suppressed: the trace records transfers
	// at upload granularity, as the paper's dataset does.
	ev.Op = protocol.OpPutPart
	ev.Status = protocol.StatusOK
	return &protocol.Response{
		ID: req.ID, Status: protocol.StatusOK,
		Node: node, Generation: node.Generation,
	}, dur, ev
}

// handleGetContent serves a download: get_node for the metadata, then the
// data-store read. Small contents return inline; larger ones are staged and
// fetched with GetPart.
func (s *Server) handleGetContent(sess *Session, req *protocol.Request, now time.Time, ev Event) (*protocol.Response, time.Duration, Event) {
	node, dur, err := s.deps.RPC.GetNode(sess.User, req.Volume, req.Node, now)
	if err != nil {
		return fail(req.ID, err), dur, ev
	}
	if node.Hash.IsZero() {
		return fail(req.ID, protocol.ErrNotFound), dur, ev
	}
	ev.Hash, ev.Size, ev.Wire, ev.Ext = node.Hash, node.Size, node.Size, extOf(node.Name)
	dur += s.deps.Transfer.Time(node.Size)

	resp := &protocol.Response{
		ID: req.ID, Status: protocol.StatusOK,
		Node: node, Hash: node.Hash, Size: node.Size,
	}
	if s.cfg.InlineData {
		data, err := s.deps.Blob.GetObject(node.Hash.Hex())
		if err != nil {
			return fail(req.ID, protocol.ErrUnavailable), dur, ev
		}
		if len(data) <= blob.PartSize {
			resp.Data = data
		} else {
			resp.Parts = uint32((len(data) + blob.PartSize - 1) / blob.PartSize)
			sess.mu.Lock()
			sess.downloads[node.ID] = data
			sess.mu.Unlock()
		}
	} else {
		// Metered mode: account the data-store read without materializing.
		if _, err := s.deps.Blob.HeadObject(node.Hash.Hex()); err != nil {
			return fail(req.ID, protocol.ErrUnavailable), dur, ev
		}
		if node.Size > blob.PartSize {
			resp.Parts = uint32((node.Size + blob.PartSize - 1) / blob.PartSize)
		}
	}
	return resp, dur, ev
}

// handleGetPart serves one staged part of a large download (TCP mode).
func (s *Server) handleGetPart(sess *Session, req *protocol.Request) (*protocol.Response, time.Duration) {
	sess.mu.Lock()
	data, ok := sess.downloads[req.Node]
	sess.mu.Unlock()
	if !ok {
		// Metered mode has nothing staged: acknowledge the part so clients
		// can pace themselves identically in both modes.
		return &protocol.Response{ID: req.ID, Status: protocol.StatusOK}, 0
	}
	lo := int(req.Part) * blob.PartSize
	if lo >= len(data) {
		return fail(req.ID, protocol.ErrBadRequest), 0
	}
	hi := lo + blob.PartSize
	if hi > len(data) {
		hi = len(data)
	}
	final := hi == len(data)
	if final {
		sess.mu.Lock()
		delete(sess.downloads, req.Node)
		sess.mu.Unlock()
	}
	return &protocol.Response{ID: req.ID, Status: protocol.StatusOK, Data: data[lo:hi]}, 0
}
