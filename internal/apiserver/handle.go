package apiserver

import (
	"fmt"
	"sync/atomic"
	"time"

	"u1/internal/blob"
	"u1/internal/protocol"
)

// Handle dispatches one authenticated request through the pipeline. It
// returns the response and the simulated service time of the operation (the
// accumulated RPC service times plus data-store transfer estimates for data
// operations). The caller supplies now — wall clock on the TCP path, virtual
// clock in the simulator.
func (s *Server) Handle(sess *Session, req *protocol.Request, now time.Time) (*protocol.Response, time.Duration) {
	return s.HandleWithCancel(sess, req, now, time.Time{}, nil)
}

// HandleWithCancel is Handle with cancellation: a non-zero deadline already
// in the past, or an aborted probe returning true, makes the cancel
// interceptor drop the request with StatusCancelled before the handler runs
// — the TCP harness uses the probe to stop doing work for disconnected
// clients mid-pipeline.
func (s *Server) HandleWithCancel(sess *Session, req *protocol.Request, now time.Time, deadline time.Time, aborted func() bool) (*protocol.Response, time.Duration) {
	c := s.newOpContext(sess, req, now)
	c.Deadline = deadline
	c.Aborted = aborted
	resp := s.dispatch(c)
	d := c.Cost.Total()
	releaseOpContext(c)
	return resp, d
}

// registerHandlers fills the per-op dispatch table. Every protocol.Op has
// exactly one registered handler; requests whose op falls outside the table
// fail with the ErrBadRequest default in invoke.
func (s *Server) registerHandlers() {
	s.handlers = make([]Handler, len(protocol.Ops()))
	register := func(op protocol.Op, h Handler) { s.handlers[op] = h }

	register(protocol.OpAuthenticate, s.opAuthenticate)
	register(protocol.OpListVolumes, s.opListVolumes)
	register(protocol.OpListShares, s.opListShares)
	register(protocol.OpPutContent, s.opPutContent)
	register(protocol.OpGetContent, s.opGetContent)
	register(protocol.OpMakeFile, s.opMakeNode)
	register(protocol.OpMakeDir, s.opMakeNode)
	register(protocol.OpUnlink, s.opUnlink)
	register(protocol.OpMove, s.opMove)
	register(protocol.OpCreateUDF, s.opCreateUDF)
	register(protocol.OpDeleteVolume, s.opDeleteVolume)
	register(protocol.OpGetDelta, s.opGetDelta)
	register(protocol.OpCreateShare, s.opCreateShare)
	register(protocol.OpAcceptShare, s.opAcceptShare)
	register(protocol.OpPutPart, s.opPutPart)
	register(protocol.OpGetPart, s.opGetPart)
	register(protocol.OpPing, s.opPing)
	register(protocol.OpCloseSession, s.opCloseSession)
}

// --- File-system management operations (Table 2) ---

func (s *Server) opListVolumes(c *OpContext) (*protocol.Response, error) {
	vols, err := s.deps.RPC.ListVolumes(c.User, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	return &protocol.Response{Status: protocol.StatusOK, Volumes: vols}, nil
}

func (s *Server) opListShares(c *OpContext) (*protocol.Response, error) {
	shares, err := s.deps.RPC.ListShares(c.User, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	return &protocol.Response{Status: protocol.StatusOK, Shares: shares}, nil
}

// opMakeNode serves both MakeFile and MakeDir: the two differ only in the
// DAL RPC they issue.
func (s *Server) opMakeNode(c *OpContext) (*protocol.Response, error) {
	var node protocol.NodeInfo
	var err error
	if c.Req.Op == protocol.OpMakeFile {
		node, err = s.deps.RPC.MakeFile(c.User, c.Req.Volume, c.Req.Parent, c.Req.Name, c.Now, &c.Cost)
	} else {
		node, err = s.deps.RPC.MakeDir(c.User, c.Req.Volume, c.Req.Parent, c.Req.Name, c.Now, &c.Cost)
	}
	c.Event.Node, c.Event.Ext = node.ID, extOf(c.Req.Name)
	if err != nil {
		return nil, err
	}
	c.NotifyVolume(c.Req.Volume, node.Generation)
	return &protocol.Response{Status: protocol.StatusOK, Node: node, Generation: node.Generation}, nil
}

func (s *Server) opUnlink(c *OpContext) (*protocol.Response, error) {
	removed, gen, freed, err := s.deps.RPC.Unlink(c.User, c.Req.Volume, c.Req.Node, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	// Delete orphaned blobs from the data store (§3.2: "the API server
	// finishes by deleting the file also from Amazon S3").
	for _, h := range freed {
		s.deps.Blob.DeleteObject(h.Hex())
	}
	c.NotifyVolume(c.Req.Volume, gen)
	if len(removed) > 0 {
		c.Event.Size = removed[0].Size
		c.Event.Ext = extOf(removed[0].Name)
		c.Event.Hash = removed[0].Hash
		c.Event.IsDir = removed[0].Kind == protocol.KindDir
	}
	return &protocol.Response{Status: protocol.StatusOK, Generation: gen}, nil
}

func (s *Server) opMove(c *OpContext) (*protocol.Response, error) {
	node, err := s.deps.RPC.Move(c.User, c.Req.Volume, c.Req.Node, c.Req.Parent, c.Req.Name, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	c.NotifyVolume(c.Req.Volume, node.Generation)
	return &protocol.Response{Status: protocol.StatusOK, Node: node, Generation: node.Generation}, nil
}

func (s *Server) opCreateUDF(c *OpContext) (*protocol.Response, error) {
	vol, err := s.deps.RPC.CreateUDF(c.User, c.Req.Name, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	c.Event.Volume = vol.ID
	return &protocol.Response{Status: protocol.StatusOK, Volumes: []protocol.VolumeInfo{vol}}, nil
}

func (s *Server) opDeleteVolume(c *OpContext) (*protocol.Response, error) {
	removed, freed, err := s.deps.RPC.DeleteVolume(c.User, c.Req.Volume, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	for _, h := range freed {
		s.deps.Blob.DeleteObject(h.Hex())
	}
	c.Event.Size = uint64(len(removed))
	return &protocol.Response{Status: protocol.StatusOK}, nil
}

// opGetDelta serves synchronization deltas, transparently falling back to
// the cascade get_from_scratch read when the client's generation fell behind
// the delta log (the RescanFromScratch flow of Fig. 8).
func (s *Server) opGetDelta(c *OpContext) (*protocol.Response, error) {
	deltas, gen, err := s.deps.RPC.GetDelta(c.User, c.Req.Volume, c.Req.FromGen, c.Now, &c.Cost)
	if err == nil {
		return &protocol.Response{Status: protocol.StatusOK, Deltas: deltas, Generation: gen}, nil
	}
	if !isTruncatedDelta(err) {
		return nil, err
	}
	nodes, gen, err := s.deps.RPC.GetFromScratch(c.User, c.Req.Volume, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	full := make([]protocol.DeltaEntry, len(nodes))
	for i, n := range nodes {
		full[i] = protocol.DeltaEntry{Node: n}
	}
	return &protocol.Response{Status: protocol.StatusOK, Deltas: full, Generation: gen, Rescan: true}, nil
}

func (s *Server) opCreateShare(c *OpContext) (*protocol.Response, error) {
	share, err := s.deps.RPC.CreateShare(c.User, c.Req.Volume, c.Req.ToUser, c.Req.Name, c.Req.ReadOnly, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	c.NotifyShare(protocol.PushShareOffered, share)
	return &protocol.Response{Status: protocol.StatusOK, Shares: []protocol.ShareInfo{share}}, nil
}

func (s *Server) opAcceptShare(c *OpContext) (*protocol.Response, error) {
	share, err := s.deps.RPC.AcceptShare(c.User, c.Req.Share, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	return &protocol.Response{Status: protocol.StatusOK, Shares: []protocol.ShareInfo{share}}, nil
}

func (s *Server) opPing(*OpContext) (*protocol.Response, error) {
	return &protocol.Response{Status: protocol.StatusOK}, nil
}

// --- Data operations (Fig. 17) ---

// opPutContent starts an upload. The client has already sent the SHA-1; the
// server first probes for reusable content (cross-user dedup, §3.3). On a
// hit the file is linked without any transfer. Otherwise an uploadjob is
// created; large contents additionally open a multipart upload at the data
// store.
func (s *Server) opPutContent(c *OpContext) (*protocol.Response, error) {
	req := c.Req
	c.Event.Hash, c.Event.Size, c.Event.Ext = req.Hash, req.Size, extOf(req.Name)

	_, exists, err := s.deps.RPC.GetReusableContent(c.User, req.Hash, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	if exists {
		node, _, wasUpdate, err := s.deps.RPC.MakeContent(c.User, req.Volume, req.Node, req.Hash, req.Size, c.Now, &c.Cost)
		if err != nil {
			return nil, err
		}
		c.Event.IsUpdate = wasUpdate
		c.Event.Wire = 0 // dedup hit: no bytes cross the wire
		c.NotifyVolume(req.Volume, node.Generation)
		return &protocol.Response{
			Status: protocol.StatusOK,
			Reused: true, Node: node, Generation: node.Generation,
		}, nil
	}

	job, err := s.deps.RPC.MakeUploadJob(c.User, req.Volume, req.Node, req.Hash, req.Size, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	up := &pendingUpload{
		job:       job,
		session:   c.Session.ID,
		ext:       extOf(req.Name),
		plainSize: req.Size,
		wire:      req.CompressedSize,
	}
	if up.wire == 0 || up.wire > req.Size {
		up.wire = req.Size
	}
	if req.Size > blob.PartSize {
		up.multipart = true
		up.mpID = s.deps.Blob.CreateMultipartUpload(req.Hash.Hex(), c.Now)
		if err := s.deps.RPC.SetUploadJobMultipartID(c.User, job.ID, up.mpID, c.Now, &c.Cost); err != nil {
			return nil, err
		}
	}
	s.uploadsMu.Lock()
	s.uploads[job.ID] = up
	s.uploadsMu.Unlock()
	// The trace records transfers at upload granularity: this request only
	// opened the job, so the completed-upload event is emitted by the final
	// PutPart instead.
	c.suppressEvent = true
	return &protocol.Response{Status: protocol.StatusOK, Upload: job.ID}, nil
}

// opPutPart streams one part of an upload. The final part commits the
// content: the blob is completed at the data store, the metadata entry is
// written (dal.make_content), the uploadjob is garbage-collected
// (dal.delete_uploadjob) and watchers are notified.
func (s *Server) opPutPart(c *OpContext) (*protocol.Response, error) {
	// Part streaming never reports as a separate API event — the per-part
	// load still shows up as RPC spans.
	c.suppressEvent = true
	req := c.Req

	s.uploadsMu.Lock()
	up, ok := s.uploads[req.Upload]
	s.uploadsMu.Unlock()
	if !ok || up.session != c.Session.ID {
		return nil, protocol.ErrNotFound
	}

	partBytes := uint64(len(req.Data))
	if partBytes == 0 {
		partBytes = req.Size // metered mode: size only
	}

	if up.multipart {
		partNum := int(req.Part) + 1
		var err error
		if s.cfg.InlineData && req.Data != nil {
			err = s.deps.Blob.UploadPart(up.mpID, partNum, req.Data)
		} else {
			err = s.deps.Blob.UploadPartSized(up.mpID, partNum, partBytes)
		}
		if err != nil {
			return nil, protocol.ErrBadRequest
		}
	} else if s.cfg.InlineData && req.Data != nil {
		up.buf = append(up.buf, req.Data...)
	}
	up.received += partBytes

	if _, err := s.deps.RPC.AddPartToUploadJob(c.User, req.Upload, partBytes, c.Now, &c.Cost); err != nil {
		return nil, err
	}
	// The S3 leg of the transfer dominates the part's service time.
	c.Cost.Add(s.deps.Transfer.Time(partBytes))

	if !req.Final {
		return &protocol.Response{Status: protocol.StatusOK}, nil
	}

	// Final part: commit.
	if up.multipart {
		if err := s.deps.Blob.CompleteMultipartUpload(up.mpID); err != nil {
			return nil, protocol.ErrUnavailable
		}
	} else {
		key := up.job.Hash.Hex()
		if s.cfg.InlineData && up.buf != nil {
			s.deps.Blob.PutObject(key, up.buf)
		} else {
			s.deps.Blob.PutObjectSized(key, up.plainSize)
		}
	}
	node, _, wasUpdate, err := s.deps.RPC.MakeContent(c.User, up.job.Volume, up.job.Node, up.job.Hash, up.plainSize, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	s.deps.RPC.DeleteUploadJob(c.User, req.Upload, c.Now, &c.Cost) //nolint:errcheck
	s.uploadsMu.Lock()
	delete(s.uploads, req.Upload)
	s.uploadsMu.Unlock()

	c.NotifyVolume(up.job.Volume, node.Generation)

	// Emit the completed-upload event carrying the whole transfer, in place
	// of the suppressed per-part record.
	s.emit(Event{
		Server:   s.cfg.Name,
		Proc:     c.Session.Proc,
		Session:  c.Session.ID,
		User:     c.User,
		Op:       protocol.OpPutContent,
		Volume:   up.job.Volume,
		Node:     up.job.Node,
		Hash:     up.job.Hash,
		Size:     up.plainSize,
		Wire:     up.wire,
		Ext:      up.ext,
		Start:    c.Now,
		Duration: c.Cost.Total(),
		Status:   protocol.StatusOK,
		IsUpdate: wasUpdate,
	})
	return &protocol.Response{
		Status: protocol.StatusOK,
		Node:   node, Generation: node.Generation,
	}, nil
}

// opGetContent serves a download: get_node for the metadata, then the
// data-store read. Small contents return inline; larger ones are staged and
// fetched with GetPart.
func (s *Server) opGetContent(c *OpContext) (*protocol.Response, error) {
	req := c.Req
	node, err := s.deps.RPC.GetNode(c.User, req.Volume, req.Node, c.Now, &c.Cost)
	if err != nil {
		return nil, err
	}
	if node.Hash.IsZero() {
		return nil, protocol.ErrNotFound
	}
	c.Event.Hash, c.Event.Size, c.Event.Wire, c.Event.Ext = node.Hash, node.Size, node.Size, extOf(node.Name)
	c.Cost.Add(s.deps.Transfer.Time(node.Size))

	resp := &protocol.Response{
		Status: protocol.StatusOK,
		Node:   node, Hash: node.Hash, Size: node.Size,
	}
	if s.cfg.InlineData {
		data, err := s.deps.Blob.GetObject(node.Hash.Hex())
		if err != nil {
			return nil, protocol.ErrUnavailable
		}
		if len(data) <= blob.PartSize {
			resp.Data = data
		} else {
			resp.Parts = uint32((len(data) + blob.PartSize - 1) / blob.PartSize)
			sess := c.Session
			sess.mu.Lock()
			sess.downloads[node.ID] = data
			sess.mu.Unlock()
		}
	} else {
		// Metered mode: account the data-store read without materializing.
		if _, err := s.deps.Blob.HeadObject(node.Hash.Hex()); err != nil {
			return nil, protocol.ErrUnavailable
		}
		if node.Size > blob.PartSize {
			resp.Parts = uint32((node.Size + blob.PartSize - 1) / blob.PartSize)
		}
	}
	return resp, nil
}

// opGetPart serves one staged part of a large download (TCP mode).
func (s *Server) opGetPart(c *OpContext) (*protocol.Response, error) {
	// Like PutPart, part fetches never report as API events.
	c.suppressEvent = true
	req, sess := c.Req, c.Session

	sess.mu.Lock()
	data, ok := sess.downloads[req.Node]
	sess.mu.Unlock()
	if !ok {
		// Metered mode has nothing staged: acknowledge the part so clients
		// can pace themselves identically in both modes.
		return &protocol.Response{Status: protocol.StatusOK}, nil
	}
	lo := int(req.Part) * blob.PartSize
	if lo >= len(data) {
		return nil, protocol.ErrBadRequest
	}
	hi := lo + blob.PartSize
	if hi > len(data) {
		hi = len(data)
	}
	if hi == len(data) { // final part: release the staged content
		sess.mu.Lock()
		delete(sess.downloads, req.Node)
		sess.mu.Unlock()
	}
	return &protocol.Response{Status: protocol.StatusOK, Data: data[lo:hi]}, nil
}

// --- Session lifecycle operations ---

// opAuthenticate validates the token (through the per-server cache, §3.4.1),
// provisions the account lazily, places the session on an API process and
// registers it. OpenSession is the transport-facing wrapper that feeds this
// handler and hands the created session back to the connection.
func (s *Server) opAuthenticate(c *OpContext) (*protocol.Response, error) {
	if c.Session != nil {
		// One storage-protocol session per connection; re-auth on a live
		// session is a protocol violation.
		return nil, protocol.ErrBadRequest
	}

	var user protocol.UserID
	var err error
	if s.deps.Auth.Overloaded(c.Req.Token, c.Now) {
		// SSO back-end past capacity (§5.4): the request registered its load
		// and lost the goodput-collapse draw. Charged like a failed auth
		// round trip — the tier did work, it just didn't finish any.
		err = fmt.Errorf("%w: sso back-end overloaded", protocol.ErrAuthFailed)
		s.deps.RPC.ObserveAuth(0, c.Now, err, &c.Cost)
	} else if s.deps.Auth.InjectedFailure(c.Req.Token, c.Now) {
		// Transient SSO failure (§7.3): injected per authentication request,
		// as a pure function of (seed, token, now), so the failure stream is
		// identical no matter which server's cache the session hit — the
		// reproducibility the parallel generator relies on.
		err = fmt.Errorf("%w: transient validation failure", protocol.ErrAuthFailed)
		s.deps.RPC.ObserveAuth(0, c.Now, err, &c.Cost)
	} else if cached, ok := s.tokens.Get(c.Req.Token, c.Now); ok {
		user = cached
		// Cached tokens skip the shared auth service entirely; the paper
		// notes caching exists to avoid overloading it.
	} else {
		user, err = s.deps.Auth.Validate(c.Req.Token)
		s.deps.RPC.ObserveAuth(user, c.Now, err, &c.Cost)
		if err == nil {
			s.tokens.Put(c.Req.Token, user, c.Now)
		}
	}

	// Modulo before the int conversion: the raw uint64 id would convert to a
	// negative int on 32-bit platforms (and after wraparound on 64-bit).
	sessionID := protocol.SessionID(atomic.AddUint64(&nextSessionID, 1))
	proc := int(uint64(sessionID) % uint64(s.cfg.Procs))
	c.User = user
	c.hasProc = true
	c.Event.Proc, c.Event.Session, c.Event.User = proc, sessionID, user

	if err != nil {
		return nil, err
	}
	if _, err := s.deps.RPC.Store().CreateUser(user); err != nil {
		return nil, err
	}

	sess := &Session{
		ID:        sessionID,
		User:      user,
		Proc:      proc,
		Started:   c.Now,
		pusher:    c.Pusher,
		downloads: make(map[protocol.NodeID][]byte),
	}
	s.mu.Lock()
	s.sessions[sess.ID] = sess
	userSessions, ok := s.byUser[user]
	if !ok {
		userSessions = make(map[protocol.SessionID]*Session)
		s.byUser[user] = userSessions
	}
	userSessions[sess.ID] = sess
	s.mu.Unlock()

	s.activeSessions.Inc()
	c.newSession = sess
	return &protocol.Response{Status: protocol.StatusOK, Session: sess.ID, User: user}, nil
}

// opCloseSession terminates the request's session and abandons its in-flight
// uploads (the uploadjob rows stay behind for the weekly GC, as in
// production). A double close is served idempotently but skips the metrics,
// so repeated closes cannot skew the gauge or the op counters.
func (s *Server) opCloseSession(c *OpContext) (*protocol.Response, error) {
	sess := c.Session

	s.mu.Lock()
	_, present := s.sessions[sess.ID]
	delete(s.sessions, sess.ID)
	if userSessions, ok := s.byUser[sess.User]; ok {
		delete(userSessions, sess.ID)
		if len(userSessions) == 0 {
			delete(s.byUser, sess.User)
		}
	}
	s.mu.Unlock()

	s.uploadsMu.Lock()
	for id, up := range s.uploads {
		if up.session == sess.ID {
			delete(s.uploads, id)
		}
	}
	s.uploadsMu.Unlock()

	if present {
		s.activeSessions.Dec()
	} else {
		c.skipMetrics = true
	}
	return &protocol.Response{Status: protocol.StatusOK}, nil
}
