package apiserver

import (
	"testing"
	"time"

	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/faults"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

// newFaultFixture builds a server with a metrics registry plus the given
// fault plan and admission watermark.
func newFaultFixture(t *testing.T, plan *faults.Plan, watermark int) (*fixture, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	f := &fixture{
		store:  metadata.New(metadata.Config{Shards: 4}),
		blob:   blob.New(blob.Config{}),
		auth:   auth.New(auth.Config{Seed: 1}),
		broker: notify.NewBroker(),
	}
	f.srv = New(Config{Name: "m", Procs: 2, Faults: plan, AdmitWatermark: watermark}, Deps{
		RPC:      rpc.NewServer(f.store, rpc.Config{Seed: 1, Metrics: reg}),
		Auth:     f.auth,
		Blob:     f.blob,
		Broker:   f.broker,
		Transfer: blob.DefaultTransferModel(),
		Metrics:  reg,
	})
	return f, reg
}

// TestInjectFailsConfiguredOpOnly pins the inject interceptor: an op with
// Fraction 1 always fails with the configured status, other ops are
// untouched, and the failure is observable — error counter up, trace event
// carrying the status — without contaminating the latency histogram.
func TestInjectFailsConfiguredOpOnly(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Rules: map[protocol.Op]faults.Rule{
		protocol.OpPing: {Fraction: 1, Status: protocol.StatusUnavailable},
	}}
	f, reg := newFaultFixture(t, plan, 0)
	var events []Event
	f.srv.AddObserver(func(e Event) { events = append(events, e) })
	sess := f.session(t, 1)

	resp, d := f.srv.Handle(sess, &protocol.Request{ID: 5, Op: protocol.OpPing}, t0)
	if resp.Status != protocol.StatusUnavailable {
		t.Fatalf("injected ping status = %v, want unavailable", resp.Status)
	}
	if resp.ID != 5 {
		t.Errorf("injected failure lost correlation id: %d", resp.ID)
	}
	if d != 0 {
		t.Errorf("injected failure charged cost %v; it must preempt the handler", d)
	}
	last := events[len(events)-1]
	if last.Op != protocol.OpPing || last.Status != protocol.StatusUnavailable {
		t.Errorf("event = op %v status %v, want injected ping failure", last.Op, last.Status)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["api.op.Ping.errors"]; got != 1 {
		t.Errorf("api.op.Ping.errors = %d, want 1", got)
	}
	if got := snap.Counters[metrics.FaultsPrefix+"injected"]; got != 1 {
		t.Errorf("faults.injected = %d, want 1", got)
	}
	if hist := snap.Histograms["api.op.Ping.seconds"]; hist.Count != 0 {
		t.Errorf("injected failure entered the latency histogram (count %d)", hist.Count)
	}

	// Ops outside the plan proceed normally.
	resp, _ = f.srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
	if resp.Status != protocol.StatusOK {
		t.Errorf("unplanned op failed: %v", resp.Status)
	}
}

// TestInjectDeterministicAcrossServers pins the purity contract: two servers
// built from the same plan make identical decisions for the same
// (user, op, now), because nothing about injection depends on server state.
func TestInjectDeterministicAcrossServers(t *testing.T) {
	plan := &faults.Plan{Seed: 3, Rules: map[protocol.Op]faults.Rule{
		protocol.OpListVolumes: {Fraction: 0.5},
	}}
	fa, _ := newFaultFixture(t, plan, 0)
	fb, _ := newFaultFixture(t, plan, 0)
	sa := fa.session(t, 9)
	sb := fb.session(t, 9)
	for i := 0; i < 200; i++ {
		now := t0.Add(time.Duration(i) * 13 * time.Second)
		ra, _ := fa.srv.Handle(sa, &protocol.Request{Op: protocol.OpListVolumes}, now)
		rb, _ := fb.srv.Handle(sb, &protocol.Request{Op: protocol.OpListVolumes}, now)
		if ra.Status != rb.Status {
			t.Fatalf("at %v: server A %v, server B %v", now, ra.Status, rb.Status)
		}
	}
}

// TestNilAndZeroPlanInjectNothing pins behavior preservation: a nil plan and
// a zero-value plan leave every request untouched.
func TestNilAndZeroPlanInjectNothing(t *testing.T) {
	for name, plan := range map[string]*faults.Plan{"nil": nil, "zero": {}} {
		f, reg := newFaultFixture(t, plan, 0)
		sess := f.session(t, 2)
		for i := 0; i < 50; i++ {
			resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpPing},
				t0.Add(time.Duration(i)*time.Second))
			if resp.Status != protocol.StatusOK {
				t.Fatalf("%s plan: ping %d failed with %v", name, i, resp.Status)
			}
		}
		if got := reg.Snapshot().Counters[metrics.FaultsPrefix+"injected"]; got != 0 {
			t.Errorf("%s plan injected %d failures", name, got)
		}
	}
}

// TestAdmitShedsByClass walks the watermark ladder at one virtual instant:
// with watermark 1, the second data op is shed, metadata survives to 2x,
// session management to 4x — and the shed ops are observable (StatusOverloaded
// wire status, error counters, faults.shed) without entering the latency
// histogram.
func TestAdmitShedsByClass(t *testing.T) {
	f, reg := newFaultFixture(t, nil, 1)
	sess := f.session(t, 3)
	do := func(op protocol.Op) protocol.Status {
		resp, _ := f.srv.Handle(sess, &protocol.Request{Op: op, Node: 1}, t0)
		return resp.Status
	}

	if st := do(protocol.OpGetContent); st == protocol.StatusOverloaded { // load 0→1
		t.Fatalf("first data op shed: %v", st)
	}
	if st := do(protocol.OpGetContent); st != protocol.StatusOverloaded { // load 1 ≥ 1
		t.Fatalf("second data op not shed: %v", st)
	}
	if st := do(protocol.OpListVolumes); st != protocol.StatusOK { // load 1 < 2
		t.Fatalf("metadata op shed below its threshold: %v", st)
	}
	if st := do(protocol.OpListVolumes); st != protocol.StatusOverloaded { // load 2 ≥ 2
		t.Fatalf("metadata op not shed at 2x: %v", st)
	}
	if st := do(protocol.OpPing); st != protocol.StatusOK { // load 2 < 4
		t.Fatalf("session op shed below its threshold: %v", st)
	}
	if st := do(protocol.OpPing); st != protocol.StatusOK { // load 3 < 4
		t.Fatalf("session op shed below its threshold: %v", st)
	}
	if st := do(protocol.OpPing); st != protocol.StatusOverloaded { // load 4 ≥ 4
		t.Fatalf("session op not shed at 4x: %v", st)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[metrics.FaultsPrefix+"shed"]; got != 3 {
		t.Errorf("faults.shed = %d, want 3", got)
	}
	if got := snap.Counters["api.op.Download.errors"]; got != 2 {
		t.Errorf("api.op.Download.errors = %d, want 2 (the NotFound and the shed one)", got)
	}
	// The one admitted download failed NotFound inside the handler (node 1
	// does not exist) and so carries a real duration; the shed one must not
	// have added a second histogram sample.
	if hist := snap.Histograms["api.op.Download.seconds"]; hist.Count != 1 {
		t.Errorf("Download latency samples = %d, want 1 (shed op excluded)", hist.Count)
	}

	// The window slides: past AdmissionWindow the storm is forgotten.
	later := t0.Add(faults.AdmissionWindow + time.Second)
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpGetContent, Node: 1}, later)
	if resp.Status == protocol.StatusOverloaded {
		t.Error("data op still shed after the accounting window expired")
	}
}

// TestAdmitNeverShedsAuthentication pins the admission scope: OpenSession
// has no API process before its handler runs, so an overloaded machine still
// authenticates (auth storms are the SSO tier's problem, not the data
// path's).
func TestAdmitNeverShedsAuthentication(t *testing.T) {
	f, _ := newFaultFixture(t, nil, 1)
	sess := f.session(t, 4)
	// Saturate both procs' windows far past every class threshold.
	for i := 0; i < 16; i++ {
		f.srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
	}
	token, err := f.auth.Issue(5)
	if err != nil {
		t.Fatal(err)
	}
	sess2, resp, _ := f.srv.OpenSession(token, nil, t0)
	if resp.Status != protocol.StatusOK || sess2 == nil {
		t.Fatalf("authentication shed under overload: %v", resp.Status)
	}
}

// TestRetryCountersObserveAttempts pins the server-side retry accounting:
// requests carrying Attempt > 0 count as retried, and only the ones that
// come back clean count as retry successes.
func TestRetryCountersObserveAttempts(t *testing.T) {
	f, reg := newFaultFixture(t, nil, 0)
	sess := f.session(t, 6)
	// A successful retry.
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpPing, Attempt: 1}, t0)
	if resp.Status != protocol.StatusOK {
		t.Fatalf("ping retry failed: %v", resp.Status)
	}
	// A failed retry (missing node).
	resp, _ = f.srv.Handle(sess, &protocol.Request{Op: protocol.OpGetContent, Node: 99, Attempt: 2}, t0)
	if resp.Status == protocol.StatusOK {
		t.Fatal("download of missing node succeeded")
	}
	// A first attempt is not retried traffic.
	f.srv.Handle(sess, &protocol.Request{Op: protocol.OpPing}, t0)

	snap := reg.Snapshot()
	if got := snap.Counters[metrics.FaultsPrefix+"retried"]; got != 2 {
		t.Errorf("faults.retried = %d, want 2", got)
	}
	if got := snap.Counters[metrics.FaultsPrefix+"retry_succeeded"]; got != 1 {
		t.Errorf("faults.retry_succeeded = %d, want 1", got)
	}
}

// TestCancelledExcludedFromLatencyHistogram extends the cancellation
// observability contract: the cancelled op keeps its error counter and trace
// event (pinned elsewhere) but its zero duration stays out of the
// percentiles.
func TestCancelledExcludedFromLatencyHistogram(t *testing.T) {
	f, reg := newFaultFixture(t, nil, 0)
	sess := f.session(t, 8)
	f.srv.HandleWithCancel(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0,
		time.Time{}, func() bool { return true })
	snap := reg.Snapshot()
	if got := snap.Counters["api.op.ListVolumes.errors"]; got != 1 {
		t.Errorf("api.op.ListVolumes.errors = %d, want 1", got)
	}
	if hist := snap.Histograms["api.op.ListVolumes.seconds"]; hist.Count != 0 {
		t.Errorf("cancelled op entered the latency histogram (count %d)", hist.Count)
	}
}
