// Package apiserver implements the U1 API server processes of §3.2/§3.4:
// they receive commands from desktop clients, authenticate them against the
// shared SSO service (with a local token cache), translate commands into DAL
// RPC calls, forward file contents to the data store, and push notifications
// to simultaneously connected clients — directly for sessions they host, and
// through the notification broker for sessions on other API servers.
//
// # Request pipeline
//
// Every one of Table 2's operations flows through the same dispatch
// pipeline. A request is wrapped in a pooled OpContext (session, user,
// virtual timestamp, cost accumulator, in-flight trace Event) and pushed
// through an ordered interceptor chain into a per-op handler table built at
// server construction:
//
//	proc-load → metrics → events → status-map → inject → durability →
//	notify → session-guard → admit → cancel → handler
//
// Handlers (one registered Handler per protocol.Op) contain only the
// operation's business logic: they issue DAL RPCs that charge their sampled
// service times to the context's cost accumulator, enrich the trace Event,
// and queue watcher notifications. Everything cross-cutting — per-process
// load counting, per-op latency/error metrics, trace-event emission, the
// uniform error→Status mapping, deterministic per-op fault injection
// (Config.Faults), notification delivery on success, and per-op-class load
// shedding under overload (Config.AdmitWatermark) — lives in one interceptor
// each and wraps every operation identically, so a new operation is one
// registration, not a new switch arm. See dispatch.go for the interceptor
// contract and the OpContext lifecycle.
//
// The server runs in two harnesses: in-process (the discrete-event simulator
// calls OpenSession/Handle directly, with virtual timestamps) and over real
// TCP (see tcp.go), both driving exactly the same pipeline.
package apiserver

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/cow"
	"u1/internal/faults"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/wal"
)

// Event is one completed API-level operation, the unit of the paper's
// storage/session trace records. The trace collector subscribes to these.
type Event struct {
	Server   string // API server (machine) name, e.g. "whitecurrant"
	Proc     int    // server process number on the machine
	Session  protocol.SessionID
	User     protocol.UserID
	Op       protocol.Op
	Volume   protocol.VolumeID
	Node     protocol.NodeID
	Hash     protocol.Hash
	Size     uint64 // plain (uncompressed) content size for transfers
	Wire     uint64 // bytes on the wire (post-compression) for transfers
	Ext      string // lower-cased file extension, the only name residue kept
	Start    time.Time
	Duration time.Duration
	Status   protocol.Status
	IsUpdate bool // upload replaced existing content (§5.1 file updates)
	IsDir    bool // the operation targeted a directory (Unlink cascades)
}

// Observer receives API events.
type Observer func(Event)

// Pusher delivers unsolicited server→client notifications for one session.
type Pusher interface {
	Push(*protocol.Push)
}

// PusherFunc adapts a function to the Pusher interface.
type PusherFunc func(*protocol.Push)

// Push implements Pusher.
func (f PusherFunc) Push(p *protocol.Push) { f(p) }

// RegionRouter is the metadata tier's region-topology probe: the region
// interceptor consults it to refuse mutations whose owning metadata region is
// down before any back-end work is spent. The metadata store implements it.
type RegionRouter interface {
	// WriteUnavailable reports whether a mutation on vol would be refused
	// because its owning region is down.
	WriteUnavailable(vol protocol.VolumeID) bool
	// NumRegions returns the configured region count (1 disables routing).
	NumRegions() int
}

// Deps are the shared back-end services an API server talks to.
type Deps struct {
	RPC      *rpc.Server
	Auth     *auth.Service
	Blob     *blob.Store
	Broker   *notify.Broker
	Transfer blob.TransferModel
	// Metrics is the fleet-shared registry; per-operation latency and error
	// counts aggregate across all API servers wired to the same registry.
	// nil keeps the server fully functional but unobserved.
	Metrics *metrics.Registry
	// Regions, when non-nil and reporting more than one region, enables the
	// region interceptor: mutations owned by a down metadata region are
	// refused with StatusUnavailable at the API edge.
	Regions RegionRouter
	// SSO, when non-nil, is the fleet-shared SSO-tier token bucket: the
	// admit interceptor sheds Authenticate requests with StatusOverloaded
	// when the bucket is dry, closing the gap that admission's op classes
	// never covered login storms. Shared across the fleet because there is
	// one SSO tier, not one per API machine.
	SSO *faults.SSOAdmission
}

// Config parameterizes one API server machine.
type Config struct {
	// Name is the machine name used in trace lognames (e.g. "whitecurrant").
	Name string
	// Procs is the number of API processes on the machine (8–16 in
	// production); sessions are spread across them.
	Procs int
	// TokenCacheTTL bounds the per-server token cache (§3.4.1).
	TokenCacheTTL time.Duration
	// InlineData makes transfers carry real bytes (TCP mode). When false,
	// transfers are metered by size only — the simulator's mode.
	InlineData bool
	// QueueDepth bounds the notification queue on the broker.
	QueueDepth int
	// Faults is the deterministic per-op fault plan the inject interceptor
	// applies (nil or zero-value injects nothing; see faults.Plan).
	Faults *faults.Plan
	// AdmitWatermark enables per-op-class load shedding: when a process has
	// admitted this many requests over the trailing faults.AdmissionWindow,
	// further data operations are refused with StatusOverloaded (metadata at
	// 2x, session management at 4x). Zero disables shedding.
	AdmitWatermark int
	// Durability marks the metadata store as journaled: the durability
	// interceptor charges FsyncPolicy's sync cost to every successful
	// mutating operation, pricing the write-ahead log into the request path.
	Durability bool
	// FsyncPolicy is the journal sync policy whose deterministic cost the
	// durability interceptor charges; ignored unless Durability is set.
	FsyncPolicy wal.Policy
	// SyncCostScale multiplies the fsync policy's modeled sync cost — the
	// slow-disk degradation knob (a failing array syncs slower; the data
	// stays durable, the request path pays more). 0 means 1 (unscaled).
	// Ignored unless Durability is set.
	SyncCostScale float64
}

// Session is one storage-protocol session: one desktop client connection
// pinned to this server for its lifetime (§3.1.1).
type Session struct {
	ID      protocol.SessionID
	User    protocol.UserID
	Proc    int
	Started time.Time

	pusher Pusher

	mu        sync.Mutex
	downloads map[protocol.NodeID][]byte // staged content for GetPart (TCP mode)
}

// nextSessionID allocates globally unique session ids across all API servers
// in the process, as the production back-end did.
var nextSessionID uint64

// ResetSessionIDs rewinds the process-global session-id allocator to zero.
// Session ids feed process placement (id mod procs), so two otherwise
// identical serial runs in one process diverge wherever per-process state
// (admission windows, proc op counts) matters unless the allocator is
// rewound between them. Only harnesses that need reproducible back-to-back
// runs — the scenario runner, determinism tests — may call it, and only
// with no traffic in flight anywhere in the process.
func ResetSessionIDs() { atomic.StoreUint64(&nextSessionID, 0) }

// Server is one API server machine.
type Server struct {
	cfg  Config
	deps Deps

	tokens *auth.Cache
	queue  <-chan notify.Event

	mu       sync.RWMutex
	sessions map[protocol.SessionID]*Session
	byUser   map[protocol.UserID]map[protocol.SessionID]*Session

	// observers is copy-on-write: emit iterates a lock-free snapshot, so the
	// trace collector can attach mid-traffic.
	observers cow.List[Observer]

	// handlers is the per-op dispatch table and pipeline the interceptor
	// chain wrapped around its lookup; both are built once by buildPipeline
	// and immutable afterwards. interceptorNames documents the chain order,
	// outermost first.
	handlers         []Handler
	pipeline         Handler
	interceptorNames []string

	procOps []uint64 // per-process API op counters (atomic)

	// admission is the per-process load-shedding state behind the admit
	// interceptor; nil when Config.AdmitWatermark is zero.
	admission *faults.Admission

	// regions is the metadata region-topology probe behind the region
	// interceptor; nil for single-region deployments (the common case), so
	// the interceptor is a passthrough.
	regions       RegionRouter
	regionRefused *metrics.Counter

	// Per-op instrumentation handles, indexed by protocol.Op. Resolved once
	// at construction so the request path records through plain pointers.
	opSeconds      []*metrics.Histogram
	opCount        []*metrics.Counter
	opErrors       []*metrics.Counter
	activeSessions *metrics.Gauge
	machineOps     *metrics.Counter

	// Fault accounting for the bench report's faults section: injected and
	// shed requests (server decisions), SSO-bucket sheds, retried requests
	// and retry successes (client attempts observed server-side via
	// Request.Attempt).
	faultInjected     *metrics.Counter
	faultShed         *metrics.Counter
	faultSSOShed      *metrics.Counter
	faultRetried      *metrics.Counter
	faultRetrySuccess *metrics.Counter

	// Durability accounting: successful mutations charged with the journal
	// sync cost, and the cost itself (resolved once from the fsync policy so
	// the request path never re-derives it).
	walJournaled *metrics.Counter
	syncCost     time.Duration

	uploadsMu sync.Mutex
	uploads   map[protocol.UploadID]*pendingUpload
}

type pendingUpload struct {
	job       *metadata.UploadJob
	session   protocol.SessionID
	multipart bool
	mpID      string
	received  uint64
	wire      uint64 // client-declared post-compression bytes (§3.3)
	buf       []byte // assembled parts (InlineData mode only)
	ext       string
	plainSize uint64
}

// New creates an API server and registers it on the broker.
func New(cfg Config, deps Deps) *Server {
	if cfg.Name == "" {
		cfg.Name = "api"
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 8
	}
	if cfg.TokenCacheTTL <= 0 {
		cfg.TokenCacheTTL = 8 * time.Hour
	}
	s := &Server{
		cfg:      cfg,
		deps:     deps,
		tokens:   auth.NewCache(cfg.TokenCacheTTL),
		sessions: make(map[protocol.SessionID]*Session),
		byUser:   make(map[protocol.UserID]map[protocol.SessionID]*Session),
		procOps:  make([]uint64, cfg.Procs),
		uploads:  make(map[protocol.UploadID]*pendingUpload),

		activeSessions: deps.Metrics.Gauge("api.sessions.active"),
		machineOps:     deps.Metrics.Counter("api.server." + cfg.Name + ".ops"),

		faultInjected:     deps.Metrics.Counter(metrics.FaultsPrefix + "injected"),
		faultShed:         deps.Metrics.Counter(metrics.FaultsPrefix + "shed"),
		faultSSOShed:      deps.Metrics.Counter(metrics.FaultsPrefix + "sso_shed"),
		faultRetried:      deps.Metrics.Counter(metrics.FaultsPrefix + "retried"),
		faultRetrySuccess: deps.Metrics.Counter(metrics.FaultsPrefix + "retry_succeeded"),

		walJournaled: deps.Metrics.Counter(metrics.WALPrefix + "journaled"),
	}
	if cfg.Durability {
		s.syncCost = cfg.FsyncPolicy.SyncCost()
		if cfg.SyncCostScale > 0 {
			s.syncCost = time.Duration(float64(s.syncCost) * cfg.SyncCostScale)
		}
	}
	if cfg.AdmitWatermark > 0 {
		s.admission = faults.NewAdmission(cfg.Procs, cfg.AdmitWatermark)
	}
	if deps.Regions != nil && deps.Regions.NumRegions() > 1 {
		s.regions = deps.Regions
		s.regionRefused = deps.Metrics.Counter("api.region.refused")
	}
	ops := protocol.Ops()
	s.opSeconds = make([]*metrics.Histogram, len(ops))
	s.opCount = make([]*metrics.Counter, len(ops))
	s.opErrors = make([]*metrics.Counter, len(ops))
	for _, op := range ops {
		name := metrics.APIOpPrefix + op.String()
		s.opSeconds[op] = deps.Metrics.Histogram(name + ".seconds")
		s.opCount[op] = deps.Metrics.Counter(name + ".count")
		s.opErrors[op] = deps.Metrics.Counter(name + ".errors")
	}
	if deps.Broker != nil {
		s.queue = deps.Broker.Register(cfg.Name, cfg.QueueDepth)
	}
	s.buildPipeline()
	return s
}

// record charges one completed operation to the fleet metrics: outcome
// counters always, and its simulated service time into the per-op histogram
// unless the request was preempted. Preempted requests (cancelled, shed,
// injected) did no back-end work, so admitting their zero durations would
// deflate the latency percentiles — load shedding must not fake a p99 win.
func (s *Server) record(op protocol.Op, dur time.Duration, status protocol.Status, preempted bool) {
	if int(op) >= len(s.opSeconds) {
		return
	}
	s.opCount[op].Inc()
	s.machineOps.Inc()
	if !preempted {
		s.opSeconds[op].Observe(dur.Seconds())
	}
	if status != protocol.StatusOK {
		s.opErrors[op].Inc()
	}
}

// Name returns the server's machine name.
func (s *Server) Name() string { return s.cfg.Name }

// DropToken evicts a token from this server's validation cache. Operators
// call it fleet-wide when revoking credentials (§5.4): without the flush, a
// revoked token would keep authenticating on servers with a warm cache for
// up to the cache TTL.
func (s *Server) DropToken(token string) { s.tokens.Drop(token) }

// AddObserver registers an API event observer. It is safe to call while
// traffic is in flight: the observer list is copy-on-write, so concurrent
// emits keep iterating their immutable snapshot and pick up the new observer
// on their next event.
func (s *Server) AddObserver(o Observer) { s.observers.Add(o) }

// ProcOps returns cumulative API operations per server process.
func (s *Server) ProcOps() []uint64 {
	out := make([]uint64, len(s.procOps))
	for i := range out {
		out[i] = atomic.LoadUint64(&s.procOps[i])
	}
	return out
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

func (s *Server) emit(e Event) {
	for _, o := range s.observers.Load() {
		o(e)
	}
}

// OpenSession authenticates a token and establishes a session (the
// Authenticate API call), dispatching through the same pipeline as every
// other operation. The returned response mirrors what goes on the wire; the
// duration covers the auth RPC. Accounts are provisioned lazily on first
// successful authentication, which keeps simulation setup out of the trace
// window.
func (s *Server) OpenSession(token string, pusher Pusher, now time.Time) (*Session, *protocol.Response, time.Duration) {
	c := s.newOpContext(nil, &protocol.Request{Op: protocol.OpAuthenticate, Token: token}, now)
	c.Pusher = pusher
	c.openSession = true
	resp := s.dispatch(c)
	sess, d := c.newSession, c.Cost.Total()
	releaseOpContext(c)
	return sess, resp, d
}

// CloseSession terminates a session through the pipeline, which emits its
// session-end event and charges the close to the session's process.
func (s *Server) CloseSession(sess *Session, now time.Time) {
	if sess == nil {
		return
	}
	c := s.newOpContext(sess, &protocol.Request{Op: protocol.OpCloseSession}, now)
	s.dispatch(c)
	releaseOpContext(c)
}

// notifyVolume pushes a volume-change notification to every watcher session,
// local ones directly and remote ones through the broker (§3.4.2). The
// originating session is excluded: it made the change.
func (s *Server) notifyVolume(origin *Session, vol protocol.VolumeID, gen protocol.Generation) {
	watchers, err := s.deps.RPC.Store().VolumeWatchers(vol)
	if err != nil {
		return
	}
	push := &protocol.Push{Event: protocol.PushVolumeChanged, Volume: vol, Generation: gen}
	for _, user := range watchers {
		s.pushLocal(user, origin.ID, push)
		if s.deps.Broker != nil {
			s.deps.Broker.Publish(notify.Event{
				Kind:           protocol.PushVolumeChanged,
				User:           user,
				Volume:         vol,
				Generation:     gen,
				Origin:         s.cfg.Name,
				ExcludeSession: origin.ID,
			})
		}
	}
}

// notifyShare pushes a share event to the grantee's sessions everywhere.
func (s *Server) notifyShare(origin *Session, kind protocol.PushEvent, share protocol.ShareInfo) {
	push := &protocol.Push{Event: kind, Share: share, Volume: share.Volume}
	s.pushLocal(share.SharedTo, origin.ID, push)
	if s.deps.Broker != nil {
		s.deps.Broker.Publish(notify.Event{
			Kind:           kind,
			User:           share.SharedTo,
			Volume:         share.Volume,
			Share:          share,
			Origin:         s.cfg.Name,
			ExcludeSession: origin.ID,
		})
	}
}

// pushLocal delivers a push to this server's sessions of a user, except the
// excluded session.
func (s *Server) pushLocal(user protocol.UserID, exclude protocol.SessionID, push *protocol.Push) {
	s.mu.RLock()
	var targets []*Session
	for id, sess := range s.byUser[user] {
		if id != exclude {
			targets = append(targets, sess)
		}
	}
	s.mu.RUnlock()
	// Deliver in ascending session order: push arrival order is observable
	// client state and must not depend on map iteration.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	for _, sess := range targets {
		if sess.pusher != nil {
			sess.pusher.Push(push)
		}
	}
}

// DeliverQueued drains the broker queue, delivering events to local
// sessions. The TCP server runs this continuously in a goroutine; the
// simulator pumps it between events. It returns the number delivered.
func (s *Server) DeliverQueued() int {
	var n int
	for {
		select {
		case e, ok := <-s.queue:
			if !ok {
				return n
			}
			push := &protocol.Push{
				Event:      e.Kind,
				Volume:     e.Volume,
				Generation: e.Generation,
				Share:      e.Share,
			}
			s.pushLocal(e.User, e.ExcludeSession, push)
			n++
		default:
			return n
		}
	}
}

// extOf extracts the lower-cased file extension of a client-declared name;
// the rest of the name is discarded (the trace is anonymized, §4).
func extOf(name string) string {
	e := strings.ToLower(strings.TrimPrefix(path.Ext(name), "."))
	if len(e) > 10 { // not a real extension, just a dotted name
		return ""
	}
	return e
}

// errSessionRequired guards ops issued without authentication.
var errSessionRequired = fmt.Errorf("%w: no session", protocol.ErrAuthFailed)

// fail builds an error response.
func fail(id uint64, err error) *protocol.Response {
	return &protocol.Response{ID: id, Status: protocol.StatusOf(err)}
}

// isTruncatedDelta reports the delta-log truncation condition.
func isTruncatedDelta(err error) bool {
	return errors.Is(err, metadata.ErrDeltaTruncated)
}
