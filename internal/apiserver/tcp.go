package apiserver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/protocol"
	"u1/internal/wire"
)

// Serve accepts client connections on ln until the listener closes. Each
// connection carries one storage-protocol session: the first frame must be an
// Authenticate request; afterwards requests are served in order and pushes
// are interleaved onto the same connection, exactly the §3.3 model of one
// persistent TCP connection per desktop client.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("apiserver: accept: %w", err)
		}
		go s.handleConn(conn)
	}
}

// RunNotifier forwards broker events to local sessions until done closes.
// The TCP deployment runs one per server.
func (s *Server) RunNotifier(done <-chan struct{}) {
	for {
		select {
		case e, ok := <-s.queue:
			if !ok {
				return
			}
			s.pushLocal(e.User, e.ExcludeSession, &protocol.Push{
				Event:      e.Kind,
				Volume:     e.Volume,
				Generation: e.Generation,
				Share:      e.Share,
			})
		case <-done:
			return
		}
	}
}

// connWriter serializes frame writes: responses and pushes share the
// connection. It also tracks connection death: the first failed write flips
// the dead flag, which the dispatch pipeline probes (OpContext.Aborted) so
// in-flight requests for a disconnected client are dropped mid-pipeline
// instead of doing back-end work nobody will read.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
	dead atomic.Bool
}

func (w *connWriter) writeFrame(msgType byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := wire.WriteFrame(w.conn, msgType, payload)
	if err != nil {
		w.dead.Store(true)
	}
	return err
}

// Push implements Pusher by writing a push frame. Write errors terminate the
// connection lazily: the read loop notices, and the dead flag aborts any
// request still in the pipeline.
func (w *connWriter) Push(p *protocol.Push) {
	_ = w.writeFrame(protocol.FramePush, p.Marshal())
}

// aborted reports whether the connection is known dead.
func (w *connWriter) aborted() bool { return w.dead.Load() }

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	w := &connWriter{conn: conn}

	var sess *Session
	defer func() {
		if sess != nil {
			//u1:allow wallclock real TCP transport stamps session close with host time
			s.CloseSession(sess, time.Now())
		}
	}()

	for {
		msgType, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // io.EOF on clean shutdown; anything else drops the conn
		}
		if msgType != protocol.FrameRequest {
			return // protocol violation
		}
		req, err := protocol.UnmarshalRequest(payload)
		if err != nil {
			return
		}
		//u1:allow wallclock real TCP transport stamps requests with host time
		now := time.Now()

		var resp *protocol.Response
		switch {
		case req.Op == protocol.OpAuthenticate:
			if sess != nil {
				// One storage-protocol session per connection: re-auth on a
				// live session is a protocol violation (mirrors the
				// opAuthenticate handler's rule), and silently replacing sess
				// here would leak the prior session forever.
				resp = fail(req.ID, protocol.ErrBadRequest)
				break
			}
			var r *protocol.Response
			sess, r, _ = s.OpenSession(req.Token, w, now)
			r.ID = req.ID
			resp = r
		case req.Op == protocol.OpCloseSession:
			if sess != nil {
				s.CloseSession(sess, now)
				sess = nil
			}
			resp = &protocol.Response{ID: req.ID, Status: protocol.StatusOK}
		default:
			resp, _ = s.HandleWithCancel(sess, req, now, time.Time{}, w.aborted)
		}
		if err := w.writeFrame(protocol.FrameResponse, resp.Marshal()); err != nil {
			return
		}
		if req.Op == protocol.OpCloseSession {
			return
		}
	}
}

// ListenAndServe listens on addr and serves until the process ends. It
// reports the bound address through the optional ready channel, which helps
// tests bind port 0.
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("apiserver: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	return s.Serve(ln)
}
