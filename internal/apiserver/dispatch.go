package apiserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/protocol"
)

// OpContext is the request-scoped state threaded through the dispatch
// pipeline: the session, resolved user, virtual timestamp, the request
// itself, the cost accumulator that collects every RPC service time and
// transfer estimate charged to the request, and the in-flight trace Event.
//
// Lifecycle: the server takes a context from an internal pool when dispatch
// starts (Handle, OpenSession, CloseSession), initializes every field, runs
// it through the interceptor chain and the registered handler, reads the
// accumulated cost, and returns it to the pool. A context therefore never
// outlives its request — handlers and interceptors must not retain it (copy
// Event or individual fields instead).
//
// Handlers communicate with the cross-cutting interceptors exclusively
// through the context: they mutate Event to enrich the trace record, charge
// Cost, queue notifications with NotifyVolume/NotifyShare, and set the
// suppress/skip flags where an operation opts out of the uniform
// bookkeeping.
type OpContext struct {
	Session *Session
	User    protocol.UserID
	Now     time.Time
	Req     *protocol.Request
	Cost    protocol.Cost
	Event   Event

	// Pusher is the client push channel offered during Authenticate; unused
	// by every other operation.
	Pusher Pusher

	// Deadline, when non-zero, is the virtual instant past which the request
	// must not start: the cancel interceptor rejects it with ErrCancelled
	// before the handler runs. Zero means no deadline.
	Deadline time.Time
	// Aborted, when non-nil, is probed by the cancel interceptor just before
	// the handler runs: a true return means the client is gone (the TCP
	// harness flips it when the connection dies) and the pipeline drops the
	// work with ErrCancelled instead of executing it.
	Aborted func() bool

	// newSession carries the session created by the Authenticate handler
	// back to OpenSession.
	newSession *Session
	// openSession marks a context built by OpenSession, the only entry
	// point allowed to run Authenticate without a session: a raw Handle
	// call has no way to receive the created *Session, so admitting it
	// would leak an uncloseable session.
	openSession bool

	// hasProc marks Event.Proc as valid for per-process load accounting.
	// Set at context creation when a session exists, and by the Authenticate
	// handler once it has placed the new session on a process.
	hasProc bool
	// suppressEvent opts the request out of the uniform event emission: part
	// streaming never reports as an API event, and an upload that opens a
	// job reports only when its final part lands.
	suppressEvent bool
	// preempted marks a request rejected before its handler ran — cancelled,
	// shed by admission control, or failed by the fault injector. Preempted
	// requests still count in the per-op outcome counters and trace events
	// (operators must see refused work), but are excluded from the latency
	// histograms: they charged no cost, and zero-duration samples would let
	// load shedding fake a latency win.
	preempted bool
	// skipMetrics opts the request out of per-op metric recording (only the
	// double-close of a session, which must not skew the op counters).
	skipMetrics bool

	// pending holds notifications queued by the handler; the notify
	// interceptor delivers them only after the handler succeeds.
	pending []pendingPush
}

// pendingPush is one queued notification: a volume change or a share event.
type pendingPush struct {
	share  bool
	kind   protocol.PushEvent
	volume protocol.VolumeID
	gen    protocol.Generation
	info   protocol.ShareInfo
}

// NotifyVolume queues a volume-changed push for every watcher of vol. The
// notify interceptor delivers it (locally and through the broker) after the
// handler returns without error.
func (c *OpContext) NotifyVolume(vol protocol.VolumeID, gen protocol.Generation) {
	c.pending = append(c.pending, pendingPush{volume: vol, gen: gen})
}

// NotifyShare queues a share push for the grantee's sessions everywhere.
func (c *OpContext) NotifyShare(kind protocol.PushEvent, share protocol.ShareInfo) {
	c.pending = append(c.pending, pendingPush{share: true, kind: kind, volume: share.Volume, info: share})
}

// Handler executes one API operation against a request context. On success
// it returns the response (the pipeline stamps the correlation ID); on
// failure it returns a nil response and the error, which the status-map
// interceptor converts to the uniform wire status — handlers never build
// error responses themselves.
type Handler func(*OpContext) (*protocol.Response, error)

// Interceptor wraps a Handler with a cross-cutting concern. The interceptor
// contract:
//
//   - An interceptor must call next exactly once, except to reject the
//     request outright (the session guard), in which case it returns an
//     error and the downstream handler never runs.
//   - Work before the next call sees the request untouched; work after it
//     sees the handler's response/error and the fully charged Cost.
//   - Interceptors run in the fixed order of InterceptorOrder for every
//     operation; per-op behavior differences are expressed through OpContext
//     flags, never by reordering.
//   - An interceptor that maps errors (status-map) must leave interceptors
//     outside it a non-nil response; interceptors inside it see the raw
//     handler error.
type Interceptor func(next Handler) Handler

// chain folds interceptors around h: ics[0] becomes the outermost wrapper.
func chain(h Handler, ics ...Interceptor) Handler {
	for i := len(ics) - 1; i >= 0; i-- {
		h = ics[i](h)
	}
	return h
}

// opCtxPool recycles request contexts; see the OpContext lifecycle note.
var opCtxPool = sync.Pool{New: func() any { return new(OpContext) }}

// newOpContext initializes a pooled context for one request. sess may be nil
// (pre-auth requests); the session guard rejects such requests unless they
// entered through OpenSession.
func (s *Server) newOpContext(sess *Session, req *protocol.Request, now time.Time) *OpContext {
	c := opCtxPool.Get().(*OpContext)
	pending := c.pending[:0]
	*c = OpContext{Session: sess, Now: now, Req: req, pending: pending}
	c.Event = Event{
		Server: s.cfg.Name,
		Op:     req.Op,
		Volume: req.Volume,
		Node:   req.Node,
		Start:  now,
	}
	if sess != nil {
		c.User = sess.User
		c.hasProc = true
		c.Event.Proc = sess.Proc
		c.Event.Session = sess.ID
		c.Event.User = sess.User
	}
	return c
}

// releaseOpContext returns a context to the pool. Callers must have read
// everything they need (cost total, new session) first.
func releaseOpContext(c *OpContext) {
	pending := c.pending[:0]
	*c = OpContext{pending: pending}
	opCtxPool.Put(c)
}

// buildPipeline registers the per-op handler table and folds the interceptor
// chain. Called once from New; the table and chain are immutable afterwards.
// Names and functions live in one slice so the documented order can never
// drift from the executed one.
func (s *Server) buildPipeline() {
	s.registerHandlers()
	ics := []struct {
		name string
		ic   Interceptor
	}{
		{"proc-load", s.procLoadInterceptor},    // per-process op counters
		{"metrics", s.metricsInterceptor},       // per-op latency histogram + outcome counters
		{"events", s.eventInterceptor},          // uniform trace-event emission to observers
		{"status-map", s.statusInterceptor},     // uniform error→Status mapping + correlation ID
		{"inject", s.injectInterceptor},         // deterministic per-op fault injection
		{"region", s.regionInterceptor},         // refuse mutations owned by a down metadata region
		{"durability", s.durabilityInterceptor}, // journal sync cost on successful mutations
		{"notify", s.notifyInterceptor},         // queued volume/share push delivery on success
		{"session-guard", s.guardInterceptor},   // admission: no session, no service
		{"admit", s.admitInterceptor},           // per-op-class load shedding under overload
		{"cancel", s.cancelInterceptor},         // drop deadline-expired / client-abandoned work
	}
	wraps := make([]Interceptor, len(ics))
	for i, x := range ics {
		s.interceptorNames = append(s.interceptorNames, x.name)
		wraps[i] = x.ic
	}
	s.pipeline = chain(s.invoke, wraps...)
}

// InterceptorOrder reports the interceptor chain from outermost to
// innermost, for diagnostics and tests of ordering determinism.
func (s *Server) InterceptorOrder() []string {
	return append([]string(nil), s.interceptorNames...)
}

// invoke is the innermost stage: the handler-table lookup. Unregistered or
// out-of-range operations fail with the table default, ErrBadRequest.
func (s *Server) invoke(c *OpContext) (*protocol.Response, error) {
	op := int(c.Req.Op)
	if op >= len(s.handlers) || s.handlers[op] == nil {
		return nil, protocol.ErrBadRequest
	}
	return s.handlers[op](c)
}

// dispatch runs one request context through the pipeline. The status-map
// interceptor guarantees a non-nil response on every path.
func (s *Server) dispatch(c *OpContext) *protocol.Response {
	resp, err := s.pipeline(c)
	if resp == nil {
		// Unreachable past status-map; kept as a hard backstop so a broken
		// interceptor can never make the server write a nil frame.
		resp = fail(c.Req.ID, err)
	}
	return resp
}

// guardInterceptor rejects sessionless requests before any handler state is
// touched. The one exception is Authenticate dispatched via OpenSession —
// the only entry point that can hand the created session back to the
// transport. Rejected requests leave no trace event or metric: they were
// never admitted to the pipeline proper.
func (s *Server) guardInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		if c.Session == nil && !c.openSession {
			c.suppressEvent = true
			c.skipMetrics = true
			return nil, errSessionRequired
		}
		return next(c)
	}
}

// injectInterceptor is the deterministic per-op fault injector. It sits
// between status-map and notify: inside status-map, so an injected sentinel
// maps to its uniform wire status like any handler error; outside notify and
// the handler, so a failed request does no back-end work and pushes no
// notifications. The decision is a pure function of (plan Seed, user, op,
// virtual now) — no shared RNG — which is what keeps the failure stream
// reproducible for any fixed (Seed, Workers, Plan). The interceptor also
// folds the retry accounting: requests carrying a non-zero Attempt are
// retried traffic, and a retried request that comes back clean is a retry
// success.
func (s *Server) injectInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		if c.Req.Attempt > 0 {
			s.faultRetried.Inc()
		}
		if st, ok := s.cfg.Faults.Decide(c.User, c.Req.Op, c.Now); ok {
			c.preempted = true
			s.faultInjected.Inc()
			return nil, fmt.Errorf("%w: injected fault", st.Err())
		}
		resp, err := next(c)
		if err == nil && c.Req.Attempt > 0 {
			s.faultRetrySuccess.Inc()
		}
		return resp, err
	}
}

// journalsMutation reports whether the request's op class reaches the
// metadata journal: every metadata mutation, content commits (PutContent,
// and PutPart only when it carries the final part — earlier parts touch just
// the transient uploadjob, which is not journaled), and nothing on the read
// or session paths. Authenticate is excluded even though a first login
// provisions the account: account creation is the SSO tier's slow path, not
// a client-visible write the durability invariant covers.
func journalsMutation(req *protocol.Request) bool {
	switch req.Op {
	case protocol.OpMakeFile, protocol.OpMakeDir, protocol.OpUnlink,
		protocol.OpMove, protocol.OpCreateUDF, protocol.OpDeleteVolume,
		protocol.OpCreateShare, protocol.OpAcceptShare, protocol.OpPutContent:
		return true
	case protocol.OpPutPart:
		return req.Final
	}
	return false
}

// regionInterceptor refuses mutations whose owning metadata region is down
// with StatusUnavailable before any back-end work is spent — the API edge's
// view of regional failure, mirroring what the store's own write guard would
// return from deeper in the stack. It sits inside status-map (uniform
// error→status mapping) and before durability, so refused mutations are
// never charged a journal sync. Reads pass through untouched: the store
// routes them to a surviving region's replica. A passthrough in
// single-region deployments.
func (s *Server) regionInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		if s.regions != nil && c.Req.Volume != 0 && journalsMutation(c.Req) &&
			s.regions.WriteUnavailable(c.Req.Volume) {
			c.preempted = true
			s.regionRefused.Inc()
			return nil, fmt.Errorf("%w: metadata region down", protocol.ErrUnavailable)
		}
		return next(c)
	}
}

// durabilityInterceptor is the third cross-cutting family promised by the
// pipeline redesign: it prices the write-ahead journal into the request
// path. A successful mutating operation is charged the fsync policy's
// deterministic sync cost — a pure function of the policy, never of host
// disk speed, so fixed-seed runs stay reproducible — and counted. It sits
// inside status-map (it must see the raw handler error) and after inject, so
// preempted requests, which did no back-end work, are never charged.
func (s *Server) durabilityInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if err == nil && s.cfg.Durability && journalsMutation(c.Req) {
			c.Cost.Add(s.syncCost)
			s.walJournaled.Inc()
		}
		return resp, err
	}
}

// admitInterceptor sheds load per op class when the request's API process
// crossed its admission watermark — the §5.4 response to the DDoS storms,
// automated. It runs after the session guard (unauthenticated requests are
// rejected, not shed) and before cancel and the handler, so refused work
// charges no RPC cost. Authenticate dispatched through OpenSession has no
// process yet, so the per-process classes never cover it; the SSO-tier
// token bucket (Deps.SSO) does instead — a login storm drains the
// fleet-shared bucket and the excess is shed here with StatusOverloaded
// before the authentication back-end is touched.
func (s *Server) admitInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		if c.Req.Op == protocol.OpAuthenticate && s.deps.SSO != nil {
			if !s.deps.SSO.Admit(c.Now) {
				c.preempted = true
				s.faultSSOShed.Inc()
				return nil, fmt.Errorf("%w: sso admission", protocol.ErrOverloaded)
			}
		}
		if s.admission != nil && c.hasProc {
			if !s.admission.Admit(c.Event.Proc, c.Req.Op, c.Now) {
				c.preempted = true
				s.faultShed.Inc()
				return nil, fmt.Errorf("%w: load shed", protocol.ErrOverloaded)
			}
		}
		return next(c)
	}
}

// cancelInterceptor is the last gate before the handler: a request whose
// deadline has passed or whose client has abandoned the connection is
// dropped with ErrCancelled instead of doing back-end work nobody will read.
// It sits innermost — inside status-map, so the drop maps to the uniform
// StatusCancelled wire status, and after the session guard, so admission
// rules still apply first — and runs before the handler, so cancelled
// requests charge no RPC cost.
func (s *Server) cancelInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		if !c.Deadline.IsZero() && c.Now.After(c.Deadline) {
			c.preempted = true
			return nil, fmt.Errorf("%w: deadline exceeded", protocol.ErrCancelled)
		}
		if c.Aborted != nil && c.Aborted() {
			c.preempted = true
			return nil, fmt.Errorf("%w: client disconnected", protocol.ErrCancelled)
		}
		return next(c)
	}
}

// notifyInterceptor delivers the handler's queued notifications once the
// handler has succeeded; a failed operation must never push stale
// generations to watchers.
func (s *Server) notifyInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if err == nil {
			origin := c.Session
			if origin == nil {
				origin = c.newSession
			}
			for _, p := range c.pending {
				if p.share {
					s.notifyShare(origin, p.kind, p.info)
				} else {
					s.notifyVolume(origin, p.volume, p.gen)
				}
			}
		}
		return resp, err
	}
}

// statusInterceptor is the uniform error→Status mapping: a handler error
// becomes a bare failure response via protocol.StatusOf, and every response
// — success or failure — is stamped with the request's correlation ID. From
// here outwards the response is always non-nil and the error is consumed.
func (s *Server) statusInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if err != nil || resp == nil {
			resp = fail(c.Req.ID, err)
		} else {
			resp.ID = c.Req.ID
		}
		return resp, nil
	}
}

// eventInterceptor completes the in-flight Event with the final duration and
// status and emits it to the API observers, unless the operation suppressed
// its record (part streaming, job-opening uploads).
func (s *Server) eventInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if !c.suppressEvent {
			c.Event.Duration = c.Cost.Total()
			c.Event.Status = resp.Status
			s.emit(c.Event)
		}
		return resp, err
	}
}

// metricsInterceptor charges the completed operation to the fleet metrics:
// accumulated cost into the per-op histogram plus outcome counters.
// Preempted requests (cancelled, shed, injected) keep their outcome counters
// but stay out of the latency histogram — see OpContext.preempted.
func (s *Server) metricsInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if !c.skipMetrics {
			s.record(c.Req.Op, c.Cost.Total(), resp.Status, c.preempted)
		}
		return resp, err
	}
}

// procLoadInterceptor counts the request against its API process, once the
// process is known (sessions carry it; Authenticate assigns it).
func (s *Server) procLoadInterceptor(next Handler) Handler {
	return func(c *OpContext) (*protocol.Response, error) {
		resp, err := next(c)
		if c.hasProc {
			atomic.AddUint64(&s.procOps[c.Event.Proc], 1)
		}
		return resp, err
	}
}
