package apiserver

import (
	"testing"
	"time"

	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/metadata"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

var t0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

type fixture struct {
	srv    *Server
	store  *metadata.Store
	blob   *blob.Store
	auth   *auth.Service
	broker *notify.Broker
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		store:  metadata.New(metadata.Config{Shards: 4}),
		blob:   blob.New(blob.Config{}),
		auth:   auth.New(auth.Config{Seed: 1}),
		broker: notify.NewBroker(),
	}
	f.srv = New(Config{Name: "m", Procs: 2}, Deps{
		RPC:      rpc.NewServer(f.store, rpc.Config{Seed: 1}),
		Auth:     f.auth,
		Blob:     f.blob,
		Broker:   f.broker,
		Transfer: blob.DefaultTransferModel(),
	})
	return f
}

func (f *fixture) session(t *testing.T, user protocol.UserID) *Session {
	t.Helper()
	token, err := f.auth.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	sess, resp, _ := f.srv.OpenSession(token, nil, t0)
	if resp.Status != protocol.StatusOK || sess == nil {
		t.Fatalf("open session: %v", resp.Status)
	}
	return sess
}

func (f *fixture) rootOf(t *testing.T, sess *Session) protocol.VolumeID {
	t.Helper()
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
	if resp.Status != protocol.StatusOK || len(resp.Volumes) == 0 {
		t.Fatalf("list volumes: %+v", resp)
	}
	return resp.Volumes[0].ID
}

func TestOpenSessionBadToken(t *testing.T) {
	f := newFixture(t)
	sess, resp, _ := f.srv.OpenSession("nope", nil, t0)
	if sess != nil || resp.Status != protocol.StatusAuthFailed {
		t.Errorf("sess=%v status=%v", sess, resp.Status)
	}
}

func TestHandleWithoutSession(t *testing.T) {
	f := newFixture(t)
	resp, _ := f.srv.Handle(nil, &protocol.Request{Op: protocol.OpPing}, t0)
	if resp.Status != protocol.StatusAuthFailed {
		t.Errorf("status = %v", resp.Status)
	}
}

func TestTokenCacheSkipsAuthService(t *testing.T) {
	f := newFixture(t)
	token, _ := f.auth.Issue(9)
	f.srv.OpenSession(token, nil, t0)
	before := f.auth.Stats().Validated
	// Second session with the same token within the TTL: served from cache.
	sess, resp, _ := f.srv.OpenSession(token, nil, t0.Add(time.Minute))
	if resp.Status != protocol.StatusOK || sess == nil {
		t.Fatal("cached auth failed")
	}
	if f.auth.Stats().Validated != before {
		t.Error("cached token must not hit the auth service")
	}
}

// TestUploadStateMachine walks the Fig. 17 lifecycle explicitly: PutContent
// (dedup miss) → uploadjob + multipart id → parts → final part commits
// content, deletes the job and stores the blob.
func TestUploadStateMachine(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 1)
	root := f.rootOf(t, sess)

	mk, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpMakeFile, Volume: root, Name: "big.iso"}, t0)
	if mk.Status != protocol.StatusOK {
		t.Fatal(mk.Status)
	}
	h := protocol.HashBytes([]byte("iso"))
	const size = 12 << 20 // 3 parts

	put, _ := f.srv.Handle(sess, &protocol.Request{
		Op: protocol.OpPutContent, Volume: root, Node: mk.Node.ID,
		Name: "big.iso", Hash: h, Size: size,
	}, t0)
	if put.Status != protocol.StatusOK || put.Reused || put.Upload == 0 {
		t.Fatalf("put = %+v", put)
	}
	// The uploadjob exists with the multipart id set.
	job, err := f.store.GetUploadJob(1, put.Upload)
	if err != nil || job.MultipartID == "" {
		t.Fatalf("job = %+v err=%v", job, err)
	}

	for i := 0; i < 3; i++ {
		partSize := uint64(5 << 20)
		if i == 2 {
			partSize = 2 << 20
		}
		resp, _ := f.srv.Handle(sess, &protocol.Request{
			Op: protocol.OpPutPart, Upload: put.Upload,
			Part: uint32(i), Size: partSize, Final: i == 2,
		}, t0.Add(time.Duration(i)*time.Second))
		if resp.Status != protocol.StatusOK {
			t.Fatalf("part %d: %v", i, resp.Status)
		}
		if i == 2 && resp.Node.Hash != h {
			t.Errorf("final response node = %+v", resp.Node)
		}
	}

	// Job gone (dal.delete_uploadjob on commit), blob committed.
	if _, err := f.store.GetUploadJob(1, put.Upload); err == nil {
		t.Error("uploadjob should be deleted after commit")
	}
	if got, err := f.blob.HeadObject(h.Hex()); err != nil || got != size {
		t.Errorf("blob = %d, %v", got, err)
	}
	if bs := f.blob.Stats(); bs.MultipartCompleted != 1 || bs.PartsUploaded != 3 {
		t.Errorf("blob stats = %+v", bs)
	}
}

func TestUploadSmallFileSkipsMultipart(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 2)
	root := f.rootOf(t, sess)
	mk, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpMakeFile, Volume: root, Name: "s.txt"}, t0)
	h := protocol.HashBytes([]byte("small"))
	put, _ := f.srv.Handle(sess, &protocol.Request{
		Op: protocol.OpPutContent, Volume: root, Node: mk.Node.ID, Name: "s.txt", Hash: h, Size: 100,
	}, t0)
	resp, _ := f.srv.Handle(sess, &protocol.Request{
		Op: protocol.OpPutPart, Upload: put.Upload, Part: 0, Size: 100, Final: true,
	}, t0)
	if resp.Status != protocol.StatusOK {
		t.Fatal(resp.Status)
	}
	if bs := f.blob.Stats(); bs.MultipartCreated != 0 || bs.Puts != 1 {
		t.Errorf("small upload should use a single put: %+v", bs)
	}
}

func TestPutPartWrongSession(t *testing.T) {
	f := newFixture(t)
	sess1 := f.session(t, 3)
	sess2 := f.session(t, 4)
	root := f.rootOf(t, sess1)
	mk, _ := f.srv.Handle(sess1, &protocol.Request{Op: protocol.OpMakeFile, Volume: root, Name: "f"}, t0)
	put, _ := f.srv.Handle(sess1, &protocol.Request{
		Op: protocol.OpPutContent, Volume: root, Node: mk.Node.ID, Name: "f",
		Hash: protocol.HashBytes([]byte("z")), Size: 10,
	}, t0)
	// Another session cannot feed parts into someone else's upload.
	resp, _ := f.srv.Handle(sess2, &protocol.Request{
		Op: protocol.OpPutPart, Upload: put.Upload, Size: 10, Final: true,
	}, t0)
	if resp.Status != protocol.StatusNotFound {
		t.Errorf("status = %v", resp.Status)
	}
}

func TestCloseSessionAbandonsUploads(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 5)
	root := f.rootOf(t, sess)
	mk, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpMakeFile, Volume: root, Name: "f"}, t0)
	put, _ := f.srv.Handle(sess, &protocol.Request{
		Op: protocol.OpPutContent, Volume: root, Node: mk.Node.ID, Name: "f",
		Hash: protocol.HashBytes([]byte("q")), Size: 10,
	}, t0)
	f.srv.CloseSession(sess, t0)
	if f.srv.SessionCount() != 0 {
		t.Error("session should be gone")
	}
	// The pending upload is dropped server-side; the uploadjob row stays
	// for the weekly GC.
	sess2 := f.session(t, 5)
	resp, _ := f.srv.Handle(sess2, &protocol.Request{
		Op: protocol.OpPutPart, Upload: put.Upload, Size: 10, Final: true,
	}, t0)
	if resp.Status != protocol.StatusNotFound {
		t.Errorf("resumed part status = %v", resp.Status)
	}
	if _, err := f.store.GetUploadJob(5, put.Upload); err != nil {
		t.Error("uploadjob row should await GC")
	}
}

func TestGetDeltaRescanFallback(t *testing.T) {
	store := metadata.New(metadata.Config{Shards: 2, DeltaLogLimit: 8})
	f := &fixture{
		store:  store,
		blob:   blob.New(blob.Config{}),
		auth:   auth.New(auth.Config{Seed: 1}),
		broker: notify.NewBroker(),
	}
	f.srv = New(Config{Name: "m", Procs: 2}, Deps{
		RPC:      rpc.NewServer(store, rpc.Config{Seed: 1}),
		Auth:     f.auth,
		Blob:     f.blob,
		Broker:   f.broker,
		Transfer: blob.DefaultTransferModel(),
	})
	sess := f.session(t, 6)
	root := f.rootOf(t, sess)
	for i := 0; i < 40; i++ {
		f.srv.Handle(sess, &protocol.Request{Op: protocol.OpMakeDir, Volume: root, Name: string(rune('a' + i))}, t0)
	}
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.OpGetDelta, Volume: root, FromGen: 0}, t0)
	if resp.Status != protocol.StatusOK || !resp.Rescan {
		t.Fatalf("resp = status %v rescan %v", resp.Status, resp.Rescan)
	}
	if len(resp.Deltas) != 41 { // 40 dirs + volume root
		t.Errorf("rescan deltas = %d", len(resp.Deltas))
	}
}

func TestNotificationFanOut(t *testing.T) {
	f := newFixture(t)
	var got []*protocol.Push
	token, _ := f.auth.Issue(7)
	sess1, _, _ := f.srv.OpenSession(token, nil, t0)
	sess2, _, _ := f.srv.OpenSession(token, PusherFunc(func(p *protocol.Push) { got = append(got, p) }), t0)
	_ = sess2
	root := f.rootOf(t, sess1)
	f.srv.Handle(sess1, &protocol.Request{Op: protocol.OpMakeDir, Volume: root, Name: "d"}, t0)
	if len(got) != 1 || got[0].Event != protocol.PushVolumeChanged {
		t.Fatalf("pushes = %+v", got)
	}
	// The origin session never hears its own change: sess1 has no pusher
	// anyway, but the exclusion is what keeps echo out.
	if got[0].Volume != root {
		t.Errorf("push volume = %v", got[0].Volume)
	}
}

func TestExtOf(t *testing.T) {
	cases := map[string]string{
		"song.MP3":               "mp3",
		"archive.tar":            "tar",
		"noext":                  "",
		"weird.withaverylongext": "",
		".hidden":                "hidden",
	}
	for in, want := range cases {
		if got := extOf(in); got != want {
			t.Errorf("extOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUnknownOpRejected(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 8)
	resp, _ := f.srv.Handle(sess, &protocol.Request{Op: protocol.Op(200)}, t0)
	if resp.Status != protocol.StatusBadRequest {
		t.Errorf("status = %v", resp.Status)
	}
}

func TestProcOpsAccounting(t *testing.T) {
	f := newFixture(t)
	sess := f.session(t, 9)
	for i := 0; i < 10; i++ {
		f.srv.Handle(sess, &protocol.Request{Op: protocol.OpPing}, t0)
	}
	var total uint64
	for _, n := range f.srv.ProcOps() {
		total += n
	}
	if total < 11 { // auth + pings
		t.Errorf("proc ops = %d", total)
	}
}
