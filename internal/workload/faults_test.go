package workload

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"u1/internal/client"
	"u1/internal/faults"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/trace"
)

// faultRun generates a small trace against a cluster with the given fault
// plan and returns everything the determinism contract pins: the totals, the
// per-user op streams (each user's ordered (kind, op, status) sequence), the
// record count, and the cluster's fault counters.
func faultRun(t *testing.T, workers int, plan *faults.Plan, retry client.Retry) (Totals, int, map[uint64][]string, metrics.Snapshot) {
	t.Helper()
	cluster := server.NewCluster(server.Config{Seed: 3, FaultPlan: plan})
	col := trace.NewCollector(trace.Config{Start: PaperStart, Days: 2, Shards: cluster.Store.NumShards(), Seed: 3})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())
	g := New(Config{Users: 120, Days: 2, Start: PaperStart, Seed: 3, Workers: workers,
		Attacks: []Attack{}, Retry: retry}, cluster)
	g.Run()
	streams := make(map[uint64][]string)
	for _, r := range col.Records() {
		streams[r.User] = append(streams[r.User],
			fmt.Sprintf("%d/%d/%d", r.Kind, r.Op, r.Status))
	}
	return g.Totals(), col.Len(), streams, cluster.Metrics.Snapshot()
}

// TestFaultPlanDeterministicAcrossRuns pins the injection contract at both
// ends of the worker range: the same (Seed, Workers, FaultPlan) reproduces
// the same injected-failure count and the same per-user op streams —
// including the retried requests the failures provoke — regardless of
// goroutine interleaving.
func TestFaultPlanDeterministicAcrossRuns(t *testing.T) {
	plan := faults.Uniform(11, 0.05)
	retry := client.Retry{Max: 2, Backoff: 2 * time.Second}
	for _, workers := range []int{1, 4} {
		t1, n1, s1, m1 := faultRun(t, workers, plan, retry)
		t2, n2, s2, m2 := faultRun(t, workers, plan, retry)
		if t1 != t2 {
			t.Errorf("workers=%d: totals differ:\n%+v\n%+v", workers, t1, t2)
		}
		if n1 != n2 {
			t.Errorf("workers=%d: record counts differ: %d vs %d", workers, n1, n2)
		}
		for _, key := range []string{"injected", "retried", "retry_succeeded"} {
			a, b := m1.Counters[metrics.FaultsPrefix+key], m2.Counters[metrics.FaultsPrefix+key]
			if a != b {
				t.Errorf("workers=%d: faults.%s differs: %d vs %d", workers, key, a, b)
			}
		}
		if !reflect.DeepEqual(s1, s2) {
			for user := range s1 {
				if !reflect.DeepEqual(s1[user], s2[user]) {
					t.Errorf("workers=%d: user %d op stream differs:\n%v\n%v",
						workers, user, s1[user], s2[user])
					break
				}
			}
		}
		if m1.Counters[metrics.FaultsPrefix+"injected"] == 0 {
			t.Errorf("workers=%d: plan injected nothing; the contract was not exercised", workers)
		}
		if m1.Counters[metrics.FaultsPrefix+"retried"] == 0 {
			t.Errorf("workers=%d: no retries arrived; the retry path was not exercised", workers)
		}
	}
}

// TestZeroValueFaultPlanPreservesGolden pins behavior preservation: a
// zero-value plan threaded through the whole stack (and a zero retry
// policy) reproduces the failure-free pre-fault golden totals and record
// counts bit-for-bit at Workers=1 — injection off means nothing changed.
func TestZeroValueFaultPlanPreservesGolden(t *testing.T) {
	golden := []struct {
		users, days int
		seed        int64
		want        Totals
		records     int
	}{
		{80, 2, 42, Totals{Users: 80, Sessions: 145, Uploads: 28, Deletes: 9}, 1045},
		{150, 3, 11, Totals{Users: 150, Sessions: 448, Uploads: 252, Downloads: 90, Deletes: 40}, 3712},
	}
	for _, c := range golden {
		cluster := server.NewCluster(server.Config{Seed: c.seed, FaultPlan: &faults.Plan{}})
		col := trace.NewCollector(trace.Config{Start: PaperStart, Days: c.days, Shards: cluster.Store.NumShards(), Seed: c.seed})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		g := New(Config{Users: c.users, Days: c.days, Start: PaperStart, Seed: c.seed,
			Workers: 1, Attacks: []Attack{}}, cluster)
		g.Run()
		if got := g.Totals(); got != c.want {
			t.Errorf("users=%d seed=%d: totals = %+v, want golden %+v", c.users, c.seed, got, c.want)
		}
		if col.Len() != c.records {
			t.Errorf("users=%d seed=%d: %d records, want golden %d", c.users, c.seed, col.Len(), c.records)
		}
		snap := cluster.Metrics.Snapshot()
		for _, key := range []string{"injected", "shed", "retried"} {
			if n := snap.Counters[metrics.FaultsPrefix+key]; n != 0 {
				t.Errorf("zero-value plan produced faults.%s = %d", key, n)
			}
		}
	}
}

// TestFaultPlanShiftsErrorsIntoTrace sanity-checks the end-to-end thread: a
// uniform plan at a visible rate surfaces as non-OK storage records in the
// collected trace, the raw material of the error-rate-by-op-class analysis.
func TestFaultPlanShiftsErrorsIntoTrace(t *testing.T) {
	_, _, streams, snap := faultRun(t, 1, faults.Uniform(7, 0.05), client.Retry{})
	var failed int
	for _, ops := range streams {
		for _, sig := range ops {
			var kind, op, status int
			fmt.Sscanf(sig, "%d/%d/%d", &kind, &op, &status)
			if status != 0 {
				failed++
			}
		}
	}
	if failed == 0 {
		t.Error("no failed records in the trace despite 5% injection")
	}
	if snap.Counters[metrics.FaultsPrefix+"injected"] == 0 {
		t.Error("injection counter never fired")
	}
}
