package workload

import (
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"u1/internal/client"
	"u1/internal/dist"
	"u1/internal/metadata"
	"u1/internal/protocol"
	"u1/internal/server"
	"u1/internal/sim"
)

// Config parameterizes a trace generation run.
type Config struct {
	// Users is the population size (the paper traced 1.29M; the default
	// simulation scale is 1/500 of that region — 2000).
	Users int
	// Days is the trace window length (the paper: 30).
	Days int
	// Start is the first trace instant (the paper: 2014-01-11 00:00 UTC).
	Start time.Time
	// Seed drives all generator randomness.
	Seed int64
	// Workers is the number of parallel generator shards, each a
	// single-threaded event loop owning a stable subset of the population
	// (0 → GOMAXPROCS). Workers=1 reproduces the serial generator's event
	// stream bit-for-bit; any fixed (Seed, Workers) reproduces the same
	// Totals and per-user op streams regardless of goroutine interleaving.
	Workers int
	// Epoch bounds cross-shard virtual-clock skew under Workers > 1
	// (0 → sim.DefaultEpoch). Ignored semantically at Workers=1.
	Epoch time.Duration
	// EpochAdapt, when non-nil, lets the engine resize the epoch between
	// barriers based on observed event density (see sim.EpochAdaptation).
	// Deterministic for a fixed config but a different trajectory than a
	// pinned epoch, so it is nil — pinned — by default and for all golden
	// runs.
	EpochAdapt *sim.EpochAdaptation
	// Profile overrides the calibrated defaults.
	Profile *Profile
	// Attacks injects DDoS events; nil means DefaultAttacks. Use an empty
	// non-nil slice for an attack-free trace.
	Attacks []Attack
	// Retry is the per-client retry policy for transient per-op failures
	// (the behavior injected faults exercise). The zero value disables
	// retries, preserving the failure-free trace bit-for-bit.
	Retry client.Retry
	// ReconnectBackoff, when nonzero, makes a failed connection retry after
	// this backoff (plus a small per-user deterministic jitter) instead of
	// waiting for a fresh arrival draw — real desktop-client behavior, and
	// the knob that turns a server-side outage window into a post-recovery
	// thundering herd of reconnects. Zero preserves the original
	// reschedule-on-next-arrival behavior bit-for-bit.
	ReconnectBackoff time.Duration
	// LowMem shrinks per-user resident state for very large populations
	// (the million-user scale campaign): users draw from 8-byte splitmix64
	// sources instead of ~5 KB math/rand lagged-Fibonacci sources, and a
	// user's client — with its per-volume mirrors, the dominant per-user
	// heap after the RNG — is released on disconnect and rebuilt on the
	// next connection (the reconnect re-syncs from scratch, like a fresh
	// device). Both change the generated streams relative to the default
	// configuration, so LowMem runs are not comparable with the committed
	// goldens; determinism for a fixed (Seed, Workers, LowMem) still holds.
	LowMem bool
}

// PaperStart is the first day of the original trace (January 11, 2014).
var PaperStart = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

// Totals summarizes a generation run.
type Totals struct {
	Users          int
	Sessions       uint64
	FailedAuths    uint64
	Uploads        uint64
	Downloads      uint64
	Deletes        uint64
	AttackSessions uint64
}

// add merges per-shard totals into the run summary.
func (t *Totals) add(o Totals) {
	t.Sessions += o.Sessions
	t.FailedAuths += o.FailedAuths
	t.Uploads += o.Uploads
	t.Downloads += o.Downloads
	t.Deletes += o.Deletes
	t.AttackSessions += o.AttackSessions
}

// genShard is the per-shard generator state: one single-threaded event loop
// plus every mutable source the serial generator used to share. Each user is
// pinned to one shard; a shard's state is only ever touched from its own
// event goroutine, so shards need no locks and each shard's stream is
// deterministic in isolation.
type genShard struct {
	eng  *sim.Engine
	prof *Profile
	// zipf and bigZipf draw popular-content ranks. Per-shard streams seeded
	// from (Seed, shard) keep draws lock-free and reproducible; shard 0
	// carries the legacy stream so Workers=1 matches the serial generator.
	zipf    *dist.Zipf
	bigZipf *dist.Zipf
	// users lists the shard's population in global creation order (share
	// targets are drawn from here, keeping cross-user interactions inside
	// the shard's deterministic event order).
	users  []*user
	totals Totals
	// names interns the rare file names outside the synthetic grammar, so a
	// fileRef never carries a heap string; nameIdx is its reverse map, built
	// lazily (both stay empty on the default profile's grammar). Per-shard
	// tables keep interning lock-free under parallel generation.
	names   []string
	nameIdx map[string]uint32
}

// internName returns name's index in the shard's intern table, adding it on
// first sight.
func (sh *genShard) internName(name string) uint32 {
	if i, ok := sh.nameIdx[name]; ok {
		return i
	}
	if sh.nameIdx == nil {
		sh.nameIdx = make(map[string]uint32)
	}
	i := uint32(len(sh.names))
	sh.names = append(sh.names, name)
	sh.nameIdx[name] = i
	return i
}

// Generator drives the synthetic population.
type Generator struct {
	cfg  Config
	prof *Profile
	c    *server.Cluster
	se   *sim.ShardedEngine
	end  time.Time

	// rng is the population-build source. It is only drawn from during the
	// serial setup phase of Run (class assignment), never from shard events.
	rng *rand.Rand

	shards []*genShard
	users  []*user
	totals Totals

	// nextPump and nextGC track the cluster-wide cadence work run at epoch
	// boundaries when Workers > 1 (at Workers=1 the cadences are ordinary
	// shard-0 events, preserving the serial stream).
	nextPump time.Time
	nextGC   time.Time
}

// user is the per-account simulation state.
type user struct {
	id     protocol.UserID
	sh     *genShard
	class  Class
	par    *classParams
	weight float64
	token  [16]byte // raw auth token; hex-encoded at connect time
	rng    *urng

	cli     *client.Client
	online  bool
	udfs    int
	maxUDFs int
	seq     uint64 // unique content counter
	// sizeBias scales this user's file sizes: the heaviest users are the
	// ones storing large media/datasets, which concentrates traffic into
	// the top percentile (Fig. 7c).
	sizeBias float64
	// rateBoost raises session frequency for heavy users.
	rateBoost float64
	// recentCap bounds the working set; heavy users churn over much larger
	// sets (a whale's operations spread over thousands of files, not 64).
	recentCap int

	// recent remembers recently created files for recency-biased deletes,
	// updates and sync-back downloads.
	recent []fileRef
	// files is the ordered list of live files the user knows about; picks
	// draw from it deterministically (map iteration order never leaks into
	// the simulation).
	files []fileRef
	// udfVols lists the user's UDF volumes in creation order (nil until the
	// first UDF exists).
	udfVols []protocol.VolumeID
	// dirs lists upload target directories per volume. The map materializes
	// lazily on the first directory creation — most of a large population
	// never makes one, and a million empty maps are real memory.
	dirs map[protocol.VolumeID][]protocol.NodeID
}

// addDir records a new upload-target directory, materializing the per-user
// map on first use. Readers treat a nil map and a missing key identically,
// so laziness never shows up in behavior.
func (u *user) addDir(vol protocol.VolumeID, id protocol.NodeID) {
	if u.dirs == nil {
		u.dirs = make(map[protocol.VolumeID][]protocol.NodeID, 1)
	}
	u.dirs[vol] = append(u.dirs[vol], id)
}

// fileRef identifies one live file in a user's working set, compactly. Every
// name the generator produces follows the synthetic grammar —
// "f<uid>-<seq>[.<ext>]" for uploads and preseeds, "m<uid>-<seq>" for moves —
// so the name lives as two integers plus a catalog index for the suffix
// instead of a heap string, and the extension profile is likewise a catalog
// index instead of a pointer: 40 bytes per ref, nothing on the heap. A name
// outside the grammar (possible only under a custom profile) falls back to
// the owning shard's intern table (kind 0, seq = table index). At a million
// users the files/recent slices are the bulk of generator-owned state, which
// is what this representation is for.
type fileRef struct {
	vol     protocol.VolumeID
	node    protocol.NodeID
	parent  protocol.NodeID
	uid     uint32 // user id embedded in the name
	seq     uint32 // per-user sequence embedded in the name
	ext     uint16 // catalog index of the extension profile
	nameExt uint16 // catalog index of the name's suffix ("" entry = none)
	kind    uint8  // name grammar: 'f', 'm', or 0 = interned irregular name
}

// fileName reconstructs the node name byte-for-byte as it was created.
func (f fileRef) fileName(sh *genShard) string {
	if f.kind == 0 {
		return sh.names[f.seq]
	}
	name := fmt.Sprintf("%c%d-%d", f.kind, f.uid, f.seq)
	if ext := sh.prof.Extensions[f.nameExt].Ext; ext != "" {
		name += "." + ext
	}
	return name
}

// extProfile resolves the file's extension profile from the catalog.
func (f fileRef) extProfile(sh *genShard) *ExtProfile {
	return &sh.prof.Extensions[f.ext]
}

// fileRefFor compacts a node name (typically read back from a mirror) into a
// fileRef: grammar names pack into integers, anything else interns whole.
// The extension profile follows ExtByName(extFromName(name)) semantics.
func (sh *genShard) fileRefFor(vol protocol.VolumeID, node, parent protocol.NodeID, name string) fileRef {
	f := fileRef{vol: vol, node: node, parent: parent}
	if uid, seq, suffix, kind, ok := parseSyntheticName(name); ok {
		if idx, found := sh.prof.extIndexByName(suffix); found {
			f.uid, f.seq, f.kind = uid, seq, kind
			f.nameExt, f.ext = idx, idx
			return f
		}
	}
	f.kind = 0
	f.seq = sh.internName(name)
	f.ext = sh.prof.extIndexLoose(extFromName(name))
	return f
}

// parseSyntheticName splits a grammar name into its numeric parts and suffix.
// Reconstruction must be exact, so digit runs with leading zeros (which
// fmt.Sprintf never emits) and out-of-range values are rejected.
func parseSyntheticName(name string) (uid, seq uint32, suffix string, kind uint8, ok bool) {
	if len(name) < 4 || (name[0] != 'f' && name[0] != 'm') {
		return 0, 0, "", 0, false
	}
	kind = name[0]
	rest := name[1:]
	uid64, n := parseUint32Prefix(rest)
	if n == 0 || n >= len(rest) || rest[n] != '-' {
		return 0, 0, "", 0, false
	}
	rest = rest[n+1:]
	seq64, n := parseUint32Prefix(rest)
	if n == 0 {
		return 0, 0, "", 0, false
	}
	rest = rest[n:]
	if rest != "" {
		if rest[0] != '.' {
			return 0, 0, "", 0, false
		}
		suffix = rest[1:]
		if suffix == "" {
			return 0, 0, "", 0, false // "f1-2." would rebuild as "f1-2"
		}
	}
	return uid64, seq64, suffix, kind, true
}

// parseUint32Prefix parses the leading canonical (no leading zero) decimal
// run of s, returning the value and the number of bytes consumed (0 = no
// canonical run, or overflow).
func parseUint32Prefix(s string) (uint32, int) {
	var v uint64
	var n int
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		v = v*10 + uint64(s[n]-'0')
		if v > math.MaxUint32 {
			return 0, 0
		}
		n++
	}
	if n == 0 || (s[0] == '0' && n > 1) {
		return 0, 0
	}
	return uint32(v), n
}

// shardSeed derives a per-shard seed for a generator random source. Shard 0
// keeps the legacy seed+base stream so Workers=1 reproduces the pre-shard
// serial generator bit-for-bit; higher shards scramble (seed+base, shard)
// through splitmix64 so nearby seeds do not alias across shards (the rpc
// tier's per-proc idiom).
func shardSeed(seed, base int64, shard int) int64 {
	if shard == 0 {
		return seed + base
	}
	return int64(dist.Splitmix64(uint64(seed+base) + uint64(shard)*dist.Splitmix64Gamma))
}

// New creates a generator bound to a cluster. The generator owns its sharded
// event engine, sized by cfg.Workers; Engine exposes it for event counting.
func New(cfg Config, c *server.Cluster) *Generator {
	if cfg.Users <= 0 {
		cfg.Users = 2000
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	if cfg.Start.IsZero() {
		cfg.Start = PaperStart
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Profile == nil {
		cfg.Profile = DefaultProfile()
	}
	if cfg.Attacks == nil {
		cfg.Attacks = DefaultAttacks()
	}
	g := &Generator{
		cfg:  cfg,
		prof: cfg.Profile,
		c:    c,
		se:   sim.NewSharded(cfg.Start, cfg.Workers, cfg.Epoch),
		end:  cfg.Start.Add(time.Duration(cfg.Days) * 24 * time.Hour),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.EpochAdapt != nil {
		g.se.AdaptEpoch(*cfg.EpochAdapt)
	}
	zipfN := g.prof.ZipfN
	if zipfN == 0 {
		// Auto-scale the content universe with the population so the dedup
		// ratio stays near the paper's 0.171 at any simulation scale.
		zipfN = uint64(cfg.Users) * 3 / 2
		if zipfN < 500 {
			zipfN = 500
		}
	}
	bigN := uint64(cfg.Users) / 8
	if bigN < 60 {
		bigN = 60
	}
	g.shards = make([]*genShard, g.se.NumShards())
	for i := range g.shards {
		g.shards[i] = &genShard{
			eng:  g.se.Shard(i),
			prof: g.prof,
			zipf: dist.NewZipf(rand.New(rand.NewSource(
				shardSeed(cfg.Seed, 7, i))), g.prof.ZipfS, zipfN),
			bigZipf: dist.NewZipf(rand.New(rand.NewSource(
				shardSeed(cfg.Seed, 13, i))), 1.25, bigN),
		}
	}
	return g
}

// userSource builds one user's random source: the legacy ~5 KB math/rand
// source whose streams the committed goldens pin, or the 8-byte splitmix64
// source under LowMem.
func (g *Generator) userSource(seed int64) rand.Source {
	if g.cfg.LowMem {
		return dist.NewSplitmixSource(seed)
	}
	return rand.NewSource(seed)
}

// Engine returns the generator's sharded event engine (event counts,
// epoch-boundary hooks).
func (g *Generator) Engine() *sim.ShardedEngine { return g.se }

// Totals returns the run summary.
func (g *Generator) Totals() Totals { return g.totals }

// Run builds the population, schedules everything and drains the engine. It
// returns the run totals.
//
// Population build and scheduling are serial (a pure function of Seed, in
// global user order); only the event drain is parallel. Each user's events
// run on the shard owning it, so the per-user op stream is a function of
// (Seed, Workers) alone, and the merged Totals are reproducible regardless
// of how shard goroutines interleave.
func (g *Generator) Run() Totals {
	g.users = make([]*user, g.cfg.Users)
	for i := range g.users {
		u := &user{
			id:    protocol.UserID(i + 1),
			class: PickClass(g.rng),
			rng:   newURng(g.cfg.Seed+int64(i)*7919, g.cfg.LowMem),
		}
		u.sh = g.shards[g.se.ShardFor(uint64(u.id))]
		u.sh.users = append(u.sh.users, u)
		u.par = params(u.class)
		u.weight = u.par.weight.Sample(u.rng)
		u.sizeBias = clamp(math.Pow(u.weight, 0.4), 0.5, 4)
		u.rateBoost = clamp(math.Pow(u.weight, 0.45), 1, 8)
		u.recentCap = int(clamp(64*math.Sqrt(u.weight), 64, 2048))
		// 58% of users create at least one UDF (§6.3).
		if u.rng.Float64() < 0.58 {
			u.maxUDFs = 1 + u.rng.Intn(4)
		}
		token, err := g.c.Auth.Issue(u.id)
		if err != nil {
			panic(fmt.Sprintf("workload: issuing token: %v", err))
		}
		// Retain the raw 16 bytes, not the 32-byte hex string: a heap
		// string per user is real memory at a million users.
		if _, err := hex.Decode(u.token[:], []byte(token)); err != nil {
			panic(fmt.Sprintf("workload: decoding token: %v", err))
		}
		g.preseed(u)
		g.users[i] = u
		g.scheduleNextSession(u, g.cfg.Start)
	}
	g.totals.Users = len(g.users)

	for _, a := range g.cfg.Attacks {
		g.scheduleAttack(a)
	}

	g.wireReplication()

	// Broker deliveries and uploadjob GC happen on their production cadence:
	// as ordinary shard-0 events at Workers=1 (bit-for-bit the serial
	// stream), as serialized epoch-boundary work under parallel shards —
	// cluster-wide sweeps must not run concurrently with shard events.
	if g.se.NumShards() == 1 {
		g.schedulePump()
		g.scheduleGC()
	} else {
		g.nextPump = g.cfg.Start.Add(10 * time.Minute)
		g.nextGC = g.cfg.Start.Add(24 * time.Hour)
		// A sentinel event parks the final epoch at the window end: epochs
		// only advance while events remain, and without it a population that
		// goes quiet early would strand the trailing cadences below.
		g.se.Shard(0).At(g.end, func() {})
		g.se.AtEpochEnd(g.runCadences)
	}

	g.se.Run()
	for _, sh := range g.shards {
		g.totals.add(sh.totals)
	}
	return g.totals
}

// preseed provisions the files a user accumulated before the trace window
// (half of U1's 137M files predate the month; download-only users in
// particular consume content uploaded earlier or from other devices). The
// writes go straight to the metadata and data stores, leaving no trace
// records — exactly like pre-window history.
func (g *Generator) preseed(u *user) {
	var k int
	switch u.class {
	case Occasional:
		k = u.rng.Intn(9)
	case UploadOnly:
		k = 3 + u.rng.Intn(18)
	case DownloadOnly:
		k = 30 + u.rng.Intn(120)
	default: // Heavy
		k = 20 + u.rng.Intn(100)
	}
	if k == 0 {
		return
	}
	store := g.c.Store
	root, err := store.CreateUser(u.id)
	if err != nil {
		return
	}
	for i := 0; i < k; i++ {
		ext := g.prof.PickExtension(u.rng)
		size := sampleSize(ext, u.rng)
		h := g.pickHash(u, &ext, &size)
		u.seq++
		name := fmt.Sprintf("f%d-%d", u.id, u.seq)
		if ext.Ext != "" {
			name += "." + ext.Ext
		}
		node, err := store.MakeFile(u.id, root.ID, 0, name)
		if err != nil {
			continue
		}
		if _, _, _, err := store.MakeContent(u.id, root.ID, node.ID, h, size); err != nil {
			continue
		}
		g.c.Blob.PutObjectSized(h.Hex(), size)
	}
}

// pickHash draws content identity: popular Zipf content (with its
// deterministic extension and size) or unique content. Large candidate
// files get their own popular universe — everyone stores the same albums,
// movies and installers, which is where the byte-level dedup savings of
// §5.3 come from. Popularity ranks come from the user's shard-local Zipf
// sources, so concurrent shards never contend (or race) on one stream.
func (g *Generator) pickHash(u *user, ext **ExtProfile, size *uint64) protocol.Hash {
	if *size > 5<<20 && u.rng.Float64() < 0.35 {
		rank := u.sh.bigZipf.Rank()
		popRng := rand.New(g.userSource(int64(rank) * 31))
		*ext = g.prof.ExtByName(bigContentExts[popRng.Intn(len(bigContentExts))])
		*size = uint64(dist.LognormalFromMedian(25<<20, 3).Sample(popRng))
		return protocol.HashBytes([]byte(fmt.Sprintf("popbig-%d", rank)))
	}
	if u.rng.Float64() < g.prof.PopularContentP {
		rank := u.sh.zipf.Rank()
		popRng := rand.New(g.userSource(int64(rank)))
		*ext = g.prof.PickPopularExtension(popRng)
		*size = sampleSize(*ext, popRng)
		return protocol.HashBytes([]byte(fmt.Sprintf("pop-%d", rank)))
	}
	u.seq++
	return protocol.HashBytes([]byte(fmt.Sprintf("u%d-c%d", u.id, u.seq)))
}

// bigContentExts are the types of widely duplicated large contents.
var bigContentExts = []string{"mp4", "avi", "mkv", "zip", "tar", "mp3"}

// wireReplication drives the store's cross-region replication off the
// engine's mailbox barrier. One pump mailbox (registered first, so it drains
// first) opens the replication tick, collects every published batch and posts
// it into its destination region's mailbox; the per-region mailboxes ingest
// their batches in a later round of the same barrier and apply whatever has
// aged past the replication delay. All of it runs in the canonical drain
// order, so replication state is a pure function of (Seed, Workers, Regions).
// A no-op for single-region clusters — no mailboxes register and the goldens
// are untouched.
func (g *Generator) wireReplication() {
	st := g.c.Store
	if !st.ReplicationEnabled() {
		return
	}
	boxes := make([]sim.MailboxID, st.Regions())
	g.se.AtEpochEnd(func(_ time.Time) {
		st.BeginReplicationEpoch()
		for _, b := range st.CollectReplication() {
			g.se.Post(sim.ControlSender, boxes[b.Region], "repl", b)
		}
	})
	for r := range boxes {
		r := r
		boxes[r] = g.se.RegisterMailbox(func(_ time.Time, batch []sim.Message) {
			for _, m := range batch {
				st.DeliverReplication(m.Payload.(metadata.ReplicationBatch))
			}
			st.ApplyReplication(r)
		})
	}
}

// shard0 returns the shard carrying cluster-scoped work (attacks, cadences).
func (g *Generator) shard0() *genShard { return g.shards[0] }

func (g *Generator) schedulePump() {
	eng := g.shard0().eng
	eng.After(10*time.Minute, func() {
		g.c.PumpNotifications()
		if eng.Now().Before(g.end) {
			g.schedulePump()
		}
	})
}

func (g *Generator) scheduleGC() {
	eng := g.shard0().eng
	eng.After(24*time.Hour, func() {
		g.c.SweepUploadJobs(eng.Now())
		if eng.Now().Before(g.end) {
			g.scheduleGC()
		}
	})
}

// runCadences is the epoch-boundary hook under parallel shards: it runs the
// notification pump and the uploadjob GC whenever their cadence fell due
// inside the closed epoch, serialized with every shard quiescent. It mirrors
// the serial chains exactly: each fires at every mark up to and including
// the first mark at or past the window end (the serial events fire at their
// scheduled time and only the reschedule is guarded by `now < end`), then
// the chain stops. A zero mark is a finished chain.
func (g *Generator) runCadences(now time.Time) {
	for !g.nextPump.IsZero() && !g.nextPump.After(now) {
		g.c.PumpNotifications()
		if !g.nextPump.Before(g.end) {
			g.nextPump = time.Time{}
			break
		}
		g.nextPump = g.nextPump.Add(10 * time.Minute)
	}
	for !g.nextGC.IsZero() && !g.nextGC.After(now) {
		g.c.SweepUploadJobs(g.nextGC)
		if !g.nextGC.Before(g.end) {
			g.nextGC = time.Time{}
			break
		}
		g.nextGC = g.nextGC.Add(24 * time.Hour)
	}
}

// hourOf returns the fractional hour-of-day and weekday of t.
func hourOf(t time.Time) (float64, int) {
	return float64(t.Hour()) + float64(t.Minute())/60, int(t.Weekday())
}

// maxThinningAttempts bounds the session-arrival thinning loop.
const maxThinningAttempts = 1000

// scheduleNextSession draws the next session start by thinning an
// exponential arrival stream against the diurnal profile. The final attempt
// accepts its draw unconditionally: a pathological profile (a near-zero
// diurnal trough) must delay the next session, not silently drop the user
// for the rest of the trace window.
func (g *Generator) scheduleNextSession(u *user, from time.Time) {
	meanGap := 24 * time.Hour
	if rate := u.par.sessionsPerDay * u.rateBoost; rate > 0 {
		meanGap = time.Duration(float64(24*time.Hour) / rate)
	}
	const fMax = 1.15 // peak diurnal factor incl. Monday boost
	t := from
	for i := 0; i < maxThinningAttempts; i++ {
		gap := time.Duration(u.rng.ExpFloat64() * float64(meanGap))
		t = t.Add(gap)
		if t.After(g.end) {
			return // user never connects again inside the window
		}
		h, wd := hourOf(t)
		if i == maxThinningAttempts-1 || u.rng.Float64() < g.prof.Sessions.Factor(h, wd)/fMax {
			at := t
			u.sh.eng.At(at, func() { g.startSession(u) })
			return
		}
	}
}

// startSession opens a session for u and schedules its activity.
func (g *Generator) startSession(u *user) {
	eng := u.sh.eng
	if u.online {
		// The previous session is still running (overlap after a long
		// active burst); try again later.
		g.scheduleNextSession(u, eng.Now())
		return
	}
	if u.cli == nil {
		tr := client.NewDirectTransport(g.c.LeastLoaded, eng.Clock())
		u.cli = client.New(tr)
		u.cli.Retry = g.cfg.Retry
	}
	if err := u.cli.Connect(hex.EncodeToString(u.token[:])); err != nil {
		// Auth failures happen (§7.3: 2.76%); the desktop client retries on
		// its next scheduled connection — or, with ReconnectBackoff set, on a
		// short jittered backoff, so an outage ends in a reconnect herd. The
		// jitter draws from the user's own rng inside the user's own event,
		// which keeps the stream deterministic at any worker count.
		u.sh.totals.FailedAuths++
		if b := g.cfg.ReconnectBackoff; b > 0 {
			at := eng.Now().Add(b + time.Duration(u.rng.Float64()*float64(b)/4))
			if !at.After(g.end) {
				eng.At(at, func() { g.startSession(u) })
			}
			return
		}
		g.scheduleNextSession(u, eng.Now())
		return
	}
	u.online = true
	u.sh.totals.Sessions++

	now := eng.Now()
	length := g.sessionLength(u)
	sessionEnd := now.Add(length)

	// Sub-second NAT-churn sessions do nothing but exist (§7.3).
	if length < 5*time.Second {
		eng.At(sessionEnd, func() { g.endSession(u) })
		return
	}

	// First proper session: users who configure extra synced folders create
	// their first UDF right away (58% of users end up with one, §6.3).
	if u.udfs == 0 && u.maxUDFs > 0 {
		if v, err := u.cli.CreateUDF(fmt.Sprintf("~/UDF-%d-0", u.id)); err == nil {
			u.udfs = 1
			u.udfVols = append(u.udfVols, v.ID)
		}
	}

	// Accept pending share offers, then synchronize mirrors (the
	// "generation point" run on every connection, §3.4.2).
	g.acceptPendingShares(u)
	g.syncMirrors(u)
	if len(u.files) == 0 {
		g.adoptMirrorFiles(u)
	}

	h, wd := hourOf(now)
	activeP := u.par.activeP * g.prof.Activity.Factor(h, wd)
	if u.rng.Float64() < activeP {
		ops := int(g.prof.OpsPerActiveSession.Sample(u.rng) * scaleWeight(u.weight))
		if ops < 1 {
			ops = 1
		}
		if ops > 50000 {
			ops = 50000
		}
		// Long op chains belong to long sessions (Fig. 16: active sessions
		// are much longer than cold ones; the most active 20% of sessions
		// carry 96.7% of operations). Stretch the session to fit its work.
		if need := time.Duration(ops) * 15 * time.Second; length < need {
			sessionEnd = now.Add(need)
		}
		run := &sessionRun{g: g, u: u, end: sessionEnd, opsLeft: ops}
		eng.After(g.intraGap(u), run.step)
	}
	eng.At(sessionEnd, func() { g.endSession(u) })
}

// scaleWeight converts the user's long-run weight into a per-session ops
// multiplier. The square root compresses the cross-user range (which spans
// orders of magnitude to produce the traffic Gini) into what one session can
// plausibly hold; the rest of the skew comes from heavy users having more
// and longer sessions.
func scaleWeight(w float64) float64 {
	return clamp(math.Sqrt(w), 0.2, 12)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (g *Generator) endSession(u *user) {
	if !u.online {
		return
	}
	u.online = false
	u.cli.Disconnect() //nolint:errcheck
	if g.cfg.LowMem {
		// Release the client and its mirrors while the user is offline; the
		// next startSession rebuilds it and re-syncs from the server. The
		// per-user fileRef working set survives, so behavior stays closed
		// over a reconnect — only the delta-vs-rescan sync mix changes.
		u.cli = nil
	}
	g.scheduleNextSession(u, u.sh.eng.Now())
}

func (g *Generator) sessionLength(u *user) time.Duration {
	var secs float64
	if u.rng.Float64() < g.prof.ShortSessionP {
		secs = g.prof.ShortSession.Sample(u.rng)
	} else {
		secs = g.prof.SessionBody.Sample(u.rng)
		if cap := 7 * 24 * 3600.0; secs > cap {
			secs = cap
		}
	}
	return time.Duration(secs * float64(time.Second))
}

func (g *Generator) acceptPendingShares(u *user) {
	shares, err := u.cli.ListShares()
	if err != nil {
		return
	}
	for _, sh := range shares {
		if sh.SharedTo == u.id && !sh.Accepted {
			u.cli.AcceptShare(sh.ID) //nolint:errcheck
		}
	}
}

// adoptMirrorFiles seeds the user's working set from the mirror after the
// first synchronization (pre-window files become download candidates).
func (g *Generator) adoptMirrorFiles(u *user) {
	root, ok := u.cli.RootVolume()
	if !ok {
		return
	}
	m, ok := u.cli.Mirror(root)
	if !ok {
		return
	}
	ids := make([]protocol.NodeID, 0, len(m.Nodes))
	for id, info := range m.Nodes {
		if info.Kind == protocol.KindFile && !info.Hash.IsZero() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if cap(u.files)-len(u.files) < len(ids) {
		// Exact-capacity growth: append's doubling would strand ~a third of
		// the backing array across a million users' working sets.
		grown := make([]fileRef, len(u.files), len(u.files)+len(ids))
		copy(grown, u.files)
		u.files = grown
	}
	for _, id := range ids {
		info := m.Nodes[id]
		u.files = append(u.files, u.sh.fileRefFor(root, id, info.Parent, info.Name))
	}
}

func (g *Generator) syncMirrors(u *user) {
	vols, err := u.cli.ListVolumes()
	if err != nil {
		return
	}
	for _, v := range vols {
		u.cli.Sync(v.ID) //nolint:errcheck
	}
}

func (g *Generator) intraGap(u *user) time.Duration {
	return time.Duration(g.prof.IntraBurstGap.Sample(u.rng) * float64(time.Second))
}

func (g *Generator) interGap(u *user) time.Duration {
	return time.Duration(g.prof.InterBurstGap.Sample(u.rng) * float64(time.Second))
}
