package workload

import (
	"fmt"
	"time"

	"u1/internal/dist"
	"u1/internal/protocol"
)

// action enumerates what a burst does. Users manage data at directory
// granularity (§6.2), so one burst issues several correlated operations of
// the same kind — the behavior behind the transfer→transfer self-loops of
// Fig. 8 and the non-Poisson inter-arrival times of Fig. 9.
type action uint8

const (
	actUpload action = iota
	actDownload
	actDelete
	actMkdir
	actMove
	actUDF
	actShare
	actDeleteVolume
)

// sessionRun executes one active session's operations as a chain of
// simulator events: one operation per event, separated by intra-burst gaps
// within a burst and the power-law inter-burst gaps between bursts.
type sessionRun struct {
	g       *Generator
	u       *user
	end     time.Time
	opsLeft int

	burstLeft int
	burstAct  action
	burstVol  protocol.VolumeID
	burstDir  protocol.NodeID
	// editFile is set for edit bursts: the burst re-uploads this one file
	// (save cycles), the behavior behind the WAW dominance of Fig. 3a.
	editFile *fileRef
}

func (s *sessionRun) step() {
	g, u := s.g, s.u
	now := u.sh.eng.Now()
	if !u.online || s.opsLeft <= 0 || !now.Before(s.end) {
		return // the scheduled endSession event handles disconnect
	}
	if s.burstLeft <= 0 {
		s.newBurst()
	}
	s.executeOne()
	s.opsLeft--
	s.burstLeft--

	var gap = g.intraGap(u)
	if s.burstLeft <= 0 {
		gap = g.interGap(u)
	}
	u.sh.eng.After(gap, s.step)
}

// newBurst picks the next burst's action, volume and directory.
func (s *sessionRun) newBurst() {
	u := s.u
	r := u.rng
	s.burstAct = s.pickAction(r)
	s.burstVol = s.pickVolume(r)
	s.burstDir = s.pickDir(r, s.burstVol)
	s.editFile = nil
	if s.burstAct == actUpload && len(u.recent) > 0 && r.Float64() < s.g.prof.EditBurstP {
		// Edit session: repeatedly save one file.
		f := u.recent[r.Intn(len(u.recent))]
		s.editFile = &f
	} else if s.burstAct == actUpload && r.Float64() < 0.5 {
		// Directory-granularity sync: the burst lands in a fresh directory,
		// which keeps per-volume file and directory counts proportional
		// (the Fig. 10 correlation of 0.998).
		u.seq++
		if dir, err := u.cli.Mkdir(s.burstVol, s.burstDir, fmt.Sprintf("d%d-%d", u.id, u.seq)); err == nil {
			u.addDir(s.burstVol, dir.ID)
			s.burstDir = dir.ID
		}
	}
	k := int(s.g.prof.BatchSize.Sample(r))
	if k < 1 {
		k = 1
	}
	switch s.burstAct {
	case actUpload, actDownload, actDelete:
		// directory-granularity work: several files in a row
	default:
		k = 1
	}
	if k > s.opsLeft {
		k = s.opsLeft
	}
	s.burstLeft = k
}

func (s *sessionRun) pickAction(r dist.Rand) action {
	u := s.u
	p := r.Float64()
	switch {
	case p < u.par.upP:
		return actUpload
	case p < u.par.upP+u.par.downP:
		return actDownload
	default:
		rest := r.Float64()
		switch {
		case rest < 0.58:
			return actDelete
		case rest < 0.75:
			return actMkdir
		case rest < 0.87:
			return actMove
		case rest < 0.89+s.g.prof.UDFP/2:
			return actUDF
		case rest < 0.89+s.g.prof.UDFP/2+s.g.prof.ShareP:
			return actShare
		case rest < 0.99:
			return actDownload
		default:
			return actDeleteVolume
		}
	}
}

// pickVolume prefers the root volume but exercises UDFs when present.
func (s *sessionRun) pickVolume(r dist.Rand) protocol.VolumeID {
	u := s.u
	root, ok := u.cli.RootVolume()
	if !ok {
		return 0
	}
	if len(u.udfVols) > 0 && r.Float64() < 0.3 {
		return u.udfVols[r.Intn(len(u.udfVols))]
	}
	return root
}

func (s *sessionRun) pickDir(r dist.Rand, vol protocol.VolumeID) protocol.NodeID {
	dirs := s.u.dirs[vol]
	if len(dirs) == 0 || r.Float64() < 0.35 {
		return 0 // volume root
	}
	return dirs[r.Intn(len(dirs))]
}

func (s *sessionRun) executeOne() {
	switch s.burstAct {
	case actUpload:
		s.doUpload()
	case actDownload:
		s.doDownload()
	case actDelete:
		s.doDelete()
	case actMkdir:
		s.doMkdir()
	case actMove:
		s.doMove()
	case actUDF:
		s.doUDF()
	case actShare:
		s.doShare()
	case actDeleteVolume:
		s.doDeleteVolume()
	}
}

// doUpload writes one file: an edit-burst save of one file, an update of a
// recent file, or a fresh upload (§5.1).
func (s *sessionRun) doUpload() {
	g, u := s.g, s.u
	r := u.rng

	if s.editFile != nil {
		// Save cycle: re-upload the same node. Sometimes the content really
		// changed (an update); often it is the same bytes again (clients
		// re-send on metadata changes, §5.1's .mp3-tagging observation).
		f := *s.editFile
		var h protocol.Hash
		var size uint64
		if r.Float64() < g.prof.EditNewVersionP {
			u.seq++
			h = protocol.HashBytes([]byte(fmt.Sprintf("u%d-v%d", u.id, u.seq)))
			size = versionedSize(u, f, r)
		} else {
			// Unchanged content: dedup makes this transfer-free.
			h, size = currentContent(u, f)
		}
		u.cli.UploadSized(f.vol, parentOf(u, f), f.fileName(u.sh), h, size, wireSize(f.extProfile(u.sh), size)) //nolint:errcheck
		u.sh.totals.Uploads++
		return
	}

	if len(u.recent) > 1 && r.Float64() < g.prof.UpdateP {
		// Standalone update, biased to the largest of three candidates:
		// media re-uploads dominate update traffic (§5.1: 18.5% of bytes).
		f := u.recent[r.Intn(len(u.recent))]
		for i := 0; i < 2; i++ {
			c := u.recent[r.Intn(len(u.recent))]
			if sizeOf(u, c) > sizeOf(u, f) {
				f = c
			}
		}
		u.seq++
		h := protocol.HashBytes([]byte(fmt.Sprintf("u%d-v%d", u.id, u.seq)))
		size := versionedSize(u, f, r)
		u.cli.UploadSized(f.vol, parentOf(u, f), f.fileName(u.sh), h, size, wireSize(f.extProfile(u.sh), size)) //nolint:errcheck
		u.sh.totals.Uploads++
		return
	}

	ext := g.prof.PickExtension(r)
	size := biasSize(sampleSize(ext, r), u.sizeBias)
	h := g.pickHash(u, &ext, &size)
	u.seq++
	name := fmt.Sprintf("f%d-%d", u.id, u.seq)
	if ext.Ext != "" {
		name += "." + ext.Ext
	}
	vol, dir := s.burstVol, s.burstDir
	node, _, err := u.cli.UploadSized(vol, dir, name, h, size, wireSize(ext, size))
	if err != nil {
		return
	}
	u.sh.totals.Uploads++
	// pickHash may have swapped ext for a popular catalog entry; the name was
	// built from the post-swap ext, so one catalog index serves both roles.
	idx := g.prof.extIndex(ext)
	f := fileRef{vol: vol, node: node.ID, parent: dir,
		uid: uint32(u.id), seq: uint32(u.seq), kind: 'f', ext: idx, nameExt: idx}
	u.remember(f)
	u.files = append(u.files, f)

	// The user's other device fetches the new file shortly after — the RAW
	// dependency of Fig. 3a. Upload-only users have no consuming device
	// (that is what makes them upload-only).
	if u.class != UploadOnly && r.Float64() < g.prof.SyncBackP {
		secs := dist.LognormalFromMedian(90, 5).Sample(r)
		nodeID := node.ID
		sessionID := u.cli.Session()
		u.sh.eng.After(time.Duration(secs*float64(time.Second)), func() {
			// Only within the same session: the paired device reacted to the
			// push while this connection was alive.
			if u.online && u.cli != nil && u.cli.Session() == sessionID {
				if _, err := u.cli.Download(vol, nodeID); err == nil {
					u.sh.totals.Downloads++
				}
			}
		})
	}
}

// doDownload reads a file: recent files dominate (short RAR times), the rest
// comes uniformly from the mirror with a bias towards the user's first
// files, which become long-tail favorites (Fig. 3b inset).
func (s *sessionRun) doDownload() {
	u := s.u
	r := u.rng
	var vol protocol.VolumeID
	var node protocol.NodeID
	var stale = -1
	switch {
	case len(u.recent) > 0 && r.Float64() < 0.35:
		f := u.recent[r.Intn(len(u.recent))]
		vol, node = f.vol, f.node
	case len(u.files) > 0 && r.Float64() < 0.12:
		// Long-run favorites: a small stable set of repeatedly read files
		// (the Fig. 3b download tail).
		k := len(u.files)
		if k > 5 {
			k = 5
		}
		f := u.files[r.Intn(k)]
		vol, node = f.vol, f.node
	default:
		i, ok := s.pickFile(r)
		if !ok {
			return
		}
		// Users re-fetch their media more than their notes: prefer the
		// largest of three candidates, which also keeps downloaded bytes in
		// the same league as uploaded bytes (R/W ≈ 1.14, Fig. 2c).
		if c, ok := s.pickFile(r); ok && sizeOf(u, u.files[c]) > sizeOf(u, u.files[i]) {
			i = c
		}
		f := u.files[i]
		vol, node, stale = f.vol, f.node, i
	}
	if _, err := u.cli.Download(vol, node); err == nil {
		u.sh.totals.Downloads++
		// A read keeps the file warm in the user's working set, so later
		// deletes and edits follow reads (the DAR/WAR chains of Fig. 3b).
		if r.Float64() < 0.55 {
			if m, ok := u.cli.Mirror(vol); ok {
				if info, ok := m.Nodes[node]; ok {
					u.remember(u.sh.fileRefFor(vol, node, info.Parent, info.Name))
				}
			}
		}
	} else if stale >= 0 {
		// The file disappeared under us (cascade delete); drop the ref.
		u.files = append(u.files[:stale], u.files[stale+1:]...)
	}
}

// doDelete unlinks a node, biased towards recent files (§5.2: 17% of files
// die within 8 hours). Occasionally a directory goes, cascading.
func (s *sessionRun) doDelete() {
	u := s.u
	r := u.rng
	if dirs := u.dirs[s.burstVol]; len(dirs) > 0 && r.Float64() < 0.12 {
		i := r.Intn(len(dirs))
		dir := dirs[i]
		if err := u.cli.Unlink(s.burstVol, dir); err == nil {
			u.dirs[s.burstVol] = append(dirs[:i], dirs[i+1:]...)
			u.forgetDir(dir)
			u.sh.totals.Deletes++
		}
		return
	}
	var vol protocol.VolumeID
	var node protocol.NodeID
	if len(u.recent) > 0 && r.Float64() < 0.6 {
		i := r.Intn(len(u.recent))
		f := u.recent[i]
		vol, node = f.vol, f.node
		u.recent = append(u.recent[:i], u.recent[i+1:]...)
	} else {
		i, ok := s.pickFile(r)
		if !ok {
			return
		}
		f := u.files[i]
		vol, node = f.vol, f.node
	}
	if err := u.cli.Unlink(vol, node); err == nil {
		u.sh.totals.Deletes++
	}
	u.dropFile(node)
}

func (s *sessionRun) doMkdir() {
	u := s.u
	u.seq++
	name := fmt.Sprintf("d%d-%d", u.id, u.seq)
	node, err := u.cli.Mkdir(s.burstVol, s.burstDir, name)
	if err != nil {
		return
	}
	u.addDir(s.burstVol, node.ID)
}

func (s *sessionRun) doMove() {
	u := s.u
	r := u.rng
	i, ok := s.pickFile(r)
	if !ok {
		return
	}
	f := u.files[i]
	u.seq++
	target := s.pickDir(r, f.vol)
	name := fmt.Sprintf("m%d-%d", u.id, u.seq)
	if _, err := u.cli.Move(f.vol, f.node, target, name); err == nil {
		// A move renames but keeps the content: re-derive the ref from the new
		// name, then carry the pre-move extension profile over.
		nf := u.sh.fileRefFor(f.vol, f.node, target, name)
		nf.ext = f.ext
		u.files[i] = nf
	}
}

func (s *sessionRun) doUDF() {
	u := s.u
	if u.udfs >= u.maxUDFs {
		return
	}
	v, err := u.cli.CreateUDF(fmt.Sprintf("~/UDF-%d-%d", u.id, u.udfs))
	if err != nil {
		return
	}
	u.udfs++
	u.udfVols = append(u.udfVols, v.ID)
}

func (s *sessionRun) doShare() {
	u := s.u
	r := u.rng
	// Share targets come from the user's own shard: cross-user interactions
	// stay inside one deterministic event order, which is what makes the
	// trace reproducible under parallel shards. At Workers=1 the shard
	// population is the whole population, exactly the serial behavior.
	if len(u.sh.users) < 2 {
		return
	}
	to := u.sh.users[r.Intn(len(u.sh.users))]
	if to.id == u.id {
		return
	}
	// Share a UDF when one exists; otherwise nothing to share (U1 users
	// shared folders, not their root volume).
	if len(u.udfVols) == 0 {
		return
	}
	vol := u.udfVols[r.Intn(len(u.udfVols))]
	u.cli.CreateShare(vol, to.id, fmt.Sprintf("s%d", u.id), r.Float64() < 0.3) //nolint:errcheck
}

func (s *sessionRun) doDeleteVolume() {
	u := s.u
	if len(u.udfVols) == 0 {
		return
	}
	vol := u.udfVols[len(u.udfVols)-1]
	if err := u.cli.DeleteVolume(vol); err == nil {
		u.udfVols = u.udfVols[:len(u.udfVols)-1]
		delete(u.dirs, vol)
		u.forgetVolumeNodes(vol)
		if u.udfs > 0 {
			u.udfs--
		}
	}
}

// pickFile picks a uniform index into the user's live file list.
func (s *sessionRun) pickFile(r dist.Rand) (int, bool) {
	if len(s.u.files) == 0 {
		return 0, false
	}
	return r.Intn(len(s.u.files)), true
}

// forgetDir drops recent/live entries whose parent directory was unlinked.
func (u *user) forgetDir(dir protocol.NodeID) {
	live := u.files[:0]
	for _, f := range u.files {
		if f.parent != dir {
			live = append(live, f)
		}
	}
	u.files = live
	rec := u.recent[:0]
	for _, f := range u.recent {
		if f.parent != dir {
			rec = append(rec, f)
		}
	}
	u.recent = rec
}

// dropFile removes a node from the live file list (after a delete).
func (u *user) dropFile(node protocol.NodeID) {
	for i, f := range u.files {
		if f.node == node {
			u.files = append(u.files[:i], u.files[i+1:]...)
			return
		}
	}
}

// remember appends to the recent-file window (bounded per user class). It is
// the single append site for u.recent in the whole package, so the cap below
// is the invariant — audited; every other mutation only removes entries.
func (u *user) remember(f fileRef) {
	u.recent = append(u.recent, f)
	cap := u.recentCap
	if cap < 64 {
		cap = 64
	}
	if len(u.recent) > cap {
		u.recent = u.recent[len(u.recent)-cap:]
	}
}

// forgetVolumeNodes drops recent/live entries of a removed volume.
func (u *user) forgetVolumeNodes(vol protocol.VolumeID) {
	out := u.recent[:0]
	for _, f := range u.recent {
		if f.vol != vol {
			out = append(out, f)
		}
	}
	u.recent = out
	live := u.files[:0]
	for _, f := range u.files {
		if f.vol != vol {
			live = append(live, f)
		}
	}
	u.files = live
}

// parentOf resolves a recent file's parent from the mirror (0 = root).
func parentOf(u *user, f fileRef) protocol.NodeID {
	if m, ok := u.cli.Mirror(f.vol); ok {
		if info, ok := m.Nodes[f.node]; ok {
			return info.Parent
		}
	}
	return 0
}

// biasSize applies the per-user size multiplier to files already above 1 MB:
// heavy users differ by hoarding large media/datasets, not by having bigger
// source files. Sub-MB files keep the global size CDF (90% < 1 MB) intact.
func biasSize(size uint64, bias float64) uint64 {
	if bias == 0 || bias == 1 || size < 1<<20 {
		return size
	}
	out := uint64(float64(size) * bias)
	if out < 1 {
		out = 1
	}
	const cap = 4 << 30
	if out > cap {
		out = cap
	}
	return out
}

func sampleSize(ext *ExtProfile, r dist.Rand) uint64 {
	s := ext.Size.Sample(r)
	if s < 1 {
		s = 1
	}
	const cap = 4 << 30 // 4 GB upload limit
	if s > cap {
		s = cap
	}
	return uint64(s)
}

// versionedSize sizes a new version of an existing file: close to its
// current size (a tag edit re-sends the whole multi-MB file, §5.1), which is
// what makes updates carry 18.5% of upload bytes at 10% of upload ops.
func versionedSize(u *user, f fileRef, r dist.Rand) uint64 {
	cur := sizeOf(u, f)
	if cur == 0 {
		return sampleSize(f.extProfile(u.sh), r)
	}
	factor := 0.85 + 0.3*r.Float64()
	size := uint64(float64(cur) * factor)
	if size < 1 {
		size = 1
	}
	return size
}

// currentContent returns a file's current hash and size from the mirror, so
// an unchanged re-upload offers the content the server already has.
func currentContent(u *user, f fileRef) (protocol.Hash, uint64) {
	if m, ok := u.cli.Mirror(f.vol); ok {
		if info, ok := m.Nodes[f.node]; ok {
			return info.Hash, info.Size
		}
	}
	return protocol.HashBytes([]byte(fmt.Sprintf("u%d-ghost", u.id))), 1
}

// sizeOf reads a file's current size from the mirror.
func sizeOf(u *user, f fileRef) uint64 {
	if m, ok := u.cli.Mirror(f.vol); ok {
		if info, ok := m.Nodes[f.node]; ok {
			return info.Size
		}
	}
	return 0
}

// extFromName extracts the extension of a synthetic file name.
func extFromName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return ""
}

func wireSize(ext *ExtProfile, size uint64) uint64 {
	w := uint64(float64(size) * ext.Compress)
	if w < 1 {
		w = 1
	}
	if w > size {
		w = size
	}
	return w
}
