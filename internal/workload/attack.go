package workload

import (
	"fmt"
	"math/rand"
	"time"

	"u1/internal/client"
	"u1/internal/protocol"
)

// Attack describes one DDoS event (§5.4): a single account's credentials are
// distributed to thousands of desktop clients that use U1 to spread illegal
// content — the storage-leeching pattern. The attack manifests as a storm of
// session/authentication requests (5–15× normal) and a much larger storm of
// API server activity (up to 245×), until operators delete the fraudulent
// user and content, after which activity decays within the hour.
type Attack struct {
	// Day is the 0-based trace day of the attack.
	Day int
	// Hour is the attack start hour within the day.
	Hour float64
	// Duration is how long new attack sessions keep arriving.
	Duration time.Duration
	// APIFactor multiplies the baseline per-hour API server activity
	// (the paper's 4.6×, 245×, 6.7×).
	APIFactor float64
	// AuthFactor multiplies the baseline per-hour session/auth request
	// rate (the paper's 5–15×).
	AuthFactor float64
}

// DefaultAttacks reproduces the three attacks of Fig. 5. The original trace
// started January 11, 2014; the attacks fell on January 15 (day 4), January
// 16 (day 5) and February 6 (day 26).
func DefaultAttacks() []Attack {
	return []Attack{
		{Day: 4, Hour: 10, Duration: 2 * time.Hour, APIFactor: 4.6, AuthFactor: 5},
		{Day: 5, Hour: 13, Duration: 2 * time.Hour, APIFactor: 245, AuthFactor: 15},
		{Day: 26, Hour: 15, Duration: 2 * time.Hour, APIFactor: 6.7, AuthFactor: 7},
	}
}

// Baseline activity estimates used to size attacks relative to legitimate
// load. These constants approximate what the calibrated profile produces per
// user; the analysis reports the multipliers actually achieved.
const (
	baseOpsPerUserHour      = 0.40 // API server requests per user per hour
	baseSessionsPerUserHour = 0.02 // session arrivals per user per hour
)

func (g *Generator) baselineOpsPerHour() float64 {
	return baseOpsPerUserHour * float64(g.cfg.Users)
}

func (g *Generator) baselineSessionsPerHour() float64 {
	return baseSessionsPerUserHour * float64(g.cfg.Users)
}

// scheduleAttack installs one attack: the fraudulent account uploads the
// content to distribute just before the session storm starts, thousands of
// clients hammer the service, and at the end of the window operators revoke
// the account and delete the content (the manual countermeasure of §5.4).
func (g *Generator) scheduleAttack(a Attack) {
	start := g.cfg.Start.Add(time.Duration(a.Day)*24*time.Hour +
		time.Duration(a.Hour*float64(time.Hour)))
	if !start.Before(g.end) || start.Before(g.cfg.Start) {
		return
	}
	hours := a.Duration.Hours()
	sessions := int(a.AuthFactor * g.baselineSessionsPerHour() * hours)
	if sessions < 1 {
		sessions = 1
	}
	extraOps := (a.APIFactor - 1) * g.baselineOpsPerHour() * hours
	opsPerSession := int(extraOps/float64(sessions)) - 4 // minus session overhead
	if opsPerSession < 1 {
		opsPerSession = 1
	}

	attackerID := protocol.UserID(1_000_000 + a.Day)
	token, err := g.c.Auth.Issue(attackerID)
	if err != nil {
		return
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(a.Day)*104729))

	// Attacks are cluster-scoped, not per-user: every attack event runs on
	// shard 0, so the whole storm keeps one deterministic event order.
	eng := g.shard0().eng
	seedAttempts := 0
	var seedContent func()
	seedContent = func() {
		// The attacker seeds the content: a ~100 KB payload every attack
		// client downloads repeatedly. Seeding retries transient failures
		// (the injected auth failure rate applies to the attacker too) on a
		// one-minute backoff: a storm must not silently vanish on one bad
		// draw. The success path is untouched — retries consume nothing from
		// the attack's RNG stream, so first-try seeds reproduce exactly the
		// schedule they always did.
		retry := func() {
			if seedAttempts++; seedAttempts < 5 {
				eng.After(time.Minute, seedContent)
			}
		}
		tr := client.NewDirectTransport(g.c.LeastLoaded, eng.Clock())
		seeder := client.New(tr)
		if err := seeder.Connect(token); err != nil {
			retry()
			return
		}
		root, ok := seeder.RootVolume()
		if !ok {
			return
		}
		h := protocol.HashBytes([]byte(fmt.Sprintf("warez-%d", a.Day)))
		node, _, err := seeder.UploadSized(root, 0, "installer.zip", h, 100<<10, 100<<10)
		seeder.Disconnect() //nolint:errcheck
		if err != nil {
			retry()
			return
		}

		// Session storm: Poisson arrivals over the window, measured from the
		// attack's nominal start; arrivals a late seed has already passed run
		// at the seeding instant (the engine never moves backwards).
		for i := 0; i < sessions; i++ {
			offset := time.Duration(rng.Float64() * float64(a.Duration))
			eng.At(start.Add(offset), func() {
				g.attackSession(token, root, node.ID, opsPerSession, rng.Int63())
			})
		}

		// Operator response at the end of the window: revoke credentials and
		// delete the content. In-flight sessions fail from here on, so the
		// visible activity decays within the hour, as observed.
		eng.At(start.Add(a.Duration), func() {
			g.c.Auth.RevokeUser(attackerID)
			// Flush the fleet's validation caches along with the revocation,
			// or servers with a warm cache would keep admitting the leeches
			// for the cache TTL (and which servers are warm depends on
			// placement history — the determinism contract forbids that).
			g.c.DropCachedToken(token)
			cleanup := client.New(client.NewDirectTransport(g.c.LeastLoaded, eng.Clock()))
			// The operator path uses a fresh token (admin-equivalent).
			adminToken, err := g.c.Auth.Issue(attackerID)
			if err != nil {
				return
			}
			if err := cleanup.Connect(adminToken); err != nil {
				return
			}
			cleanup.Unlink(root, node.ID) //nolint:errcheck
			cleanup.Disconnect()          //nolint:errcheck
			g.c.Auth.RevokeUser(attackerID)
		})
	}
	eng.At(start, seedContent)
}

// attackSession is one leeching client: authenticate with the shared
// credentials, download the payload over and over, disconnect.
func (g *Generator) attackSession(token string, vol protocol.VolumeID, node protocol.NodeID, ops int, seed int64) {
	sh := g.shard0()
	rng := rand.New(rand.NewSource(seed))
	tr := client.NewDirectTransport(g.c.LeastLoaded, sh.eng.Clock())
	cli := client.New(tr)
	cli.Retry = g.cfg.Retry
	if err := cli.Connect(token); err != nil {
		sh.totals.FailedAuths++
		return
	}
	sh.totals.Sessions++
	sh.totals.AttackSessions++

	var left = ops
	var step func()
	step = func() {
		if left <= 0 {
			cli.Disconnect() //nolint:errcheck
			return
		}
		left--
		if _, err := cli.Download(vol, node); err != nil {
			// Content deleted by operators: the leech gives up.
			cli.Disconnect() //nolint:errcheck
			return
		}
		sh.eng.After(time.Duration(rng.ExpFloat64()*2*float64(time.Second)), step)
	}
	step()
}
