// Package workload synthesizes the U1 user population and drives it against
// the real back-end through the desktop client, on the simulator's virtual
// clock. Every generative model in this package is calibrated against a
// measured distribution from the paper (§5–§7); DESIGN.md lists the targets.
// The result is a trace with the same shape as the original 758 GB dataset,
// produced by the same code paths a production deployment would execute.
package workload

import (
	"u1/internal/dist"
)

// Category is the 7-way file classification of Fig. 4c.
type Category uint8

// File categories.
const (
	CatCode Category = iota
	CatPics
	CatDocs
	CatAV
	CatBinary
	CatCompressed
	CatOther
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatCode:
		return "Code"
	case CatPics:
		return "Pictures"
	case CatDocs:
		return "Documents"
	case CatAV:
		return "Audio/Video"
	case CatBinary:
		return "Binary"
	case CatCompressed:
		return "Compressed"
	default:
		return "Other"
	}
}

// ExtProfile describes one file extension: its category, population weight,
// size distribution and typical compressibility (deflated/plain ratio).
type ExtProfile struct {
	Ext      string
	Cat      Category
	Weight   float64 // relative frequency among uploaded files
	Size     dist.Sampler
	Compress float64 // wire bytes = Compress × plain bytes
}

// sizer builds the common file-size shape: a lognormal body (the per-
// extension CDFs of Fig. 4b span decades) with an optional Pareto tail for
// types that produce very large files.
func sizer(median, spread float64) dist.Sampler {
	return dist.LognormalFromMedian(median, spread)
}

func tailedSizer(median, spread, tailP, tailStart, tailAlpha float64) dist.Sampler {
	return dist.ParetoTailed{
		Body:  dist.LognormalFromMedian(median, spread),
		Tail:  dist.Pareto{Xm: tailStart, Alpha: tailAlpha},
		TailP: tailP,
	}
}

// DefaultExtensions is the 40-extension catalog spanning the paper's 55 most
// popular extensions and 7 categories. Weights target Fig. 4c (Code the most
// numerous category, Docs ≈10% of files) and sizes target Fig. 4b (90% of
// files < 1 MB; compressed/media types largest; >25 MB files carrying ≈80% of
// upload traffic through the A/V and archive tails).
func DefaultExtensions() []ExtProfile {
	const kb, mb = 1 << 10, 1 << 20
	return []ExtProfile{
		// Code: very numerous, tiny, highly compressible.
		{"java", CatCode, 8.0, sizer(4*kb, 4), 0.35},
		{"c", CatCode, 3.0, sizer(6*kb, 4), 0.35},
		{"h", CatCode, 3.5, sizer(3*kb, 3.5), 0.35},
		{"py", CatCode, 8.5, sizer(4*kb, 4), 0.35},
		{"js", CatCode, 3.5, sizer(8*kb, 5), 0.35},
		{"php", CatCode, 2.5, sizer(6*kb, 4), 0.35},
		{"cpp", CatCode, 2.0, sizer(8*kb, 4), 0.35},
		{"html", CatCode, 3.0, sizer(10*kb, 5), 0.3},
		{"css", CatCode, 2.0, sizer(6*kb, 4), 0.3},
		// Pictures: sub-MB bodies, already compressed.
		{"jpg", CatPics, 8.5, sizer(450*kb, 2.5), 0.98},
		{"png", CatPics, 5.0, sizer(300*kb, 4), 0.97},
		{"gif", CatPics, 3.0, sizer(60*kb, 4), 0.97},
		{"bmp", CatPics, 0.5, sizer(1.5*mb, 3), 0.5},
		{"svg", CatPics, 1.0, sizer(30*kb, 4), 0.4},
		// Documents: ≈10% of files, 6.9% of bytes.
		{"pdf", CatDocs, 3.0, sizer(300*kb, 6), 0.9},
		{"txt", CatDocs, 5.0, sizer(8*kb, 6), 0.4},
		{"doc", CatDocs, 1.8, sizer(120*kb, 5), 0.6},
		{"docx", CatDocs, 1.2, sizer(100*kb, 5), 0.95},
		{"xls", CatDocs, 0.8, sizer(150*kb, 5), 0.6},
		{"ppt", CatDocs, 0.5, sizer(800*kb, 4), 0.8},
		{"odt", CatDocs, 0.4, sizer(80*kb, 5), 0.95},
		{"tex", CatDocs, 0.7, sizer(15*kb, 4), 0.4},
		// Audio/Video: few files, most bytes (Fig. 4c's storage leader).
		{"mp3", CatAV, 1.8, sizer(4.2*mb, 1.8), 0.99},
		{"wav", CatAV, 0.25, sizer(18*mb, 3), 0.85},
		{"ogg", CatAV, 0.8, sizer(3.5*mb, 2), 0.99},
		{"flac", CatAV, 0.25, sizer(22*mb, 2), 0.98},
		{"avi", CatAV, 0.25, tailedSizer(120*mb, 3, 0.2, 700*mb, 1.6), 0.98},
		{"mp4", CatAV, 0.3, tailedSizer(80*mb, 3, 0.2, 500*mb, 1.6), 0.98},
		{"mkv", CatAV, 0.15, tailedSizer(200*mb, 2.5, 0.25, 1000*mb, 1.5), 0.98},
		// Application/binary.
		{"o", CatBinary, 6.5, sizer(40*kb, 5), 0.5},
		{"so", CatBinary, 1.5, sizer(150*kb, 4), 0.6},
		{"jar", CatBinary, 1.5, sizer(600*kb, 4), 0.95},
		{"exe", CatBinary, 1.0, sizer(700*kb, 4), 0.8},
		{"pyc", CatBinary, 5.0, sizer(12*kb, 3), 0.6},
		{"msf", CatBinary, 0.8, sizer(200*kb, 4), 0.7},
		// Compressed: large and incompressible.
		{"zip", CatCompressed, 1.1, tailedSizer(2*mb, 8, 0.12, 80*mb, 1.5), 0.99},
		{"gz", CatCompressed, 0.9, tailedSizer(1*mb, 8, 0.1, 60*mb, 1.5), 0.99},
		{"tar", CatCompressed, 0.5, tailedSizer(6*mb, 6, 0.12, 100*mb, 1.5), 0.6},
		{"rar", CatCompressed, 0.35, tailedSizer(4*mb, 6, 0.15, 120*mb, 1.5), 0.99},
		// Other / no extension.
		{"log", CatOther, 1.5, sizer(60*kb, 8), 0.25},
		{"dat", CatOther, 1.2, sizer(120*kb, 8), 0.7},
		{"bak", CatOther, 0.8, sizer(250*kb, 8), 0.6},
		{"", CatOther, 2.0, sizer(30*kb, 8), 0.6},
	}
}

// Class is the four-way user classification of §6.1 (after Drago et al.).
type Class uint8

// User classes with the measured population shares.
const (
	Occasional   Class = iota // 85.82% — transfer less than ~10 KB
	UploadOnly                // 7.22%
	DownloadOnly              // 2.34%
	Heavy                     // 4.62%
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Occasional:
		return "occasional"
	case UploadOnly:
		return "upload-only"
	case DownloadOnly:
		return "download-only"
	default:
		return "heavy"
	}
}

// ClassShares returns the population mix of §6.1.
func ClassShares() []float64 { return []float64{0.8582, 0.0722, 0.0234, 0.0462} }

// classParams tunes behavior per class.
type classParams struct {
	// activeP is the probability that a session performs data management
	// (the overall blend must land near the paper's 5.57% active sessions).
	activeP float64
	// upP vs downP split transfer bursts; the remainder are deletes,
	// directory and volume operations.
	upP, downP float64
	// weight samples the user's long-run activity multiplier; its spread
	// across users produces the Gini ≈ 0.89 traffic concentration.
	weight dist.Sampler
	// sessionsPerDay is the base session arrival rate.
	sessionsPerDay float64
}

// classParamsTab holds the four parameter sets, one per class. params
// returns pointers into it: the sets are immutable and identical for every
// user of a class, so sharing one copy avoids embedding the struct (and
// boxing its samplers) in each of a million user rows.
var classParamsTab = [...]classParams{
	Occasional: {
		activeP: 0.0045, upP: 0.40, downP: 0.42,
		weight:         dist.LognormalFromMedian(0.08, 2.5),
		sessionsPerDay: 1.6,
	},
	UploadOnly: {
		activeP: 0.12, upP: 0.70, downP: 0.02,
		weight:         dist.ParetoTailed{Body: dist.LognormalFromMedian(1, 3), Tail: dist.Pareto{Xm: 12, Alpha: 1.05}, TailP: 0.06},
		sessionsPerDay: 2.2,
	},
	DownloadOnly: {
		activeP: 0.12, upP: 0.02, downP: 0.70,
		weight:         dist.ParetoTailed{Body: dist.LognormalFromMedian(1, 3), Tail: dist.Pareto{Xm: 12, Alpha: 1.05}, TailP: 0.06},
		sessionsPerDay: 2.2,
	},
	Heavy: {
		activeP: 0.26, upP: 0.37, downP: 0.40,
		weight:         dist.ParetoTailed{Body: dist.LognormalFromMedian(2, 3.5), Tail: dist.Pareto{Xm: 30, Alpha: 0.85}, TailP: 0.10},
		sessionsPerDay: 3.4,
	},
}

func params(c Class) *classParams {
	if int(c) < 0 || int(c) >= len(classParamsTab) {
		c = Heavy
	}
	return &classParamsTab[c]
}

// Profile bundles every distribution the generator draws from.
type Profile struct {
	Extensions []ExtProfile
	extPick    *dist.Categorical
	popPick    *dist.Categorical

	// SessionLength: 32% sub-second (NAT churn), lognormal body, 97% < 8 h.
	ShortSessionP float64
	ShortSession  dist.Sampler
	SessionBody   dist.Sampler

	// Burst structure inside active sessions.
	OpsPerActiveSession dist.Sampler // long-tailed (Fig. 16 inner plot)
	BatchSize           dist.Sampler // files per directory-granularity burst
	IntraBurstGap       dist.Sampler // seconds between ops of one burst
	InterBurstGap       dist.Sampler // the Fig. 9 power-law tail

	// Content popularity: dedup hits come from a Zipf universe.
	PopularContentP float64
	ZipfS           float64
	ZipfN           uint64

	// UpdateP is the chance a non-edit upload rewrites an existing file.
	UpdateP float64
	// EditBurstP makes an upload burst an "edit session" on one file: the
	// burst re-uploads the same node repeatedly (save cycles), producing
	// the paper's dominant WAW dependency class (Fig. 3a).
	EditBurstP float64
	// EditNewVersionP is the chance an edit-re-upload carries new content
	// (an update, §5.1) rather than the same hash (a no-change re-upload).
	EditNewVersionP float64
	// DeleteP scales deletion pressure (§5.2: ≈29% of new files die within
	// the month).
	DeleteP float64
	// SyncBackP models the user's other device fetching freshly uploaded
	// files (the RAW dependency of Fig. 3a).
	SyncBackP float64
	// UDFP is the chance an active session creates a UDF until the user
	// reaches its UDF budget (58% of users have at least one).
	UDFP float64
	// ShareP governs share creation (1.8% of users, §6.3).
	ShareP float64

	// Diurnal modulation (§5.1, §7.3).
	Sessions dist.Diurnal
	Activity dist.Diurnal
}

// DefaultProfile returns the calibrated profile.
func DefaultProfile() *Profile {
	p := &Profile{
		Extensions:    DefaultExtensions(),
		ShortSessionP: 0.32,
		ShortSession:  dist.Uniform{Lo: 0.05, Hi: 1.0},
		SessionBody: dist.ParetoTailed{
			Body:  dist.LognormalFromMedian(45*60, 3.2), // 45 min median
			Tail:  dist.Pareto{Xm: 8 * 3600, Alpha: 1.6},
			TailP: 0.035,
		},
		OpsPerActiveSession: dist.BoundedPareto{Xm: 11, Cap: 50000, Alpha: 0.66},
		BatchSize:           dist.ParetoTailed{Body: dist.LognormalFromMedian(2.5, 2), Tail: dist.Pareto{Xm: 25, Alpha: 1.6}, TailP: 0.08},
		IntraBurstGap:       dist.LognormalFromMedian(1.2, 3),
		InterBurstGap: dist.ParetoTailed{
			Body:  dist.LognormalFromMedian(8, 3),
			Tail:  dist.Pareto{Xm: 41.37, Alpha: 0.54}, // Fig. 9b upload fit
			TailP: 0.35,
		},
		EditBurstP:      0.33,
		EditNewVersionP: 0.32,
		PopularContentP: 0.18,
		ZipfS:           1.35,
		ZipfN:           0, // auto: scales with the population

		UpdateP:   0.04,
		DeleteP:   0.30,
		SyncBackP: 0.28,
		UDFP:      0.10,
		ShareP:    0.0025,
		Sessions: dist.Diurnal{
			PeakHour: 13, Amplitude: 3.2, MondayBoost: 0.08, WeekendDip: 0.07,
		},
		Activity: dist.Diurnal{
			PeakHour: 14, Amplitude: 3.5, MondayBoost: 0.06, WeekendDip: 0.07,
		},
	}
	weights := make([]float64, len(p.Extensions))
	for i, e := range p.Extensions {
		weights[i] = e.Weight
	}
	p.extPick = dist.NewCategorical(weights...)
	return p
}

// PickExtension samples an extension profile.
func (p *Profile) PickExtension(r dist.Rand) *ExtProfile {
	return &p.Extensions[p.extPick.Draw(r)]
}

// popularExtNames weights the extensions of widely shared content: songs,
// videos, archives and installers — the media files behind U1's dedup hot
// spots (§5.3: "a small number of files accounts for a very large number of
// duplicates (e.g. popular songs)").
var popularExtNames = []struct {
	ext string
	w   float64
}{
	{"mp3", 2.0}, {"jpg", 5.0}, {"zip", 0.8}, {"mp4", 0.4},
	{"avi", 0.25}, {"exe", 1.0}, {"pdf", 2.5}, {"png", 3.0},
}

// PickPopularExtension samples the extension of a popular (shared) content.
func (p *Profile) PickPopularExtension(r dist.Rand) *ExtProfile {
	if p.popPick == nil {
		weights := make([]float64, len(popularExtNames))
		for i, pe := range popularExtNames {
			weights[i] = pe.w
		}
		p.popPick = dist.NewCategorical(weights...)
	}
	return p.ExtByName(popularExtNames[p.popPick.Draw(r)].ext)
}

// ExtByName resolves an extension profile by its extension string; unknown
// extensions resolve to the catch-all empty profile.
func (p *Profile) ExtByName(ext string) *ExtProfile {
	for i := range p.Extensions {
		if p.Extensions[i].Ext == ext {
			return &p.Extensions[i]
		}
	}
	return &p.Extensions[len(p.Extensions)-1]
}

// extIndex returns e's catalog index (the catch-all when e is not a catalog
// entry). Catalog entries are handed out as &p.Extensions[i], so pointer
// identity is the lookup key; the compact fileRef representation stores this
// index instead of the pointer.
func (p *Profile) extIndex(e *ExtProfile) uint16 {
	for i := range p.Extensions {
		if &p.Extensions[i] == e {
			return uint16(i)
		}
	}
	return uint16(len(p.Extensions) - 1)
}

// extIndexByName returns the catalog index whose Ext matches exactly, with
// no catch-all fallback — callers that must reconstruct a name byte-for-byte
// use the miss to fall back to whole-name interning.
func (p *Profile) extIndexByName(ext string) (uint16, bool) {
	for i := range p.Extensions {
		if p.Extensions[i].Ext == ext {
			return uint16(i), true
		}
	}
	return 0, false
}

// extIndexLoose is extIndex keyed by name: the exact match when the catalog
// has one, the catch-all otherwise — ExtByName's semantics as an index.
func (p *Profile) extIndexLoose(ext string) uint16 {
	if i, ok := p.extIndexByName(ext); ok {
		return i
	}
	return uint16(len(p.Extensions) - 1)
}

// PickClass samples a user class with the §6.1 shares.
func PickClass(r dist.Rand) Class {
	u := r.Float64()
	shares := ClassShares()
	acc := 0.0
	for i, s := range shares {
		acc += s
		if u < acc {
			return Class(i)
		}
	}
	return Heavy
}
