package workload

import (
	"math"
	"math/rand"

	"u1/internal/dist"
)

// urng is one user's random stream. In the default configuration it wraps
// the ~5 KB math/rand lagged-Fibonacci generator whose streams the committed
// goldens pin. Under LowMem the wrapper holds an 8-byte splitmix64 state and
// implements the handful of draws the workload uses directly — a *rand.Rand
// plus its source costs ~64 bytes of heap per user even over a splitmix
// source, which is real memory at a million users. The LowMem stream differs
// from the default one (Config.LowMem documents that trade); determinism for
// a fixed (Seed, Workers, LowMem) still holds.
//
// urng satisfies dist.Rand, so profile samplers draw from either mode
// transparently.
type urng struct {
	std *rand.Rand // default configuration; nil under LowMem
	s   uint64     // splitmix64 state when std == nil
}

// newURng builds a user stream for seed: math/rand by default, splitmix64
// under low-memory mode. Seeding mirrors dist.NewSplitmixSource.
func newURng(seed int64, lowMem bool) *urng {
	if lowMem {
		return &urng{s: uint64(seed)}
	}
	return &urng{std: rand.New(rand.NewSource(seed))}
}

// next is the canonical splitmix64 step (LowMem mode only).
func (r *urng) next() uint64 {
	r.s += dist.Splitmix64Gamma
	return dist.Splitmix64(r.s)
}

// Float64 returns a uniform draw in [0, 1).
func (r *urng) Float64() float64 {
	if r.std != nil {
		return r.std.Float64()
	}
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand. The LowMem path reduces by modulo: the bias is O(n/2^64),
// far below anything a workload statistic can observe.
func (r *urng) Intn(n int) int {
	if r.std != nil {
		return r.std.Intn(n)
	}
	if n <= 0 {
		panic("invalid argument to Intn")
	}
	return int(r.next() % uint64(n))
}

// ExpFloat64 returns an Exp(1) draw. The LowMem path uses the exact
// inverse-CDF transform instead of math/rand's ziggurat.
func (r *urng) ExpFloat64() float64 {
	if r.std != nil {
		return r.std.ExpFloat64()
	}
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a N(0, 1) draw. The LowMem path uses Box–Muller,
// which is exact, at the cost of a log and a cosine per draw.
func (r *urng) NormFloat64() float64 {
	if r.std != nil {
		return r.std.NormFloat64()
	}
	u := 1 - r.Float64() // (0, 1]: keeps the log finite
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
