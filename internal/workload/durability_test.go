package workload

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"u1/internal/client"
	"u1/internal/faults"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/wal"
)

// The durable metadata tier must be invisible to the simulation schedule:
// journaling happens under the same shard locks as the in-memory mutation,
// and the fsync cost the durability interceptor charges lands in latency
// histograms, never in event ordering. These tests pin that contract against
// the established goldens and against in-memory runs of the hard fault case.

// TestDurableWorkersOneMatchesGolden reproduces the pre-shard golden totals
// and record counts with the WAL on at the most expensive policy: durability
// must not perturb the serial stream by a single op.
func TestDurableWorkersOneMatchesGolden(t *testing.T) {
	golden := []struct {
		users, days int
		seed        int64
		want        Totals
		records     int
	}{
		{80, 2, 42, Totals{Users: 80, Sessions: 145, Uploads: 28, Deletes: 9}, 1045},
		{150, 3, 11, Totals{Users: 150, Sessions: 448, Uploads: 252, Downloads: 90, Deletes: 40}, 3712},
	}
	for _, c := range golden {
		cluster, err := server.OpenCluster(server.Config{
			Seed: c.seed, Durability: t.TempDir(), FsyncPolicy: wal.FsyncPerOp,
		})
		if err != nil {
			t.Fatal(err)
		}
		col := trace.NewCollector(trace.Config{Start: PaperStart, Days: c.days, Shards: cluster.Store.NumShards(), Seed: c.seed})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		g := New(Config{Users: c.users, Days: c.days, Start: PaperStart, Seed: c.seed,
			Workers: 1, Attacks: []Attack{}}, cluster)
		g.Run()
		if got := g.Totals(); got != c.want {
			t.Errorf("users=%d seed=%d: durable totals = %+v, want golden %+v", c.users, c.seed, got, c.want)
		}
		if col.Len() != c.records {
			t.Errorf("users=%d seed=%d: %d records, want golden %d", c.users, c.seed, col.Len(), c.records)
		}
		snap := cluster.Metrics.Snapshot()
		if n := snap.Counters[metrics.WALPrefix+"journaled"]; n == 0 {
			t.Error("durability interceptor never fired; the contract was not exercised")
		}
		if n := snap.Counters[metrics.WALPrefix+"errors"]; n != 0 {
			t.Errorf("journal errors during golden run: %d", n)
		}
		if err := cluster.Close(); err != nil {
			t.Errorf("closing durable cluster: %v", err)
		}
	}
}

// durableFaultRun is faults_test.go's faultRun against a journaling cluster.
func durableFaultRun(t *testing.T, workers int, plan *faults.Plan, retry client.Retry) (Totals, int, map[uint64][]string, metrics.Snapshot) {
	t.Helper()
	cluster, err := server.OpenCluster(server.Config{
		Seed: 3, FaultPlan: plan,
		Durability: t.TempDir(), FsyncPolicy: wal.FsyncGroupCommit,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(trace.Config{Start: PaperStart, Days: 2, Shards: cluster.Store.NumShards(), Seed: 3})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())
	g := New(Config{Users: 120, Days: 2, Start: PaperStart, Seed: 3, Workers: workers,
		Attacks: []Attack{}, Retry: retry}, cluster)
	g.Run()
	streams := make(map[uint64][]string)
	for _, r := range col.Records() {
		streams[r.User] = append(streams[r.User],
			fmt.Sprintf("%d/%d/%d", r.Kind, r.Op, r.Status))
	}
	snap := cluster.Metrics.Snapshot()
	if err := cluster.Close(); err != nil {
		t.Errorf("closing durable cluster: %v", err)
	}
	return g.Totals(), col.Len(), streams, snap
}

// TestDurableFaultRunMatchesInMemory pins the full determinism contract with
// durability on: the same (Seed, Workers, FaultPlan) produces the same
// totals, record counts, per-user op streams, and fault counters as the
// in-memory cluster — injected failures, retries and all — at both ends of
// the worker range.
func TestDurableFaultRunMatchesInMemory(t *testing.T) {
	plan := faults.Uniform(11, 0.05)
	retry := client.Retry{Max: 2, Backoff: 2 * time.Second}
	for _, workers := range []int{1, 4} {
		t1, n1, s1, m1 := faultRun(t, workers, plan, retry)
		t2, n2, s2, m2 := durableFaultRun(t, workers, plan, retry)
		if t1 != t2 {
			t.Errorf("workers=%d: durable totals differ from in-memory:\n%+v\n%+v", workers, t1, t2)
		}
		if n1 != n2 {
			t.Errorf("workers=%d: record counts differ: in-memory %d vs durable %d", workers, n1, n2)
		}
		for _, key := range []string{"injected", "shed", "retried", "retry_succeeded"} {
			a, b := m1.Counters[metrics.FaultsPrefix+key], m2.Counters[metrics.FaultsPrefix+key]
			if a != b {
				t.Errorf("workers=%d: faults.%s differs: in-memory %d vs durable %d", workers, key, a, b)
			}
		}
		if !reflect.DeepEqual(s1, s2) {
			for user := range s1 {
				if !reflect.DeepEqual(s1[user], s2[user]) {
					t.Errorf("workers=%d: user %d op stream differs:\nin-memory %v\ndurable   %v",
						workers, user, s1[user], s2[user])
					break
				}
			}
		}
		if m2.Counters[metrics.WALPrefix+"journaled"] == 0 {
			t.Errorf("workers=%d: durable run journaled nothing; the contract was not exercised", workers)
		}
	}
}
