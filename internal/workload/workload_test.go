package workload

import (
	"math/rand"
	"testing"
	"time"

	"u1/internal/dist"
	"u1/internal/protocol"
	"u1/internal/server"
	"u1/internal/trace"
)

// runSmall generates a small trace with the default worker count and returns
// the generator, collector and cluster for inspection.
func runSmall(t *testing.T, users, days int, attacks []Attack, seed int64) (*Generator, *trace.Collector, *server.Cluster) {
	t.Helper()
	return runSmallWorkers(t, users, days, attacks, seed, 0)
}

// runSmallWorkers is runSmall with an explicit generator shard count.
func runSmallWorkers(t *testing.T, users, days int, attacks []Attack, seed int64, workers int) (*Generator, *trace.Collector, *server.Cluster) {
	t.Helper()
	cluster := server.NewCluster(server.Config{Seed: seed})
	start := PaperStart
	col := trace.NewCollector(trace.Config{Start: start, Days: days, Shards: cluster.Store.NumShards(), Seed: seed})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())
	g := New(Config{Users: users, Days: days, Start: start, Seed: seed, Workers: workers, Attacks: attacks}, cluster)
	g.Run()
	return g, col, cluster
}

func TestGeneratorProducesWorkload(t *testing.T) {
	g, col, cluster := runSmall(t, 150, 3, []Attack{}, 11)
	tot := g.Totals()
	if tot.Sessions == 0 {
		t.Fatal("no sessions generated")
	}
	if tot.Uploads == 0 || tot.Downloads == 0 {
		t.Errorf("transfers missing: %+v", tot)
	}
	if tot.Deletes == 0 {
		t.Errorf("no deletes: %+v", tot)
	}
	recs := col.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	// All records inside the trace window.
	end := PaperStart.Add(3 * 24 * time.Hour).Add(8 * 24 * time.Hour) // sessions may outlive the window
	for _, r := range recs {
		at := r.When()
		if at.Before(PaperStart) || at.After(end) {
			t.Fatalf("record outside window: %v", at)
		}
	}
	// The RPC aggregate saw traffic on several shards.
	agg := col.RPC()
	var activeShards int
	for s := range agg.ShardMinute {
		for _, n := range agg.ShardMinute[s] {
			if n > 0 {
				activeShards++
				break
			}
		}
	}
	if activeShards < 5 {
		t.Errorf("traffic on %d shards only", activeShards)
	}
	// Dedup happened (popular content).
	if dr := cluster.Store.Contents().DedupRatio(); dr <= 0 {
		t.Errorf("dedup ratio = %v", dr)
	}
	// Auth failures injected at the configured rate appear.
	if cluster.Auth.Stats().Failed == 0 && tot.FailedAuths == 0 {
		t.Log("note: no auth failures in this small run (rate is 2.76%)")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, col1, _ := runSmall(t, 80, 2, []Attack{}, 42)
	g2, col2, _ := runSmall(t, 80, 2, []Attack{}, 42)
	if g1.Totals() != g2.Totals() {
		t.Errorf("totals differ:\n%+v\n%+v", g1.Totals(), g2.Totals())
	}
	if col1.Len() != col2.Len() {
		t.Errorf("record counts differ: %d vs %d", col1.Len(), col2.Len())
	}
}

// TestWorkersOneMatchesPreShardGolden pins the Workers=1 determinism
// contract: the sharded generator with one shard reproduces the pre-shard
// serial generator bit-for-bit. The golden values were captured from the
// serial implementation (PR 3 tree) at these exact configurations; a drift
// here means the legacy stream changed, not just a refactor.
func TestWorkersOneMatchesPreShardGolden(t *testing.T) {
	golden := []struct {
		users, days int
		seed        int64
		want        Totals
		records     int
	}{
		{80, 2, 42, Totals{Users: 80, Sessions: 145, Uploads: 28, Deletes: 9}, 1045},
		{150, 3, 11, Totals{Users: 150, Sessions: 448, Uploads: 252, Downloads: 90, Deletes: 40}, 3712},
	}
	for _, c := range golden {
		g, col, _ := runSmallWorkers(t, c.users, c.days, []Attack{}, c.seed, 1)
		if got := g.Totals(); got != c.want {
			t.Errorf("users=%d days=%d seed=%d: totals = %+v, want pre-shard golden %+v",
				c.users, c.days, c.seed, got, c.want)
		}
		if col.Len() != c.records {
			t.Errorf("users=%d days=%d seed=%d: %d records, want pre-shard golden %d",
				c.users, c.days, c.seed, col.Len(), c.records)
		}
	}
}

// TestParallelGeneratorDeterministic pins the relaxed contract: for a fixed
// (Seed, Workers) the Totals and the record counts are reproducible
// regardless of how the shard goroutines interleave.
func TestParallelGeneratorDeterministic(t *testing.T) {
	for _, workers := range []int{2, 4} {
		g1, col1, _ := runSmallWorkers(t, 120, 2, []Attack{}, 77, workers)
		g2, col2, _ := runSmallWorkers(t, 120, 2, []Attack{}, 77, workers)
		if g1.Totals() != g2.Totals() {
			t.Errorf("workers=%d: totals differ across runs:\n%+v\n%+v", workers, g1.Totals(), g2.Totals())
		}
		if col1.Len() != col2.Len() {
			t.Errorf("workers=%d: record counts differ: %d vs %d", workers, col1.Len(), col2.Len())
		}
		if g1.Totals().Sessions == 0 {
			t.Errorf("workers=%d: degenerate run, no sessions", workers)
		}
	}
}

// TestParallelDeterministicWithFailuresAndAttacks pins the hard case of the
// contract: SSO failure injection and a DDoS storm both cross shard
// boundaries through shared services (auth, fleet caches, least-loaded
// placement). Failures are a pure function of (Seed, user, now) and
// revocation flushes the fleet caches, so two runs at the same
// (Seed, Workers) must still agree exactly.
func TestParallelDeterministicWithFailuresAndAttacks(t *testing.T) {
	run := func() (Totals, int) {
		cluster := server.NewCluster(server.Config{Seed: 3, AuthFailureRate: 0.0276})
		col := trace.NewCollector(trace.Config{Start: PaperStart, Days: 2, Shards: cluster.Store.NumShards(), Seed: 3})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		g := New(Config{
			Users: 150, Days: 2, Start: PaperStart, Seed: 3, Workers: 4,
			Attacks: []Attack{{Day: 0, Hour: 6, Duration: time.Hour, APIFactor: 30, AuthFactor: 8}},
		}, cluster)
		g.Run()
		return g.Totals(), col.Len()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 {
		t.Errorf("totals differ across runs:\n%+v\n%+v", t1, t2)
	}
	if n1 != n2 {
		t.Errorf("record counts differ: %d vs %d", n1, n2)
	}
	if t1.FailedAuths == 0 {
		t.Error("failure injection never fired; the hard case was not exercised")
	}
	if t1.AttackSessions == 0 {
		t.Error("attack never ran; the hard case was not exercised")
	}
}

// TestTrailingCadencesRunThroughWindowEnd pins the epoch-hook cadence
// arithmetic against the serial chains: the serial GC event for a 1-day
// window fires exactly once, at t == end (the event fires; only its
// reschedule is guarded by now < end). The boundary hook must do the same —
// an exclusive end guard used to skip that final sweep entirely.
func TestTrailingCadencesRunThroughWindowEnd(t *testing.T) {
	cluster := server.NewCluster(server.Config{Seed: 1})
	g := New(Config{Users: 1, Days: 1, Seed: 1, Workers: 2, Attacks: []Attack{}}, cluster)
	g.nextPump = g.cfg.Start.Add(10 * time.Minute)
	g.nextGC = g.cfg.Start.Add(24 * time.Hour)
	g.runCadences(g.end) // the sentinel event parks the last epoch at/after end
	if !g.nextGC.IsZero() {
		t.Errorf("GC chain did not run its final sweep at the window end: next = %v", g.nextGC)
	}
	if !g.nextPump.IsZero() {
		t.Errorf("pump chain did not run through the window end: next = %v", g.nextPump)
	}
}

// TestParallelGeneratorCoversShards checks that a parallel run actually
// spreads the population across shard event loops (the stable user→shard
// hash must not collapse).
func TestParallelGeneratorCoversShards(t *testing.T) {
	g, _, _ := runSmallWorkers(t, 120, 1, []Attack{}, 9, 4)
	if got := g.Engine().NumShards(); got != 4 {
		t.Fatalf("engine shards = %d, want 4", got)
	}
	var populated int
	for _, sh := range g.shards {
		if len(sh.users) > 0 {
			populated++
		}
		if sh.eng.Executed() == 0 && len(sh.users) > 0 {
			t.Errorf("shard with %d users ran no events", len(sh.users))
		}
	}
	if populated < 3 {
		t.Errorf("only %d of 4 shards populated", populated)
	}
}

// TestThinningAcceptsFinalAttempt is the regression test for the silent
// user drop: with a near-zero diurnal factor the thinning loop used to
// reject 1000 draws and return without scheduling anything, removing the
// user from the rest of the trace window. The final attempt must accept.
func TestThinningAcceptsFinalAttempt(t *testing.T) {
	p := DefaultProfile()
	// Amplitude 1e9 puts the diurnal trough at ~1e-9; PaperStart is
	// midnight with the peak at noon, so factors stay ≈0 near the start.
	p.Sessions = dist.Diurnal{PeakHour: 12, Amplitude: 1e9}
	cluster := server.NewCluster(server.Config{Seed: 5})
	g := New(Config{Users: 1, Days: 30, Seed: 5, Workers: 1, Profile: p, Attacks: []Attack{}}, cluster)
	u := &user{
		id:  1,
		rng: newURng(9, false),
		sh:  g.shards[0],
		par: params(Heavy),
		// Mean gaps of ~17ms keep all 1000 thinning draws pinned to the
		// midnight trough, where every one of them is rejected.
		rateBoost: 5_000_000,
	}
	g.scheduleNextSession(u, g.cfg.Start)
	if g.shards[0].eng.Pending() == 0 {
		t.Fatal("thinning dropped the user: no session scheduled inside the window")
	}
	at, _ := g.shards[0].eng.NextEventAt()
	if at.Before(g.cfg.Start) || at.After(g.end) {
		t.Errorf("accepted session at %v, outside the window [%v, %v]", at, g.cfg.Start, g.end)
	}
}

func TestAttackInjection(t *testing.T) {
	attacks := []Attack{{Day: 0, Hour: 6, Duration: time.Hour, APIFactor: 50, AuthFactor: 10}}
	g, col, _ := runSmall(t, 100, 1, attacks, 5)
	if g.Totals().AttackSessions == 0 {
		t.Fatal("no attack sessions ran")
	}
	// The attack hour must dominate the day's request counts.
	perHour := make([]int, 24)
	for _, r := range col.Records() {
		h := int(r.When().Sub(PaperStart) / time.Hour)
		if h >= 0 && h < 24 {
			perHour[h]++
		}
	}
	attackHour := perHour[6] + perHour[7]
	var rest, restHours int
	for h, n := range perHour {
		if h != 6 && h != 7 {
			rest += n
			restHours++
		}
	}
	if rest == 0 {
		t.Skip("baseline too small to compare")
	}
	baselinePerHour := float64(rest) / float64(restHours)
	if float64(attackHour)/2 < 5*baselinePerHour {
		t.Errorf("attack hours carry %d requests vs baseline %f/h; expected ≥5x spike",
			attackHour, baselinePerHour)
	}
}

func TestClassMixMatchesPaper(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	counts := map[Class]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[PickClass(r)]++
	}
	want := map[Class]float64{Occasional: 0.8582, UploadOnly: 0.0722, DownloadOnly: 0.0234, Heavy: 0.0462}
	for class, share := range want {
		got := float64(counts[class]) / n
		if got < share*0.9 || got > share*1.1 {
			t.Errorf("class %v share = %v, want ≈ %v", class, got, share)
		}
	}
}

func TestExtensionCatalog(t *testing.T) {
	exts := DefaultExtensions()
	if len(exts) < 35 {
		t.Errorf("catalog has %d extensions", len(exts))
	}
	cats := map[Category]bool{}
	for _, e := range exts {
		cats[e.Cat] = true
		if e.Weight <= 0 {
			t.Errorf("extension %q has weight %v", e.Ext, e.Weight)
		}
		if e.Compress <= 0 || e.Compress > 1 {
			t.Errorf("extension %q has compressibility %v", e.Ext, e.Compress)
		}
	}
	for c := CatCode; c <= CatOther; c++ {
		if !cats[c] {
			t.Errorf("category %v has no extensions", c)
		}
		if c.String() == "" {
			t.Error("category must render")
		}
	}
}

func TestFileSizesMostlySmall(t *testing.T) {
	// 90% of files are smaller than 1 MB (§5.3); verify the catalog's
	// aggregate stays in that neighborhood.
	p := DefaultProfile()
	r := rand.New(rand.NewSource(3))
	var small, total int
	for i := 0; i < 50000; i++ {
		ext := p.PickExtension(r)
		if sampleSize(ext, r) < 1<<20 {
			small++
		}
		total++
	}
	frac := float64(small) / float64(total)
	if frac < 0.82 || frac > 0.97 {
		t.Errorf("small-file fraction = %v, want ≈ 0.90", frac)
	}
}

func TestSessionLengthShape(t *testing.T) {
	// 32% < 1 s and ≈97% < 8 h (§7.3).
	p := DefaultProfile()
	g := &Generator{prof: p}
	u := &user{rng: newURng(9, false)}
	var sub1s, sub8h, n int
	for i := 0; i < 30000; i++ {
		l := g.sessionLength(u)
		n++
		if l <= time.Second {
			sub1s++
		}
		if l <= 8*time.Hour {
			sub8h++
		}
	}
	if f := float64(sub1s) / float64(n); f < 0.28 || f > 0.37 {
		t.Errorf("sub-second sessions = %v, want ≈ 0.32", f)
	}
	if f := float64(sub8h) / float64(n); f < 0.94 || f > 0.995 {
		t.Errorf("sub-8h sessions = %v, want ≈ 0.97", f)
	}
}

func TestUserClassParamsComplete(t *testing.T) {
	for _, c := range []Class{Occasional, UploadOnly, DownloadOnly, Heavy} {
		par := params(c)
		if par.activeP <= 0 || par.activeP > 1 {
			t.Errorf("class %v activeP = %v", c, par.activeP)
		}
		if par.upP+par.downP > 1 {
			t.Errorf("class %v transfer probabilities exceed 1", c)
		}
		if par.weight == nil || par.sessionsPerDay <= 0 {
			t.Errorf("class %v incomplete params", c)
		}
		if c.String() == "" {
			t.Error("class must render")
		}
	}
}

func TestDefaultAttacksMatchPaperDays(t *testing.T) {
	atts := DefaultAttacks()
	if len(atts) != 3 {
		t.Fatalf("attacks = %d", len(atts))
	}
	days := []int{atts[0].Day, atts[1].Day, atts[2].Day}
	if days[0] != 4 || days[1] != 5 || days[2] != 26 {
		t.Errorf("attack days = %v, want Jan 15/16 + Feb 6 (4, 5, 26)", days)
	}
	if atts[1].APIFactor != 245 {
		t.Errorf("big attack factor = %v", atts[1].APIFactor)
	}
}

func TestTraceRoundTripFromGenerator(t *testing.T) {
	_, col, _ := runSmall(t, 60, 1, []Attack{}, 21)
	dir := t.TempDir()
	if err := col.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != col.Len() {
		t.Errorf("read %d records, wrote %d", len(ds.Records), col.Len())
	}
	if ds.BadLines != 0 {
		t.Errorf("bad lines = %d", ds.BadLines)
	}
	// Sessions must appear as auth/close pairs per session id.
	open := map[uint64]int{}
	for _, r := range ds.Records {
		if r.Kind == trace.KindSession {
			switch protocol.Op(r.Op) {
			case protocol.OpAuthenticate:
				open[r.Session]++
			case protocol.OpCloseSession:
				open[r.Session]--
			}
		}
	}
	for sess, n := range open {
		if n < 0 {
			t.Errorf("session %d closed more than opened", sess)
		}
	}
}

func TestRecentWindowCappedForWhales(t *testing.T) {
	// Whale regression: over a long window the heaviest users churn through
	// far more files than their recent-window cap, so any append site that
	// bypassed remember's trim would grow without bound. remember is the
	// single append site (audited — every other mutation only removes
	// entries), and this run would catch a regression of that invariant.
	g, _, _ := runSmall(t, 120, 10, []Attack{}, 9)
	var whales, capped int
	for _, u := range g.users {
		limit := u.recentCap
		if limit < 64 {
			limit = 64
		}
		if len(u.recent) > limit {
			t.Fatalf("user %d holds %d recent files, cap %d", u.id, len(u.recent), limit)
		}
		if u.recentCap > 64 {
			whales++
		}
		if len(u.recent) == limit {
			capped++
		}
	}
	if whales == 0 {
		t.Fatal("no user drew a whale-sized recent cap; population too small to exercise the invariant")
	}
	if capped == 0 {
		t.Fatal("no user ever filled its recent window; the cap was never exercised")
	}
}
