package workload

import (
	"testing"

	"u1/internal/server"
	"u1/internal/trace"
)

// runRegions drives a small workload against a two-region cluster and
// returns the generator, collector and cluster for inspection.
func runRegions(t *testing.T, users, days int, seed int64, workers int, eventual bool) (*Generator, *trace.Collector, *server.Cluster) {
	t.Helper()
	cluster := server.NewCluster(server.Config{
		Seed:             seed,
		Regions:          2,
		ReplicationDelay: 1,
		EventualReads:    eventual,
	})
	col := trace.NewCollector(trace.Config{Start: PaperStart, Days: days, Shards: cluster.Store.NumShards(), Seed: seed})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())
	g := New(Config{Users: users, Days: days, Start: PaperStart, Seed: seed, Workers: workers, Attacks: []Attack{}}, cluster)
	g.Run()
	return g, col, cluster
}

// replCounters extracts the replication counters that the determinism
// contract pins: publication, application and read-routing tallies.
func replCounters(c *server.Cluster) map[string]uint64 {
	snap := c.Metrics.Snapshot()
	out := make(map[string]uint64)
	for _, k := range []string{
		"repl.published", "repl.applied", "repl.lww_skipped",
		"repl.reads.local", "repl.reads.remote", "repl.reads.stale",
	} {
		out[k] = snap.Counters[k]
	}
	return out
}

// requireReplicasConverged drains the replication backlog and checks every
// cross-region replica against the owner shard's fingerprint.
func requireReplicasConverged(t *testing.T, c *server.Cluster) {
	t.Helper()
	st := c.Store
	st.DrainReplication()
	if bl := st.ReplicationBacklog(); bl != 0 {
		t.Fatalf("backlog %d after drain", bl)
	}
	for r := 0; r < st.Regions(); r++ {
		for sh := 0; sh < st.NumShards(); sh++ {
			if st.RegionOf(sh) == r {
				continue
			}
			if got, want := st.ReplicaFingerprint(r, sh), st.ShardFingerprint(sh); got != want {
				t.Errorf("region %d replica of shard %d diverged: %s != %s", r, sh, got, want)
			}
		}
	}
}

// TestRegionsReadYourWritesMatchesGolden pins that turning on two regions
// with read-your-writes routing is invisible to the workload: replication is
// pure background at epoch barriers, every read still lands on the owner
// shard, and the Workers=1 pre-shard goldens reproduce bit-for-bit.
func TestRegionsReadYourWritesMatchesGolden(t *testing.T) {
	g, col, cluster := runRegions(t, 80, 2, 42, 1, false)
	want := Totals{Users: 80, Sessions: 145, Uploads: 28, Deletes: 9}
	if got := g.Totals(); got != want {
		t.Errorf("totals = %+v, want pre-shard golden %+v", got, want)
	}
	if col.Len() != 1045 {
		t.Errorf("%d records, want pre-shard golden 1045", col.Len())
	}
	if pub := replCounters(cluster)["repl.published"]; pub == 0 {
		t.Error("no replication records published — the region wiring is dead")
	}
	requireReplicasConverged(t, cluster)
}

// TestReplicationDeterministic pins the region determinism contract: a fixed
// (Seed, Workers, Regions) reproduces identical totals, record streams and
// replication counters across runs, at one worker and at four, under
// eventual reads (the mode where routing actually depends on backlog state).
func TestReplicationDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g1, col1, c1 := runRegions(t, 100, 2, 7, workers, true)
		g2, col2, c2 := runRegions(t, 100, 2, 7, workers, true)
		if g1.Totals() != g2.Totals() {
			t.Errorf("workers=%d: totals differ:\n%+v\n%+v", workers, g1.Totals(), g2.Totals())
		}
		if col1.Len() != col2.Len() {
			t.Errorf("workers=%d: record counts differ: %d vs %d", workers, col1.Len(), col2.Len())
		}
		r1, r2 := replCounters(c1), replCounters(c2)
		for k, v := range r1 {
			if r2[k] != v {
				t.Errorf("workers=%d: counter %s differs: %d vs %d", workers, k, v, r2[k])
			}
		}
		if r1["repl.published"] == 0 {
			t.Errorf("workers=%d: no replication records published", workers)
		}
		requireReplicasConverged(t, c1)
		requireReplicasConverged(t, c2)
	}
}
