package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedSingleShardMatchesSerialEngine(t *testing.T) {
	// One shard must reproduce the plain engine's (time, insertion-seq)
	// order exactly, including events scheduled from inside events.
	schedule := func(at func(time.Time, func()), after func(time.Duration, func()), log *[]int) {
		at(t0.Add(3*time.Hour), func() { *log = append(*log, 3) })
		at(t0.Add(1*time.Hour), func() { *log = append(*log, 1) })
		after(2*time.Hour, func() {
			*log = append(*log, 2)
			after(30*time.Minute, func() { *log = append(*log, 25) })
		})
	}
	plain := New(t0)
	var serial []int
	schedule(plain.At, plain.After, &serial)
	plainRan := plain.Run()

	se := NewSharded(t0, 1, 0)
	var sharded []int
	schedule(se.Shard(0).At, se.Shard(0).After, &sharded)
	shardedRan := se.Run()

	if plainRan != shardedRan {
		t.Fatalf("event counts differ: plain %d, sharded %d", plainRan, shardedRan)
	}
	if len(serial) != len(sharded) {
		t.Fatalf("logs differ in length: %v vs %v", serial, sharded)
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("order diverges at %d: %v vs %v", i, serial, sharded)
		}
	}
}

func TestShardedRunsAllShards(t *testing.T) {
	se := NewSharded(t0, 4, time.Hour)
	var ran atomic.Uint64
	for i := 0; i < se.NumShards(); i++ {
		eng := se.Shard(i)
		var chain func()
		left := 10
		chain = func() {
			ran.Add(1)
			left--
			if left > 0 {
				eng.After(7*time.Minute, chain)
			}
		}
		eng.After(time.Duration(i)*time.Minute, chain)
	}
	total := se.Run()
	if total != 40 || ran.Load() != 40 {
		t.Errorf("ran %d events (counted %d), want 40", total, ran.Load())
	}
	if se.Pending() != 0 {
		t.Errorf("pending = %d after drain", se.Pending())
	}
	if se.Executed() != 40 {
		t.Errorf("executed = %d", se.Executed())
	}
}

func TestShardedEpochBarrier(t *testing.T) {
	// Shard clocks never diverge by more than one epoch: an event observes
	// every other shard somewhere inside the same epoch.
	const epoch = time.Hour
	se := NewSharded(t0, 3, epoch)
	var violations atomic.Uint64
	for i := 0; i < se.NumShards(); i++ {
		eng := se.Shard(i)
		others := make([]*Engine, 0, 2)
		for j := 0; j < se.NumShards(); j++ {
			if j != i {
				others = append(others, se.Shard(j))
			}
		}
		var chain func()
		left := 50
		chain = func() {
			now := eng.Now()
			for _, o := range others {
				skew := now.Sub(o.Clock()())
				if skew > epoch || skew < -epoch {
					violations.Add(1)
				}
			}
			left--
			if left > 0 {
				eng.After(13*time.Minute, chain)
			}
		}
		eng.After(time.Minute, chain)
	}
	se.Run()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d cross-shard clock observations exceeded one epoch of skew", v)
	}
}

func TestShardedEpochHooksRunBetweenEpochs(t *testing.T) {
	se := NewSharded(t0, 2, time.Hour)
	const events = 8
	for i := 0; i < se.NumShards(); i++ {
		eng := se.Shard(i)
		for h := 0; h < events; h++ {
			eng.At(t0.Add(time.Duration(h)*time.Hour+30*time.Minute), func() {})
		}
	}
	var hookTimes []time.Time
	se.AtEpochEnd(func(now time.Time) { hookTimes = append(hookTimes, now) })
	se.Run()
	if len(hookTimes) != events {
		t.Fatalf("hook ran %d times, want one per %d epochs", len(hookTimes), events)
	}
	for i, at := range hookTimes {
		want := t0.Add(time.Duration(i+1) * time.Hour)
		if !at.Equal(want) {
			t.Errorf("hook %d at %v, want epoch boundary %v", i, at, want)
		}
	}
	if !se.Now().Equal(t0.Add(events * time.Hour)) {
		t.Errorf("engine parked at %v", se.Now())
	}
}

func TestShardedSkipsEmptyEpochs(t *testing.T) {
	// A week-long quiet stretch must not cost thousands of barriers: the
	// horizon jumps to the epoch containing the next event.
	se := NewSharded(t0, 2, 10*time.Minute)
	var hooks int
	se.AtEpochEnd(func(time.Time) { hooks++ })
	se.Shard(0).At(t0.Add(5*time.Minute), func() {})
	se.Shard(1).At(t0.Add(7*24*time.Hour), func() {})
	se.Run()
	if hooks > 3 {
		t.Errorf("idle week crossed %d epoch barriers, want ≤ 3", hooks)
	}
}

func TestShardForStableAndCovering(t *testing.T) {
	se := NewSharded(t0, 4, 0)
	seen := make(map[int]int)
	for key := uint64(1); key <= 1000; key++ {
		s1, s2 := se.ShardFor(key), se.ShardFor(key)
		if s1 != s2 {
			t.Fatalf("ShardFor(%d) unstable: %d vs %d", key, s1, s2)
		}
		if s1 < 0 || s1 >= 4 {
			t.Fatalf("ShardFor(%d) = %d out of range", key, s1)
		}
		seen[s1]++
	}
	for shard, n := range seen {
		if n < 150 || n > 350 {
			t.Errorf("shard %d holds %d of 1000 keys; hash badly skewed", shard, n)
		}
	}
}

func TestClockClosureRaceFree(t *testing.T) {
	// Clock closures are read from other goroutines while the engine runs
	// (transports stamping spans); -race must stay clean and observed times
	// must never precede the start.
	se := NewSharded(t0, 2, time.Hour)
	eng := se.Shard(0)
	clock := eng.Clock()
	for h := 0; h < 100; h++ {
		eng.After(time.Duration(h)*time.Minute, func() {})
	}
	stop := make(chan struct{})
	bad := make(chan time.Time, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if now := clock(); now.Before(t0) {
					select {
					case bad <- now:
					default:
					}
				}
			}
		}
	}()
	se.Run()
	close(stop)
	select {
	case at := <-bad:
		t.Errorf("clock observed %v, before start %v", at, t0)
	default:
	}
}

func TestEpochPinnedByDefault(t *testing.T) {
	// Without an AdaptEpoch call the constructor's epoch is the epoch for
	// the whole run — the contract the determinism goldens are recorded
	// under.
	se := NewSharded(t0, 2, time.Hour)
	var observed []time.Duration
	se.AtEpochEnd(func(time.Time) { observed = append(observed, se.Epoch()) })
	for i := 0; i < se.NumShards(); i++ {
		eng := se.Shard(i)
		for h := 0; h < 6; h++ {
			eng.At(t0.Add(time.Duration(h)*time.Hour+30*time.Minute), func() {})
		}
	}
	se.Run()
	if len(observed) == 0 {
		t.Fatal("no epochs closed")
	}
	for i, e := range observed {
		if e != time.Hour {
			t.Fatalf("epoch %d resized to %v without AdaptEpoch", i, e)
		}
	}
}

func TestAdaptiveEpochGrowsWhenSparse(t *testing.T) {
	// One event per hour against a LowEvents=4 water mark: every barrier
	// closes under-full, so the epoch doubles monotonically until Max.
	se := NewSharded(t0, 1, 10*time.Minute)
	se.AdaptEpoch(EpochAdaptation{Min: 10 * time.Minute, Max: 4 * time.Hour, LowEvents: 4})
	var sizes []time.Duration
	se.AtEpochEnd(func(time.Time) { sizes = append(sizes, se.Epoch()) })
	eng := se.Shard(0)
	var chain func()
	left := 60
	chain = func() {
		left--
		if left > 0 {
			eng.After(time.Hour, chain)
		}
	}
	eng.After(time.Minute, chain)
	se.Run()
	if len(sizes) < 2 {
		t.Fatalf("only %d epochs closed", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("epoch shrank under sparse load: %v then %v", sizes[i-1], sizes[i])
		}
	}
	if sizes[len(sizes)-1] != 4*time.Hour {
		t.Errorf("epoch plateaued at %v, want Max=4h", sizes[len(sizes)-1])
	}
}

func TestAdaptiveEpochShrinksWhenDense(t *testing.T) {
	// A dense event chain (one per minute) against HighEvents=5: every
	// barrier closes over-full, so the epoch halves monotonically to Min.
	se := NewSharded(t0, 1, 4*time.Hour)
	se.AdaptEpoch(EpochAdaptation{Min: 15 * time.Minute, Max: 4 * time.Hour, HighEvents: 5})
	var sizes []time.Duration
	se.AtEpochEnd(func(time.Time) { sizes = append(sizes, se.Epoch()) })
	eng := se.Shard(0)
	var chain func()
	left := 2000
	chain = func() {
		left--
		if left > 0 {
			eng.After(time.Minute, chain)
		}
	}
	eng.After(time.Minute, chain)
	se.Run()
	if len(sizes) < 2 {
		t.Fatalf("only %d epochs closed", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("epoch grew under dense load: %v then %v", sizes[i-1], sizes[i])
		}
	}
	if sizes[len(sizes)-1] != 15*time.Minute {
		t.Errorf("epoch plateaued at %v, want Min=15m", sizes[len(sizes)-1])
	}
}

func TestAdaptiveEpochClampsAndStaysDeterministic(t *testing.T) {
	// Alternating sparse and dense stretches push the size both ways; it
	// must never leave [Min, Max], and two identical runs must adapt
	// through the identical size trajectory.
	run := func() []time.Duration {
		se := NewSharded(t0, 2, time.Hour)
		se.AdaptEpoch(EpochAdaptation{Min: 30 * time.Minute, Max: 2 * time.Hour, LowEvents: 3, HighEvents: 20})
		var sizes []time.Duration
		se.AtEpochEnd(func(time.Time) { sizes = append(sizes, se.Epoch()) })
		for i := 0; i < se.NumShards(); i++ {
			eng := se.Shard(i)
			// Dense burst in hours 0-3, sparse tail through hour 40.
			for m := 0; m < 180; m += 2 {
				eng.At(t0.Add(time.Duration(m)*time.Minute), func() {})
			}
			for h := 4; h < 40; h += 3 {
				eng.At(t0.Add(time.Duration(h)*time.Hour), func() {})
			}
		}
		se.Run()
		return sizes
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no epochs closed")
	}
	for i, e := range a {
		if e < 30*time.Minute || e > 2*time.Hour {
			t.Fatalf("epoch %d = %v escaped [30m, 2h]", i, e)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("adaptation nondeterministic: %d vs %d epochs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("adaptation nondeterministic at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}
