package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// mailboxRun drives a fixed message pattern through a sharded engine: every
// shard posts two messages per hourly event toward one shared mailbox, and a
// second mailbox re-posts the first hour's traffic from barrier context. It
// returns the shared mailbox's full delivery transcript.
func mailboxRun(t *testing.T, shards int) []string {
	t.Helper()
	se := NewSharded(t0, shards, time.Hour)
	var transcript []string
	main := se.RegisterMailbox(func(now time.Time, batch []Message) {
		if len(batch) > 0 {
			transcript = append(transcript, "batch")
		}
		for _, m := range batch {
			transcript = append(transcript,
				fmt.Sprintf("%s from=%d seq=%d kind=%s payload=%v",
					now.Format("15:04"), m.From, m.Seq, m.Kind, m.Payload))
		}
	})
	for i := 0; i < shards; i++ {
		i := i
		for h := 0; h < 4; h++ {
			at := t0.Add(time.Duration(h)*time.Hour + 5*time.Minute)
			se.Shard(i).At(at, func() {
				se.Post(i, main, "tick", at.Hour())
				se.Post(i, main, "tock", at.Hour())
			})
		}
	}
	// A control-context consumer: during each barrier it echoes one message
	// back into the shared mailbox, which must arrive in a later round of the
	// same barrier (the same `now`), not the next epoch.
	se.RegisterMailbox(func(now time.Time, _ []Message) {
		if now.Equal(t0.Add(time.Hour)) {
			se.Post(ControlSender, main, "echo", "control")
		}
	})
	se.Run()
	return transcript
}

// TestMailboxCanonicalDrainOrder pins the ordering contract: within a
// barrier, one mailbox's batch is sorted by (From, Seq) regardless of how
// shard goroutines interleaved, and two runs of the same configuration are
// identical transcripts.
func TestMailboxCanonicalDrainOrder(t *testing.T) {
	for _, shards := range []int{1, 4} {
		a := mailboxRun(t, shards)
		b := mailboxRun(t, shards)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: two identical runs produced different transcripts:\n%v\n%v", shards, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("shards=%d: empty transcript", shards)
		}
		// Within one delivered batch the (From, Seq) pairs must be
		// non-decreasing in From, and each sender's Seq must be strictly
		// increasing across the whole run.
		lastSeq := make(map[int]uint64)
		lastFrom := -2
		for _, line := range a {
			if line == "batch" {
				lastFrom = -2
				continue
			}
			var ts, kind, payload string
			var from int
			var seq uint64
			if _, err := fmt.Sscanf(line, "%s from=%d seq=%d kind=%s payload=%s",
				&ts, &from, &seq, &kind, &payload); err != nil {
				t.Fatalf("unparseable transcript line %q: %v", line, err)
			}
			if from < lastFrom {
				t.Fatalf("shards=%d: batch delivers sender %d after sender %d:\n%v",
					shards, from, lastFrom, a)
			}
			lastFrom = from
			if seq <= lastSeq[from] {
				t.Fatalf("shards=%d: sender %d seq %d not increasing past %d", shards, from, seq, lastSeq[from])
			}
			lastSeq[from] = seq
		}
	}
}

// TestMailboxControlPostSameBarrier pins the round semantics: a message
// posted from a handler during the drain is delivered at the same barrier
// time, before the next epoch opens.
func TestMailboxControlPostSameBarrier(t *testing.T) {
	transcript := mailboxRun(t, 2)
	wantAt := t0.Add(time.Hour).Format("15:04")
	found := false
	for _, line := range transcript {
		if line == "batch" {
			continue
		}
		var ts, kind, payload string
		var from int
		var seq uint64
		fmt.Sscanf(line, "%s from=%d seq=%d kind=%s payload=%s", &ts, &from, &seq, &kind, &payload) //nolint:errcheck
		if kind == "echo" {
			found = true
			if from != ControlSender {
				t.Errorf("echo message carries From=%d, want ControlSender", from)
			}
			if ts != wantAt {
				t.Errorf("control post delivered at %s, want same barrier %s", ts, wantAt)
			}
		}
	}
	if !found {
		t.Fatal("control-context echo message never delivered")
	}
}

// TestMailboxEmptyBatchTicksEveryBarrier pins that every registered mailbox
// is invoked once per barrier even when nothing was posted — the behavior
// AtEpochEnd cadence hooks are built on.
func TestMailboxEmptyBatchTicksEveryBarrier(t *testing.T) {
	se := NewSharded(t0, 2, time.Hour)
	var ticks int
	var batched int
	se.RegisterMailbox(func(_ time.Time, batch []Message) {
		ticks++
		batched += len(batch)
	})
	for h := 0; h < 6; h++ {
		se.Shard(h%2).At(t0.Add(time.Duration(h)*time.Hour+time.Minute), func() {})
	}
	se.Run()
	if ticks != 6 {
		t.Errorf("mailbox ticked %d times across 6 single-event epochs, want 6", ticks)
	}
	if batched != 0 {
		t.Errorf("mailbox received %d messages, want 0 (nothing posted)", batched)
	}
}

// TestMailboxWorkersOneMatchesSerialOrder pins that with one shard the drain
// is exactly the serial stream: the single sender's posts arrive in program
// order with consecutive sequence numbers.
func TestMailboxWorkersOneMatchesSerialOrder(t *testing.T) {
	se := NewSharded(t0, 1, time.Hour)
	var got []uint64
	box := se.RegisterMailbox(func(_ time.Time, batch []Message) {
		for _, m := range batch {
			got = append(got, m.Seq)
		}
	})
	for i := 0; i < 5; i++ {
		se.Shard(0).At(t0.Add(time.Duration(i)*time.Minute), func() {
			se.Post(0, box, "n", i)
		})
	}
	se.Run()
	want := []uint64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("serial drain sequence = %v, want %v", got, want)
	}
}
