// Package sim provides the deterministic discrete-event engine that replays
// a month of U1 client activity against the real back-end code in seconds of
// wall time. Events execute in (time, insertion) order on a virtual clock;
// the engine's Clock method plugs directly into client.DirectTransport so
// every API call and RPC span is stamped with simulation time.
package sim

import (
	"container/heap"
	"sync/atomic"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. It is deliberately
// not safe for concurrent use: determinism is the point. The one concession
// to concurrency is the clock: the current time is mirrored into an atomic
// offset so Clock closures handed to transports stay race-free when another
// shard's goroutine (or an observer thread) stamps a span while this shard
// advances — see ShardedEngine.
type Engine struct {
	base   time.Time
	now    time.Time
	nowOff atomic.Int64 // now == base.Add(nowOff); the lock-free clock mirror
	events eventHeap
	seq    uint64
	ran    uint64
}

// New creates an engine starting at the given virtual time.
func New(start time.Time) *Engine {
	return &Engine{base: start, now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// setNow advances the clock and its atomic mirror together.
func (e *Engine) setNow(t time.Time) {
	e.now = t
	e.nowOff.Store(int64(t.Sub(e.base)))
}

// Clock returns a closure suitable for client.DirectTransport. The closure
// reads the atomic clock mirror, so it is safe to call from any goroutine
// while the engine runs (transports stamp spans from worker goroutines under
// the sharded engine).
func (e *Engine) Clock() func() time.Time {
	return func() time.Time { return e.base.Add(time.Duration(e.nowOff.Load())) }
}

// At schedules fn at time t. Events scheduled in the past run at the current
// time (the engine never moves backwards).
func (e *Engine) At(t time.Time, fn func()) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the earliest pending event, advancing the clock to it. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.setNow(ev.at)
	e.ran++
	ev.fn()
	return true
}

// RunUntil executes events up to and including horizon, leaving later events
// queued. It returns the number of events run.
func (e *Engine) RunUntil(horizon time.Time) uint64 {
	start := e.ran
	for e.events.Len() > 0 && !e.events[0].at.After(horizon) {
		e.Step()
	}
	if e.now.Before(horizon) {
		e.setNow(horizon)
	}
	return e.ran - start
}

// NextEventAt peeks at the earliest queued event time.
func (e *Engine) NextEventAt() (time.Time, bool) {
	if e.events.Len() == 0 {
		return time.Time{}, false
	}
	return e.events[0].at, true
}

// Run drains the queue completely and returns the number of events run.
func (e *Engine) Run() uint64 {
	start := e.ran
	for e.Step() {
	}
	return e.ran - start
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
