package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/dist"
)

// ShardedEngine partitions a simulation across W per-shard single-threaded
// Engines and advances them in bounded virtual-time epochs: every epoch, all
// shards run concurrently up to a shared horizon, then a barrier closes the
// epoch and the registered mailboxes drain serially (see mailbox.go) before
// the next epoch opens. Cluster-wide cadence work — the notification pump,
// the upload-job GC — and cross-shard message consumers (cross-region
// metadata replication) are all mailbox handlers, drained in one canonical
// order.
//
// Each shard keeps the plain Engine's (time, insertion-seq) determinism
// internally, so a simulation whose entities are pinned to shards (stable
// key→shard hash, events only ever scheduled onto the owning shard) is
// reproducible for a fixed (seed, shard count) regardless of how the shard
// goroutines interleave. Shard clocks are mutually skewed by at most one
// epoch: an event on shard A observes cross-shard state from anywhere inside
// the same epoch, which is the relaxation that buys parallelism. Mailbox
// drain order is likewise interleaving-independent: per-sender outboxes
// merge by (mailbox id, sender, sequence), never by arrival time.
//
// With one shard the engine degenerates to the serial case: the single shard
// runs every epoch on the caller's goroutine in exactly the order a bare
// Engine.Run would use, and an empty mailbox set makes the barrier free.
type ShardedEngine struct {
	start  time.Time
	epoch  time.Duration
	now    time.Time
	shards []*Engine

	// adapt, when non-nil, resizes epoch between barriers; nil pins the
	// constructor's epoch for the whole run (the default, and the mode the
	// determinism goldens are recorded under).
	adapt *EpochAdaptation

	// mailboxes are the barrier consumers in registration order; outbox slot
	// 0 holds ControlSender posts, slot i+1 shard i's posts, and seqs are the
	// matching per-sender sequence counters. See mailbox.go for the contract.
	mailboxes []func(now time.Time, batch []Message)
	outbox    [][]post
	seqs      []uint64
}

// EpochAdaptation sizes epochs to the observed event density. Each closed
// epoch reports how many events it ran: fewer than LowEvents means the
// barrier (and its mailbox drain) dominates useful work, so the next epoch
// doubles; more than HighEvents means shards sit too long between barriers
// — cross-shard skew and load imbalance both scale with epoch length — so
// the next epoch halves. Min and Max clamp the excursion.
//
// Adaptation is itself deterministic: the per-epoch event count is a pure
// function of (seed, shard count, initial epoch), so two runs with the same
// configuration adapt identically. It is still a different trajectory than
// a pinned epoch — barrier hooks fire on a different cadence — which is why
// it is opt-in and the default stays pinned.
type EpochAdaptation struct {
	Min        time.Duration // floor; <= 0 means the engine's current epoch
	Max        time.Duration // ceiling; <= 0 means 64× Min
	LowEvents  uint64        // grow when an epoch ran fewer events; 0 disables growth
	HighEvents uint64        // shrink when an epoch ran more events; 0 disables shrinking
}

// AdaptEpoch enables adaptive epoch sizing for subsequent Run calls. Call it
// before Run; a zero-value config gets defaulted per the field docs. Passing
// the result of a previous Epoch() as Min restores pinned behavior's floor.
func (s *ShardedEngine) AdaptEpoch(cfg EpochAdaptation) {
	if cfg.Min <= 0 {
		cfg.Min = s.epoch
	}
	if cfg.Max <= 0 {
		cfg.Max = 64 * cfg.Min
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if s.epoch < cfg.Min {
		s.epoch = cfg.Min
	}
	if s.epoch > cfg.Max {
		s.epoch = cfg.Max
	}
	s.adapt = &cfg
}

// Epoch returns the current epoch length. Under adaptation it moves inside
// [Min, Max]; otherwise it is the constructor's value for the whole run.
func (s *ShardedEngine) Epoch() time.Duration { return s.epoch }

// resize applies one adaptation step after a barrier that ran `ran` events.
func (s *ShardedEngine) resize(ran uint64) {
	a := s.adapt
	if a == nil {
		return
	}
	switch {
	case a.LowEvents > 0 && ran < a.LowEvents:
		if s.epoch < a.Max {
			s.epoch *= 2
			if s.epoch > a.Max {
				s.epoch = a.Max
			}
		}
	case a.HighEvents > 0 && ran > a.HighEvents:
		if s.epoch > a.Min {
			s.epoch /= 2
			if s.epoch < a.Min {
				s.epoch = a.Min
			}
		}
	}
}

// DefaultEpoch bounds shard clock skew; it matches the notification pump
// cadence so boundary hooks keep their production rhythm.
const DefaultEpoch = 10 * time.Minute

// NewSharded creates a sharded engine with the given shard count (min 1)
// starting at the given virtual time. epoch <= 0 picks DefaultEpoch.
func NewSharded(start time.Time, shards int, epoch time.Duration) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	s := &ShardedEngine{start: start, epoch: epoch, now: start}
	s.shards = make([]*Engine, shards)
	for i := range s.shards {
		s.shards[i] = New(start)
	}
	s.outbox = make([][]post, shards+1)
	s.seqs = make([]uint64, shards+1)
	return s
}

// NumShards returns the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Shard returns shard i's engine. Scheduling onto a shard is only safe from
// that shard's own events (or between Run calls); cross-shard scheduling
// from a running event would race on the target heap.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// ShardFor maps a stable key (user id) to its owning shard via a splitmix64
// mix, so the assignment is uniform and independent of the shard count's
// divisibility structure.
func (s *ShardedEngine) ShardFor(key uint64) int {
	return int(dist.Splitmix64(key+dist.Splitmix64Gamma) % uint64(len(s.shards)))
}

// Now returns the last closed epoch boundary (the time every shard has
// reached). Individual shards may sit anywhere inside [Now, Now+epoch) while
// an epoch is open.
func (s *ShardedEngine) Now() time.Time { return s.now }

// AtEpochEnd registers fn to run serially after every epoch barrier with the
// epoch-end time. Hooks run on the Run goroutine while no shard executes, so
// they may touch cross-shard state safely; they must not schedule events
// (use shard 0's engine before Run for scheduled work). A hook is a mailbox
// consumer that ignores its batch: it fires exactly once per barrier, on the
// first drain round, in registration order with every other mailbox.
func (s *ShardedEngine) AtEpochEnd(fn func(now time.Time)) {
	s.RegisterMailbox(func(now time.Time, _ []Message) { fn(now) })
}

// Pending returns the number of queued events across all shards.
func (s *ShardedEngine) Pending() int {
	var n int
	for _, e := range s.shards {
		n += e.Pending()
	}
	return n
}

// Executed returns the number of events run so far across all shards.
func (s *ShardedEngine) Executed() uint64 {
	var n uint64
	for _, e := range s.shards {
		n += e.Executed()
	}
	return n
}

// earliest returns the earliest queued event time across shards.
func (s *ShardedEngine) earliest() (time.Time, bool) {
	var min time.Time
	var ok bool
	for _, e := range s.shards {
		if at, has := e.NextEventAt(); has && (!ok || at.Before(min)) {
			min, ok = at, true
		}
	}
	return min, ok
}

// horizonFor returns the end of the epoch containing next, skipping empty
// epochs in one step so idle stretches cost no barriers.
func (s *ShardedEngine) horizonFor(next time.Time) time.Time {
	h := s.now.Add(s.epoch)
	if next.After(h) {
		n := next.Sub(s.now) / s.epoch
		h = s.now.Add((n + 1) * s.epoch)
	}
	return h
}

// Run drains every shard in epoch lockstep and returns the number of events
// run. Events scheduled during an epoch for times inside it run in the same
// epoch; mailboxes (including AtEpochEnd hooks) drain between epochs.
func (s *ShardedEngine) Run() uint64 {
	var total uint64
	for {
		next, ok := s.earliest()
		if !ok {
			return total
		}
		horizon := s.horizonFor(next)
		var ranEpoch uint64
		if len(s.shards) == 1 {
			ranEpoch = s.shards[0].RunUntil(horizon)
		} else {
			var ran atomic.Uint64
			var wg sync.WaitGroup
			for _, e := range s.shards {
				wg.Add(1)
				go func(e *Engine) {
					defer wg.Done()
					ran.Add(e.RunUntil(horizon))
				}(e)
			}
			wg.Wait()
			ranEpoch = ran.Load()
		}
		total += ranEpoch
		s.now = horizon
		s.drainMailboxes(horizon)
		s.resize(ranEpoch)
	}
}
