package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(t0)
	var order []int
	e.At(t0.Add(3*time.Hour), func() { order = append(order, 3) })
	e.At(t0.Add(1*time.Hour), func() { order = append(order, 1) })
	e.At(t0.Add(2*time.Hour), func() { order = append(order, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if !e.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	e := New(t0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(t0.Add(time.Minute), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New(t0)
	var hits int
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			e.After(time.Minute, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if hits != 5 {
		t.Errorf("hits = %d", hits)
	}
	if want := t0.Add(4 * time.Minute); !e.Now().Equal(want) {
		t.Errorf("clock = %v, want %v", e.Now(), want)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New(t0)
	var ran []int
	for h := 1; h <= 5; h++ {
		h := h
		e.At(t0.Add(time.Duration(h)*time.Hour), func() { ran = append(ran, h) })
	}
	n := e.RunUntil(t0.Add(3 * time.Hour))
	if n != 3 || len(ran) != 3 {
		t.Fatalf("ran %d events: %v", n, ran)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Clock parks exactly at the horizon when it lies beyond the last event.
	if !e.Now().Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("clock = %v", e.Now())
	}
	// The rest still runs.
	e.Run()
	if len(ran) != 5 {
		t.Errorf("total ran = %v", ran)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := New(t0)
	e.At(t0.Add(time.Hour), func() {
		// Scheduling "yesterday" from inside an event must not rewind time.
		e.At(t0.Add(-time.Hour), func() {})
	})
	e.Run()
	if e.Now().Before(t0.Add(time.Hour)) {
		t.Errorf("clock went backwards: %v", e.Now())
	}
	if e.Executed() != 2 {
		t.Errorf("executed = %d", e.Executed())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New(t0)
	var ok bool
	e.After(-time.Minute, func() { ok = true })
	e.Run()
	if !ok || !e.Now().Equal(t0) {
		t.Errorf("ok=%v now=%v", ok, e.Now())
	}
}

func TestClockClosure(t *testing.T) {
	e := New(t0)
	clock := e.Clock()
	var seen time.Time
	e.At(t0.Add(time.Hour), func() { seen = clock() })
	e.Run()
	if !seen.Equal(t0.Add(time.Hour)) {
		t.Errorf("clock inside event = %v", seen)
	}
}
