package sim

import "time"

// The deterministic cross-shard mailbox layer: during an epoch any shard may
// post typed messages toward registered mailboxes; at the epoch barrier every
// mailbox drains serially on the Run goroutine, in a canonical order that is
// a pure function of the simulation — never of how shard goroutines
// interleaved. Epoch-end hooks (AtEpochEnd) are mailbox consumers that simply
// ignore their batch, so cadence work and message-driven work share one
// barrier mechanism.
//
// The ordering contract:
//
//   - Mailboxes drain in registration order (ascending MailboxID).
//   - Within one mailbox's batch, messages are ordered by (From, Seq):
//     barrier-context posts (From == ControlSender) first, then each shard's
//     posts in the order that shard issued them. Per-sender order is the
//     sender's own program order, which is deterministic per shard; the
//     merge never depends on goroutine interleaving.
//   - Posts made during a drain (handlers posting with ControlSender) are
//     delivered in a later round of the same barrier, so same-epoch
//     message chains complete before the next epoch opens.
//   - Every registered mailbox is invoked at least once per barrier, with an
//     empty batch when nothing was posted — the tick AtEpochEnd hooks rely
//     on. Rounds past the first invoke only mailboxes with pending messages.
//
// Race freedom needs no locks: shard i's events append only to outbox slot
// i+1 (owned by shard i's goroutine for the epoch), the barrier reads the
// slots after the WaitGroup join, and ControlSender posts use slot 0, touched
// only on the Run goroutine. With Workers=1 everything is one goroutine.

// ControlSender is the Message.From value of posts issued outside shard
// events: from mailbox handlers during a barrier drain, or from the harness
// between Run calls.
const ControlSender = -1

// MailboxID identifies a registered mailbox; Post targets one.
type MailboxID int

// Message is one typed cross-shard mailbox message.
type Message struct {
	// From is the posting shard, or ControlSender for barrier-context posts.
	From int
	// Seq is the per-sender sequence number, assigned by Post in issue order.
	Seq uint64
	// Kind tags the payload so one mailbox can multiplex message types.
	Kind string
	// Payload is the message body; producer and consumer agree on its type.
	Payload any
}

// post is one queued (destination, message) pair in a sender's outbox.
type post struct {
	to  MailboxID
	msg Message
}

// maxDrainRounds bounds handler-to-handler message chains within one barrier;
// exceeding it means handlers post to each other without converging.
const maxDrainRounds = 4096

// RegisterMailbox registers a consumer drained at every epoch barrier and
// returns its id. Registration must happen before Run; the returned id is
// what Post targets. The batch slice is only valid for the duration of the
// call — handlers must copy what they keep.
func (s *ShardedEngine) RegisterMailbox(fn func(now time.Time, batch []Message)) MailboxID {
	s.mailboxes = append(s.mailboxes, fn)
	return MailboxID(len(s.mailboxes) - 1)
}

// Post enqueues a message for mailbox to, delivered at the next barrier (or a
// later round of the current one when posted from a handler). from must be
// the posting shard's own index when called from a shard event, or
// ControlSender from barrier context — posting with another shard's index
// races on that shard's outbox.
func (s *ShardedEngine) Post(from int, to MailboxID, kind string, payload any) {
	if int(to) < 0 || int(to) >= len(s.mailboxes) {
		panic("sim: Post to unregistered mailbox")
	}
	slot := from + 1
	s.seqs[slot]++
	s.outbox[slot] = append(s.outbox[slot], post{
		to:  to,
		msg: Message{From: from, Seq: s.seqs[slot], Kind: kind, Payload: payload},
	})
}

// drainMailboxes runs one barrier's mailbox drain: collect every outbox in
// canonical sender order, deliver per-mailbox batches in mailbox id order,
// and repeat for messages posted during the drain until a round collects
// nothing. Runs on the Run goroutine with every shard quiescent.
func (s *ShardedEngine) drainMailboxes(now time.Time) {
	if len(s.mailboxes) == 0 {
		return
	}
	batches := make([][]Message, len(s.mailboxes))
	for round := 0; ; round++ {
		posted := false
		// Senders merge in slot order — ControlSender, then shard 0..W-1 —
		// and each sender's posts are already in Seq order, so every batch
		// comes out sorted by (From, Seq) without a sort call.
		for slot := range s.outbox {
			for _, p := range s.outbox[slot] {
				batches[p.to] = append(batches[p.to], p.msg)
				posted = true
			}
			s.outbox[slot] = s.outbox[slot][:0]
		}
		if round > 0 && !posted {
			return
		}
		if round >= maxDrainRounds {
			panic("sim: mailbox drain did not converge; handlers keep posting every round")
		}
		for id := range s.mailboxes {
			if round == 0 || len(batches[id]) > 0 {
				s.mailboxes[id](now, batches[id])
			}
			batches[id] = batches[id][:0]
		}
	}
}
