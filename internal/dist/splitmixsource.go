package dist

// SplitmixSource adapts the repo's splitmix64 stream to math/rand.Source64.
// It carries 8 bytes of state instead of the ~5 KB lagged-Fibonacci state a
// math/rand.NewSource allocates, which is what makes per-entity sources
// affordable at million-entity populations: wrap one in rand.New and every
// Float64/ExpFloat64/Intn call site keeps working, only the stream differs.
type SplitmixSource struct {
	state uint64
}

// NewSplitmixSource returns a source seeded like math/rand.NewSource(seed):
// deterministic for a fixed seed, independent streams for distinct seeds.
func NewSplitmixSource(seed int64) *SplitmixSource {
	return &SplitmixSource{state: uint64(seed)}
}

// Uint64 advances the counter by the golden-ratio gamma and scrambles it —
// the canonical splitmix64 step.
func (s *SplitmixSource) Uint64() uint64 {
	s.state += Splitmix64Gamma
	return Splitmix64(s.state)
}

// Int63 implements rand.Source.
func (s *SplitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *SplitmixSource) Seed(seed int64) { s.state = uint64(seed) }
