package dist

// Splitmix64Gamma is the splitmix64 stream increment (the golden-ratio
// constant): advancing a state by it and mixing yields the next draw.
const Splitmix64Gamma = 0x9E3779B97F4A7C15

// Splitmix64 is the splitmix64 output function: a bijective scramble of the
// raw counter state. It is the one shared definition behind every lock-free
// deterministic stream in the repo — the rpc tier's per-proc samplers, the
// sharded engine's user→shard hash, the gateway's shard sampling, the
// workload's per-shard seeds and the auth service's failure draws — so the
// constants cannot drift between subsystems.
func Splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
