// Package dist provides the random-variate samplers the workload generator
// and latency models draw from. Every distribution here mirrors a fitted
// curve from the paper (lognormal bodies, Pareto tails, Zipf content
// popularity, diurnal session modulation); the generative models in
// internal/workload and internal/rpc compose them.
package dist

import (
	"math"
	"math/rand"
)

// Rand is the random stream the samplers draw from: the subset of
// *math/rand.Rand they use. *rand.Rand satisfies it; the workload
// generator's low-memory per-user streams provide a compact implementation.
type Rand interface {
	Float64() float64
	NormFloat64() float64
	// Intn is unused by the samplers themselves but part of the stream
	// contract so generator code can pick and sample through one value.
	Intn(n int) int
}

// Sampler draws one float64 variate from a distribution.
type Sampler interface {
	Sample(r Rand) float64
}

// Lognormal is a lognormal distribution parameterized by the underlying
// normal's mean and standard deviation.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Sampler.
func (l Lognormal) Sample(r Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// LognormalFromMedian builds a lognormal from its median and multiplicative
// spread (the geometric standard deviation): ~68% of the mass falls within
// [median/spread, median*spread]. This is the natural parameterization for
// the paper's size and timing CDFs, which span decades.
func LognormalFromMedian(median, spread float64) Lognormal {
	if median <= 0 {
		median = math.SmallestNonzeroFloat64
	}
	if spread < 1 {
		spread = 1
	}
	return Lognormal{Mu: math.Log(median), Sigma: math.Log(spread)}
}

// Pareto is a (type I) Pareto distribution with scale Xm and shape Alpha.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Sampler via inverse-CDF.
func (p Pareto) Sample(r Rand) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// BoundedPareto truncates a Pareto at Cap by inverse-CDF on the bounded
// form, keeping heavy-tailed bodies from producing unphysical extremes.
type BoundedPareto struct {
	Xm    float64
	Cap   float64
	Alpha float64
}

// Sample implements Sampler.
func (p BoundedPareto) Sample(r Rand) float64 {
	if p.Cap <= p.Xm {
		return p.Xm
	}
	u := r.Float64()
	l := math.Pow(p.Xm, p.Alpha)
	h := math.Pow(p.Cap, p.Alpha)
	return math.Pow(-(u*h-u*l-h)/(h*l), -1/p.Alpha)
}

// ParetoTailed mixes a body distribution with a Pareto (or any) tail:
// with probability TailP the sample comes from Tail. This is the shape of
// most fitted curves in the paper — a lognormal bulk plus a power-law tail
// (e.g. Fig. 9's inter-operation gaps).
type ParetoTailed struct {
	Body  Sampler
	Tail  Sampler
	TailP float64
}

// Sample implements Sampler.
func (p ParetoTailed) Sample(r Rand) float64 {
	if r.Float64() < p.TailP {
		return p.Tail.Sample(r)
	}
	return p.Body.Sample(r)
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Sampler.
func (u Uniform) Sample(r Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Categorical draws an index with probability proportional to its weight.
type Categorical struct {
	cum []float64 // cumulative weights; cum[len-1] is the total
}

// NewCategorical builds a categorical distribution over the given weights.
// Non-positive weights are allowed and simply never drawn.
func NewCategorical(weights ...float64) *Categorical {
	c := &Categorical{cum: make([]float64, len(weights))}
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		c.cum[i] = total
	}
	return c
}

// Draw samples an index in [0, len(weights)).
func (c *Categorical) Draw(r Rand) int {
	if len(c.cum) == 0 {
		return 0
	}
	total := c.cum[len(c.cum)-1]
	if total <= 0 {
		return 0
	}
	u := r.Float64() * total
	// Binary search for the first cumulative weight exceeding u.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Zipf draws ranks 1..N with P(rank) ∝ rank^-s, modelling the popularity
// skew of deduplicated content (§5.3: a few files account for very many
// duplicates). It owns its rand.Rand so callers get a reproducible stream.
type Zipf struct {
	r *rand.Rand
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s (> 1).
func NewZipf(r *rand.Rand, s float64, n uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{r: r, z: rand.NewZipf(r, s, 1, n-1)}
}

// Rank draws a 1-based rank.
func (z *Zipf) Rank() uint64 { return z.z.Uint64() + 1 }

// Diurnal modulates a rate over the week: a raised-cosine day shape peaking
// at PeakHour with peak/trough ratio Amplitude, normalized so the daily
// peak factor is 1.0, times a Monday boost and a weekend dip (§5.1: Monday
// is the busiest day; weekends are quieter).
type Diurnal struct {
	PeakHour    float64 // local hour of the daily activity peak
	Amplitude   float64 // peak/trough ratio of the day curve (≥ 1)
	MondayBoost float64 // multiplicative boost on Mondays
	WeekendDip  float64 // multiplicative dip on Saturday/Sunday
}

// Factor returns the rate multiplier at fractional hour h on weekday wd
// (time.Weekday numbering: 0 = Sunday). The maximum over the week is
// 1 + MondayBoost.
func (d Diurnal) Factor(h float64, wd int) float64 {
	amp := d.Amplitude
	if amp < 1 {
		amp = 1
	}
	trough := 1 / amp
	// shape ∈ [0, 1], peaking at PeakHour.
	shape := (1 + math.Cos(2*math.Pi*(h-d.PeakHour)/24)) / 2
	f := trough + (1-trough)*shape
	switch wd {
	case 1: // Monday
		f *= 1 + d.MondayBoost
	case 0, 6: // weekend
		f *= 1 - d.WeekendDip
	}
	return f
}
