package blob

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

var now = time.Unix(1390000000, 0)

func TestPutGetDelete(t *testing.T) {
	s := New(Config{KeepData: true})
	data := []byte("hello s3")
	if err := s.PutObject("k1", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetObject("k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
	size, err := s.HeadObject("k1")
	if err != nil || size != uint64(len(data)) {
		t.Errorf("head = %d, %v", size, err)
	}
	s.DeleteObject("k1")
	if _, err := s.GetObject("k1"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("get after delete = %v", err)
	}
	// Deleting a missing key is a no-op (S3 semantics).
	s.DeleteObject("k1")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 2 || st.Objects != 0 || st.BytesHeld != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMeteredMode(t *testing.T) {
	s := New(Config{})
	if err := s.PutObjectSized("k", 1<<20); err != nil {
		t.Fatal(err)
	}
	data, err := s.GetObject("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1<<20 {
		t.Errorf("synthesized %d bytes", len(data))
	}
	// Deterministic synthesis.
	again, _ := s.GetObject("k")
	if !bytes.Equal(data, again) {
		t.Error("synthesized content should be deterministic")
	}
	st := s.Stats()
	if st.BytesHeld != 1<<20 || st.BytesOut != 2<<20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIdempotentOverwrite(t *testing.T) {
	s := New(Config{KeepData: true})
	s.PutObject("k", []byte("abc"))
	s.PutObject("k", []byte("abc"))
	st := s.Stats()
	if st.Objects != 1 || st.BytesHeld != 3 {
		t.Errorf("stats after overwrite = %+v", st)
	}
}

func TestMultipartHappyPath(t *testing.T) {
	s := New(Config{KeepData: true})
	id := s.CreateMultipartUpload("big", now)
	p1 := bytes.Repeat([]byte{1}, 10)
	p2 := bytes.Repeat([]byte{2}, 5)
	if err := s.UploadPart(id, 1, p1); err != nil {
		t.Fatal(err)
	}
	if err := s.UploadPart(id, 2, p2); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteMultipartUpload(id); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetObject("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), p1...), p2...)) {
		t.Error("multipart content mismatch")
	}
	st := s.Stats()
	if st.MultipartCreated != 1 || st.MultipartCompleted != 1 || st.PartsUploaded != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesIn != 15 || st.BytesHeld != 15 {
		t.Errorf("byte accounting = %+v", st)
	}
	// Completing twice fails.
	if err := s.CompleteMultipartUpload(id); !errors.Is(err, ErrNoSuchUpload) {
		t.Errorf("double complete = %v", err)
	}
}

func TestMultipartPartOrdering(t *testing.T) {
	s := New(Config{})
	id := s.CreateMultipartUpload("k", now)
	if err := s.UploadPartSized(id, 2, 10); !errors.Is(err, ErrPartGap) {
		t.Errorf("gap err = %v", err)
	}
	if err := s.UploadPartSized(id, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.UploadPartSized(id, 1, 10); !errors.Is(err, ErrPartGap) {
		t.Errorf("repeat err = %v", err)
	}
	if err := s.UploadPartSized("ghost", 1, 10); !errors.Is(err, ErrNoSuchUpload) {
		t.Errorf("ghost err = %v", err)
	}
}

func TestMultipartAbortAndGC(t *testing.T) {
	s := New(Config{})
	id1 := s.CreateMultipartUpload("a", now)
	id2 := s.CreateMultipartUpload("b", now.Add(48*time.Hour))
	if err := s.AbortMultipartUpload(id1); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortMultipartUpload(id1); !errors.Is(err, ErrNoSuchUpload) {
		t.Errorf("double abort = %v", err)
	}
	// Only id2 remains; GC with a cutoff after its start finds it.
	old := s.AbandonedUploads(now.Add(72 * time.Hour))
	if len(old) != 1 || old[0] != id2 {
		t.Errorf("abandoned = %v", old)
	}
	// Nothing before the cutoff.
	if got := s.AbandonedUploads(now); len(got) != 0 {
		t.Errorf("abandoned before start = %v", got)
	}
	if s.Stats().MultipartAborted != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
}

func TestCompleteOverwritesExisting(t *testing.T) {
	s := New(Config{})
	s.PutObjectSized("k", 100)
	id := s.CreateMultipartUpload("k", now)
	s.UploadPartSized(id, 1, 200)
	if err := s.CompleteMultipartUpload(id); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Objects != 1 || st.BytesHeld != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSynthesizeEdgeCases(t *testing.T) {
	if synthesize("k", 0) != nil {
		t.Error("zero size should be nil")
	}
	if got := synthesize("", 5); len(got) != 5 {
		t.Errorf("empty key synthesis = %v", got)
	}
	if got := synthesize("abc", 7); len(got) != 7 {
		t.Errorf("len = %d", len(got))
	}
}

func TestTransferModel(t *testing.T) {
	m := TransferModel{RTT: 100 * time.Millisecond, Bandwidth: 1e6}
	if got := m.Time(0); got != 100*time.Millisecond {
		t.Errorf("zero bytes = %v", got)
	}
	if got := m.Time(1e6); got != 1100*time.Millisecond {
		t.Errorf("1MB = %v", got)
	}
	deg := TransferModel{RTT: time.Second}
	if deg.Time(1e9) != time.Second {
		t.Error("zero bandwidth should return RTT")
	}
	if DefaultTransferModel().Bandwidth <= 0 {
		t.Error("default model should have bandwidth")
	}
}
