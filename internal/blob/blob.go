// Package blob implements the data store of U1: a stand-in for Amazon S3
// (us-east) where all file contents live, while Canonical's datacenter keeps
// only metadata (§3.2). The store is content-addressed (keys are SHA-1 hex
// strings), supports single-shot puts for small contents and the multipart
// upload API that the U1 uploadjob machinery drives (appendix A): initiate,
// upload part, complete, abort.
//
// Two storage modes exist. With KeepData the store retains real bytes — what
// the TCP server and examples use. Without it only sizes are retained, so a
// simulated month of U1 traffic (hundreds of TB logical) fits in memory while
// exercising identical code paths; reads then return deterministic
// pseudo-content of the right size.
package blob

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"u1/internal/metrics"
)

// PartSize is the multipart chunk size used by U1 (appendix A: 5 MB).
const PartSize = 5 << 20

// Store errors.
var (
	ErrNoSuchKey    = errors.New("blob: no such key")
	ErrNoSuchUpload = errors.New("blob: no such multipart upload")
	ErrPartGap      = errors.New("blob: non-contiguous part number")
)

// Config parameterizes the store.
type Config struct {
	// KeepData retains object bytes. Disable for large-scale simulation.
	KeepData bool
	// Metrics receives put/get byte counters, object-size distribution and
	// operation latency (nil disables registration).
	Metrics *metrics.Registry
}

// Counters aggregates the request accounting a provider bills by — the paper
// notes U1's ≈$20,000 monthly S3 bill made it the largest European S3
// customer.
type Counters struct {
	Puts, Gets, Deletes          uint64
	MultipartCreated             uint64
	MultipartCompleted           uint64
	MultipartAborted             uint64
	PartsUploaded                uint64
	BytesIn, BytesOut, BytesHeld uint64
	Objects                      uint64
}

// blobMetrics holds the store's registered handles: logical transfer volume
// (what the provider bills), the object size distribution, and the wall-time
// cost of store operations on this host.
type blobMetrics struct {
	putBytes    *metrics.Counter
	getBytes    *metrics.Counter
	deletes     *metrics.Counter
	objectBytes *metrics.Histogram
	putSeconds  *metrics.Histogram
	getSeconds  *metrics.Histogram
	objectsHeld *metrics.Gauge
}

// Store is the object store.
type Store struct {
	cfg Config
	m   blobMetrics

	mu sync.RWMutex
	// Content-addressed keys are 40-char SHA-1 hex strings; storing them
	// decoded keeps 20 bytes per object instead of a 56-byte heap string, and
	// at million-user populations the key bytes would otherwise rival the
	// objects themselves. Sizes live in their own map so the common metered
	// mode pays 8 bytes per object, not a 32-byte object struct; hashData
	// only fills in KeepData mode. Non-canonical keys (tests, ad-hoc callers)
	// fall back to the string map; a key lives in exactly one of the layouts.
	hashSizes map[[20]byte]uint64
	hashData  map[[20]byte][]byte
	objects   map[string]object
	uploads   map[string]*multipartUpload
	nextID    uint64
	counters  Counters
}

type object struct {
	size uint64
	data []byte // nil unless KeepData
}

// decodeKey returns the decoded form of a canonical (lowercase) SHA-1 hex
// key. Uppercase hex is rejected so that distinct string keys can never
// collide after decoding.
func decodeKey(key string) (h [20]byte, ok bool) {
	if len(key) != 40 {
		return h, false
	}
	for i := 0; i < 40; i += 2 {
		hi, ok1 := hexNibble(key[i])
		lo, ok2 := hexNibble(key[i+1])
		if !ok1 || !ok2 {
			return h, false
		}
		h[i/2] = hi<<4 | lo
	}
	return h, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func (s *Store) loadObject(key string) (object, bool) {
	if h, ok := decodeKey(key); ok {
		size, ok := s.hashSizes[h]
		if !ok {
			return object{}, false
		}
		return object{size: size, data: s.hashData[h]}, true
	}
	obj, ok := s.objects[key]
	return obj, ok
}

func (s *Store) storeObject(key string, obj object) {
	if h, ok := decodeKey(key); ok {
		s.hashSizes[h] = obj.size
		if obj.data != nil {
			s.hashData[h] = obj.data
		} else {
			delete(s.hashData, h) // overwrite may flip a kept object to size-only
		}
		return
	}
	s.objects[key] = obj
}

func (s *Store) removeObject(key string) {
	if h, ok := decodeKey(key); ok {
		delete(s.hashSizes, h)
		delete(s.hashData, h)
		return
	}
	delete(s.objects, key)
}

type multipartUpload struct {
	id      string
	key     string
	size    uint64
	parts   int
	data    []byte // nil unless KeepData
	started time.Time
}

// New creates an empty store.
func New(cfg Config) *Store {
	return &Store{
		cfg: cfg,
		m: blobMetrics{
			putBytes:    cfg.Metrics.Counter("blob.put.bytes"),
			getBytes:    cfg.Metrics.Counter("blob.get.bytes"),
			deletes:     cfg.Metrics.Counter("blob.deletes"),
			objectBytes: cfg.Metrics.Histogram("blob.object.bytes"),
			putSeconds:  cfg.Metrics.Histogram("blob.put.seconds"),
			getSeconds:  cfg.Metrics.Histogram("blob.get.seconds"),
			objectsHeld: cfg.Metrics.Gauge("blob.objects.held"),
		},
		hashSizes: make(map[[20]byte]uint64),
		hashData:  make(map[[20]byte][]byte),
		objects:   make(map[string]object),
		uploads:   make(map[string]*multipartUpload),
	}
}

// PutObject stores data under key in one shot (used for contents at or below
// one part).
func (s *Store) PutObject(key string, data []byte) error {
	//u1:allow wallclock measures real blob-path execution time; observability only, never simulation state
	start := time.Now()
	s.mu.Lock()
	s.putLocked(key, uint64(len(data)), data)
	s.mu.Unlock()
	s.recordPut(uint64(len(data)), start)
	return nil
}

// PutObjectSized stores a size-only object (metered mode helper for the
// simulator, which never materializes contents).
func (s *Store) PutObjectSized(key string, size uint64) error {
	//u1:allow wallclock measures real blob-path execution time; observability only, never simulation state
	start := time.Now()
	s.mu.Lock()
	s.putLocked(key, size, nil)
	s.mu.Unlock()
	s.recordPut(size, start)
	return nil
}

func (s *Store) recordPut(size uint64, start time.Time) {
	s.m.putBytes.Add(size)
	s.m.objectBytes.Observe(float64(size))
	//u1:allow wallclock measures real blob-path execution time; observability only, never simulation state
	s.m.putSeconds.Observe(time.Since(start).Seconds())
}

func (s *Store) putLocked(key string, size uint64, data []byte) {
	if old, ok := s.loadObject(key); ok {
		// Content-addressed keys make overwrites idempotent; adjust held
		// bytes in case sizes differ (they cannot for honest SHA-1 keys).
		s.counters.BytesHeld -= old.size
		s.counters.Objects--
	}
	obj := object{size: size}
	if s.cfg.KeepData && data != nil {
		obj.data = append([]byte(nil), data...)
	}
	s.storeObject(key, obj)
	s.counters.Puts++
	s.counters.BytesIn += size
	s.counters.BytesHeld += size
	s.counters.Objects++
	s.m.objectsHeld.Set(int64(s.counters.Objects))
}

// GetObject returns the object's bytes. In metered mode it synthesizes
// deterministic pseudo-content of the recorded size.
func (s *Store) GetObject(key string) ([]byte, error) {
	//u1:allow wallclock measures real blob-path execution time; observability only, never simulation state
	start := time.Now()
	s.mu.Lock()
	obj, ok := s.loadObject(key)
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchKey, key)
	}
	s.counters.Gets++
	s.counters.BytesOut += obj.size
	var out []byte
	if obj.data != nil {
		out = append([]byte(nil), obj.data...)
	} else {
		out = synthesize(key, obj.size)
	}
	s.mu.Unlock()
	s.m.getBytes.Add(obj.size)
	//u1:allow wallclock measures real blob-path execution time; observability only, never simulation state
	s.m.getSeconds.Observe(time.Since(start).Seconds())
	return out, nil
}

// HeadObject returns the object's size without transferring it.
func (s *Store) HeadObject(key string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.loadObject(key)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchKey, key)
	}
	return obj.size, nil
}

// DeleteObject removes an object; deleting a missing key is a no-op, as in
// S3.
func (s *Store) DeleteObject(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.loadObject(key); ok {
		s.counters.BytesHeld -= obj.size
		s.counters.Objects--
		s.removeObject(key)
		s.m.objectsHeld.Set(int64(s.counters.Objects))
	}
	s.counters.Deletes++
	s.m.deletes.Inc()
}

// CreateMultipartUpload starts a multipart upload towards key and returns the
// multipart id that the metadata store records on the uploadjob
// (dal.set_uploadjob_multipart_id).
func (s *Store) CreateMultipartUpload(key string, now time.Time) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("mp-%d", s.nextID)
	s.uploads[id] = &multipartUpload{id: id, key: key, started: now}
	s.counters.MultipartCreated++
	return id
}

// UploadPart appends one part. Parts must arrive in order (1-based,
// contiguous), which is how the U1 API server streams them.
func (s *Store) UploadPart(id string, partNum int, data []byte) error {
	return s.uploadPart(id, partNum, uint64(len(data)), data)
}

// UploadPartSized appends a size-only part (metered mode).
func (s *Store) UploadPartSized(id string, partNum int, size uint64) error {
	return s.uploadPart(id, partNum, size, nil)
}

func (s *Store) uploadPart(id string, partNum int, size uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchUpload, id)
	}
	if partNum != up.parts+1 {
		return fmt.Errorf("%w: got part %d after %d", ErrPartGap, partNum, up.parts)
	}
	up.parts++
	up.size += size
	if s.cfg.KeepData && data != nil {
		up.data = append(up.data, data...)
	}
	s.counters.PartsUploaded++
	s.counters.BytesIn += size
	s.m.putBytes.Add(size)
	return nil
}

// CompleteMultipartUpload commits the accumulated parts as the object.
func (s *Store) CompleteMultipartUpload(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchUpload, id)
	}
	delete(s.uploads, id)
	// BytesIn was already counted per part; commit without recounting.
	if old, exists := s.loadObject(up.key); exists {
		s.counters.BytesHeld -= old.size
		s.counters.Objects--
	}
	obj := object{size: up.size}
	if s.cfg.KeepData {
		obj.data = up.data
	}
	s.storeObject(up.key, obj)
	s.counters.BytesHeld += up.size
	s.counters.Objects++
	s.counters.MultipartCompleted++
	s.m.objectsHeld.Set(int64(s.counters.Objects))
	s.m.objectBytes.Observe(float64(up.size))
	return nil
}

// AbortMultipartUpload discards an in-flight upload (client cancellation or
// the weekly uploadjob garbage collection).
func (s *Store) AbortMultipartUpload(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.uploads[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchUpload, id)
	}
	delete(s.uploads, id)
	s.counters.MultipartAborted++
	return nil
}

// AbandonedUploads returns the ids of multipart uploads started before
// cutoff, for garbage collection sweeps.
func (s *Store) AbandonedUploads(cutoff time.Time) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []string
	for id, up := range s.uploads {
		if up.started.Before(cutoff) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counters
}

// synthesize produces deterministic pseudo-content for metered objects: the
// key bytes repeated. Only used when the store holds no real data.
func synthesize(key string, size uint64) []byte {
	if size == 0 {
		return nil
	}
	out := make([]byte, size)
	kb := []byte(key)
	if len(kb) == 0 {
		return out
	}
	for i := 0; i < len(out); i += len(kb) {
		copy(out[i:], kb)
	}
	return out
}

// TransferModel estimates WAN transfer times between the datacenter and the
// data store. U1 ran in Canonical's London datacenter against S3 us-east; the
// defaults approximate that path. The apiserver uses these estimates to
// shape simulated service times for data operations.
type TransferModel struct {
	RTT       time.Duration // request round-trip latency
	Bandwidth float64       // sustained bytes/second
}

// DefaultTransferModel approximates a transatlantic path: 80 ms RTT and
// 50 MB/s sustained.
func DefaultTransferModel() TransferModel {
	return TransferModel{RTT: 80 * time.Millisecond, Bandwidth: 50e6}
}

// Time returns the estimated wall time to move size bytes in one direction.
func (m TransferModel) Time(size uint64) time.Duration {
	if m.Bandwidth <= 0 {
		return m.RTT
	}
	return m.RTT + time.Duration(float64(size)/m.Bandwidth*float64(time.Second))
}
