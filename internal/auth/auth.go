// Package auth implements the Canonical SSO stand-in: the OAuth-style token
// service of §3.4.1. The first connection of a user trades credentials for a
// token; later connections present the token and the service resolves it to a
// user id. API servers cache validated tokens for the session lifetime to
// avoid overloading this shared service.
//
// The production service showed a 2.76% request failure rate (§7.3); the
// same rate can be injected here so downstream retry paths and the Fig. 15
// analysis see realistic failures.
package auth

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"u1/internal/dist"
	"u1/internal/protocol"
)

// Config parameterizes the service.
type Config struct {
	// FailureRate injects random validation failures with this probability
	// (the paper measured 0.0276). Zero disables injection.
	FailureRate float64
	// Seed makes failure injection reproducible. Zero uses a fixed default.
	Seed int64
	// Capacity models the SSO back-end's sustained authentication throughput
	// in requests per second, measured over a trailing CapacityWindow
	// (fractional values fit the simulator's compressed request rates). When
	// the windowed arrival rate exceeds it, goodput collapses and requests
	// fail — the §5.4 back-end overload. Zero disables the model.
	Capacity float64
}

// Counters tracks the request accounting of §7.3 / Fig. 15.
type Counters struct {
	Issued    uint64
	Validated uint64
	Failed    uint64
	Revoked   uint64
	// Overloaded counts requests failed by the capacity model (a subset of
	// Failed).
	Overloaded uint64
}

// Service is the token service. It models the deployment of §3.4.1 (one
// database server with hot failover behind two application servers) as a
// single consistent token table; the redundancy aspects are not part of any
// measured result.
type Service struct {
	cfg  Config
	seed int64

	mu sync.Mutex
	// tokens is keyed by the decoded token: the service mints 32-char hex
	// strings, so storing the 16 raw bytes instead of a heap string per token
	// saves ~50 bytes per user at million-user populations. Tokens that are
	// not well-formed hex never came from Issue and resolve as unknown.
	tokens   map[[tokenRawLen]byte]protocol.UserID
	counters Counters
	// load holds the arrival times of the trailing CapacityWindow when the
	// capacity model is on; every request that reaches the tier registers
	// here, whether or not it succeeds.
	load []time.Time
}

// New creates the service.
func New(cfg Config) *Service {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Service{
		cfg:    cfg,
		seed:   seed,
		tokens: make(map[[tokenRawLen]byte]protocol.UserID),
	}
}

// tokenRawLen is the raw entropy per token; tokens are its hex encoding.
const tokenRawLen = 16

// decodeToken recovers the raw bytes of a service-minted token. Issue only
// emits lowercase hex, so rejecting anything else keeps the mapping
// injective: no two distinct token strings share a decoded key.
func decodeToken(token string) (raw [tokenRawLen]byte, ok bool) {
	if len(token) != 2*tokenRawLen {
		return raw, false
	}
	for i := 0; i < len(token); i += 2 {
		hi, ok1 := hexNibble(token[i])
		lo, ok2 := hexNibble(token[i+1])
		if !ok1 || !ok2 {
			return raw, false
		}
		raw[i/2] = hi<<4 | lo
	}
	return raw, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Issue trades credentials for a new token tied to user. Credential checking
// itself is out of scope (the trace never carries passwords); the token is
// cryptographically random as in OAuth.
func (s *Service) Issue(user protocol.UserID) (string, error) {
	var raw [tokenRawLen]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("auth: generating token: %w", err)
	}
	token := hex.EncodeToString(raw[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[raw] = user
	s.counters.Issued++
	return token, nil
}

// lookup resolves a token string to its user without counting.
func (s *Service) lookup(token string) (protocol.UserID, bool) {
	raw, ok := decodeToken(token)
	if !ok {
		return 0, false
	}
	user, ok := s.tokens[raw]
	return user, ok
}

// failureDraw derives the transient-failure uniform for one authentication
// request as a pure function of (Seed, user, now), scrambled through
// splitmix64. Keying on the user — not the token string, which is
// crypto-random and differs between runs — and on the virtual request time —
// not a shared draw sequence, whose Nth value would go to whichever caller
// got the lock first — is what keeps SSO failures reproducible across runs
// and under a parallel driver.
func (s *Service) failureDraw(user protocol.UserID, now time.Time) float64 {
	z := dist.Splitmix64(uint64(user)*dist.Splitmix64Gamma + uint64(s.seed) + uint64(now.UnixNano()))
	return float64(z>>11) / (1 << 53)
}

// InjectedFailure reports whether the authentication request presenting
// token at virtual time now is one of the injected transient SSO failures
// (§7.3's 2.76% is measured over authentication requests, so the draw
// applies per request, not per cache-missing SSO round trip). The decision
// is a pure function of (Seed, token's user, now) — independent of
// token-cache state, session placement and caller interleaving, which is
// what keeps the parallel generator's failure stream reproducible. Unknown
// tokens draw no failure (validation rejects them anyway). A true return is
// counted as a failed request.
func (s *Service) InjectedFailure(token string, now time.Time) bool {
	if s.cfg.FailureRate <= 0 {
		return false
	}
	s.mu.Lock()
	user, ok := s.lookup(token)
	s.mu.Unlock()
	if !ok || s.failureDraw(user, now) >= s.cfg.FailureRate {
		return false
	}
	s.mu.Lock()
	s.counters.Failed++
	s.mu.Unlock()
	return true
}

// CapacityWindow is the trailing window over which the capacity model
// measures the authentication arrival rate. It is deliberately much longer
// than faults.AdmissionWindow: at the simulator's compressed scale login
// traffic is sparse (whole sessions per hour, not per second), so a
// minute-sized window would see at most a request or two and the rate
// estimate would be all noise.
const CapacityWindow = time.Hour

// overloadSalt isolates the capacity model's failure draws from the §7.3
// transient-injection stream keyed on the same (seed, user, now).
const overloadSalt = 0x5e55_10ad

// overloadDraw derives the overload-failure uniform for one request as a
// pure function of (Seed, user, now) — the same keying discipline as
// failureDraw, salted so the two streams never alias.
func (s *Service) overloadDraw(user protocol.UserID, now time.Time) float64 {
	z := dist.Splitmix64(dist.Splitmix64(uint64(s.seed)+overloadSalt) +
		uint64(user)*dist.Splitmix64Gamma + uint64(now.UnixNano()))
	return float64(z>>11) / (1 << 53)
}

// Overloaded reports whether the authentication request presenting token at
// virtual time now fails because the SSO back-end is past capacity — the
// §5.4 overload shape, where a login storm does not just slow the tier down
// but collapses its goodput for everyone, legitimate users included. Every
// call registers the request in the trailing load window first (the request
// reached the tier whether or not it fails, and before any cache could
// absorb it — the paper's token caches exist precisely because this tier is
// the fragile one). When the windowed arrival rate L exceeds Capacity C the
// request fails with probability 1 - (C/L)², so surviving goodput is C²/L:
// the further past capacity the storm pushes, the less real work the tier
// completes. The failure decision itself is a pure function of (Seed, user,
// now); the live load window makes the overall model serial-driver
// deterministic, like admission control. Unknown tokens register load but
// draw no failure (validation rejects them anyway).
func (s *Service) Overloaded(token string, now time.Time) bool {
	if s.cfg.Capacity <= 0 {
		return false
	}
	s.mu.Lock()
	user, known := s.lookup(token)
	cutoff := now.Add(-CapacityWindow)
	live := s.load[:0]
	for _, t := range s.load {
		if t.After(cutoff) {
			live = append(live, t)
		}
	}
	s.load = append(live, now)
	rate := float64(len(s.load)) / CapacityWindow.Seconds()
	s.mu.Unlock()
	if !known || rate <= s.cfg.Capacity {
		return false
	}
	ratio := s.cfg.Capacity / rate
	if s.overloadDraw(user, now) >= 1-ratio*ratio {
		return false
	}
	s.mu.Lock()
	s.counters.Overloaded++
	s.counters.Failed++
	s.mu.Unlock()
	return true
}

// Load reports the windowed authentication arrival rate (requests/sec) at
// time now (diagnostics and tests).
func (s *Service) Load(now time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := now.Add(-CapacityWindow)
	var n int
	for _, t := range s.load {
		if t.After(cutoff) {
			n++
		}
	}
	return float64(n) / CapacityWindow.Seconds()
}

// Validate resolves a token to its user (auth.get_user_id_from_token).
// Unknown tokens yield protocol.ErrAuthFailed; the transient-failure
// injection of InjectedFailure happens at the request level, before any
// cache consult, so Validate itself never flakes.
func (s *Service) Validate(token string) (protocol.UserID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	user, ok := s.lookup(token)
	if !ok {
		s.counters.Failed++
		return 0, fmt.Errorf("%w: unknown token", protocol.ErrAuthFailed)
	}
	s.counters.Validated++
	return user, nil
}

// Revoke invalidates a token (used when dismantling the fraudulent accounts
// behind the §5.4 attacks).
func (s *Service) Revoke(token string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if raw, ok := decodeToken(token); ok {
		delete(s.tokens, raw)
	}
	s.counters.Revoked++
}

// RevokeUser invalidates every token of a user and returns how many were
// dropped.
func (s *Service) RevokeUser(user protocol.UserID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for tok, u := range s.tokens {
		if u == user {
			delete(s.tokens, tok)
			n++
		}
	}
	s.counters.Revoked += uint64(n)
	return n
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Cache is the per-API-server token cache of §3.4.1: validated tokens are
// remembered for a TTL so steady-state traffic does not hit the shared
// authentication service.
type Cache struct {
	ttl time.Duration

	mu      sync.Mutex
	entries map[[tokenRawLen]byte]cacheEntry
	puts    uint64
	hits    uint64
	misses  uint64
}

// cacheEntry is 16 bytes: the expiry is kept as Unix nanoseconds rather
// than a 24-byte time.Time, and entries are keyed by the decoded token
// rather than its 32-byte hex string — at a million users the cache holds
// one entry per recently-validated token, so entry size is real memory.
// Non-canonical tokens (which the service never issues) are simply not
// cached: a miss revalidates, which is always correct for a cache.
type cacheEntry struct {
	user    protocol.UserID
	expires int64 // Unix nanoseconds
}

// NewCache creates a cache with the given TTL.
func NewCache(ttl time.Duration) *Cache {
	return &Cache{ttl: ttl, entries: make(map[[tokenRawLen]byte]cacheEntry)}
}

// Get returns the cached user for token if fresh at time now.
func (c *Cache) Get(token string, now time.Time) (protocol.UserID, bool) {
	raw, canonical := decodeToken(token)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !canonical {
		c.misses++
		return 0, false
	}
	e, ok := c.entries[raw]
	if !ok || now.UnixNano() > e.expires {
		if ok {
			delete(c.entries, raw)
		}
		c.misses++
		return 0, false
	}
	c.hits++
	return e.user, true
}

// Put caches a validated token. Every few thousand puts it sweeps out
// expired entries: Get only evicts the token it was asked about, so without
// the sweep entries of users who never reconnect would accumulate forever —
// real memory once populations reach millions. The sweep is invisible to
// Get, which treats expired and absent entries identically.
func (c *Cache) Put(token string, user protocol.UserID, now time.Time) {
	raw, canonical := decodeToken(token)
	if !canonical {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if c.puts%4096 == 0 {
		cutoff := now.UnixNano()
		for tok, e := range c.entries {
			if cutoff > e.expires {
				delete(c.entries, tok)
			}
		}
	}
	c.entries[raw] = cacheEntry{user: user, expires: now.Add(c.ttl).UnixNano()}
}

// Drop removes a token from the cache (on revocation).
func (c *Cache) Drop(token string) {
	if raw, ok := decodeToken(token); ok {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.entries, raw)
	}
}

// HitRate returns the cache hit fraction observed so far (0 when unused).
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
