package auth

import (
	"errors"
	"testing"
	"time"

	"u1/internal/protocol"
)

func TestIssueValidate(t *testing.T) {
	s := New(Config{})
	tok, err := s.Issue(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tok) != 32 {
		t.Errorf("token length = %d", len(tok))
	}
	user, err := s.Validate(tok)
	if err != nil || user != 42 {
		t.Errorf("validate = %v, %v", user, err)
	}
	if _, err := s.Validate("bogus"); !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("bogus token err = %v", err)
	}
	st := s.Stats()
	if st.Issued != 1 || st.Validated != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRevoke(t *testing.T) {
	s := New(Config{})
	tok, _ := s.Issue(1)
	s.Revoke(tok)
	if _, err := s.Validate(tok); !errors.Is(err, protocol.ErrAuthFailed) {
		t.Error("revoked token should fail")
	}
}

func TestRevokeUser(t *testing.T) {
	s := New(Config{})
	t1, _ := s.Issue(7)
	t2, _ := s.Issue(7)
	t3, _ := s.Issue(8)
	if n := s.RevokeUser(7); n != 2 {
		t.Errorf("revoked %d tokens, want 2", n)
	}
	for _, tok := range []string{t1, t2} {
		if _, err := s.Validate(tok); err == nil {
			t.Error("user-7 token should be revoked")
		}
	}
	if _, err := s.Validate(t3); err != nil {
		t.Error("user-8 token should survive")
	}
}

func TestFailureInjection(t *testing.T) {
	// The paper's measured rate: 2.76% of auth requests fail.
	s := New(Config{FailureRate: 0.0276, Seed: 5})
	tok, _ := s.Issue(1)
	start := time.Unix(1390000000, 0)
	var failed int
	const n = 20000
	for i := 0; i < n; i++ {
		if s.InjectedFailure(tok, start.Add(time.Duration(i)*time.Second)) {
			failed++
		}
	}
	rate := float64(failed) / float64(n)
	if rate < 0.02 || rate > 0.036 {
		t.Errorf("failure rate = %v, want ≈ 0.0276", rate)
	}
	if got := s.Stats().Failed; got != uint64(failed) {
		t.Errorf("failed counter = %d, want %d", got, failed)
	}
	// Validate itself never flakes: injection is a request-level concern.
	for i := 0; i < 1000; i++ {
		if _, err := s.Validate(tok); err != nil {
			t.Fatalf("Validate flaked at %d: %v", i, err)
		}
	}
}

// TestFailureInjectionDeterministic pins the parallel-driver contract: the
// failure decision is a pure function of (Seed, token, now), so the same
// validation replayed at the same virtual instant fails the same way no
// matter which goroutine gets there first, and different seeds decorrelate.
func TestFailureInjectionDeterministic(t *testing.T) {
	s1 := New(Config{FailureRate: 0.0276, Seed: 5})
	s2 := New(Config{FailureRate: 0.0276, Seed: 5})
	tok, _ := s1.Issue(1)
	raw, _ := decodeToken(tok)
	s2.tokens[raw] = 1 // mirror the token table
	start := time.Unix(1390000000, 0)
	var diverged, failed int
	for i := 0; i < 5000; i++ {
		now := start.Add(time.Duration(i) * 17 * time.Second)
		f1 := s1.InjectedFailure(tok, now)
		f2 := s2.InjectedFailure(tok, now)
		if f1 != f2 {
			diverged++
		}
		if f1 {
			failed++
		}
	}
	if diverged != 0 {
		t.Errorf("%d validations diverged between identical services", diverged)
	}
	if failed == 0 {
		t.Error("no failures injected at 2.76% over 5000 draws")
	}
}

func TestCache(t *testing.T) {
	// The cache keys by decoded token, so use canonical 32-hex tokens as
	// the service issues them.
	tok := "00112233445566778899aabbccddeeff"
	dtok := "ffeeddccbbaa99887766554433221100"
	c := NewCache(time.Hour)
	now := time.Unix(1390000000, 0)
	if _, ok := c.Get(tok, now); ok {
		t.Error("empty cache should miss")
	}
	c.Put(tok, 9, now)
	if user, ok := c.Get(tok, now.Add(time.Minute)); !ok || user != 9 {
		t.Errorf("cache hit = %v, %v", user, ok)
	}
	// Expired entries miss and are evicted.
	if _, ok := c.Get(tok, now.Add(2*time.Hour)); ok {
		t.Error("expired entry should miss")
	}
	if _, ok := c.Get(tok, now.Add(time.Minute)); ok {
		t.Error("expired entry should have been evicted")
	}
	c.Put(dtok, 1, now)
	c.Drop(dtok)
	if _, ok := c.Get(dtok, now); ok {
		t.Error("dropped entry should miss")
	}
	// Tokens the service could never have issued are not cached at all.
	c.Put("not-a-token", 2, now)
	if _, ok := c.Get("not-a-token", now); ok {
		t.Error("non-canonical token should not be cached")
	}
	if hr := c.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v", hr)
	}
	if NewCache(time.Hour).HitRate() != 0 {
		t.Error("unused cache hit rate should be 0")
	}
}
