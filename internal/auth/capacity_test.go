package auth

import (
	"testing"
	"time"
)

var c0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

func TestOverloadedDisabled(t *testing.T) {
	s := New(Config{})
	tok, _ := s.Issue(1)
	for i := 0; i < 1000; i++ {
		if s.Overloaded(tok, c0.Add(time.Duration(i)*time.Millisecond)) {
			t.Fatal("capacity 0 must disable the overload model")
		}
	}
}

func TestOverloadedUnderCapacity(t *testing.T) {
	// 10 req/hour against a 20 req/hour capacity: never overloaded.
	s := New(Config{Capacity: 20.0 / 3600, Seed: 3})
	tok, _ := s.Issue(1)
	for i := 0; i < 10; i++ {
		if s.Overloaded(tok, c0.Add(time.Duration(i)*6*time.Minute)) {
			t.Fatal("under-capacity request failed")
		}
	}
	if st := s.Stats(); st.Overloaded != 0 || st.Failed != 0 {
		t.Errorf("stats = %+v, want no failures", st)
	}
}

func TestOverloadedGoodputCollapse(t *testing.T) {
	// A storm at 10x capacity: failures appear, and the failure fraction
	// approaches 1 - (C/L)² = 0.99 — the further past capacity, the less
	// goodput survives.
	capacity := 100.0 / 3600 // 100 req/hour
	s := New(Config{Capacity: capacity, Seed: 3})
	tok, _ := s.Issue(1)
	var failed int
	const n = 2000 // one arrival per 3.6s: 1000/hour in the trailing window
	for i := 0; i < n; i++ {
		if s.Overloaded(tok, c0.Add(time.Duration(i)*3600*time.Millisecond)) {
			failed++
		}
	}
	// The second hour runs at the asymptote (0.99); the first ramps up to
	// it, so the overall fraction lands a little lower.
	frac := float64(failed) / n
	if frac < 0.85 || frac > 1.0 {
		t.Errorf("failure fraction at 10x capacity = %v, want ≈ 0.95", frac)
	}
	if st := s.Stats(); st.Overloaded != uint64(failed) || st.Failed != uint64(failed) {
		t.Errorf("stats = %+v, want Overloaded = Failed = %d", st, failed)
	}
}

func TestOverloadedWindowDrains(t *testing.T) {
	// After the storm passes out of the trailing window, the tier recovers.
	capacity := 100.0 / 3600
	s := New(Config{Capacity: capacity, Seed: 3})
	tok, _ := s.Issue(1)
	for i := 0; i < 2000; i++ {
		s.Overloaded(tok, c0.Add(time.Duration(i)*3600*time.Millisecond))
	}
	calm := c0.Add(2 * time.Hour).Add(CapacityWindow)
	if got := s.Load(calm); got != 0 {
		t.Fatalf("windowed load %v req/s after the window drained, want 0", got)
	}
	if s.Overloaded(tok, calm) {
		t.Error("request failed after the storm drained out of the window")
	}
}

func TestOverloadedUnknownTokenRegistersLoadOnly(t *testing.T) {
	// Unknown tokens count as arrivals (they hit the tier) but draw no
	// failure — validation rejects them anyway.
	s := New(Config{Capacity: 1.0 / 3600, Seed: 3})
	for i := 0; i < 500; i++ {
		if s.Overloaded("bogus", c0.Add(time.Duration(i)*time.Second)) {
			t.Fatal("unknown token drew an overload failure")
		}
	}
	if got := s.Load(c0.Add(500 * time.Second)); got == 0 {
		t.Error("unknown tokens did not register load")
	}
}

func TestOverloadedDeterministic(t *testing.T) {
	// Two identically seeded services fed the same request sequence agree on
	// every decision — the serial-driver determinism the scenario suite
	// leans on. Token issuance is random, so drive each service with its own
	// token for the same user: the draw is keyed by (seed, user, now).
	run := func() []bool {
		s := New(Config{Capacity: 50.0 / 3600, Seed: 17})
		tok, _ := s.Issue(9)
		out := make([]bool, 3000)
		for i := range out {
			out[i] = s.Overloaded(tok, c0.Add(time.Duration(i)*4*time.Second))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergent overload decision at i=%d", i)
		}
	}
}
