package notify

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"u1/internal/protocol"
)

func TestFanOutExcludesOrigin(t *testing.T) {
	b := NewBroker()
	qa := b.Register("api-a", 8)
	qb := b.Register("api-b", 8)
	qc := b.Register("api-c", 8)

	b.Publish(Event{Kind: protocol.PushVolumeChanged, User: 1, Volume: 2, Generation: 3, Origin: "api-a"})

	select {
	case e := <-qb:
		if e.Volume != 2 || e.Generation != 3 {
			t.Errorf("event = %+v", e)
		}
	default:
		t.Error("api-b should have received the event")
	}
	select {
	case <-qc:
	default:
		t.Error("api-c should have received the event")
	}
	select {
	case <-qa:
		t.Error("origin must not receive its own event")
	default:
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 2 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOverflowDrops(t *testing.T) {
	b := NewBroker()
	b.Register("slow", 1)
	b.Publish(Event{Origin: "x"})
	b.Publish(Event{Origin: "x"}) // queue full → dropped
	st := b.Stats()
	if st.Delivered != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnregisterClosesQueue(t *testing.T) {
	b := NewBroker()
	q := b.Register("a", 4)
	b.Unregister("a")
	if _, open := <-q; open {
		t.Error("queue should be closed")
	}
	// Publishing to an empty broker is fine.
	b.Publish(Event{})
	if len(b.Subscribers()) != 0 {
		t.Error("no subscribers expected")
	}
}

func TestReRegisterReplacesQueue(t *testing.T) {
	b := NewBroker()
	q1 := b.Register("a", 4)
	q2 := b.Register("a", 4)
	if _, open := <-q1; open {
		t.Error("old queue should be closed on re-register")
	}
	b.Publish(Event{Origin: "other"})
	select {
	case <-q2:
	default:
		t.Error("new queue should receive")
	}
	if subs := b.Subscribers(); len(subs) != 1 || subs[0] != "a" {
		t.Errorf("subscribers = %v", subs)
	}
}

// TestPublishSendsOutsideReadLock pins the snapshot-array fan-out contract:
// Publish holds the broker's read lock only to copy the subscriber list, and
// every queue send happens after the lock is released. The hook fires
// between the two; if Publish still held its read lock there, grabbing the
// write lock would fail.
func TestPublishSendsOutsideReadLock(t *testing.T) {
	b := NewBroker()
	b.Register("a", 1)
	b.Register("b", 1)

	heldDuringFanout := false
	publishFanoutHook = func() {
		if b.mu.TryLock() {
			b.mu.Unlock()
		} else {
			heldDuringFanout = true
		}
	}
	defer func() { publishFanoutHook = nil }()

	b.Publish(Event{Origin: "a"})
	if heldDuringFanout {
		t.Fatal("broker lock held during fan-out: sends must happen outside the read lock")
	}
	if st := b.Stats(); st.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", st.Delivered)
	}
}

func TestConcurrentPublishRegisterUnregister(t *testing.T) {
	// Publishers snapshot the subscriber array and send outside the broker
	// lock while servers churn their registrations under the write lock.
	// Under -race this pins down that a queue close can never race a send —
	// drainThenClose waits out in-flight snapshots via the epoch counters —
	// and that the counters stay exact even when a snapshot outlives an
	// unregistration.
	b := NewBroker()
	const publishers, perPublisher, churns = 8, 500, 200
	// Widen the race window: yield every publisher between taking its
	// snapshot and sending, so churners get every chance to close a queue
	// that an in-flight snapshot still references. The gate protocol must
	// hold the close back until those publishers finish.
	publishFanoutHook = runtime.Gosched
	defer func() { publishFanoutHook = nil }()
	// A stable subscriber that drains continuously; registered before any
	// publisher starts so every publish fans out to at least one queue.
	stable := b.Register("sink", 64)
	done := make(chan struct{})
	go func() {
		for range stable {
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(Event{Kind: protocol.PushVolumeChanged, User: protocol.UserID(p), Origin: "stable"})
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churns; i++ {
			q := b.Register("churny", 4)
			// Drain a little so some sends land on the live queue.
			select {
			case <-q:
			default:
			}
			b.Unregister("churny")
		}
	}()
	// A second churner re-registers under the same name, exercising the
	// replace path (close of the displaced queue) against in-flight
	// snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churns; i++ {
			b.Register("flappy", 2)
			b.Register("flappy", 2)
			b.Unregister("flappy")
		}
	}()
	wg.Wait()
	b.Unregister("sink")
	<-done

	st := b.Stats()
	if st.Published != publishers*perPublisher {
		t.Errorf("published = %d, want %d", st.Published, publishers*perPublisher)
	}
	// Every fan-out attempt either delivered or dropped; the origin queue
	// never existed, so delivered+dropped can exceed published only by the
	// churny registrations that were live at publish time — and can never
	// lose events.
	if st.Delivered+st.Dropped < st.Published {
		t.Errorf("delivered %d + dropped %d < published %d: events vanished",
			st.Delivered, st.Dropped, st.Published)
	}
	if subs := b.Subscribers(); len(subs) != 0 {
		t.Errorf("subscribers after teardown = %v", subs)
	}
}

func TestConcurrentPublishersScale(t *testing.T) {
	// Concurrent publishers must all make progress without serializing on an
	// exclusive lock; correctness check is exact counter accounting.
	b := NewBroker()
	for i := 0; i < 6; i++ {
		b.Register(fmt.Sprintf("api-%d", i), 1) // tiny queues: mostly drops
	}
	const publishers, per = 16, 250
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Origin: "api-0"})
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Published != publishers*per {
		t.Errorf("published = %d, want %d", st.Published, publishers*per)
	}
	if got, want := st.Delivered+st.Dropped, uint64(publishers*per*5); got != want {
		t.Errorf("delivered+dropped = %d, want %d (5 non-origin queues per publish)", got, want)
	}
}
