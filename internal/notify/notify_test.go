package notify

import (
	"testing"

	"u1/internal/protocol"
)

func TestFanOutExcludesOrigin(t *testing.T) {
	b := NewBroker()
	qa := b.Register("api-a", 8)
	qb := b.Register("api-b", 8)
	qc := b.Register("api-c", 8)

	b.Publish(Event{Kind: protocol.PushVolumeChanged, User: 1, Volume: 2, Generation: 3, Origin: "api-a"})

	select {
	case e := <-qb:
		if e.Volume != 2 || e.Generation != 3 {
			t.Errorf("event = %+v", e)
		}
	default:
		t.Error("api-b should have received the event")
	}
	select {
	case <-qc:
	default:
		t.Error("api-c should have received the event")
	}
	select {
	case <-qa:
		t.Error("origin must not receive its own event")
	default:
	}
	st := b.Stats()
	if st.Published != 1 || st.Delivered != 2 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOverflowDrops(t *testing.T) {
	b := NewBroker()
	b.Register("slow", 1)
	b.Publish(Event{Origin: "x"})
	b.Publish(Event{Origin: "x"}) // queue full → dropped
	st := b.Stats()
	if st.Delivered != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnregisterClosesQueue(t *testing.T) {
	b := NewBroker()
	q := b.Register("a", 4)
	b.Unregister("a")
	if _, open := <-q; open {
		t.Error("queue should be closed")
	}
	// Publishing to an empty broker is fine.
	b.Publish(Event{})
	if len(b.Subscribers()) != 0 {
		t.Error("no subscribers expected")
	}
}

func TestReRegisterReplacesQueue(t *testing.T) {
	b := NewBroker()
	q1 := b.Register("a", 4)
	q2 := b.Register("a", 4)
	if _, open := <-q1; open {
		t.Error("old queue should be closed on re-register")
	}
	b.Publish(Event{Origin: "other"})
	select {
	case <-q2:
	default:
		t.Error("new queue should receive")
	}
	if subs := b.Subscribers(); len(subs) != 1 || subs[0] != "a" {
		t.Errorf("subscribers = %v", subs)
	}
}
