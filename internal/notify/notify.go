// Package notify implements the inter-API-server event bus of §3.4.2: the
// RabbitMQ stand-in. When an API server commits a change that other,
// simultaneously connected clients must learn about (updates to shares, new
// generations on a volume another device mirrors), it publishes an event.
// Every registered API server receives every event on its own queue and
// forwards it to the affected sessions it hosts. Delivery to live subscribers
// is at-most-once; a full queue drops events (clients recover via the
// generation comparison done on every connection, §3.4.2).
package notify

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"u1/internal/metrics"
	"u1/internal/protocol"
)

// Event is one inter-server notification.
type Event struct {
	// Kind mirrors the client push vocabulary.
	Kind protocol.PushEvent
	// User is the account whose sessions should be notified.
	User protocol.UserID
	// Volume and Generation describe volume-changed events.
	Volume     protocol.VolumeID
	Generation protocol.Generation
	// Share carries the grant for share events.
	Share protocol.ShareInfo
	// Origin names the publishing API server. Servers still receive their
	// own events (RabbitMQ fan-out semantics); the origin uses the local
	// fast path for its own sessions and skips its queue copy.
	Origin string
	// ExcludeSession is the session that caused the event: it already knows.
	ExcludeSession protocol.SessionID
}

// Counters tracks bus activity.
type Counters struct {
	Published uint64
	Delivered uint64
	Dropped   uint64
}

// brokerMetrics holds the broker's registered handles: bus traffic counters
// and the per-publish fan-out width histogram.
type brokerMetrics struct {
	published *metrics.Counter
	delivered *metrics.Counter
	dropped   *metrics.Counter
	fanout    *metrics.Histogram
}

// subscriber is one registered queue.
type subscriber struct {
	name string
	ch   chan Event
}

// Broker is the fan-out exchange. One instance serves the whole back-end
// (the U1 deployment ran a single RabbitMQ server). Publish snapshots the
// subscriber array under the read lock and performs every queue send outside
// it, so the broker-wide critical section is a single slice copy no matter
// how wide the fan-out, and sends themselves are plain non-blocking channel
// operations with no per-queue locking.
//
// Close safety without per-send locks: every fan-out registers in the
// in-flight gate selected by the current epoch parity (read and incremented
// under the read lock) and leaves it after its last send. A topology change
// that must close a channel flips the epoch under the write lock — so every
// later fan-out uses the other gate and a rebuilt snapshot that no longer
// contains the queue — and then waits for the old gate to drain to zero
// before closing. Flips are serialized by topoMu, so the gate being waited
// on can only decrease; once it reaches zero, no fan-out that could still
// see the removed queue is running, and the close can never race a send.
type Broker struct {
	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	// epoch's parity selects the gate in-flight fan-outs register in; gates
	// count fan-outs per parity.
	epoch atomic.Uint32
	gates [2]atomic.Int64
	// topoMu serializes epoch flips, so a drain never competes with another
	// flip reusing its parity.
	topoMu sync.Mutex

	mu   sync.RWMutex
	m    brokerMetrics
	subs map[string]*subscriber
	// list is the immutable fan-out snapshot, rebuilt on every topology
	// change; Publish copies the slice header under RLock and iterates it
	// lock-free.
	list []*subscriber
}

// publishFanoutHook, when non-nil, runs once per Publish after the read lock
// is released and before any queue send. Tests use it to prove that sends
// happen outside the broker lock; it must stay nil in production.
var publishFanoutHook func()

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	b := &Broker{subs: make(map[string]*subscriber)}
	b.Instrument(nil)
	return b
}

// Instrument registers the broker's counters on reg. Call before traffic
// starts; a nil registry leaves the broker unobserved but functional.
func (b *Broker) Instrument(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = brokerMetrics{
		published: reg.Counter("notify.published"),
		delivered: reg.Counter("notify.delivered"),
		dropped:   reg.Counter("notify.dropped"),
		fanout:    reg.Histogram("notify.fanout"),
	}
}

// Register creates (or replaces) the queue of an API server and returns its
// receive channel. buffer bounds the queue depth; overflow drops events.
func (b *Broker) Register(server string, buffer int) <-chan Event {
	if buffer <= 0 {
		buffer = 1024
	}
	q := &subscriber{name: server, ch: make(chan Event, buffer)}
	b.topoMu.Lock()
	defer b.topoMu.Unlock()
	b.mu.Lock()
	old := b.subs[server]
	b.subs[server] = q
	b.rebuildLocked()
	oldParity := b.flipLocked(old != nil)
	b.mu.Unlock()
	if old != nil {
		b.drainThenClose(old, oldParity)
	}
	return q.ch
}

// Unregister removes a server's queue and closes its channel.
func (b *Broker) Unregister(server string) {
	b.topoMu.Lock()
	defer b.topoMu.Unlock()
	b.mu.Lock()
	q := b.subs[server]
	delete(b.subs, server)
	b.rebuildLocked()
	oldParity := b.flipLocked(q != nil)
	b.mu.Unlock()
	if q != nil {
		b.drainThenClose(q, oldParity)
	}
}

// rebuildLocked refreshes the immutable fan-out snapshot; callers hold the
// write lock. The snapshot is ordered by subscriber name so every fan-out
// visits servers in the same order — delivery interleaving is part of the
// deterministic-replay surface.
func (b *Broker) rebuildLocked() {
	names := make([]string, 0, len(b.subs))
	for name := range b.subs {
		names = append(names, name)
	}
	sort.Strings(names)
	list := make([]*subscriber, 0, len(names))
	for _, name := range names {
		list = append(list, b.subs[name])
	}
	b.list = list
}

// flipLocked advances the epoch when a queue must be closed and returns the
// retiring parity. Callers hold both topoMu and the write lock, so every
// fan-out after this point registers in the other gate.
func (b *Broker) flipLocked(closing bool) uint32 {
	parity := b.epoch.Load() & 1
	if closing {
		b.epoch.Add(1)
	}
	return parity
}

// drainThenClose closes a queue that was just removed from the snapshot,
// after the retiring gate drains: every fan-out registered there took its
// snapshot before the removal, and no new fan-out can join it (the epoch
// moved on and topoMu keeps the parity from being reused mid-wait), so gate
// zero means no sender can still see q. Fan-outs are non-blocking and finish
// in nanoseconds; topology changes are rare, so the brief spin is confined
// to this cold path.
func (b *Broker) drainThenClose(q *subscriber, parity uint32) {
	for b.gates[parity].Load() != 0 {
		runtime.Gosched()
	}
	close(q.ch)
}

// Publish fans the event out to every registered queue except the origin's
// (the origin served its local sessions synchronously before publishing, the
// same-process shortcut the paper's footnote 4 describes). Queue sends never
// block: a full queue drops the event. The read lock is held only to
// snapshot the subscriber array and register in the epoch's in-flight gate;
// every send happens outside it, so a wide fan-out never extends the
// broker's critical section. The gate lets Register/Unregister wait out
// in-flight snapshots before closing a removed queue's channel.
func (b *Broker) Publish(e Event) {
	b.mu.RLock()
	m := b.m
	list := b.list
	gate := &b.gates[b.epoch.Load()&1]
	gate.Add(1)
	b.mu.RUnlock()

	if publishFanoutHook != nil {
		publishFanoutHook()
	}
	var delivered, dropped uint64
	for _, q := range list {
		if q.name == e.Origin {
			continue
		}
		select {
		case q.ch <- e:
			delivered++
		default:
			dropped++
		}
	}
	gate.Add(-1)

	b.published.Add(1)
	b.delivered.Add(delivered)
	b.dropped.Add(dropped)
	m.published.Inc()
	m.delivered.Add(delivered)
	m.dropped.Add(dropped)
	m.fanout.Observe(float64(delivered))
}

// Stats returns a snapshot of the counters.
func (b *Broker) Stats() Counters {
	return Counters{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
}

// Subscribers returns the sorted names of registered servers, for
// diagnostics.
func (b *Broker) Subscribers() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.subs))
	for name := range b.subs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
