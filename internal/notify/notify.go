// Package notify implements the inter-API-server event bus of §3.4.2: the
// RabbitMQ stand-in. When an API server commits a change that other,
// simultaneously connected clients must learn about (updates to shares, new
// generations on a volume another device mirrors), it publishes an event.
// Every registered API server receives every event on its own queue and
// forwards it to the affected sessions it hosts. Delivery to live subscribers
// is at-most-once; a full queue drops events (clients recover via the
// generation comparison done on every connection, §3.4.2).
package notify

import (
	"sync"
	"sync/atomic"

	"u1/internal/metrics"
	"u1/internal/protocol"
)

// Event is one inter-server notification.
type Event struct {
	// Kind mirrors the client push vocabulary.
	Kind protocol.PushEvent
	// User is the account whose sessions should be notified.
	User protocol.UserID
	// Volume and Generation describe volume-changed events.
	Volume     protocol.VolumeID
	Generation protocol.Generation
	// Share carries the grant for share events.
	Share protocol.ShareInfo
	// Origin names the publishing API server. Servers still receive their
	// own events (RabbitMQ fan-out semantics); the origin uses the local
	// fast path for its own sessions and skips its queue copy.
	Origin string
	// ExcludeSession is the session that caused the event: it already knows.
	ExcludeSession protocol.SessionID
}

// Counters tracks bus activity.
type Counters struct {
	Published uint64
	Delivered uint64
	Dropped   uint64
}

// brokerMetrics holds the broker's registered handles: bus traffic counters
// and the per-publish fan-out width histogram.
type brokerMetrics struct {
	published *metrics.Counter
	delivered *metrics.Counter
	dropped   *metrics.Counter
	fanout    *metrics.Histogram
}

// Broker is the fan-out exchange. One instance serves the whole back-end
// (the U1 deployment ran a single RabbitMQ server). Publishers fan out under
// the read lock with atomic counters, so concurrent publishes never
// serialize on each other; only Register/Unregister/Instrument — the rare
// topology changes — take the write lock.
type Broker struct {
	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64

	mu     sync.RWMutex
	m      brokerMetrics
	queues map[string]chan Event
}

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	b := &Broker{queues: make(map[string]chan Event)}
	b.Instrument(nil)
	return b
}

// Instrument registers the broker's counters on reg. Call before traffic
// starts; a nil registry leaves the broker unobserved but functional.
func (b *Broker) Instrument(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = brokerMetrics{
		published: reg.Counter("notify.published"),
		delivered: reg.Counter("notify.delivered"),
		dropped:   reg.Counter("notify.dropped"),
		fanout:    reg.Histogram("notify.fanout"),
	}
}

// Register creates (or replaces) the queue of an API server and returns its
// receive channel. buffer bounds the queue depth; overflow drops events.
func (b *Broker) Register(server string, buffer int) <-chan Event {
	if buffer <= 0 {
		buffer = 1024
	}
	q := make(chan Event, buffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if old, ok := b.queues[server]; ok {
		close(old)
	}
	b.queues[server] = q
	return q
}

// Unregister removes a server's queue and closes its channel.
func (b *Broker) Unregister(server string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if q, ok := b.queues[server]; ok {
		close(q)
		delete(b.queues, server)
	}
}

// Publish fans the event out to every registered queue except the origin's
// (the origin served its local sessions synchronously before publishing, the
// same-process shortcut the paper's footnote 4 describes). Queue sends never
// block: a full queue drops the event. Publish only takes the read lock —
// the queues map is mutated exclusively under the write lock by Register
// and Unregister, and channel close also happens there, so a send can never
// race a close.
func (b *Broker) Publish(e Event) {
	b.mu.RLock()
	m := b.m
	var delivered, dropped uint64
	for name, q := range b.queues {
		if name == e.Origin {
			continue
		}
		select {
		case q <- e:
			delivered++
		default:
			dropped++
		}
	}
	b.mu.RUnlock()
	b.published.Add(1)
	b.delivered.Add(delivered)
	b.dropped.Add(dropped)
	m.published.Inc()
	m.delivered.Add(delivered)
	m.dropped.Add(dropped)
	m.fanout.Observe(float64(delivered))
}

// Stats returns a snapshot of the counters.
func (b *Broker) Stats() Counters {
	return Counters{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
}

// Subscribers returns the names of registered servers, for diagnostics.
func (b *Broker) Subscribers() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.queues))
	for name := range b.queues {
		out = append(out, name)
	}
	return out
}
