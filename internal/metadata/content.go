package metadata

import "sync"

import "u1/internal/protocol"

// contentRegistry is the cross-shard catalog of unique file contents keyed by
// SHA-1. U1 applies file-based cross-user deduplication (§3.3): before a
// client uploads, the server checks whether the hash already exists; on a hit
// the new file is logically linked to the existing content and no transfer
// happens. Reference counts decide when a blob may be garbage collected from
// the data store.
// Rows are stored by value: a pointer per unique content is a separate heap
// object and, at million-user populations, measurable overhead for a
// one-word payload.
type contentRegistry struct {
	mu   sync.RWMutex
	rows map[protocol.Hash]contentRow

	// logicalBytes counts every reference's size (what users think they
	// store); uniqueBytes counts stored-once sizes. Their ratio yields the
	// paper's deduplication ratio dr = 1 − unique/total (§5.3).
	logicalBytes uint64
	uniqueBytes  uint64
}

// contentRow packs a content's size and reference count into one word: the
// low 40 bits hold the size (the workload caps uploads at 4 GB, so a
// terabyte of headroom), the high 24 bits the refcount. The campaign holds
// ~10 unique contents per user, so the 8 bytes saved per row over a
// two-field struct is ~64 bytes per map bucket — real memory at a million
// users. A refcount reaching the 24-bit ceiling saturates and the row
// becomes immortal (release never frees it): semantically safe, and it
// takes ~16.7M links to a single hash to happen.
type contentRow uint64

const (
	contentSizeBits = 40
	contentSizeMask = 1<<contentSizeBits - 1
	contentRefsMax  = 1<<(64-contentSizeBits) - 1
)

func newContentRow(size, refs uint64) contentRow {
	if size > contentSizeMask {
		panic("metadata: content size exceeds 40 bits")
	}
	return contentRow(refs<<contentSizeBits | size)
}

func (r contentRow) size() uint64 { return uint64(r) & contentSizeMask }
func (r contentRow) refs() uint64 { return uint64(r) >> contentSizeBits }

func newContentRegistry() *contentRegistry {
	return &contentRegistry{rows: make(map[protocol.Hash]contentRow)}
}

// lookup reports whether the hash is already stored, and its size.
func (c *contentRegistry) lookup(h protocol.Hash) (size uint64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	row, ok := c.rows[h]
	if !ok {
		return 0, false
	}
	return row.size(), true
}

// addRef links one more file to the content, creating the row when the
// content is new. It returns true when the content was already present (a
// dedup hit).
func (c *contentRegistry) addRef(h protocol.Hash, size uint64) (existed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.rows[h]
	if ok {
		if row.refs() < contentRefsMax {
			c.rows[h] = newContentRow(row.size(), row.refs()+1)
		}
		c.logicalBytes += row.size()
		return true
	}
	c.rows[h] = newContentRow(size, 1)
	c.logicalBytes += size
	c.uniqueBytes += size
	return false
}

// release drops one reference. When the last reference goes away the row is
// removed and release returns true: the caller should delete the blob from
// the data store.
func (c *contentRegistry) release(h protocol.Hash) (freed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.rows[h]
	if !ok {
		return false
	}
	c.logicalBytes -= row.size()
	if row.refs() >= contentRefsMax {
		return false // saturated: the row is immortal
	}
	if row.refs() > 1 {
		c.rows[h] = newContentRow(row.size(), row.refs()-1)
		return false
	}
	c.uniqueBytes -= row.size()
	delete(c.rows, h)
	return true
}

// ContentStats summarizes the dedup catalog.
type ContentStats struct {
	UniqueContents int
	LogicalBytes   uint64
	UniqueBytes    uint64
}

// DedupRatio returns dr = 1 − unique/total bytes, the paper's §5.3 metric
// (0.171 over the U1 month).
func (s ContentStats) DedupRatio() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(s.UniqueBytes)/float64(s.LogicalBytes)
}

func (c *contentRegistry) stats() *ContentStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &ContentStats{
		UniqueContents: len(c.rows),
		LogicalBytes:   c.logicalBytes,
		UniqueBytes:    c.uniqueBytes,
	}
}
