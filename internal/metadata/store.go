// Package metadata implements the U1 metadata store: the stand-in for the
// PostgreSQL cluster of 20 Dell servers configured as 10 master/slave shards
// described in §3.4 of the paper.
//
// The store routes every operation by user identifier to a shard, so the
// metadata of a user's files and folders always lives in the same shard and
// most operations touch exactly one shard without distributed locking
// ("lockless" in the paper's wording). Only share-related operations may span
// two shards. Read operations take the shard's read lock (the slave replica
// serves them in the real deployment; both replicas hold identical data here
// and the replica split is modeled for load accounting), while mutations take
// the write lock (the master).
//
// Per-volume generations implement the synchronization protocol: every
// mutation advances the owning volume's generation and appends to a bounded
// delta log. Clients that fall behind the log horizon must rescan from
// scratch — the expensive cascade read the paper calls get_from_scratch.
package metadata

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/metrics"
	"u1/internal/protocol"
	"u1/internal/wal"
)

// Config parameterizes the store.
type Config struct {
	// Shards is the number of database shards (the paper's deployment: 10).
	Shards int
	// DeltaLogLimit bounds the per-volume delta log. A GetDelta from before
	// the horizon returns ErrDeltaTruncated and the caller falls back to
	// GetFromScratch. 0 means DefaultDeltaLogLimit. Negative disables the
	// log entirely: volumes carry no delta history and every delta read
	// from a stale generation falls back to a full rescan — the
	// million-user scale campaign's setting, trading delta-read cost for
	// zero per-volume log memory.
	DeltaLogLimit int
	// Metrics receives per-shard load counters, lock hold times, and the
	// delta/cascade counters. nil disables registration (the handles still
	// work, they are just not exported anywhere).
	Metrics *metrics.Registry
	// Durability, when non-empty, is the root directory of the durable tier:
	// each shard keeps a journal and snapshot under <Durability>/shard-<i>.
	// Empty keeps the store purely in-memory (the pre-durability behavior).
	Durability string
	// FsyncPolicy selects when journal appends reach stable storage; the
	// zero value is wal.FsyncPerOp, the strongest setting.
	FsyncPolicy wal.Policy
	// SnapshotEvery is the per-shard journal record count between snapshots.
	// 0 means DefaultSnapshotEvery.
	SnapshotEvery int
	// Regions partitions the shards into contiguous groups with asynchronous
	// cross-region replication between them (see replicate.go). Values ≤ 1
	// disable replication; values above Shards are clamped to Shards.
	Regions int
	// ReplicationDelay is how many replication epochs a published record waits
	// in a peer region's backlog before applying. 0 applies records on the
	// tick that ships them.
	ReplicationDelay int
	// EventualReads serves cross-region reads from the reader region's
	// replica (possibly stale) instead of the owner shard. The default is
	// read-your-writes: cross-region reads go to the owner unless its region
	// is down.
	EventualReads bool
}

// DefaultDeltaLogLimit is the per-volume delta log bound used when the
// configuration does not specify one.
const DefaultDeltaLogLimit = 512

// ErrDeltaTruncated reports that the requested generation fell behind the
// delta log horizon; the client must rescan the volume from scratch.
var ErrDeltaTruncated = fmt.Errorf("%w: delta log truncated", protocol.ErrConflict)

// storeMetrics holds the store-level instrumentation: how often delta reads
// are answered from the log, how often clients fall off the horizon
// (ErrDeltaTruncated), how many expensive get_from_scratch cascades follow,
// and how often the per-volume logs trim their history.
type storeMetrics struct {
	deltaServed    *metrics.Counter
	deltaTruncated *metrics.Counter
	fromScratch    *metrics.Counter
	logTrimmed     *metrics.Counter
}

// Store is the sharded metadata store.
type Store struct {
	shards   []*shard
	contents *contentRegistry
	m        storeMetrics

	// dur is the durable tier (per-shard journal + snapshot); nil for
	// in-memory stores.
	dur *durability

	// repl is the cross-region replication tier (see replicate.go); nil with
	// a single region.
	repl *replication

	// volumeDir maps every live volume to its owner, the directory the
	// request router consults to find the shard that holds a volume that is
	// not the caller's (shared volumes may live in a different shard).
	volumeDir volumeDirectory

	nextVolume uint64
	nextNode   uint64
	nextShare  uint64
	nextUpload uint64
}

// New creates a store with cfg. A zero config yields 10 shards, matching the
// U1 deployment. New panics when recovery of a durable store fails; callers
// that need the error (anything reopening real state) use Open.
func New(cfg Config) *Store {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("metadata: opening store: %v", err))
	}
	return s
}

// Open creates a store with cfg and, when cfg.Durability names a directory,
// recovers every shard from its snapshot plus journal before returning. The
// error is non-nil only for durable stores whose on-disk state cannot be
// opened.
func Open(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 10
	}
	if cfg.DeltaLogLimit == 0 {
		cfg.DeltaLogLimit = DefaultDeltaLogLimit
	}
	s := &Store{
		shards:   make([]*shard, cfg.Shards),
		contents: newContentRegistry(),
		m: storeMetrics{
			deltaServed:    cfg.Metrics.Counter("meta.delta.served"),
			deltaTruncated: cfg.Metrics.Counter("meta.delta.truncated"),
			fromScratch:    cfg.Metrics.Counter("meta.get_from_scratch"),
			logTrimmed:     cfg.Metrics.Counter("meta.deltalog.trimmed"),
		},
	}
	for i := range s.shards {
		s.shards[i] = newShard(i, cfg.DeltaLogLimit, cfg.Metrics)
	}
	if cfg.Regions > cfg.Shards {
		cfg.Regions = cfg.Shards
	}
	if cfg.Regions > 1 {
		s.repl = newReplication(cfg, cfg.Metrics)
	}
	if cfg.Durability != "" {
		if err := s.openDurability(cfg, cfg.Metrics); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index that owns the user's metadata. Routing
// hashes the user id so placement is deterministic but uncorrelated with
// registration order, as in the production router.
func (s *Store) ShardFor(user protocol.UserID) int {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(user) >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum64() % uint64(len(s.shards)))
}

func (s *Store) shardOf(user protocol.UserID) *shard {
	return s.shards[s.ShardFor(user)]
}

// ShardLoads returns per-shard cumulative (reads, writes) counters, the
// instrumentation behind the Fig. 14 load-balance analysis at store level.
func (s *Store) ShardLoads() (reads, writes []uint64) {
	reads = make([]uint64, len(s.shards))
	writes = make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		reads[i] = sh.m.reads.Value()
		writes[i] = sh.m.writes.Value()
	}
	return reads, writes
}

// Contents exposes the content registry (dedup catalog).
func (s *Store) Contents() *ContentStats { return s.contents.stats() }

func (s *Store) allocVolume() protocol.VolumeID {
	return protocol.VolumeID(atomic.AddUint64(&s.nextVolume, 1))
}

func (s *Store) allocNode() protocol.NodeID {
	return protocol.NodeID(atomic.AddUint64(&s.nextNode, 1))
}

func (s *Store) allocShare() protocol.ShareID {
	return protocol.ShareID(atomic.AddUint64(&s.nextShare, 1))
}

func (s *Store) allocUpload() protocol.UploadID {
	return protocol.UploadID(atomic.AddUint64(&s.nextUpload, 1))
}

// bumpTo raises the allocator at addr to at least v, so identifiers observed
// in recovered state are never reissued.
func bumpTo(addr *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(addr)
		if cur >= v || atomic.CompareAndSwapUint64(addr, cur, v) {
			return
		}
	}
}

// shardMetrics holds one shard's registered handles: counters mirroring the
// reads/writes atomics, and the master/slave lock hold-time histograms —
// the live view of the per-shard load the paper derives offline in Fig. 14.
type shardMetrics struct {
	reads     *metrics.Counter
	writes    *metrics.Counter
	readHold  *metrics.Histogram
	writeHold *metrics.Histogram
}

// shard is one master/slave pair of the cluster. The RWMutex models the
// paper's access pattern: reads run lockless and in parallel on the slave,
// writes serialize on the master. reads/writes counters feed load accounting.
type shard struct {
	id            int
	deltaLogLimit int
	m             shardMetrics

	mu         sync.RWMutex
	users      map[protocol.UserID]*userRow
	volumes    map[protocol.VolumeID]*volumeRow
	nodes      map[protocol.NodeID]*nodeRow
	shares     map[protocol.ShareID]*protocol.ShareInfo
	uploadjobs map[protocol.UploadID]*UploadJob

	// revoked, when non-nil, reports share ids revoked at the owner but not
	// yet replicated here. Set only on replica shards of a region (see
	// regionState.revoked); owner shards observe revocations under their own
	// write lock and need no tombstones.
	revoked func(protocol.ShareID) bool
}

func newShard(id, deltaLogLimit int, reg *metrics.Registry) *shard {
	prefix := metrics.ShardPrefix + strconv.Itoa(id)
	return &shard{
		id:            id,
		deltaLogLimit: deltaLogLimit,
		m: shardMetrics{
			reads:     reg.Counter(prefix + ".reads"),
			writes:    reg.Counter(prefix + ".writes"),
			readHold:  reg.Histogram(prefix + ".read_hold.seconds"),
			writeHold: reg.Histogram(prefix + ".write_hold.seconds"),
		},
		users:      make(map[protocol.UserID]*userRow),
		volumes:    make(map[protocol.VolumeID]*volumeRow),
		nodes:      make(map[protocol.NodeID]*nodeRow),
		shares:     make(map[protocol.ShareID]*protocol.ShareInfo),
		uploadjobs: make(map[protocol.UploadID]*UploadJob),
	}
}

// volumeDirectory is the volume→owner routing table: plain maps behind
// striped read-write locks. sync.Map pays ~100 bytes of trie nodes plus two
// boxed interfaces per entry where a plain map entry is 16 bytes — tens of
// megabytes at millions of volumes — and the striped locks keep the read
// path (every routed request) uncontended. Maps materialize on first store,
// so zero-valued directories work without a constructor.
type volumeDirectory struct {
	shards [16]volumeDirShard
}

type volumeDirShard struct {
	mu sync.RWMutex
	m  map[protocol.VolumeID]protocol.UserID
}

func (d *volumeDirectory) shard(vol protocol.VolumeID) *volumeDirShard {
	return &d.shards[uint64(vol)%uint64(len(d.shards))]
}

func (d *volumeDirectory) load(vol protocol.VolumeID) (protocol.UserID, bool) {
	sh := d.shard(vol)
	sh.mu.RLock()
	owner, ok := sh.m[vol]
	sh.mu.RUnlock()
	return owner, ok
}

func (d *volumeDirectory) store(vol protocol.VolumeID, owner protocol.UserID) {
	sh := d.shard(vol)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[protocol.VolumeID]protocol.UserID)
	}
	sh.m[vol] = owner
	sh.mu.Unlock()
}

func (d *volumeDirectory) delete(vol protocol.VolumeID) {
	sh := d.shard(vol)
	sh.mu.Lock()
	delete(sh.m, vol)
	sh.mu.Unlock()
}

func (d *volumeDirectory) clear() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

type userRow struct {
	id   protocol.UserID
	root protocol.VolumeID
	// volumes owned by this user, including the root volume. A slice, not a
	// set: users own a handful of volumes, and a one-entry map per user is
	// ~200 bytes of buckets at million-user populations. Order is insertion
	// order; consumers sort where output order matters.
	volumes []protocol.VolumeID
	// incoming shares (this user is the grantee); nil until the first grant —
	// most users never share, and an empty map per user is real memory at
	// million-user populations. Reads, deletes and ranges treat nil as empty.
	sharesIn map[protocol.ShareID]struct{}
	// outgoing shares (this user is the owner); nil until the first grant
	sharesOut map[protocol.ShareID]struct{}
}

func (u *userRow) addVolume(id protocol.VolumeID) { u.volumes = append(u.volumes, id) }

func (u *userRow) removeVolume(id protocol.VolumeID) {
	for i, v := range u.volumes {
		if v == id {
			u.volumes = append(u.volumes[:i], u.volumes[i+1:]...)
			return
		}
	}
}

func (u *userRow) addShareIn(id protocol.ShareID) {
	if u.sharesIn == nil {
		u.sharesIn = make(map[protocol.ShareID]struct{}, 1)
	}
	u.sharesIn[id] = struct{}{}
}

func (u *userRow) addShareOut(id protocol.ShareID) {
	if u.sharesOut == nil {
		u.sharesOut = make(map[protocol.ShareID]struct{}, 1)
	}
	u.sharesOut[id] = struct{}{}
}

// nodeRow is the packed in-store representation of a node. The sh.nodes
// key is the node's ID, so the row does not duplicate it, and the fields
// are laid out to fit the 80-byte size class — 16 bytes less than a row
// embedding a whole protocol.NodeInfo, which at ~10 nodes per user is real
// memory at a million users. info materializes the protocol view.
type nodeRow struct {
	// children indexes directory entries by name; nil for files and for
	// directories that have never held an entry. Most directories in a
	// large population are empty (every volume root starts that way), and
	// an empty map header per root is real memory at a million users —
	// the index materializes on first insert via addChild.
	children map[string]protocol.NodeID
	name     string
	vol      protocol.VolumeID
	parent   protocol.NodeID
	size     uint64
	gen      protocol.Generation
	hash     protocol.Hash
	kind     protocol.NodeKind
}

// newNodeRow packs a protocol view into a row; the ID stays with the map key.
func newNodeRow(info protocol.NodeInfo) *nodeRow {
	return &nodeRow{
		name: info.Name, vol: info.Volume, parent: info.Parent,
		size: info.Size, gen: info.Generation, hash: info.Hash, kind: info.Kind,
	}
}

// info materializes the protocol view of the row stored under id.
func (n *nodeRow) info(id protocol.NodeID) protocol.NodeInfo {
	return protocol.NodeInfo{
		ID: id, Volume: n.vol, Parent: n.parent, Kind: n.kind,
		Name: n.name, Hash: n.hash, Size: n.size, Generation: n.gen,
	}
}

// setInfo overwrites every packed field from the protocol view, keeping the
// children index.
func (n *nodeRow) setInfo(info protocol.NodeInfo) {
	n.name, n.vol, n.parent = info.Name, info.Volume, info.Parent
	n.size, n.gen, n.hash, n.kind = info.Size, info.Generation, info.Hash, info.Kind
}

// addChild records a directory entry, materializing the children index on
// first use. Readers treat a nil index and a missing key identically, so
// laziness never shows up in behavior.
func (n *nodeRow) addChild(name string, id protocol.NodeID) {
	if n.children == nil {
		n.children = make(map[string]protocol.NodeID, 1)
	}
	n.children[name] = id
}

type logEntry struct {
	gen     protocol.Generation
	node    protocol.NodeInfo
	deleted bool
}

type volumeRow struct {
	info protocol.VolumeInfo
	root protocol.NodeID
	log  []logEntry
	// droppedThrough is the highest generation whose log entries may have
	// been discarded; GetDelta can only serve fromGen ≥ droppedThrough.
	droppedThrough protocol.Generation
	// grants maps grantee user to the share id, for permission checks on
	// shared volumes; nil until the first grant (see userRow.sharesIn)
	grants map[protocol.UserID]protocol.ShareID
}

func (v *volumeRow) addGrant(to protocol.UserID, id protocol.ShareID) {
	if v.grants == nil {
		v.grants = make(map[protocol.UserID]protocol.ShareID, 1)
	}
	v.grants[to] = id
}

// volumeNodeIDs walks the children tree from v's root and returns every node
// id in the volume, root included. makeNode always attaches new nodes under
// an existing parent and unlink removes whole subtrees, so the walk reaches
// every live node — which is what lets volumeRow skip maintaining a separate
// per-volume node set (measurable memory at millions of volumes). Children
// are visited in ascending NodeID order, so the breadth-first result is
// deterministic and safe to feed journals and fingerprints directly.
func volumeNodeIDs(sh *shard, v *volumeRow) []protocol.NodeID {
	ids := append(make([]protocol.NodeID, 0, 8), v.root)
	for i := 0; i < len(ids); i++ {
		if nr, ok := sh.nodes[ids[i]]; ok {
			kids := make([]protocol.NodeID, 0, len(nr.children))
			for _, child := range nr.children {
				kids = append(kids, child)
			}
			sort.Slice(kids, func(a, b int) bool { return kids[a] < kids[b] })
			ids = append(ids, kids...)
		}
	}
	return ids
}

func (v *volumeRow) bumpGen() protocol.Generation {
	v.info.Generation++
	return v.info.Generation
}

// appendLog records a mutation in v's delta log, trimming the oldest half
// when the log exceeds the shard's retention limit. It runs under the
// shard's write lock.
func (s *Store) appendLog(sh *shard, v *volumeRow, n protocol.NodeInfo, deleted bool) {
	if sh.deltaLogLimit < 0 {
		// Log disabled: record only the horizon so GetDelta reports
		// truncation and clients rescan. No entry is retained.
		v.droppedThrough = v.info.Generation
		return
	}
	v.log = append(v.log, logEntry{gen: v.info.Generation, node: n, deleted: deleted})
	if len(v.log) > sh.deltaLogLimit {
		// Drop the oldest half rather than one entry at a time; amortizes
		// the copy and keeps a meaningful horizon. Entries sharing the
		// boundary generation may survive the cut, but droppedThrough makes
		// any delta spanning that generation fall back to a full rescan, so
		// clients never observe a partial cascade.
		drop := sh.deltaLogLimit / 2
		if drop < 1 {
			// DeltaLogLimit 1 halves to zero; always trim at least one entry
			// so the slice index below stays legal and the log stays bounded.
			drop = 1
		}
		v.droppedThrough = v.log[drop-1].gen
		v.log = append(v.log[:0:0], v.log[drop:]...)
		s.m.logTrimmed.Inc()
	}
}

func (s *shard) readOp()  { s.m.reads.Inc() }
func (s *shard) writeOp() { s.m.writes.Inc() }

// rlock counts a read op, takes the shard's read lock (the slave replica of
// the pair) and returns the acquisition time; runlock releases the lock and
// records the hold. The pair instruments every read without allocating:
//
//	defer sh.runlock(sh.rlock())   // defer evaluates rlock() immediately
//
// or, with early-release paths:
//
//	start := sh.rlock()
//	...
//	sh.runlock(start)
func (sh *shard) rlock() time.Time {
	sh.readOp()
	sh.mu.RLock()
	// Virtual time is frozen while a goroutine holds a lock, so only the host
	// clock can measure contention; the hold histograms are observability
	// only and never feed simulation state.
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	return time.Now()
}

func (sh *shard) runlock(start time.Time) {
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	hold := time.Since(start)
	sh.mu.RUnlock()
	sh.m.readHold.Observe(hold.Seconds())
}

// wlock/wunlock are the master-side counterparts for mutations.
func (sh *shard) wlock() time.Time {
	sh.writeOp()
	sh.mu.Lock()
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	return time.Now()
}

func (sh *shard) wunlock(start time.Time) {
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	hold := time.Since(start)
	sh.mu.Unlock()
	sh.m.writeHold.Observe(hold.Seconds())
}
