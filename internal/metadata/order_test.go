package metadata

import (
	"fmt"
	"sort"
	"testing"

	"u1/internal/protocol"
)

// These tests pin the iteration-order contracts the maporder lint pass
// enforces: everything DeleteVolume emits into journals, replication streams,
// or its returned removal list must be independent of Go map iteration order.

// TestDeleteVolumeJournalsDropSharesInUserOrder pins the grantee-cleanup
// order: DeleteVolume walks the volume's grantees in ascending user id, so
// each grantee shard's journal (and therefore the replication stream, which
// publishes journal records in apply order) sees drop_share records in a
// canonical order. Before the sort, the walk ranged over the grants map and
// the record order varied run to run.
func TestDeleteVolumeJournalsDropSharesInUserOrder(t *testing.T) {
	s := New(Config{Shards: 4, Regions: 2})
	const owner = protocol.UserID(1)
	mustUser(t, s, owner)
	udf, err := s.CreateUDF(owner, "~/Shared")
	if err != nil {
		t.Fatal(err)
	}

	// Pick grantees that live on other shards: same-shard grantees are
	// cleaned inline under the owner's lock and never journal separately.
	ownerShard := s.ShardFor(owner)
	var grantees []protocol.UserID
	for id := protocol.UserID(2); len(grantees) < 12 && id < 10_000; id++ {
		if s.ShardFor(id) == ownerShard {
			continue
		}
		grantees = append(grantees, id)
		mustUser(t, s, id)
		share, err := s.CreateShare(owner, udf.ID, id, fmt.Sprintf("s%d", id), false)
		if err != nil {
			t.Fatalf("CreateShare(%d): %v", id, err)
		}
		if _, err := s.AcceptShare(id, share.ID); err != nil {
			t.Fatalf("AcceptShare(%d): %v", id, err)
		}
	}

	// Drain the setup records so only the delete's records remain in the
	// outboxes.
	s.CollectReplication()

	if _, _, err := s.DeleteVolume(owner, udf.ID); err != nil {
		t.Fatal(err)
	}

	// Per-shard journal order is the contract: within each grantee shard the
	// drop_share records must appear in ascending grantee id. With 12
	// grantees over 3 shards an unsorted map walk fails this with high
	// probability on every run.
	total := 0
	for shardID, recs := range s.repl.outbox {
		var seen []protocol.UserID
		for _, rec := range recs {
			if rec.Kind == recDropShare {
				seen = append(seen, rec.Share.SharedTo)
			}
		}
		total += len(seen)
		if !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
			t.Errorf("shard %d journaled drop_share records out of user order: %v", shardID, seen)
		}
	}
	if total != len(grantees) {
		t.Errorf("journaled %d drop_share records, want %d", total, len(grantees))
	}
}

// TestDeleteVolumeRemovalOrderDeterministic pins the cascade's node order:
// two identically built stores must report the removed nodes of a deleted
// volume in the identical sequence, because that sequence lands in the
// journal (recDeleteVolume carries it) and in client notifications. The
// breadth-first walk sorts each node's children, so the order cannot inherit
// map iteration randomness.
func TestDeleteVolumeRemovalOrderDeterministic(t *testing.T) {
	build := func() (*Store, protocol.VolumeID) {
		s := New(Config{Shards: 4})
		mustUser(t, s, 1)
		udf, err := s.CreateUDF(1, "~/Tree")
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 4; d++ {
			dir, err := s.MakeDir(1, udf.ID, 0, fmt.Sprintf("d%d", d))
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < 3; f++ {
				if _, err := s.MakeFile(1, udf.ID, dir.ID, fmt.Sprintf("f%d", f)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s, udf.ID
	}

	s1, v1 := build()
	s2, v2 := build()
	removed1, _, err := s1.DeleteVolume(1, v1)
	if err != nil {
		t.Fatal(err)
	}
	removed2, _, err := s2.DeleteVolume(1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed1) != len(removed2) {
		t.Fatalf("removal counts differ: %d vs %d", len(removed1), len(removed2))
	}
	for i := range removed1 {
		if removed1[i].ID != removed2[i].ID {
			t.Fatalf("removal order diverged at index %d: %v vs %v\n  run 1: %v\n  run 2: %v",
				i, removed1[i].ID, removed2[i].ID, nodeIDs(removed1), nodeIDs(removed2))
		}
	}
}

func nodeIDs(nodes []protocol.NodeInfo) []protocol.NodeID {
	out := make([]protocol.NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

// TestUnlinkRemovalOrderDeterministic does the same for the subtree unlink
// path, whose depth-first traversal now pushes children in sorted order.
func TestUnlinkRemovalOrderDeterministic(t *testing.T) {
	build := func() (*Store, protocol.VolumeID, protocol.NodeID) {
		s := New(Config{Shards: 4})
		root := mustUser(t, s, 1)
		top, err := s.MakeDir(1, root.ID, 0, "top")
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < 4; d++ {
			dir, err := s.MakeDir(1, root.ID, top.ID, fmt.Sprintf("d%d", d))
			if err != nil {
				t.Fatal(err)
			}
			for f := 0; f < 3; f++ {
				if _, err := s.MakeFile(1, root.ID, dir.ID, fmt.Sprintf("f%d", f)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s, root.ID, top.ID
	}

	s1, v1, n1 := build()
	s2, v2, n2 := build()
	removed1, _, _, err := s1.Unlink(1, v1, n1)
	if err != nil {
		t.Fatal(err)
	}
	removed2, _, _, err := s2.Unlink(1, v2, n2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed1) != len(removed2) {
		t.Fatalf("removal counts differ: %d vs %d", len(removed1), len(removed2))
	}
	for i := range removed1 {
		if removed1[i].ID != removed2[i].ID {
			t.Fatalf("unlink order diverged at index %d:\n  run 1: %v\n  run 2: %v",
				i, nodeIDs(removed1), nodeIDs(removed2))
		}
	}
}
