package metadata

import (
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"u1/internal/metrics"
	"u1/internal/protocol"
)

// Asynchronous cross-region metadata replication. Shards partition into
// contiguous regions; every mutation applies at the owning region (exactly as
// before) and additionally appends its journal record — the same
// journal-by-resulting-state encoding the WAL uses (durable.go) — to the
// owning shard's replication outbox, under the same write lock that applied
// the mutation. Outbox order is therefore apply order, and replaying a
// shard's record stream in order reconstructs the owner bit-for-bit, which is
// the invariant the region drill's fingerprint comparison enforces.
//
// Shipping is epoch-batched: each replication tick (driven by the sharded
// engine's mailbox barrier in simulation, or TickReplication from a harness)
// stamps the records published since the last tick and delivers them into
// every peer region's backlog; a backlog record applies to the peer's replica
// shards once it has aged ReplicationDelay ticks. Reads resolve through
// readShardFor: same-region reads always hit the owner shard; cross-region
// reads go to the owner under read-your-writes (the default) or to the
// reader region's replica under eventual reads — and always to the replica
// when the owner region is down.
//
// Conflict rule: cross-region writes on shared volumes resolve by
// (generation, region-id) last-writer-wins — a node-bearing record applies
// only if it advances the replica volume's generation, and generation ties go
// to the higher origin region. The same guard makes re-delivery idempotent,
// which is what lets failover replay a region's entire backlog
// unconditionally.
//
// Determinism: records join an epoch by the virtual time of the mutation, so
// for a fixed (Seed, Workers, Regions) the per-tick batch contents, backlog
// depths, applied counts and stale-read decisions are identical regardless of
// goroutine interleaving. Replica state between ticks is frozen, so mid-epoch
// replica reads are deterministic too.

// replMetrics is the repl.* instrumentation of the replication tier.
type replMetrics struct {
	published    *metrics.Counter
	applied      *metrics.Counter
	lwwSkipped   *metrics.Counter
	revokedHits  *metrics.Counter
	readsLocal   *metrics.Counter
	readsRemote  *metrics.Counter
	readsStale   *metrics.Counter
	backlogDepth *metrics.Gauge
	lagEpochs    *metrics.Histogram
}

// replRecord is one backlog entry: a journal record, its owning shard, and
// the tick at which it was published.
type replRecord struct {
	shard int
	epoch uint64
	rec   journalRecord
}

// ReplicationBatch is one shard's records published in one tick toward one
// peer region — the payload posted into that region's mailbox. Opaque outside
// the package: harnesses move batches, only the store reads them.
type ReplicationBatch struct {
	// Region is the destination region.
	Region  int
	shard   int
	epoch   uint64
	records []journalRecord
}

// regionState is one region's replication-side state.
type regionState struct {
	// replicas holds this region's replica of every shard owned by another
	// region; nil entries are this region's own shards (the owner copy is
	// local). Replica shards register no metrics so replication traffic never
	// pollutes the owner shards' load counters.
	replicas []*shard
	// backlog holds delivered, not-yet-applied records in arrival order;
	// publication epochs are non-decreasing along it, so ripe records always
	// form a prefix.
	backlog []replRecord
	// pending counts backlog records per owning shard — the per-shard
	// staleness signal readShardFor consults.
	pending []int
	// lastOrigin tracks, per volume, the origin region of the last applied
	// node-bearing record: the region-id half of the LWW conflict rule.
	lastOrigin map[protocol.VolumeID]int
	// revoked is the eagerly flushed share-revocation set: share ids whose
	// revocation was accepted at the owner but has not yet reached this
	// region's replicas. Replica-side access checks consult it so a revoked
	// cross-region grant stops authorizing immediately (the PR 4
	// DropCachedToken lesson applied to the metadata path index). Guarded by
	// revMu, not the replication mutex: the consult happens under a replica
	// shard's lock, which applyLocked acquires while holding r.mu — a shared
	// lock would invert that order and deadlock under concurrent traffic.
	revMu   sync.Mutex
	revoked map[protocol.ShareID]struct{}
	// down marks the region failed: writes owned by it are refused, reads
	// fail over to peer replicas.
	down bool
}

// replication is the store's cross-region state; nil with a single region.
type replication struct {
	regions  int
	delay    int
	eventual bool
	m        replMetrics

	// outbox is per owner shard, appended under that shard's write lock by
	// replicate() and drained by CollectReplication under the same lock.
	outbox [][]journalRecord

	// mu guards epoch, state backlogs/pending/revoked/down. Mutations happen
	// at replication ticks (traffic quiescent in simulation) and on the
	// explicit down/recover transitions; request-path readers take the read
	// lock.
	mu    sync.RWMutex
	epoch uint64
	state []*regionState
}

func newReplication(cfg Config, reg *metrics.Registry) *replication {
	r := &replication{
		regions:  cfg.Regions,
		delay:    cfg.ReplicationDelay,
		eventual: cfg.EventualReads,
		outbox:   make([][]journalRecord, cfg.Shards),
		state:    make([]*regionState, cfg.Regions),
		m: replMetrics{
			published:    reg.Counter(metrics.ReplicationPrefix + "published"),
			applied:      reg.Counter(metrics.ReplicationPrefix + "applied"),
			lwwSkipped:   reg.Counter(metrics.ReplicationPrefix + "lww_skipped"),
			revokedHits:  reg.Counter(metrics.ReplicationPrefix + "revoked_blocked"),
			readsLocal:   reg.Counter(metrics.ReplicationPrefix + "reads.local"),
			readsRemote:  reg.Counter(metrics.ReplicationPrefix + "reads.remote"),
			readsStale:   reg.Counter(metrics.ReplicationPrefix + "reads.stale"),
			backlogDepth: reg.Gauge(metrics.ReplicationPrefix + "backlog.depth"),
			lagEpochs:    reg.Histogram(metrics.ReplicationPrefix + "lag.epochs"),
		},
	}
	for region := range r.state {
		st := &regionState{
			replicas:   make([]*shard, cfg.Shards),
			pending:    make([]int, cfg.Shards),
			lastOrigin: make(map[protocol.VolumeID]int),
			revoked:    make(map[protocol.ShareID]struct{}),
		}
		for i := 0; i < cfg.Shards; i++ {
			if r.regionOf(i) == region {
				continue
			}
			sh := newShard(i, cfg.DeltaLogLimit, nil)
			st := st
			sh.revoked = func(id protocol.ShareID) bool {
				st.revMu.Lock()
				_, gone := st.revoked[id]
				st.revMu.Unlock()
				if gone {
					r.m.revokedHits.Inc()
				}
				return gone
			}
			st.replicas[i] = sh
		}
		r.state[region] = st
	}
	return r
}

// regionOf maps a shard index to its contiguous region: region r owns shards
// [r·S/R, (r+1)·S/R), so groups are contiguous and sized within one of each
// other.
func (r *replication) regionOf(shard int) int {
	return shard * r.regions / len(r.outbox)
}

// ReplicationEnabled reports whether the store replicates across regions.
func (s *Store) ReplicationEnabled() bool { return s.repl != nil }

// Regions returns the configured region count (1 without replication).
func (s *Store) Regions() int {
	if s.repl == nil {
		return 1
	}
	return s.repl.regions
}

// RegionOf returns the region owning shard i (0 without replication).
func (s *Store) RegionOf(i int) int {
	if s.repl == nil {
		return 0
	}
	return s.repl.regionOf(i)
}

// RegionOfUser returns the region owning the user's metadata.
func (s *Store) RegionOfUser(user protocol.UserID) int {
	return s.RegionOf(s.ShardFor(user))
}

// replicate appends rec to sh's replication outbox. Runs under sh's write
// lock — the same critical section that applied the mutation and journaled it
// — so outbox order is apply order. No-op with a single region.
func (s *Store) replicate(sh *shard, rec *journalRecord) {
	if s.repl == nil {
		return
	}
	s.repl.outbox[sh.id] = append(s.repl.outbox[sh.id], *rec)
	s.repl.m.published.Inc()
}

// BeginReplicationEpoch opens a new replication tick and returns its index.
// Called once per epoch barrier, before CollectReplication.
func (s *Store) BeginReplicationEpoch() uint64 {
	r := s.repl
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.epoch++
	e := r.epoch
	r.mu.Unlock()
	return e
}

// CollectReplication drains every owner shard's outbox into per-peer-region
// batches, stamped with the current tick, in deterministic (region, shard)
// order. The simulation's pump mailbox posts each batch into its destination
// region's mailbox; TickReplication delivers them directly.
func (s *Store) CollectReplication() []ReplicationBatch {
	r := s.repl
	if r == nil {
		return nil
	}
	r.mu.RLock()
	epoch := r.epoch
	r.mu.RUnlock()
	var out []ReplicationBatch
	perShard := make([][]journalRecord, len(s.shards))
	for i, sh := range s.shards {
		//u1:allow lockdiscipline outbox drain is the replication tick, not a DAL op
		sh.mu.Lock()
		if len(r.outbox[i]) > 0 {
			perShard[i] = r.outbox[i]
			r.outbox[i] = nil
		}
		sh.mu.Unlock()
	}
	for region := 0; region < r.regions; region++ {
		for i := range perShard {
			if perShard[i] == nil || r.regionOf(i) == region {
				continue
			}
			out = append(out, ReplicationBatch{
				Region: region, shard: i, epoch: epoch, records: perShard[i],
			})
		}
	}
	return out
}

// DeliverReplication appends a batch to its destination region's backlog.
func (s *Store) DeliverReplication(b ReplicationBatch) {
	r := s.repl
	if r == nil {
		return
	}
	r.mu.Lock()
	st := r.state[b.Region]
	for i := range b.records {
		st.backlog = append(st.backlog, replRecord{shard: b.shard, epoch: b.epoch, rec: b.records[i]})
	}
	st.pending[b.shard] += len(b.records)
	r.mu.Unlock()
}

// ApplyReplication applies region's ripe backlog prefix — records that have
// aged at least the configured delay — to its replica shards, then refreshes
// the backlog depth gauge.
func (s *Store) ApplyReplication(region int) {
	r := s.repl
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state[region]
	i := 0
	for ; i < len(st.backlog); i++ {
		rec := st.backlog[i]
		if rec.epoch+uint64(r.delay) > r.epoch {
			break // publication epochs are non-decreasing: the rest is younger
		}
		r.applyLocked(st, rec)
		st.pending[rec.shard]--
	}
	if i > 0 {
		st.backlog = append(st.backlog[:0:0], st.backlog[i:]...)
	}
	r.refreshBacklogGaugeLocked()
}

func (r *replication) refreshBacklogGaugeLocked() {
	var depth int64
	for _, st := range r.state {
		depth += int64(len(st.backlog))
	}
	r.m.backlogDepth.Set(depth)
}

// applyLocked applies one record to its replica shard under r.mu, guarded by
// the (generation, region-id) LWW rule. Tombstoned revocations clear once the
// revoking record itself arrives.
func (r *replication) applyLocked(st *regionState, rr replRecord) {
	sh := st.replicas[rr.shard]
	origin := r.regionOf(rr.shard)
	//u1:allow lockdiscipline replica shards are not client-facing; the apply path has its own metrics
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec := rr.rec
	switch rec.Kind {
	case recDeleteVolume:
		if vr, ok := sh.volumes[rec.VolID]; ok {
			st.revMu.Lock()
			for _, shareID := range vr.grants {
				delete(st.revoked, shareID)
			}
			st.revMu.Unlock()
		}
		delete(st.lastOrigin, rec.VolID)
	case recDropShare:
		st.revMu.Lock()
		delete(st.revoked, rec.Share.ID)
		st.revMu.Unlock()
	}
	if !shouldApply(st, sh, &rec, origin) {
		r.m.lwwSkipped.Inc()
		return
	}
	applyRecord(nil, sh, &rec)
	switch rec.Kind {
	case recMakeNode, recMakeContent, recMove:
		st.lastOrigin[rec.Node.Volume] = origin
	case recUnlink:
		st.lastOrigin[rec.VolID] = origin
	}
	r.m.applied.Inc()
	r.m.lagEpochs.Observe(float64(r.epoch - rr.epoch))
}

// shouldApply is the (generation, region-id) last-writer-wins guard: a
// node-bearing record applies only if it advances the replica volume's
// generation, with ties won by the higher origin region. Volume/share
// bookkeeping records are guarded for idempotence instead, so re-delivery
// (failover replays the whole backlog) never corrupts a replica.
func shouldApply(st *regionState, sh *shard, rec *journalRecord, origin int) bool {
	switch rec.Kind {
	case recCreateUser, recCreateUDF:
		_, dup := sh.volumes[rec.Volume.ID]
		return !dup
	case recMakeNode, recMakeContent, recMove:
		return genWins(st, sh, rec.Node.Volume, rec.Node.Generation, origin)
	case recUnlink:
		return genWins(st, sh, rec.VolID, rec.Gen, origin)
	}
	return true
}

func genWins(st *regionState, sh *shard, vol protocol.VolumeID, gen protocol.Generation, origin int) bool {
	vr, ok := sh.volumes[vol]
	if !ok {
		return true
	}
	if gen != vr.info.Generation {
		return gen > vr.info.Generation
	}
	return origin > st.lastOrigin[vol]
}

// TickReplication runs one full replication tick outside the simulation:
// advance the epoch, ship every published batch, and apply whatever is ripe
// in every region. The sharded engine's mailbox pump performs the same steps
// through per-region mailboxes.
func (s *Store) TickReplication() {
	if s.repl == nil {
		return
	}
	s.BeginReplicationEpoch()
	for _, b := range s.CollectReplication() {
		s.DeliverReplication(b)
	}
	for region := 0; region < s.repl.regions; region++ {
		s.ApplyReplication(region)
	}
}

// DrainReplication ticks until every region's backlog is empty — the
// quiesce-and-converge helper tests and drills use before comparing
// fingerprints.
func (s *Store) DrainReplication() {
	if s.repl == nil {
		return
	}
	for i := 0; i <= s.repl.delay+1; i++ {
		s.TickReplication()
		s.repl.mu.RLock()
		depth := 0
		for _, st := range s.repl.state {
			depth += len(st.backlog)
		}
		s.repl.mu.RUnlock()
		if depth == 0 {
			return
		}
	}
}

// ReplicationBacklog returns the total records awaiting application across
// all regions.
func (s *Store) ReplicationBacklog() int {
	if s.repl == nil {
		return 0
	}
	s.repl.mu.RLock()
	defer s.repl.mu.RUnlock()
	var n int
	for _, st := range s.repl.state {
		n += len(st.backlog)
	}
	return n
}

// RegionDown marks a region failed: mutations owned by it are refused with
// ErrUnavailable and cross-region reads of its shards fail over to the
// reader region's replicas. Idempotent.
func (s *Store) RegionDown(region int) {
	if s.repl == nil {
		return
	}
	s.repl.mu.Lock()
	s.repl.state[region].down = true
	s.repl.mu.Unlock()
}

// FailoverRegion promotes region at's replicas to the head of the published
// stream by applying its entire backlog immediately, replication delay
// ignored — the failover step after a peer region dies. Every record the dead
// region published before dying is already in this backlog (publication
// happens under the mutation's own lock), so acknowledged owner-region writes
// survive with zero loss.
func (s *Store) FailoverRegion(at int) {
	r := s.repl
	if r == nil {
		return
	}
	// Ship anything still sitting in publication outboxes: a record is
	// published at ack time, so this is what makes "acked before the region
	// died" imply "present in the failover state". Peer regions receive their
	// copies too, with normal delay semantics.
	for _, b := range s.CollectReplication() {
		s.DeliverReplication(b)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state[at]
	for _, rec := range st.backlog {
		r.applyLocked(st, rec)
		st.pending[rec.shard]--
	}
	st.backlog = nil
	r.refreshBacklogGaugeLocked()
}

// RegionRecover restores a downed region from a surviving peer: the peer
// fast-forwards its replicas (FailoverRegion), every owner shard of the dead
// region is rebuilt from the peer's replica snapshot, derived store state is
// recomputed, and the region rejoins. Uploadjobs are transient and lost with
// the region, exactly as in a shard crash.
func (s *Store) RegionRecover(region, from int) {
	r := s.repl
	if r == nil {
		return
	}
	s.FailoverRegion(from)
	r.mu.RLock()
	peer := r.state[from]
	r.mu.RUnlock()
	for i, sh := range s.shards {
		if r.regionOf(i) != region {
			continue
		}
		replica := peer.replicas[i]
		//u1:allow lockdiscipline region drill reads the replica wholesale, not client load
		replica.mu.RLock()
		snap := snapshotState(replica)
		replica.mu.RUnlock()
		//u1:allow lockdiscipline region drill restores owner state wholesale, not client load
		sh.mu.Lock()
		sh.users = make(map[protocol.UserID]*userRow)
		sh.volumes = make(map[protocol.VolumeID]*volumeRow)
		sh.nodes = make(map[protocol.NodeID]*nodeRow)
		sh.shares = make(map[protocol.ShareID]*protocol.ShareInfo)
		sh.uploadjobs = make(map[protocol.UploadID]*UploadJob)
		restoreSnapshot(sh, snap)
		sh.mu.Unlock()
	}
	s.rebuildDerived()
	r.mu.Lock()
	r.state[region].down = false
	r.mu.Unlock()
}

// ReplicaFingerprint digests region's replica of shard i the way
// ShardFingerprint digests the owner: bit-for-bit equality of the two is the
// zero-loss half of the region drill. For the region's own shards it returns
// the owner fingerprint.
func (s *Store) ReplicaFingerprint(region, i int) string {
	r := s.repl
	if r == nil || r.regionOf(i) == region {
		return s.ShardFingerprint(i)
	}
	r.mu.RLock()
	sh := r.state[region].replicas[i]
	r.mu.RUnlock()
	//u1:allow lockdiscipline fingerprinting is a drill probe, not client load
	sh.mu.RLock()
	snap := snapshotState(sh)
	sh.mu.RUnlock()
	data, err := json.Marshal(snap)
	if err != nil {
		return "unfingerprintable: " + err.Error()
	}
	sum := sha1.Sum(data)
	return hex.EncodeToString(sum[:])
}

// writeGuard refuses mutations owned by a downed region. Nil without
// replication or while every region serves.
func (s *Store) writeGuard(owner protocol.UserID) error {
	r := s.repl
	if r == nil {
		return nil
	}
	region := r.regionOf(s.ShardFor(owner))
	r.mu.RLock()
	down := r.state[region].down
	r.mu.RUnlock()
	if down {
		return fmt.Errorf("%w: metadata region %d is down", protocol.ErrUnavailable, region)
	}
	return nil
}

// WriteUnavailable reports whether a mutation on vol would be refused because
// its owning region is down — the API tier's region-routing probe
// (apiserver.RegionRouter).
func (s *Store) WriteUnavailable(vol protocol.VolumeID) bool {
	if s.repl == nil {
		return false
	}
	owner, err := s.ownerOf(vol)
	if err != nil {
		return false // let the handler produce the authoritative error
	}
	return s.writeGuard(owner) != nil
}

// NumRegions implements apiserver.RegionRouter.
func (s *Store) NumRegions() int { return s.Regions() }

// readShardFor routes a read of owner's metadata on behalf of user: reads
// whose owner lives in the reader's region always hit the owner shard;
// cross-region reads hit the owner under read-your-writes or the reader
// region's replica under eventual reads, counting staleness when the replica
// still has backlog for that shard. A down owner region always fails over to
// the reader's replica.
func (s *Store) readShardFor(user, owner protocol.UserID) *shard {
	oShard := s.ShardFor(owner)
	r := s.repl
	if r == nil {
		return s.shards[oShard]
	}
	oRegion := r.regionOf(oShard)
	uRegion := r.regionOf(s.ShardFor(user))
	if uRegion == oRegion {
		return s.shards[oShard]
	}
	r.mu.RLock()
	down := r.state[oRegion].down
	stale := r.state[uRegion].pending[oShard] > 0
	r.mu.RUnlock()
	if !down && !r.eventual {
		r.m.readsRemote.Inc()
		return s.shards[oShard]
	}
	r.m.readsLocal.Inc()
	if stale {
		r.m.readsStale.Inc()
	}
	return r.state[uRegion].replicas[oShard]
}

// revokeCrossRegion eagerly tombstones a revoked share in every peer region,
// so replica-side access checks refuse the grant before the revoking record
// ages through the backlog — without it, a cross-region grantee could keep
// reading through the grantee region's cached grant index for the whole
// replication delay (and a create_share record still in the backlog could
// even resurrect the grant after the volume died).
func (s *Store) revokeCrossRegion(ownerRegion int, shareIDs []protocol.ShareID) {
	r := s.repl
	if r == nil || len(shareIDs) == 0 {
		return
	}
	for region, st := range r.state {
		if region == ownerRegion {
			continue
		}
		st.revMu.Lock()
		for _, id := range shareIDs {
			st.revoked[id] = struct{}{}
		}
		st.revMu.Unlock()
	}
}
