package metadata

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"u1/internal/protocol"
)

func newTestStore() *Store { return New(Config{Shards: 10}) }

func mustUser(t *testing.T, s *Store, id protocol.UserID) protocol.VolumeInfo {
	t.Helper()
	v, err := s.CreateUser(id)
	if err != nil {
		t.Fatalf("CreateUser(%v): %v", id, err)
	}
	return v
}

func TestCreateUserIdempotent(t *testing.T) {
	s := newTestStore()
	v1 := mustUser(t, s, 1)
	v2 := mustUser(t, s, 1)
	if v1.ID != v2.ID {
		t.Errorf("re-create returned different root volume: %v vs %v", v1.ID, v2.ID)
	}
	if v1.Type != protocol.VolumeRoot {
		t.Errorf("root volume type = %v", v1.Type)
	}
	ud, err := s.GetUserData(1)
	if err != nil || ud.RootVolume != v1.ID || ud.Volumes != 1 {
		t.Errorf("GetUserData = %+v, %v", ud, err)
	}
}

func TestGetUserDataUnknown(t *testing.T) {
	s := newTestStore()
	if _, err := s.GetUserData(42); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestShardRoutingDeterministic(t *testing.T) {
	s := newTestStore()
	for u := protocol.UserID(0); u < 100; u++ {
		a, b := s.ShardFor(u), s.ShardFor(u)
		if a != b {
			t.Fatalf("routing of %v not deterministic", u)
		}
		if a < 0 || a >= s.NumShards() {
			t.Fatalf("shard %d out of range", a)
		}
	}
}

func TestShardRoutingSpreads(t *testing.T) {
	s := newTestStore()
	counts := make([]int, s.NumShards())
	for u := protocol.UserID(0); u < 10000; u++ {
		counts[s.ShardFor(u)]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("shard %d holds %d of 10000 users; routing is skewed", i, c)
		}
	}
}

func TestMakeFileAndDir(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	dir, err := s.MakeDir(1, root.ID, 0, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if dir.Kind != protocol.KindDir || dir.Generation != 1 {
		t.Errorf("dir = %+v", dir)
	}
	file, err := s.MakeFile(1, root.ID, dir.ID, "a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if file.Parent != dir.ID || file.Generation != 2 {
		t.Errorf("file = %+v", file)
	}
	// Idempotent re-make returns the same node.
	again, err := s.MakeFile(1, root.ID, dir.ID, "a.txt")
	if err != nil || again.ID != file.ID {
		t.Errorf("re-make: %+v, %v", again, err)
	}
	// Same name, different kind: conflict.
	if _, err := s.MakeDir(1, root.ID, dir.ID, "a.txt"); !errors.Is(err, protocol.ErrExists) {
		t.Errorf("kind conflict err = %v", err)
	}
	// Empty name rejected.
	if _, err := s.MakeFile(1, root.ID, 0, ""); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("empty name err = %v", err)
	}
	// Parent must be a directory.
	if _, err := s.MakeFile(1, root.ID, file.ID, "x"); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("file parent err = %v", err)
	}
	// Unknown parent.
	if _, err := s.MakeFile(1, root.ID, 9999, "x"); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("missing parent err = %v", err)
	}
	// Unknown volume.
	if _, err := s.MakeFile(1, 9999, 0, "x"); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("missing volume err = %v", err)
	}
}

func TestMakeContentAndDedup(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	f, err := s.MakeFile(1, root.ID, 0, "song.mp3")
	if err != nil {
		t.Fatal(err)
	}
	h := protocol.HashBytes([]byte("content-1"))
	if _, ok, _ := s.LookupContent(h); ok {
		t.Fatal("content should not exist yet")
	}
	info, freed, wasUpdate, err := s.MakeContent(1, root.ID, f.ID, h, 1000)
	if err != nil || freed != nil || wasUpdate {
		t.Fatalf("MakeContent: %v freed=%v update=%v", err, freed, wasUpdate)
	}
	if info.Hash != h || info.Size != 1000 {
		t.Errorf("node info = %+v", info)
	}
	if size, ok, _ := s.LookupContent(h); !ok || size != 1000 {
		t.Error("content lookup after make")
	}

	// Second user stores the same content: dedup, logical 2x unique 1x.
	root2 := mustUser(t, s, 2)
	f2, _ := s.MakeFile(2, root2.ID, 0, "copy.mp3")
	if _, _, _, err := s.MakeContent(2, root2.ID, f2.ID, h, 1000); err != nil {
		t.Fatal(err)
	}
	cs := s.Contents()
	if cs.UniqueContents != 1 || cs.LogicalBytes != 2000 || cs.UniqueBytes != 1000 {
		t.Errorf("content stats = %+v", cs)
	}
	if dr := cs.DedupRatio(); dr != 0.5 {
		t.Errorf("dedup ratio = %v", dr)
	}

	// Update the first file: old hash released but still referenced by user 2.
	h2 := protocol.HashBytes([]byte("content-2"))
	_, freedHash, wasUpdate2, err := s.MakeContent(1, root.ID, f.ID, h2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if freedHash != nil {
		t.Error("old content still referenced elsewhere; must not be freed")
	}
	if !wasUpdate2 {
		t.Error("replacing content must be flagged as an update")
	}

	// Deleting user 2's file releases the last ref of h.
	removed, _, freed2, err := s.Unlink(2, root2.ID, f2.ID)
	if err != nil || len(removed) != 1 {
		t.Fatalf("unlink: %v removed=%d", err, len(removed))
	}
	if len(freed2) != 1 || freed2[0] != h {
		t.Errorf("freed = %v, want [%v]", freed2, h)
	}
	// Zero hash rejected.
	if _, _, _, err := s.MakeContent(1, root.ID, f.ID, protocol.Hash{}, 1); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("zero hash err = %v", err)
	}
}

func TestUnlinkCascade(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	dir, _ := s.MakeDir(1, root.ID, 0, "project")
	sub, _ := s.MakeDir(1, root.ID, dir.ID, "src")
	f1, _ := s.MakeFile(1, root.ID, dir.ID, "README")
	f2, _ := s.MakeFile(1, root.ID, sub.ID, "main.go")
	h := protocol.HashBytes([]byte("code"))
	s.MakeContent(1, root.ID, f2.ID, h, 42)

	removed, gen, freed, err := s.Unlink(1, root.ID, dir.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 4 {
		t.Errorf("removed %d nodes, want 4 (dir, sub, 2 files)", len(removed))
	}
	if len(freed) != 1 {
		t.Errorf("freed %d contents, want 1", len(freed))
	}
	// All removed nodes stamped with the same generation.
	for _, n := range removed {
		if n.Generation != gen {
			t.Errorf("node %v generation %d, want %d", n.ID, n.Generation, gen)
		}
	}
	// Everything is gone.
	for _, id := range []protocol.NodeID{dir.ID, sub.ID, f1.ID, f2.ID} {
		if _, err := s.GetNode(1, root.ID, id); !errors.Is(err, protocol.ErrNotFound) {
			t.Errorf("node %v still reachable", id)
		}
	}
	// Unlinking the volume root is rejected.
	rootNode, _ := s.GetRoot(1)
	if _, _, _, err := s.Unlink(1, root.ID, rootNode.ID); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("unlink root err = %v", err)
	}
	// Unlinking a missing node.
	if _, _, _, err := s.Unlink(1, root.ID, 9999); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("unlink missing err = %v", err)
	}
}

func TestMove(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	a, _ := s.MakeDir(1, root.ID, 0, "a")
	b, _ := s.MakeDir(1, root.ID, 0, "b")
	f, _ := s.MakeFile(1, root.ID, a.ID, "f.txt")

	moved, err := s.Move(1, root.ID, f.ID, b.ID, "g.txt")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Parent != b.ID || moved.Name != "g.txt" {
		t.Errorf("moved = %+v", moved)
	}
	// The old path is free again.
	if _, err := s.MakeFile(1, root.ID, a.ID, "f.txt"); err != nil {
		t.Errorf("old name should be reusable: %v", err)
	}
	// Name collision at destination.
	if _, err := s.Move(1, root.ID, f.ID, b.ID, "g.txt"); !errors.Is(err, protocol.ErrExists) {
		t.Errorf("collision err = %v", err)
	}
	// Cycle rejection: cannot move a dir under its own subtree.
	c, _ := s.MakeDir(1, root.ID, a.ID, "c")
	if _, err := s.Move(1, root.ID, a.ID, c.ID, "a"); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("cycle err = %v", err)
	}
	// Moving the volume root is rejected.
	rootNode, _ := s.GetRoot(1)
	if _, err := s.Move(1, root.ID, rootNode.ID, b.ID, "r"); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("move root err = %v", err)
	}
	// Empty target name.
	if _, err := s.Move(1, root.ID, f.ID, b.ID, ""); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("empty name err = %v", err)
	}
}

func TestGetDeltaBasics(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	d, _ := s.MakeDir(1, root.ID, 0, "d")
	f, _ := s.MakeFile(1, root.ID, d.ID, "f")
	deltas, gen, err := s.GetDelta(1, root.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 || gen != 2 {
		t.Fatalf("deltas=%d gen=%d", len(deltas), gen)
	}
	// Delta from the current generation is empty.
	deltas, _, err = s.GetDelta(1, root.ID, gen)
	if err != nil || len(deltas) != 0 {
		t.Errorf("up-to-date delta = %v, %v", deltas, err)
	}
	// Deletion shows up as a tombstone.
	s.Unlink(1, root.ID, f.ID)
	deltas, _, err = s.GetDelta(1, root.ID, gen)
	if err != nil || len(deltas) != 1 || !deltas[0].Deleted {
		t.Errorf("tombstone delta = %+v, %v", deltas, err)
	}
}

func TestGetDeltaTruncationForcesRescan(t *testing.T) {
	s := New(Config{Shards: 2, DeltaLogLimit: 8})
	root := mustUser(t, s, 1)
	for i := 0; i < 50; i++ {
		if _, err := s.MakeFile(1, root.ID, 0, fmt.Sprintf("f%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.GetDelta(1, root.ID, 0)
	if !errors.Is(err, ErrDeltaTruncated) {
		t.Fatalf("expected truncated delta, got %v", err)
	}
	// ErrDeltaTruncated maps onto the conflict status for the wire.
	if protocol.StatusOf(err) != protocol.StatusConflict {
		t.Errorf("status = %v", protocol.StatusOf(err))
	}
	// The rescan path returns everything.
	nodes, gen, err := s.GetFromScratch(1, root.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 51 { // 50 files + volume root dir
		t.Errorf("from scratch returned %d nodes", len(nodes))
	}
	if gen != 50 {
		t.Errorf("generation = %d", gen)
	}
	// A recent generation is still servable from the log.
	deltas, _, err := s.GetDelta(1, root.ID, gen-1)
	if err != nil || len(deltas) != 1 {
		t.Errorf("recent delta: %v, %v", deltas, err)
	}
}

func TestUDFLifecycle(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	udf, err := s.CreateUDF(1, "~/Music")
	if err != nil {
		t.Fatal(err)
	}
	if udf.Type != protocol.VolumeUDF {
		t.Errorf("type = %v", udf.Type)
	}
	// Duplicate path rejected.
	if _, err := s.CreateUDF(1, "~/Music"); !errors.Is(err, protocol.ErrExists) {
		t.Errorf("dup err = %v", err)
	}
	if _, err := s.CreateUDF(1, ""); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("empty path err = %v", err)
	}
	vols, err := s.ListVolumes(1)
	if err != nil || len(vols) != 2 {
		t.Fatalf("volumes = %v, %v", vols, err)
	}

	// Fill and delete the UDF.
	f, _ := s.MakeFile(1, udf.ID, 0, "x.mp3")
	h := protocol.HashBytes([]byte("tune"))
	s.MakeContent(1, udf.ID, f.ID, h, 10)
	removed, freed, err := s.DeleteVolume(1, udf.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 { // root dir + file
		t.Errorf("removed %d nodes", len(removed))
	}
	if len(freed) != 1 {
		t.Errorf("freed %d contents", len(freed))
	}
	if _, err := s.GetVolume(1, udf.ID); !errors.Is(err, protocol.ErrNotFound) {
		t.Error("volume should be gone")
	}
	// The root volume cannot be deleted.
	rootVol := vols[0]
	if rootVol.Type != protocol.VolumeRoot {
		rootVol = vols[1]
	}
	if _, _, err := s.DeleteVolume(1, rootVol.ID); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("delete root err = %v", err)
	}
}

func TestSharingAcrossShards(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	mustUser(t, s, 2)
	udf, _ := s.CreateUDF(1, "~/Shared")
	f, _ := s.MakeFile(1, udf.ID, 0, "doc.txt")

	// Before sharing, user 2 has no access.
	if _, err := s.GetNode(2, udf.ID, f.ID); !errors.Is(err, protocol.ErrPermission) {
		t.Errorf("pre-share access err = %v", err)
	}

	share, err := s.CreateShare(1, udf.ID, 2, "our-docs", false)
	if err != nil {
		t.Fatal(err)
	}
	// Not accepted yet: still no access, but visible in ListShares.
	if _, err := s.GetNode(2, udf.ID, f.ID); !errors.Is(err, protocol.ErrPermission) {
		t.Errorf("unaccepted access err = %v", err)
	}
	shares, _ := s.ListShares(2)
	if len(shares) != 1 || shares[0].ID != share.ID || shares[0].Accepted {
		t.Fatalf("grantee shares = %+v", shares)
	}

	if _, err := s.AcceptShare(2, share.ID); err != nil {
		t.Fatal(err)
	}
	// Now the grantee can read and write.
	if _, err := s.GetNode(2, udf.ID, f.ID); err != nil {
		t.Errorf("post-accept read: %v", err)
	}
	if _, err := s.MakeFile(2, udf.ID, 0, "from-2.txt"); err != nil {
		t.Errorf("post-accept write: %v", err)
	}
	// The shared volume appears in the grantee's volume list as shared.
	vols, _ := s.ListVolumes(2)
	var foundShared bool
	for _, v := range vols {
		if v.ID == udf.ID && v.Type == protocol.VolumeShared {
			foundShared = true
		}
	}
	if !foundShared {
		t.Errorf("shared volume missing from ListVolumes: %+v", vols)
	}
	// Owner sees the outgoing share.
	ownerShares, _ := s.ListShares(1)
	if len(ownerShares) != 1 || !ownerShares[0].Accepted {
		t.Errorf("owner shares = %+v", ownerShares)
	}
}

func TestSharingReadOnly(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	mustUser(t, s, 2)
	udf, _ := s.CreateUDF(1, "~/RO")
	share, _ := s.CreateShare(1, udf.ID, 2, "ro", true)
	s.AcceptShare(2, share.ID)
	if _, _, err := s.GetFromScratch(2, udf.ID); err != nil {
		t.Errorf("read-only read: %v", err)
	}
	if _, err := s.MakeFile(2, udf.ID, 0, "nope"); !errors.Is(err, protocol.ErrPermission) {
		t.Errorf("read-only write err = %v", err)
	}
}

func TestShareValidation(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	mustUser(t, s, 2)
	udf, _ := s.CreateUDF(1, "~/V")
	if _, err := s.CreateShare(1, udf.ID, 1, "self", false); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("self share err = %v", err)
	}
	if _, err := s.CreateShare(2, udf.ID, 1, "notmine", false); !errors.Is(err, protocol.ErrPermission) {
		t.Errorf("foreign share err = %v", err)
	}
	if _, err := s.CreateShare(1, udf.ID, 99, "ghost", false); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("ghost grantee err = %v", err)
	}
	if _, err := s.CreateShare(1, 9999, 2, "novol", false); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("ghost volume err = %v", err)
	}
	if _, err := s.AcceptShare(2, 999); !errors.Is(err, protocol.ErrNotFound) {
		t.Errorf("ghost accept err = %v", err)
	}
	// Duplicate share to the same grantee.
	if _, err := s.CreateShare(1, udf.ID, 2, "a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateShare(1, udf.ID, 2, "b", false); !errors.Is(err, protocol.ErrExists) {
		t.Errorf("dup share err = %v", err)
	}
}

func TestDeleteVolumeTearsDownShares(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	mustUser(t, s, 2)
	udf, _ := s.CreateUDF(1, "~/S")
	share, _ := s.CreateShare(1, udf.ID, 2, "s", false)
	s.AcceptShare(2, share.ID)
	if _, _, err := s.DeleteVolume(1, udf.ID); err != nil {
		t.Fatal(err)
	}
	shares, _ := s.ListShares(2)
	if len(shares) != 0 {
		t.Errorf("grantee still sees shares: %+v", shares)
	}
	vols, _ := s.ListVolumes(2)
	for _, v := range vols {
		if v.ID == udf.ID {
			t.Error("deleted volume still listed")
		}
	}
}

func TestUploadJobLifecycle(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	f, _ := s.MakeFile(1, root.ID, 0, "big.iso")
	h := protocol.HashBytes([]byte("iso"))
	now := time.Unix(1390000000, 0)

	job, err := s.MakeUploadJob(1, root.ID, f.ID, h, 12<<20, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetUploadJobMultipartID(1, job.ID, "s3-mp-1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.AddPartToUploadJob(1, job.ID, 4<<20, now.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.GetUploadJob(1, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parts != 3 || got.BytesDone != 12<<20 || got.MultipartID != "s3-mp-1" {
		t.Errorf("job = %+v", got)
	}
	// Touch within the horizon: stays alive.
	expired, err := s.TouchUploadJob(1, job.ID, now.Add(time.Hour))
	if err != nil || expired {
		t.Errorf("touch: expired=%v err=%v", expired, err)
	}
	// Commit: delete.
	if err := s.DeleteUploadJob(1, job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetUploadJob(1, job.ID); !errors.Is(err, protocol.ErrNotFound) {
		t.Error("job should be gone after delete")
	}
}

func TestUploadJobGC(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	f, _ := s.MakeFile(1, root.ID, 0, "zombie")
	now := time.Unix(1390000000, 0)
	job, _ := s.MakeUploadJob(1, root.ID, f.ID, protocol.HashBytes([]byte("z")), 1, now)

	// Touch after the one-week horizon reports expiry and collects the job.
	expired, err := s.TouchUploadJob(1, job.ID, now.Add(UploadJobMaxAge+time.Hour))
	if err != nil || !expired {
		t.Errorf("expired=%v err=%v", expired, err)
	}
	if _, err := s.GetUploadJob(1, job.ID); !errors.Is(err, protocol.ErrNotFound) {
		t.Error("expired job should be collected")
	}

	// The periodic sweep also collects stale jobs.
	j2, _ := s.MakeUploadJob(1, root.ID, f.ID, protocol.HashBytes([]byte("z2")), 1, now)
	if swept := s.SweepUploadJobs(now.Add(UploadJobMaxAge + time.Minute)); swept != 1 {
		t.Errorf("swept = %d, want 1", swept)
	}
	if _, err := s.GetUploadJob(1, j2.ID); !errors.Is(err, protocol.ErrNotFound) {
		t.Error("swept job should be gone")
	}
	// Wrong user cannot see another user's job.
	mustUser(t, s, 2)
	j3, _ := s.MakeUploadJob(1, root.ID, f.ID, protocol.HashBytes([]byte("z3")), 1, now)
	if _, err := s.GetUploadJob(2, j3.ID); !errors.Is(err, protocol.ErrNotFound) {
		t.Error("cross-user job access should 404")
	}
}

func TestShardLoadCounters(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	s.MakeFile(1, root.ID, 0, "f")
	s.ListVolumes(1)
	reads, writes := s.ShardLoads()
	var r, w uint64
	for i := range reads {
		r += reads[i]
		w += writes[i]
	}
	if w < 2 { // CreateUser + MakeFile
		t.Errorf("writes = %d", w)
	}
	if r < 1 { // ListVolumes
		t.Errorf("reads = %d", r)
	}
}

// TestConcurrentUsers hammers the store from many goroutines; run with -race
// to exercise the locking discipline, including cross-shard shares.
func TestConcurrentUsers(t *testing.T) {
	s := newTestStore()
	const users = 16
	for u := protocol.UserID(1); u <= users; u++ {
		mustUser(t, s, u)
	}
	var wg sync.WaitGroup
	for u := protocol.UserID(1); u <= users; u++ {
		wg.Add(1)
		go func(u protocol.UserID) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(u)))
			udf, err := s.CreateUDF(u, "~/W")
			if err != nil {
				t.Errorf("user %v: %v", u, err)
				return
			}
			var files []protocol.NodeID
			for i := 0; i < 50; i++ {
				switch r.Intn(5) {
				case 0, 1:
					f, err := s.MakeFile(u, udf.ID, 0, fmt.Sprintf("f%d", i))
					if err != nil {
						t.Errorf("make: %v", err)
						return
					}
					files = append(files, f.ID)
					h := protocol.HashBytes([]byte{byte(r.Intn(8))}) // shared universe → dedup races
					s.MakeContent(u, udf.ID, f.ID, h, uint64(r.Intn(1000)+1))
				case 2:
					if len(files) > 0 {
						s.Unlink(u, udf.ID, files[0])
						files = files[1:]
					}
				case 3:
					s.GetDelta(u, udf.ID, 0)
					s.ListVolumes(u)
				case 4:
					to := protocol.UserID(r.Intn(users) + 1)
					if to != u {
						s.CreateShare(u, udf.ID, to, "x", r.Intn(2) == 0)
					}
				}
			}
		}(u)
	}
	wg.Wait()
	// The dedup accounting must be consistent after the dust settles.
	cs := s.Contents()
	if cs.UniqueBytes > cs.LogicalBytes {
		t.Errorf("unique bytes %d exceed logical bytes %d", cs.UniqueBytes, cs.LogicalBytes)
	}
}

// TestGenerationMonotonic checks the core sync invariant: volume generations
// only move forward, and every logged mutation carries the generation it
// created.
func TestGenerationMonotonic(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	r := rand.New(rand.NewSource(99))
	var lastGen protocol.Generation
	var files []protocol.NodeID
	for i := 0; i < 300; i++ {
		var gen protocol.Generation
		switch r.Intn(3) {
		case 0:
			n, err := s.MakeFile(1, root.ID, 0, fmt.Sprintf("n%d", i))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, n.ID)
			gen = n.Generation
		case 1:
			if len(files) == 0 {
				continue
			}
			n, _, _, err := s.MakeContent(1, root.ID, files[r.Intn(len(files))],
				protocol.HashBytes([]byte{byte(i)}), uint64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			gen = n.Generation
		case 2:
			if len(files) == 0 {
				continue
			}
			idx := r.Intn(len(files))
			_, g, _, err := s.Unlink(1, root.ID, files[idx])
			if err != nil {
				t.Fatal(err)
			}
			files = append(files[:idx], files[idx+1:]...)
			gen = g
		}
		if gen <= lastGen {
			t.Fatalf("generation went backwards: %d after %d", gen, lastGen)
		}
		lastGen = gen
	}
}

// TestDeltaReplayMatchesScratch is the synchronization soundness property: a
// client holding generation g that applies GetDelta(g) must end with exactly
// the node set GetFromScratch reports.
func TestDeltaReplayMatchesScratch(t *testing.T) {
	s := newTestStore()
	root := mustUser(t, s, 1)
	r := rand.New(rand.NewSource(7))

	// Client state: node set at generation 0.
	local := map[protocol.NodeID]protocol.NodeInfo{}
	nodes, gen0, err := s.GetFromScratch(1, root.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		local[n.ID] = n
	}

	// Server-side churn.
	var files []protocol.NodeID
	for i := 0; i < 100; i++ {
		switch r.Intn(3) {
		case 0, 1:
			n, err := s.MakeFile(1, root.ID, 0, fmt.Sprintf("d%d", i))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, n.ID)
		case 2:
			if len(files) > 0 {
				s.Unlink(1, root.ID, files[0])
				files = files[1:]
			}
		}
	}

	// Replay the delta on the client state.
	deltas, _, err := s.GetDelta(1, root.ID, gen0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Deleted {
			delete(local, d.Node.ID)
		} else {
			local[d.Node.ID] = d.Node
		}
	}

	// Compare against the authoritative listing.
	want, _, err2 := s.GetFromScratch(1, root.ID)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(local) != len(want) {
		t.Fatalf("replayed %d nodes, scratch has %d", len(local), len(want))
	}
	for _, n := range want {
		got, ok := local[n.ID]
		if !ok {
			t.Fatalf("node %v missing after replay", n.ID)
		}
		if got != n {
			t.Errorf("node %v diverged: %+v vs %+v", n.ID, got, n)
		}
	}
}

func TestDeltaLogTinyLimits(t *testing.T) {
	// Regression: DeltaLogLimit 1 halves to drop = 0 and used to index
	// log[-1] on the second mutation of any volume. Limits 1 and 2 must
	// trim without panicking and keep GetDelta coherent (either serve the
	// surviving suffix or demand a rescan, never a partial view).
	for _, limit := range []int{1, 2} {
		s := New(Config{Shards: 2, DeltaLogLimit: limit})
		root := mustUser(t, s, 1)
		for i := 0; i < 8; i++ {
			if _, err := s.MakeFile(1, root.ID, 0, fmt.Sprintf("f%d", i)); err != nil {
				t.Fatalf("limit %d: MakeFile %d: %v", limit, i, err)
			}
		}
		if _, _, err := s.GetDelta(1, root.ID, 0); !errors.Is(err, ErrDeltaTruncated) {
			t.Errorf("limit %d: delta from 0 should be truncated, got %v", limit, err)
		}
		vol, err := s.GetVolume(1, root.ID)
		if err != nil {
			t.Fatalf("limit %d: GetVolume: %v", limit, err)
		}
		if deltas, gen, err := s.GetDelta(1, root.ID, vol.Generation); err != nil || gen != vol.Generation || len(deltas) != 0 {
			t.Errorf("limit %d: up-to-date delta = %v entries, gen %d, err %v", limit, len(deltas), gen, err)
		}
	}
}

func TestLookupContentZeroHash(t *testing.T) {
	s := newTestStore()
	mustUser(t, s, 1)
	if _, _, err := s.LookupContent(protocol.Hash{}); !errors.Is(err, protocol.ErrBadRequest) {
		t.Errorf("zero-hash probe: err = %v, want ErrBadRequest", err)
	}
}
