package metadata

import (
	"errors"
	"testing"

	"u1/internal/protocol"
)

// usersInRegions returns one user id owned by each region of s, probing
// ascending ids through the shard hash.
func usersInRegions(t *testing.T, s *Store) []protocol.UserID {
	t.Helper()
	out := make([]protocol.UserID, s.Regions())
	found := 0
	for id := protocol.UserID(1); found < len(out) && id < 10_000; id++ {
		r := s.RegionOfUser(id)
		if out[r] == 0 {
			out[r] = id
			found++
		}
	}
	if found < len(out) {
		t.Fatalf("could not find a user id for every region")
	}
	return out
}

func newReplicatedStore(t *testing.T, delay int, eventual bool) *Store {
	t.Helper()
	return New(Config{Shards: 4, Regions: 2, ReplicationDelay: delay, EventualReads: eventual})
}

// seedTwoRegions provisions one user per region with a UDF and a file each.
func seedTwoRegions(t *testing.T, s *Store) []protocol.UserID {
	t.Helper()
	users := usersInRegions(t, s)
	for _, u := range users {
		if _, err := s.CreateUser(u); err != nil {
			t.Fatalf("CreateUser(%d): %v", u, err)
		}
		vol, err := s.CreateUDF(u, "~/udf")
		if err != nil {
			t.Fatalf("CreateUDF(%d): %v", u, err)
		}
		f, err := s.MakeFile(u, vol.ID, 0, "a.txt")
		if err != nil {
			t.Fatalf("MakeFile(%d): %v", u, err)
		}
		if _, _, _, err := s.MakeContent(u, vol.ID, f.ID, protocol.Hash{1}, 64); err != nil {
			t.Fatalf("MakeContent(%d): %v", u, err)
		}
	}
	return users
}

// requireConverged asserts every cross-region replica fingerprint matches its
// owner shard.
func requireConverged(t *testing.T, s *Store) {
	t.Helper()
	if n := s.ReplicationBacklog(); n != 0 {
		t.Fatalf("backlog not drained: %d records pending", n)
	}
	for region := 0; region < s.Regions(); region++ {
		for i := 0; i < s.NumShards(); i++ {
			if s.RegionOf(i) == region {
				continue
			}
			if got, want := s.ReplicaFingerprint(region, i), s.ShardFingerprint(i); got != want {
				t.Fatalf("region %d replica of shard %d diverged:\n  replica %s\n  owner   %s", region, i, got, want)
			}
		}
	}
}

// TestReplicationConvergesToOwnerFingerprints pins the core replication
// invariant: after draining, every region's replica of every foreign shard is
// bit-identical to the owner.
func TestReplicationConvergesToOwnerFingerprints(t *testing.T) {
	s := newReplicatedStore(t, 1, false)
	seedTwoRegions(t, s)
	s.DrainReplication()
	requireConverged(t, s)
}

// TestReplicationDelayAgesRecords pins the delay semantics: a record
// published at tick E applies at tick E+delay, not earlier.
func TestReplicationDelayAgesRecords(t *testing.T) {
	const delay = 2
	s := newReplicatedStore(t, delay, true)
	users := seedTwoRegions(t, s)
	owner, reader := users[0], users[1]
	vols, err := s.ListVolumes(owner)
	if err != nil {
		t.Fatal(err)
	}
	udf := vols[len(vols)-1].ID
	readerRegion := s.RegionOfUser(reader)
	ownerShard := s.ShardFor(owner)
	replicaHasVolume := func() bool {
		replica := s.repl.state[readerRegion].replicas[ownerShard]
		replica.mu.RLock()
		_, ok := replica.volumes[udf]
		replica.mu.RUnlock()
		return ok
	}

	// Tick 1 ships the records (stamped epoch 1); they ripen at epoch 1+delay.
	s.TickReplication()
	if replicaHasVolume() {
		t.Fatal("replica applied records before the delay elapsed")
	}
	s.TickReplication() // epoch 2: 1+2 > 2, still pending
	if replicaHasVolume() {
		t.Fatal("replica applied records one tick early")
	}
	s.TickReplication() // epoch 3: 1+2 <= 3, applies
	if !replicaHasVolume() {
		t.Fatal("replica missing volume after the delay elapsed")
	}
}

// TestRegionDownGuardsWritesAndServesReads pins the failure mode: mutations
// owned by a down region fail ErrUnavailable, while cross-region reads of its
// shards fail over to the reader region's replicas.
func TestRegionDownGuardsWritesAndServesReads(t *testing.T) {
	s := newReplicatedStore(t, 0, false)
	users := seedTwoRegions(t, s)
	owner, reader := users[0], users[1]
	vols, err := s.ListVolumes(owner)
	if err != nil {
		t.Fatal(err)
	}
	udf := vols[len(vols)-1].ID
	// Grant the cross-region reader access so the failover read is
	// authorized at the replica.
	share, err := s.CreateShare(owner, udf, reader, "proj", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcceptShare(reader, share.ID); err != nil {
		t.Fatal(err)
	}
	s.DrainReplication()

	down := s.RegionOfUser(owner)
	s.RegionDown(down)
	if _, err := s.MakeFile(owner, udf, 0, "b.txt"); !errors.Is(err, protocol.ErrUnavailable) {
		t.Fatalf("write into down region: err=%v, want ErrUnavailable", err)
	}
	if _, err := s.CreateUDF(owner, "~/other"); !errors.Is(err, protocol.ErrUnavailable) {
		t.Fatalf("CreateUDF in down region: err=%v, want ErrUnavailable", err)
	}
	// Read-your-writes or not, a down owner region serves reads from the
	// reader's replica.
	if _, err := s.GetVolume(reader, udf); err != nil {
		t.Fatalf("failover read through replica: %v", err)
	}

	s.RegionRecover(down, s.RegionOfUser(reader))
	if _, err := s.MakeFile(owner, udf, 0, "b.txt"); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestFailoverLosesNoAcknowledgedWrites pins the drill's zero-loss property:
// every write acknowledged by the owner region before it died — including
// records still in publication outboxes, never shipped by a tick — is in the
// surviving region's replicas after FailoverRegion.
func TestFailoverLosesNoAcknowledgedWrites(t *testing.T) {
	s := newReplicatedStore(t, 3, false)
	users := seedTwoRegions(t, s)
	owner := users[0]
	downRegion := s.RegionOfUser(owner)
	liveRegion := s.RegionOfUser(users[1])

	// Acked but never ticked: these sit in the outboxes.
	vols, err := s.ListVolumes(owner)
	if err != nil {
		t.Fatal(err)
	}
	udf := vols[len(vols)-1].ID
	if _, err := s.MakeFile(owner, udf, 0, "late.txt"); err != nil {
		t.Fatal(err)
	}

	want := make(map[int]string)
	for i := 0; i < s.NumShards(); i++ {
		if s.RegionOf(i) == downRegion {
			want[i] = s.ShardFingerprint(i)
		}
	}
	s.RegionDown(downRegion)
	s.FailoverRegion(liveRegion)
	for i, fp := range want {
		if got := s.ReplicaFingerprint(liveRegion, i); got != fp {
			t.Fatalf("shard %d lost acked writes across failover:\n  replica %s\n  owner   %s", i, got, fp)
		}
	}

	// Failover re-applies are guarded, so a second replay must be a no-op.
	s.FailoverRegion(liveRegion)
	for i, fp := range want {
		if got := s.ReplicaFingerprint(liveRegion, i); got != fp {
			t.Fatalf("shard %d diverged on idempotent re-failover", i)
		}
	}
}

// TestRegionRecoverRestoresOwnersFromPeer pins the recovery half: after
// RegionRecover the dead region's owner shards are rebuilt bit-for-bit from
// the peer's replicas and serve writes again.
func TestRegionRecoverRestoresOwnersFromPeer(t *testing.T) {
	s := newReplicatedStore(t, 1, false)
	users := seedTwoRegions(t, s)
	s.DrainReplication()
	owner := users[0]
	downRegion := s.RegionOfUser(owner)
	liveRegion := s.RegionOfUser(users[1])

	want := make(map[int]string)
	for i := 0; i < s.NumShards(); i++ {
		if s.RegionOf(i) == downRegion {
			want[i] = s.ShardFingerprint(i)
		}
	}
	s.RegionDown(downRegion)
	s.RegionRecover(downRegion, liveRegion)
	for i, fp := range want {
		if got := s.ShardFingerprint(i); got != fp {
			t.Fatalf("shard %d state changed across down/recover:\n  got  %s\n  want %s", i, got, fp)
		}
	}
	if _, err := s.CreateUDF(owner, "~/fresh"); err != nil {
		t.Fatalf("write after region recovery: %v", err)
	}
}

// TestLastWriterWinsSkipsStaleGenerations pins the conflict rule directly: a
// replayed record whose generation does not advance the replica volume is
// skipped, and a generation tie goes to the higher origin region.
func TestLastWriterWinsSkipsStaleGenerations(t *testing.T) {
	s := newReplicatedStore(t, 0, false)
	users := seedTwoRegions(t, s)
	s.DrainReplication()
	owner, reader := users[0], users[1]
	vols, err := s.ListVolumes(owner)
	if err != nil {
		t.Fatal(err)
	}
	udf := vols[len(vols)-1].ID
	readerRegion := s.RegionOfUser(reader)
	ownerShard := s.ShardFor(owner)

	st := s.repl.state[readerRegion]
	replica := st.replicas[ownerShard]
	replica.mu.RLock()
	curGen := replica.volumes[udf].info.Generation
	replica.mu.RUnlock()
	before := s.ReplicaFingerprint(readerRegion, ownerShard)

	// A stale record — generation below the replica's — must not apply.
	stale := replRecord{shard: ownerShard, epoch: s.repl.epoch, rec: journalRecord{
		Kind: recMakeNode,
		Node: protocol.NodeInfo{ID: 9999, Volume: udf, Kind: protocol.KindFile, Name: "stale", Generation: curGen - 1},
	}}
	skippedBefore := s.repl.m.lwwSkipped.Value()
	s.repl.mu.Lock()
	s.repl.applyLocked(st, stale)
	s.repl.mu.Unlock()
	if got := s.ReplicaFingerprint(readerRegion, ownerShard); got != before {
		t.Fatalf("stale-generation record mutated the replica")
	}
	if s.repl.m.lwwSkipped.Value() != skippedBefore+1 {
		t.Fatalf("stale record not counted as lww_skipped")
	}

	// A tie on generation loses to an equal-or-higher recorded origin.
	tie := stale
	tie.rec.Node.Generation = curGen
	s.repl.mu.Lock()
	st.lastOrigin[udf] = s.Regions() - 1 // highest region already won this gen
	s.repl.applyLocked(st, tie)
	s.repl.mu.Unlock()
	if got := s.ReplicaFingerprint(readerRegion, ownerShard); got != before {
		t.Fatalf("generation-tie record from a losing origin mutated the replica")
	}
}

// TestCrossRegionShareRevocationFlushesGranteeRegion is the regression test
// for the satellite bugfix: when a shared volume dies at the owner, the
// grantee region's replica still holds the grant until the delete record ages
// through the replication backlog — and without the eager tombstone flush the
// replica's access check kept authorizing the revoked share for the whole
// replication delay (the PR 4 DropCachedToken lesson, replayed against the
// replicated grant index).
func TestCrossRegionShareRevocationFlushesGranteeRegion(t *testing.T) {
	s := newReplicatedStore(t, 4, true)
	users := seedTwoRegions(t, s)
	owner, grantee := users[0], users[1]
	vols, err := s.ListVolumes(owner)
	if err != nil {
		t.Fatal(err)
	}
	udf := vols[len(vols)-1].ID
	share, err := s.CreateShare(owner, udf, grantee, "proj", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcceptShare(grantee, share.ID); err != nil {
		t.Fatal(err)
	}
	s.DrainReplication()

	granteeRegion := s.RegionOfUser(grantee)
	ownerShard := s.ShardFor(owner)
	st := s.repl.state[granteeRegion]
	replica := st.replicas[ownerShard]
	replica.mu.RLock()
	err = checkAccessLocked(replica, replica.volumes[udf], grantee, false)
	replica.mu.RUnlock()
	if err != nil {
		t.Fatalf("replicated grant should authorize before revocation: %v", err)
	}

	if _, _, err := s.DeleteVolume(owner, udf); err != nil {
		t.Fatal(err)
	}

	// The delete is now in the grantee region's backlog for `delay` ticks,
	// and the replica still holds the volume row and the grant. The access
	// check must already refuse the revoked share.
	replica.mu.RLock()
	vr := replica.volumes[udf]
	replica.mu.RUnlock()
	if vr == nil {
		t.Fatalf("test invalid: delete already applied at the replica, no revocation window to pin")
	}
	replica.mu.RLock()
	err = checkAccessLocked(replica, vr, grantee, false)
	replica.mu.RUnlock()
	if !errors.Is(err, protocol.ErrPermission) {
		t.Fatalf("revoked cross-region share still authorizes through the grantee region's replica: err=%v", err)
	}

	// Once the delete record ages in, the tombstone is cleaned up with it.
	s.DrainReplication()
	replica.mu.RLock()
	_, stillThere := replica.volumes[udf]
	replica.mu.RUnlock()
	if stillThere {
		t.Fatalf("delete record never applied at the replica")
	}
	st.revMu.Lock()
	_, tomb := st.revoked[share.ID]
	st.revMu.Unlock()
	if tomb {
		t.Fatalf("revocation tombstone leaked after the delete record applied")
	}
}

// TestRegionsClampAndDisable pins the config edges: Regions ≤ 1 disables
// replication entirely, and Regions > Shards clamps.
func TestRegionsClampAndDisable(t *testing.T) {
	if s := New(Config{Shards: 4, Regions: 1}); s.ReplicationEnabled() {
		t.Fatal("Regions=1 must not enable replication")
	}
	s := New(Config{Shards: 2, Regions: 8})
	if got := s.Regions(); got != 2 {
		t.Fatalf("Regions clamped to %d, want 2 (the shard count)", got)
	}
}
