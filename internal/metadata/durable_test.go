package metadata

import (
	"os"
	"path/filepath"
	"testing"

	"u1/internal/protocol"
	"u1/internal/wal"
)

// openDurable creates a durable store rooted in a fresh temp dir.
func openDurable(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Durability = dir
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open durable store: %v", err)
	}
	return s
}

// populate drives a representative mutation mix through every journaled op
// class and returns the volume of the first user for follow-up assertions.
func populate(t *testing.T, s *Store) protocol.VolumeID {
	t.Helper()
	users := []protocol.UserID{1, 2, 3, 4, 5, 6, 7, 8}
	for _, u := range users {
		if _, err := s.CreateUser(u); err != nil {
			t.Fatalf("CreateUser(%v): %v", u, err)
		}
	}
	rootVol := func(u protocol.UserID) protocol.VolumeID {
		ud, err := s.GetUserData(u)
		if err != nil {
			t.Fatalf("GetUserData(%v): %v", u, err)
		}
		return ud.RootVolume
	}
	vol := rootVol(1)
	dir, err := s.MakeDir(1, vol, 0, "docs")
	if err != nil {
		t.Fatalf("MakeDir: %v", err)
	}
	f1, err := s.MakeFile(1, vol, dir.ID, "a.txt")
	if err != nil {
		t.Fatalf("MakeFile: %v", err)
	}
	f2, err := s.MakeFile(1, vol, dir.ID, "b.txt")
	if err != nil {
		t.Fatalf("MakeFile: %v", err)
	}
	h := protocol.HashBytes([]byte("shared-content"))
	if _, _, _, err := s.MakeContent(1, vol, f1.ID, h, 1024); err != nil {
		t.Fatalf("MakeContent: %v", err)
	}
	// Second reference to the same hash: a dedup hit the recovery must keep.
	if _, _, _, err := s.MakeContent(1, vol, f2.ID, h, 1024); err != nil {
		t.Fatalf("MakeContent dedup: %v", err)
	}
	if _, err := s.Move(1, vol, f2.ID, 0, "b-moved.txt"); err != nil {
		t.Fatalf("Move: %v", err)
	}
	victim, err := s.MakeFile(1, vol, dir.ID, "doomed.txt")
	if err != nil {
		t.Fatalf("MakeFile victim: %v", err)
	}
	if _, _, _, err := s.Unlink(1, vol, victim.ID); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	udf, err := s.CreateUDF(2, "~/Music")
	if err != nil {
		t.Fatalf("CreateUDF: %v", err)
	}
	if _, err := s.MakeFile(2, udf.ID, 0, "song.mp3"); err != nil {
		t.Fatalf("MakeFile in UDF: %v", err)
	}
	share, err := s.CreateShare(1, vol, 2, "docs-for-2", false)
	if err != nil {
		t.Fatalf("CreateShare: %v", err)
	}
	if _, err := s.AcceptShare(2, share.ID); err != nil {
		t.Fatalf("AcceptShare: %v", err)
	}
	// A shared-then-deleted UDF exercises delete_volume + drop_share replay.
	udf3, err := s.CreateUDF(3, "~/Temp")
	if err != nil {
		t.Fatalf("CreateUDF: %v", err)
	}
	if _, err := s.CreateShare(3, udf3.ID, 4, "temp-for-4", true); err != nil {
		t.Fatalf("CreateShare: %v", err)
	}
	if _, _, err := s.DeleteVolume(3, udf3.ID); err != nil {
		t.Fatalf("DeleteVolume: %v", err)
	}
	return vol
}

// fingerprints digests every shard.
func fingerprints(s *Store) []string {
	out := make([]string, s.NumShards())
	for i := range out {
		out[i] = s.ShardFingerprint(i)
	}
	return out
}

// TestDurableReopenRoundTrip is the save/load contract: close a durable
// store, reopen the same directory, and every shard — plus all derived state
// — must come back bit-identical.
func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, Config{FsyncPolicy: wal.FsyncPerOp})
	vol := populate(t, s)
	before := fingerprints(s)
	contentsBefore := *s.Contents()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openDurable(t, dir, Config{FsyncPolicy: wal.FsyncPerOp})
	defer r.Close() //nolint:errcheck
	after := fingerprints(r)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("shard %d diverged across reopen:\n  before %s\n  after  %s", i, before[i], after[i])
		}
	}
	if got := *r.Contents(); got != contentsBefore {
		t.Errorf("content registry diverged: %+v != %+v", got, contentsBefore)
	}
	// Allocators must move past recovered IDs: a fresh node ID must be new.
	n, err := r.MakeFile(1, vol, 0, "post-recovery.txt")
	if err != nil {
		t.Fatalf("MakeFile after reopen: %v", err)
	}
	if _, err := r.GetNode(1, vol, n.ID); err != nil {
		t.Fatalf("GetNode on fresh post-recovery node: %v", err)
	}
	if prev, err := r.GetNode(1, vol, n.ID-1); err == nil && prev.Name == n.Name {
		t.Fatalf("allocator reissued a recovered node ID: %+v", prev)
	}
}

// TestCrashShardRecovers is the in-process half of the crash drill: drop a
// shard's state mid-life and recover it from snapshot+journal.
func TestCrashShardRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, Config{FsyncPolicy: wal.FsyncPerOp})
	defer s.Close() //nolint:errcheck
	populate(t, s)
	for i := 0; i < s.NumShards(); i++ {
		before := s.ShardFingerprint(i)
		s.CrashShard(i)
		if after := s.ShardFingerprint(i); after == before && before != s.ShardFingerprint((i+1)%s.NumShards()) {
			t.Fatalf("CrashShard(%d) left shard state in place", i)
		}
		if err := s.RecoverShard(i); err != nil {
			t.Fatalf("RecoverShard(%d): %v", i, err)
		}
		if after := s.ShardFingerprint(i); after != before {
			t.Errorf("shard %d diverged across crash-recover:\n  before %s\n  after  %s", i, before, after)
		}
	}
}

// TestSnapshotCadenceAndTruncation verifies a small SnapshotEvery produces
// snapshots, releases journal segments, and still recovers exactly.
func TestSnapshotCadenceAndTruncation(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, Config{Shards: 1, SnapshotEvery: 4, FsyncPolicy: wal.FsyncGroupCommit})
	if _, err := s.CreateUser(9); err != nil {
		t.Fatal(err)
	}
	ud, _ := s.GetUserData(9)
	for i := 0; i < 40; i++ {
		if _, err := s.MakeFile(9, ud.RootVolume, 0, "f"+string(rune('a'+i%26))+string(rune('0'+i/26))); err != nil {
			t.Fatalf("MakeFile %d: %v", i, err)
		}
	}
	snapPath := filepath.Join(dir, "shard-0", snapshotFile)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("no snapshot written at cadence 4: %v", err)
	}
	before := s.ShardFingerprint(0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openDurable(t, dir, Config{Shards: 1, SnapshotEvery: 4})
	defer r.Close() //nolint:errcheck
	if after := r.ShardFingerprint(0); after != before {
		t.Errorf("snapshotting store diverged across reopen:\n  before %s\n  after  %s", before, after)
	}
}

// TestRecoverTornJournalTail pins the machine-crash case under async fsync: a
// torn final record is dropped, every earlier record survives, and recovery
// succeeds rather than erroring.
func TestRecoverTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, Config{Shards: 1, FsyncPolicy: wal.FsyncAsync})
	if _, err := s.CreateUser(1); err != nil {
		t.Fatal(err)
	}
	ud, _ := s.GetUserData(1)
	for i := 0; i < 10; i++ {
		if _, err := s.MakeFile(1, ud.RootVolume, 0, "keep"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	s.CrashShard(0)
	if err := wal.CorruptTail(s.ShardWALDir(0)); err != nil {
		t.Fatalf("CorruptTail: %v", err)
	}
	if err := s.RecoverShard(0); err != nil {
		t.Fatalf("RecoverShard with torn tail: %v", err)
	}
	// All but the torn final mutation must be present.
	nodes, _, err := s.GetFromScratch(1, ud.RootVolume)
	if err != nil {
		t.Fatalf("GetFromScratch: %v", err)
	}
	// 1 root + 10 files written, minus exactly the torn final record.
	if len(nodes) != 10 {
		t.Errorf("recovered %d nodes after torn tail, want 10 (root + 9 intact files)", len(nodes))
	}
	s.Close() //nolint:errcheck
}

// TestInMemoryStoreUnchanged pins that the zero-config store has no durable
// tier: Close is a no-op, recovery APIs refuse, and ops never journal.
func TestInMemoryStoreUnchanged(t *testing.T) {
	s := New(Config{Shards: 2})
	if s.DurabilityEnabled() {
		t.Fatal("in-memory store reports durability")
	}
	if _, err := s.CreateUser(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
	if err := s.RecoverShard(0); err == nil {
		t.Fatal("RecoverShard succeeded without durability")
	}
	if dir := s.ShardWALDir(0); dir != "" {
		t.Fatalf("in-memory store has a WAL dir: %q", dir)
	}
}
