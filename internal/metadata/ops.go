package metadata

import (
	"fmt"
	"sort"
	"time"

	"u1/internal/protocol"
)

// UserData summarizes a user's account state (dal.get_user_data).
type UserData struct {
	ID         protocol.UserID
	RootVolume protocol.VolumeID
	Volumes    int
	SharesIn   int
	SharesOut  int
}

// CreateUser provisions an account: the user row, the root volume (id
// reported to clients as their volume 0 equivalent) and its root directory.
// Creating an existing user is idempotent and returns the existing root
// volume, so client re-installs do not error.
func (s *Store) CreateUser(user protocol.UserID) (protocol.VolumeInfo, error) {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	if u, ok := sh.users[user]; ok {
		// Idempotent ensure for an existing user is a pure read; it must
		// keep working while the user's home region is down so logins
		// (Authenticate ensures the user) survive the outage.
		return sh.volumes[u.root].info, nil
	}
	if err := s.writeGuard(user); err != nil {
		return protocol.VolumeInfo{}, err
	}
	vol := s.newVolumeLocked(sh, user, protocol.VolumeRoot, "~/Ubuntu One")
	sh.users[user] = &userRow{
		id:      user,
		root:    vol.info.ID,
		volumes: []protocol.VolumeID{vol.info.ID},
	}
	s.journal(sh, &journalRecord{Kind: recCreateUser, User: user, Volume: vol.info, Root: vol.root})
	return vol.info, nil
}

// newVolumeLocked allocates a volume plus its root directory inside sh, which
// must be write-locked.
func (s *Store) newVolumeLocked(sh *shard, owner protocol.UserID, typ protocol.VolumeType, path string) *volumeRow {
	volID := s.allocVolume()
	rootID := s.allocNode()
	root := &nodeRow{vol: volID, kind: protocol.KindDir, name: "/"}
	vol := &volumeRow{
		info: protocol.VolumeInfo{
			ID:    volID,
			Type:  typ,
			Path:  path,
			Owner: owner,
		},
		root: rootID,
	}
	sh.nodes[rootID] = root
	sh.volumes[volID] = vol
	s.volumeDir.store(volID, owner)
	return vol
}

// GetUserData returns the account summary (dal.get_user_data).
func (s *Store) GetUserData(user protocol.UserID) (UserData, error) {
	sh := s.shardOf(user)
	defer sh.runlock(sh.rlock())
	u, ok := sh.users[user]
	if !ok {
		return UserData{}, protocol.ErrNotFound
	}
	return UserData{
		ID:         user,
		RootVolume: u.root,
		Volumes:    len(u.volumes),
		SharesIn:   len(u.sharesIn),
		SharesOut:  len(u.sharesOut),
	}, nil
}

// ownerOf resolves the owner of a volume through the volume directory.
func (s *Store) ownerOf(vol protocol.VolumeID) (protocol.UserID, error) {
	owner, ok := s.volumeDir.load(vol)
	if !ok {
		return 0, protocol.ErrNotFound
	}
	return owner, nil
}

// checkAccessLocked verifies that user may operate on vol (owned or granted
// through an accepted share; write access requires a non-read-only grant).
// The owner shard must already be locked.
func checkAccessLocked(sh *shard, vr *volumeRow, user protocol.UserID, write bool) error {
	if vr.info.Owner == user {
		return nil
	}
	shareID, ok := vr.grants[user]
	if !ok {
		return protocol.ErrPermission
	}
	// On replica shards, a grant revoked at the owner may still be in this
	// region's replication backlog; the tombstone set revokes it immediately.
	if sh.revoked != nil && sh.revoked(shareID) {
		return protocol.ErrPermission
	}
	share, ok := sh.shares[shareID]
	if !ok || !share.Accepted {
		return protocol.ErrPermission
	}
	if write && share.ReadOnly {
		return protocol.ErrPermission
	}
	return nil
}

// ListVolumes lists all volumes of a user: root, UDFs and accepted shared
// volumes (dal.list_volumes; performed at session start, Table 2).
func (s *Store) ListVolumes(user protocol.UserID) ([]protocol.VolumeInfo, error) {
	sh := s.shardOf(user)
	lockedAt := sh.rlock()
	u, ok := sh.users[user]
	if !ok {
		sh.runlock(lockedAt)
		return nil, protocol.ErrNotFound
	}
	out := make([]protocol.VolumeInfo, 0, len(u.volumes)+len(u.sharesIn))
	for _, volID := range u.volumes {
		out = append(out, sh.volumes[volID].info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	// Collect accepted incoming shares; their volumes may live in other
	// shards, so resolve them after releasing this shard's lock.
	var sharedVols []protocol.VolumeID
	for shareID := range u.sharesIn {
		if share, ok := sh.shares[shareID]; ok && share.Accepted {
			sharedVols = append(sharedVols, share.Volume)
		}
	}
	sh.runlock(lockedAt)
	sort.Slice(sharedVols, func(i, j int) bool { return sharedVols[i] < sharedVols[j] })

	for _, volID := range sharedVols {
		owner, err := s.ownerOf(volID)
		if err != nil {
			continue // volume deleted concurrently
		}
		osh := s.readShardFor(user, owner)
		oLockedAt := osh.rlock()
		if vr, ok := osh.volumes[volID]; ok {
			info := vr.info
			info.Type = protocol.VolumeShared
			out = append(out, info)
		}
		osh.runlock(oLockedAt)
	}
	return out, nil
}

// ListShares lists sharing grants involving the user, both received and
// offered (dal.list_shares, Table 2).
func (s *Store) ListShares(user protocol.UserID) ([]protocol.ShareInfo, error) {
	sh := s.shardOf(user)
	defer sh.runlock(sh.rlock())
	u, ok := sh.users[user]
	if !ok {
		return nil, protocol.ErrNotFound
	}
	out := make([]protocol.ShareInfo, 0, len(u.sharesIn)+len(u.sharesOut))
	for id := range u.sharesIn {
		if share, ok := sh.shares[id]; ok {
			out = append(out, *share)
		}
	}
	for id := range u.sharesOut {
		if share, ok := sh.shares[id]; ok {
			out = append(out, *share)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// CreateUDF creates a user-defined volume (dal.create_udf).
func (s *Store) CreateUDF(user protocol.UserID, path string) (protocol.VolumeInfo, error) {
	if path == "" {
		return protocol.VolumeInfo{}, fmt.Errorf("%w: empty UDF path", protocol.ErrBadRequest)
	}
	if err := s.writeGuard(user); err != nil {
		return protocol.VolumeInfo{}, err
	}
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	u, ok := sh.users[user]
	if !ok {
		return protocol.VolumeInfo{}, protocol.ErrNotFound
	}
	for _, volID := range u.volumes {
		if sh.volumes[volID].info.Path == path {
			return protocol.VolumeInfo{}, fmt.Errorf("%w: UDF %q", protocol.ErrExists, path)
		}
	}
	vol := s.newVolumeLocked(sh, user, protocol.VolumeUDF, path)
	u.addVolume(vol.info.ID)
	s.journal(sh, &journalRecord{Kind: recCreateUDF, User: user, Volume: vol.info, Root: vol.root})
	return vol.info, nil
}

// GetVolume returns a volume's metadata (dal.get_volume_id).
func (s *Store) GetVolume(user protocol.UserID, vol protocol.VolumeID) (protocol.VolumeInfo, error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.VolumeInfo{}, err
	}
	sh := s.readShardFor(user, owner)
	defer sh.runlock(sh.rlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return protocol.VolumeInfo{}, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, false); err != nil {
		return protocol.VolumeInfo{}, err
	}
	return vr.info, nil
}

// DeleteVolume removes a volume and every node it contains — the cascade RPC
// the paper singles out as the slowest class (dal.delete_volume, Fig. 13).
// It returns the nodes removed so the caller can release blobs and notify
// clients, and the hashes whose last reference went away.
func (s *Store) DeleteVolume(user protocol.UserID, vol protocol.VolumeID) (removed []protocol.NodeInfo, freed []protocol.Hash, err error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return nil, nil, err
	}
	if owner != user {
		return nil, nil, protocol.ErrPermission // only owners delete volumes
	}
	if err := s.writeGuard(owner); err != nil {
		return nil, nil, err
	}
	sh := s.shardOf(owner)
	lockedAt := sh.wlock()
	vr, ok := sh.volumes[vol]
	if !ok {
		sh.wunlock(lockedAt)
		return nil, nil, protocol.ErrNotFound
	}
	if vr.info.Type == protocol.VolumeRoot {
		sh.wunlock(lockedAt)
		return nil, nil, fmt.Errorf("%w: cannot delete the root volume", protocol.ErrBadRequest)
	}
	// Collect and remove all nodes.
	for _, nodeID := range volumeNodeIDs(sh, vr) {
		nr := sh.nodes[nodeID]
		removed = append(removed, nr.info(nodeID))
		delete(sh.nodes, nodeID)
	}
	delete(sh.volumes, vol)
	if u := sh.users[user]; u != nil {
		u.removeVolume(vol)
	}
	// Tear down grants; the share rows of grantees live in their shards and
	// are cleaned up after this lock is released.
	grantees := make(map[protocol.UserID]protocol.ShareID, len(vr.grants))
	for grantee, shareID := range vr.grants {
		grantees[grantee] = shareID
		delete(sh.shares, shareID)
		if u := sh.users[user]; u != nil {
			delete(u.sharesOut, shareID)
		}
		if gu, ok := sh.users[grantee]; ok {
			delete(gu.sharesIn, shareID) // grantee happens to share this shard
		}
	}
	s.journal(sh, &journalRecord{Kind: recDeleteVolume, User: user, VolID: vol})
	sh.wunlock(lockedAt)
	s.volumeDir.delete(vol)

	// Eagerly tombstone every revoked grant in the peer regions: a grantee
	// reading through its region's replica must lose access now, not when the
	// delete record ages through the replication backlog (and a create_share
	// still in that backlog must not resurrect the grant in between).
	if len(grantees) > 0 && s.repl != nil {
		shareIDs := make([]protocol.ShareID, 0, len(grantees))
		for _, shareID := range grantees {
			shareIDs = append(shareIDs, shareID)
		}
		sort.Slice(shareIDs, func(i, j int) bool { return shareIDs[i] < shareIDs[j] })
		s.revokeCrossRegion(s.RegionOf(s.ShardFor(owner)), shareIDs)
	}

	// Grantee cleanup walks in ascending user order: every iteration journals
	// a drop_share record in the grantee's shard, and the replication stream
	// publishes journal records in apply order, so the iteration order here is
	// cross-region-observable state.
	granteeIDs := make([]protocol.UserID, 0, len(grantees))
	for grantee := range grantees {
		granteeIDs = append(granteeIDs, grantee)
	}
	sort.Slice(granteeIDs, func(i, j int) bool { return granteeIDs[i] < granteeIDs[j] })
	for _, grantee := range granteeIDs {
		shareID := grantees[grantee]
		gsh := s.shardOf(grantee)
		if gsh == sh {
			continue // already cleaned while holding sh
		}
		gLockedAt := gsh.wlock()
		delete(gsh.shares, shareID)
		if gu := gsh.users[grantee]; gu != nil {
			delete(gu.sharesIn, shareID)
		}
		s.journal(gsh, &journalRecord{Kind: recDropShare, Share: protocol.ShareInfo{ID: shareID, SharedTo: grantee}})
		gsh.wunlock(gLockedAt)
	}

	// Release content references outside any shard lock.
	for _, n := range removed {
		if n.Kind == protocol.KindFile && !n.Hash.IsZero() {
			if s.contents.release(n.Hash) {
				freed = append(freed, n.Hash)
			}
		}
	}
	return removed, freed, nil
}

// makeNode implements MakeFile and MakeDir (dal.make_file / dal.make_dir).
// Creating a node that already exists under the same parent and kind is
// idempotent and returns the existing node: clients re-send Make before
// uploads (Table 2: "normally precedes a file upload").
func (s *Store) makeNode(user protocol.UserID, vol protocol.VolumeID, parent protocol.NodeID, name string, kind protocol.NodeKind) (protocol.NodeInfo, error) {
	if name == "" {
		return protocol.NodeInfo{}, fmt.Errorf("%w: empty node name", protocol.ErrBadRequest)
	}
	owner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.NodeInfo{}, err
	}
	if err := s.writeGuard(owner); err != nil {
		return protocol.NodeInfo{}, err
	}
	sh := s.shardOf(owner)
	defer sh.wunlock(sh.wlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, true); err != nil {
		return protocol.NodeInfo{}, err
	}
	if parent == 0 {
		parent = vr.root
	}
	pr, ok := sh.nodes[parent]
	if !ok || pr.vol != vol {
		return protocol.NodeInfo{}, fmt.Errorf("%w: parent node", protocol.ErrNotFound)
	}
	if pr.kind != protocol.KindDir {
		return protocol.NodeInfo{}, fmt.Errorf("%w: parent is a file", protocol.ErrBadRequest)
	}
	if existingID, ok := pr.children[name]; ok {
		existing := sh.nodes[existingID]
		if existing.kind == kind {
			return existing.info(existingID), nil
		}
		return protocol.NodeInfo{}, fmt.Errorf("%w: %q exists with different kind", protocol.ErrExists, name)
	}
	id := s.allocNode()
	nr := &nodeRow{vol: vol, parent: parent, kind: kind, name: name}
	nr.gen = vr.bumpGen()
	sh.nodes[id] = nr
	pr.addChild(name, id)
	info := nr.info(id)
	s.appendLog(sh, vr, info, false)
	s.journal(sh, &journalRecord{Kind: recMakeNode, Node: info})
	return info, nil
}

// MakeFile creates a file node ("touch"); see makeNode.
func (s *Store) MakeFile(user protocol.UserID, vol protocol.VolumeID, parent protocol.NodeID, name string) (protocol.NodeInfo, error) {
	return s.makeNode(user, vol, parent, name, protocol.KindFile)
}

// MakeDir creates a directory node; see makeNode.
func (s *Store) MakeDir(user protocol.UserID, vol protocol.VolumeID, parent protocol.NodeID, name string) (protocol.NodeInfo, error) {
	return s.makeNode(user, vol, parent, name, protocol.KindDir)
}

// MakeContent attaches uploaded content to a file node (dal.make_content,
// "the equivalent of an inode"). It maintains dedup reference counts: the old
// content of an updated file is released, the new one referenced. It returns
// the node's new state, the hash freed if the old content lost its last
// reference, and whether this write was an update of existing content — the
// event class behind 18.5% of U1's upload traffic (§5.1).
func (s *Store) MakeContent(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, h protocol.Hash, size uint64) (info protocol.NodeInfo, freed *protocol.Hash, wasUpdate bool, err error) {
	if h.IsZero() {
		return protocol.NodeInfo{}, nil, false, fmt.Errorf("%w: zero content hash", protocol.ErrBadRequest)
	}
	owner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.NodeInfo{}, nil, false, err
	}
	if err := s.writeGuard(owner); err != nil {
		return protocol.NodeInfo{}, nil, false, err
	}
	sh := s.shardOf(owner)
	lockedAt := sh.wlock()
	vr, ok := sh.volumes[vol]
	if !ok {
		sh.wunlock(lockedAt)
		return protocol.NodeInfo{}, nil, false, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, true); err != nil {
		sh.wunlock(lockedAt)
		return protocol.NodeInfo{}, nil, false, err
	}
	nr, ok := sh.nodes[node]
	if !ok || nr.vol != vol {
		sh.wunlock(lockedAt)
		return protocol.NodeInfo{}, nil, false, protocol.ErrNotFound
	}
	if nr.kind != protocol.KindFile {
		sh.wunlock(lockedAt)
		return protocol.NodeInfo{}, nil, false, fmt.Errorf("%w: content on a directory", protocol.ErrBadRequest)
	}
	oldHash := nr.hash
	wasUpdate = !oldHash.IsZero() && (oldHash != h || nr.size != size)
	nr.hash = h
	nr.size = size
	nr.gen = vr.bumpGen()
	info = nr.info(node)
	s.appendLog(sh, vr, info, false)
	s.journal(sh, &journalRecord{Kind: recMakeContent, Node: info})
	sh.wunlock(lockedAt)

	s.contents.addRef(h, size)
	if !oldHash.IsZero() && oldHash != h {
		if s.contents.release(oldHash) {
			freed = &oldHash
		}
	}
	return info, freed, wasUpdate, nil
}

// VolumeWatchers returns the users that must be notified when vol changes:
// the owner plus every grantee with an accepted share. API servers fan
// change events out to the watchers' sessions (§3.4.2).
func (s *Store) VolumeWatchers(vol protocol.VolumeID) ([]protocol.UserID, error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return nil, err
	}
	sh := s.shardOf(owner)
	defer sh.runlock(sh.rlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return nil, protocol.ErrNotFound
	}
	out := []protocol.UserID{owner}
	for grantee, shareID := range vr.grants {
		if share, ok := sh.shares[shareID]; ok && share.Accepted {
			out = append(out, grantee)
		}
	}
	sort.Slice(out[1:], func(i, j int) bool { return out[i+1] < out[j+1] })
	return out, nil
}

// GetNode returns a node's metadata (dal.get_node).
func (s *Store) GetNode(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID) (protocol.NodeInfo, error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.NodeInfo{}, err
	}
	sh := s.readShardFor(user, owner)
	defer sh.runlock(sh.rlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, false); err != nil {
		return protocol.NodeInfo{}, err
	}
	nr, ok := sh.nodes[node]
	if !ok || nr.vol != vol {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	return nr.info(node), nil
}

// GetRoot returns the root directory of the user's root volume
// (dal.get_root).
func (s *Store) GetRoot(user protocol.UserID) (protocol.NodeInfo, error) {
	sh := s.shardOf(user)
	defer sh.runlock(sh.rlock())
	u, ok := sh.users[user]
	if !ok {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	vr := sh.volumes[u.root]
	return sh.nodes[vr.root].info(vr.root), nil
}

// Unlink deletes a node; deleting a directory cascades to its whole subtree
// (dal.unlink_node; §5.2 observes that directory deletion explains matching
// file/dir lifetime distributions). It returns every removed node, the new
// volume generation, and the hashes whose last reference was released.
func (s *Store) Unlink(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID) (removed []protocol.NodeInfo, gen protocol.Generation, freed []protocol.Hash, err error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return nil, 0, nil, err
	}
	if err := s.writeGuard(owner); err != nil {
		return nil, 0, nil, err
	}
	sh := s.shardOf(owner)
	lockedAt := sh.wlock()
	vr, ok := sh.volumes[vol]
	if !ok {
		sh.wunlock(lockedAt)
		return nil, 0, nil, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, true); err != nil {
		sh.wunlock(lockedAt)
		return nil, 0, nil, err
	}
	nr, ok := sh.nodes[node]
	if !ok || nr.vol != vol {
		sh.wunlock(lockedAt)
		return nil, 0, nil, protocol.ErrNotFound
	}
	if node == vr.root {
		sh.wunlock(lockedAt)
		return nil, 0, nil, fmt.Errorf("%w: cannot unlink the volume root", protocol.ErrBadRequest)
	}
	// Depth-first collection of the subtree, children in ascending-ID order:
	// the removed list lands in the delta log and the unlink journal record,
	// so the traversal order is replay- and replication-observable.
	stack := []protocol.NodeID{node}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur := sh.nodes[id]
		kids := make([]protocol.NodeID, 0, len(cur.children))
		for _, child := range cur.children {
			kids = append(kids, child)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		stack = append(stack, kids...)
		removed = append(removed, cur.info(id))
		delete(sh.nodes, id)
	}
	// Detach from the parent's name index.
	if pr, ok := sh.nodes[nr.parent]; ok && pr.children != nil {
		delete(pr.children, nr.name)
	}
	gen = vr.bumpGen()
	for i := range removed {
		removed[i].Generation = gen
		s.appendLog(sh, vr, removed[i], true)
	}
	s.journal(sh, &journalRecord{Kind: recUnlink, VolID: vol, Gen: gen, Removed: removed})
	sh.wunlock(lockedAt)

	for _, n := range removed {
		if n.Kind == protocol.KindFile && !n.Hash.IsZero() {
			if s.contents.release(n.Hash) {
				freed = append(freed, n.Hash)
			}
		}
	}
	return removed, gen, freed, nil
}

// Move re-parents or renames a node within its volume (dal.move).
func (s *Store) Move(user protocol.UserID, vol protocol.VolumeID, node, newParent protocol.NodeID, newName string) (protocol.NodeInfo, error) {
	if newName == "" {
		return protocol.NodeInfo{}, fmt.Errorf("%w: empty target name", protocol.ErrBadRequest)
	}
	owner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.NodeInfo{}, err
	}
	if err := s.writeGuard(owner); err != nil {
		return protocol.NodeInfo{}, err
	}
	sh := s.shardOf(owner)
	defer sh.wunlock(sh.wlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, true); err != nil {
		return protocol.NodeInfo{}, err
	}
	nr, ok := sh.nodes[node]
	if !ok || nr.vol != vol {
		return protocol.NodeInfo{}, protocol.ErrNotFound
	}
	if node == vr.root {
		return protocol.NodeInfo{}, fmt.Errorf("%w: cannot move the volume root", protocol.ErrBadRequest)
	}
	if newParent == 0 {
		newParent = vr.root
	}
	pr, ok := sh.nodes[newParent]
	if !ok || pr.vol != vol || pr.kind != protocol.KindDir {
		return protocol.NodeInfo{}, fmt.Errorf("%w: target directory", protocol.ErrNotFound)
	}
	if _, taken := pr.children[newName]; taken {
		return protocol.NodeInfo{}, fmt.Errorf("%w: target name %q", protocol.ErrExists, newName)
	}
	// A directory must not be moved under its own subtree.
	if nr.kind == protocol.KindDir {
		for cur := newParent; cur != 0; {
			if cur == node {
				return protocol.NodeInfo{}, fmt.Errorf("%w: move into own subtree", protocol.ErrBadRequest)
			}
			parentRow, ok := sh.nodes[cur]
			if !ok {
				break
			}
			cur = parentRow.parent
		}
	}
	if old, ok := sh.nodes[nr.parent]; ok && old.children != nil {
		delete(old.children, nr.name)
	}
	nr.parent = newParent
	nr.name = newName
	nr.gen = vr.bumpGen()
	pr.addChild(newName, node)
	info := nr.info(node)
	s.appendLog(sh, vr, info, false)
	s.journal(sh, &journalRecord{Kind: recMove, Node: info})
	return info, nil
}

// GetDelta returns the changes of a volume after fromGen in generation order
// (dal.get_delta). If the delta log no longer reaches back to fromGen it
// fails with ErrDeltaTruncated and the caller performs GetFromScratch.
func (s *Store) GetDelta(user protocol.UserID, vol protocol.VolumeID, fromGen protocol.Generation) ([]protocol.DeltaEntry, protocol.Generation, error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return nil, 0, err
	}
	sh := s.readShardFor(user, owner)
	defer sh.runlock(sh.rlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return nil, 0, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, false); err != nil {
		return nil, 0, err
	}
	if fromGen >= vr.info.Generation {
		s.m.deltaServed.Inc()
		return nil, vr.info.Generation, nil
	}
	// The log can serve the request only if nothing after fromGen was
	// discarded by the retention policy.
	if fromGen < vr.droppedThrough {
		s.m.deltaTruncated.Inc()
		return nil, vr.info.Generation, ErrDeltaTruncated
	}
	var out []protocol.DeltaEntry
	for _, e := range vr.log {
		if e.gen > fromGen {
			out = append(out, protocol.DeltaEntry{Node: e.node, Deleted: e.deleted})
		}
	}
	s.m.deltaServed.Inc()
	return out, vr.info.Generation, nil
}

// GetFromScratch lists the full contents of a volume — the expensive cascade
// read clients fall back to when deltas are unavailable (dal.get_from_scratch).
func (s *Store) GetFromScratch(user protocol.UserID, vol protocol.VolumeID) ([]protocol.NodeInfo, protocol.Generation, error) {
	owner, err := s.ownerOf(vol)
	if err != nil {
		return nil, 0, err
	}
	sh := s.readShardFor(user, owner)
	defer sh.runlock(sh.rlock())
	vr, ok := sh.volumes[vol]
	if !ok {
		return nil, 0, protocol.ErrNotFound
	}
	if err := checkAccessLocked(sh, vr, user, false); err != nil {
		return nil, 0, err
	}
	// Counted after the access checks: only calls that actually pay the
	// cascade cost register, mirroring deltaServed/deltaTruncated.
	s.m.fromScratch.Inc()
	ids := volumeNodeIDs(sh, vr)
	out := make([]protocol.NodeInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, sh.nodes[id].info(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, vr.info.Generation, nil
}

// CreateShare offers a volume to another user (dal.create_share). The share
// row is written to both the owner's and the grantee's shards — the only
// operation class that must involve more than one shard (§3.4).
func (s *Store) CreateShare(owner protocol.UserID, vol protocol.VolumeID, to protocol.UserID, name string, readOnly bool) (protocol.ShareInfo, error) {
	if owner == to {
		return protocol.ShareInfo{}, fmt.Errorf("%w: sharing with oneself", protocol.ErrBadRequest)
	}
	volOwner, err := s.ownerOf(vol)
	if err != nil {
		return protocol.ShareInfo{}, err
	}
	if volOwner != owner {
		return protocol.ShareInfo{}, protocol.ErrPermission
	}
	// The share row is written to both shards, so both owning regions must be
	// serving.
	if err := s.writeGuard(owner); err != nil {
		return protocol.ShareInfo{}, err
	}
	if err := s.writeGuard(to); err != nil {
		return protocol.ShareInfo{}, err
	}
	share := protocol.ShareInfo{
		ID:       s.allocShare(),
		Volume:   vol,
		SharedBy: owner,
		SharedTo: to,
		Name:     name,
		ReadOnly: readOnly,
	}
	osh, gsh := s.shardOf(owner), s.shardOf(to)
	defer unlockPair(osh, gsh, lockPair(osh, gsh))
	osh.writeOp()
	if osh != gsh {
		gsh.writeOp()
	}
	vr, ok := osh.volumes[vol]
	if !ok {
		return protocol.ShareInfo{}, protocol.ErrNotFound
	}
	gu, ok := gsh.users[to]
	if !ok {
		return protocol.ShareInfo{}, fmt.Errorf("%w: grantee", protocol.ErrNotFound)
	}
	if _, dup := vr.grants[to]; dup {
		return protocol.ShareInfo{}, fmt.Errorf("%w: already shared to %v", protocol.ErrExists, to)
	}
	ou := osh.users[owner]
	shareCopy := share
	osh.shares[share.ID] = &shareCopy
	if osh != gsh {
		shareCopy2 := share
		gsh.shares[share.ID] = &shareCopy2
	}
	vr.addGrant(to, share.ID)
	ou.addShareOut(share.ID)
	gu.addShareIn(share.ID)
	s.journal(osh, &journalRecord{Kind: recCreateShare, Share: share})
	if osh != gsh {
		s.journal(gsh, &journalRecord{Kind: recCreateShare, Share: share})
	}
	return share, nil
}

// AcceptShare marks a received share as accepted (dal.accept_share); only
// then does the shared volume appear in the grantee's ListVolumes.
func (s *Store) AcceptShare(user protocol.UserID, id protocol.ShareID) (protocol.ShareInfo, error) {
	if err := s.writeGuard(user); err != nil {
		return protocol.ShareInfo{}, err
	}
	gsh := s.shardOf(user)
	gLockedAt := gsh.wlock()
	share, ok := gsh.shares[id]
	if !ok || share.SharedTo != user {
		gsh.wunlock(gLockedAt)
		return protocol.ShareInfo{}, protocol.ErrNotFound
	}
	owner := share.SharedBy
	// The accepted flag mirrors into the owner's shard; refuse before
	// mutating either side if the owner's region is down.
	if err := s.writeGuard(owner); err != nil {
		gsh.wunlock(gLockedAt)
		return protocol.ShareInfo{}, err
	}
	share.Accepted = true
	out := *share
	s.journal(gsh, &journalRecord{Kind: recAcceptShare, Share: out})
	gsh.wunlock(gLockedAt)

	// Mirror the accepted flag in the owner's shard copy.
	osh := s.shardOf(owner)
	if osh != gsh {
		oLockedAt := osh.wlock()
		if ownerCopy, ok := osh.shares[id]; ok {
			ownerCopy.Accepted = true
		}
		s.journal(osh, &journalRecord{Kind: recAcceptShare, Share: out})
		osh.wunlock(oLockedAt)
	}
	return out, nil
}

// lockPair locks two shards in id order, avoiding deadlock between
// concurrent cross-shard operations; locking the same shard twice is a
// single lock. unlockPair releases both and charges the hold time to each
// shard's master, since both masters were pinned for the whole cross-shard
// transaction.
func lockPair(a, b *shard) time.Time {
	if a == b {
		//u1:allow lockdiscipline cross-shard accessor locks in id order to avoid deadlock; hold is charged in unlockPair
		a.mu.Lock()
		//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
		return time.Now()
	}
	if a.id > b.id {
		a, b = b, a
	}
	//u1:allow lockdiscipline cross-shard accessor locks in id order to avoid deadlock; hold is charged in unlockPair
	a.mu.Lock()
	//u1:allow lockdiscipline cross-shard accessor locks in id order to avoid deadlock; hold is charged in unlockPair
	b.mu.Lock()
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	return time.Now()
}

func unlockPair(a, b *shard, start time.Time) {
	//u1:allow wallclock lock-hold measurement; virtual time cannot observe contention
	hold := time.Since(start)
	if a == b {
		a.mu.Unlock()
		a.m.writeHold.Observe(hold.Seconds())
		return
	}
	if a.id > b.id {
		a, b = b, a
	}
	b.mu.Unlock()
	a.mu.Unlock()
	a.m.writeHold.Observe(hold.Seconds())
	b.m.writeHold.Observe(hold.Seconds())
}

// LookupContent reports whether content with hash h is already stored and
// its size (dal.get_reusable_content): the dedup check run before uploads.
// Probing with the zero hash is a protocol violation (it means "no content")
// and fails with ErrBadRequest rather than aliasing every hashless probe to
// one catalog row.
func (s *Store) LookupContent(h protocol.Hash) (size uint64, ok bool, err error) {
	if h.IsZero() {
		return 0, false, fmt.Errorf("%w: dedup probe without a content hash", protocol.ErrBadRequest)
	}
	size, ok = s.contents.lookup(h)
	return size, ok, nil
}
