package metadata

import (
	"time"

	"u1/internal/protocol"
)

// UploadJob is the persistent server-side state of a multipart upload between
// a client and the data store (appendix A, Fig. 17). It is created by
// dal.make_uploadjob, annotated with the S3 multipart id, fed by
// dal.add_part_to_uploadjob, and garbage-collected by dal.delete_uploadjob —
// either on commit, on cancellation, or by the periodic sweep when older than
// one week.
type UploadJob struct {
	ID     protocol.UploadID
	User   protocol.UserID
	Volume protocol.VolumeID
	Node   protocol.NodeID
	Hash   protocol.Hash
	// DeclaredSize is the plain file size announced by the client.
	DeclaredSize uint64
	// MultipartID is the identifier assigned by the data store
	// (dal.set_uploadjob_multipart_id).
	MultipartID string
	// Parts and BytesDone track streaming progress.
	Parts     uint32
	BytesDone uint64
	CreatedAt time.Time
	TouchedAt time.Time
}

// UploadJobMaxAge is the garbage-collection horizon: jobs untouched for a
// week are presumed canceled (appendix A).
const UploadJobMaxAge = 7 * 24 * time.Hour

// MakeUploadJob creates the server-side state for a multipart upload
// (dal.make_uploadjob). now is passed explicitly so the discrete-event
// simulator can run on virtual time.
func (s *Store) MakeUploadJob(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, h protocol.Hash, declaredSize uint64, now time.Time) (*UploadJob, error) {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	if _, ok := sh.users[user]; !ok {
		return nil, protocol.ErrNotFound
	}
	job := &UploadJob{
		ID:           s.allocUpload(),
		User:         user,
		Volume:       vol,
		Node:         node,
		Hash:         h,
		DeclaredSize: declaredSize,
		CreatedAt:    now,
		TouchedAt:    now,
	}
	sh.uploadjobs[job.ID] = job
	return cloneJob(job), nil
}

// GetUploadJob returns the job state (dal.get_uploadjob).
func (s *Store) GetUploadJob(user protocol.UserID, id protocol.UploadID) (*UploadJob, error) {
	sh := s.shardOf(user)
	defer sh.runlock(sh.rlock())
	job, ok := sh.uploadjobs[id]
	if !ok || job.User != user {
		return nil, protocol.ErrNotFound
	}
	return cloneJob(job), nil
}

// SetUploadJobMultipartID records the data-store multipart identifier
// (dal.set_uploadjob_multipart_id).
func (s *Store) SetUploadJobMultipartID(user protocol.UserID, id protocol.UploadID, multipartID string) error {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	job, ok := sh.uploadjobs[id]
	if !ok || job.User != user {
		return protocol.ErrNotFound
	}
	job.MultipartID = multipartID
	return nil
}

// AddPartToUploadJob accumulates one uploaded part
// (dal.add_part_to_uploadjob).
func (s *Store) AddPartToUploadJob(user protocol.UserID, id protocol.UploadID, partBytes uint64, now time.Time) (*UploadJob, error) {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	job, ok := sh.uploadjobs[id]
	if !ok || job.User != user {
		return nil, protocol.ErrNotFound
	}
	job.Parts++
	job.BytesDone += partBytes
	job.TouchedAt = now
	return cloneJob(job), nil
}

// TouchUploadJob refreshes the job's liveness stamp and reports whether the
// job had already exceeded the garbage-collection horizon
// (dal.touch_uploadjob). An expired job is removed and reported.
func (s *Store) TouchUploadJob(user protocol.UserID, id protocol.UploadID, now time.Time) (expired bool, err error) {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	job, ok := sh.uploadjobs[id]
	if !ok || job.User != user {
		return false, protocol.ErrNotFound
	}
	if now.Sub(job.TouchedAt) > UploadJobMaxAge {
		delete(sh.uploadjobs, id)
		return true, nil
	}
	job.TouchedAt = now
	return false, nil
}

// DeleteUploadJob garbage-collects the job state on commit or cancellation
// (dal.delete_uploadjob).
func (s *Store) DeleteUploadJob(user protocol.UserID, id protocol.UploadID) error {
	sh := s.shardOf(user)
	defer sh.wunlock(sh.wlock())
	job, ok := sh.uploadjobs[id]
	if !ok || job.User != user {
		return protocol.ErrNotFound
	}
	delete(sh.uploadjobs, id)
	return nil
}

// SweepUploadJobs removes every job untouched for longer than UploadJobMaxAge
// across all shards and returns how many were collected. The API servers run
// this periodically (appendix A's garbage-collection process).
func (s *Store) SweepUploadJobs(now time.Time) int {
	var swept int
	for _, sh := range s.shards {
		// Maintenance sweep, not a DAL op: lock directly so the per-shard
		// write counters keep measuring client load only.
		//u1:allow lockdiscipline maintenance sweep; write counters keep measuring client load only
		sh.mu.Lock()
		for id, job := range sh.uploadjobs {
			if now.Sub(job.TouchedAt) > UploadJobMaxAge {
				delete(sh.uploadjobs, id)
				swept++
			}
		}
		sh.mu.Unlock()
	}
	return swept
}

func cloneJob(j *UploadJob) *UploadJob {
	c := *j
	return &c
}
