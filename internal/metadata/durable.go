package metadata

import (
	"crypto/sha1"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"u1/internal/metrics"
	"u1/internal/protocol"
	"u1/internal/wal"
)

// The durable metadata tier: per-shard write-ahead journaling plus
// snapshot-and-replay recovery. Every mutation appends one logical record —
// carrying the *resulting* state, assigned identifiers included — to the
// owning shard's journal before the operation returns, so a crashed shard is
// rebuilt by loading its latest snapshot and replaying the journal suffix.
// The recovery invariant this file exists to uphold (and the crash drill and
// CI recovery job enforce):
//
//   - every acknowledged write survives a crash-restart, and
//   - no unacknowledged write is double-applied: a record torn by the crash
//     fails its CRC and is dropped on replay (see package wal), and a record
//     is only ever replayed once (the snapshot's LSN fences the suffix).
//
// Uploadjobs are deliberately not journaled: they are transient multipart
// bookkeeping, garbage-collected weekly in production, and an upload whose
// final part has not committed was never acknowledged as a write. Content
// reference counts, the volume directory, and the ID allocators are derived
// state, recomputed from the replayed shards rather than journaled — which
// keeps cross-shard records out of the per-shard journals entirely (share
// operations write one record to each involved shard instead).

// DefaultSnapshotEvery is the per-shard journal record count between
// snapshots when the configuration does not specify one.
const DefaultSnapshotEvery = 4096

// durMetrics holds the wal.* instrumentation of the durable tier.
type durMetrics struct {
	appends    *metrics.Counter
	snapshots  *metrics.Counter
	replayed   *metrics.Counter
	tornBytes  *metrics.Counter
	journalErr *metrics.Counter
}

// durability is the store's durable-tier state; nil when Config.Durability
// is empty.
type durability struct {
	root          string
	policy        wal.Policy
	snapshotEvery int
	shards        []*durableShard
	m             durMetrics
}

// durableShard is one shard's journal handle plus snapshot cadence state.
// Mutated only under the owning shard's write lock.
type durableShard struct {
	journal *wal.Log
	dir     string
	lastLSN uint64
	records int // journal appends since the last snapshot
}

// journalRecord is one logical mutation, encoded as JSON. Records carry the
// resulting state — assigned IDs and generations included — so replay
// restores exactly what the store produced without re-running allocators.
type journalRecord struct {
	Kind    string              `json:"kind"`
	User    protocol.UserID     `json:"user,omitempty"`
	Volume  protocol.VolumeInfo `json:"volume,omitempty"`
	Root    protocol.NodeID     `json:"root,omitempty"`
	Node    protocol.NodeInfo   `json:"node,omitempty"`
	VolID   protocol.VolumeID   `json:"vol_id,omitempty"`
	Gen     protocol.Generation `json:"gen,omitempty"`
	Removed []protocol.NodeInfo `json:"removed,omitempty"`
	Share   protocol.ShareInfo  `json:"share,omitempty"`
}

// Journal record kinds, one per mutating DAL class.
const (
	recCreateUser   = "create_user"
	recCreateUDF    = "create_udf"
	recMakeNode     = "make_node"
	recMakeContent  = "make_content"
	recMove         = "move"
	recUnlink       = "unlink"
	recDeleteVolume = "delete_volume"
	recCreateShare  = "create_share"
	recAcceptShare  = "accept_share"
	recDropShare    = "drop_share"
)

// shardSnapshot is the serialized full state of one shard: the save/load
// round-trip unit. Maps become sorted slices so encoding is deterministic;
// directory children indexes are rebuilt from each node's (Parent, Name).
type shardSnapshot struct {
	LSN     uint64               `json:"lsn"`
	Users   []userSnap           `json:"users"`
	Volumes []volumeSnap         `json:"volumes"`
	Nodes   []protocol.NodeInfo  `json:"nodes"`
	Shares  []protocol.ShareInfo `json:"shares"`
}

type userSnap struct {
	ID        protocol.UserID    `json:"id"`
	Root      protocol.VolumeID  `json:"root"`
	SharesIn  []protocol.ShareID `json:"shares_in,omitempty"`
	SharesOut []protocol.ShareID `json:"shares_out,omitempty"`
}

type volumeSnap struct {
	Info           protocol.VolumeInfo `json:"info"`
	Root           protocol.NodeID     `json:"root"`
	DroppedThrough protocol.Generation `json:"dropped_through,omitempty"`
	Log            []logSnap           `json:"log,omitempty"`
	Grants         []grantSnap         `json:"grants,omitempty"`
}

type logSnap struct {
	Gen     protocol.Generation `json:"gen"`
	Node    protocol.NodeInfo   `json:"node"`
	Deleted bool                `json:"deleted,omitempty"`
}

type grantSnap struct {
	To    protocol.UserID  `json:"to"`
	Share protocol.ShareID `json:"share"`
}

const snapshotFile = "snapshot.json"

// openDurability attaches the durable tier to a freshly constructed store:
// per shard, load the snapshot, replay the journal suffix, and leave the
// journal open for appends; then rebuild the derived state. Called by Open
// before the store serves traffic.
func (s *Store) openDurability(cfg Config, reg *metrics.Registry) error {
	d := &durability{
		root:          cfg.Durability,
		policy:        cfg.FsyncPolicy,
		snapshotEvery: cfg.SnapshotEvery,
		shards:        make([]*durableShard, len(s.shards)),
		m: durMetrics{
			appends:    reg.Counter(metrics.WALPrefix + "appends"),
			snapshots:  reg.Counter(metrics.WALPrefix + "snapshots"),
			replayed:   reg.Counter(metrics.WALPrefix + "replayed"),
			tornBytes:  reg.Counter(metrics.WALPrefix + "torn_bytes_dropped"),
			journalErr: reg.Counter(metrics.WALPrefix + "errors"),
		},
	}
	if d.snapshotEvery <= 0 {
		d.snapshotEvery = DefaultSnapshotEvery
	}
	s.dur = d
	for i := range s.shards {
		d.shards[i] = &durableShard{dir: filepath.Join(d.root, fmt.Sprintf("shard-%d", i))}
		if err := s.loadShard(i); err != nil {
			return err
		}
	}
	s.rebuildDerived()
	return nil
}

// loadShard recovers one shard from its snapshot plus journal suffix and
// opens the journal for appending. The shard's in-memory maps must be empty
// (fresh construction, or cleared by CrashShard).
func (s *Store) loadShard(i int) error {
	sh, dsh := s.shards[i], s.dur.shards[i]
	walDir := filepath.Join(dsh.dir, "wal")

	var snapLSN uint64
	snapPath := filepath.Join(dsh.dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap shardSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("metadata: decoding snapshot %s: %w", snapPath, err)
		}
		restoreSnapshot(sh, &snap)
		snapLSN = snap.LSN
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("metadata: reading snapshot %s: %w", snapPath, err)
	}

	// Open first: it cuts any torn tail, so replay only sees intact frames.
	journal, err := wal.Open(walDir, wal.Options{Policy: s.dur.policy})
	if err != nil {
		return err
	}
	last, dropped, err := wal.Replay(walDir, func(lsn uint64, payload []byte) error {
		if lsn <= snapLSN {
			return nil // already folded into the snapshot
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("metadata: decoding journal record %d: %w", lsn, err)
		}
		applyRecord(s, sh, &rec)
		s.dur.m.replayed.Inc()
		return nil
	})
	if err != nil {
		journal.Close() //nolint:errcheck
		return err
	}
	s.dur.m.tornBytes.Add(uint64(dropped))
	dsh.journal = journal
	dsh.lastLSN = last
	dsh.records = 0
	return nil
}

// journal appends one record to sh's journal; a no-op for in-memory stores.
// It runs under sh's write lock — the same critical section that applied the
// mutation — so journal order always matches apply order, and the record is
// on disk (per the fsync policy) before the operation acknowledges. Journal
// failures are counted, not fatal: the simulated store prefers availability,
// and the wal.errors counter makes the breach visible.
func (s *Store) journal(sh *shard, rec *journalRecord) {
	// The replication tier consumes the same record stream: publication under
	// the apply lock is what makes replica replay order match owner apply
	// order (and what guarantees acknowledged writes are already published
	// when their region dies).
	s.replicate(sh, rec)
	if s.dur == nil {
		return
	}
	dsh := s.dur.shards[sh.id]
	payload, err := json.Marshal(rec)
	if err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	lsn, err := dsh.journal.Append(payload)
	if err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	s.dur.m.appends.Inc()
	dsh.lastLSN = lsn
	dsh.records++
	if dsh.records >= s.dur.snapshotEvery {
		s.snapshotShardLocked(sh)
	}
}

// snapshotShardLocked writes sh's state as the new snapshot (atomic
// tmp+rename) and releases the journal segments it covers. Runs under sh's
// write lock.
func (s *Store) snapshotShardLocked(sh *shard) {
	dsh := s.dur.shards[sh.id]
	snap := snapshotState(sh)
	snap.LSN = dsh.lastLSN
	data, err := json.Marshal(snap)
	if err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	tmp := filepath.Join(dsh.dir, snapshotFile+".tmp")
	final := filepath.Join(dsh.dir, snapshotFile)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	if err := dsh.journal.TruncateThrough(snap.LSN); err != nil {
		s.dur.m.journalErr.Inc()
		return
	}
	dsh.records = 0
	s.dur.m.snapshots.Inc()
}

// Close flushes the durable tier: every shard is snapshotted and its journal
// synced and closed. In-memory stores return nil immediately. The store must
// not be used after Close.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	var firstErr error
	for _, sh := range s.shards {
		//u1:allow lockdiscipline final snapshot at Close is maintenance, not a DAL op; op counters track client load only
		sh.mu.Lock()
		s.snapshotShardLocked(sh)
		if err := s.dur.shards[sh.id].journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// DurabilityEnabled reports whether the store journals mutations.
func (s *Store) DurabilityEnabled() bool { return s.dur != nil }

// ShardWALDir returns the journal directory of shard i, for harnesses that
// damage the tail to exercise torn-record recovery. Empty without durability.
func (s *Store) ShardWALDir(i int) string {
	if s.dur == nil {
		return ""
	}
	return filepath.Join(s.dur.shards[i].dir, "wal")
}

// CrashShard simulates the SIGKILL of the process serving shard i: the
// shard's entire in-memory state is dropped and the journal handle abandoned
// without a sync. Traffic to the store must be quiesced around
// CrashShard/RecoverShard — a real deployment fails the shard over; the
// drill restarts it in place.
func (s *Store) CrashShard(i int) {
	sh := s.shards[i]
	//u1:allow lockdiscipline crash drill wipes shard state outside the DAL path
	sh.mu.Lock()
	sh.users = make(map[protocol.UserID]*userRow)
	sh.volumes = make(map[protocol.VolumeID]*volumeRow)
	sh.nodes = make(map[protocol.NodeID]*nodeRow)
	sh.shares = make(map[protocol.ShareID]*protocol.ShareInfo)
	sh.uploadjobs = make(map[protocol.UploadID]*UploadJob)
	if s.dur != nil {
		s.dur.shards[i].journal.Crash()
	}
	sh.mu.Unlock()
}

// RecoverShard reopens shard i from its snapshot plus journal suffix — the
// restart half of the crash drill — and recomputes the store's derived state
// (volume directory, content reference counts, ID allocators) from all
// shards. Requires durability; returns an error otherwise.
func (s *Store) RecoverShard(i int) error {
	if s.dur == nil {
		return fmt.Errorf("metadata: shard recovery requires a durable store")
	}
	sh := s.shards[i]
	//u1:allow lockdiscipline recovery is maintenance; hold histograms track client load only
	sh.mu.Lock()
	err := s.loadShard(i)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.rebuildDerived()
	return nil
}

// ShardFingerprint digests shard i's client-visible state — users, volumes
// (generations, delta logs, grants), nodes, shares — as a hex SHA-1. The
// crash drill compares fingerprints before the crash and after recovery:
// equality is the no-divergence half of the recovery gate. Uploadjobs are
// excluded (transient, never journaled).
func (s *Store) ShardFingerprint(i int) string {
	sh := s.shards[i]
	//u1:allow lockdiscipline fingerprinting is a drill probe, not client load
	sh.mu.RLock()
	snap := snapshotState(sh)
	sh.mu.RUnlock()
	data, err := json.Marshal(snap)
	if err != nil {
		return "unfingerprintable: " + err.Error()
	}
	sum := sha1.Sum(data)
	return hex.EncodeToString(sum[:])
}

// snapshotState serializes sh's maps into the deterministic snapshot form.
// Caller holds at least the read lock.
func snapshotState(sh *shard) *shardSnapshot {
	snap := &shardSnapshot{}
	for _, u := range sh.users {
		us := userSnap{ID: u.id, Root: u.root}
		for id := range u.sharesIn {
			us.SharesIn = append(us.SharesIn, id)
		}
		for id := range u.sharesOut {
			us.SharesOut = append(us.SharesOut, id)
		}
		sort.Slice(us.SharesIn, func(i, j int) bool { return us.SharesIn[i] < us.SharesIn[j] })
		sort.Slice(us.SharesOut, func(i, j int) bool { return us.SharesOut[i] < us.SharesOut[j] })
		snap.Users = append(snap.Users, us)
	}
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].ID < snap.Users[j].ID })

	for _, vr := range sh.volumes {
		vs := volumeSnap{Info: vr.info, Root: vr.root, DroppedThrough: vr.droppedThrough}
		for _, e := range vr.log {
			vs.Log = append(vs.Log, logSnap{Gen: e.gen, Node: e.node, Deleted: e.deleted})
		}
		for to, id := range vr.grants {
			vs.Grants = append(vs.Grants, grantSnap{To: to, Share: id})
		}
		sort.Slice(vs.Grants, func(i, j int) bool { return vs.Grants[i].Share < vs.Grants[j].Share })
		snap.Volumes = append(snap.Volumes, vs)
	}
	sort.Slice(snap.Volumes, func(i, j int) bool { return snap.Volumes[i].Info.ID < snap.Volumes[j].Info.ID })

	for id, nr := range sh.nodes {
		snap.Nodes = append(snap.Nodes, nr.info(id))
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].ID < snap.Nodes[j].ID })

	for _, share := range sh.shares {
		snap.Shares = append(snap.Shares, *share)
	}
	sort.Slice(snap.Shares, func(i, j int) bool { return snap.Shares[i].ID < snap.Shares[j].ID })
	return snap
}

// restoreSnapshot rebuilds sh's maps from a snapshot: rows first, then the
// children indexes from each node's (Parent, Name).
func restoreSnapshot(sh *shard, snap *shardSnapshot) {
	for _, vs := range snap.Volumes {
		vr := &volumeRow{
			info:           vs.Info,
			root:           vs.Root,
			droppedThrough: vs.DroppedThrough,
		}
		for _, e := range vs.Log {
			vr.log = append(vr.log, logEntry{gen: e.Gen, node: e.Node, deleted: e.Deleted})
		}
		for _, g := range vs.Grants {
			vr.addGrant(g.To, g.Share)
		}
		sh.volumes[vs.Info.ID] = vr
	}
	for _, info := range snap.Nodes {
		sh.nodes[info.ID] = newNodeRow(info)
	}
	for _, info := range snap.Nodes {
		if info.Parent == 0 {
			continue // volume roots hang off volumeRow.root
		}
		if pr, ok := sh.nodes[info.Parent]; ok && pr.kind == protocol.KindDir {
			pr.addChild(info.Name, info.ID)
		}
	}
	for i := range snap.Shares {
		share := snap.Shares[i]
		sh.shares[share.ID] = &share
	}
	for _, us := range snap.Users {
		u := &userRow{
			id:   us.ID,
			root: us.Root,
		}
		for _, id := range us.SharesIn {
			u.addShareIn(id)
		}
		for _, id := range us.SharesOut {
			u.addShareOut(id)
		}
		sh.users[us.ID] = u
	}
	// Owned-volume lists derive from volume ownership. Walk the snapshot's
	// volume list (already in ascending-ID order) rather than the map just
	// rebuilt from it, so the per-user volume lists come back in the same
	// order on every recovery.
	for i := range snap.Volumes {
		vs := &snap.Volumes[i]
		if u, ok := sh.users[vs.Info.Owner]; ok {
			u.addVolume(vs.Info.ID)
		}
	}
}

// applyRecord replays one journal record onto sh. The journal was written in
// apply order under the shard write lock, so sequential application
// reconstructs the exact pre-crash state. Derived store-level state (volume
// directory, content refcounts, allocators) is rebuilt afterwards by
// rebuildDerived, never here.
func applyRecord(s *Store, sh *shard, rec *journalRecord) {
	switch rec.Kind {
	case recCreateUser:
		applyNewVolume(sh, rec.Volume, rec.Root)
		sh.users[rec.User] = &userRow{
			id:      rec.User,
			root:    rec.Volume.ID,
			volumes: []protocol.VolumeID{rec.Volume.ID},
		}

	case recCreateUDF:
		applyNewVolume(sh, rec.Volume, rec.Root)
		if u, ok := sh.users[rec.User]; ok {
			u.addVolume(rec.Volume.ID)
		}

	case recMakeNode:
		vr, ok := sh.volumes[rec.Node.Volume]
		if !ok {
			return
		}
		sh.nodes[rec.Node.ID] = newNodeRow(rec.Node)
		if pr, ok := sh.nodes[rec.Node.Parent]; ok && pr.kind == protocol.KindDir {
			pr.addChild(rec.Node.Name, rec.Node.ID)
		}
		vr.info.Generation = rec.Node.Generation
		appendLogReplay(sh, vr, rec.Node, false)

	case recMakeContent, recMove:
		vr, ok := sh.volumes[rec.Node.Volume]
		if !ok {
			return
		}
		nr, ok := sh.nodes[rec.Node.ID]
		if !ok {
			return
		}
		if rec.Kind == recMove {
			if old, ok := sh.nodes[nr.parent]; ok && old.children != nil {
				delete(old.children, nr.name)
			}
			if pr, ok := sh.nodes[rec.Node.Parent]; ok && pr.kind == protocol.KindDir {
				pr.addChild(rec.Node.Name, rec.Node.ID)
			}
		}
		nr.setInfo(rec.Node)
		vr.info.Generation = rec.Node.Generation
		appendLogReplay(sh, vr, rec.Node, false)

	case recUnlink:
		vr, ok := sh.volumes[rec.VolID]
		if !ok {
			return
		}
		if len(rec.Removed) > 0 {
			target := rec.Removed[0]
			if pr, ok := sh.nodes[target.Parent]; ok && pr.children != nil {
				delete(pr.children, target.Name)
			}
		}
		vr.info.Generation = rec.Gen
		for _, n := range rec.Removed {
			delete(sh.nodes, n.ID)
			appendLogReplay(sh, vr, n, true)
		}

	case recDeleteVolume:
		vr, ok := sh.volumes[rec.VolID]
		if !ok {
			return
		}
		for _, nodeID := range volumeNodeIDs(sh, vr) {
			delete(sh.nodes, nodeID)
		}
		delete(sh.volumes, rec.VolID)
		if u := sh.users[rec.User]; u != nil {
			u.removeVolume(rec.VolID)
		}
		for grantee, shareID := range vr.grants {
			delete(sh.shares, shareID)
			if u := sh.users[rec.User]; u != nil {
				delete(u.sharesOut, shareID)
			}
			// Same-shard grantees were cleaned under this lock in the live
			// path; different-shard grantees have their own drop_share record.
			if gu, ok := sh.users[grantee]; ok {
				delete(gu.sharesIn, shareID)
			}
		}

	case recCreateShare:
		share := rec.Share
		sh.shares[share.ID] = &share
		// Owner side: the volume row lives here.
		if vr, ok := sh.volumes[share.Volume]; ok {
			vr.addGrant(share.SharedTo, share.ID)
			if ou, ok := sh.users[share.SharedBy]; ok {
				ou.addShareOut(share.ID)
			}
		}
		// Grantee side: the grantee's user row lives here.
		if gu, ok := sh.users[share.SharedTo]; ok {
			gu.addShareIn(share.ID)
		}

	case recAcceptShare:
		if share, ok := sh.shares[rec.Share.ID]; ok {
			share.Accepted = true
		}

	case recDropShare:
		delete(sh.shares, rec.Share.ID)
		if gu, ok := sh.users[rec.Share.SharedTo]; ok {
			delete(gu.sharesIn, rec.Share.ID)
		}
	}
}

// applyNewVolume reconstructs a volume row plus its root directory with the
// recorded identifiers (the replay twin of newVolumeLocked).
func applyNewVolume(sh *shard, info protocol.VolumeInfo, rootID protocol.NodeID) {
	sh.nodes[rootID] = &nodeRow{vol: info.ID, kind: protocol.KindDir, name: "/"}
	sh.volumes[info.ID] = &volumeRow{
		info: info,
		root: rootID,
	}
}

// appendLogReplay mirrors Store.appendLog for replay, including the
// oldest-half trim, without touching the store-level trim counter twice per
// recovery... it does bump it: recovery re-trims exactly where the original
// run trimmed, so the counter stays an honest activity measure.
func appendLogReplay(sh *shard, v *volumeRow, n protocol.NodeInfo, deleted bool) {
	if sh.deltaLogLimit < 0 {
		v.droppedThrough = v.info.Generation
		return
	}
	v.log = append(v.log, logEntry{gen: v.info.Generation, node: n, deleted: deleted})
	if len(v.log) > sh.deltaLogLimit {
		drop := sh.deltaLogLimit / 2
		if drop < 1 {
			drop = 1
		}
		v.droppedThrough = v.log[drop-1].gen
		v.log = append(v.log[:0:0], v.log[drop:]...)
	}
}

// rebuildDerived recomputes every piece of store-level state that is a pure
// function of the shard contents: the volume directory, the content
// registry's reference counts, and the ID allocators. Allocators only move
// forward — max(current, observed+...) — so identifiers are never reissued
// after a partial recovery.
func (s *Store) rebuildDerived() {
	var maxVol, maxNode, maxShare uint64
	contents := newContentRegistry()
	s.volumeDir.clear()
	for _, sh := range s.shards {
		//u1:allow lockdiscipline derived-state rebuild after recovery, not client load
		sh.mu.RLock()
		for id, vr := range sh.volumes {
			s.volumeDir.store(id, vr.info.Owner)
			if uint64(id) > maxVol {
				maxVol = uint64(id)
			}
		}
		for id, nr := range sh.nodes {
			if uint64(id) > maxNode {
				maxNode = uint64(id)
			}
			if nr.kind == protocol.KindFile && !nr.hash.IsZero() {
				contents.addRef(nr.hash, nr.size)
			}
		}
		for id := range sh.shares {
			if uint64(id) > maxShare {
				maxShare = uint64(id)
			}
		}
		sh.mu.RUnlock()
	}
	s.contents = contents
	bumpTo(&s.nextVolume, maxVol)
	bumpTo(&s.nextNode, maxNode)
	bumpTo(&s.nextShare, maxShare)
}
