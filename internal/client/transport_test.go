package client

import (
	"net"
	"testing"
	"time"

	"u1/internal/protocol"
	"u1/internal/wire"
)

// echoServer accepts one connection and answers every request frame with an
// empty OK response carrying the matching correlation id.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			msgType, payload, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			if msgType != protocol.FrameRequest {
				return
			}
			req, err := protocol.UnmarshalRequest(payload)
			if err != nil {
				return
			}
			resp := &protocol.Response{ID: req.ID, Status: protocol.StatusOK}
			if err := wire.WriteFrame(conn, protocol.FrameResponse, resp.Marshal()); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestTCPTransportRealizesRetryBackoff pins that Request.Delay — the client's
// accumulated retry backoff — becomes a real wall-clock wait on the TCP
// transport, and that first attempts (Delay == 0) skip the sleep entirely.
func TestTCPTransportRealizesRetryBackoff(t *testing.T) {
	tr, err := DialTCP(echoServer(t))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer tr.Close()

	var slept []time.Duration
	tr.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, err := tr.Do(&protocol.Request{Op: protocol.OpPing}); err != nil {
		t.Fatalf("first attempt: %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("Delay == 0 slept %v; first attempts must not wait", slept)
	}

	if _, err := tr.Do(&protocol.Request{Op: protocol.OpPing, Attempt: 1, Delay: 50 * time.Millisecond}); err != nil {
		t.Fatalf("retry attempt: %v", err)
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("retry slept %v; want exactly one 50ms wait", slept)
	}
}
