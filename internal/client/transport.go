// Package client implements the U1 desktop client of §3.3: the sync engine
// that mirrors volumes, offers SHA-1 hashes for cross-user deduplication
// before uploading, compresses uploads, reacts to server push notifications,
// and — faithfully to the original — implements none of delta updates, file
// bundling or sync deferment, the three absences the paper blames for excess
// traffic.
//
// The engine is transport-agnostic: over TCP it speaks the wire protocol
// against a real API server; in-process it drives an apiserver directly with
// virtual timestamps, which is how the trace simulator runs a million
// clients.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/protocol"
	"u1/internal/wire"
)

// Transport moves requests to an API server and delivers pushes back.
type Transport interface {
	// Do performs one request/response exchange.
	Do(*protocol.Request) (*protocol.Response, error)
	// Pushes returns the channel of unsolicited server notifications.
	Pushes() <-chan *protocol.Push
	// Close tears the transport down.
	Close() error
}

// ErrClosed is returned by Do after the transport closed.
var ErrClosed = errors.New("client: transport closed")

// TCPTransport multiplexes requests over one TCP connection: responses are
// matched to requests by correlation id, pushes are surfaced on their own
// channel. Safe for concurrent Do calls (pipelining).
type TCPTransport struct {
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *protocol.Response
	err     error

	nextID uint64
	pushes chan *protocol.Push
	done   chan struct{}

	// sleep realizes Request.Delay — the client's accumulated retry backoff —
	// as real wall-clock waiting before the request goes on the wire.
	// Injectable so tests observe the backoff without actually sleeping;
	// DialTCP wires time.Sleep.
	sleep func(time.Duration)
}

// DialTCP connects to an API server (or the gateway in front of it).
func DialTCP(addr string) (*TCPTransport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	t := &TCPTransport{
		conn:    conn,
		pending: make(map[uint64]chan *protocol.Response),
		pushes:  make(chan *protocol.Push, 64),
		done:    make(chan struct{}),
		sleep:   time.Sleep,
	}
	go t.readLoop()
	return t, nil
}

func (t *TCPTransport) readLoop() {
	for {
		msgType, payload, err := wire.ReadFrame(t.conn)
		if err != nil {
			t.fail(err)
			return
		}
		switch msgType {
		case protocol.FrameResponse:
			resp, err := protocol.UnmarshalResponse(payload)
			if err != nil {
				t.fail(err)
				return
			}
			t.mu.Lock()
			ch, ok := t.pending[resp.ID]
			delete(t.pending, resp.ID)
			t.mu.Unlock()
			if ok {
				ch <- resp
			}
		case protocol.FramePush:
			push, err := protocol.UnmarshalPush(payload)
			if err != nil {
				t.fail(err)
				return
			}
			select {
			case t.pushes <- push:
			default: // client not draining pushes; drop rather than stall
			}
		default:
			t.fail(fmt.Errorf("client: unexpected frame type %d", msgType))
			return
		}
	}
}

func (t *TCPTransport) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = err
	for id, ch := range t.pending {
		close(ch)
		delete(t.pending, id)
	}
	close(t.done)
}

// Do implements Transport.
func (t *TCPTransport) Do(req *protocol.Request) (*protocol.Response, error) {
	// Retry backoff is real time on a real connection: wait it out before
	// the request goes on the wire. First attempts (Delay == 0) never sleep.
	if req.Delay > 0 && t.sleep != nil {
		t.sleep(req.Delay)
	}
	req.ID = atomic.AddUint64(&t.nextID, 1)
	ch := make(chan *protocol.Response, 1)

	t.mu.Lock()
	if t.err != nil {
		err := t.err
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	t.pending[req.ID] = ch
	t.mu.Unlock()

	t.writeMu.Lock()
	err := wire.WriteFrame(t.conn, protocol.FrameRequest, req.Marshal())
	t.writeMu.Unlock()
	if err != nil {
		t.mu.Lock()
		delete(t.pending, req.ID)
		t.mu.Unlock()
		return nil, fmt.Errorf("client: sending request: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	return resp, nil
}

// Pushes implements Transport.
func (t *TCPTransport) Pushes() <-chan *protocol.Push { return t.pushes }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	err := t.conn.Close()
	t.fail(ErrClosed)
	return err
}
