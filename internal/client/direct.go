package client

import (
	"sync"
	"time"

	"u1/internal/apiserver"
	"u1/internal/protocol"
)

// DirectTransport drives in-process API servers without sockets. The
// simulator uses it to run very large client populations on a virtual clock:
// Clock supplies the timestamp for every request, and the accumulated
// simulated service time is available through ServiceTime.
//
// Placement follows the gateway rule of §4: every new session (Authenticate)
// asks the place function for a server — typically Cluster.LeastLoaded — and
// stays on it until the session ends. The transport is reusable across
// sessions, like a desktop client reconnecting after a drop.
type DirectTransport struct {
	place func() *apiserver.Server
	clock func() time.Time

	mu      sync.Mutex
	server  *apiserver.Server
	sess    *apiserver.Session
	service time.Duration

	pushes chan *protocol.Push
}

// FixedServer returns a placement function pinning every session to srv.
func FixedServer(srv *apiserver.Server) func() *apiserver.Server {
	return func() *apiserver.Server { return srv }
}

// NewDirectTransport creates a transport. place chooses the API server for
// each new session; clock provides request timestamps (nil → time.Now).
func NewDirectTransport(place func() *apiserver.Server, clock func() time.Time) *DirectTransport {
	if clock == nil {
		clock = time.Now
	}
	return &DirectTransport{
		place:  place,
		clock:  clock,
		pushes: make(chan *protocol.Push, 256),
	}
}

// Do implements Transport.
func (t *DirectTransport) Do(req *protocol.Request) (*protocol.Response, error) {
	now := t.clock()
	switch req.Op {
	case protocol.OpAuthenticate:
		// A reconnect implicitly drops the previous connection: close any
		// session still attached to this transport before placing the new
		// one, or it would linger server-side until the weekly sweep.
		t.mu.Lock()
		oldSess, oldServer := t.sess, t.server
		t.sess = nil
		t.mu.Unlock()
		if oldSess != nil && oldServer != nil {
			oldServer.CloseSession(oldSess, now)
		}
		server := t.place()
		pusher := apiserver.PusherFunc(func(p *protocol.Push) {
			select {
			case t.pushes <- p:
			default: // not draining; drop
			}
		})
		newSess, resp, d := server.OpenSession(req.Token, pusher, now)
		t.mu.Lock()
		t.server = server
		t.sess = newSess
		t.service += d
		t.mu.Unlock()
		resp.ID = req.ID
		return resp, nil

	case protocol.OpCloseSession:
		t.mu.Lock()
		sess, server := t.sess, t.server
		t.sess = nil
		t.mu.Unlock()
		if sess != nil && server != nil {
			server.CloseSession(sess, now)
		}
		return &protocol.Response{ID: req.ID, Status: protocol.StatusOK}, nil

	default:
		t.mu.Lock()
		sess, server := t.sess, t.server
		t.mu.Unlock()
		if server == nil {
			return &protocol.Response{ID: req.ID, Status: protocol.StatusAuthFailed}, nil
		}
		// Retry backoff in virtual time: the client cannot sleep inside a
		// simulator event, so a retried request instead arrives Delay after
		// the event's clock — late enough for the deterministic fault plan
		// to draw a fresh decision.
		if req.Delay > 0 {
			now = now.Add(req.Delay)
		}
		resp, d := server.Handle(sess, req, now)
		t.mu.Lock()
		t.service += d
		t.mu.Unlock()
		return resp, nil
	}
}

// Pushes implements Transport.
func (t *DirectTransport) Pushes() <-chan *protocol.Push { return t.pushes }

// Close implements Transport: it ends the current session (a TCP disconnect)
// but the transport stays reusable — the next Authenticate starts a fresh
// session, possibly on another server.
func (t *DirectTransport) Close() error {
	t.mu.Lock()
	sess, server := t.sess, t.server
	t.sess = nil
	t.mu.Unlock()
	if sess != nil && server != nil {
		server.CloseSession(sess, t.clock())
	}
	return nil
}

// ServiceTime returns the cumulative simulated back-end service time
// consumed through this transport.
func (t *DirectTransport) ServiceTime() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.service
}

// Session returns the live session, if any (diagnostics and tests).
func (t *DirectTransport) Session() *apiserver.Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sess
}
