package client

import (
	"bytes"
	"compress/flate"
	"fmt"
	"sync"
	"time"

	"u1/internal/blob"
	"u1/internal/protocol"
)

// Mirror is the client-side replica of one volume: the node set at a known
// generation, the synchronization metadata U1 kept under
// ~/.cache/ubuntuone (§3.3).
type Mirror struct {
	Info  protocol.VolumeInfo
	Gen   protocol.Generation
	Nodes map[protocol.NodeID]protocol.NodeInfo
	// dirty marks that a local mutation advanced the server past what the
	// mirror replayed contiguously; the next Sync reconciles.
	dirty bool
}

// Stats counts client-side activity.
type Stats struct {
	Uploads    uint64
	Downloads  uint64
	DedupHits  uint64
	BytesUp    uint64
	BytesDown  uint64
	SyncsRun   uint64
	Rescans    uint64
	PushesSeen uint64
	// Retries counts per-op retry attempts of transient failures;
	// RetrySuccesses the retried ops that eventually completed. OpErrors
	// counts operations that failed for good (after any retries).
	Retries        uint64
	RetrySuccesses uint64
	OpErrors       uint64
}

// Client is the desktop sync client.
type Client struct {
	t Transport

	// AutoFetch makes Sync download the contents of new/changed files, the
	// default desktop behavior ("the client acts on the incoming push and
	// starts the download", §3.3).
	AutoFetch bool

	// Retry bounds per-op retry of transient failures (unavailable,
	// overloaded, cancelled). Zero disables retries. Set before issuing
	// traffic; it is read without synchronization on the request path.
	Retry Retry

	mu      sync.Mutex
	user    protocol.UserID
	session protocol.SessionID
	mirrors map[protocol.VolumeID]*Mirror
	shares  []protocol.ShareInfo
	stats   Stats
}

// New creates a client over the given transport.
func New(t Transport) *Client {
	return &Client{t: t, mirrors: make(map[protocol.VolumeID]*Mirror)}
}

// Connect authenticates and runs the standard initialization flow observed in
// Fig. 8: Authenticate → ListVolumes → ListShares.
//
// A failed Authenticate means no session exists and Connect returns the
// error. The follow-up listing calls are ordinary per-op requests on the
// live session: a per-op failure (retryable past its budget, or permanent)
// leaves the session up, is counted in Stats.OpErrors, and the daemon
// recovers the missing state on its next sync or reconnect — treating such
// a failure as connection-fatal was exactly the client/server
// status-semantics mismatch the fault injector flushed out. What does stay
// fatal is a dead transport (no response at all) or a session-fatal status
// on the listing leg (the session was revoked underneath us): then there is
// no live session to keep and Connect reports the failure.
func (c *Client) Connect(token string) error {
	resp, err := c.t.Do(&protocol.Request{Op: protocol.OpAuthenticate, Token: token})
	if err != nil {
		return err
	}
	if resp.Status != protocol.StatusOK {
		return fmt.Errorf("client: authenticate: %w", resp.Status.Err())
	}
	c.mu.Lock()
	c.user, c.session = resp.User, resp.Session
	c.mu.Unlock()

	resp, err = c.do(&protocol.Request{Op: protocol.OpListVolumes})
	switch {
	case err == nil:
		c.mu.Lock()
		for _, v := range resp.Volumes {
			if _, ok := c.mirrors[v.ID]; !ok {
				c.mirrors[v.ID] = &Mirror{Info: v, Nodes: make(map[protocol.NodeID]protocol.NodeInfo)}
			}
		}
		c.mu.Unlock()
	case resp == nil || classifyStatus(resp.Status) == classSessionFatal:
		// No response at all (transport died) or the session is already
		// gone: there is nothing to keep, the connection really failed.
		return err
	}
	resp, err = c.do(&protocol.Request{Op: protocol.OpListShares})
	switch {
	case err == nil:
		c.mu.Lock()
		c.shares = resp.Shares
		c.mu.Unlock()
	case resp == nil || classifyStatus(resp.Status) == classSessionFatal:
		return err
	}
	return nil
}

// User returns the authenticated user id.
func (c *Client) User() protocol.UserID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.user
}

// Session returns the storage-protocol session id.
func (c *Client) Session() protocol.SessionID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pushes exposes the transport's push channel.
func (c *Client) Pushes() <-chan *protocol.Push { return c.t.Pushes() }

// Close ends the session and the transport.
func (c *Client) Close() error {
	c.t.Do(&protocol.Request{Op: protocol.OpCloseSession}) //nolint:errcheck
	return c.t.Close()
}

// Disconnect ends the session but keeps the transport reusable: the next
// Connect starts a fresh session, as when a desktop client loses its TCP
// connection and reconnects later. Local mirrors persist, so the next
// connection synchronizes from the last known generation (§3.4.2).
func (c *Client) Disconnect() error {
	_, err := c.t.Do(&protocol.Request{Op: protocol.OpCloseSession})
	return err
}

// do sends a request, retrying transient failures within the Retry budget,
// and converts non-OK statuses into errors. Retries carry their attempt
// number and accumulated backoff on the request, so the server can tell
// retried traffic apart and the simulator transport can advance the virtual
// clock instead of sleeping. Only classRetryable statuses retry: a permanent
// failure (missing node, quota) cannot be fixed by resending, and a
// session-level failure needs a reconnect, not a per-op retry.
func (c *Client) do(req *protocol.Request) (*protocol.Response, error) {
	var delay time.Duration
	for attempt := 0; ; attempt++ {
		req.Attempt = uint8(attempt)
		req.Delay = delay
		resp, err := c.t.Do(req)
		if err != nil {
			return nil, err
		}
		switch classifyStatus(resp.Status) {
		case classSuccess:
			if attempt > 0 {
				c.mu.Lock()
				c.stats.RetrySuccesses++
				c.mu.Unlock()
			}
			return resp, nil
		case classRetryable:
			if attempt < c.Retry.Max && attempt < 255 {
				delay += c.Retry.step(attempt)
				c.mu.Lock()
				c.stats.Retries++
				c.mu.Unlock()
				continue
			}
		}
		c.mu.Lock()
		c.stats.OpErrors++
		c.mu.Unlock()
		return resp, fmt.Errorf("client: %v: %w", req.Op, resp.Status.Err())
	}
}

// ListVolumes lists the user's volumes.
func (c *Client) ListVolumes() ([]protocol.VolumeInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpListVolumes})
	if err != nil {
		return nil, err
	}
	return resp.Volumes, nil
}

// ListShares lists sharing grants involving the user.
func (c *Client) ListShares() ([]protocol.ShareInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpListShares})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.shares = resp.Shares
	c.mu.Unlock()
	return resp.Shares, nil
}

// RootVolume returns the id of the root volume mirror.
func (c *Client) RootVolume() (protocol.VolumeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, m := range c.mirrors {
		if m.Info.Type == protocol.VolumeRoot {
			return id, true
		}
	}
	return 0, false
}

// Mirror returns the local replica of a volume.
func (c *Client) Mirror(vol protocol.VolumeID) (*Mirror, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.mirrors[vol]
	return m, ok
}

// applyLocal advances a mirror with the result of the client's own mutation
// when it is contiguous; otherwise the mirror is marked dirty and the next
// Sync reconciles (another device must have written concurrently).
func (c *Client) applyLocal(vol protocol.VolumeID, node protocol.NodeInfo, gen protocol.Generation, deleted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.mirrors[vol]
	if !ok {
		return
	}
	if gen != m.Gen+1 {
		m.dirty = true
		return
	}
	m.Gen = gen
	if deleted {
		delete(m.Nodes, node.ID)
	} else if node.ID != 0 {
		m.Nodes[node.ID] = node
	}
}

// Mkdir creates a directory.
func (c *Client) Mkdir(vol protocol.VolumeID, parent protocol.NodeID, name string) (protocol.NodeInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpMakeDir, Volume: vol, Parent: parent, Name: name})
	if err != nil {
		return protocol.NodeInfo{}, err
	}
	c.applyLocal(vol, resp.Node, resp.Generation, false)
	return resp.Node, nil
}

// flateSize returns the deflated size of content — the client compresses
// uploads to optimize transfers (§3.3).
func flateSize(content []byte) uint64 {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return uint64(len(content))
	}
	w.Write(content) //nolint:errcheck
	w.Close()        //nolint:errcheck
	return uint64(buf.Len())
}

// Upload stores content as name under parent, running the full §3.3/App. A
// flow: Make (touch) → PutContent with the SHA-1 dedup offer → part streaming
// unless the server already has the content. It returns the node and whether
// deduplication avoided the transfer.
func (c *Client) Upload(vol protocol.VolumeID, parent protocol.NodeID, name string, content []byte) (protocol.NodeInfo, bool, error) {
	h := protocol.HashBytes(content)
	return c.upload(vol, parent, name, h, uint64(len(content)), flateSize(content), content)
}

// UploadSized runs the upload flow without materializing content: the
// workload generator controls the hash (dedup behavior) and sizes directly.
func (c *Client) UploadSized(vol protocol.VolumeID, parent protocol.NodeID, name string, h protocol.Hash, size, compressed uint64) (protocol.NodeInfo, bool, error) {
	return c.upload(vol, parent, name, h, size, compressed, nil)
}

func (c *Client) upload(vol protocol.VolumeID, parent protocol.NodeID, name string, h protocol.Hash, size, compressed uint64, content []byte) (protocol.NodeInfo, bool, error) {
	mk, err := c.do(&protocol.Request{Op: protocol.OpMakeFile, Volume: vol, Parent: parent, Name: name})
	if err != nil {
		return protocol.NodeInfo{}, false, err
	}
	c.applyLocal(vol, mk.Node, mk.Generation, false)
	node := mk.Node

	put, err := c.do(&protocol.Request{
		Op: protocol.OpPutContent, Volume: vol, Node: node.ID, Name: name,
		Hash: h, Size: size, CompressedSize: compressed,
	})
	if err != nil {
		return node, false, err
	}
	if put.Reused {
		c.mu.Lock()
		c.stats.Uploads++
		c.stats.DedupHits++
		c.mu.Unlock()
		c.applyLocal(vol, put.Node, put.Generation, false)
		return put.Node, true, nil
	}

	// Stream parts. With real content the parts carry bytes; metered
	// uploads declare sizes only.
	var final *protocol.Response
	nParts := int((size + blob.PartSize - 1) / blob.PartSize)
	if nParts == 0 {
		nParts = 1
	}
	for i := 0; i < nParts; i++ {
		req := &protocol.Request{
			Op: protocol.OpPutPart, Upload: put.Upload,
			Part: uint32(i), Final: i == nParts-1,
		}
		if content != nil {
			lo := i * blob.PartSize
			hi := lo + blob.PartSize
			if hi > len(content) {
				hi = len(content)
			}
			req.Data = content[lo:hi]
		} else {
			partSize := uint64(blob.PartSize)
			if i == nParts-1 {
				partSize = size - uint64(i)*blob.PartSize
			}
			req.Size = partSize
		}
		resp, err := c.do(req)
		if err != nil {
			return node, false, err
		}
		final = resp
	}
	c.mu.Lock()
	c.stats.Uploads++
	c.stats.BytesUp += size
	c.mu.Unlock()
	c.applyLocal(vol, final.Node, final.Generation, false)
	return final.Node, false, nil
}

// BeginUpload runs Make + PutContent and stops: the parts never follow, as
// when a laptop lid closes mid-upload. The server-side uploadjob lingers
// until the weekly garbage collection (appendix A). It returns the upload id
// (zero if the content deduplicated and no transfer was needed).
func (c *Client) BeginUpload(vol protocol.VolumeID, parent protocol.NodeID, name string, h protocol.Hash, size uint64) (protocol.UploadID, bool, error) {
	mk, err := c.do(&protocol.Request{Op: protocol.OpMakeFile, Volume: vol, Parent: parent, Name: name})
	if err != nil {
		return 0, false, err
	}
	c.applyLocal(vol, mk.Node, mk.Generation, false)
	put, err := c.do(&protocol.Request{
		Op: protocol.OpPutContent, Volume: vol, Node: mk.Node.ID, Name: name,
		Hash: h, Size: size,
	})
	if err != nil {
		return 0, false, err
	}
	return put.Upload, put.Reused, nil
}

// Download fetches a file's content. Large files are fetched in parts. With
// a metered server the returned slice is nil but sizes are accounted.
func (c *Client) Download(vol protocol.VolumeID, node protocol.NodeID) ([]byte, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpGetContent, Volume: vol, Node: node})
	if err != nil {
		return nil, err
	}
	data := resp.Data
	if resp.Parts > 0 {
		data = data[:0]
		for i := uint32(0); i < resp.Parts; i++ {
			part, err := c.do(&protocol.Request{Op: protocol.OpGetPart, Volume: vol, Node: node, Part: i})
			if err != nil {
				return nil, err
			}
			data = append(data, part.Data...)
		}
	}
	if len(data) > 0 {
		if got := protocol.HashBytes(data); got != resp.Hash {
			return nil, fmt.Errorf("client: download of node %d corrupted: hash %v != %v", node, got, resp.Hash)
		}
	}
	c.mu.Lock()
	c.stats.Downloads++
	c.stats.BytesDown += resp.Size
	c.mu.Unlock()
	return data, nil
}

// Unlink deletes a node (cascading server-side for directories).
func (c *Client) Unlink(vol protocol.VolumeID, node protocol.NodeID) error {
	resp, err := c.do(&protocol.Request{Op: protocol.OpUnlink, Volume: vol, Node: node})
	if err != nil {
		return err
	}
	// The cascade may have removed more nodes than the one named; mark the
	// mirror dirty unless this was a clean single-step advance.
	c.applyLocal(vol, protocol.NodeInfo{ID: node}, resp.Generation, true)
	return nil
}

// Move renames/re-parents a node.
func (c *Client) Move(vol protocol.VolumeID, node, newParent protocol.NodeID, newName string) (protocol.NodeInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpMove, Volume: vol, Node: node, Parent: newParent, Name: newName})
	if err != nil {
		return protocol.NodeInfo{}, err
	}
	c.applyLocal(vol, resp.Node, resp.Generation, false)
	return resp.Node, nil
}

// CreateUDF creates a user-defined folder volume and mirrors it.
func (c *Client) CreateUDF(path string) (protocol.VolumeInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpCreateUDF, Name: path})
	if err != nil {
		return protocol.VolumeInfo{}, err
	}
	v := resp.Volumes[0]
	c.mu.Lock()
	c.mirrors[v.ID] = &Mirror{Info: v, Nodes: make(map[protocol.NodeID]protocol.NodeInfo)}
	c.mu.Unlock()
	return v, nil
}

// DeleteVolume removes a volume and its mirror.
func (c *Client) DeleteVolume(vol protocol.VolumeID) error {
	if _, err := c.do(&protocol.Request{Op: protocol.OpDeleteVolume, Volume: vol}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.mirrors, vol)
	c.mu.Unlock()
	return nil
}

// CreateShare offers a volume to another user.
func (c *Client) CreateShare(vol protocol.VolumeID, to protocol.UserID, name string, readOnly bool) (protocol.ShareInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpCreateShare, Volume: vol, ToUser: to, Name: name, ReadOnly: readOnly})
	if err != nil {
		return protocol.ShareInfo{}, err
	}
	return resp.Shares[0], nil
}

// AcceptShare accepts a received share and mirrors the shared volume.
func (c *Client) AcceptShare(id protocol.ShareID) (protocol.ShareInfo, error) {
	resp, err := c.do(&protocol.Request{Op: protocol.OpAcceptShare, Share: id})
	if err != nil {
		return protocol.ShareInfo{}, err
	}
	share := resp.Shares[0]
	c.mu.Lock()
	if _, ok := c.mirrors[share.Volume]; !ok {
		c.mirrors[share.Volume] = &Mirror{
			Info:  protocol.VolumeInfo{ID: share.Volume, Type: protocol.VolumeShared, Owner: share.SharedBy},
			Nodes: make(map[protocol.NodeID]protocol.NodeInfo),
		}
	}
	c.mu.Unlock()
	return share, nil
}

// Ping exercises the keepalive.
func (c *Client) Ping() error {
	_, err := c.do(&protocol.Request{Op: protocol.OpPing})
	return err
}

// Sync reconciles a mirror with the server via GetDelta (falling back to a
// full rescan when the server says the delta log no longer reaches the
// mirror's generation). It returns the changed file nodes it saw; with
// AutoFetch set, their contents were downloaded.
func (c *Client) Sync(vol protocol.VolumeID) ([]protocol.NodeInfo, error) {
	c.mu.Lock()
	m, ok := c.mirrors[vol]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: volume %d not mirrored", protocol.ErrNotFound, vol)
	}
	fromGen := m.Gen
	c.mu.Unlock()

	resp, err := c.do(&protocol.Request{Op: protocol.OpGetDelta, Volume: vol, FromGen: fromGen})
	if err != nil {
		return nil, err
	}

	var changedFiles []protocol.NodeInfo
	c.mu.Lock()
	if resp.Rescan {
		m.Nodes = make(map[protocol.NodeID]protocol.NodeInfo)
		c.stats.Rescans++
	}
	for _, d := range resp.Deltas {
		if d.Deleted {
			delete(m.Nodes, d.Node.ID)
			continue
		}
		prev, existed := m.Nodes[d.Node.ID]
		m.Nodes[d.Node.ID] = d.Node
		if d.Node.Kind == protocol.KindFile && !d.Node.Hash.IsZero() &&
			(!existed || prev.Hash != d.Node.Hash) {
			changedFiles = append(changedFiles, d.Node)
		}
	}
	m.Gen = resp.Generation
	m.dirty = false
	c.stats.SyncsRun++
	autoFetch := c.AutoFetch
	c.mu.Unlock()

	if autoFetch {
		for _, n := range changedFiles {
			if _, err := c.Download(vol, n.ID); err != nil {
				return changedFiles, err
			}
		}
	}
	return changedFiles, nil
}

// HandlePush reacts to one server notification the way the daemon does:
// volume changes trigger a sync, share offers are recorded. It returns the
// changed files of a triggered sync.
func (c *Client) HandlePush(p *protocol.Push) ([]protocol.NodeInfo, error) {
	c.mu.Lock()
	c.stats.PushesSeen++
	c.mu.Unlock()
	switch p.Event {
	case protocol.PushVolumeChanged:
		c.mu.Lock()
		m, ok := c.mirrors[p.Volume]
		behind := ok && (p.Generation > m.Gen || m.dirty)
		c.mu.Unlock()
		if behind {
			return c.Sync(p.Volume)
		}
		return nil, nil
	case protocol.PushShareOffered:
		c.mu.Lock()
		c.shares = append(c.shares, p.Share)
		c.mu.Unlock()
		return nil, nil
	default:
		return nil, nil
	}
}
