package client

import (
	"time"

	"u1/internal/protocol"
)

// statusClass is the client's view of a response status: what the sync
// engine should do about it. The classification must agree with the server's
// semantics — a status the server considers per-op must not tear the session
// down client-side, and a session-level status must not be blindly retried.
type statusClass uint8

const (
	// classSuccess: the operation completed.
	classSuccess statusClass = iota
	// classRetryable: transient server-side condition (outage, load shed,
	// dropped work); the same request can succeed after a backoff, on the
	// same session.
	classRetryable
	// classPermanent: the request itself cannot succeed (missing node,
	// permission, quota, conflict); retrying verbatim is pointless but the
	// session is fine.
	classPermanent
	// classSessionFatal: the session is gone or was never established;
	// per-op retry cannot help, only a reconnect (re-Authenticate) can.
	classSessionFatal
)

// classifyStatus maps every protocol.Status to its client reaction. Unknown
// future statuses classify as permanent: fail the op, keep the session.
func classifyStatus(s protocol.Status) statusClass {
	switch s {
	case protocol.StatusOK:
		return classSuccess
	case protocol.StatusUnavailable, protocol.StatusOverloaded, protocol.StatusCancelled:
		// Unavailable and Overloaded are the server telling the client to
		// come back later; Cancelled means the server dropped the work
		// believing the client gone — if the response arrived, it wasn't.
		return classRetryable
	case protocol.StatusAuthFailed:
		// The only session-level status the server emits on the per-op path
		// (the session guard); everything else leaves the session live.
		return classSessionFatal
	case protocol.StatusNotFound, protocol.StatusExists, protocol.StatusPermission,
		protocol.StatusBadRequest, protocol.StatusConflict, protocol.StatusQuota:
		return classPermanent
	default:
		return classPermanent
	}
}

// Retry bounds the client's per-op retry of transient failures (statuses in
// classRetryable). The zero value disables retries — the faithful §3.3
// client behavior, and the default the trace reproduction depends on.
type Retry struct {
	// Max is the number of retries after the first attempt.
	Max int
	// Backoff is the wait before the first retry; it doubles per attempt.
	// Zero defaults to one second. The wait is virtual: it travels on
	// Request.Delay, and the simulator transport advances the request's
	// virtual timestamp by it instead of sleeping, so a retried request
	// draws a fresh fault decision at a later instant.
	Backoff time.Duration
}

// step returns the additional backoff before retry number attempt+1.
func (r Retry) step(attempt int) time.Duration {
	b := r.Backoff
	if b <= 0 {
		b = time.Second
	}
	if attempt > 30 {
		attempt = 30
	}
	return b << attempt
}
