package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"u1/internal/apiserver"
	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/metadata"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

// newServer builds a single API server with its dependencies for direct use.
func newServer(t *testing.T) (*apiserver.Server, *auth.Service) {
	t.Helper()
	store := metadata.New(metadata.Config{Shards: 4})
	authSvc := auth.New(auth.Config{Seed: 1})
	srv := apiserver.New(apiserver.Config{Name: "t", Procs: 2}, apiserver.Deps{
		RPC:      rpc.NewServer(store, rpc.Config{Seed: 1}),
		Auth:     authSvc,
		Blob:     blob.New(blob.Config{}),
		Broker:   notify.NewBroker(),
		Transfer: blob.DefaultTransferModel(),
	})
	return srv, authSvc
}

func connected(t *testing.T, srv *apiserver.Server, authSvc *auth.Service, user protocol.UserID) *Client {
	t.Helper()
	token, err := authSvc.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	return cli
}

func TestConnectInitFlow(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 1)
	defer cli.Close()
	if cli.User() != 1 || cli.Session() == 0 {
		t.Errorf("user=%v session=%v", cli.User(), cli.Session())
	}
	root, ok := cli.RootVolume()
	if !ok || root == 0 {
		t.Fatal("no root volume after connect")
	}
	if _, ok := cli.Mirror(root); !ok {
		t.Error("root volume not mirrored")
	}
}

func TestConnectBadToken(t *testing.T) {
	srv, _ := newServer(t)
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	err := cli.Connect("bogus")
	if !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestDisconnectReconnectKeepsMirror(t *testing.T) {
	srv, authSvc := newServer(t)
	token, _ := authSvc.Issue(5)
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	root, _ := cli.RootVolume()
	h := protocol.HashBytes([]byte("x"))
	if _, _, err := cli.UploadSized(root, 0, "a.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	firstSession := cli.Session()
	if err := cli.Disconnect(); err != nil {
		t.Fatal(err)
	}
	// Reconnect: a fresh session, but local mirrors persist and the sync
	// from the retained generation returns nothing new.
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	if cli.Session() == firstSession {
		t.Error("reconnect should open a new session")
	}
	changed, err := cli.Sync(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("nothing changed server-side, got %d", len(changed))
	}
	// The volume root dir is implicit (generation 0, never in the delta
	// log); the mirror holds the one uploaded file.
	m, _ := cli.Mirror(root)
	if len(m.Nodes) != 1 {
		t.Errorf("mirror nodes = %d", len(m.Nodes))
	}
}

func TestUploadSizedAndDedupStats(t *testing.T) {
	srv, authSvc := newServer(t)
	a := connected(t, srv, authSvc, 10)
	b := connected(t, srv, authSvc, 11)
	rootA, _ := a.RootVolume()
	rootB, _ := b.RootVolume()

	h := protocol.HashBytes([]byte("shared-content"))
	if _, reused, err := a.UploadSized(rootA, 0, "one.bin", h, 100, 80); err != nil || reused {
		t.Fatalf("first upload reused=%v err=%v", reused, err)
	}
	if _, reused, err := b.UploadSized(rootB, 0, "two.bin", h, 100, 80); err != nil || !reused {
		t.Fatalf("second upload reused=%v err=%v", reused, err)
	}
	if st := b.Stats(); st.DedupHits != 1 || st.Uploads != 1 || st.BytesUp != 0 {
		t.Errorf("stats = %+v (dedup hit must not count bytes)", st)
	}
}

func TestBeginUploadLeavesJob(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 20)
	root, _ := cli.RootVolume()
	up, reused, err := cli.BeginUpload(root, 0, "partial.iso", protocol.HashBytes([]byte("p")), 30<<20)
	if err != nil || reused || up == 0 {
		t.Fatalf("begin: up=%v reused=%v err=%v", up, reused, err)
	}
	// Nothing committed: the file node exists but has no content.
	m, _ := cli.Mirror(root)
	for _, n := range m.Nodes {
		if n.Kind == protocol.KindFile && !n.Hash.IsZero() {
			t.Error("no content should be committed")
		}
	}
}

func TestMoveAndUnlinkUpdateMirror(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 30)
	root, _ := cli.RootVolume()
	dir, err := cli.Mkdir(root, 0, "d")
	if err != nil {
		t.Fatal(err)
	}
	h := protocol.HashBytes([]byte("f"))
	node, _, err := cli.UploadSized(root, dir.ID, "f.txt", h, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := cli.Move(root, node.ID, 0, "g.txt")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Name != "g.txt" {
		t.Errorf("moved = %+v", moved)
	}
	if err := cli.Unlink(root, node.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Download(root, node.ID); err == nil {
		t.Error("download after unlink should fail")
	}
}

func TestSyncAppliesRemoteChanges(t *testing.T) {
	srv, authSvc := newServer(t)
	dev1 := connected(t, srv, authSvc, 40)
	dev2 := connected(t, srv, authSvc, 40)
	root, _ := dev1.RootVolume()
	for i := 0; i < 5; i++ {
		h := protocol.HashBytes([]byte{byte(i)})
		if _, _, err := dev1.UploadSized(root, 0, fmt.Sprintf("f%d", i), h, 10, 8); err != nil {
			t.Fatal(err)
		}
	}
	changed, err := dev2.Sync(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 5 {
		t.Errorf("changed = %d", len(changed))
	}
	if dev2.Stats().SyncsRun == 0 {
		t.Error("sync counter")
	}
}

func TestHandlePushTriggersSync(t *testing.T) {
	srv, authSvc := newServer(t)
	dev1 := connected(t, srv, authSvc, 50)
	dev2 := connected(t, srv, authSvc, 50)
	root, _ := dev1.RootVolume()
	h := protocol.HashBytes([]byte("pushme"))
	if _, _, err := dev1.UploadSized(root, 0, "p.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	// dev2 shares the server process, so the push is immediate.
	select {
	case p := <-dev2.Pushes():
		changed, err := dev2.HandlePush(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(changed) != 1 {
			t.Errorf("changed = %d", len(changed))
		}
	case <-time.After(5 * time.Second):
		// Generous bound: the push is delivered in-process, but CI runners
		// under -race can stall goroutines long enough to flake a 1s wait.
		t.Fatal("no push")
	}
	if dev2.Stats().PushesSeen == 0 {
		t.Error("push counter")
	}
	// A stale push (old generation) must not trigger a sync.
	before := dev2.Stats().SyncsRun
	if _, err := dev2.HandlePush(&protocol.Push{Event: protocol.PushVolumeChanged, Volume: root, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if dev2.Stats().SyncsRun != before {
		t.Error("stale push should not sync")
	}
}

func TestFlateSize(t *testing.T) {
	compressible := make([]byte, 10000) // zeros compress well
	if got := flateSize(compressible); got >= 10000 || got == 0 {
		t.Errorf("flateSize(zeros) = %d", got)
	}
	if got := flateSize(nil); got != 0 && got > 16 {
		t.Errorf("flateSize(nil) = %d", got)
	}
}

func TestServiceTimeAccumulates(t *testing.T) {
	srv, authSvc := newServer(t)
	token, _ := authSvc.Issue(60)
	tr := NewDirectTransport(FixedServer(srv), nil)
	cli := New(tr)
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	root, _ := cli.RootVolume()
	h := protocol.HashBytes([]byte("svc"))
	if _, _, err := cli.UploadSized(root, 0, "s.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	if tr.ServiceTime() <= 0 {
		t.Error("service time should accumulate")
	}
	if tr.Session() == nil {
		t.Error("session should be live")
	}
}

// TestStatusClassificationCoversAllStatuses is the table-driven audit of
// satellite concern #1: for every status the server can put on the wire, the
// client's reaction must match the server's semantics — per-op failures must
// not be treated as connection-fatal and vice versa. protocol.Statuses()
// covers the whole vocabulary, so adding a status without classifying it
// here fails the length check.
func TestStatusClassificationCoversAllStatuses(t *testing.T) {
	want := map[protocol.Status]statusClass{
		protocol.StatusOK: classSuccess,
		// Transient server-side conditions: same session, retry later.
		protocol.StatusUnavailable: classRetryable,
		protocol.StatusOverloaded:  classRetryable,
		protocol.StatusCancelled:   classRetryable,
		// The session is gone (or never existed): only a reconnect helps.
		protocol.StatusAuthFailed: classSessionFatal,
		// Per-op failures: resending the same request cannot succeed, but
		// the session lives on.
		protocol.StatusNotFound:   classPermanent,
		protocol.StatusExists:     classPermanent,
		protocol.StatusPermission: classPermanent,
		protocol.StatusBadRequest: classPermanent,
		protocol.StatusConflict:   classPermanent,
		protocol.StatusQuota:      classPermanent,
	}
	all := protocol.Statuses()
	if len(want) != len(all) {
		t.Fatalf("classification table covers %d of %d statuses", len(want), len(all))
	}
	for _, s := range all {
		if got := classifyStatus(s); got != want[s] {
			t.Errorf("classifyStatus(%v) = %d, want %d", s, got, want[s])
		}
	}
	// Future statuses default to permanent: fail the op, keep the session.
	if got := classifyStatus(protocol.Status(200)); got != classPermanent {
		t.Errorf("unknown status classified %d, want permanent", got)
	}
}

// scriptedTransport serves canned statuses and records what the client sent.
type scriptedTransport struct {
	serve func(i int, req *protocol.Request) protocol.Status
	reqs  []protocol.Request // shallow copies (Op/Attempt/Delay)
}

func (s *scriptedTransport) Do(req *protocol.Request) (*protocol.Response, error) {
	s.reqs = append(s.reqs, *req)
	return &protocol.Response{ID: req.ID, Status: s.serve(len(s.reqs)-1, req)}, nil
}
func (s *scriptedTransport) Pushes() <-chan *protocol.Push { return nil }
func (s *scriptedTransport) Close() error                  { return nil }

// TestRetryTransientThenSucceed pins the retry loop: transient failures are
// resent with an increasing attempt counter and accumulating virtual
// backoff, and the eventual success counts as a retry success.
func TestRetryTransientThenSucceed(t *testing.T) {
	tr := &scriptedTransport{serve: func(i int, _ *protocol.Request) protocol.Status {
		if i < 2 {
			return protocol.StatusOverloaded
		}
		return protocol.StatusOK
	}}
	cli := New(tr)
	cli.Retry = Retry{Max: 3, Backoff: 2 * time.Second}
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping should succeed on third attempt: %v", err)
	}
	if len(tr.reqs) != 3 {
		t.Fatalf("attempts = %d, want 3", len(tr.reqs))
	}
	for i, req := range tr.reqs {
		if int(req.Attempt) != i {
			t.Errorf("attempt %d stamped %d", i, req.Attempt)
		}
	}
	if tr.reqs[0].Delay != 0 || tr.reqs[1].Delay != 2*time.Second || tr.reqs[2].Delay != 6*time.Second {
		t.Errorf("backoff delays = %v %v %v, want 0s 2s 6s",
			tr.reqs[0].Delay, tr.reqs[1].Delay, tr.reqs[2].Delay)
	}
	st := cli.Stats()
	if st.Retries != 2 || st.RetrySuccesses != 1 || st.OpErrors != 0 {
		t.Errorf("stats = %+v, want 2 retries, 1 retry success, 0 errors", st)
	}
}

// TestRetryBudgetExhausted pins the bound: Max retries then give up with the
// last status.
func TestRetryBudgetExhausted(t *testing.T) {
	tr := &scriptedTransport{serve: func(int, *protocol.Request) protocol.Status {
		return protocol.StatusUnavailable
	}}
	cli := New(tr)
	cli.Retry = Retry{Max: 2, Backoff: time.Second}
	err := cli.Ping()
	if !errors.Is(err, protocol.ErrUnavailable) {
		t.Fatalf("err = %v, want unavailable", err)
	}
	if len(tr.reqs) != 3 {
		t.Errorf("attempts = %d, want 1 + 2 retries", len(tr.reqs))
	}
	st := cli.Stats()
	if st.Retries != 2 || st.RetrySuccesses != 0 || st.OpErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestNoRetryForPermanentOrSessionFatal pins the classification split: a
// permanent failure and a session-level failure are never resent, with or
// without a retry budget.
func TestNoRetryForPermanentOrSessionFatal(t *testing.T) {
	for _, status := range []protocol.Status{protocol.StatusNotFound, protocol.StatusAuthFailed} {
		tr := &scriptedTransport{serve: func(int, *protocol.Request) protocol.Status { return status }}
		cli := New(tr)
		cli.Retry = Retry{Max: 5}
		err := cli.Ping()
		if !errors.Is(err, status.Err()) {
			t.Fatalf("status %v: err = %v", status, err)
		}
		if len(tr.reqs) != 1 {
			t.Errorf("status %v: attempts = %d, want 1", status, len(tr.reqs))
		}
	}
}

// TestZeroRetryPolicyPreservesBehavior pins the default: without a budget
// the first transient failure is final — the faithful §3.3 client.
func TestZeroRetryPolicyPreservesBehavior(t *testing.T) {
	tr := &scriptedTransport{serve: func(int, *protocol.Request) protocol.Status {
		return protocol.StatusUnavailable
	}}
	cli := New(tr)
	if err := cli.Ping(); !errors.Is(err, protocol.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if len(tr.reqs) != 1 {
		t.Errorf("attempts = %d, want 1", len(tr.reqs))
	}
}

// TestConnectSurvivesInitFlowFailure pins the satellite-1 fix: a per-op
// failure in the post-auth listing flow must not be treated as a failed
// connection. The session stays up and Connect reports success.
func TestConnectSurvivesInitFlowFailure(t *testing.T) {
	tr := &scriptedTransport{serve: func(_ int, req *protocol.Request) protocol.Status {
		if req.Op == protocol.OpAuthenticate {
			return protocol.StatusOK
		}
		return protocol.StatusUnavailable // every listing call fails
	}}
	cli := New(tr)
	if err := cli.Connect("tok"); err != nil {
		t.Fatalf("Connect treated a per-op failure as connection-fatal: %v", err)
	}
	if cli.Stats().OpErrors != 2 {
		t.Errorf("op errors = %d, want ListVolumes + ListShares", cli.Stats().OpErrors)
	}
}

// TestConnectStillFatalOnSessionLossOrDeadTransport bounds the tolerance: a
// session-fatal status on a listing leg (the session was revoked between
// Authenticate and ListVolumes) or a transport that dies mid-flow must
// still abort Connect — only per-op failures are survivable.
func TestConnectStillFatalOnSessionLossOrDeadTransport(t *testing.T) {
	tr := &scriptedTransport{serve: func(_ int, req *protocol.Request) protocol.Status {
		if req.Op == protocol.OpAuthenticate {
			return protocol.StatusOK
		}
		return protocol.StatusAuthFailed // session gone underneath us
	}}
	if err := New(tr).Connect("tok"); !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("session loss on the listing leg: err = %v, want auth failed", err)
	}

	dead := &dyingTransport{}
	if err := New(dead).Connect("tok"); !errors.Is(err, ErrClosed) {
		t.Errorf("dead transport mid-flow: err = %v, want ErrClosed", err)
	}
}

// dyingTransport authenticates, then fails at the transport level.
type dyingTransport struct{ calls int }

func (d *dyingTransport) Do(req *protocol.Request) (*protocol.Response, error) {
	d.calls++
	if req.Op == protocol.OpAuthenticate {
		return &protocol.Response{ID: req.ID, Status: protocol.StatusOK}, nil
	}
	return nil, ErrClosed
}
func (d *dyingTransport) Pushes() <-chan *protocol.Push { return nil }
func (d *dyingTransport) Close() error                  { return nil }

// TestDirectTransportAppliesVirtualBackoff proves the simulator leg of
// retry-with-backoff: a request carrying Delay is handled at clock+Delay, so
// the server (and its deterministic fault plan) sees a later virtual instant.
func TestDirectTransportAppliesVirtualBackoff(t *testing.T) {
	srv, authSvc := newServer(t)
	var events []apiserver.Event
	srv.AddObserver(func(e apiserver.Event) { events = append(events, e) })
	t0 := time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)
	tr := NewDirectTransport(FixedServer(srv), func() time.Time { return t0 })
	cli := New(tr)
	token, _ := authSvc.Issue(80)
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Do(&protocol.Request{Op: protocol.OpListVolumes, Delay: 7 * time.Second}); err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if !last.Start.Equal(t0.Add(7 * time.Second)) {
		t.Errorf("delayed request handled at %v, want %v", last.Start, t0.Add(7*time.Second))
	}
}

func TestTransportClosedBehavior(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 70)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	// Non-auth requests on a session-less transport fail with auth status.
	if err := cli.Ping(); err == nil {
		t.Error("ping after close should fail")
	}
}
