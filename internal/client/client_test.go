package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"u1/internal/apiserver"
	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/metadata"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

// newServer builds a single API server with its dependencies for direct use.
func newServer(t *testing.T) (*apiserver.Server, *auth.Service) {
	t.Helper()
	store := metadata.New(metadata.Config{Shards: 4})
	authSvc := auth.New(auth.Config{Seed: 1})
	srv := apiserver.New(apiserver.Config{Name: "t", Procs: 2}, apiserver.Deps{
		RPC:      rpc.NewServer(store, rpc.Config{Seed: 1}),
		Auth:     authSvc,
		Blob:     blob.New(blob.Config{}),
		Broker:   notify.NewBroker(),
		Transfer: blob.DefaultTransferModel(),
	})
	return srv, authSvc
}

func connected(t *testing.T, srv *apiserver.Server, authSvc *auth.Service, user protocol.UserID) *Client {
	t.Helper()
	token, err := authSvc.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	return cli
}

func TestConnectInitFlow(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 1)
	defer cli.Close()
	if cli.User() != 1 || cli.Session() == 0 {
		t.Errorf("user=%v session=%v", cli.User(), cli.Session())
	}
	root, ok := cli.RootVolume()
	if !ok || root == 0 {
		t.Fatal("no root volume after connect")
	}
	if _, ok := cli.Mirror(root); !ok {
		t.Error("root volume not mirrored")
	}
}

func TestConnectBadToken(t *testing.T) {
	srv, _ := newServer(t)
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	err := cli.Connect("bogus")
	if !errors.Is(err, protocol.ErrAuthFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestDisconnectReconnectKeepsMirror(t *testing.T) {
	srv, authSvc := newServer(t)
	token, _ := authSvc.Issue(5)
	cli := New(NewDirectTransport(FixedServer(srv), nil))
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	root, _ := cli.RootVolume()
	h := protocol.HashBytes([]byte("x"))
	if _, _, err := cli.UploadSized(root, 0, "a.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	firstSession := cli.Session()
	if err := cli.Disconnect(); err != nil {
		t.Fatal(err)
	}
	// Reconnect: a fresh session, but local mirrors persist and the sync
	// from the retained generation returns nothing new.
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	if cli.Session() == firstSession {
		t.Error("reconnect should open a new session")
	}
	changed, err := cli.Sync(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("nothing changed server-side, got %d", len(changed))
	}
	// The volume root dir is implicit (generation 0, never in the delta
	// log); the mirror holds the one uploaded file.
	m, _ := cli.Mirror(root)
	if len(m.Nodes) != 1 {
		t.Errorf("mirror nodes = %d", len(m.Nodes))
	}
}

func TestUploadSizedAndDedupStats(t *testing.T) {
	srv, authSvc := newServer(t)
	a := connected(t, srv, authSvc, 10)
	b := connected(t, srv, authSvc, 11)
	rootA, _ := a.RootVolume()
	rootB, _ := b.RootVolume()

	h := protocol.HashBytes([]byte("shared-content"))
	if _, reused, err := a.UploadSized(rootA, 0, "one.bin", h, 100, 80); err != nil || reused {
		t.Fatalf("first upload reused=%v err=%v", reused, err)
	}
	if _, reused, err := b.UploadSized(rootB, 0, "two.bin", h, 100, 80); err != nil || !reused {
		t.Fatalf("second upload reused=%v err=%v", reused, err)
	}
	if st := b.Stats(); st.DedupHits != 1 || st.Uploads != 1 || st.BytesUp != 0 {
		t.Errorf("stats = %+v (dedup hit must not count bytes)", st)
	}
}

func TestBeginUploadLeavesJob(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 20)
	root, _ := cli.RootVolume()
	up, reused, err := cli.BeginUpload(root, 0, "partial.iso", protocol.HashBytes([]byte("p")), 30<<20)
	if err != nil || reused || up == 0 {
		t.Fatalf("begin: up=%v reused=%v err=%v", up, reused, err)
	}
	// Nothing committed: the file node exists but has no content.
	m, _ := cli.Mirror(root)
	for _, n := range m.Nodes {
		if n.Kind == protocol.KindFile && !n.Hash.IsZero() {
			t.Error("no content should be committed")
		}
	}
}

func TestMoveAndUnlinkUpdateMirror(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 30)
	root, _ := cli.RootVolume()
	dir, err := cli.Mkdir(root, 0, "d")
	if err != nil {
		t.Fatal(err)
	}
	h := protocol.HashBytes([]byte("f"))
	node, _, err := cli.UploadSized(root, dir.ID, "f.txt", h, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := cli.Move(root, node.ID, 0, "g.txt")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Name != "g.txt" {
		t.Errorf("moved = %+v", moved)
	}
	if err := cli.Unlink(root, node.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Download(root, node.ID); err == nil {
		t.Error("download after unlink should fail")
	}
}

func TestSyncAppliesRemoteChanges(t *testing.T) {
	srv, authSvc := newServer(t)
	dev1 := connected(t, srv, authSvc, 40)
	dev2 := connected(t, srv, authSvc, 40)
	root, _ := dev1.RootVolume()
	for i := 0; i < 5; i++ {
		h := protocol.HashBytes([]byte{byte(i)})
		if _, _, err := dev1.UploadSized(root, 0, fmt.Sprintf("f%d", i), h, 10, 8); err != nil {
			t.Fatal(err)
		}
	}
	changed, err := dev2.Sync(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 5 {
		t.Errorf("changed = %d", len(changed))
	}
	if dev2.Stats().SyncsRun == 0 {
		t.Error("sync counter")
	}
}

func TestHandlePushTriggersSync(t *testing.T) {
	srv, authSvc := newServer(t)
	dev1 := connected(t, srv, authSvc, 50)
	dev2 := connected(t, srv, authSvc, 50)
	root, _ := dev1.RootVolume()
	h := protocol.HashBytes([]byte("pushme"))
	if _, _, err := dev1.UploadSized(root, 0, "p.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	// dev2 shares the server process, so the push is immediate.
	select {
	case p := <-dev2.Pushes():
		changed, err := dev2.HandlePush(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(changed) != 1 {
			t.Errorf("changed = %d", len(changed))
		}
	case <-time.After(5 * time.Second):
		// Generous bound: the push is delivered in-process, but CI runners
		// under -race can stall goroutines long enough to flake a 1s wait.
		t.Fatal("no push")
	}
	if dev2.Stats().PushesSeen == 0 {
		t.Error("push counter")
	}
	// A stale push (old generation) must not trigger a sync.
	before := dev2.Stats().SyncsRun
	if _, err := dev2.HandlePush(&protocol.Push{Event: protocol.PushVolumeChanged, Volume: root, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if dev2.Stats().SyncsRun != before {
		t.Error("stale push should not sync")
	}
}

func TestFlateSize(t *testing.T) {
	compressible := make([]byte, 10000) // zeros compress well
	if got := flateSize(compressible); got >= 10000 || got == 0 {
		t.Errorf("flateSize(zeros) = %d", got)
	}
	if got := flateSize(nil); got != 0 && got > 16 {
		t.Errorf("flateSize(nil) = %d", got)
	}
}

func TestServiceTimeAccumulates(t *testing.T) {
	srv, authSvc := newServer(t)
	token, _ := authSvc.Issue(60)
	tr := NewDirectTransport(FixedServer(srv), nil)
	cli := New(tr)
	if err := cli.Connect(token); err != nil {
		t.Fatal(err)
	}
	root, _ := cli.RootVolume()
	h := protocol.HashBytes([]byte("svc"))
	if _, _, err := cli.UploadSized(root, 0, "s.txt", h, 10, 8); err != nil {
		t.Fatal(err)
	}
	if tr.ServiceTime() <= 0 {
		t.Error("service time should accumulate")
	}
	if tr.Session() == nil {
		t.Error("session should be live")
	}
}

func TestTransportClosedBehavior(t *testing.T) {
	srv, authSvc := newServer(t)
	cli := connected(t, srv, authSvc, 70)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	// Non-auth requests on a session-less transport fail with auth status.
	if err := cli.Ping(); err == nil {
		t.Error("ping after close should fail")
	}
}
