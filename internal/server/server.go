// Package server composes the full U1 back-end of Fig. 1 into one runnable
// cluster: the sharded metadata store, the RPC/DAL tier, the S3-like data
// store, the authentication service, the notification broker, and a fleet of
// API server machines behind a least-loaded gateway. The deployment defaults
// mirror the paper: 6 API machines with 8–16 processes each, a 10-shard
// metadata cluster, one broker, one auth service.
package server

import (
	"fmt"
	"net"
	"time"

	"u1/internal/apiserver"
	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/faults"
	"u1/internal/gateway"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/rpc"
	"u1/internal/wal"
)

// DefaultMachines are the API server machine names. The paper's trace shows
// lognames like production-whitecurrant-23-20140128; the rest of the fleet is
// named in the same spirit.
var DefaultMachines = []string{
	"whitecurrant", "blackcurrant", "gooseberry",
	"cranberry", "elderberry", "boysenberry",
}

// Config parameterizes a cluster.
type Config struct {
	// Machines names the API servers (default: DefaultMachines).
	Machines []string
	// ProcsPerMachine is the API process count per machine (default 12,
	// inside the paper's 8–16 band).
	ProcsPerMachine int
	// Shards is the metadata shard count (default 10).
	Shards int
	// GatewayShards is the number of independently locked balancer shards in
	// the gateway proxy. Values > 1 enable power-of-two-choices placement
	// between shard heaps, which scales placement throughput with cores. 0
	// derives the count from fleet size — one shard per 8 backend machines,
	// minimum 1 (the paper's 6-machine default still yields the exact global
	// least-loaded rule); an explicit value is authoritative.
	GatewayShards int
	// DeltaLogLimit bounds per-volume delta logs (0 → metadata default;
	// negative disables the logs entirely, see metadata.Config).
	DeltaLogLimit int
	// RPCProcs is the DAL worker count (default 48).
	RPCProcs int
	// AuthFailureRate injects SSO failures (paper: 0.0276).
	AuthFailureRate float64
	// FaultPlan injects deterministic per-op failures on every API server
	// (nil disables; see faults.Plan for the (Seed, user, op, now) contract).
	FaultPlan *faults.Plan
	// AdmitWatermark enables per-op-class load shedding on every API server:
	// the per-process admitted-requests-per-minute watermark past which data
	// operations are refused with StatusOverloaded (0 disables).
	AdmitWatermark int
	// SSOAdmitRate enables the SSO-tier token bucket: one fleet-shared
	// bucket (there is one SSO tier, not one per machine) admitting
	// Authenticate requests at this sustained rate in requests per second of
	// virtual time — fractional rates fit the simulator's compressed scale —
	// and shedding the excess with StatusOverloaded at the API edge.
	// 0 disables (Authenticate is never shed, the pre-scenario behavior).
	SSOAdmitRate float64
	// SSOAdmitBurst is the bucket capacity (how deep a login burst is
	// absorbed before shedding starts). 0 with a nonzero rate defaults to 1.
	SSOAdmitBurst float64
	// AuthCapacity models SSO back-end overload: the sustained
	// authentication throughput in requests/sec (over auth.CapacityWindow)
	// past which the tier's goodput collapses and requests fail for everyone
	// (see auth.Config.Capacity). 0 disables.
	AuthCapacity float64
	// InlineData makes transfers carry real bytes (TCP mode); off for
	// simulation.
	InlineData bool
	// RealSleep makes RPCs take their sampled service time in wall time.
	RealSleep bool
	// Seed drives all stochastic models.
	Seed int64
	// Metrics is the cluster-wide observability registry. nil creates a
	// fresh one; every tier of the Fig. 1 deployment records into it and it
	// is exposed as Cluster.Metrics.
	Metrics *metrics.Registry
	// Durability, when non-empty, roots the metadata store's durable tier in
	// this directory: per-shard write-ahead journals plus snapshots, with
	// recovery on open. Empty keeps the store in-memory.
	Durability string
	// FsyncPolicy selects when journal appends reach stable storage (and the
	// deterministic sync cost charged to mutating requests). The zero value
	// is wal.FsyncPerOp. Ignored unless Durability is set.
	FsyncPolicy wal.Policy
	// SnapshotEvery is the per-shard journal record count between snapshots
	// (0 → metadata.DefaultSnapshotEvery). Ignored unless Durability is set.
	SnapshotEvery int
	// SyncCostScale multiplies the fsync policy's modeled sync cost on every
	// API server — the slow-disk degradation knob (0 means 1, unscaled).
	// Ignored unless Durability is set.
	SyncCostScale float64
	// Regions partitions the metadata shards into contiguous groups with
	// asynchronous cross-region replication (≤ 1 disables; see
	// metadata.Config.Regions).
	Regions int
	// ReplicationDelay is the cross-region replication delay in epochs
	// (metadata.Config.ReplicationDelay). Ignored unless Regions > 1.
	ReplicationDelay int
	// EventualReads serves cross-region reads from the reader region's
	// replica instead of the owner shard (metadata.Config.EventualReads).
	EventualReads bool
}

// Cluster is a fully wired U1 back-end.
type Cluster struct {
	Store   *metadata.Store
	Blob    *blob.Store
	Auth    *auth.Service
	Broker  *notify.Broker
	RPC     *rpc.Server
	Servers []*apiserver.Server
	// Metrics aggregates the whole deployment's observability; snapshot it
	// (or feed it to metrics.BuildBenchReport) to see per-op latency, shard
	// balance and traffic mix live.
	Metrics *metrics.Registry

	byName        map[string]*apiserver.Server
	gatewayShards int
}

// NewCluster wires a cluster from cfg. It panics when recovering a durable
// metadata store fails; deployments reopening real state use OpenCluster.
func NewCluster(cfg Config) *Cluster {
	c, err := OpenCluster(cfg)
	if err != nil {
		panic(fmt.Sprintf("server: opening cluster: %v", err))
	}
	return c
}

// OpenCluster wires a cluster from cfg, surfacing metadata recovery errors
// when cfg.Durability names a directory with unreadable state.
func OpenCluster(cfg Config) (*Cluster, error) {
	if len(cfg.Machines) == 0 {
		cfg.Machines = DefaultMachines
	}
	if cfg.ProcsPerMachine <= 0 {
		cfg.ProcsPerMachine = 12
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 10
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}

	store, err := metadata.Open(metadata.Config{
		Shards:           cfg.Shards,
		DeltaLogLimit:    cfg.DeltaLogLimit,
		Metrics:          reg,
		Durability:       cfg.Durability,
		FsyncPolicy:      cfg.FsyncPolicy,
		SnapshotEvery:    cfg.SnapshotEvery,
		Regions:          cfg.Regions,
		ReplicationDelay: cfg.ReplicationDelay,
		EventualReads:    cfg.EventualReads,
	})
	if err != nil {
		return nil, err
	}
	blobStore := blob.New(blob.Config{KeepData: cfg.InlineData, Metrics: reg})
	authSvc := auth.New(auth.Config{
		FailureRate: cfg.AuthFailureRate,
		Seed:        seed,
		Capacity:    cfg.AuthCapacity,
	})
	broker := notify.NewBroker()
	broker.Instrument(reg)
	rpcTier := rpc.NewServer(store, rpc.Config{
		Procs:     cfg.RPCProcs,
		Seed:      seed,
		RealSleep: cfg.RealSleep,
		Metrics:   reg,
	})

	if cfg.GatewayShards <= 0 {
		// Derive from fleet size: one balancer shard per 8 backend machines.
		// Small fleets (the 6-machine default included) keep the exact global
		// least-loaded rule; larger fleets shard the balancer so placement
		// scales instead of serializing on one heap lock.
		cfg.GatewayShards = (len(cfg.Machines) + 7) / 8
		if cfg.GatewayShards < 1 {
			cfg.GatewayShards = 1
		}
	}

	c := &Cluster{
		Store:         store,
		Blob:          blobStore,
		Auth:          authSvc,
		Broker:        broker,
		RPC:           rpcTier,
		Metrics:       reg,
		byName:        make(map[string]*apiserver.Server),
		gatewayShards: cfg.GatewayShards,
	}
	deps := apiserver.Deps{
		RPC:      rpcTier,
		Auth:     authSvc,
		Blob:     blobStore,
		Broker:   broker,
		Transfer: blob.DefaultTransferModel(),
		Metrics:  reg,
		Regions:  store,
		SSO:      faults.NewSSOAdmission(cfg.SSOAdmitRate, cfg.SSOAdmitBurst),
	}
	for _, name := range cfg.Machines {
		srv := apiserver.New(apiserver.Config{
			Name:           name,
			Procs:          cfg.ProcsPerMachine,
			InlineData:     cfg.InlineData,
			Faults:         cfg.FaultPlan,
			AdmitWatermark: cfg.AdmitWatermark,
			Durability:     cfg.Durability != "",
			FsyncPolicy:    cfg.FsyncPolicy,
			SyncCostScale:  cfg.SyncCostScale,
		}, deps)
		c.Servers = append(c.Servers, srv)
		c.byName[name] = srv
	}
	return c, nil
}

// Close flushes the cluster's durable state: the metadata store snapshots
// every shard and closes its journals. In-memory clusters return nil.
func (c *Cluster) Close() error {
	return c.Store.Close()
}

// Server returns an API server by machine name.
func (c *Cluster) Server(name string) (*apiserver.Server, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// LeastLoaded returns the API server with the fewest live sessions — the
// gateway's placement rule (§4). Ties break by fleet order for determinism.
func (c *Cluster) LeastLoaded() *apiserver.Server {
	best := c.Servers[0]
	bestN := best.SessionCount()
	for _, s := range c.Servers[1:] {
		if n := s.SessionCount(); n < bestN {
			best, bestN = s, n
		}
	}
	return best
}

// AddAPIObserver registers an API event observer on every server.
func (c *Cluster) AddAPIObserver(o apiserver.Observer) {
	for _, s := range c.Servers {
		s.AddObserver(o)
	}
}

// AddRPCObserver registers an RPC span observer.
func (c *Cluster) AddRPCObserver(o rpc.Observer) {
	c.RPC.AddObserver(o)
}

// PumpNotifications drains every server's broker queue once, delivering
// queued cross-server pushes. The simulator calls this between events; the
// TCP deployment uses RunNotifier goroutines instead.
func (c *Cluster) PumpNotifications() int {
	var n int
	for _, s := range c.Servers {
		n += s.DeliverQueued()
	}
	return n
}

// DropCachedToken evicts a token from every API server's validation cache —
// the fleet-wide flush operators run alongside credential revocation, so a
// revoked token stops authenticating immediately instead of after the cache
// TTL (and independently of which servers happened to cache it).
func (c *Cluster) DropCachedToken(token string) {
	for _, s := range c.Servers {
		s.DropToken(token)
	}
}

// SweepUploadJobs runs the weekly uploadjob/multipart garbage collection.
func (c *Cluster) SweepUploadJobs(now time.Time) (jobs, blobs int) {
	jobs = c.Store.SweepUploadJobs(now)
	for _, id := range c.Blob.AbandonedUploads(now.Add(-metadata.UploadJobMaxAge)) {
		if err := c.Blob.AbortMultipartUpload(id); err == nil {
			blobs++
		}
	}
	return jobs, blobs
}

// TCPCluster is a cluster listening on real sockets behind a gateway proxy.
type TCPCluster struct {
	*Cluster
	Proxy     *gateway.Proxy
	GateAddr  net.Addr
	listeners []net.Listener
	done      chan struct{}
}

// ListenAndServe starts every API server on a loopback listener plus the
// gateway proxy in front of them, returning once all sockets are bound.
// Addr "127.0.0.1:0" picks free ports (tests); a fixed addr serves for real.
func (c *Cluster) ListenAndServe(gatewayAddr string) (*TCPCluster, error) {
	tc := &TCPCluster{Cluster: c, done: make(chan struct{})}
	backends := make(map[string]string, len(c.Servers))
	for _, s := range c.Servers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tc.Close()
			return nil, fmt.Errorf("server: listening for %s: %w", s.Name(), err)
		}
		tc.listeners = append(tc.listeners, ln)
		backends[s.Name()] = ln.Addr().String()
		go s.Serve(ln) //nolint:errcheck
		go s.RunNotifier(tc.done)
	}
	gln, err := net.Listen("tcp", gatewayAddr)
	if err != nil {
		tc.Close()
		return nil, fmt.Errorf("server: listening for gateway: %w", err)
	}
	tc.listeners = append(tc.listeners, gln)
	tc.GateAddr = gln.Addr()
	tc.Proxy = gateway.NewShardedProxy(c.gatewayShards, backends)
	tc.Proxy.Balancer().Instrument(c.Metrics)
	go tc.Proxy.Serve(gln) //nolint:errcheck
	return tc, nil
}

// Close shuts all listeners down.
func (tc *TCPCluster) Close() {
	select {
	case <-tc.done:
	default:
		close(tc.done)
	}
	for _, ln := range tc.listeners {
		ln.Close()
	}
}
