package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"u1/internal/apiserver"
	"u1/internal/client"
	"u1/internal/protocol"
)

// newTCPCluster boots a 3-machine cluster on loopback sockets.
func newTCPCluster(t *testing.T) (*TCPCluster, *Cluster) {
	t.Helper()
	c := NewCluster(Config{
		Machines:        []string{"alpha", "beta", "gamma"},
		ProcsPerMachine: 4,
		Shards:          4,
		InlineData:      true,
		Seed:            7,
	})
	tc, err := c.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	return tc, c
}

func dialClient(t *testing.T, tc *TCPCluster, user protocol.UserID) *client.Client {
	t.Helper()
	token, err := tc.Auth.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := client.DialTCP(tc.GateAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(tr)
	if err := cl.Connect(token); err != nil {
		t.Fatalf("connect user %v: %v", user, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestTCPEndToEndUploadDownload(t *testing.T) {
	tc, _ := newTCPCluster(t)
	cl := dialClient(t, tc, 1)

	root, ok := cl.RootVolume()
	if !ok {
		t.Fatal("no root volume")
	}
	dir, err := cl.Mkdir(root, 0, "docs")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("u1 measurement study "), 1000)
	node, reused, err := cl.Upload(root, dir.ID, "paper.txt", content)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("first upload cannot be a dedup hit")
	}
	got, err := cl.Download(root, node.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("downloaded %d bytes, want %d", len(got), len(content))
	}
	st := cl.Stats()
	if st.Uploads != 1 || st.Downloads != 1 || st.BytesUp != uint64(len(content)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPMultipartLargeFile(t *testing.T) {
	tc, c := newTCPCluster(t)
	cl := dialClient(t, tc, 2)
	root, _ := cl.RootVolume()

	// 12 MB crosses the 5 MB part size: full uploadjob + multipart path.
	big := bytes.Repeat([]byte{0xA5, 0x5A, 1, 2}, 3<<20)
	node, reused, err := cl.Upload(root, 0, "big.iso", big)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Error("unexpected dedup hit")
	}
	got, err := cl.Download(root, node.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Errorf("multipart round trip corrupted: %d vs %d bytes", len(got), len(big))
	}
	bs := c.Blob.Stats()
	if bs.MultipartCompleted != 1 || bs.PartsUploaded != 3 {
		t.Errorf("blob stats = %+v", bs)
	}
}

func TestTCPCrossUserDedup(t *testing.T) {
	tc, c := newTCPCluster(t)
	a := dialClient(t, tc, 10)
	b := dialClient(t, tc, 11)

	content := bytes.Repeat([]byte("very popular song"), 4096)
	rootA, _ := a.RootVolume()
	if _, reused, err := a.Upload(rootA, 0, "song.mp3", content); err != nil || reused {
		t.Fatalf("first upload: reused=%v err=%v", reused, err)
	}
	rootB, _ := b.RootVolume()
	_, reused, err := b.Upload(rootB, 0, "copy.mp3", content)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Error("second user's identical upload must be deduplicated")
	}
	if got := b.Stats().DedupHits; got != 1 {
		t.Errorf("dedup hits = %d", got)
	}
	cs := c.Store.Contents()
	if cs.UniqueContents != 1 || cs.DedupRatio() != 0.5 {
		t.Errorf("content stats = %+v ratio=%v", cs, cs.DedupRatio())
	}
}

func TestTCPTwoDevicesPushSync(t *testing.T) {
	tc, _ := newTCPCluster(t)
	// Two desktop clients of the same user — e.g. home and office machines.
	dev1 := dialClient(t, tc, 20)
	dev2 := dialClient(t, tc, 20)
	dev2.AutoFetch = true

	root, _ := dev1.RootVolume()
	content := []byte("note to self, synced across devices")
	node, _, err := dev1.Upload(root, 0, "note.txt", content)
	if err != nil {
		t.Fatal(err)
	}

	// dev2 must receive the push and converge after handling it.
	select {
	case p := <-dev2.Pushes():
		if p.Event != protocol.PushVolumeChanged || p.Volume != root {
			t.Fatalf("push = %+v", p)
		}
		if _, err := dev2.HandlePush(p); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no push within 5s")
	}
	m, ok := dev2.Mirror(root)
	if !ok {
		t.Fatal("no mirror")
	}
	if n, ok := m.Nodes[node.ID]; !ok || n.Size != uint64(len(content)) {
		t.Errorf("dev2 mirror missing the uploaded file: %+v", m.Nodes)
	}
	if dev2.Stats().BytesDown != uint64(len(content)) {
		t.Errorf("dev2 should have auto-fetched the content: %+v", dev2.Stats())
	}
}

func TestTCPSharingFlow(t *testing.T) {
	tc, _ := newTCPCluster(t)
	owner := dialClient(t, tc, 30)
	guest := dialClient(t, tc, 31)

	udf, err := owner.CreateUDF("~/Project")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := owner.Upload(udf.ID, 0, "spec.doc", []byte("spec v1")); err != nil {
		t.Fatal(err)
	}
	share, err := owner.CreateShare(udf.ID, 31, "project", false)
	if err != nil {
		t.Fatal(err)
	}

	// The guest gets the share offer pushed, accepts, syncs, reads.
	select {
	case p := <-guest.Pushes():
		if p.Event != protocol.PushShareOffered {
			t.Fatalf("push = %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no share push within 5s")
	}
	if _, err := guest.AcceptShare(share.ID); err != nil {
		t.Fatal(err)
	}
	changed, err := guest.Sync(udf.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0].Name != "spec.doc" {
		t.Errorf("changed = %+v", changed)
	}
	data, err := guest.Download(udf.ID, changed[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "spec v1" {
		t.Errorf("guest read %q", data)
	}
}

func TestTCPAuthRejected(t *testing.T) {
	tc, _ := newTCPCluster(t)
	tr, err := client.DialTCP(tc.GateAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cl := client.New(tr)
	if err := cl.Connect("not-a-token"); err == nil {
		t.Fatal("bogus token must be rejected")
	}
}

// TestTCPReauthRejected pins the one-session-per-connection rule on the wire
// path: a second Authenticate frame on a live connection is a protocol
// violation, not a silent session replacement (which would leak the first
// session until the weekly sweep).
func TestTCPReauthRejected(t *testing.T) {
	tc, c := newTCPCluster(t)
	token, err := tc.Auth.Issue(42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := client.DialTCP(tc.GateAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cl := client.New(tr)
	if err := cl.Connect(token); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(token); err == nil {
		t.Fatal("re-auth on a live connection must be rejected")
	}
	var sessions int
	for _, s := range c.Servers {
		sessions += s.SessionCount()
	}
	if sessions != 1 {
		t.Errorf("sessions after rejected re-auth = %d, want 1", sessions)
	}
}

// TestDirectReconnectClosesPreviousSession pins the direct transport's
// reconnect semantics: authenticating again on the same transport models a
// dropped-and-redialed desktop client, so the previous session must be
// closed server-side, not leaked.
func TestDirectReconnectClosesPreviousSession(t *testing.T) {
	c := NewCluster(Config{Machines: []string{"solo"}, Shards: 2, Seed: 5})
	token, err := c.Auth.Issue(7)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(client.NewDirectTransport(c.LeastLoaded, nil))
	if err := cl.Connect(token); err != nil {
		t.Fatal(err)
	}
	if err := cl.Connect(token); err != nil {
		t.Fatalf("reconnect without disconnect: %v", err)
	}
	if n := c.Servers[0].SessionCount(); n != 1 {
		t.Errorf("sessions after reconnect = %d, want 1 (previous session leaked)", n)
	}
	cl.Close()
	if n := c.Servers[0].SessionCount(); n != 0 {
		t.Errorf("sessions after close = %d, want 0", n)
	}
}

// TestTCPShardedGateway drives real connections through a gateway running
// more than one balancer shard: the power-of-two-choices proxy must place,
// serve and drain sessions exactly like the single-shard rule does.
func TestTCPShardedGateway(t *testing.T) {
	c := NewCluster(Config{
		Machines:        []string{"alpha", "beta", "gamma", "delta"},
		ProcsPerMachine: 2,
		Shards:          4,
		GatewayShards:   2,
		InlineData:      true,
		Seed:            7,
	})
	tc, err := c.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	if got := tc.Proxy.Balancer().NumShards(); got != 2 {
		t.Fatalf("proxy balancer shards = %d, want 2", got)
	}
	for u := protocol.UserID(300); u < 308; u++ {
		cl := dialClient(t, tc, u)
		root, ok := cl.RootVolume()
		if !ok {
			t.Fatalf("user %d has no root volume", u)
		}
		if _, _, err := cl.Upload(root, 0, "f.txt", []byte("sharded gateway payload")); err != nil {
			t.Fatalf("upload through sharded gateway: %v", err)
		}
	}
	var active int
	for _, n := range tc.Proxy.Balancer().Active() {
		active += n
	}
	if active != 8 {
		t.Errorf("balancer tracks %d active sessions, want 8", active)
	}
}

func TestTCPSessionsSpreadAcrossServers(t *testing.T) {
	tc, c := newTCPCluster(t)
	for u := protocol.UserID(100); u < 106; u++ {
		dialClient(t, tc, u)
	}
	var with int
	for _, s := range c.Servers {
		if s.SessionCount() > 0 {
			with++
		}
	}
	if with < 2 {
		t.Errorf("sessions landed on %d servers; gateway should spread them", with)
	}
}

// --- In-process (simulation-mode) cluster tests ---

func newDirectCluster(t *testing.T) *Cluster {
	t.Helper()
	return NewCluster(Config{
		Machines:        []string{"m1", "m2"},
		ProcsPerMachine: 2,
		Shards:          4,
		Seed:            13,
	})
}

func directClient(t *testing.T, c *Cluster, user protocol.UserID, clock func() time.Time) *client.Client {
	t.Helper()
	token, err := c.Auth.Issue(user)
	if err != nil {
		t.Fatal(err)
	}
	tr := client.NewDirectTransport(c.LeastLoaded, clock)
	cl := client.New(tr)
	if err := cl.Connect(token); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestDirectMeteredUpload(t *testing.T) {
	c := newDirectCluster(t)
	now := time.Unix(1390000000, 0)
	clock := func() time.Time { return now }
	cl := directClient(t, c, 1, clock)
	root, _ := cl.RootVolume()

	// Metered upload: 12 MB by size only, no bytes materialized anywhere.
	h := protocol.HashBytes([]byte("metered-content-1"))
	node, reused, err := cl.UploadSized(root, 0, "video.avi", h, 12<<20, 11<<20)
	if err != nil || reused {
		t.Fatalf("upload: reused=%v err=%v", reused, err)
	}
	if node.Size != 12<<20 {
		t.Errorf("node size = %d", node.Size)
	}
	bs := c.Blob.Stats()
	if bs.BytesHeld != 12<<20 || bs.MultipartCompleted != 1 {
		t.Errorf("blob stats = %+v", bs)
	}
	// Metered download accounts bytes without materializing.
	if _, err := cl.Download(root, node.ID); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().BytesDown; got != 12<<20 {
		t.Errorf("bytes down = %d", got)
	}
}

func TestDirectNotificationsViaPump(t *testing.T) {
	c := newDirectCluster(t)
	now := time.Unix(1390000000, 0)
	clock := func() time.Time { return now }

	// Force the two devices onto different servers so the broker path runs.
	token, _ := c.Auth.Issue(5)
	tr1 := client.NewDirectTransport(client.FixedServer(c.Servers[0]), clock)
	dev1 := client.New(tr1)
	if err := dev1.Connect(token); err != nil {
		t.Fatal(err)
	}
	tr2 := client.NewDirectTransport(client.FixedServer(c.Servers[1]), clock)
	dev2 := client.New(tr2)
	if err := dev2.Connect(token); err != nil {
		t.Fatal(err)
	}

	root, _ := dev1.RootVolume()
	h := protocol.HashBytes([]byte("x"))
	if _, _, err := dev1.UploadSized(root, 0, "f.txt", h, 100, 80); err != nil {
		t.Fatal(err)
	}

	// The cross-server push sits in m2's broker queue until pumped.
	if n := c.PumpNotifications(); n == 0 {
		t.Fatal("expected queued notifications")
	}
	select {
	case p := <-dev2.Pushes():
		if p.Event != protocol.PushVolumeChanged {
			t.Errorf("push = %+v", p)
		}
		if _, err := dev2.HandlePush(p); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("dev2 received no push after pump")
	}
	m, _ := dev2.Mirror(root)
	if len(m.Nodes) != 1 {
		t.Errorf("dev2 mirror = %+v", m.Nodes)
	}
}

func TestDirectEventObserver(t *testing.T) {
	c := newDirectCluster(t)
	var events []apiserver.Event
	c.AddAPIObserver(func(e apiserver.Event) { events = append(events, e) })
	now := time.Unix(1390000000, 0)
	cl := directClient(t, c, 9, func() time.Time { return now })
	root, _ := cl.RootVolume()
	h := protocol.HashBytes([]byte("traced"))
	if _, _, err := cl.UploadSized(root, 0, "code.java", h, 2048, 700); err != nil {
		t.Fatal(err)
	}

	// Expect: Authenticate, ListVolumes, ListShares, MakeFile, Upload.
	var ops []protocol.Op
	for _, e := range events {
		ops = append(ops, e.Op)
	}
	want := []protocol.Op{
		protocol.OpAuthenticate, protocol.OpListVolumes, protocol.OpListShares,
		protocol.OpMakeFile, protocol.OpPutContent,
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
	up := events[len(events)-1]
	if up.Size != 2048 || up.Wire != 700 || up.Ext != "java" || up.IsUpdate {
		t.Errorf("upload event = %+v", up)
	}
	if up.Duration <= 0 {
		t.Error("upload event must carry simulated service time")
	}
}

func TestDirectFileUpdateFlag(t *testing.T) {
	c := newDirectCluster(t)
	var updates int
	c.AddAPIObserver(func(e apiserver.Event) {
		if e.Op == protocol.OpPutContent && e.IsUpdate {
			updates++
		}
	})
	now := time.Unix(1390000000, 0)
	cl := directClient(t, c, 3, func() time.Time { return now })
	root, _ := cl.RootVolume()

	h1 := protocol.HashBytes([]byte("v1"))
	h2 := protocol.HashBytes([]byte("v2"))
	if _, _, err := cl.UploadSized(root, 0, "notes.doc", h1, 100, 90); err != nil {
		t.Fatal(err)
	}
	// Re-uploading the same name with a different hash is an update (§5.1).
	if _, _, err := cl.UploadSized(root, 0, "notes.doc", h2, 120, 100); err != nil {
		t.Fatal(err)
	}
	if updates != 1 {
		t.Errorf("update events = %d, want 1", updates)
	}
}

func TestDirectRescanAfterLogTruncation(t *testing.T) {
	// A tiny delta log forces the second device through the
	// RescanFromScratch path of Fig. 8.
	c := NewCluster(Config{
		Machines: []string{"m"}, Shards: 2, Seed: 3, DeltaLogLimit: 8,
	})
	now := time.Unix(1390000000, 0)
	clock := func() time.Time { return now }
	dev1 := directClient(t, c, 50, clock)
	dev2 := directClient(t, c, 50, clock) // mirrors generation 0

	root, _ := dev1.RootVolume()
	for i := 0; i < 40; i++ {
		h := protocol.HashBytes([]byte{byte(i), 1})
		if _, _, err := dev1.UploadSized(root, 0, fmt.Sprintf("f%02d.txt", i), h, 64, 50); err != nil {
			t.Fatal(err)
		}
	}
	changed, err := dev2.Sync(root)
	if err != nil {
		t.Fatal(err)
	}
	if dev2.Stats().Rescans != 1 {
		t.Errorf("rescans = %d, want 1 (delta log too short)", dev2.Stats().Rescans)
	}
	if len(changed) != 40 {
		t.Errorf("changed files = %d, want 40", len(changed))
	}
	m, _ := dev2.Mirror(root)
	if len(m.Nodes) != 41 { // 40 files + volume root dir
		t.Errorf("mirror nodes = %d", len(m.Nodes))
	}
}

func TestSweepUploadJobs(t *testing.T) {
	c := newDirectCluster(t)
	now := time.Unix(1390000000, 0)
	cl := directClient(t, c, 40, func() time.Time { return now })
	root, _ := cl.RootVolume()

	// Start a large upload but never stream the parts: laptop lid closed.
	h := protocol.HashBytes([]byte("abandoned"))
	up, reused, err := cl.BeginUpload(root, 0, "partial.bin", h, 20<<20)
	if err != nil || reused || up == 0 {
		t.Fatalf("begin: up=%v reused=%v err=%v", up, reused, err)
	}
	jobs, blobs := c.SweepUploadJobs(now.Add(10 * 24 * time.Hour))
	if jobs != 1 {
		t.Errorf("swept %d jobs, want 1", jobs)
	}
	if blobs != 1 {
		t.Errorf("aborted %d multipart uploads, want 1", blobs)
	}
}
