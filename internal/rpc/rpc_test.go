package rpc

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/protocol"
	"u1/internal/stats"
)

var t0 = time.Unix(1390000000, 0)

func newTier(t *testing.T) (*Server, protocol.VolumeInfo) {
	t.Helper()
	store := metadata.New(metadata.Config{Shards: 10})
	root, err := store.CreateUser(1)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(store, Config{Seed: 42}), root
}

func TestSpansEmitted(t *testing.T) {
	s, root := newTier(t)
	var spans []Span
	s.AddObserver(func(sp Span) { spans = append(spans, sp) })

	if _, err := s.MakeFile(1, root.ID, 0, "a.txt", t0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListVolumes(1, t0.Add(time.Second), nil); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].RPC != protocol.RPCMakeFile || spans[0].Class != protocol.ClassWrite {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[1].RPC != protocol.RPCListVolumes || spans[1].Class != protocol.ClassRead {
		t.Errorf("span1 = %+v", spans[1])
	}
	if spans[0].Service <= 0 {
		t.Error("service time must be positive")
	}
	if spans[0].Shard != s.Store().ShardFor(1) {
		t.Error("span shard should match user routing")
	}
}

func TestSpanCarriesError(t *testing.T) {
	s, root := newTier(t)
	var last Span
	s.AddObserver(func(sp Span) { last = sp })
	_, err := s.GetNode(1, root.ID, 9999, t0, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if last.Err == nil {
		t.Error("span should carry the error")
	}
}

func TestLatencyClassSeparation(t *testing.T) {
	// Cascade RPCs must be ≈10x slower than reads at the median (Fig. 13).
	m := NewPaperLatency()
	r := rand.New(rand.NewSource(1))
	sample := func(c protocol.RPCClass) float64 {
		xs := make([]float64, 4000)
		for i := range xs {
			xs[i] = m.Sample(r, c).Seconds()
		}
		return stats.Median(xs)
	}
	read, write, cascade := sample(protocol.ClassRead), sample(protocol.ClassWrite), sample(protocol.ClassCascade)
	if !(read < write && write < cascade) {
		t.Errorf("medians not ordered: read=%v write=%v cascade=%v", read, write, cascade)
	}
	if cascade/read < 10 {
		t.Errorf("cascade/read = %v, want ≥ 10", cascade/read)
	}
}

func TestLatencyLongTails(t *testing.T) {
	// Fig. 12: from 7% to 22% of RPC service times are very far from the
	// median (operationalized here as > 4x median).
	m := NewPaperLatency()
	r := rand.New(rand.NewSource(2))
	for _, class := range []protocol.RPCClass{protocol.ClassRead, protocol.ClassWrite, protocol.ClassCascade} {
		xs := make([]float64, 10000)
		for i := range xs {
			xs[i] = m.Sample(r, class).Seconds()
		}
		med := stats.Median(xs)
		var far int
		for _, x := range xs {
			if x > 4*med {
				far++
			}
		}
		frac := float64(far) / float64(len(xs))
		if frac < 0.04 || frac > 0.30 {
			t.Errorf("class %v: tail fraction %v outside the paper's band", class, frac)
		}
	}
}

func TestUploadJobRPCFlow(t *testing.T) {
	s, root := newTier(t)
	var rpcs []protocol.RPC
	s.AddObserver(func(sp Span) { rpcs = append(rpcs, sp.RPC) })

	var cost protocol.Cost
	f, err := s.MakeFile(1, root.ID, 0, "big.bin", t0, &cost)
	if err != nil {
		t.Fatal(err)
	}
	h := protocol.HashBytes([]byte("big"))
	if _, exists, _ := s.GetReusableContent(1, h, t0, &cost); exists {
		t.Fatal("content should not exist")
	}
	job, err := s.MakeUploadJob(1, root.ID, f.ID, h, 10<<20, t0, &cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetUploadJobMultipartID(1, job.ID, "mp-1", t0, &cost); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPartToUploadJob(1, job.ID, 5<<20, t0, &cost); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPartToUploadJob(1, job.ID, 5<<20, t0, &cost); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetUploadJob(1, job.ID, t0, &cost); err != nil {
		t.Fatal(err)
	}
	if expired, err := s.TouchUploadJob(1, job.ID, t0.Add(time.Minute), &cost); err != nil || expired {
		t.Fatalf("touch: %v %v", expired, err)
	}
	if _, _, _, err := s.MakeContent(1, root.ID, f.ID, h, 10<<20, t0, &cost); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteUploadJob(1, job.ID, t0, &cost); err != nil {
		t.Fatal(err)
	}
	if cost.Total() <= 0 {
		t.Error("lifecycle RPCs must charge the request's cost accumulator")
	}

	// The emitted RPC sequence matches the appendix-A lifecycle.
	want := []protocol.RPC{
		protocol.RPCMakeFile,
		protocol.RPCGetReusableContent,
		protocol.RPCMakeUploadJob,
		protocol.RPCSetUploadJobMultipartID,
		protocol.RPCAddPartToUploadJob,
		protocol.RPCAddPartToUploadJob,
		protocol.RPCGetUploadJob,
		protocol.RPCTouchUploadJob,
		protocol.RPCMakeContent,
		protocol.RPCDeleteUploadJob,
	}
	if len(rpcs) != len(want) {
		t.Fatalf("got %d rpcs %v", len(rpcs), rpcs)
	}
	for i := range want {
		if rpcs[i] != want[i] {
			t.Errorf("rpc[%d] = %v, want %v", i, rpcs[i], want[i])
		}
	}
}

func TestProcLoadDistribution(t *testing.T) {
	store := metadata.New(metadata.Config{Shards: 4})
	store.CreateUser(1)
	rootVols, _ := store.ListVolumes(1)
	s := NewServer(store, Config{Procs: 4, Seed: 3})
	for i := 0; i < 100; i++ {
		s.GetVolume(1, rootVols[0].ID, t0, nil)
	}
	loads := s.ProcLoads()
	var total uint64
	for _, l := range loads {
		total += l
	}
	if total != 100 {
		t.Errorf("total proc ops = %d", total)
	}
	for i, l := range loads {
		if l != 25 {
			t.Errorf("proc %d load = %d, want 25 (round-robin)", i, l)
		}
	}
}

func TestConcurrentCalls(t *testing.T) {
	store := metadata.New(metadata.Config{Shards: 4})
	for u := protocol.UserID(1); u <= 8; u++ {
		store.CreateUser(u)
	}
	s := NewServer(store, Config{Seed: 9})
	var mu sync.Mutex
	var n int
	s.AddObserver(func(Span) { mu.Lock(); n++; mu.Unlock() })
	var wg sync.WaitGroup
	for u := protocol.UserID(1); u <= 8; u++ {
		wg.Add(1)
		go func(u protocol.UserID) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.ListVolumes(u, t0, nil)
			}
		}(u)
	}
	wg.Wait()
	if n != 400 {
		t.Errorf("observed %d spans, want 400", n)
	}
}

func TestObserveAuth(t *testing.T) {
	s, _ := newTier(t)
	var last Span
	s.AddObserver(func(sp Span) { last = sp })
	var cost protocol.Cost
	s.ObserveAuth(1, t0, nil, &cost)
	if cost.Total() <= 0 || last.RPC != protocol.RPCGetUserIDFromToken {
		t.Errorf("auth span = %+v, cost %v", last, cost.Total())
	}
	if last.Class != protocol.ClassRead {
		t.Errorf("auth class = %v", last.Class)
	}
}

func TestRealSleep(t *testing.T) {
	store := metadata.New(metadata.Config{Shards: 2})
	store.CreateUser(1)
	fixed := fixedLatency(2 * time.Millisecond)
	s := NewServer(store, Config{RealSleep: true, Latency: fixed, Seed: 1})
	start := time.Now()
	s.ListVolumes(1, t0, nil)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("call returned in %v, want ≥ 2ms", elapsed)
	}
}

type fixedLatency time.Duration

func (f fixedLatency) Sample(*rand.Rand, protocol.RPCClass) time.Duration {
	return time.Duration(f)
}

func TestGetReusableContentErrorReachesSpan(t *testing.T) {
	// The dedup probe must thread real failures through call() like every
	// other RPC wrapper: a zero-hash probe is ErrBadRequest and has to show
	// up in the returned error, the span, and the rpc.errors counter.
	store := metadata.New(metadata.Config{Shards: 2})
	store.CreateUser(1)
	reg := metrics.NewRegistry()
	s := NewServer(store, Config{Seed: 4, Metrics: reg})
	var last Span
	s.AddObserver(func(sp Span) { last = sp })

	if _, _, err := s.GetReusableContent(1, protocol.HashBytes([]byte("x")), t0, nil); err != nil {
		t.Fatalf("probe of absent content: %v", err)
	}
	if last.Err != nil {
		t.Errorf("absent content is not an error, span carries %v", last.Err)
	}

	_, _, err := s.GetReusableContent(1, protocol.Hash{}, t0, nil)
	if !errors.Is(err, protocol.ErrBadRequest) {
		t.Fatalf("zero-hash probe: err = %v, want ErrBadRequest", err)
	}
	if !errors.Is(last.Err, protocol.ErrBadRequest) {
		t.Errorf("span.Err = %v, want ErrBadRequest", last.Err)
	}
	if n := reg.Counter("rpc.errors").Value(); n != 1 {
		t.Errorf("rpc.errors = %d, want 1", n)
	}
}

func TestPerWorkerSamplingDeterminism(t *testing.T) {
	// Same Seed + same Procs ⇒ the same service-time stream per worker.
	// Single-goroutine traffic maps call i to worker i%Procs round-robin, so
	// two identically configured tiers must sample identical durations.
	sampleOne := func(s *Server) time.Duration {
		var c protocol.Cost
		s.ObserveAuth(1, t0, nil, &c)
		return c.Total()
	}
	run := func() []time.Duration {
		store := metadata.New(metadata.Config{Shards: 4})
		store.CreateUser(1)
		s := NewServer(store, Config{Procs: 4, Seed: 77})
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = sampleOne(s)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %v vs %v — per-worker stream not reproducible", i, a[i], b[i])
		}
	}
	// A different seed must yield a different stream (the seed is live).
	store := metadata.New(metadata.Config{Shards: 4})
	store.CreateUser(1)
	s2 := NewServer(store, Config{Procs: 4, Seed: 78})
	var same int
	for i := 0; i < 64; i++ {
		if sampleOne(s2) == a[i] {
			same++
		}
	}
	if same == 64 {
		t.Error("seed 78 reproduced seed 77's stream")
	}
}

func TestParallelSampling(t *testing.T) {
	// The sampling fast path is lock-free; hammer it from many goroutines
	// (more than Procs, so workers are shared) under -race and check the
	// books balance.
	store := metadata.New(metadata.Config{Shards: 4})
	store.CreateUser(1)
	s := NewServer(store, Config{Procs: 3, Seed: 5})
	const goroutines, per = 12, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var c protocol.Cost
				s.ObserveAuth(1, t0, nil, &c)
				if c.Total() <= 0 {
					t.Error("non-positive service time")
					return
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, l := range s.ProcLoads() {
		total += l
	}
	if total != goroutines*per {
		t.Errorf("proc ops total = %d, want %d", total, goroutines*per)
	}
}

func TestDynamicObserverAttach(t *testing.T) {
	// AddObserver is copy-on-write: attaching observers while calls are in
	// flight must be race-free (run under -race), and an observer attached
	// mid-traffic must start seeing spans. This is the dynamic trace-collector
	// attach the production deployment could not do.
	store := metadata.New(metadata.Config{Shards: 4})
	store.CreateUser(1)
	s := NewServer(store, Config{Procs: 4, Seed: 6})

	const callers, per, observers = 8, 300, 16
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.ObserveAuth(1, t0, nil, nil)
			}
		}()
	}
	counts := make([]atomic.Uint64, observers)
	for i := 0; i < observers; i++ {
		i := i
		s.AddObserver(func(Span) { counts[i].Add(1) })
	}
	wg.Wait()

	// Every observer sees all spans emitted after its attachment; the last
	// few attach while traffic is in flight, so only a final quiescent call
	// is guaranteed to reach them all.
	s.ObserveAuth(1, t0, nil, nil)
	for i := range counts {
		if counts[i].Load() == 0 {
			t.Errorf("observer %d attached mid-traffic saw no spans", i)
		}
	}
}
