// Package rpc implements the DAL tier of §3.4: the RPC database workers that
// API servers call to access the metadata store. Workers translate RPC calls
// into store queries, route them to the right shard by user id, and are the
// instrumentation point for the paper's back-end performance analysis: every
// call emits a Span carrying the RPC name, shard, worker process and service
// time (Figs. 12, 13, 14).
//
// Service times follow a calibrated model: per-class lognormal bodies with
// Pareto tails, reproducing the long-tailed distributions of Fig. 12 (7–22%
// of service times far from the median) and the class separation of Fig. 13
// (cascade RPCs more than an order of magnitude slower than reads).
package rpc

import (
	"math/rand"
	"sync/atomic"
	"time"

	"u1/internal/cow"
	"u1/internal/dist"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/protocol"
)

// Span records one RPC against the metadata store.
type Span struct {
	RPC     protocol.RPC
	Class   protocol.RPCClass
	Shard   int
	Proc    int // RPC worker process index
	User    protocol.UserID
	Start   time.Time
	Service time.Duration
	Err     error
}

// Observer receives spans; the trace collector registers one.
type Observer func(Span)

// LatencyModel samples a service time for an RPC class.
type LatencyModel interface {
	Sample(r *rand.Rand, class protocol.RPCClass) time.Duration
}

// PaperLatency is the calibrated three-class model. Values target the medians
// and tail mass of Figs. 12–13.
type PaperLatency struct {
	read, write, cascade dist.Sampler
}

// NewPaperLatency builds the default calibrated model.
func NewPaperLatency() *PaperLatency {
	return &PaperLatency{
		// Read RPCs: median ≈ 3 ms, lockless parallel access keeps the body
		// tight; ~8% of calls land in a heavy tail.
		read: dist.ParetoTailed{
			Body:  dist.LognormalFromMedian(3e-3, 2.2),
			Tail:  dist.Pareto{Xm: 30e-3, Alpha: 1.2},
			TailP: 0.08,
		},
		// Write/update/delete: master-side work, median ≈ 12 ms, ~12% tail.
		write: dist.ParetoTailed{
			Body:  dist.LognormalFromMedian(12e-3, 2.5),
			Tail:  dist.Pareto{Xm: 100e-3, Alpha: 1.2},
			TailP: 0.12,
		},
		// Cascade: touches many rows (delete_volume, get_from_scratch);
		// median ≈ 150 ms and the fattest tail (~20%).
		cascade: dist.ParetoTailed{
			Body:  dist.LognormalFromMedian(150e-3, 2.8),
			Tail:  dist.Pareto{Xm: 1.2, Alpha: 1.3},
			TailP: 0.20,
		},
	}
}

// Sample implements LatencyModel.
func (m *PaperLatency) Sample(r *rand.Rand, class protocol.RPCClass) time.Duration {
	var s dist.Sampler
	switch class {
	case protocol.ClassCascade:
		s = m.cascade
	case protocol.ClassWrite:
		s = m.write
	default:
		s = m.read
	}
	return time.Duration(s.Sample(r) * float64(time.Second))
}

// Config parameterizes the RPC tier.
type Config struct {
	// Procs is the number of RPC worker processes. The deployment ran 8–16
	// processes on each of 6 machines; the default is 48.
	Procs int
	// Latency overrides the service-time model (nil → NewPaperLatency).
	Latency LatencyModel
	// Seed makes the latency sampling reproducible.
	Seed int64
	// RealSleep makes calls actually take their sampled service time. The
	// TCP server enables it; the simulator keeps time virtual.
	RealSleep bool
	// Metrics receives per-RPC and per-class service-time histograms plus
	// error counts (nil disables registration).
	Metrics *metrics.Registry
}

// atomicSource is a lock-free rand.Source64: a splitmix64 generator whose
// state advances by a single atomic add, so concurrent draws each consume a
// distinct, deterministic position of the stream. Seeding a worker's source
// with cfg.Seed+proc fixes that worker's sample stream regardless of how
// calls interleave — the reproducibility contract the bench harness relies
// on (same Seed + same Procs ⇒ same per-worker stream).
type atomicSource struct {
	state atomic.Uint64
}

// Uint64 implements rand.Source64.
func (s *atomicSource) Uint64() uint64 {
	return dist.Splitmix64(s.state.Add(dist.Splitmix64Gamma))
}

// Int63 implements rand.Source.
func (s *atomicSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *atomicSource) Seed(seed int64) { s.state.Store(uint64(seed)) }

// Server is the RPC tier facade over the metadata store.
type Server struct {
	store *metadata.Store
	cfg   Config

	// procRNG holds one lockless generator per worker process. The samplers
	// only draw through the source (Float64/NormFloat64 keep no state in
	// rand.Rand itself), so sharing a worker's *rand.Rand across goroutines
	// is race-free and call() never takes a lock.
	procRNG []*rand.Rand

	// observers is copy-on-write: call() iterates a lock-free snapshot, so
	// span emission never locks, and dynamic attach is safe mid-traffic (the
	// trace collector hooks in while the cluster is already serving).
	observers cow.List[Observer]

	nextProc uint64
	procOps  []uint64 // per-process op counters (atomic)

	// Instrumentation handles indexed by protocol.RPC / protocol.RPCClass,
	// resolved once so the hot call path records through plain pointers.
	rpcSeconds   []*metrics.Histogram
	classSeconds []*metrics.Histogram
	rpcErrors    *metrics.Counter
}

// NewServer creates the tier. Observers may be registered at any time, before
// or during traffic (AddObserver is a copy-on-write swap).
func NewServer(store *metadata.Store, cfg Config) *Server {
	if cfg.Procs <= 0 {
		cfg.Procs = 48
	}
	if cfg.Latency == nil {
		cfg.Latency = NewPaperLatency()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Server{
		store:     store,
		cfg:       cfg,
		procRNG:   make([]*rand.Rand, cfg.Procs),
		procOps:   make([]uint64, cfg.Procs),
		rpcErrors: cfg.Metrics.Counter("rpc.errors"),
	}
	for i := range s.procRNG {
		// Scramble (seed, proc) through the mix function so nearby seeds do
		// not alias worker streams: raw seed+proc would make Seed s worker i
		// reproduce Seed s+1 worker i-1 exactly. Still a pure function of
		// (Seed, proc), so reproducibility holds.
		src := &atomicSource{}
		src.state.Store(dist.Splitmix64(uint64(seed) + uint64(i)*dist.Splitmix64Gamma))
		s.procRNG[i] = rand.New(src)
	}
	rpcs := protocol.RPCs()
	s.rpcSeconds = make([]*metrics.Histogram, len(rpcs))
	for _, op := range rpcs {
		s.rpcSeconds[op] = cfg.Metrics.Histogram(metrics.RPCPrefix + op.String() + ".seconds")
	}
	classes := []protocol.RPCClass{protocol.ClassRead, protocol.ClassWrite, protocol.ClassCascade}
	s.classSeconds = make([]*metrics.Histogram, len(classes))
	for _, c := range classes {
		s.classSeconds[c] = cfg.Metrics.Histogram(metrics.RPCClassPrefix + c.String() + ".seconds")
	}
	return s
}

// Store exposes the underlying metadata store (for provisioning paths that
// predate the trace window, e.g. account creation).
func (s *Server) Store() *metadata.Store { return s.store }

// AddObserver registers a span observer. It is safe to call while traffic is
// in flight: the observer list is copy-on-write, so concurrent call() paths
// keep iterating their immutable snapshot and pick up the new observer on
// their next span.
func (s *Server) AddObserver(o Observer) { s.observers.Add(o) }

// ProcLoads returns cumulative operations per RPC worker process.
func (s *Server) ProcLoads() []uint64 {
	out := make([]uint64, len(s.procOps))
	for i := range out {
		out[i] = atomic.LoadUint64(&s.procOps[i])
	}
	return out
}

// call wraps one store access with worker selection, latency sampling, span
// emission and optional real sleeping. The sampled service time is charged to
// the request's cost accumulator (nil discards it) instead of being returned:
// public methods no longer hand durations back for callers to thread by hand.
func (s *Server) call(op protocol.RPC, user protocol.UserID, now time.Time, cost *protocol.Cost, err error) {
	// Modulo before the int conversion: the raw uint64 tick would convert to
	// a negative int on 32-bit platforms (and after wraparound on 64-bit).
	proc := int(atomic.AddUint64(&s.nextProc, 1) % uint64(len(s.procOps)))
	atomic.AddUint64(&s.procOps[proc], 1)

	service := s.cfg.Latency.Sample(s.procRNG[proc], op.Class())
	cost.Add(service)

	span := Span{
		RPC:     op,
		Class:   op.Class(),
		Shard:   s.store.ShardFor(user),
		Proc:    proc,
		User:    user,
		Start:   now,
		Service: service,
		Err:     err,
	}
	if int(op) < len(s.rpcSeconds) {
		s.rpcSeconds[op].Observe(service.Seconds())
	}
	if int(span.Class) < len(s.classSeconds) {
		s.classSeconds[span.Class].Observe(service.Seconds())
	}
	if err != nil {
		s.rpcErrors.Inc()
	}
	for _, o := range s.observers.Load() {
		o(span)
	}
	if s.cfg.RealSleep {
		//u1:allow wallclock RealSleep mode plays simulated service time on the host clock for the TCP harness
		time.Sleep(service)
	}
}

// --- File-system management RPCs (Table 2, Fig. 12a) ---
//
// Every wrapper takes the request's cost accumulator as its last parameter
// and charges the sampled service time there; nil discards the charge.

// ListVolumes executes dal.list_volumes.
func (s *Server) ListVolumes(user protocol.UserID, now time.Time, cost *protocol.Cost) ([]protocol.VolumeInfo, error) {
	out, err := s.store.ListVolumes(user)
	s.call(protocol.RPCListVolumes, user, now, cost, err)
	return out, err
}

// ListShares executes dal.list_shares.
func (s *Server) ListShares(user protocol.UserID, now time.Time, cost *protocol.Cost) ([]protocol.ShareInfo, error) {
	out, err := s.store.ListShares(user)
	s.call(protocol.RPCListShares, user, now, cost, err)
	return out, err
}

// MakeDir executes dal.make_dir.
func (s *Server) MakeDir(user protocol.UserID, vol protocol.VolumeID, parent protocol.NodeID, name string, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, error) {
	out, err := s.store.MakeDir(user, vol, parent, name)
	s.call(protocol.RPCMakeDir, user, now, cost, err)
	return out, err
}

// MakeFile executes dal.make_file.
func (s *Server) MakeFile(user protocol.UserID, vol protocol.VolumeID, parent protocol.NodeID, name string, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, error) {
	out, err := s.store.MakeFile(user, vol, parent, name)
	s.call(protocol.RPCMakeFile, user, now, cost, err)
	return out, err
}

// Unlink executes dal.unlink_node.
func (s *Server) Unlink(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, now time.Time, cost *protocol.Cost) ([]protocol.NodeInfo, protocol.Generation, []protocol.Hash, error) {
	removed, gen, freed, err := s.store.Unlink(user, vol, node)
	s.call(protocol.RPCUnlinkNode, user, now, cost, err)
	return removed, gen, freed, err
}

// Move executes dal.move.
func (s *Server) Move(user protocol.UserID, vol protocol.VolumeID, node, newParent protocol.NodeID, newName string, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, error) {
	out, err := s.store.Move(user, vol, node, newParent, newName)
	s.call(protocol.RPCMove, user, now, cost, err)
	return out, err
}

// CreateUDF executes dal.create_udf.
func (s *Server) CreateUDF(user protocol.UserID, path string, now time.Time, cost *protocol.Cost) (protocol.VolumeInfo, error) {
	out, err := s.store.CreateUDF(user, path)
	s.call(protocol.RPCCreateUDF, user, now, cost, err)
	return out, err
}

// DeleteVolume executes dal.delete_volume, a cascade RPC.
func (s *Server) DeleteVolume(user protocol.UserID, vol protocol.VolumeID, now time.Time, cost *protocol.Cost) ([]protocol.NodeInfo, []protocol.Hash, error) {
	removed, freed, err := s.store.DeleteVolume(user, vol)
	s.call(protocol.RPCDeleteVolume, user, now, cost, err)
	return removed, freed, err
}

// GetDelta executes dal.get_delta.
func (s *Server) GetDelta(user protocol.UserID, vol protocol.VolumeID, from protocol.Generation, now time.Time, cost *protocol.Cost) ([]protocol.DeltaEntry, protocol.Generation, error) {
	deltas, gen, err := s.store.GetDelta(user, vol, from)
	s.call(protocol.RPCGetDelta, user, now, cost, err)
	return deltas, gen, err
}

// GetVolume executes dal.get_volume_id.
func (s *Server) GetVolume(user protocol.UserID, vol protocol.VolumeID, now time.Time, cost *protocol.Cost) (protocol.VolumeInfo, error) {
	out, err := s.store.GetVolume(user, vol)
	s.call(protocol.RPCGetVolumeID, user, now, cost, err)
	return out, err
}

// CreateShare executes dal.create_share.
func (s *Server) CreateShare(owner protocol.UserID, vol protocol.VolumeID, to protocol.UserID, name string, readOnly bool, now time.Time, cost *protocol.Cost) (protocol.ShareInfo, error) {
	out, err := s.store.CreateShare(owner, vol, to, name, readOnly)
	s.call(protocol.RPCCreateShare, owner, now, cost, err)
	return out, err
}

// AcceptShare executes dal.accept_share.
func (s *Server) AcceptShare(user protocol.UserID, id protocol.ShareID, now time.Time, cost *protocol.Cost) (protocol.ShareInfo, error) {
	out, err := s.store.AcceptShare(user, id)
	s.call(protocol.RPCAcceptShare, user, now, cost, err)
	return out, err
}

// --- Upload management RPCs (Table 4, Fig. 12b) ---

// GetReusableContent executes dal.get_reusable_content: the dedup probe.
func (s *Server) GetReusableContent(user protocol.UserID, h protocol.Hash, now time.Time, cost *protocol.Cost) (size uint64, exists bool, err error) {
	size, exists, err = s.store.LookupContent(h)
	s.call(protocol.RPCGetReusableContent, user, now, cost, err)
	return size, exists, err
}

// MakeContent executes dal.make_content.
func (s *Server) MakeContent(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, h protocol.Hash, size uint64, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, *protocol.Hash, bool, error) {
	info, freed, wasUpdate, err := s.store.MakeContent(user, vol, node, h, size)
	s.call(protocol.RPCMakeContent, user, now, cost, err)
	return info, freed, wasUpdate, err
}

// MakeUploadJob executes dal.make_uploadjob.
func (s *Server) MakeUploadJob(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, h protocol.Hash, size uint64, now time.Time, cost *protocol.Cost) (*metadata.UploadJob, error) {
	job, err := s.store.MakeUploadJob(user, vol, node, h, size, now)
	s.call(protocol.RPCMakeUploadJob, user, now, cost, err)
	return job, err
}

// GetUploadJob executes dal.get_uploadjob.
func (s *Server) GetUploadJob(user protocol.UserID, id protocol.UploadID, now time.Time, cost *protocol.Cost) (*metadata.UploadJob, error) {
	job, err := s.store.GetUploadJob(user, id)
	s.call(protocol.RPCGetUploadJob, user, now, cost, err)
	return job, err
}

// SetUploadJobMultipartID executes dal.set_uploadjob_multipart_id.
func (s *Server) SetUploadJobMultipartID(user protocol.UserID, id protocol.UploadID, multipartID string, now time.Time, cost *protocol.Cost) error {
	err := s.store.SetUploadJobMultipartID(user, id, multipartID)
	s.call(protocol.RPCSetUploadJobMultipartID, user, now, cost, err)
	return err
}

// AddPartToUploadJob executes dal.add_part_to_uploadjob.
func (s *Server) AddPartToUploadJob(user protocol.UserID, id protocol.UploadID, partBytes uint64, now time.Time, cost *protocol.Cost) (*metadata.UploadJob, error) {
	job, err := s.store.AddPartToUploadJob(user, id, partBytes, now)
	s.call(protocol.RPCAddPartToUploadJob, user, now, cost, err)
	return job, err
}

// TouchUploadJob executes dal.touch_uploadjob.
func (s *Server) TouchUploadJob(user protocol.UserID, id protocol.UploadID, now time.Time, cost *protocol.Cost) (expired bool, err error) {
	expired, err = s.store.TouchUploadJob(user, id, now)
	s.call(protocol.RPCTouchUploadJob, user, now, cost, err)
	return expired, err
}

// DeleteUploadJob executes dal.delete_uploadjob.
func (s *Server) DeleteUploadJob(user protocol.UserID, id protocol.UploadID, now time.Time, cost *protocol.Cost) error {
	err := s.store.DeleteUploadJob(user, id)
	s.call(protocol.RPCDeleteUploadJob, user, now, cost, err)
	return err
}

// --- Other read-only RPCs (Fig. 12c) ---

// GetFromScratch executes dal.get_from_scratch, the cascade full-volume read.
func (s *Server) GetFromScratch(user protocol.UserID, vol protocol.VolumeID, now time.Time, cost *protocol.Cost) ([]protocol.NodeInfo, protocol.Generation, error) {
	nodes, gen, err := s.store.GetFromScratch(user, vol)
	s.call(protocol.RPCGetFromScratch, user, now, cost, err)
	return nodes, gen, err
}

// GetNode executes dal.get_node.
func (s *Server) GetNode(user protocol.UserID, vol protocol.VolumeID, node protocol.NodeID, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, error) {
	out, err := s.store.GetNode(user, vol, node)
	s.call(protocol.RPCGetNode, user, now, cost, err)
	return out, err
}

// GetRoot executes dal.get_root.
func (s *Server) GetRoot(user protocol.UserID, now time.Time, cost *protocol.Cost) (protocol.NodeInfo, error) {
	out, err := s.store.GetRoot(user)
	s.call(protocol.RPCGetRoot, user, now, cost, err)
	return out, err
}

// GetUserData executes dal.get_user_data.
func (s *Server) GetUserData(user protocol.UserID, now time.Time, cost *protocol.Cost) (metadata.UserData, error) {
	out, err := s.store.GetUserData(user)
	s.call(protocol.RPCGetUserData, user, now, cost, err)
	return out, err
}

// ObserveAuth emits the span for auth.get_user_id_from_token, which the
// paper's Fig. 12c groups with the metadata RPCs even though the lookup runs
// against the separate authentication service. The API server performs the
// lookup and reports its outcome here.
func (s *Server) ObserveAuth(user protocol.UserID, now time.Time, err error, cost *protocol.Cost) {
	s.call(protocol.RPCGetUserIDFromToken, user, now, cost, err)
}
