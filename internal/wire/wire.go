// Package wire implements the binary encoding and framing of the U1 storage
// protocol stand-in. The real service used a proprietary protocol built on
// TCP and Google Protocol Buffers (§3.1); this package provides the same
// ingredients from the standard library only: varint-based field encoding
// (Writer/Reader) and length-prefixed frames with a one-byte message type
// (WriteFrame/ReadFrame).
//
// Encoding rules: unsigned integers are uvarints, signed integers zig-zag
// varints, byte slices and strings are length-prefixed, booleans one byte.
// Messages are fixed field sequences (no tags); the message type byte in the
// frame header selects the decoder, exactly like a protobuf oneof envelope
// but simpler to audit.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame layout: 4-byte big-endian payload length, 1-byte message type,
// payload. The length covers only the payload (not the type byte).
const (
	frameHeaderSize = 5
	// MaxFrameSize bounds a frame payload. Uploads stream file contents in
	// 5 MB parts (the S3 multipart part size, appendix A), so frames never
	// legitimately exceed parts plus small headers.
	MaxFrameSize = 6 << 20
)

// Common wire errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrOverflow      = errors.New("wire: varint overflows 64 bits")
)

// WriteFrame writes one frame with the given message type and payload.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if len(payload) == 0 {
		return nil
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r. It returns the message type and payload.
// Oversized frames are rejected before allocation so a malicious peer cannot
// force large allocations (DDoS hygiene, §5.4).
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	msgType = hdr[4]
	if n == 0 {
		return msgType, nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, ErrTruncated
	}
	return msgType, payload, nil
}

// Writer serializes fields into a growing buffer. The zero value is ready to
// use. Writer never fails; the buffer grows as needed.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded buffer. The slice aliases internal storage and is
// invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the buffer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed zig-zag varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Byte appends a raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes_ appends a length-prefixed byte slice.
func (w *Writer) Bytes_(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Fixed64 appends an 8-byte big-endian integer (used for hashes and times
// where varint width variance is undesirable).
func (w *Writer) Fixed64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(f float64) { w.Fixed64(math.Float64bits(f)) }

// Reader decodes fields from a buffer produced by Writer. Decoding errors are
// sticky: after the first failure every Get returns a zero value and Err
// reports the cause, so message decoders can be written as straight-line code
// with a single error check at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrTruncated)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Varint reads a signed zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrTruncated)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Bytes reads a length-prefixed byte slice. The result aliases the input
// buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Fixed64 reads an 8-byte big-endian integer.
func (r *Reader) Fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Fixed64()) }
