package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1)
	w.Varint(1 << 40)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Bytes_([]byte{1, 2, 3})
	w.String("ubuntuone")
	w.String("")
	w.Fixed64(0xDEADBEEF)
	w.Float64(1.171)

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("uvarint0 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("uvarint300 = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("uvarint max = %d", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("varint-1 = %d", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("varint big = %d", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools wrong")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := r.String(); got != "ubuntuone" {
		t.Errorf("string = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty string = %q", got)
	}
	if got := r.Fixed64(); got != 0xDEADBEEF {
		t.Errorf("fixed64 = %x", got)
	}
	if got := r.Float64(); got != 1.171 {
		t.Errorf("float = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{}) // empty
	_ = r.Uvarint()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v", r.Err())
	}
	// All subsequent reads return zero values without panicking.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Byte() != 0 || r.Bool() ||
		r.Bytes() != nil || r.String() != "" || r.Fixed64() != 0 || r.Float64() != 0 {
		t.Error("reads after error should be zero")
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(16)
	w.Bytes_([]byte("hello"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.Bytes()
		if r.Err() == nil {
			t.Errorf("cut=%d: expected truncation error", cut)
		}
	}
}

func TestReaderLengthLies(t *testing.T) {
	// A length prefix larger than the remaining buffer must not panic.
	w := NewWriter(8)
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if b := r.Bytes(); b != nil || !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("got %v err %v", b, r.Err())
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow a 64-bit varint.
	buf := bytes.Repeat([]byte{0xFF}, 11)
	r := NewReader(buf)
	_ = r.Uvarint()
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Errorf("err = %v, want overflow", r.Err())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.String("abc")
	if w.Len() == 0 {
		t.Fatal("writer should have content")
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("reset should clear")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("storage_done")
	if err := WriteFrame(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	mt, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != 7 || !bytes.Equal(got, payload) {
		t.Errorf("frame = type %d payload %q", mt, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, nil); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := ReadFrame(&buf)
	if err != nil || mt != 3 || payload != nil {
		t.Errorf("got type=%d payload=%v err=%v", mt, payload, err)
	}
}

func TestFrameTooLargeWrite(t *testing.T) {
	err := WriteFrame(io.Discard, 1, make([]byte, MaxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameTooLargeRead(t *testing.T) {
	// Forge a header claiming a payload above the cap: must be rejected
	// before allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1}
	_, _, err := ReadFrame(bytes.NewReader(hdr))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestFrameTruncatedHeader(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want truncated", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-2]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want truncated", err)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, byte(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		mt, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int(mt) != i || int(payload[0]) != i {
			t.Errorf("frame %d: type=%d payload=%v", i, mt, payload)
		}
	}
}

// Property: any (uvarint, string, bytes) triple survives a round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, s string, b []byte, sv int64, fl float64) bool {
		w := NewWriter(32)
		w.Uvarint(u)
		w.String(s)
		w.Bytes_(b)
		w.Varint(sv)
		w.Float64(fl)
		r := NewReader(w.Bytes())
		gu := r.Uvarint()
		gs := r.String()
		gb := r.Bytes()
		gsv := r.Varint()
		gfl := r.Float64()
		if r.Err() != nil {
			return false
		}
		floatOK := gfl == fl || (math.IsNaN(gfl) && math.IsNaN(fl))
		return gu == u && gs == s && bytes.Equal(gb, b) && gsv == sv && floatOK && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: frames survive a round trip through a pipe for any payload ≤ cap.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(mt byte, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, mt, payload); err != nil {
			return false
		}
		gmt, gp, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return gmt == mt && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
