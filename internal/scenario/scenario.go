// Package scenario is the chaos catalog: named, composable operational
// scenarios — the §5.4 SSO login storm, regional outage and failover,
// slow-disk degradation, post-outage thundering herds, flash crowds — built
// from the repo's existing primitives (fault-plan phases, admission
// watermarks, the SSO token bucket, region drills, attack overlays, client
// retry policies). Each catalog entry's Setup is a pure function of its
// Params, so a fixed (Seed, Workers, config) reproduces the same scenario
// report; cmd/u1chaos runs a config-driven matrix of entries and emits the
// per-scenario reports as the bench schema's scenarios section.
//
// # Determinism contract
//
// Scenario reports inherit the repo-wide contract. At Workers=1 the serial
// driver makes everything in a report — totals, fault counters, error rates,
// latency percentiles — a deterministic function of (Seed, config); the
// runner rewinds the process-global session-id allocator before every run so
// back-to-back runs in one process cannot diverge through process placement.
// At Workers>1, counts stay deterministic but sampled RPC durations do not,
// so the runner omits the per-op latency section; scenarios marked Live
// (admission watermarks, the SSO bucket — decisions on live shared state)
// are only reproducible under the serial driver at all, matching the
// admission contract, and the determinism suite pins them at Workers=1 only.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"u1/internal/auth"
	"u1/internal/faults"
	"u1/internal/metrics"
	"u1/internal/protocol"
	"u1/internal/server"
	"u1/internal/workload"
)

// Params is the workload scale one scenario run executes at. Zero fields are
// filled from the spec's defaults, then the package-wide defaults
// (DefaultParams).
type Params struct {
	Users   int
	Days    int
	Workers int
	Seed    int64
}

// DefaultParams is the final fallback scale: small enough for CI smoke runs,
// big enough that every catalog entry's machinery engages.
var DefaultParams = Params{Users: 150, Days: 2, Workers: 1, Seed: 7}

// fill replaces p's zero fields from d.
func (p Params) fill(d Params) Params {
	if p.Users <= 0 {
		p.Users = d.Users
	}
	if p.Days <= 0 {
		p.Days = d.Days
	}
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Setup is one fully composed scenario leg: the cluster configuration, the
// workload that drives it, and an optional post-workload drill. Build
// functions return it as a pure function of Params.
type Setup struct {
	Cluster  server.Config
	Workload workload.Config
	// Durable roots the cluster's metadata store in a fresh temporary
	// directory for the run (removed afterwards); Cluster.Durability is
	// filled by the runner.
	Durable bool
	// Drill, when non-nil, runs after the workload completes and before the
	// metrics snapshot, so drill activity lands in the scenario report. A
	// returned error is the scenario's invariant violation, not an
	// infrastructure failure.
	Drill DrillFunc
}

// DrillFunc is a post-workload drill body.
type DrillFunc func(*Drill) error

// Drill is the context a DrillFunc operates in.
type Drill struct {
	Cluster *server.Cluster
	Params  Params
	// Now is the first virtual instant after the trace window — drills act
	// after the workload, on its final state.
	Now time.Time
	// Logf narrates drill progress; never nil (defaults to a discard).
	Logf func(format string, args ...any)
}

// Result is one scenario leg's outcome: the workload totals, the auth
// service's counters, the full metrics snapshot, and the drill's verdict.
type Result struct {
	Params   Params
	Totals   workload.Totals
	Auth     auth.Counters
	Snapshot metrics.Snapshot
	DrillErr error
}

// Counter reads one registry counter from the leg's snapshot.
func (r *Result) Counter(name string) uint64 { return r.Snapshot.Counters[name] }

// ClassErrors folds the per-op outcome counters into one shedding class's
// totals. Counter-derived (not trace-derived), so it is deterministic at any
// worker count.
func (r *Result) ClassErrors(class faults.Class) (ops, errs uint64) {
	for _, op := range protocol.Ops() {
		if faults.ClassOf(op) != class {
			continue
		}
		name := metrics.APIOpPrefix + op.String()
		ops += r.Snapshot.Counters[name+".count"]
		errs += r.Snapshot.Counters[name+".errors"]
	}
	return ops, errs
}

// ClassErrorRate is ClassErrors as a fraction (0 when the class saw no ops).
func (r *Result) ClassErrorRate(class faults.Class) float64 {
	ops, errs := r.ClassErrors(class)
	if ops == 0 {
		return 0
	}
	return float64(errs) / float64(ops)
}

// OpP50Ms reads one op's median latency in milliseconds from the snapshot
// (serial-run invariants only; parallel-driver latencies are not
// reproducible).
func (r *Result) OpP50Ms(op protocol.Op) float64 {
	h, ok := r.Snapshot.Histograms[metrics.APIOpPrefix+op.String()+".seconds"]
	if !ok {
		return 0
	}
	return h.P50 * 1e3
}

// Spec is one named catalog entry.
type Spec struct {
	// Name is the catalog key (kebab-case, stable across releases: configs
	// and CI reference it).
	Name string
	// Description is one line for reports and -list output.
	Description string
	// Live marks scenarios whose shedding decisions depend on live shared
	// state (admission windows, the SSO bucket): deterministic only under
	// the serial driver, per the admission contract. The determinism suite
	// pins Live scenarios at Workers=1 only.
	Live bool
	// Defaults overrides DefaultParams fields for this entry (zero fields
	// defer).
	Defaults Params
	// Build composes the scenario leg from the resolved params.
	Build func(Params) Setup
	// Baseline, when non-nil, composes the unmitigated comparison leg (same
	// storm, mitigation off) the Check may compare against.
	Baseline func(Params) Setup
	// Check evaluates the scenario's invariant; base is nil when the spec
	// has no Baseline. A returned error is the violation published in the
	// report (and a non-zero u1chaos exit), not an infrastructure failure.
	Check func(res, base *Result) error
}

// effective resolves run params against the spec's and package defaults.
func (s *Spec) effective(p Params) Params {
	return p.fill(s.Defaults).fill(DefaultParams)
}

// catalog is the registry, in presentation order. Entries register in
// catalog.go; the order is stable so reports and -list output don't shuffle.
var catalog []*Spec

// register adds a spec at package init; duplicate names are a programming
// error.
func register(s *Spec) {
	for _, have := range catalog {
		if have.Name == s.Name {
			panic(fmt.Sprintf("scenario: duplicate catalog entry %q", s.Name))
		}
	}
	catalog = append(catalog, s)
}

// Catalog returns every registered spec in stable order.
func Catalog() []*Spec { return append([]*Spec(nil), catalog...) }

// Names returns the catalog's entry names, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for _, s := range catalog {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a catalog name. Unknown names error with the full catalog
// listed, so a config typo is self-diagnosing.
func Lookup(name string) (*Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (catalog: %v)", name, Names())
}

// baseCluster is the shared cluster configuration every entry starts from:
// paper-calibrated auth failure injection, everything else default.
func baseCluster(p Params) server.Config {
	return server.Config{Seed: p.Seed, AuthFailureRate: 0.0276}
}

// baseWorkload is the shared workload every entry starts from: the resolved
// scale, the paper's start instant, and no attacks unless the entry adds
// them.
func baseWorkload(p Params) workload.Config {
	return workload.Config{
		Users:   p.Users,
		Days:    p.Days,
		Seed:    p.Seed,
		Workers: p.Workers,
		Start:   workload.PaperStart,
		Attacks: []workload.Attack{},
	}
}

// at converts a (day, hour) trace offset into the virtual instant, for
// phase windows and drills.
func at(day int, hour float64) time.Time {
	return workload.PaperStart.Add(time.Duration(day)*24*time.Hour +
		time.Duration(hour*float64(time.Hour)))
}
