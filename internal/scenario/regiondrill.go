package scenario

import (
	"errors"
	"fmt"
	"time"

	"u1/internal/client"
	"u1/internal/protocol"
	"u1/internal/server"
)

// regionalOutageDrill is the regional-outage entry's drill body: kill one
// region after real cross-region traffic, then hold the three outage
// invariants — writes refused at the edge while replica reads survive,
// failover replays the entire backlog (publication outboxes included) so the
// surviving replicas reproduce the dead owners' fingerprints bit-for-bit,
// and recovery rebuilds the dead region from its peer and serves fresh
// writes through the full client path. Ported from examples/regiondrill,
// which now wraps this entry; CI's region gate rides on the same body.
func regionalOutageDrill(d *Drill) error {
	st := d.Cluster.Store
	if st.Regions() != 2 {
		return fmt.Errorf("store has %d regions, want 2", st.Regions())
	}

	// Pick one user owned by each region for the outage legs.
	var ownedBy [2]protocol.UserID
	for u := protocol.UserID(1); u <= protocol.UserID(d.Params.Users); u++ {
		if ownedBy[st.RegionOfUser(u)] == 0 {
			ownedBy[st.RegionOfUser(u)] = u
		}
	}
	if ownedBy[0] == 0 || ownedBy[1] == 0 {
		return fmt.Errorf("user population does not cover both regions: %v", ownedBy)
	}
	victim, survivor := ownedBy[1], ownedBy[0]

	// An acknowledged write through the full client path right before the
	// outage: with a nonzero replication delay and no further epoch barriers
	// it stays in the publication outbox, unshipped — exactly the record
	// failover must not lose.
	vol, _, err := drillUpload(d.Cluster, victim, d.Now, "pre-outage.txt")
	if err != nil {
		return fmt.Errorf("pre-outage upload as user %d: %w", victim, err)
	}

	// A cross-region grant so the survivor may read the victim's volume from
	// its local replica during the outage. Drain so the grant itself — and
	// everything before it — is replicated before the region dies.
	share, err := st.CreateShare(victim, vol, survivor, "drill", true)
	if err != nil {
		return fmt.Errorf("pre-outage share: %w", err)
	}
	if _, err := st.AcceptShare(survivor, share.ID); err != nil {
		return fmt.Errorf("accepting share: %w", err)
	}
	st.DrainReplication()

	// Capture the dead region's owner fingerprints at the moment of death.
	shards := st.NumShards()
	before := make([]string, shards)
	var region1Shards []int
	for i := 0; i < shards; i++ {
		before[i] = st.ShardFingerprint(i)
		if st.RegionOf(i) == 1 {
			region1Shards = append(region1Shards, i)
		}
	}

	// One more acknowledged write AFTER the drain: it exists only in the
	// owner shard and its outbox when the region dies.
	if _, err := st.MakeFile(victim, vol, 0, "acked-last-instant.txt"); err != nil {
		return fmt.Errorf("last-instant write: %w", err)
	}
	for _, i := range region1Shards {
		before[i] = st.ShardFingerprint(i)
	}

	// --- Outage: region 1 dies ---

	st.RegionDown(1)

	if _, err := st.MakeFile(victim, vol, 0, "rejected.txt"); !errors.Is(err, protocol.ErrUnavailable) {
		return fmt.Errorf("write into dead region returned %v, want ErrUnavailable", err)
	}
	if _, _, err := drillUpload(d.Cluster, victim, d.Now.Add(time.Minute), "rejected-api.txt"); err == nil {
		return fmt.Errorf("API edge accepted a write into the dead region")
	} else if !errors.Is(err, protocol.ErrUnavailable) {
		return fmt.Errorf("API-path write into dead region failed for the wrong reason: %w", err)
	}
	if _, err := st.GetVolume(survivor, vol); err != nil {
		return fmt.Errorf("read of dead region's volume from surviving replica: %w", err)
	}
	d.Logf("region 1 down: writes refused at the edge, reads served from region 0 replicas")

	// --- Failover: region 0 replays the entire backlog, outboxes included ---

	st.FailoverRegion(0)
	for _, i := range region1Shards {
		if got := st.ReplicaFingerprint(0, i); got != before[i] {
			return fmt.Errorf("shard %d: acknowledged writes lost in failover — replica fingerprint %s, want %s", i, got, before[i])
		}
	}
	d.Logf("failover replayed the backlog: %d dead-region shards reproduced bit-for-bit at region 0", len(region1Shards))

	// --- Recovery: region 1 rebuilds from its peer and serves again ---

	st.RegionRecover(1, 0)
	for _, i := range region1Shards {
		if got := st.ShardFingerprint(i); got != before[i] {
			return fmt.Errorf("shard %d: recovery diverged — fingerprint %s, want %s", i, got, before[i])
		}
	}
	if _, _, err := drillUpload(d.Cluster, victim, d.Now.Add(2*time.Minute), "post-recovery.txt"); err != nil {
		return fmt.Errorf("post-recovery upload as user %d: %w", victim, err)
	}
	d.Logf("recovered region reproduced owner fingerprints and accepted a fresh upload")
	return nil
}

// drillUpload pushes one upload for user through the full client → gateway →
// pipeline path at the given virtual instant and returns the user's root
// volume.
func drillUpload(cluster *server.Cluster, user protocol.UserID, now time.Time, name string) (protocol.VolumeID, protocol.NodeInfo, error) {
	token, err := cluster.Auth.Issue(user)
	if err != nil {
		return 0, protocol.NodeInfo{}, fmt.Errorf("issuing token: %w", err)
	}
	cli := client.New(client.NewDirectTransport(cluster.LeastLoaded, func() time.Time { return now }))
	if err := cli.Connect(token); err != nil {
		return 0, protocol.NodeInfo{}, fmt.Errorf("connect: %w", err)
	}
	vol, ok := cli.RootVolume()
	if !ok {
		return 0, protocol.NodeInfo{}, fmt.Errorf("user %d has no root volume", user)
	}
	h := protocol.HashBytes([]byte("regiondrill " + name))
	info, _, err := cli.UploadSized(vol, 0, name, h, 64<<10, 40<<10)
	return vol, info, err
}
