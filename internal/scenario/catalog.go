package scenario

import (
	"fmt"
	"time"

	"u1/internal/client"
	"u1/internal/faults"
	"u1/internal/protocol"
	"u1/internal/wal"
	"u1/internal/workload"
)

// legitSessionsPerUserHour mirrors the workload generator's baseline session
// arrival estimate (workload.baseSessionsPerUserHour): the scale every
// storm and capacity figure in the catalog is sized against.
const legitSessionsPerUserHour = 0.02

// ssoCapacity sizes the SSO back-end for a population: 6× the legitimate
// session arrival rate, in requests per second of virtual time. Headroom
// enough that normal traffic (and the paper's 5–15× auth storms at their
// floor) never notices, small enough that a 40× storm collapses it.
func ssoCapacity(users int) float64 {
	return 6 * legitSessionsPerUserHour * float64(users) / 3600
}

// ssoStormSetup composes the §5.4 login-storm leg. The storm multiplies the
// session arrival rate 40× for two hours against a back-end whose goodput
// collapses past capacity. The mitigated leg puts the fleet-shared token
// bucket in front of the SSO tier, admitting at 2/3 of back-end capacity so
// even the bucket's burst cannot push the backend past its limit.
func ssoStormSetup(p Params, mitigated bool) Setup {
	cl := baseCluster(p)
	capacity := ssoCapacity(p.Users)
	cl.AuthCapacity = capacity
	if mitigated {
		cl.SSOAdmitRate = capacity * 2 / 3
		cl.SSOAdmitBurst = 6
	}
	wl := baseWorkload(p)
	wl.Retry = client.Retry{Max: 2, Backoff: 2 * time.Second}
	wl.Attacks = []workload.Attack{
		{Day: 1, Hour: 10, Duration: 2 * time.Hour, APIFactor: 2, AuthFactor: 40},
	}
	return Setup{Cluster: cl, Workload: wl}
}

// flashCrowdSetup composes the ddosdrill storm: one leaked credential,
// leeching sessions two orders of magnitude above baseline API activity on
// one shared file, and the per-op-class admission controller standing in for
// the provider-side load shedding U1 operators applied by hand.
func flashCrowdSetup(p Params) Setup {
	cl := baseCluster(p)
	cl.AdmitWatermark = 10
	wl := baseWorkload(p)
	wl.Retry = client.Retry{Max: 2, Backoff: 2 * time.Second}
	wl.Attacks = []workload.Attack{
		{Day: 1, Hour: 13, Duration: 2 * time.Hour, APIFactor: 150, AuthFactor: 12},
	}
	return Setup{Cluster: cl, Workload: wl}
}

// slowDiskSetup composes the degraded-performance window Cetin et al. rank
// among the common provider-reported failures: the array is dying, fsyncs
// crawl, and every journaled mutation pays. scale inflates the fsync
// policy's modeled sync cost; 0 means healthy disks.
func slowDiskSetup(p Params, scale float64) Setup {
	cl := baseCluster(p)
	cl.FsyncPolicy = wal.FsyncGroupCommit
	cl.SyncCostScale = scale
	return Setup{Cluster: cl, Workload: baseWorkload(p), Durable: true}
}

// thunderingHerdSetup composes a four-hour brownout with herd-forming
// clients: every op except session teardown (kept reliable, as in
// faults.Uniform) fails 85% of the time for the window — Authenticate
// included, which only a phase can express — while failed connections retry
// on a 20-minute backoff instead of waiting for a fresh arrival, so recovery
// is met by a reconnect herd that must drain through the retry machinery.
// 85% (not 100%) keeps enough sessions alive to generate retried in-phase
// traffic, some of which lands: both halves of the retry path exercise.
func thunderingHerdSetup(p Params) Setup {
	rules := make(map[protocol.Op]faults.Rule)
	for _, op := range protocol.Ops() {
		if op == protocol.OpCloseSession {
			continue
		}
		rules[op] = faults.Rule{Fraction: 0.85}
	}
	cl := baseCluster(p)
	cl.FaultPlan = &faults.Plan{
		Seed:   p.Seed,
		Phases: []faults.Phase{{From: at(1, 8), Until: at(1, 12), Rules: rules}},
	}
	wl := baseWorkload(p)
	wl.Retry = client.Retry{Max: 2, Backoff: 2 * time.Second}
	wl.ReconnectBackoff = 20 * time.Minute
	return Setup{Cluster: cl, Workload: wl}
}

func init() {
	register(&Spec{
		Name: "sso-storm",
		Description: "§5.4 login storm vs the SSO-tier token bucket: " +
			"shedding keeps the auth back-end under capacity",
		Live:  true,
		Build: func(p Params) Setup { return ssoStormSetup(p, true) },
		Baseline: func(p Params) Setup {
			return ssoStormSetup(p, false)
		},
		Check: func(res, base *Result) error {
			if res.Totals.AttackSessions == 0 {
				return fmt.Errorf("storm never ran (0 attack sessions)")
			}
			shed := res.Counter("faults.sso_shed")
			if shed == 0 {
				return fmt.Errorf("token bucket shed nothing under a 40x login storm")
			}
			if res.Auth.Overloaded != 0 {
				return fmt.Errorf("auth back-end still collapsed behind the bucket: %d goodput-collapse failures", res.Auth.Overloaded)
			}
			if base.Auth.Overloaded == 0 {
				return fmt.Errorf("baseline leg never overloaded the back-end — the storm proves nothing")
			}
			resRate := res.ClassErrorRate(faults.ClassSession)
			baseRate := base.ClassErrorRate(faults.ClassSession)
			if resRate > baseRate {
				return fmt.Errorf("session-class error rate %.4f with shedding exceeds the unshed baseline's %.4f", resRate, baseRate)
			}
			return nil
		},
	})

	register(&Spec{
		Name: "flash-crowd",
		Description: "leaked-credential leech storm on one shared file vs " +
			"per-op-class admission (the ddosdrill, as a catalog entry)",
		Live:     true,
		Defaults: Params{Users: 400, Days: 3, Seed: 11},
		Build:    flashCrowdSetup,
		Check: func(res, _ *Result) error {
			if res.Totals.AttackSessions == 0 {
				return fmt.Errorf("storm never ran (0 attack sessions)")
			}
			if res.Counter("faults.shed") == 0 {
				return fmt.Errorf("admission control shed nothing under a 150x flash crowd")
			}
			if res.Counter("faults.retried") == 0 {
				return fmt.Errorf("shed clients never retried — the client backoff path is dead")
			}
			dataRate := res.ClassErrorRate(faults.ClassData)
			sessRate := res.ClassErrorRate(faults.ClassSession)
			if dataRate <= sessRate {
				return fmt.Errorf("shedding ignored class priority: data error rate %.4f not above session rate %.4f", dataRate, sessRate)
			}
			if sessRate > 0.20 {
				return fmt.Errorf("session management starved during the storm: error rate %.4f", sessRate)
			}
			return nil
		},
	})

	register(&Spec{
		Name: "regional-outage",
		Description: "region dies mid-traffic: writes refused at the edge, " +
			"reads served from replicas, failover and recovery lose nothing",
		Defaults: Params{Users: 120, Days: 2, Seed: 7},
		Build: func(p Params) Setup {
			cl := baseCluster(p)
			cl.Regions = 2
			cl.ReplicationDelay = 2
			cl.EventualReads = true
			return Setup{Cluster: cl, Workload: baseWorkload(p), Drill: regionalOutageDrill}
		},
		Check: func(res, _ *Result) error {
			if res.DrillErr != nil {
				return res.DrillErr
			}
			if res.Counter("repl.published") == 0 {
				return fmt.Errorf("workload published no replication records — the mailbox pump is dead")
			}
			if res.Counter("api.region.refused") == 0 {
				return fmt.Errorf("API edge refused no writes during the outage — the region interceptor is dead")
			}
			return nil
		},
	})

	register(&Spec{
		Name: "slow-disk",
		Description: "degraded-performance window: fsync cost inflated 16x " +
			"on a durable store; mutations pay, reads don't, nothing is lost",
		Build:    func(p Params) Setup { return slowDiskSetup(p, 16) },
		Baseline: func(p Params) Setup { return slowDiskSetup(p, 0) },
		Check: func(res, base *Result) error {
			if res.Counter("wal.journaled") == 0 {
				return fmt.Errorf("no mutations were journaled on a durable store")
			}
			if res.Counter("wal.journaled") != base.Counter("wal.journaled") {
				return fmt.Errorf("sync-cost inflation changed what got journaled: %d vs baseline %d — a pricing knob must not alter control flow",
					res.Counter("wal.journaled"), base.Counter("wal.journaled"))
			}
			// Latency invariants only under the serial driver: parallel-run
			// percentiles are not reproducible by contract.
			if res.Params.Workers == 1 {
				degraded, healthy := res.OpP50Ms(protocol.OpMakeFile), base.OpP50Ms(protocol.OpMakeFile)
				if degraded < healthy+5 {
					return fmt.Errorf("slow disk invisible in mutation latency: MakeFile p50 %.2fms vs healthy %.2fms", degraded, healthy)
				}
			}
			return nil
		},
	})

	register(&Spec{
		Name: "thundering-herd",
		Description: "four-hour brownout (logins included, via a fault-plan " +
			"phase) then a reconnect-herd resync draining through retries",
		Build: thunderingHerdSetup,
		Check: func(res, _ *Result) error {
			if res.Counter("faults.injected") == 0 {
				return fmt.Errorf("the outage phase injected nothing")
			}
			if res.Totals.FailedAuths == 0 {
				return fmt.Errorf("no login ever failed during a full outage — the phase missed Authenticate")
			}
			if res.Counter("faults.retried") == 0 {
				return fmt.Errorf("no retried traffic arrived — the herd never formed")
			}
			if res.Counter("faults.retry_succeeded") == 0 {
				return fmt.Errorf("no retry ever succeeded — recovery never drained the herd")
			}
			if res.Totals.Sessions == 0 {
				return fmt.Errorf("no session ever ran")
			}
			return nil
		},
	})
}
