package scenario

import (
	"fmt"
	"os"
	"sync"
	"time"

	"u1/internal/apiserver"
	"u1/internal/faults"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/workload"
)

// Outcome is one scenario's full verdict: the mitigated leg, the optional
// unmitigated baseline leg, and the invariant result.
type Outcome struct {
	Spec     *Spec
	Params   Params
	Result   *Result
	Baseline *Result
	// Violation is empty when the invariant held, else its description.
	Violation string
}

// runMu serializes scenario runs process-wide: the runner rewinds the global
// session-id allocator before each leg (see apiserver.ResetSessionIDs), which
// is only sound with no other scenario traffic in flight.
var runMu sync.Mutex

// RunSpec executes one catalog entry at the given params (zero fields fall
// back to the spec's then the package defaults). logf narrates progress and
// may be nil. The returned error is infrastructural (cluster boot, durable
// dir); invariant violations land in Outcome.Violation instead.
func RunSpec(spec *Spec, p Params, logf func(string, ...any)) (*Outcome, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p = spec.effective(p)
	runMu.Lock()
	defer runMu.Unlock()

	res, err := runSetup(spec.Build(p), p, logf)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	out := &Outcome{Spec: spec, Params: p, Result: res}
	if spec.Baseline != nil {
		logf("scenario %s: running unmitigated baseline leg", spec.Name)
		out.Baseline, err = runSetup(spec.Baseline(p), p, logf)
		if err != nil {
			return nil, fmt.Errorf("scenario %s baseline: %w", spec.Name, err)
		}
	}
	if spec.Check != nil {
		if verr := spec.Check(out.Result, out.Baseline); verr != nil {
			out.Violation = verr.Error()
		}
	}
	return out, nil
}

// runSetup executes one composed leg: boot the cluster (durable legs get a
// fresh temp dir), drive the workload, run the drill on the final state, and
// snapshot everything into a Result.
func runSetup(s Setup, p Params, logf func(string, ...any)) (*Result, error) {
	cfg := s.Cluster
	if s.Durable {
		dir, err := os.MkdirTemp("", "u1chaos-")
		if err != nil {
			return nil, fmt.Errorf("creating durable dir: %w", err)
		}
		defer os.RemoveAll(dir)
		cfg.Durability = dir
	}

	// Rewind the global session-id allocator so process placement — and with
	// it every per-process decision — is a function of the scenario alone,
	// not of how many runs this process already did.
	apiserver.ResetSessionIDs()

	cluster, err := server.OpenCluster(cfg)
	if err != nil {
		return nil, fmt.Errorf("opening cluster: %w", err)
	}
	totals := workload.New(s.Workload, cluster).Run()

	res := &Result{Params: p, Totals: totals}
	if s.Drill != nil {
		d := &Drill{
			Cluster: cluster,
			Params:  p,
			Now:     s.Workload.Start.Add(time.Duration(p.Days) * 24 * time.Hour),
			Logf:    logf,
		}
		res.DrillErr = s.Drill(d)
	}
	res.Auth = cluster.Auth.Stats()
	res.Snapshot = cluster.Metrics.Snapshot()
	if s.Durable {
		if err := cluster.Close(); err != nil {
			return nil, fmt.Errorf("closing durable cluster: %w", err)
		}
	}
	return res, nil
}

// Stats folds the outcome into the bench schema's per-scenario section.
func (o *Outcome) Stats() metrics.ScenarioStats {
	st := statsOf(o.Result)
	st.Description = o.Spec.Description
	st.Invariant = "pass"
	if o.Violation != "" {
		st.Invariant = o.Violation
	}
	if o.Baseline != nil {
		base := statsOf(o.Baseline)
		base.Description = "unmitigated baseline"
		st.Baseline = &base
	}
	return st
}

// statsOf derives one leg's ScenarioStats from its Result. Only
// deterministic quantities are published: counter-derived totals and error
// rates always, latency percentiles only for serial legs (sampled RPC
// durations are not reproducible under a parallel driver), and never a
// wall-clock rate.
func statsOf(r *Result) metrics.ScenarioStats {
	rep := metrics.BuildBenchReport(r.Snapshot, 0, r.Params.Users, r.Params.Days)
	st := metrics.ScenarioStats{
		Users:   r.Params.Users,
		Days:    r.Params.Days,
		Seed:    r.Params.Seed,
		Workers: r.Params.Workers,

		Sessions:    r.Totals.Sessions,
		FailedAuths: r.Totals.FailedAuths,
		TotalOps:    rep.TotalOps,

		Injected:       r.Counter(metrics.FaultsPrefix + "injected"),
		Shed:           r.Counter(metrics.FaultsPrefix + "shed"),
		SSOShed:        r.Counter(metrics.FaultsPrefix + "sso_shed"),
		Retried:        r.Counter(metrics.FaultsPrefix + "retried"),
		RetrySucceeded: r.Counter(metrics.FaultsPrefix + "retry_succeeded"),
		AuthOverloaded: r.Auth.Overloaded,

		ErrorRates:   make(map[string]metrics.ScenarioClassErrors, 3),
		WALJournaled: r.Counter(metrics.WALPrefix + "journaled"),
		Replication:  rep.Replication,
	}
	for _, class := range []faults.Class{faults.ClassData, faults.ClassMetadata, faults.ClassSession} {
		ops, errs := r.ClassErrors(class)
		ce := metrics.ScenarioClassErrors{Ops: ops, Errors: errs}
		if ops > 0 {
			ce.Rate = float64(errs) / float64(ops)
		}
		st.ErrorRates[class.String()] = ce
		st.TotalErrors += errs
	}
	if r.Params.Workers == 1 {
		st.Ops = rep.Ops
	}
	return st
}

// RunMatrix executes a parsed matrix in config order and returns the
// per-scenario stats keyed by catalog name, plus the list of invariant
// violations ("name: description"). Infrastructure failures abort the matrix.
func RunMatrix(m Matrix, logf func(string, ...any)) (map[string]metrics.ScenarioStats, []string, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := make(map[string]metrics.ScenarioStats, len(m.Scenarios))
	var violations []string
	for _, e := range m.Scenarios {
		spec, err := Lookup(e.Name)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := out[spec.Name]; dup {
			return nil, nil, fmt.Errorf("scenario: %q appears twice in the matrix", spec.Name)
		}
		p := m.params(e, spec)
		logf("scenario %s: users=%d days=%d seed=%d workers=%d",
			spec.Name, p.Users, p.Days, p.Seed, p.Workers)
		o, err := RunSpec(spec, p, logf)
		if err != nil {
			return nil, nil, err
		}
		if o.Violation != "" {
			violations = append(violations, spec.Name+": "+o.Violation)
			logf("scenario %s: INVARIANT VIOLATED: %s", spec.Name, o.Violation)
		} else {
			logf("scenario %s: pass", spec.Name)
		}
		out[spec.Name] = o.Stats()
	}
	return out, violations, nil
}
