package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Matrix is the u1chaos configuration: global scale defaults plus the
// scenario list. Every field an Entry leaves zero falls back to the matrix,
// then the spec's Defaults, then DefaultParams — so one config line per
// scenario is the common case.
type Matrix struct {
	Users   int   `json:"users,omitempty"`
	Days    int   `json:"days,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
	// Scenarios run in order. Each entry is either a bare catalog name
	// ("sso-storm") or an object with per-entry overrides
	// ({"name": "flash-crowd", "users": 300}).
	Scenarios []Entry `json:"scenarios"`

	// MaxUsers / MaxDays clamp every resolved entry — the smoke-mode knobs
	// (-smoke), applied after resolution so catalog defaults shrink too.
	// Never serialized: smoke is a run mode, not part of the config.
	MaxUsers int `json:"-"`
	MaxDays  int `json:"-"`
}

// Entry selects one catalog scenario, with optional per-entry scale
// overrides.
type Entry struct {
	Name    string `json:"name"`
	Users   int    `json:"users,omitempty"`
	Days    int    `json:"days,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

// UnmarshalJSON accepts both entry forms: a bare scenario-name string and
// the override object.
func (e *Entry) UnmarshalJSON(data []byte) error {
	t := bytes.TrimSpace(data)
	if len(t) > 0 && t[0] == '"' {
		return json.Unmarshal(data, &e.Name)
	}
	type raw Entry // shed the method set so Unmarshal can't recurse
	var r raw
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	*e = Entry(r)
	return nil
}

// ParseMatrix decodes and validates a u1chaos config: top-level fields are
// strict (a typo fails loudly, not silently), the scenario list must be
// non-empty, and every name must resolve against the catalog.
func ParseMatrix(data []byte) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("scenario: parsing matrix config: %w", err)
	}
	if len(m.Scenarios) == 0 {
		return m, fmt.Errorf("scenario: matrix config lists no scenarios")
	}
	for _, e := range m.Scenarios {
		if _, err := Lookup(e.Name); err != nil {
			return m, err
		}
	}
	return m, nil
}

// params resolves one entry's run scale: entry override → matrix default →
// spec default → package default, then the smoke clamps.
func (m Matrix) params(e Entry, spec *Spec) Params {
	p := Params{Users: e.Users, Days: e.Days, Workers: e.Workers, Seed: e.Seed}
	p = p.fill(Params{Users: m.Users, Days: m.Days, Workers: m.Workers, Seed: m.Seed})
	p = spec.effective(p)
	if m.MaxUsers > 0 && p.Users > m.MaxUsers {
		p.Users = m.MaxUsers
	}
	if m.MaxDays > 0 && p.Days > m.MaxDays {
		p.Days = m.MaxDays
	}
	return p
}
