package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// statsJSON runs one catalog entry and returns its marshaled scenario report.
// The JSON form is the reproducibility contract: it is what u1chaos emits and
// what two identically configured runs must reproduce byte-for-byte.
func statsJSON(t *testing.T, spec *Spec, p Params) string {
	t.Helper()
	out, err := RunSpec(spec, p, nil)
	if err != nil {
		t.Fatalf("running %s: %v", spec.Name, err)
	}
	if out.Violation != "" {
		t.Fatalf("%s invariant violated: %s", spec.Name, out.Violation)
	}
	data, err := json.Marshal(out.Stats())
	if err != nil {
		t.Fatalf("marshaling %s stats: %v", spec.Name, err)
	}
	return string(data)
}

// smokeParams mirrors the u1chaos -smoke clamps so the suite runs at CI
// scale.
func smokeParams(spec *Spec, workers int) Params {
	p := spec.effective(Params{Workers: workers})
	if p.Users > 160 {
		p.Users = 160
	}
	if p.Days > 2 {
		p.Days = 2
	}
	return p
}

// TestScenarioDeterminism pins the catalog's reproducibility contract: the
// same (seed, workers, scenario config) twice in one process yields identical
// scenario reports — totals, fault counters, error rates and (serial legs)
// latency percentiles — with every invariant passing.
func TestScenarioDeterminism(t *testing.T) {
	for _, spec := range Catalog() {
		t.Run(spec.Name, func(t *testing.T) {
			p := smokeParams(spec, 1)
			first := statsJSON(t, spec, p)
			second := statsJSON(t, spec, p)
			if first != second {
				t.Errorf("Workers=1 reports diverged:\n  first:  %s\n  second: %s", first, second)
			}
		})
	}
}

// TestScenarioDeterminismParallel pins count-determinism under the parallel
// driver for the scenarios whose decisions are pure functions of (seed, op,
// user, time). Live scenarios (admission on shared state) are exempt by
// contract: their shedding depends on request interleaving, which only the
// serial driver fixes.
func TestScenarioDeterminismParallel(t *testing.T) {
	for _, spec := range Catalog() {
		if spec.Live {
			continue
		}
		t.Run(spec.Name, func(t *testing.T) {
			p := smokeParams(spec, 4)
			first := statsJSON(t, spec, p)
			second := statsJSON(t, spec, p)
			if first != second {
				t.Errorf("Workers=4 reports diverged:\n  first:  %s\n  second: %s", first, second)
			}
		})
	}
}

// TestScenarioReportShape pins what a report may publish at each worker
// count: latency percentiles only under the serial driver, and never a
// wall-clock throughput figure.
func TestScenarioReportShape(t *testing.T) {
	spec, err := Lookup("thundering-herd")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSpec(spec, smokeParams(spec, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := serial.Stats(); len(st.Ops) == 0 {
		t.Error("serial report omitted per-op latencies")
	}
	parallel, err := RunSpec(spec, smokeParams(spec, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := parallel.Stats(); st.Ops != nil {
		t.Errorf("parallel report published per-op latencies: %v", st.Ops)
	}
}

func TestLookupUnknownName(t *testing.T) {
	_, err := Lookup("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario name did not error")
	}
	// The error must be self-diagnosing: it lists the catalog.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list catalog entry %q", err, name)
		}
	}
}

func TestParseMatrixRoundTrip(t *testing.T) {
	m := Matrix{
		Users: 200, Days: 3, Seed: 13, Workers: 2,
		Scenarios: []Entry{
			{Name: "sso-storm"},
			{Name: "flash-crowd", Users: 300, Seed: 11},
		},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round-trip mismatch:\n  in:  %+v\n  out: %+v", m, got)
	}
}

func TestParseMatrixBareNames(t *testing.T) {
	got, err := ParseMatrix([]byte(`{"scenarios": ["sso-storm", {"name": "slow-disk", "users": 80}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Name: "sso-storm"}, {Name: "slow-disk", Users: 80}}
	if !reflect.DeepEqual(got.Scenarios, want) {
		t.Errorf("scenarios = %+v, want %+v", got.Scenarios, want)
	}
}

func TestParseMatrixRejects(t *testing.T) {
	cases := map[string]string{
		"unknown scenario": `{"scenarios": ["no-such-scenario"]}`,
		"empty matrix":     `{"scenarios": []}`,
		"top-level typo":   `{"senarios": ["sso-storm"]}`,
		"malformed":        `{"scenarios": [`,
	}
	for name, cfg := range cases {
		if _, err := ParseMatrix([]byte(cfg)); err == nil {
			t.Errorf("%s: config %s parsed without error", name, cfg)
		}
	}
}

// TestParamResolution pins the precedence chain: entry override → matrix
// default → spec default → package default, then the smoke clamps.
func TestParamResolution(t *testing.T) {
	spec, err := Lookup("flash-crowd") // Defaults{Users: 400, Days: 3, Seed: 11}
	if err != nil {
		t.Fatal(err)
	}
	m := Matrix{Days: 9}
	p := m.params(Entry{Name: "flash-crowd", Users: 50}, spec)
	want := Params{Users: 50, Days: 9, Seed: 11, Workers: 1}
	if p != want {
		t.Errorf("resolved params = %+v, want %+v", p, want)
	}
	m.MaxUsers, m.MaxDays = 30, 2
	if p = m.params(Entry{Name: "flash-crowd", Users: 50}, spec); p.Users != 30 || p.Days != 2 {
		t.Errorf("smoke clamps not applied: %+v", p)
	}
}

// TestCatalogComplete pins the catalog floor the chaos runner ships with and
// that every entry is runnable: a Build function and an invariant Check.
func TestCatalogComplete(t *testing.T) {
	if n := len(Catalog()); n < 5 {
		t.Fatalf("catalog has %d entries, want >= 5", n)
	}
	for _, spec := range Catalog() {
		if spec.Build == nil {
			t.Errorf("%s has no Build", spec.Name)
		}
		if spec.Check == nil {
			t.Errorf("%s has no invariant Check", spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("%s has no description", spec.Name)
		}
	}
}
