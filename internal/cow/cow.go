// Package cow provides a copy-on-write list: an atomic pointer to an
// immutable slice. Readers load the pointer and iterate without locking —
// the hot-path side — while writers copy, append and swap under a small
// mutex. The RPC tier and the API servers use it for their observer lists,
// which makes attaching the trace collector to a live cluster race-free.
package cow

import (
	"sync"
	"sync/atomic"
)

// List is a copy-on-write slice. The zero value is an empty list ready for
// use. Load is wait-free; Add serializes writers only.
type List[T any] struct {
	p  atomic.Pointer[[]T]
	mu sync.Mutex
}

// Add appends v by swapping in a copy of the current slice. Concurrent
// readers keep their immutable snapshot and see v on their next Load.
func (l *List[T]) Add(v T) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var next []T
	if cur := l.p.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, v)
	l.p.Store(&next)
}

// Load returns the current immutable snapshot; callers must not mutate it.
// A nil slice means the list is empty.
func (l *List[T]) Load() []T {
	if cur := l.p.Load(); cur != nil {
		return *cur
	}
	return nil
}
