package trace

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"u1/internal/protocol"
)

// Logname renders the §4 logfile naming convention, e.g.
// production-whitecurrant-23-20140128.csv: environment, physical machine,
// server process number, and the date the log was cut (one file per
// server/process and day).
func Logname(machine string, proc int, day time.Time) string {
	return fmt.Sprintf("production-%s-%d-%s.csv", machine, proc, day.Format("20060102"))
}

// csvFields is the column count of a trace line.
const csvFields = 17

// appendLine renders one record as a CSV line (without newline).
func (c *Collector) appendLine(buf []byte, r *Record) []byte {
	var kind string
	switch r.Kind {
	case KindStorage:
		kind = "storage"
	case KindSession:
		kind = "session"
	default:
		kind = "rpc"
	}
	var name string
	if r.Kind == KindRPC {
		name = protocol.RPC(r.RPC).String()
	} else {
		name = protocol.Op(r.Op).String()
	}
	buf = append(buf, kind...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.Time, 10)
	buf = append(buf, ',')
	buf = append(buf, c.srvTab[r.Server]...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Proc), 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.Session, 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.User, 10)
	buf = append(buf, ',')
	buf = append(buf, name...)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.Volume, 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.Node, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Shard), 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.HashLo, 16)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.Size, 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, r.Wire, 10)
	buf = append(buf, ',')
	buf = append(buf, c.extTab[r.Ext]...)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, r.Dur, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Status), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(r.Flags), 10)
	return buf
}

// WriteCSV dumps the collected records into dir as one logfile per
// (server, process, day), following the logname convention. RPC records are
// included when retained.
func (c *Collector) WriteCSV(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: creating %s: %w", dir, err)
	}
	files := make(map[string]*bufio.Writer)
	handles := make(map[string]*os.File)
	defer func() {
		for _, w := range files {
			w.Flush() //nolint:errcheck
		}
		for _, f := range handles {
			f.Close() //nolint:errcheck
		}
	}()
	var buf []byte
	write := func(r *Record) error {
		day := time.Unix(0, r.Time).UTC()
		name := Logname(c.srvTab[r.Server], int(r.Proc), day)
		w, ok := files[name]
		if !ok {
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return fmt.Errorf("trace: creating logfile: %w", err)
			}
			handles[name] = f
			w = bufio.NewWriterSize(f, 1<<16)
			files[name] = w
		}
		buf = c.appendLine(buf[:0], r)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("trace: writing logfile: %w", err)
		}
		return nil
	}
	for i := range c.records {
		if err := write(&c.records[i]); err != nil {
			return err
		}
	}
	for i := range c.rpcRecs {
		if err := write(&c.rpcRecs[i]); err != nil {
			return err
		}
	}
	for name, w := range files {
		if err := w.Flush(); err != nil {
			return fmt.Errorf("trace: flushing %s: %w", name, err)
		}
	}
	return nil
}

// streamState holds the open logfiles of a streaming emission session.
// Writers stay open across flushes so each (server, proc, day) logfile grows
// in place, exactly as WriteCSV would have produced it in one shot.
type streamState struct {
	dir     string
	files   map[string]*bufio.Writer
	handles map[string]*os.File
	buf     []byte
}

// StartStream switches the collector to streaming emission: records
// accumulate only until the next Flush, which appends them to the same
// per-(server, proc, day) logfiles WriteCSV would produce and releases the
// memory. Storage/session records and RPC spans never share a logfile (RPC
// spans log under the synthetic server name "rpc"), so every file's bytes
// are identical to a post-hoc WriteCSV of the same run even though the two
// record streams interleave across flushes. Call Flush at epoch barriers and
// CloseStream when the run ends.
func (c *Collector) StartStream(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stream != nil {
		return fmt.Errorf("trace: stream to %s already open", c.stream.dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: creating %s: %w", dir, err)
	}
	c.stream = &streamState{
		dir:     dir,
		files:   make(map[string]*bufio.Writer),
		handles: make(map[string]*os.File),
	}
	return nil
}

// Flush appends all buffered records to their logfiles and empties the
// buffers. It is a no-op when no stream is open.
func (c *Collector) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Collector) flushLocked() error {
	s := c.stream
	if s == nil {
		return nil
	}
	for i := range c.records {
		if err := c.streamWrite(s, &c.records[i]); err != nil {
			return err
		}
	}
	for i := range c.rpcRecs {
		if err := c.streamWrite(s, &c.rpcRecs[i]); err != nil {
			return err
		}
	}
	c.flushed += uint64(len(c.records))
	c.records = c.records[:0]
	c.rpcRecs = c.rpcRecs[:0]
	return nil
}

func (c *Collector) streamWrite(s *streamState, r *Record) error {
	day := time.Unix(0, r.Time).UTC()
	name := Logname(c.srvTab[r.Server], int(r.Proc), day)
	w, ok := s.files[name]
	if !ok {
		f, err := os.Create(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("trace: creating logfile: %w", err)
		}
		s.handles[name] = f
		w = bufio.NewWriterSize(f, 1<<16)
		s.files[name] = w
	}
	s.buf = c.appendLine(s.buf[:0], r)
	s.buf = append(s.buf, '\n')
	if _, err := w.Write(s.buf); err != nil {
		return fmt.Errorf("trace: writing logfile: %w", err)
	}
	return nil
}

// CloseStream flushes any remaining records, closes every logfile, and
// returns the collector to accumulate mode.
func (c *Collector) CloseStream() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stream
	if s == nil {
		return nil
	}
	err := c.flushLocked()
	for name, w := range s.files {
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("trace: flushing %s: %w", name, ferr)
		}
	}
	for name, f := range s.handles {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %s: %w", name, cerr)
		}
	}
	c.stream = nil
	return err
}

// Dataset is a trace read back from logfiles: records sorted by timestamp
// plus the reconstructed interning tables.
type Dataset struct {
	Records    []Record // storage + session records
	RPCRecords []Record
	Servers    []string
	Extensions []string
	// BadLines counts unparseable lines skipped, mirroring the ≈1% parse
	// failures of the original dataset.
	BadLines int
}

// ReadCSV loads every production-*.csv logfile under dir, merging and
// sorting records by timestamp. Corrupt lines are skipped and counted.
func ReadCSV(dir string) (*Dataset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "production-*.csv"))
	if err != nil {
		return nil, fmt.Errorf("trace: globbing %s: %w", dir, err)
	}
	sort.Strings(paths)
	ds := &Dataset{}
	servers := map[string]uint8{}
	exts := map[string]uint8{"": 0}
	ds.Extensions = []string{""}

	serverIdx := func(name string) uint8 {
		if i, ok := servers[name]; ok {
			return i
		}
		i := uint8(len(ds.Servers))
		servers[name] = i
		ds.Servers = append(ds.Servers, name)
		return i
	}
	extIdx := func(name string) uint8 {
		if i, ok := exts[name]; ok {
			return i
		}
		if len(ds.Extensions) >= 255 {
			return 0
		}
		i := uint8(len(ds.Extensions))
		exts[name] = i
		ds.Extensions = append(ds.Extensions, name)
		return i
	}

	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("trace: opening %s: %w", p, err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			rec, ok := parseLine(sc.Text(), serverIdx, extIdx)
			if !ok {
				ds.BadLines++
				continue
			}
			if rec.Kind == KindRPC {
				ds.RPCRecords = append(ds.RPCRecords, rec)
			} else {
				ds.Records = append(ds.Records, rec)
			}
		}
		err = sc.Err()
		f.Close() //nolint:errcheck
		if err != nil {
			return nil, fmt.Errorf("trace: reading %s: %w", p, err)
		}
	}
	byTime := func(rs []Record) func(i, j int) bool {
		return func(i, j int) bool { return rs[i].Time < rs[j].Time }
	}
	sort.SliceStable(ds.Records, byTime(ds.Records))
	sort.SliceStable(ds.RPCRecords, byTime(ds.RPCRecords))
	return ds, nil
}

func parseLine(line string, serverIdx, extIdx func(string) uint8) (Record, bool) {
	var r Record
	fields := strings.Split(line, ",")
	if len(fields) != csvFields {
		return r, false
	}
	switch fields[0] {
	case "storage":
		r.Kind = KindStorage
	case "session":
		r.Kind = KindSession
	case "rpc":
		r.Kind = KindRPC
	default:
		return r, false
	}
	var err error
	fail := func(e error) bool { err = e; return err != nil }

	var v int64
	if v, err = strconv.ParseInt(fields[1], 10, 64); fail(err) {
		return r, false
	}
	r.Time = v
	r.Server = serverIdx(fields[2])
	if v, err = strconv.ParseInt(fields[3], 10, 16); fail(err) {
		return r, false
	}
	r.Proc = uint8(v)
	var u uint64
	if u, err = strconv.ParseUint(fields[4], 10, 64); fail(err) {
		return r, false
	}
	r.Session = u
	if u, err = strconv.ParseUint(fields[5], 10, 64); fail(err) {
		return r, false
	}
	r.User = u
	if r.Kind == KindRPC {
		rpcOp, perr := protocol.ParseRPC(fields[6])
		if perr != nil {
			return r, false
		}
		r.RPC = uint8(rpcOp)
	} else {
		op, perr := protocol.ParseOp(fields[6])
		if perr != nil {
			return r, false
		}
		r.Op = uint8(op)
	}
	if u, err = strconv.ParseUint(fields[7], 10, 64); fail(err) {
		return r, false
	}
	r.Volume = u
	if u, err = strconv.ParseUint(fields[8], 10, 64); fail(err) {
		return r, false
	}
	r.Node = u
	if v, err = strconv.ParseInt(fields[9], 10, 8); fail(err) {
		return r, false
	}
	r.Shard = int8(v)
	if u, err = strconv.ParseUint(fields[10], 16, 64); fail(err) {
		return r, false
	}
	r.HashLo = u
	if u, err = strconv.ParseUint(fields[11], 10, 64); fail(err) {
		return r, false
	}
	r.Size = u
	if u, err = strconv.ParseUint(fields[12], 10, 64); fail(err) {
		return r, false
	}
	r.Wire = u
	r.Ext = extIdx(fields[13])
	if v, err = strconv.ParseInt(fields[14], 10, 64); fail(err) {
		return r, false
	}
	r.Dur = v
	if v, err = strconv.ParseInt(fields[15], 10, 16); fail(err) {
		return r, false
	}
	r.Status = uint8(v)
	if v, err = strconv.ParseInt(fields[16], 10, 16); fail(err) {
		return r, false
	}
	r.Flags = uint8(v)
	return r, true
}
