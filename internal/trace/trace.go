// Package trace implements the measurement methodology of §4: the collection
// of per-process service logfiles from API and RPC servers, their record
// schema, the logname convention (production-<machine>-<proc>-<date>), CSV
// serialization, and tolerant parsing (≈1% of the original logs failed to
// parse; this reader skips corrupt lines and counts them).
//
// Storage and session records are retained in full (they feed the §5–§6
// analyses); RPC spans are aggregated on the fly into per-RPC service-time
// reservoirs and per-shard time bins (the §7 analyses), because a month of
// spans would not fit in memory at full fidelity — exactly the reduction a
// production trace pipeline performs.
package trace

import (
	"sync"
	"time"

	"u1/internal/apiserver"
	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/stats"
)

// Kind classifies records, mirroring the request types of §4.1
// (storage/storage_done, session, rpc).
type Kind uint8

// Record kinds.
const (
	KindStorage Kind = iota // completed API storage/metadata operation
	KindSession             // session open (Authenticate) / close events
	KindRPC                 // DAL RPC span
)

// Flags bits.
const (
	// FlagUpdate marks an upload that replaced existing content.
	FlagUpdate uint8 = 1 << iota
	// FlagDir marks an operation on a directory node.
	FlagDir
)

// Record is one trace line in compact form. Strings are interned through the
// collector's tables (server names, extensions); content hashes keep 64 bits,
// plenty for dedup counting at trace scale.
type Record struct {
	Time    int64 // unix nanoseconds
	Dur     int64 // service time in nanoseconds
	Session uint64
	User    uint64
	Volume  uint64
	Node    uint64
	HashLo  uint64 // first 8 bytes of the SHA-1 (0 = no content)
	Size    uint64
	Wire    uint64
	Kind    Kind
	Op      uint8 // protocol.Op for storage/session records
	RPC     uint8 // protocol.RPC for rpc records
	Status  uint8
	Proc    uint8
	Shard   int8 // -1 for non-RPC records
	Server  uint8
	Ext     uint8 // extension table index; 0 = none
	Flags   uint8
}

// When returns the record timestamp.
func (r *Record) When() time.Time { return time.Unix(0, r.Time) }

// Duration returns the record service time.
func (r *Record) Duration() time.Duration { return time.Duration(r.Dur) }

// IsUpdate reports the update flag.
func (r *Record) IsUpdate() bool { return r.Flags&FlagUpdate != 0 }

// IsDir reports whether the operation targeted a directory.
func (r *Record) IsDir() bool { return r.Flags&FlagDir != 0 }

// hashLo packs the hash prefix.
func hashLo(h protocol.Hash) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(h[i])
	}
	return v
}

// RPCAggregate is the streaming reduction of RPC spans.
type RPCAggregate struct {
	Start   time.Time
	Minutes int
	Shards  int

	Counts  []uint64 // per protocol.RPC
	Errs    []uint64
	Samples []*stats.Reservoir // service times in seconds, per protocol.RPC
	// ShardMinute[s][m] counts RPCs routed to shard s in trace minute m —
	// the Fig. 14 (bottom) input.
	ShardMinute [][]uint32
	// ProcTotal counts RPCs per DAL worker process.
	ProcTotal map[int]uint64
}

func newRPCAggregate(start time.Time, days, shards, reservoirCap int, seed int64) *RPCAggregate {
	n := len(protocol.RPCs())
	minutes := days * 24 * 60
	agg := &RPCAggregate{
		Start:       start,
		Minutes:     minutes,
		Shards:      shards,
		Counts:      make([]uint64, n),
		Errs:        make([]uint64, n),
		Samples:     make([]*stats.Reservoir, n),
		ShardMinute: make([][]uint32, shards),
		ProcTotal:   make(map[int]uint64),
	}
	for i := range agg.Samples {
		agg.Samples[i] = stats.NewReservoir(reservoirCap, seed+int64(i))
	}
	for s := range agg.ShardMinute {
		agg.ShardMinute[s] = make([]uint32, minutes)
	}
	return agg
}

func (a *RPCAggregate) observe(sp rpc.Span) {
	i := int(sp.RPC)
	if i >= len(a.Counts) {
		return
	}
	a.Counts[i]++
	if sp.Err != nil {
		a.Errs[i]++
	}
	a.Samples[i].Add(sp.Service.Seconds())
	a.ProcTotal[sp.Proc]++
	if sp.Shard >= 0 && sp.Shard < a.Shards {
		m := int(sp.Start.Sub(a.Start) / time.Minute)
		if m >= 0 && m < a.Minutes {
			a.ShardMinute[sp.Shard][m]++
		}
	}
}

// Config parameterizes a Collector.
type Config struct {
	// Start and Days bound the trace window (for time-binned aggregates).
	Start time.Time
	Days  int
	// Shards sizes the per-shard aggregation (default 10).
	Shards int
	// ReservoirCap bounds per-RPC service-time samples (default 20000).
	ReservoirCap int
	// KeepRPCRecords additionally retains every RPC span as a Record. Only
	// sensible for small traces and tests.
	KeepRPCRecords bool
	// Seed drives reservoir sampling.
	Seed int64
}

// Collector subscribes to API servers and the RPC tier and accumulates the
// trace. It is safe for concurrent observation.
type Collector struct {
	cfg Config

	mu      sync.Mutex
	records []Record
	rpcRecs []Record
	rpcAgg  *RPCAggregate

	// stream, when non-nil, turns the record slices into per-epoch buffers:
	// Flush appends them to open logfiles and releases the memory. flushed
	// counts records already written so Len stays meaningful.
	stream  *streamState
	flushed uint64

	servers map[string]uint8
	srvTab  []string
	exts    map[string]uint8
	extTab  []string

	dropped uint64 // records outside the trace window
}

// NewCollector creates a collector for the given window.
func NewCollector(cfg Config) *Collector {
	if cfg.Shards <= 0 {
		cfg.Shards = 10
	}
	if cfg.ReservoirCap <= 0 {
		cfg.ReservoirCap = 20000
	}
	if cfg.Days <= 0 {
		cfg.Days = 30
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	cfg.Seed = seed
	c := &Collector{
		cfg:     cfg,
		rpcAgg:  newRPCAggregate(cfg.Start, cfg.Days, cfg.Shards, cfg.ReservoirCap, seed),
		servers: make(map[string]uint8),
		exts:    make(map[string]uint8),
		extTab:  []string{""}, // index 0 = no extension
	}
	c.exts[""] = 0
	return c
}

func (c *Collector) serverIdx(name string) uint8 {
	if i, ok := c.servers[name]; ok {
		return i
	}
	i := uint8(len(c.srvTab))
	c.servers[name] = i
	c.srvTab = append(c.srvTab, name)
	return i
}

func (c *Collector) extIdx(ext string) uint8 {
	if i, ok := c.exts[ext]; ok {
		return i
	}
	if len(c.extTab) >= 255 {
		return 0 // extension table full; fold into "none"
	}
	i := uint8(len(c.extTab))
	c.exts[ext] = i
	c.extTab = append(c.extTab, ext)
	return i
}

// ServerName resolves a server table index.
func (c *Collector) ServerName(i uint8) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(i) < len(c.srvTab) {
		return c.srvTab[i]
	}
	return ""
}

// ExtName resolves an extension table index.
func (c *Collector) ExtName(i uint8) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(i) < len(c.extTab) {
		return c.extTab[i]
	}
	return ""
}

// Servers returns the server name table.
func (c *Collector) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.srvTab...)
}

// Extensions returns the extension table (index 0 is the empty extension).
func (c *Collector) Extensions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.extTab...)
}

// APIObserver returns the observer to register on API servers.
func (c *Collector) APIObserver() apiserver.Observer {
	return func(e apiserver.Event) {
		kind := KindStorage
		if e.Op == protocol.OpAuthenticate || e.Op == protocol.OpCloseSession {
			kind = KindSession
		}
		var flags uint8
		if e.IsUpdate {
			flags |= FlagUpdate
		}
		if e.IsDir {
			flags |= FlagDir
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.records = append(c.records, Record{
			Time:    e.Start.UnixNano(),
			Dur:     int64(e.Duration),
			Session: uint64(e.Session),
			User:    uint64(e.User),
			Volume:  uint64(e.Volume),
			Node:    uint64(e.Node),
			HashLo:  hashLo(e.Hash),
			Size:    e.Size,
			Wire:    e.Wire,
			Kind:    kind,
			Op:      uint8(e.Op),
			Status:  uint8(e.Status),
			Proc:    uint8(e.Proc),
			Shard:   -1,
			Server:  c.serverIdx(e.Server),
			Ext:     c.extIdx(e.Ext),
			Flags:   flags,
		})
	}
}

// RPCObserver returns the observer to register on the RPC tier.
func (c *Collector) RPCObserver() rpc.Observer {
	return func(sp rpc.Span) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.rpcAgg.observe(sp)
		if c.cfg.KeepRPCRecords {
			var status uint8
			if sp.Err != nil {
				status = uint8(protocol.StatusOf(sp.Err))
			}
			c.rpcRecs = append(c.rpcRecs, Record{
				Time:   sp.Start.UnixNano(),
				Dur:    int64(sp.Service),
				User:   uint64(sp.User),
				Kind:   KindRPC,
				RPC:    uint8(sp.RPC),
				Status: status,
				Proc:   uint8(sp.Proc),
				Shard:  int8(sp.Shard),
				Server: c.serverIdx("rpc"),
			})
		}
	}
}

// Records returns the storage/session records, in arrival order. The slice
// is shared; callers must not mutate it.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// RPCRecords returns retained RPC spans (empty unless KeepRPCRecords).
func (c *Collector) RPCRecords() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpcRecs
}

// RPC returns the streaming RPC aggregate.
func (c *Collector) RPC() *RPCAggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpcAgg
}

// Len returns the number of storage/session records collected, including
// records already flushed to disk by a streaming session.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records) + int(c.flushed)
}
