package trace

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"u1/internal/apiserver"
	"u1/internal/auth"
	"u1/internal/blob"
	"u1/internal/metadata"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
)

var t0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

func sampleEvent(op protocol.Op, at time.Time) apiserver.Event {
	return apiserver.Event{
		Server:   "whitecurrant",
		Proc:     23,
		Session:  1001,
		User:     42,
		Op:       op,
		Volume:   7,
		Node:     99,
		Hash:     protocol.HashBytes([]byte("x")),
		Size:     1 << 20,
		Wire:     900 << 10,
		Ext:      "mp3",
		Start:    at,
		Duration: 15 * time.Millisecond,
		Status:   protocol.StatusOK,
		IsUpdate: true,
	}
}

func TestCollectorAPIEvents(t *testing.T) {
	c := NewCollector(Config{Start: t0, Days: 30})
	obs := c.APIObserver()
	obs(sampleEvent(protocol.OpAuthenticate, t0))
	obs(sampleEvent(protocol.OpPutContent, t0.Add(time.Minute)))
	obs(sampleEvent(protocol.OpCloseSession, t0.Add(time.Hour)))

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Kind != KindSession || recs[1].Kind != KindStorage || recs[2].Kind != KindSession {
		t.Errorf("kinds = %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	r := recs[1]
	if protocol.Op(r.Op) != protocol.OpPutContent || r.Size != 1<<20 || r.Wire != 900<<10 {
		t.Errorf("record = %+v", r)
	}
	if !r.IsUpdate() {
		t.Error("update flag lost")
	}
	if c.ExtName(r.Ext) != "mp3" || c.ServerName(r.Server) != "whitecurrant" {
		t.Error("interning broken")
	}
	if !r.When().Equal(t0.Add(time.Minute)) || r.Duration() != 15*time.Millisecond {
		t.Error("time accessors broken")
	}
	if r.HashLo == 0 {
		t.Error("hash prefix lost")
	}
}

func TestCollectorRPCAggregation(t *testing.T) {
	c := NewCollector(Config{Start: t0, Days: 1, Shards: 4})
	obs := c.RPCObserver()
	for i := 0; i < 100; i++ {
		obs(rpc.Span{
			RPC:     protocol.RPCMakeFile,
			Class:   protocol.ClassWrite,
			Shard:   i % 4,
			Proc:    i % 3,
			User:    protocol.UserID(i),
			Start:   t0.Add(time.Duration(i) * time.Minute),
			Service: 10 * time.Millisecond,
		})
	}
	obs(rpc.Span{RPC: protocol.RPCGetNode, Start: t0, Err: protocol.ErrNotFound, Service: time.Millisecond})

	agg := c.RPC()
	if agg.Counts[protocol.RPCMakeFile] != 100 {
		t.Errorf("count = %d", agg.Counts[protocol.RPCMakeFile])
	}
	if agg.Errs[protocol.RPCGetNode] != 1 {
		t.Errorf("errs = %d", agg.Errs[protocol.RPCGetNode])
	}
	if agg.Samples[protocol.RPCMakeFile].Seen() != 100 {
		t.Error("reservoir did not see all samples")
	}
	// 100 spans spread over 4 shards at one per minute, plus the error span
	// (shard 0, minute 0).
	var total uint32
	for s := 0; s < 4; s++ {
		for _, n := range agg.ShardMinute[s] {
			total += n
		}
	}
	if total != 101 {
		t.Errorf("shard-minute total = %d", total)
	}
	if len(agg.ProcTotal) != 3 {
		t.Errorf("proc totals = %v", agg.ProcTotal)
	}
}

func TestLogname(t *testing.T) {
	day := time.Date(2014, 1, 28, 13, 0, 0, 0, time.UTC)
	if got := Logname("whitecurrant", 23, day); got != "production-whitecurrant-23-20140128.csv" {
		t.Errorf("logname = %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := NewCollector(Config{Start: t0, Days: 30, KeepRPCRecords: true})
	api := c.APIObserver()
	api(sampleEvent(protocol.OpAuthenticate, t0))
	api(sampleEvent(protocol.OpPutContent, t0.Add(time.Minute)))
	api(sampleEvent(protocol.OpGetContent, t0.Add(26*time.Hour))) // next day: second logfile
	rpcObs := c.RPCObserver()
	rpcObs(rpc.Span{
		RPC: protocol.RPCMakeContent, Shard: 3, Proc: 7, User: 42,
		Start: t0.Add(time.Minute), Service: 12 * time.Millisecond,
	})

	dir := t.TempDir()
	if err := c.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	// One file per (server, proc, day): whitecurrant day1, whitecurrant
	// day2, rpc day1.
	files, _ := filepath.Glob(filepath.Join(dir, "production-*.csv"))
	if len(files) != 3 {
		t.Fatalf("logfiles = %v", files)
	}

	ds, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 3 || len(ds.RPCRecords) != 1 {
		t.Fatalf("read %d storage + %d rpc records", len(ds.Records), len(ds.RPCRecords))
	}
	if ds.BadLines != 0 {
		t.Errorf("bad lines = %d", ds.BadLines)
	}
	// Sorted by time.
	for i := 1; i < len(ds.Records); i++ {
		if ds.Records[i].Time < ds.Records[i-1].Time {
			t.Error("records not time-sorted")
		}
	}
	// Field fidelity on the storage record.
	var put *Record
	for i := range ds.Records {
		if protocol.Op(ds.Records[i].Op) == protocol.OpPutContent {
			put = &ds.Records[i]
		}
	}
	if put == nil {
		t.Fatal("upload record lost")
	}
	orig := c.Records()[1]
	if put.Time != orig.Time || put.Size != orig.Size || put.Wire != orig.Wire ||
		put.HashLo != orig.HashLo || put.Flags != orig.Flags || put.Session != orig.Session {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", put, orig)
	}
	if ds.Extensions[put.Ext] != "mp3" {
		t.Errorf("ext = %q", ds.Extensions[put.Ext])
	}
	rp := ds.RPCRecords[0]
	if protocol.RPC(rp.RPC) != protocol.RPCMakeContent || rp.Shard != 3 {
		t.Errorf("rpc record = %+v", rp)
	}
}

func TestReadCSVTolerance(t *testing.T) {
	dir := t.TempDir()
	body := "storage,1389398400000000000,api,1,5,42,Upload,7,99,-1,ff,100,90,txt,1000,0,0\n" +
		"garbage line that does not parse\n" +
		"storage,not-a-timestamp,api,1,5,42,Upload,7,99,-1,ff,100,90,txt,1000,0,0\n" +
		"storage,1389398400000000001,api,1,5,42,NotAnOp,7,99,-1,ff,100,90,txt,1000,0,0\n" +
		"weird,1,2,3\n"
	path := filepath.Join(dir, "production-api-1-20140111.csv")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 1 {
		t.Errorf("records = %d", len(ds.Records))
	}
	if ds.BadLines != 4 {
		t.Errorf("bad lines = %d, want 4", ds.BadLines)
	}
}

func TestReadCSVEmptyDir(t *testing.T) {
	ds, err := ReadCSV(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 0 || ds.BadLines != 0 {
		t.Errorf("unexpected dataset %+v", ds)
	}
}

func TestExtTableOverflow(t *testing.T) {
	c := NewCollector(Config{Start: t0, Days: 1})
	obs := c.APIObserver()
	for i := 0; i < 300; i++ {
		e := sampleEvent(protocol.OpPutContent, t0)
		e.Ext = "e" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		obs(e)
	}
	// The table holds at most 255 entries; overflow folds to index 0.
	if got := len(c.Extensions()); got > 255 {
		t.Errorf("extension table = %d entries", got)
	}
}

// TestDynamicCollectorAttach attaches the trace collector to a live API
// server and RPC tier while traffic is in flight. Both observer lists are
// copy-on-write, so the attach must be race-free (run under -race) and the
// collector must start accumulating records mid-stream — the dynamic
// attach/detach the registration-before-traffic seed could not do.
func TestDynamicCollectorAttach(t *testing.T) {
	store := metadata.New(metadata.Config{Shards: 4})
	rpcTier := rpc.NewServer(store, rpc.Config{Seed: 3})
	authSvc := auth.New(auth.Config{Seed: 3})
	srv := apiserver.New(apiserver.Config{Name: "m", Procs: 2}, apiserver.Deps{
		RPC:      rpcTier,
		Auth:     authSvc,
		Blob:     blob.New(blob.Config{}),
		Broker:   notify.NewBroker(),
		Transfer: blob.DefaultTransferModel(),
	})

	const workers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			token, err := authSvc.Issue(protocol.UserID(w + 1))
			if err != nil {
				t.Error(err)
				return
			}
			sess, resp, _ := srv.OpenSession(token, nil, t0)
			if resp.Status != protocol.StatusOK {
				t.Errorf("open session: %v", resp.Status)
				return
			}
			for i := 0; i < per; i++ {
				srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
			}
			srv.CloseSession(sess, t0)
		}(w)
	}

	// Attach the collector mid-traffic, then drive guaranteed post-attach
	// operations through a fresh session.
	col := NewCollector(Config{Start: t0, Days: 1, KeepRPCRecords: true})
	srv.AddObserver(col.APIObserver())
	rpcTier.AddObserver(col.RPCObserver())
	wg.Wait()

	token, err := authSvc.Issue(99)
	if err != nil {
		t.Fatal(err)
	}
	sess, _, _ := srv.OpenSession(token, nil, t0)
	srv.Handle(sess, &protocol.Request{Op: protocol.OpListVolumes}, t0)
	srv.CloseSession(sess, t0)

	if col.Len() == 0 {
		t.Error("collector attached mid-traffic recorded no API events")
	}
	if len(col.RPCRecords()) == 0 {
		t.Error("collector attached mid-traffic recorded no RPC spans")
	}
}

func TestStreamMatchesWriteCSVByteForByte(t *testing.T) {
	// Streaming emission with arbitrary flush points must produce the same
	// per-file bytes as one post-hoc WriteCSV: this is the contract that
	// lets the scale campaign stream instead of accumulating a month of
	// records in memory.
	span := func(at time.Time, user protocol.UserID) rpc.Span {
		return rpc.Span{RPC: protocol.RPCGetDelta, User: user, Shard: 3, Proc: 2,
			Start: at, Service: 4 * time.Millisecond}
	}
	feed := func(c *Collector, flush func(i int)) {
		api, rpcObs := c.APIObserver(), c.RPCObserver()
		for i := 0; i < 50; i++ {
			at := t0.Add(time.Duration(i) * 40 * time.Minute) // crosses day files
			ev := sampleEvent(protocol.OpPutContent, at)
			ev.Session = protocol.SessionID(1000 + i)
			if i%3 == 0 {
				ev.Server, ev.Proc = "dill", 7
			}
			api(ev)
			rpcObs(span(at, protocol.UserID(i%5)))
			flush(i)
		}
	}

	batchDir, streamDir := t.TempDir(), t.TempDir()

	batch := NewCollector(Config{Start: t0, Days: 30, KeepRPCRecords: true})
	feed(batch, func(int) {})
	if err := batch.WriteCSV(batchDir); err != nil {
		t.Fatal(err)
	}

	stream := NewCollector(Config{Start: t0, Days: 30, KeepRPCRecords: true})
	if err := stream.StartStream(streamDir); err != nil {
		t.Fatal(err)
	}
	feed(stream, func(i int) {
		if i%7 == 0 { // uneven epochs, including mid-day boundaries
			if err := stream.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := stream.CloseStream(); err != nil {
		t.Fatal(err)
	}
	if stream.Len() != batch.Len() {
		t.Errorf("Len after streaming = %d, want %d", stream.Len(), batch.Len())
	}
	if got := len(stream.Records()); got != 0 {
		t.Errorf("stream retained %d records in memory", got)
	}

	want, err := filepath.Glob(filepath.Join(batchDir, "production-*.csv"))
	if err != nil || len(want) == 0 {
		t.Fatalf("batch wrote no logfiles (err=%v)", err)
	}
	got, _ := filepath.Glob(filepath.Join(streamDir, "production-*.csv"))
	if len(got) != len(want) {
		t.Fatalf("file sets differ: batch %d, stream %d", len(want), len(got))
	}
	for _, p := range want {
		name := filepath.Base(p)
		wb, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := os.ReadFile(filepath.Join(streamDir, name))
		if err != nil {
			t.Fatalf("stream missing %s: %v", name, err)
		}
		if string(wb) != string(gb) {
			t.Errorf("%s differs between batch and stream emission", name)
		}
	}
}
