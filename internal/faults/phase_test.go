package faults

import (
	"testing"
	"time"

	"u1/internal/protocol"
)

func phasePlan() *Plan {
	return &Plan{
		Seed: 9,
		Phases: []Phase{
			{
				From:  t0.Add(8 * time.Hour),
				Until: t0.Add(10 * time.Hour),
				Rules: map[protocol.Op]Rule{
					protocol.OpAuthenticate: {Fraction: 1},
					protocol.OpGetContent:   {Fraction: 1},
				},
			},
		},
	}
}

func TestPhaseWindowing(t *testing.T) {
	p := phasePlan()
	inside := t0.Add(9 * time.Hour)
	if _, ok := p.Decide(1, protocol.OpGetContent, inside); !ok {
		t.Error("op inside the phase window not injected")
	}
	// The window is [From, Until): its first instant injects, its last does
	// not.
	if _, ok := p.Decide(1, protocol.OpGetContent, t0.Add(8*time.Hour)); !ok {
		t.Error("op at phase start not injected")
	}
	if _, ok := p.Decide(1, protocol.OpGetContent, t0.Add(10*time.Hour)); ok {
		t.Error("op at phase end injected")
	}
	for _, outside := range []time.Time{t0, t0.Add(7 * time.Hour), t0.Add(11 * time.Hour)} {
		if st, ok := p.Decide(1, protocol.OpGetContent, outside); ok {
			t.Errorf("op outside the phase window injected with %v at %v", st, outside)
		}
	}
}

func TestPhaseCanTargetAuthenticate(t *testing.T) {
	// Uniform never touches Authenticate (the session machinery must work to
	// exercise per-op failures); a phase may — outages take logins down too.
	p := phasePlan()
	if _, ok := p.Decide(1, protocol.OpAuthenticate, t0.Add(9*time.Hour)); !ok {
		t.Error("phase rule for Authenticate not applied")
	}
	u := Uniform(9, 1)
	if _, ok := u.Decide(1, protocol.OpAuthenticate, t0.Add(9*time.Hour)); ok {
		t.Error("Uniform injected an Authenticate failure")
	}
}

func TestPhaseFallsBackToBaseRules(t *testing.T) {
	p := phasePlan()
	p.Rules = map[protocol.Op]Rule{protocol.OpPing: {Fraction: 1}}
	// Outside every phase the base rules apply...
	if _, ok := p.Decide(1, protocol.OpPing, t0); !ok {
		t.Error("base rule not applied outside phases")
	}
	// ...and inside a phase the phase's rules replace them wholesale.
	if _, ok := p.Decide(1, protocol.OpPing, t0.Add(9*time.Hour)); ok {
		t.Error("base rule leaked into a phase window")
	}
}

func TestPhaseFirstMatchWins(t *testing.T) {
	p := phasePlan()
	p.Phases = append(p.Phases, Phase{
		From:  t0.Add(9 * time.Hour),
		Until: t0.Add(12 * time.Hour),
		Rules: map[protocol.Op]Rule{protocol.OpPing: {Fraction: 1}},
	})
	// 9:30 is inside both phases; the first declared wins, so Ping (second
	// phase only) must not inject.
	overlap := t0.Add(9*time.Hour + 30*time.Minute)
	if _, ok := p.Decide(1, protocol.OpPing, overlap); ok {
		t.Error("second phase applied inside the first's window")
	}
	if _, ok := p.Decide(1, protocol.OpGetContent, overlap); !ok {
		t.Error("first phase not applied inside its window")
	}
	// Past the first phase's end the second takes over.
	after := t0.Add(11 * time.Hour)
	if _, ok := p.Decide(1, protocol.OpPing, after); !ok {
		t.Error("second phase not applied after the first ended")
	}
}

func TestPhaseEnablesPlan(t *testing.T) {
	p := &Plan{Phases: []Phase{{Rules: map[protocol.Op]Rule{protocol.OpPing: {Fraction: 1}}}}}
	if !p.Enabled() {
		t.Error("plan with only phase rules reports disabled")
	}
	if (&Plan{Phases: []Phase{{}}}).Enabled() {
		t.Error("plan with an empty phase reports enabled")
	}
}

func TestPhaseDecisionIsPureFunction(t *testing.T) {
	a, b := phasePlan(), phasePlan()
	a.Phases[0].Rules[protocol.OpGetContent] = Rule{Fraction: 0.4}
	b.Phases[0].Rules[protocol.OpGetContent] = Rule{Fraction: 0.4}
	for i := 0; i < 500; i++ {
		user := protocol.UserID(i%17 + 1)
		now := t0.Add(8*time.Hour + time.Duration(i)*13*time.Second)
		sa, oka := a.Decide(user, protocol.OpGetContent, now)
		sb, okb := b.Decide(user, protocol.OpGetContent, now)
		if sa != sb || oka != okb {
			t.Fatalf("divergent phase decision at i=%d", i)
		}
	}
}
