package faults

import (
	"testing"
	"time"
)

func TestSSOAdmissionDisabled(t *testing.T) {
	if NewSSOAdmission(0, 5) != nil {
		t.Error("rate 0 must disable the bucket")
	}
	if NewSSOAdmission(-1, 5) != nil {
		t.Error("negative rate must disable the bucket")
	}
	var nilBucket *SSOAdmission
	for i := 0; i < 10; i++ {
		if !nilBucket.Admit(t0.Add(time.Duration(i) * time.Second)) {
			t.Fatal("nil bucket refused a request")
		}
	}
}

func TestSSOAdmissionBurstThenRefill(t *testing.T) {
	// 1 token/sec, burst 3: the first 3 back-to-back requests pass, the 4th
	// is shed, and one second later exactly one more fits.
	b := NewSSOAdmission(1, 3)
	for i := 0; i < 3; i++ {
		if !b.Admit(t0) {
			t.Fatalf("request %d within burst was shed", i)
		}
	}
	if b.Admit(t0) {
		t.Error("request beyond burst admitted")
	}
	later := t0.Add(time.Second)
	if !b.Admit(later) {
		t.Error("refilled token not granted")
	}
	if b.Admit(later) {
		t.Error("second request after one refill admitted")
	}
}

func TestSSOAdmissionCapsAtBurst(t *testing.T) {
	// A long idle period must not bank more than burst tokens.
	b := NewSSOAdmission(10, 2)
	if !b.Admit(t0) {
		t.Fatal("first request shed")
	}
	later := t0.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if b.Admit(later) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Errorf("admitted %d back-to-back after idle, want burst (2)", admitted)
	}
}

func TestSSOAdmissionSustainedRate(t *testing.T) {
	// Over a long window, throughput converges to the configured rate no
	// matter how hard the storm hammers.
	b := NewSSOAdmission(2, 4) // 2/sec
	admitted := 0
	const perSec, secs = 50, 100
	for i := 0; i < perSec*secs; i++ {
		at := t0.Add(time.Duration(i) * time.Second / perSec)
		if b.Admit(at) {
			admitted++
		}
	}
	want := 2 * secs
	if admitted < want-1 || admitted > want+4 /* + burst */ {
		t.Errorf("admitted %d over %ds at rate 2/s, want ≈ %d", admitted, secs, want)
	}
}

func TestSSOAdmissionClockStall(t *testing.T) {
	// A non-advancing (or rewinding) clock must not refill the bucket.
	b := NewSSOAdmission(100, 1)
	if !b.Admit(t0) {
		t.Fatal("first request shed")
	}
	if b.Admit(t0) {
		t.Error("stalled clock refilled the bucket")
	}
	if b.Admit(t0.Add(-time.Minute)) {
		t.Error("rewound clock refilled the bucket")
	}
}

func TestSSOAdmissionMinimumBurst(t *testing.T) {
	// burst < 1 is clamped to 1: a bucket that can never admit is useless.
	b := NewSSOAdmission(1, 0)
	if !b.Admit(t0) {
		t.Error("burst-clamped bucket shed its first request")
	}
	if got := NewSSOAdmission(1, 0.2).Tokens(t0); got != 1 {
		t.Errorf("initial tokens = %v, want clamped burst 1", got)
	}
}
