package faults

import (
	"testing"
	"time"

	"u1/internal/protocol"
)

var t0 = time.Date(2014, 1, 11, 0, 0, 0, 0, time.UTC)

func TestDecideIsPureFunction(t *testing.T) {
	a := &Plan{Seed: 42, Rules: map[protocol.Op]Rule{protocol.OpGetContent: {Fraction: 0.3}}}
	b := &Plan{Seed: 42, Rules: map[protocol.Op]Rule{protocol.OpGetContent: {Fraction: 0.3}}}
	for i := 0; i < 500; i++ {
		user := protocol.UserID(i % 17)
		now := t0.Add(time.Duration(i) * 311 * time.Millisecond)
		sa, oka := a.Decide(user, protocol.OpGetContent, now)
		sb, okb := b.Decide(user, protocol.OpGetContent, now)
		if sa != sb || oka != okb {
			t.Fatalf("divergent decision at i=%d: (%v,%v) vs (%v,%v)", i, sa, oka, sb, okb)
		}
	}
}

func TestDecideRespectsFraction(t *testing.T) {
	p := &Plan{Seed: 1, Rules: map[protocol.Op]Rule{protocol.OpPutContent: {Fraction: 0.1}}}
	var failed int
	const n = 20000
	for i := 0; i < n; i++ {
		if _, ok := p.Decide(protocol.UserID(i%100+1), protocol.OpPutContent,
			t0.Add(time.Duration(i)*time.Second)); ok {
			failed++
		}
	}
	if got := float64(failed) / n; got < 0.08 || got > 0.12 {
		t.Errorf("failure fraction = %v, want ≈ 0.10", got)
	}
}

func TestDecideScopedToPlannedOps(t *testing.T) {
	p := &Plan{Seed: 1, Rules: map[protocol.Op]Rule{protocol.OpUnlink: {Fraction: 1}}}
	if _, ok := p.Decide(1, protocol.OpUnlink, t0); !ok {
		t.Error("planned op at fraction 1 did not fail")
	}
	for _, op := range protocol.Ops() {
		if op == protocol.OpUnlink {
			continue
		}
		if st, ok := p.Decide(1, op, t0); ok {
			t.Errorf("unplanned op %v failed with %v", op, st)
		}
	}
}

func TestDecideDefaultsAndDisabled(t *testing.T) {
	var nilPlan *Plan
	if _, ok := nilPlan.Decide(1, protocol.OpPing, t0); ok {
		t.Error("nil plan injected")
	}
	if nilPlan.Enabled() {
		t.Error("nil plan enabled")
	}
	if (&Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	p := &Plan{Rules: map[protocol.Op]Rule{protocol.OpPing: {Fraction: 1}}}
	if st, ok := p.Decide(1, protocol.OpPing, t0); !ok || st != protocol.StatusUnavailable {
		t.Errorf("default injected status = %v, %v; want unavailable", st, ok)
	}
	p.Rules[protocol.OpPing] = Rule{Fraction: 1, Status: protocol.StatusQuota}
	if st, _ := p.Decide(1, protocol.OpPing, t0); st != protocol.StatusQuota {
		t.Errorf("configured status = %v, want quota", st)
	}
}

func TestUniformPlanShape(t *testing.T) {
	if Uniform(1, 0) != nil {
		t.Error("rate 0 must disable the plan")
	}
	p := Uniform(9, 0.05)
	if !p.Enabled() {
		t.Fatal("uniform plan disabled")
	}
	for _, op := range []protocol.Op{protocol.OpAuthenticate, protocol.OpCloseSession} {
		if _, ok := p.Rules[op]; ok {
			t.Errorf("uniform plan must not target %v", op)
		}
	}
	if r := p.Rules[protocol.OpGetContent]; r.Fraction != 0.05 {
		t.Errorf("uniform fraction = %v", r.Fraction)
	}
	if len(p.Rules) != len(protocol.Ops())-2 {
		t.Errorf("uniform plan covers %d ops", len(p.Rules))
	}
}

func TestClassOf(t *testing.T) {
	cases := map[protocol.Op]Class{
		protocol.OpGetContent:   ClassData,
		protocol.OpPutPart:      ClassData,
		protocol.OpListVolumes:  ClassMetadata,
		protocol.OpUnlink:       ClassMetadata,
		protocol.OpPing:         ClassSession,
		protocol.OpAuthenticate: ClassSession,
		protocol.OpCloseSession: ClassSession,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
	for _, c := range []Class{ClassData, ClassMetadata, ClassSession} {
		if c.String() == "unknown" {
			t.Errorf("class %d must render", c)
		}
	}
}

func TestAdmissionLadder(t *testing.T) {
	a := NewAdmission(2, 2) // thresholds: data 2, metadata 4, session 8
	admit := func(op protocol.Op) bool { return a.Admit(0, op, t0) }
	for i := 0; i < 2; i++ {
		if !admit(protocol.OpGetContent) {
			t.Fatalf("data op %d shed below watermark", i)
		}
	}
	if admit(protocol.OpGetContent) {
		t.Error("data op admitted at the watermark")
	}
	for i := 0; i < 2; i++ {
		if !admit(protocol.OpListVolumes) {
			t.Fatalf("metadata op %d shed below 2x", i)
		}
	}
	if admit(protocol.OpListVolumes) {
		t.Error("metadata op admitted at 2x")
	}
	for i := 0; i < 4; i++ {
		if !admit(protocol.OpPing) {
			t.Fatalf("session op %d shed below 4x", i)
		}
	}
	if admit(protocol.OpPing) {
		t.Error("session op admitted at 4x")
	}
	if got := a.Load(0, t0); got != 8 {
		t.Errorf("windowed load = %d, want 8", got)
	}
	// Other procs are independent.
	if !a.Admit(1, protocol.OpGetContent, t0) {
		t.Error("independent proc shed")
	}
}

func TestAdmissionWindowSlides(t *testing.T) {
	a := NewAdmission(1, 1)
	if !a.Admit(0, protocol.OpGetContent, t0) {
		t.Fatal("first op shed")
	}
	if a.Admit(0, protocol.OpGetContent, t0.Add(30*time.Second)) {
		t.Error("admitted inside the window at the watermark")
	}
	if !a.Admit(0, protocol.OpGetContent, t0.Add(AdmissionWindow+time.Second)) {
		t.Error("shed after the charge left the window")
	}
	if got := a.Load(0, t0.Add(AdmissionWindow+time.Second)); got != 1 {
		t.Errorf("load after slide = %d, want 1", got)
	}
}

func TestAdmissionNilAndDisabled(t *testing.T) {
	var nilAdm *Admission
	if !nilAdm.Admit(0, protocol.OpGetContent, t0) {
		t.Error("nil admission shed")
	}
	if nilAdm.Load(0, t0) != 0 {
		t.Error("nil admission load")
	}
	off := NewAdmission(1, 0)
	for i := 0; i < 100; i++ {
		if !off.Admit(0, protocol.OpGetContent, t0) {
			t.Fatal("disabled admission shed")
		}
	}
	// Out-of-range procs fold to proc 0 instead of panicking.
	oob := NewAdmission(1, 1)
	if !oob.Admit(5, protocol.OpGetContent, t0) {
		t.Error("out-of-range proc shed on empty window")
	}
	if oob.Admit(-1, protocol.OpGetContent, t0) {
		t.Error("out-of-range proc bypassed the shared window")
	}
}
