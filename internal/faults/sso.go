package faults

import (
	"sync"
	"time"
)

// SSOAdmission is the session-tier admission model the §5.4 login storms
// called for and the per-op-class Admission controller deliberately does not
// cover: a fleet-shared token bucket in front of the SSO service. Every
// Authenticate request drains one token; an empty bucket sheds the request
// with StatusOverloaded at the API edge before the SSO tier is touched, so a
// credential-stuffing storm burns against the bucket instead of collapsing
// the authentication back-end for legitimate users.
//
// Refill is a pure function of elapsed (virtual) time, so under the serial
// driver the shed set is a deterministic function of the request arrival
// sequence; under parallel drivers it is live-state — the same contract as
// the windowed Admission controller.
type SSOAdmission struct {
	rate  float64 // tokens per second of virtual time
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

// NewSSOAdmission creates a bucket admitting a sustained rate of
// authentication requests per second (fractional rates model the simulator's
// compressed scale) with the given burst capacity. rate <= 0 disables the
// model and returns nil (nil buckets admit everything); burst < 1 is raised
// to 1 so an enabled bucket can always admit at least one request.
func NewSSOAdmission(rate, burst float64) *SSOAdmission {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &SSOAdmission{rate: rate, burst: burst, tokens: burst}
}

// Admit decides whether one Authenticate request at virtual time now may
// proceed, draining a token if so. Nil-safe: a nil bucket admits everything.
// The first call pins the refill clock; time moving backwards (bounded
// cross-shard epoch skew) refills nothing rather than going negative.
func (b *SSOAdmission) Admit(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.last, b.primed = now, true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current token balance at time now (diagnostics and
// tests); it refills like Admit but drains nothing.
func (b *SSOAdmission) Tokens(now time.Time) float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tokens
	if b.primed {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			t += dt * b.rate
			if t > b.burst {
				t = b.burst
			}
		}
	}
	return t
}
