package faults

import (
	"sync"
	"time"

	"u1/internal/protocol"
)

// Class buckets operations for shedding priority. Under overload the classes
// are refused in order: data transfers first (the bulk of a storm's bytes),
// metadata next, session management last — matching how the §5.4 operators
// kept the service reachable while refusing the leeching traffic.
type Class uint8

// Shedding classes, cheapest-to-shed first.
const (
	ClassData Class = iota
	ClassMetadata
	ClassSession
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassMetadata:
		return "metadata"
	case ClassSession:
		return "session"
	default:
		return "unknown"
	}
}

// ClassOf maps an operation to its shedding class.
func ClassOf(op protocol.Op) Class {
	switch {
	case op.IsData():
		return ClassData
	case op.IsSessionManagement():
		return ClassSession
	default:
		return ClassMetadata
	}
}

// threshold scales the watermark per class: data ops shed at the watermark,
// metadata at 2x, session management at 4x, so shedding degrades gracefully
// instead of going dark all at once.
func (c Class) threshold(watermark int) int {
	switch c {
	case ClassMetadata:
		return 2 * watermark
	case ClassSession:
		return 4 * watermark
	default:
		return watermark
	}
}

// AdmissionWindow is the trailing accounting window over which a process's
// in-flight load is measured.
const AdmissionWindow = time.Minute

// Admission is one API server machine's load-shedding state: per process,
// the admission timestamps of the trailing window. Safe for concurrent use
// (each process is independently locked, matching the per-proc request
// paths). now may be virtual (the simulator) or wall clock (the TCP stack);
// the only requirement is that it is roughly monotone per process.
type Admission struct {
	watermark int
	procs     []admProc
}

type admProc struct {
	mu      sync.Mutex
	entries []time.Time
}

// NewAdmission creates a controller for the given process count. A
// watermark <= 0 disables shedding (Admit always accepts and tracks
// nothing); use nil instead where possible.
func NewAdmission(procs, watermark int) *Admission {
	if procs < 1 {
		procs = 1
	}
	return &Admission{watermark: watermark, procs: make([]admProc, procs)}
}

// Admit decides whether proc may take one more op at time now, and if so
// charges it to the window. Nil-safe: a nil controller admits everything.
func (a *Admission) Admit(proc int, op protocol.Op, now time.Time) bool {
	if a == nil || a.watermark <= 0 {
		return true
	}
	if proc < 0 || proc >= len(a.procs) {
		proc = 0
	}
	p := &a.procs[proc]
	p.mu.Lock()
	defer p.mu.Unlock()
	// Prune entries that left the window. Entries are appended in admission
	// order; under the sharded simulator timestamps may be mildly out of
	// order (bounded by the epoch skew), so filter rather than binary-search.
	cutoff := now.Add(-AdmissionWindow)
	live := p.entries[:0]
	for _, t := range p.entries {
		if t.After(cutoff) {
			live = append(live, t)
		}
	}
	p.entries = live
	if len(p.entries) >= ClassOf(op).threshold(a.watermark) {
		return false
	}
	p.entries = append(p.entries, now)
	return true
}

// Load returns proc's current windowed in-flight load at time now
// (diagnostics and tests).
func (a *Admission) Load(proc int, now time.Time) int {
	if a == nil || proc < 0 || proc >= len(a.procs) {
		return 0
	}
	p := &a.procs[proc]
	p.mu.Lock()
	defer p.mu.Unlock()
	cutoff := now.Add(-AdmissionWindow)
	var n int
	for _, t := range p.entries {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}
