// Package faults implements the operational failure machinery of §5.4 that
// the success-path reproduction lacked: deterministic per-operation fault
// injection and per-op-class admission control (load shedding).
//
// # Fault plans
//
// A Plan fails a configured fraction of chosen operations with chosen wire
// statuses. The decision for one request is a pure function of
// (Seed, user, op, virtual now), scrambled through the repo's shared
// splitmix64 mix — the same idiom as the auth service's SSO failure
// injection. No shared RNG sequence is consumed, so the failure stream is
// identical regardless of which server handles the request, how goroutines
// interleave, or how many generator shards drive the cluster: any fixed
// (Seed, Workers, Plan) reproduces the same injected failures. The zero
// value (and nil) injects nothing.
//
// # Admission control
//
// Admission models the provider-side load shedding U1 operators resorted to
// during the §5.4 DDoS events. Each API process tracks the requests it
// admitted over a trailing accounting window (one minute); when that
// in-flight load crosses the watermark, new work is shed by operation class
// — data transfers first, metadata next, session management last — with
// StatusOverloaded, so a storm cannot starve session teardown or keepalives
// while the bulk traffic is refused. Shedding depends on live per-process
// load, so unlike Plan it is only reproducible under a serial driver.
//
// SSOAdmission covers the one class Admission leaves alone: Authenticate.
// It is a fleet-shared token bucket in front of the SSO tier, draining one
// token per login attempt, so a §5.4 credential storm is shed with
// StatusOverloaded before it can collapse the authentication back-end.
package faults

import (
	"time"

	"u1/internal/dist"
	"u1/internal/protocol"
)

// Rule is the injection policy for one operation.
type Rule struct {
	// Fraction of requests to fail, in [0, 1].
	Fraction float64
	// Status is the injected wire status; zero means StatusUnavailable.
	Status protocol.Status
}

// Plan is a deterministic per-op fault plan. The zero value injects nothing.
type Plan struct {
	// Seed isolates the plan's failure stream from other seeded subsystems.
	Seed int64
	// Rules maps each targeted operation to its injection policy; absent
	// operations never fail.
	Rules map[protocol.Op]Rule
	// Phases scope alternative rule sets to virtual-time windows — the
	// building block of scenario fault schedules (outage windows, degraded
	// intervals, recovery ramps). While now falls inside a phase, that
	// phase's Rules replace the base Rules entirely; outside every phase the
	// base Rules apply. Phases are consulted in order, first match wins.
	Phases []Phase
}

// Phase is one virtual-time window [From, Until) with its own rule set.
// Unlike the base Rules, a phase may target OpAuthenticate — a full outage
// takes the login path down with everything else — so scenario schedules can
// express the §5.4 shapes Uniform deliberately exempts.
type Phase struct {
	From  time.Time
	Until time.Time
	Rules map[protocol.Op]Rule
}

// rulesAt resolves the rule set in force at virtual time now: the first
// matching phase's rules, else the base rules. Still a pure function of the
// plan and now, so phased decisions stay reproducible.
func (p *Plan) rulesAt(now time.Time) map[protocol.Op]Rule {
	for i := range p.Phases {
		ph := &p.Phases[i]
		if !now.Before(ph.From) && now.Before(ph.Until) {
			return ph.Rules
		}
	}
	return p.Rules
}

// Uniform builds a plan failing every operation except session lifecycle
// (Authenticate has its own calibrated SSO injection, §7.3, and CloseSession
// must stay reliable for teardown) at the given fraction with
// StatusUnavailable. rate <= 0 yields a nil (disabled) plan.
func Uniform(seed int64, rate float64) *Plan {
	if rate <= 0 {
		return nil
	}
	p := &Plan{Seed: seed, Rules: make(map[protocol.Op]Rule)}
	for _, op := range protocol.Ops() {
		if op == protocol.OpAuthenticate || op == protocol.OpCloseSession {
			continue
		}
		p.Rules[op] = Rule{Fraction: rate}
	}
	return p
}

// Enabled reports whether the plan can inject anything.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	if len(p.Rules) > 0 {
		return true
	}
	for i := range p.Phases {
		if len(p.Phases[i].Rules) > 0 {
			return true
		}
	}
	return false
}

// draw derives the injection uniform for one request as a pure function of
// (Seed, user, op, now). Chaining two splitmix rounds keeps the op index —
// a small integer — from aliasing with nearby seeds or user ids.
func (p *Plan) draw(user protocol.UserID, op protocol.Op, now time.Time) float64 {
	z := dist.Splitmix64(dist.Splitmix64(uint64(p.Seed)+uint64(op)*dist.Splitmix64Gamma) +
		uint64(user)*dist.Splitmix64Gamma + uint64(now.UnixNano()))
	return float64(z>>11) / (1 << 53)
}

// Decide reports whether the request (user, op, now) is one of the injected
// failures, and with which status. Nil-safe; a false return means the
// request proceeds normally.
func (p *Plan) Decide(user protocol.UserID, op protocol.Op, now time.Time) (protocol.Status, bool) {
	if p == nil {
		return protocol.StatusOK, false
	}
	rule, ok := p.rulesAt(now)[op]
	if !ok || rule.Fraction <= 0 || p.draw(user, op, now) >= rule.Fraction {
		return protocol.StatusOK, false
	}
	st := rule.Status
	if st == protocol.StatusOK {
		st = protocol.StatusUnavailable
	}
	return st, true
}
