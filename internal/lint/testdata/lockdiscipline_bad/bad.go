// Package lockbad takes a shard's mutex directly even though the type defines
// the instrumented rlock()/wlock() accessors — the exact bypass that makes
// lock-hold histograms under-count contention.
package lockbad

import "sync"

type shard struct {
	mu sync.RWMutex
	n  int
}

func (s *shard) rlock() int  { s.mu.RLock(); return 0 }
func (s *shard) runlock(int) { s.mu.RUnlock() }
func (s *shard) wlock() int  { s.mu.Lock(); return 0 }
func (s *shard) wunlock(int) { s.mu.Unlock() }

// Read takes the read lock directly, invisible to the hold histograms.
func Read(s *shard) int {
	s.mu.RLock() // want: lockdiscipline: direct s.mu.RLock on shard
	defer s.mu.RUnlock()
	return s.n
}

// Write takes the write lock directly.
func Write(s *shard, v int) {
	s.mu.Lock() // want: lockdiscipline: direct s.mu.Lock on shard
	s.n = v
	s.mu.Unlock()
}
