// Package allowbad carries every class of broken u1:allow annotation: the
// framework reports each one, so exemptions cannot rot silently.
package allowbad

//u1:allowx
var A = 1 // want-above: allow: malformed u1:allow annotation

//u1:allow
var B = 2 // want-above: allow: missing a rule

//u1:allow nosuchrule because reasons
var C = 3 // want-above: allow: unknown rule nosuchrule

//u1:allow wallclock
var D = 4 // want-above: allow: has no reason

//u1:allow maporder this annotation suppresses nothing
var E = 5 // want-above: allow: stale u1:allow maporder annotation
