// Package lockclean exercises the lock shapes the lockdiscipline pass must
// not flag: accessor use, annotated maintenance bypasses, accessor bodies
// themselves, and plain types without accessors.
package lockclean

import "sync"

type shard struct {
	mu sync.RWMutex
	n  int
}

// The accessor bodies legitimately touch the mutex directly.
func (s *shard) rlock() int  { s.mu.RLock(); return 0 }
func (s *shard) runlock(int) { s.mu.RUnlock() }
func (s *shard) wlock() int  { s.mu.Lock(); return 0 }
func (s *shard) wunlock(int) { s.mu.Unlock() }

// Read goes through the accessors.
func Read(s *shard) int {
	defer s.runlock(s.rlock())
	return s.n
}

// Sweep is a sanctioned maintenance bypass.
func Sweep(s *shard) {
	//u1:allow lockdiscipline maintenance sweep, not client load
	s.mu.Lock()
	s.n = 0
	s.mu.Unlock()
}

// plain has a mutex but no accessors: direct locking is the normal idiom.
type plain struct {
	mu sync.Mutex
	n  int
}

// Bump locks a plain type directly; no accessors exist to bypass.
func Bump(p *plain) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}
