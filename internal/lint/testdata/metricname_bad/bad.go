// Package namebad mints metric names outside the documented grammar — each
// one would silently create a series u1benchdiff never compares.
package namebad

import "u1/internal/metrics"

// Register mints off-grammar names: an unknown family, a truncated series, a
// typo'd leaf, and a folded concatenation with a misspelled segment.
func Register(reg *metrics.Registry) {
	reg.Counter("metadata.bogus")    // want: metricname: "metadata.bogus" does not match
	reg.Gauge("api.sessions")        // want: metricname: "api.sessions" does not match
	reg.Histogram("blob.put.second") // want: metricname: "blob.put.second" does not match
	name := "meta.shard." + "0" + ".readz"
	reg.Counter(name) // want: metricname: "meta.shard.0.readz" does not match
}
