// Package mapbad leaks map iteration order into every sink the maporder pass
// recognizes: escaping appends, posted messages, journal records, hashes, and
// log appenders.
package mapbad

import "crypto/sha1"

type bus struct{}

func (bus) Post(v int) {}

type shard struct{}

func (shard) journal(v int) {}

type deltaLog struct{}

func (deltaLog) Append(v int) {}

// Collect appends map values to an escaping slice without sorting.
func Collect(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want: maporder: append to out
	}
	return out
}

// Publish posts simulation messages in iteration order.
func Publish(b bus, m map[int]int) {
	for k := range m {
		b.Post(k) // want: maporder: posts messages in map iteration order
	}
}

// Journal emits journal records in iteration order.
func Journal(s shard, m map[int]int) {
	for k := range m {
		s.journal(k) // want: maporder: journal/replication records
	}
}

// Fingerprint feeds a hash in iteration order; hash.Hash is an interface, so
// this checks the duck-typed method-set probe through interfaces.
func Fingerprint(m map[int]string) []byte {
	h := sha1.New()
	for _, v := range m {
		h.Write([]byte(v)) // want: maporder: feeds a hash in map iteration order
	}
	return h.Sum(nil)
}

// LogAll appends log records in iteration order.
func LogAll(l deltaLog, m map[int]int) {
	for k := range m {
		l.Append(k) // want: maporder: appends log records in map iteration order
	}
}
