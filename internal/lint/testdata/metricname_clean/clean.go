// Package nameclean mints only documented series, including names folded
// from constants, concatenation, single-assignment locals, and dynamic
// segments in the grammar's * positions.
package nameclean

import (
	"strconv"

	"u1/internal/metrics"
)

// Register mints documented series.
func Register(reg *metrics.Registry, shard int) {
	reg.Counter("wal.appends")
	reg.Gauge("api.sessions.active")
	reg.Histogram("blob.put.seconds")
	name := "meta.shard." + strconv.Itoa(shard) + ".reads"
	reg.Counter(name)
	reg.Histogram("meta.shard." + strconv.Itoa(shard) + ".read_hold.seconds")
}

// Experimental is a deliberate off-grammar series, annotated.
func Experimental(reg *metrics.Registry) {
	//u1:allow metricname experimental series, not part of the benchmark surface
	reg.Counter("x.experimental")
}

// Dynamic names whose first segment is unresolvable are out of scope.
func Dynamic(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix + ".count")
}
