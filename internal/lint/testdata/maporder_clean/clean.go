// Package mapclean exercises the map-range shapes the maporder pass must not
// flag: collect-then-sort, order-independent aggregation, loop-local targets,
// and annotated deliberate leaks.
package mapclean

import "sort"

// Keys is the sanctioned collect-then-sort idiom.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tail sorts through a slice expression: sort.Slice(out[1:], …) still
// sanctions appends to out.
func Tail(m map[string]int) []string {
	out := []string{"header"}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out[1:])
	return out
}

// Sum is order-independent aggregation: no sink.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type row struct{ vals []int }

// Local appends to a field of a struct created inside the loop: the order
// never outlives the iteration.
func Local(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		r := row{}
		for _, v := range vs {
			r.vals = append(r.vals, v)
		}
		n += len(r.vals)
	}
	return n
}

// Annotated is a deliberate, documented leak.
func Annotated(m map[int]int) []int {
	var out []int
	for _, v := range m {
		//u1:allow maporder feeds an order-insensitive membership set downstream
		out = append(out, v)
	}
	return out
}
