// Package detclean exercises the sanctioned shapes the determinism pass must
// not flag: annotated measurement sites (standalone and trailing forms),
// pure time conversions, and seeded rand constructors.
package detclean

import (
	"math/rand"
	"time"
)

// HoldSeconds measures real elapsed time behind standalone annotations.
func HoldSeconds() float64 {
	//u1:allow wallclock lock-hold measurement on the host clock
	start := time.Now()
	work()
	//u1:allow wallclock lock-hold measurement on the host clock
	return time.Since(start).Seconds()
}

// Trailing exercises the same-line annotation form.
func Trailing() time.Time {
	return time.Now() //u1:allow wallclock real-transport timestamp
}

func work() {}

// Convert is pure time arithmetic: no clock read, no finding.
func Convert(ns int64) time.Time { return time.Unix(0, ns) }

// Draw uses a seeded, caller-owned source: the sanctioned pattern.
func Draw(r *rand.Rand) int { return r.Intn(6) }

// Seeded builds the source the contract wants.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
