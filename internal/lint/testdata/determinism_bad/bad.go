// Package detbad violates the determinism contract in every way the pass
// recognizes: wall-clock reads, host-clock sleeps, and global math/rand
// draws. The golden test loads it under a u1/internal/ path so the pass
// applies, and once under u1/internal/sim to check the sharper message.
package detbad

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want: determinism: time.Now
}

// Wait sleeps on the host clock and measures elapsed host time.
func Wait(d time.Duration) time.Duration {
	start := time.Now()      // want: determinism: time.Now
	time.Sleep(d)            // want: determinism: time.Sleep
	return time.Since(start) // want: determinism: time.Since
}

// Draw uses the global math/rand source.
func Draw() int {
	return rand.Intn(6) // want: determinism: global math/rand draw rand.Intn
}

// Seeded builds a seeded source: the sanctioned pattern, not a finding.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// Convert is pure time arithmetic, not a clock read.
func Convert(ns int64) time.Time {
	return time.Unix(0, ns)
}
