package lint

import (
	"go/token"
	"strings"
)

// The `//u1:allow` annotation grammar:
//
//	//u1:allow <rule> <reason>
//
// where <rule> is a registered pass's Allow token (wallclock, maporder,
// lockdiscipline, metricname) and <reason> is free non-empty text explaining
// why the exemption is correct. The annotation exempts findings of that rule
// on the annotation's own line or, when the annotation stands alone, on the
// line directly below it. Every exemption must earn its keep: an annotation
// that suppressed nothing in a run is reported as stale, and a malformed or
// unknown-rule annotation is always reported.

const allowMarker = "u1:allow"

// allow is one parsed annotation.
type allow struct {
	rule   string
	reason string
	pos    token.Position
	// standalone marks a comment that occupies its own line (no code before
	// it), which exempts the following line instead of its own.
	standalone bool
	used       bool
	// bad carries the parse problem for malformed annotations, which can
	// never suppress anything.
	bad string
}

// allowSet indexes a package's annotations by (file, exempted line).
type allowSet struct {
	byLine map[string]map[int]*allow
	all    []*allow
}

// collectAllows parses every u1:allow annotation in pkg's files.
func collectAllows(pkg *Package) *allowSet {
	set := &allowSet{byLine: make(map[string]map[int]*allow)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				a := parseAllow(text, pos)
				// A comment starting at column 1..N with no code before it on
				// its line is standalone; compare the comment's line with the
				// line of the code it trails. Cheapest reliable signal: does
				// any declaration/statement token share the line? We answer
				// via the file's token positions — a trailing comment always
				// sits after code, so its column is well past gofmt's
				// indentation-only columns. Instead of guessing from columns,
				// check whether the comment group is a line-leading group:
				// ast associates trailing comments and leading comments
				// identically, so we look at the raw source line via the
				// position of the first token on that line. go/token does not
				// expose that directly; we mark standalone when the comment's
				// column equals the indentation of the *next* line's code —
				// in practice gofmt makes standalone comments start the line,
				// so a comment whose column is the first non-blank column is
				// standalone. The loader records line offsets to answer this.
				a.standalone = pkg.commentStandsAlone(c)
				set.add(a)
			}
		}
	}
	return set
}

// parseAllow parses the annotation text (sans `//`, trimmed).
func parseAllow(text string, pos token.Position) *allow {
	rest := strings.TrimPrefix(text, allowMarker)
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		// e.g. "u1:allowx" — not ours.
		return &allow{pos: pos, bad: "malformed u1:allow annotation: expected `//u1:allow <rule> <reason>`"}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return &allow{pos: pos, bad: "u1:allow annotation missing a rule: expected `//u1:allow <rule> <reason>`"}
	}
	rule := fields[0]
	if passByAllow(rule) == nil {
		known := make([]string, 0, len(Passes()))
		for _, p := range Passes() {
			known = append(known, p.Allow)
		}
		return &allow{pos: pos, bad: "u1:allow annotation names unknown rule " + rule + " (known: " + strings.Join(known, ", ") + ")"}
	}
	if len(fields) < 2 {
		return &allow{pos: pos, rule: rule, bad: "u1:allow " + rule + " annotation has no reason; every exemption must say why it is correct"}
	}
	return &allow{rule: rule, reason: strings.Join(fields[1:], " "), pos: pos}
}

func (s *allowSet) add(a *allow) {
	line := a.pos.Line
	if a.standalone {
		line++ // a standalone annotation exempts the line below it
	}
	m := s.byLine[a.pos.Filename]
	if m == nil {
		m = make(map[int]*allow)
		s.byLine[a.pos.Filename] = m
	}
	if m[line] == nil {
		m[line] = a
	}
	s.all = append(s.all, a)
}

// lookup returns the live annotation exempting rule at pos, if any.
func (s *allowSet) lookup(rule string, pos token.Position) *allow {
	a := s.byLine[pos.Filename][pos.Line]
	if a == nil || a.bad != "" || a.rule != rule {
		return nil
	}
	return a
}

// problems returns diagnostics for malformed and stale annotations.
func (s *allowSet) problems() []Diagnostic {
	var out []Diagnostic
	for _, a := range s.all {
		switch {
		case a.bad != "":
			out = append(out, Diagnostic{Pos: a.pos, Pass: "allow", Message: a.bad})
		case !a.used:
			out = append(out, Diagnostic{
				Pos:  a.pos,
				Pass: "allow",
				Message: "stale u1:allow " + a.rule + " annotation: it suppresses nothing " +
					"(the violation moved or was fixed; delete the annotation)",
			})
		}
	}
	return out
}
