package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The determinism pass enforces the repo's foundational contract: for a fixed
// (Seed, Workers, …) the simulation's event stream, metrics, and fingerprints
// are bit-for-bit reproducible. Wall-clock reads and global math/rand draws
// are the two ways a run silently picks up entropy from the host, so both are
// findings in every internal package. Legitimate measurement sites — lock-hold
// histograms, real-transport timing, hotpath benchmarking — stay expressible
// behind `//u1:allow wallclock <reason>`, which makes every exemption
// self-documenting and auditable.

// simDeterministic is the set of packages under the bit-for-bit replay
// contract (golden event streams, shard fingerprints). Findings there get the
// sharper message; everywhere else under internal/ the wall-clock read is
// still a finding because observability code feeds the same metric snapshots
// the golden tests diff.
var simDeterministic = map[string]bool{
	"u1/internal/sim":      true,
	"u1/internal/workload": true,
	"u1/internal/metadata": true,
	"u1/internal/faults":   true,
	"u1/internal/scenario": true,
	"u1/internal/dist":     true,
	"u1/internal/auth":     true,
}

// wallclockFuncs are the package time functions that read or wait on the host
// clock. Pure conversions (time.Unix, time.Duration arithmetic) are fine.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var determinismPass = &Pass{
	Name:  "determinism",
	Allow: "wallclock",
	Doc:   "no wall-clock reads (time.Now/Since/Sleep/…) or global math/rand draws in internal packages",
	Run:   runDeterminism,
}

func runDeterminism(p *Package, report reportFunc) {
	if !strings.HasPrefix(p.Path, "u1/internal/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if !wallclockFuncs[name] {
					break
				}
				if simDeterministic[p.Path] {
					report(call, "time.%s in a simulation-deterministic package: use the virtual clock, or annotate `//u1:allow wallclock <reason>` if this measures real elapsed time only", name)
				} else {
					report(call, "wall-clock time.%s: annotate `//u1:allow wallclock <reason>` if this is a legitimate measurement or real-transport site", name)
				}
			case "math/rand", "math/rand/v2":
				// Constructors (rand.New, rand.NewSource, rand.NewZipf) build
				// seedable instances and are exactly what the contract wants.
				if strings.HasPrefix(name, "New") {
					break
				}
				report(call, "global math/rand draw rand.%s breaks run-to-run determinism; draw from a seeded, worker-owned *rand.Rand instead", name)
			}
			return true
		})
	}
}
