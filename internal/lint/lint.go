// Package lint is the repo's contract-enforcing static analysis framework.
// The properties the simulation is built on — bit-for-bit determinism for a
// fixed (Seed, Workers, …), journal-under-lock durability, canonical mailbox
// drain order, and the stable metric naming scheme the BENCH_N.json pipeline
// keys on — are invariants of the *source*, not of any one test run. This
// package loads and type-checks every package in the module with nothing but
// the standard library (go/parser, go/types, go/importer) and runs a registry
// of named passes over the typed syntax trees; cmd/u1lint is the CLI that
// prints `file:line: [pass] message` diagnostics and exits non-zero on any
// finding, and the CI lint job runs it over the whole tree.
//
// Exemptions are explicit and self-documenting: a site that legitimately
// breaks a rule carries a `//u1:allow <rule> <reason>` annotation on the same
// line or the line directly above (see allow.go). An annotation that is
// malformed, names an unknown rule, or no longer suppresses anything is itself
// a diagnostic, so stale exemptions cannot accumulate.
//
// The pass catalog is returned by Passes (determinism, maporder,
// lockdiscipline, metricname, each in its own file); ROADMAP.md documents each
// pass's contract and the follow-up passes still open (interceptor-ordering,
// journal-under-lock flow analysis).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the pass that produced it, and the
// message. String renders the canonical `file:line: [pass] message` form.
type Diagnostic struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pass, d.Message)
}

// reportFunc is how a pass emits findings: the framework attaches the message
// to n's position and resolves annotations before anything is surfaced.
type reportFunc = func(n ast.Node, format string, args ...any)

// Pass is one named analysis. Run inspects a type-checked package and reports
// findings through report; the framework resolves annotations, so Run never
// needs to think about exemptions.
type Pass struct {
	// Name is the pass name printed in diagnostics.
	Name string
	// Allow is the annotation rule token that exempts this pass's findings
	// (`//u1:allow <Allow> <reason>`). Usually the pass name; the determinism
	// pass uses "wallclock" so the annotation names the thing being permitted
	// rather than the pass that polices it.
	Allow string
	// Doc is the one-line description shown by `u1lint -list`.
	Doc string
	// Run executes the pass. report attaches the finding to n's position.
	Run func(p *Package, report func(n ast.Node, format string, args ...any))
}

// Passes returns the registered pass catalog in registration order.
func Passes() []*Pass {
	return []*Pass{determinismPass, maporderPass, lockdisciplinePass, metricnamePass}
}

// passByAllow maps an annotation rule token to its pass, for validating
// annotations against the catalog.
func passByAllow(rule string) *Pass {
	for _, p := range Passes() {
		if p.Allow == rule {
			return p
		}
	}
	return nil
}

// Run executes every registered pass over pkgs and returns the surviving
// diagnostics — findings not covered by a matching annotation, plus one
// diagnostic per malformed, unknown, or unused annotation — sorted by
// position. It is the single entry point the CLI and the tests share.
func Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, pass := range Passes() {
			pass := pass
			report := func(n ast.Node, format string, args ...any) {
				pos := pkg.Fset.Position(n.Pos())
				if a := allows.lookup(pass.Allow, pos); a != nil {
					a.used = true
					return
				}
				diags = append(diags, Diagnostic{
					Pos:     pos,
					Pass:    pass.Name,
					Message: fmt.Sprintf(format, args...),
				})
			}
			pass.Run(pkg, report)
		}
		diags = append(diags, allows.problems()...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pass < b.Pass
	})
	return diags
}
