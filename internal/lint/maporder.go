package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The maporder pass catches Go map iteration order escaping into an ordered
// sink — the exact bug class the canonical mailbox drain order, the
// journal-by-resulting-state replication stream, and the sorted-state
// ShardFingerprint contracts exist to prevent. A `range` over a map is fine
// when the body is order-independent (counting, deleting, rebuilding another
// map); it is a finding when the body appends to a slice that outlives the
// loop, posts simulation messages, writes journal/WAL records, or feeds a
// hash. The sanctioned fix — collect the keys, sort, then iterate — is
// recognized and suppressed: an append whose target is later passed to a
// sort/slices call in the same function is the collect-then-sort idiom, not
// a leak.

var maporderPass = &Pass{
	Name:  "maporder",
	Allow: "maporder",
	Doc:   "map iteration order must not escape into slices, posted messages, journals, or hashes",
	Run:   runMaporder,
}

func runMaporder(p *Package, report reportFunc) {
	if !strings.HasPrefix(p.Path, "u1/internal/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMaporder(p, fd, report)
		}
	}
}

// checkFuncMaporder inspects one function: find map ranges, find ordered
// sinks in their bodies, suppress collect-then-sort.
func checkFuncMaporder(p *Package, fd *ast.FuncDecl, report reportFunc) {
	// First collect every sort call in the function with the textual form of
	// its first argument, so append targets can be matched against them.
	type sortCall struct {
		target string
		pos    token.Pos
	}
	var sorts []sortCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || len(call.Args) == 0 {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			sorts = append(sorts, sortCall{sortTargetString(call.Args[0]), call.Pos()})
		}
		return true
	})
	sortedLater := func(target string, after token.Pos) bool {
		for _, s := range sorts {
			if s.pos >= after && s.target == target {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		mapDesc := types.ExprString(rng.X)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Sink 1: append to a slice that outlives the loop. Suppressed
			// when the target is sorted later (collect-then-sort).
			if id, ok := call.Fun.(*ast.Ident); ok {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
					target := types.ExprString(call.Args[0])
					if escapesLoop(p, call.Args[0], rng) && !sortedLater(target, call.Pos()) {
						report(call, "append to %s inside `range %s` leaks map iteration order; collect then sort, or iterate sorted keys", target, mapDesc)
					}
				}
				return true
			}
			// Sinks 2–4: order-sensitive method calls.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if why := orderedSink(p, sel); why != "" {
					report(call, "%s inside `range %s` %s; iterate sorted keys instead", types.ExprString(call.Fun), mapDesc, why)
				}
			}
			return true
		})
		return true
	})
}

// sortTargetString renders a sort call's first argument for matching against
// append targets, unwrapping slice/index expressions so `sort.Slice(out[1:],
// …)` matches an append to `out`.
func sortTargetString(e ast.Expr) string {
	for done := false; !done; {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			done = true
		}
	}
	return types.ExprString(e)
}

// escapesLoop reports whether the append target is rooted outside the range
// statement (so the loop's iteration order persists beyond it). The root of a
// selector/index chain decides: appending to a field of a struct created
// inside the loop body stays loop-local and cannot leak iteration order.
func escapesLoop(p *Package, target ast.Expr, rng *ast.RangeStmt) bool {
	for done := false; !done; {
		switch x := target.(type) {
		case *ast.SelectorExpr:
			target = x.X
		case *ast.IndexExpr:
			target = x.X
		case *ast.ParenExpr:
			target = x.X
		case *ast.StarExpr:
			target = x.X
		default:
			done = true
		}
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return true
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// orderedSink classifies a method call as order-sensitive, returning a short
// explanation, or "" if it is not a recognized sink.
func orderedSink(p *Package, sel *ast.SelectorExpr) string {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	name := sel.Sel.Name
	switch name {
	case "Post":
		return "posts messages in map iteration order (canonical drain-order contract)"
	case "journal", "DeliverReplication":
		return "emits journal/replication records in map iteration order (journal-under-lock contract)"
	case "Write", "Sum":
		// Duck-check for hash.Hash: iteration order would change the digest.
		if hasMethods(recv, "Write", "Sum", "Reset", "BlockSize") {
			return "feeds a hash in map iteration order (fingerprint contract)"
		}
	case "Append":
		// WAL/log appenders: records land on disk in iteration order.
		if named := namedType(recv); named != nil {
			tn := named.Obj().Name()
			if strings.Contains(tn, "Log") || strings.Contains(tn, "WAL") {
				return "appends log records in map iteration order"
			}
		}
	}
	return ""
}

// namedType unwraps pointers to the receiver's named type, if any.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasMethods reports whether t's (or *t's) method set contains every name.
// Interface types (hash.Hash) carry their methods directly; for concrete
// types the pointer method set is the superset worth checking.
func hasMethods(t types.Type, names ...string) bool {
	ms := types.NewMethodSet(t)
	_, isIface := t.Underlying().(*types.Interface)
	_, isPtr := t.(*types.Pointer)
	if !isIface && !isPtr {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for _, name := range names {
		if ms.Lookup(nil, name) == nil {
			return false
		}
	}
	return true
}
