package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader: a stdlib-only module loader. It discovers the module root by
// walking up to go.mod, enumerates package directories, parses every non-test
// file and type-checks each package with go/types. Imports inside the module
// resolve recursively through the loader itself; standard-library imports
// resolve through go/importer's source importer (which reads GOROOT/src, so
// nothing outside the toolchain is needed). Test files are deliberately out
// of scope: the contracts the passes enforce bind the simulation's library
// code, while tests are drivers that legitimately use wall-clock deadlines
// and ad-hoc names.

// Package is one loaded, type-checked package: the unit every pass runs over.
type Package struct {
	// Path is the import path ("u1/internal/sim"). Fixture packages loaded
	// with LoadDirAs carry whatever path the test assigned.
	Path string
	// Dir is the directory the files were read from, as given to the loader.
	Dir string
	// Fset is the loader-wide file set (shared across packages).
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Pkg and Info are the go/types results.
	Pkg  *types.Package
	Info *types.Info

	src map[string][]byte // file name -> raw source, for annotation layout
}

// commentStandsAlone reports whether c is the first token on its source line
// (a standalone comment exempts the line below; a trailing comment exempts
// its own line).
func (p *Package) commentStandsAlone(c *ast.Comment) bool {
	pos := p.Fset.Position(c.Pos())
	src, ok := p.src[pos.Filename]
	if !ok || pos.Column <= 1 {
		return true
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return true
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// Loader loads and type-checks module packages. One Loader amortizes the
// standard-library type-checking across every package it loads, so callers
// should reuse a single instance.
type Loader struct {
	// ModuleRoot is the directory containing go.mod, as discovered (possibly
	// relative to the working directory it was created in).
	ModuleRoot string
	// ModulePath is the module's declared path ("u1").
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // by import path
}

// NewLoader discovers the module root upward from dir ("." for the working
// directory) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// findModule walks up from dir to the first go.mod and parses its module path.
func findModule(dir string) (root, modPath string, err error) {
	d := dir
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Join(d, "..")
		abs, _ := filepath.Abs(d)
		absParent, _ := filepath.Abs(parent)
		if abs == absParent {
			return "", "", fmt.Errorf("lint: no go.mod found from %s upward", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load through the
// loader, everything else through the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.LoadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory to its module import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModulePath)
	}
	return l.ModulePath + "/" + rel, nil
}

// LoadDir loads the package in dir under its natural module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDirAs(dir, path)
}

// LoadDirAs loads the package in dir under an explicit import path — how the
// golden tests give testdata fixtures the package identity their scenario
// needs. Results are memoized by import path.
func (l *Loader) LoadDirAs(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	sort.Strings(names)

	pkg := &Package{
		Path: importPath,
		Dir:  dir,
		Fset: l.fset,
		src:  make(map[string][]byte, len(names)),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	for _, name := range names {
		fname := filepath.Join(dir, name)
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fname, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fname, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.src[fname] = src
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Pkg = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Expand resolves a package pattern to package directories: `dir/...` walks
// dir recursively (skipping testdata, hidden and underscore directories, the
// go tool's convention), anything else names a single directory — including
// testdata fixture directories when named explicitly.
func (l *Loader) Expand(pattern string) ([]string, error) {
	dir, recursive := strings.CutSuffix(pattern, "/...")
	if dir == "" || pattern == "..." {
		dir = "."
	}
	if !recursive {
		return []string{filepath.Clean(pattern)}, nil
	}
	var dirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			pd := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != pd {
				dirs = append(dirs, pd)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadPatterns expands and loads every pattern, returning packages sorted by
// import path.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, pat := range patterns {
		dirs, err := l.Expand(pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			pkg, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				pkgs = append(pkgs, pkg)
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
