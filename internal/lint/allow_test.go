package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestParseAllow pins the annotation grammar: `//u1:allow <rule> <reason>`,
// with every malformation reported rather than silently ignored.
func TestParseAllow(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 7}
	cases := []struct {
		name   string
		text   string // as seen after stripping `//` and trimming
		rule   string
		reason string
		badSub string // "" means the annotation must parse clean
	}{
		{"valid", "u1:allow wallclock lock-hold measurement", "wallclock", "lock-hold measurement", ""},
		{"valid multi-word reason", "u1:allow maporder feeds an unordered set", "maporder", "feeds an unordered set", ""},
		{"tab separated", "u1:allow\tlockdiscipline\tmaintenance sweep", "lockdiscipline", "maintenance sweep", ""},
		{"reason collapses whitespace", "u1:allow metricname  a   b", "metricname", "a b", ""},
		{"missing reason", "u1:allow wallclock", "", "", "has no reason"},
		{"missing rule", "u1:allow", "", "", "missing a rule"},
		{"fused marker", "u1:allowx", "", "", "malformed u1:allow annotation"},
		{"unknown rule", "u1:allow bogus because reasons", "", "", "unknown rule bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := parseAllow(tc.text, pos)
			if tc.badSub != "" {
				if a.bad == "" || !strings.Contains(a.bad, tc.badSub) {
					t.Fatalf("parseAllow(%q).bad = %q, want substring %q", tc.text, a.bad, tc.badSub)
				}
				return
			}
			if a.bad != "" {
				t.Fatalf("parseAllow(%q) unexpectedly bad: %s", tc.text, a.bad)
			}
			if a.rule != tc.rule || a.reason != tc.reason {
				t.Fatalf("parseAllow(%q) = rule %q reason %q, want %q %q", tc.text, a.rule, a.reason, tc.rule, tc.reason)
			}
		})
	}
}

// TestAllowSetLineBinding pins the exemption scope rules: a standalone
// annotation binds to the next line, a trailing one to its own line, and
// lookups match only the annotated rule.
func TestAllowSetLineBinding(t *testing.T) {
	set := &allowSet{byLine: make(map[string]map[int]*allow)}
	standalone := &allow{rule: "wallclock", reason: "r", standalone: true,
		pos: token.Position{Filename: "a.go", Line: 10}}
	trailing := &allow{rule: "maporder", reason: "r",
		pos: token.Position{Filename: "a.go", Line: 20}}
	set.add(standalone)
	set.add(trailing)

	if set.lookup("wallclock", token.Position{Filename: "a.go", Line: 11}) != standalone {
		t.Errorf("standalone annotation on line 10 should exempt line 11")
	}
	if set.lookup("wallclock", token.Position{Filename: "a.go", Line: 10}) != nil {
		t.Errorf("standalone annotation must not exempt its own line")
	}
	if set.lookup("maporder", token.Position{Filename: "a.go", Line: 20}) != trailing {
		t.Errorf("trailing annotation on line 20 should exempt line 20")
	}
	if set.lookup("wallclock", token.Position{Filename: "a.go", Line: 20}) != nil {
		t.Errorf("rule mismatch must not exempt")
	}
	if set.lookup("maporder", token.Position{Filename: "b.go", Line: 20}) != nil {
		t.Errorf("file mismatch must not exempt")
	}

	// Neither annotation was marked used: both must surface as stale.
	stale := 0
	for _, d := range set.problems() {
		if strings.Contains(d.Message, "stale u1:allow") {
			stale++
		}
	}
	if stale != 2 {
		t.Errorf("expected 2 stale diagnostics, got %d", stale)
	}
}

// TestMatchesGrammar pins the metric-name matcher's segment semantics.
func TestMatchesGrammar(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"wal.appends", true},
		{"api.op.unlink.seconds", true},
		{"meta.shard.3.read_hold.seconds", true},
		{"meta.shard." + dynSegment + ".reads", true},
		{"gateway.backend.api-0.placed", true},
		{"wal.append", false},
		{"api.op.seconds", false},
		{"meta.shard..reads", false},
		{"metadata.bogus", false},
		{"", false},
	}
	for _, tc := range cases {
		if got := matchesGrammar(tc.name); got != tc.ok {
			t.Errorf("matchesGrammar(%q) = %v, want %v", tc.name, got, tc.ok)
		}
	}
}
