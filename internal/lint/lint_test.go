package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// One loader serves every test in the package: the standard-library
// type-checking it does through the source importer is the expensive part,
// and it amortizes across fixtures and the real-tree run.
var (
	loaderOnce sync.Once
	loaderErr  error
	loader     *Loader
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// want is one expected diagnostic, parsed from a fixture comment of the form
// `// want: <pass>: <message substring>` (expected on that line) or
// `// want-above: <pass>: <substring>` (expected on the line above, for
// diagnostics that anchor to a standalone annotation).
type want struct {
	pass string
	sub  string
}

type wantKey struct {
	file string
	line int
}

func parseWants(t *testing.T, pkg *Package) map[wantKey][]want {
	t.Helper()
	wants := make(map[wantKey][]want)
	add := func(file string, line int, spec string) {
		pass, sub, ok := strings.Cut(strings.TrimSpace(spec), ": ")
		if !ok || pass == "" || sub == "" {
			t.Fatalf("%s:%d: malformed want comment %q", file, line, spec)
		}
		wants[wantKey{file, line}] = append(wants[wantKey{file, line}], want{pass, sub})
	}
	for fname, src := range pkg.src {
		for i, line := range strings.Split(string(src), "\n") {
			if _, spec, ok := strings.Cut(line, "// want: "); ok {
				add(fname, i+1, spec)
			}
			if _, spec, ok := strings.Cut(line, "// want-above: "); ok {
				add(fname, i, spec)
			}
		}
	}
	return wants
}

// checkFixture loads dir under importPath and requires Run's diagnostics to
// match the fixture's want comments exactly — every diagnostic expected,
// every expectation produced.
func checkFixture(t *testing.T, dir, importPath string) {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDirAs(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s as %s: %v", dir, importPath, err)
	}
	wants := parseWants(t, pkg)
	for _, d := range Run([]*Package{pkg}) {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		found := -1
		for i, w := range ws {
			if w.pass == d.Pass && strings.Contains(d.Message, w.sub) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(ws[:found], ws[found+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("missing diagnostic at %s:%d: [%s] containing %q", k.file, k.line, w.pass, w.sub)
		}
	}
}

func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		name string
		dir  string
		path string
	}{
		{"determinism_bad", "testdata/determinism_bad", "u1/internal/detbad"},
		{"determinism_clean", "testdata/determinism_clean", "u1/internal/detclean"},
		{"maporder_bad", "testdata/maporder_bad", "u1/internal/mapbad"},
		{"maporder_clean", "testdata/maporder_clean", "u1/internal/mapclean"},
		{"lockdiscipline_bad", "testdata/lockdiscipline_bad", "u1/internal/lockbad"},
		{"lockdiscipline_clean", "testdata/lockdiscipline_clean", "u1/internal/lockclean"},
		{"metricname_bad", "testdata/metricname_bad", "u1/internal/namebad"},
		{"metricname_clean", "testdata/metricname_clean", "u1/internal/nameclean"},
		{"allow_bad", "testdata/allow_bad", "u1/internal/allowbad"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, tc.dir, tc.path) })
	}
}

// TestViolationFixturesFindSomething is the exit-code contract behind
// cmd/u1lint: a violating fixture must yield at least one diagnostic, so the
// CLI exits non-zero on it.
func TestViolationFixturesFindSomething(t *testing.T) {
	l := sharedLoader(t)
	for _, dir := range []string{
		"testdata/determinism_bad", "testdata/maporder_bad",
		"testdata/lockdiscipline_bad", "testdata/metricname_bad",
		"testdata/allow_bad",
	} {
		pkg, err := l.LoadDirAs(dir, "u1/internal/"+filepath.Base(dir))
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		if diags := Run([]*Package{pkg}); len(diags) == 0 {
			t.Errorf("%s: expected findings, got none", dir)
		}
	}
}

// TestDeterminismPathGates checks both sides of the pass's path gating: the
// sharper message inside a simulation-deterministic package, and silence
// outside u1/internal entirely.
func TestDeterminismPathGates(t *testing.T) {
	// A fresh loader: the shared one must never learn fixture code under a
	// real package path like u1/internal/sim.
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}

	simPkg, err := l.LoadDirAs("testdata/determinism_bad", "u1/internal/sim")
	if err != nil {
		t.Fatalf("loading fixture as u1/internal/sim: %v", err)
	}
	sharper := 0
	for _, d := range Run([]*Package{simPkg}) {
		if d.Pass == "determinism" && strings.Contains(d.Message, "simulation-deterministic package") {
			sharper++
		}
	}
	if sharper == 0 {
		t.Errorf("expected sharper sim-deterministic messages under u1/internal/sim, got none")
	}

	extPkg, err := l.LoadDirAs("testdata/determinism_bad", "u1/external/detbad")
	if err != nil {
		t.Fatalf("loading fixture as u1/external/detbad: %v", err)
	}
	if diags := Run([]*Package{extPkg}); len(diags) != 0 {
		t.Errorf("expected no findings outside u1/internal/, got %d (first: %s)", len(diags), diags[0])
	}
}

// TestPassCatalog pins the registry shape the annotation grammar and
// `u1lint -list` depend on.
func TestPassCatalog(t *testing.T) {
	names := make(map[string]bool)
	allows := make(map[string]bool)
	for _, p := range Passes() {
		if p.Name == "" || p.Allow == "" || p.Doc == "" || p.Run == nil {
			t.Errorf("pass %+v: incomplete registration", p)
		}
		if names[p.Name] {
			t.Errorf("duplicate pass name %q", p.Name)
		}
		if allows[p.Allow] {
			t.Errorf("duplicate allow token %q", p.Allow)
		}
		names[p.Name], allows[p.Allow] = true, true
		if passByAllow(p.Allow) != p {
			t.Errorf("passByAllow(%q) does not round-trip", p.Allow)
		}
	}
	for _, want := range []string{"determinism", "maporder", "lockdiscipline", "metricname"} {
		if !names[want] {
			t.Errorf("pass %q missing from catalog", want)
		}
	}
	if passByAllow("nosuchrule") != nil {
		t.Errorf("passByAllow accepted an unknown rule")
	}
}

// TestRealTreeClean is the contract the CI lint job enforces, as a test: the
// whole module lints clean. Any regression — a new wall-clock read, a map
// iteration leaking into a journal, a typo'd metric name, a stale annotation —
// fails here before it reaches CI.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns(l.ModuleRoot + "/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	diags := Run(pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("real tree has %d lint findings; fix them or annotate with //u1:allow", len(diags))
	}
}
