package lint

import (
	"go/ast"
	"go/types"
)

// The lockdiscipline pass protects the lock-hold observability from PR 1:
// metadata shards expose rlock()/runlock()/wlock()/wunlock() accessors that
// count acquisitions and feed the meta.shard.<i>.{read,write}_hold.seconds
// histograms. A direct `.mu.Lock()` or `.mu.RLock()` on such a type acquires
// the lock invisibly — the capacity model under-counts contention exactly
// where it matters. The pass applies to any type whose method set defines
// both rlock and wlock accessors (so it generalizes past the one shard type
// without hard-coding it), and skips the accessor bodies themselves.
// Deliberate bypasses — maintenance sweeps, crash drills, fingerprinting —
// carry `//u1:allow lockdiscipline <reason>`.

var lockdisciplinePass = &Pass{
	Name:  "lockdiscipline",
	Allow: "lockdiscipline",
	Doc:   "no direct .mu.Lock()/.mu.RLock() on types with rlock()/wlock() accessors",
	Run:   runLockdiscipline,
}

// lockAccessors are the accessor method names whose bodies legitimately touch
// the mutex directly.
var lockAccessors = map[string]bool{
	"rlock": true, "runlock": true, "wlock": true, "wunlock": true,
}

func runLockdiscipline(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lockAccessors[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
					return true
				}
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok || inner.Sel.Name != "mu" {
					return true
				}
				tv, ok := p.Info.Types[inner.X]
				if !ok {
					return true
				}
				named := namedType(tv.Type)
				if named == nil || !hasLockAccessors(named) {
					return true
				}
				report(call, "direct %s.mu.%s on %s bypasses the rlock()/wlock() accessors and their lock-hold histograms; use the accessors, or annotate `//u1:allow lockdiscipline <reason>`",
					types.ExprString(inner.X), sel.Sel.Name, named.Obj().Name())
				return true
			})
		}
	}
}

// hasLockAccessors reports whether *named defines both rlock and wlock (the
// accessors are unexported, so the lookup is scoped to the type's package).
func hasLockAccessors(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	pkg := named.Obj().Pkg()
	return ms.Lookup(pkg, "rlock") != nil && ms.Lookup(pkg, "wlock") != nil
}
